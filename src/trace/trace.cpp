#include "trace/trace.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace spider::trace {

const char* to_string(Outcome outcome) {
    switch (outcome) {
        case Outcome::kMiss: return "miss";
        case Outcome::kImportanceHit: return "imp";
        case Outcome::kHomophilyHit: return "homo";
        case Outcome::kPolicyHit: return "hit";
        case Outcome::kSubstitution: return "subst";
    }
    return "unknown";
}

namespace {

Outcome outcome_from_string(const std::string& token) {
    if (token == "miss") return Outcome::kMiss;
    if (token == "imp") return Outcome::kImportanceHit;
    if (token == "homo") return Outcome::kHomophilyHit;
    if (token == "hit") return Outcome::kPolicyHit;
    if (token == "subst") return Outcome::kSubstitution;
    throw std::invalid_argument{"AccessTrace: unknown outcome '" + token + "'"};
}

}  // namespace

void AccessTrace::record(std::uint32_t epoch, std::uint32_t requested,
                         std::uint32_t served, Outcome outcome) {
    records_.push_back({epoch, requested, served, outcome});
}

std::size_t AccessTrace::epoch_count() const {
    std::size_t max_epoch = 0;
    if (records_.empty()) return 0;
    for (const Record& r : records_) {
        max_epoch = std::max<std::size_t>(max_epoch, r.epoch);
    }
    return max_epoch + 1;
}

double AccessTrace::hit_ratio() const {
    if (records_.empty()) return 0.0;
    const auto hits = static_cast<double>(
        std::count_if(records_.begin(), records_.end(),
                      [](const Record& r) { return r.is_hit(); }));
    return hits / static_cast<double>(records_.size());
}

double AccessTrace::epoch_hit_ratio(std::uint32_t epoch) const {
    std::size_t total = 0;
    std::size_t hits = 0;
    for (const Record& r : records_) {
        if (r.epoch != epoch) continue;
        ++total;
        hits += r.is_hit() ? 1 : 0;
    }
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
}

std::size_t AccessTrace::unique_samples() const {
    std::unordered_set<std::uint32_t> seen;
    for (const Record& r : records_) {
        seen.insert(r.requested);
    }
    return seen.size();
}

void AccessTrace::save(std::ostream& os) const {
    os << "# spidercache-trace v1\n";
    os << "# epoch requested served outcome\n";
    for (const Record& r : records_) {
        os << r.epoch << ' ' << r.requested << ' ' << r.served << ' '
           << to_string(r.outcome) << '\n';
    }
}

AccessTrace AccessTrace::load(std::istream& is) {
    AccessTrace trace;
    std::string line;
    bool header_seen = false;
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        if (line.front() == '#') {
            if (line.find("spidercache-trace v1") != std::string::npos) {
                header_seen = true;
            }
            continue;
        }
        if (!header_seen) {
            throw std::invalid_argument{
                "AccessTrace::load: missing trace header"};
        }
        std::istringstream fields{line};
        Record r;
        std::string outcome_token;
        if (!(fields >> r.epoch >> r.requested >> r.served >> outcome_token)) {
            throw std::invalid_argument{
                "AccessTrace::load: malformed record '" + line + "'"};
        }
        r.outcome = outcome_from_string(outcome_token);
        trace.records_.push_back(r);
    }
    return trace;
}

}  // namespace spider::trace
