#pragma once

// Mattson stack-distance (reuse-distance) analysis.
//
// For an access stream, the *reuse distance* of an access is the number of
// distinct items referenced since the previous access to the same item
// (infinity for first touches). Because LRU obeys the stack inclusion
// property, one pass over the trace yields the LRU hit ratio for EVERY
// cache size simultaneously: an access hits an LRU cache of capacity C iff
// its reuse distance < C. This is the classic tool for explaining why
// random-sampling DNN training defeats LRU (paper Fig. 3(b)): each epoch
// touches every sample once, so every reuse distance equals the dataset
// size and no practical cache size can hit.
//
// Implementation: O(n log n) via an order-statistics structure (a Fenwick
// tree over access timestamps).

#include <cstdint>
#include <span>
#include <vector>

namespace spider::trace {

struct ReuseProfile {
    /// histogram[d] = number of accesses with finite reuse distance d
    /// (capped at `max_tracked` — larger distances land in the last bin).
    std::vector<std::uint64_t> histogram;
    std::uint64_t cold_misses = 0;  // first touches (infinite distance)
    std::uint64_t total_accesses = 0;

    /// Exact LRU hit ratio for a cache of `capacity` items, derived from
    /// the histogram (stack inclusion property).
    [[nodiscard]] double lru_hit_ratio(std::size_t capacity) const;

    /// The full miss-ratio curve at the given capacities.
    [[nodiscard]] std::vector<double> hit_ratio_curve(
        std::span<const std::size_t> capacities) const;

    /// Mean finite reuse distance (0 when no reuses).
    [[nodiscard]] double mean_reuse_distance() const;
};

/// Computes the reuse profile of an access stream of item ids.
/// @param max_tracked  Distances >= max_tracked are clamped into the final
///                     histogram bin (treated as "too far for any cache").
[[nodiscard]] ReuseProfile compute_reuse_profile(
    std::span<const std::uint32_t> accesses, std::size_t max_tracked = 1 << 20);

}  // namespace spider::trace
