#pragma once

// Offline trace replay: run a recorded request stream against any
// EvictionCache policy and report what its hit ratio *would have been* —
// the standard methodology for comparing cache policies on equal footing
// (same access pattern, different policy). Useful both for studying the
// importance-sampling-induced locality the paper exploits and for
// regression-testing policy changes against archived traces.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cache/policy.hpp"
#include "trace/trace.hpp"

namespace spider::trace {

struct ReplayResult {
    std::string policy;
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t cold_misses = 0;  // first touch of an id (uncacheable)
    /// Per-epoch hit ratios (index = epoch).
    std::vector<double> epoch_hit_ratio;

    [[nodiscard]] double hit_ratio() const {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(hits) / static_cast<double>(accesses);
    }
    /// Hit ratio excluding compulsory (first-touch) misses.
    [[nodiscard]] double warm_hit_ratio() const {
        const std::uint64_t warm = accesses - cold_misses;
        return warm == 0 ? 0.0
                         : static_cast<double>(hits) / static_cast<double>(warm);
    }
};

/// Replays the trace's *requested* id stream through `policy` (touch on
/// hit, admit on miss).
[[nodiscard]] ReplayResult replay(const AccessTrace& trace,
                                  cache::EvictionCache& policy);

/// Convenience: replays a raw id stream (no epochs) through `policy`.
[[nodiscard]] ReplayResult replay(std::span<const std::uint32_t> accesses,
                                  cache::EvictionCache& policy);

}  // namespace spider::trace
