#include "trace/reuse_distance.hpp"

#include <algorithm>
#include <unordered_map>

namespace spider::trace {

namespace {

/// Fenwick tree over timestamps: supports point add and prefix sums, used
/// to count how many *distinct* items were touched since a timestamp.
class FenwickTree {
public:
    explicit FenwickTree(std::size_t size) : tree_(size + 1, 0) {}

    void add(std::size_t index, std::int64_t delta) {
        for (std::size_t i = index + 1; i < tree_.size(); i += i & (~i + 1)) {
            tree_[i] += delta;
        }
    }

    [[nodiscard]] std::int64_t prefix_sum(std::size_t count) const {
        std::int64_t sum = 0;
        for (std::size_t i = count; i > 0; i -= i & (~i + 1)) {
            sum += tree_[i];
        }
        return sum;
    }

    [[nodiscard]] std::int64_t range_sum(std::size_t from,
                                         std::size_t to_exclusive) const {
        return prefix_sum(to_exclusive) - prefix_sum(from);
    }

private:
    std::vector<std::int64_t> tree_;
};

}  // namespace

double ReuseProfile::lru_hit_ratio(std::size_t capacity) const {
    if (total_accesses == 0 || capacity == 0) return 0.0;
    std::uint64_t hits = 0;
    const std::size_t limit = std::min(capacity, histogram.size());
    for (std::size_t d = 0; d < limit; ++d) {
        hits += histogram[d];
    }
    return static_cast<double>(hits) / static_cast<double>(total_accesses);
}

std::vector<double> ReuseProfile::hit_ratio_curve(
    std::span<const std::size_t> capacities) const {
    std::vector<double> curve;
    curve.reserve(capacities.size());
    for (std::size_t capacity : capacities) {
        curve.push_back(lru_hit_ratio(capacity));
    }
    return curve;
}

double ReuseProfile::mean_reuse_distance() const {
    std::uint64_t reuses = 0;
    double weighted = 0.0;
    for (std::size_t d = 0; d < histogram.size(); ++d) {
        reuses += histogram[d];
        weighted += static_cast<double>(d) * static_cast<double>(histogram[d]);
    }
    return reuses == 0 ? 0.0 : weighted / static_cast<double>(reuses);
}

ReuseProfile compute_reuse_profile(std::span<const std::uint32_t> accesses,
                                   std::size_t max_tracked) {
    ReuseProfile profile;
    profile.total_accesses = accesses.size();
    if (accesses.empty()) return profile;
    profile.histogram.assign(std::min<std::size_t>(max_tracked, 1 << 22) + 1,
                             0);

    // last_position[item] = timestamp of the previous access. A Fenwick
    // tree marks which timestamps are the *latest* access of their item;
    // the number of distinct items since t is the marked count in (t, now).
    FenwickTree marked{accesses.size()};
    std::unordered_map<std::uint32_t, std::size_t> last_position;
    last_position.reserve(accesses.size() / 4);

    for (std::size_t now = 0; now < accesses.size(); ++now) {
        const std::uint32_t item = accesses[now];
        const auto it = last_position.find(item);
        if (it == last_position.end()) {
            ++profile.cold_misses;
        } else {
            const std::size_t previous = it->second;
            // Distinct items touched strictly between previous and now.
            const auto distance = static_cast<std::uint64_t>(
                marked.range_sum(previous + 1, now));
            const std::size_t bin = std::min<std::uint64_t>(
                distance, profile.histogram.size() - 1);
            ++profile.histogram[bin];
            marked.add(previous, -1);  // no longer the latest access
        }
        marked.add(now, +1);
        last_position[item] = now;
    }
    return profile;
}

}  // namespace spider::trace
