#include "trace/replay.hpp"

#include <unordered_set>

namespace spider::trace {

namespace {

struct EpochAccumulator {
    std::vector<std::uint64_t> accesses;
    std::vector<std::uint64_t> hits;

    void note(std::uint32_t epoch, bool hit) {
        if (epoch >= accesses.size()) {
            accesses.resize(epoch + 1, 0);
            hits.resize(epoch + 1, 0);
        }
        ++accesses[epoch];
        hits[epoch] += hit ? 1 : 0;
    }

    [[nodiscard]] std::vector<double> ratios() const {
        std::vector<double> out(accesses.size(), 0.0);
        for (std::size_t e = 0; e < accesses.size(); ++e) {
            if (accesses[e] > 0) {
                out[e] = static_cast<double>(hits[e]) /
                         static_cast<double>(accesses[e]);
            }
        }
        return out;
    }
};

}  // namespace

ReplayResult replay(const AccessTrace& trace, cache::EvictionCache& policy) {
    ReplayResult result;
    result.policy = policy.name();
    std::unordered_set<std::uint32_t> seen;
    EpochAccumulator epochs;
    for (const Record& r : trace.records()) {
        ++result.accesses;
        if (!seen.insert(r.requested).second) {
            // warm access
        } else {
            ++result.cold_misses;
        }
        const bool hit = policy.touch(r.requested);
        if (hit) {
            ++result.hits;
        } else {
            policy.admit(r.requested);
        }
        epochs.note(r.epoch, hit);
    }
    result.epoch_hit_ratio = epochs.ratios();
    return result;
}

ReplayResult replay(std::span<const std::uint32_t> accesses,
                    cache::EvictionCache& policy) {
    AccessTrace trace;
    for (std::uint32_t id : accesses) {
        trace.record(0, id, id, Outcome::kMiss);
    }
    return replay(trace, policy);
}

}  // namespace spider::trace
