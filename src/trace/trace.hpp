#pragma once

// Access-trace recording. A trace captures the exact sample-request stream
// a sampler/cache combination produced — (epoch, requested id, outcome,
// served id) per access — so cache policies can be studied *offline*:
// replayed against other policies (replay.hpp), run through reuse-distance
// analysis (reuse_distance.hpp), or archived for regression comparisons.
//
// Serialization is a line-oriented text format (one record per line,
// comment lines start with '#') — diff-able, greppable, stable.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace spider::trace {

enum class Outcome : std::uint8_t {
    kMiss = 0,
    kImportanceHit = 1,
    kHomophilyHit = 2,   // served a semantic surrogate
    kPolicyHit = 3,      // plain cache hit (LRU/LFU/...)
    kSubstitution = 4,   // iCache random substitute
};

[[nodiscard]] const char* to_string(Outcome outcome);

struct Record {
    std::uint32_t epoch = 0;
    std::uint32_t requested = 0;
    std::uint32_t served = 0;
    Outcome outcome = Outcome::kMiss;

    [[nodiscard]] bool is_hit() const { return outcome != Outcome::kMiss; }
    bool operator==(const Record&) const = default;
};

class AccessTrace {
public:
    AccessTrace() = default;

    void record(std::uint32_t epoch, std::uint32_t requested,
                std::uint32_t served, Outcome outcome);
    void clear() { records_.clear(); }

    [[nodiscard]] std::size_t size() const { return records_.size(); }
    [[nodiscard]] bool empty() const { return records_.empty(); }
    [[nodiscard]] const Record& operator[](std::size_t i) const {
        return records_[i];
    }
    [[nodiscard]] const std::vector<Record>& records() const {
        return records_;
    }

    /// Number of epochs spanned (max epoch + 1; 0 when empty).
    [[nodiscard]] std::size_t epoch_count() const;
    /// Hit ratio over the whole trace.
    [[nodiscard]] double hit_ratio() const;
    /// Hit ratio of one epoch.
    [[nodiscard]] double epoch_hit_ratio(std::uint32_t epoch) const;
    /// Distinct requested ids.
    [[nodiscard]] std::size_t unique_samples() const;

    /// Text serialization: "# spidercache-trace v1" header, then
    /// "epoch requested served outcome" per line.
    void save(std::ostream& os) const;
    [[nodiscard]] static AccessTrace load(std::istream& is);

private:
    std::vector<Record> records_;
};

}  // namespace spider::trace
