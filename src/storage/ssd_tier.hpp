#pragma once

// Local-SSD storage tier: the middle layer of the memory -> SSD -> remote
// hierarchy that DNN training clusters actually deploy (CoorDL caches on
// local SSD; the paper's Spot-VM discussion is exactly about losing this
// tier). A miss in the in-memory cache checks the SSD before paying the
// remote fetch; remote fetches are written back to the SSD (LRU within
// the budget). Costs live on the virtual clock like everything else.
//
// Two modes share one API:
//  - Residency model (config.path empty): ids move through the in-memory
//    LRU and latency is charged virtually — the historical behavior.
//  - Block mode (config.path set): the tier delegates payload bytes to an
//    on-disk SsdBlockStore (DESIGN.md §14). The LRU stays the
//    recency/eviction index; the block store owns the bytes, and
//    eviction additionally enforces the byte budget by walking LRU
//    victims until whole-segment GC frees enough.
//
// Thread safety: the tier sits on the cache server's miss path, where the
// event loop and any direct library users may touch it from different
// threads, so fetch/insert/counters are internally serialized by one
// mutex (the LRU list is all pointer chasing — a sharded scheme would buy
// nothing at SSD latencies). batch_read_cost is pure configuration.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "cache/basic_policies.hpp"
#include "cache/residency_log.hpp"
#include "storage/clock.hpp"
#include "storage/ssd_block_store.hpp"

namespace spider::storage {

struct SsdTierConfig {
    bool enabled = false;
    /// Capacity in items (0 = unbounded, the CoorDL append-only model).
    std::size_t capacity_items = 0;
    /// Virtual read latency per sample (NVMe-class: ~0.1 ms vs ~ms remote).
    SimDuration read_latency = from_ms(0.08);
    /// Block mode: directory for segment files. Empty = residency model.
    std::string path;
    /// Block mode byte budget (0 = unbounded). Enforced by evicting LRU
    /// victims until whole-segment GC brings usage back under budget.
    std::size_t capacity_mb = 0;
    /// Segment rotation threshold for the block store.
    std::size_t segment_mb = 4;
    /// Bloom sizing for the block store (0 disables the filters).
    std::size_t bloom_bits_per_key = 10;
};

class SsdTier {
public:
    explicit SsdTier(SsdTierConfig config);

    [[nodiscard]] bool enabled() const { return config_.enabled; }
    [[nodiscard]] const SsdTierConfig& config() const { return config_; }
    [[nodiscard]] std::size_t resident_items() const {
        const std::lock_guard lock{mu_};
        return lru_.size();
    }

    /// Read path: returns true when `id` was served from the SSD (and
    /// bumps its recency). Counter semantics are uniform: every fetch()
    /// counts exactly one hit or one miss, including on a disabled tier
    /// (a consult that cannot be served is a miss — hit-ratio math stays
    /// consistent across `enabled` flips). Thread-safe.
    bool fetch(std::uint32_t id);

    /// Read path returning the stored payload. Residency-model hits
    /// return an empty vector (there are no bytes to return); block-mode
    /// hits return the bytes written at insert time. A resident id whose
    /// payload was lost (torn tail past the last flush) is dropped from
    /// the LRU, streamed as kSsdEvict, and counted as a miss.
    /// Thread-safe.
    std::optional<std::vector<std::uint8_t>> fetch_payload(std::uint32_t id);

    /// Write-back after a remote fetch (residency only). Thread-safe.
    void insert(std::uint32_t id);

    /// Write-back with payload bytes; block mode persists them. In the
    /// residency model the bytes are ignored. Thread-safe.
    void insert(std::uint32_t id, std::span<const std::uint8_t> payload);

    [[nodiscard]] std::uint64_t hits() const {
        const std::lock_guard lock{mu_};
        return hits_;
    }
    [[nodiscard]] std::uint64_t misses() const {
        const std::lock_guard lock{mu_};
        return misses_;
    }

    /// Virtual time for a batch of `count` SSD reads (reads are parallel
    /// across `parallelism` queue depths like remote fetches).
    [[nodiscard]] SimDuration batch_read_cost(std::size_t count,
                                              std::size_t parallelism) const;

    /// Zeroes hits/misses — mirrors RemoteStore::reset_contention_counters
    /// so per-epoch CSV attribution is correct across epochs. Thread-safe.
    void reset_counters();

    // ---- Block mode (DESIGN.md §14). All no-ops in the residency model.

    [[nodiscard]] bool block_mode() const { return block_ != nullptr; }
    /// Stats straight from the block store (zeroed struct in the
    /// residency model). Thread-safe.
    [[nodiscard]] SsdBlockStoreStats block_stats() const;
    [[nodiscard]] std::size_t bytes_used() const;
    /// Persist the buffered segment tail.
    void flush();
    /// Simulated kill -9: the buffered tail vanishes, disk keeps only
    /// flushed bytes. The next tier constructed on the same path recovers
    /// exactly what survived.
    void drop_unflushed();
    /// Fresh-run reset: delete every segment file (mirrors
    /// CacheWal::compact({}) wiping the previous process's leftovers).
    void clear_store();

    // ---- Crash-safe warm restart (DESIGN.md §12).

    /// Streams kSsdInsert/kSsdEvict records for write-back admissions and
    /// their evictions (fetch-path recency touches are not streamed; the
    /// periodic compaction snapshot reconciles recency drift). Called
    /// under the tier mutex — the listener must not call back in. Set
    /// before concurrent use.
    void set_residency_listener(cache::ResidencyListener listener) {
        const std::lock_guard lock{mu_};
        residency_listener_ = std::move(listener);
    }

    /// Resident ids, least-recently-used first — the `ssd` leg of a
    /// RestoreImage for WAL compaction. Thread-safe.
    [[nodiscard]] std::vector<std::uint32_t> dump_residency() const;

    /// Re-admits `ids` in order (LRU-first, as dump_residency emits), so
    /// the rebuilt tier has the same contents and recency horizon up to
    /// its capacity. Returns how many ids are resident afterwards.
    ///
    /// Ids that do NOT end up resident — evicted by a smaller capacity,
    /// or (block mode) whose payload did not survive the crash — are
    /// streamed to the residency listener as kSsdEvict, so the WAL
    /// converges back to actual residency instead of drifting until the
    /// next compaction. Attach the listener BEFORE calling restore; with
    /// no listener attached the caller must guarantee the image fits
    /// (fresh tier, equal-or-larger capacity). In block mode, payloads
    /// still on disk but absent from `ids` are erased afterwards, so
    /// store contents and residency agree. Call on a fresh tier before
    /// concurrent use; no-op when disabled.
    std::size_t restore(const std::vector<std::uint32_t>& ids);

private:
    void notify_evict_locked(std::uint32_t id);
    void enforce_byte_budget_locked();

    SsdTierConfig config_;
    mutable std::mutex mu_;
    cache::LruCache lru_;
    std::unique_ptr<SsdBlockStore> block_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    cache::ResidencyListener residency_listener_;
};

}  // namespace spider::storage
