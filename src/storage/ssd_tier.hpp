#pragma once

// Local-SSD storage tier: the middle layer of the memory -> SSD -> remote
// hierarchy that DNN training clusters actually deploy (CoorDL caches on
// local SSD; the paper's Spot-VM discussion is exactly about losing this
// tier). A miss in the in-memory cache checks the SSD before paying the
// remote fetch; remote fetches are written back to the SSD (LRU within the
// byte budget). Costs live on the virtual clock like everything else.
//
// Thread safety: the tier sits on the cache server's miss path, where the
// event loop and any direct library users may touch it from different
// threads, so fetch/insert/counters are internally serialized by one
// mutex (the LRU list is all pointer chasing — a sharded scheme would buy
// nothing at SSD latencies). batch_read_cost is pure configuration.

#include <cstdint>
#include <mutex>

#include "cache/basic_policies.hpp"
#include "storage/clock.hpp"

namespace spider::storage {

struct SsdTierConfig {
    bool enabled = false;
    /// Capacity in items (0 = unbounded, the CoorDL append-only model).
    std::size_t capacity_items = 0;
    /// Virtual read latency per sample (NVMe-class: ~0.1 ms vs ~ms remote).
    SimDuration read_latency = from_ms(0.08);
};

class SsdTier {
public:
    explicit SsdTier(SsdTierConfig config);

    [[nodiscard]] bool enabled() const { return config_.enabled; }
    [[nodiscard]] const SsdTierConfig& config() const { return config_; }
    [[nodiscard]] std::size_t resident_items() const {
        const std::lock_guard lock{mu_};
        return lru_.size();
    }

    /// Read path: returns true when `id` was served from the SSD (and
    /// bumps its recency). Disabled tiers always miss. Thread-safe.
    bool fetch(std::uint32_t id);

    /// Write-back after a remote fetch. Thread-safe.
    void insert(std::uint32_t id);

    [[nodiscard]] std::uint64_t hits() const {
        const std::lock_guard lock{mu_};
        return hits_;
    }
    [[nodiscard]] std::uint64_t misses() const {
        const std::lock_guard lock{mu_};
        return misses_;
    }

    /// Virtual time for a batch of `count` SSD reads (reads are parallel
    /// across `parallelism` queue depths like remote fetches).
    [[nodiscard]] SimDuration batch_read_cost(std::size_t count,
                                              std::size_t parallelism) const;

private:
    SsdTierConfig config_;
    mutable std::mutex mu_;
    cache::LruCache lru_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace spider::storage
