#pragma once

// Local-SSD storage tier: the middle layer of the memory -> SSD -> remote
// hierarchy that DNN training clusters actually deploy (CoorDL caches on
// local SSD; the paper's Spot-VM discussion is exactly about losing this
// tier). A miss in the in-memory cache checks the SSD before paying the
// remote fetch; remote fetches are written back to the SSD (LRU within the
// byte budget). Costs live on the virtual clock like everything else.
//
// Thread safety: the tier sits on the cache server's miss path, where the
// event loop and any direct library users may touch it from different
// threads, so fetch/insert/counters are internally serialized by one
// mutex (the LRU list is all pointer chasing — a sharded scheme would buy
// nothing at SSD latencies). batch_read_cost is pure configuration.

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "cache/basic_policies.hpp"
#include "cache/residency_log.hpp"
#include "storage/clock.hpp"

namespace spider::storage {

struct SsdTierConfig {
    bool enabled = false;
    /// Capacity in items (0 = unbounded, the CoorDL append-only model).
    std::size_t capacity_items = 0;
    /// Virtual read latency per sample (NVMe-class: ~0.1 ms vs ~ms remote).
    SimDuration read_latency = from_ms(0.08);
};

class SsdTier {
public:
    explicit SsdTier(SsdTierConfig config);

    [[nodiscard]] bool enabled() const { return config_.enabled; }
    [[nodiscard]] const SsdTierConfig& config() const { return config_; }
    [[nodiscard]] std::size_t resident_items() const {
        const std::lock_guard lock{mu_};
        return lru_.size();
    }

    /// Read path: returns true when `id` was served from the SSD (and
    /// bumps its recency). Disabled tiers always miss. Thread-safe.
    bool fetch(std::uint32_t id);

    /// Write-back after a remote fetch. Thread-safe.
    void insert(std::uint32_t id);

    [[nodiscard]] std::uint64_t hits() const {
        const std::lock_guard lock{mu_};
        return hits_;
    }
    [[nodiscard]] std::uint64_t misses() const {
        const std::lock_guard lock{mu_};
        return misses_;
    }

    /// Virtual time for a batch of `count` SSD reads (reads are parallel
    /// across `parallelism` queue depths like remote fetches).
    [[nodiscard]] SimDuration batch_read_cost(std::size_t count,
                                              std::size_t parallelism) const;

    /// Zeroes hits/misses — mirrors RemoteStore::reset_contention_counters
    /// so per-epoch CSV attribution is correct across epochs. Thread-safe.
    void reset_counters();

    // ---- Crash-safe warm restart (DESIGN.md §12).

    /// Streams kSsdInsert/kSsdEvict records for write-back admissions and
    /// their evictions (fetch-path recency touches are not streamed; the
    /// periodic compaction snapshot reconciles recency drift). Called
    /// under the tier mutex — the listener must not call back in. Set
    /// before concurrent use.
    void set_residency_listener(cache::ResidencyListener listener) {
        const std::lock_guard lock{mu_};
        residency_listener_ = std::move(listener);
    }

    /// Resident ids, least-recently-used first — the `ssd` leg of a
    /// RestoreImage for WAL compaction. Thread-safe.
    [[nodiscard]] std::vector<std::uint32_t> dump_residency() const;

    /// Re-admits `ids` in order (LRU-first, as dump_residency emits), so
    /// the rebuilt tier has the same contents and recency horizon up to
    /// its capacity. Returns how many ids are resident afterwards. Call
    /// on a fresh tier before concurrent use; no-op when disabled.
    std::size_t restore(const std::vector<std::uint32_t>& ids);

private:
    SsdTierConfig config_;
    mutable std::mutex mu_;
    cache::LruCache lru_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    cache::ResidencyListener residency_listener_;
};

}  // namespace spider::storage
