#include "storage/ssd_tier.hpp"

#include <limits>

namespace spider::storage {

namespace {

std::size_t effective_capacity(const SsdTierConfig& config) {
    if (!config.enabled) return 0;
    return config.capacity_items == 0
               ? std::numeric_limits<std::size_t>::max() / 2
               : config.capacity_items;
}

}  // namespace

SsdTier::SsdTier(SsdTierConfig config)
    : config_{config}, lru_{effective_capacity(config)} {}

bool SsdTier::fetch(std::uint32_t id) {
    if (!config_.enabled) return false;
    const std::lock_guard lock{mu_};
    const bool hit = lru_.touch(id);
    (hit ? hits_ : misses_) += 1;
    return hit;
}

void SsdTier::insert(std::uint32_t id) {
    if (!config_.enabled) return;
    const std::lock_guard lock{mu_};
    lru_.admit(id);
}

SimDuration SsdTier::batch_read_cost(std::size_t count,
                                     std::size_t parallelism) const {
    if (count == 0) return SimDuration::zero();
    const std::size_t lanes = std::max<std::size_t>(parallelism, 1);
    const std::size_t rounds = (count + lanes - 1) / lanes;
    return config_.read_latency * static_cast<std::int64_t>(rounds);
}

}  // namespace spider::storage
