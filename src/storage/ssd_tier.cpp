#include "storage/ssd_tier.hpp"

#include <limits>

namespace spider::storage {

namespace {

std::size_t effective_capacity(const SsdTierConfig& config) {
    if (!config.enabled) return 0;
    return config.capacity_items == 0
               ? std::numeric_limits<std::size_t>::max() / 2
               : config.capacity_items;
}

}  // namespace

SsdTier::SsdTier(SsdTierConfig config)
    : config_{config}, lru_{effective_capacity(config)} {}

bool SsdTier::fetch(std::uint32_t id) {
    if (!config_.enabled) return false;
    const std::lock_guard lock{mu_};
    const bool hit = lru_.touch(id);
    (hit ? hits_ : misses_) += 1;
    return hit;
}

void SsdTier::insert(std::uint32_t id) {
    if (!config_.enabled) return;
    const std::lock_guard lock{mu_};
    const auto evicted = lru_.admit(id);
    if (residency_listener_) {
        if (evicted.has_value()) {
            cache::ResidencyRecord ev;
            ev.op = cache::ResidencyOp::kSsdEvict;
            ev.id = *evicted;
            residency_listener_(ev);
        }
        cache::ResidencyRecord admit;
        admit.op = cache::ResidencyOp::kSsdInsert;
        admit.id = id;
        residency_listener_(admit);
    }
}

void SsdTier::reset_counters() {
    const std::lock_guard lock{mu_};
    hits_ = 0;
    misses_ = 0;
}

std::vector<std::uint32_t> SsdTier::dump_residency() const {
    const std::lock_guard lock{mu_};
    std::vector<std::uint32_t> ids;
    ids.reserve(lru_.size());
    lru_.for_each_lru_first([&ids](std::uint32_t id) { ids.push_back(id); });
    return ids;
}

std::size_t SsdTier::restore(const std::vector<std::uint32_t>& ids) {
    if (!config_.enabled) return 0;
    const std::lock_guard lock{mu_};
    for (std::uint32_t id : ids) {
        lru_.admit(id);
    }
    return lru_.size();
}

SimDuration SsdTier::batch_read_cost(std::size_t count,
                                     std::size_t parallelism) const {
    if (count == 0) return SimDuration::zero();
    const std::size_t lanes = std::max<std::size_t>(parallelism, 1);
    const std::size_t rounds = (count + lanes - 1) / lanes;
    return config_.read_latency * static_cast<std::int64_t>(rounds);
}

}  // namespace spider::storage
