#include "storage/ssd_tier.hpp"

#include <algorithm>
#include <limits>

namespace spider::storage {

namespace {

std::size_t effective_capacity(const SsdTierConfig& config) {
    if (!config.enabled) return 0;
    return config.capacity_items == 0
               ? std::numeric_limits<std::size_t>::max() / 2
               : config.capacity_items;
}

}  // namespace

SsdTier::SsdTier(SsdTierConfig config)
    : config_{std::move(config)}, lru_{effective_capacity(config_)} {
    if (config_.enabled && !config_.path.empty()) {
        SsdBlockStoreConfig store;
        store.dir = config_.path;
        store.capacity_bytes = config_.capacity_mb << 20;
        store.segment_bytes = std::max<std::size_t>(config_.segment_mb, 1)
                              << 20;
        store.bloom_bits_per_key = config_.bloom_bits_per_key;
        block_ = std::make_unique<SsdBlockStore>(store);
    }
}

void SsdTier::notify_evict_locked(std::uint32_t id) {
    if (!residency_listener_) return;
    cache::ResidencyRecord ev;
    ev.op = cache::ResidencyOp::kSsdEvict;
    ev.id = id;
    residency_listener_(ev);
}

bool SsdTier::fetch(std::uint32_t id) {
    return fetch_payload(id).has_value();
}

std::optional<std::vector<std::uint8_t>> SsdTier::fetch_payload(
    std::uint32_t id) {
    const std::lock_guard lock{mu_};
    if (!config_.enabled) {
        // Uniform counter semantics: a consult of a disabled tier is a
        // miss, not a silent no-op, so hit-ratio math survives flips.
        ++misses_;
        return std::nullopt;
    }
    if (!lru_.touch(id)) {
        ++misses_;
        return std::nullopt;
    }
    std::vector<std::uint8_t> payload;
    if (block_) {
        auto bytes = block_->read(id);
        if (!bytes.has_value()) {
            // Resident per the LRU but the bytes did not survive (torn
            // tail past the last flush): drop it and report the miss so
            // the caller falls through to the remote fetch.
            lru_.erase(id);
            block_->erase(id);
            notify_evict_locked(id);
            ++misses_;
            return std::nullopt;
        }
        payload = std::move(*bytes);
    }
    ++hits_;
    return payload;
}

void SsdTier::insert(std::uint32_t id) { insert(id, {}); }

void SsdTier::insert(std::uint32_t id,
                     std::span<const std::uint8_t> payload) {
    if (!config_.enabled) return;
    const std::lock_guard lock{mu_};
    if (block_) block_->write(id, payload);
    const auto evicted = lru_.admit(id);
    if (evicted.has_value()) {
        if (block_) block_->erase(*evicted);
        notify_evict_locked(*evicted);
    }
    if (residency_listener_) {
        cache::ResidencyRecord admit;
        admit.op = cache::ResidencyOp::kSsdInsert;
        admit.id = id;
        residency_listener_(admit);
    }
    enforce_byte_budget_locked();
}

void SsdTier::enforce_byte_budget_locked() {
    if (!block_) return;
    const std::size_t cap = config_.capacity_mb << 20;
    if (cap == 0) return;
    // Walk LRU victims until whole-segment GC frees enough. Only sealed
    // segments can ever be reclaimed, so stop once none are left rather
    // than evicting the world against an immovable active segment.
    while (block_->bytes_used() > cap && block_->sealed_bytes() > 0 &&
           lru_.size() > 0) {
        const auto victim = lru_.peek_victim();
        if (!victim.has_value()) break;
        lru_.erase(*victim);
        block_->erase(*victim);
        notify_evict_locked(*victim);
    }
}

void SsdTier::reset_counters() {
    const std::lock_guard lock{mu_};
    hits_ = 0;
    misses_ = 0;
}

SsdBlockStoreStats SsdTier::block_stats() const {
    const std::lock_guard lock{mu_};
    return block_ ? block_->stats() : SsdBlockStoreStats{};
}

std::size_t SsdTier::bytes_used() const {
    const std::lock_guard lock{mu_};
    return block_ ? block_->bytes_used() : 0;
}

void SsdTier::flush() {
    const std::lock_guard lock{mu_};
    if (block_) block_->flush();
}

void SsdTier::drop_unflushed() {
    const std::lock_guard lock{mu_};
    if (block_) block_->drop_unflushed();
}

void SsdTier::clear_store() {
    const std::lock_guard lock{mu_};
    if (block_) block_->clear();
}

std::vector<std::uint32_t> SsdTier::dump_residency() const {
    const std::lock_guard lock{mu_};
    std::vector<std::uint32_t> ids;
    ids.reserve(lru_.size());
    lru_.for_each_lru_first([&ids](std::uint32_t id) { ids.push_back(id); });
    return ids;
}

std::size_t SsdTier::restore(const std::vector<std::uint32_t>& ids) {
    if (!config_.enabled) return 0;
    const std::lock_guard lock{mu_};
    for (std::uint32_t id : ids) {
        if (block_ && !block_->contains(id)) {
            // Residency record without surviving bytes: the WAL knew the
            // id but its payload never hit disk. Stream the eviction so
            // the log converges to reality.
            notify_evict_locked(id);
            continue;
        }
        const auto evicted = lru_.admit(id);
        if (evicted.has_value()) {
            if (block_) block_->erase(*evicted);
            notify_evict_locked(*evicted);
        }
    }
    if (block_) {
        // Reconcile the other direction: bytes on disk for ids the WAL
        // says are gone (evictions logged after the payload was flushed).
        for (std::uint32_t id : block_->live_ids()) {
            if (!lru_.contains(id)) block_->erase(id);
        }
        enforce_byte_budget_locked();
    }
    return lru_.size();
}

SimDuration SsdTier::batch_read_cost(std::size_t count,
                                     std::size_t parallelism) const {
    if (count == 0) return SimDuration::zero();
    const std::size_t lanes = std::max<std::size_t>(parallelism, 1);
    const std::size_t rounds = (count + lanes - 1) / lanes;
    return config_.read_latency * static_cast<std::int64_t>(rounds);
}

}  // namespace spider::storage
