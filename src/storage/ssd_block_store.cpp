#include "storage/ssd_block_store.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "storage/wire_format.hpp"

namespace spider::storage {

namespace fs = std::filesystem;

namespace {

using wire::checksum32;
using wire::get;
using wire::mix64;
using wire::put;

constexpr std::uint32_t kSegmentMagic = 0x53504253;  // "SPBS"
constexpr std::uint32_t kSealMagic = 0x5EA1D00D;
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderLen = 16;   // magic | version | seq
constexpr std::size_t kTrailerLen = 12;  // index_len | index_crc | seal magic
constexpr std::size_t kIndexEntryLen = 16;  // id | offset | frame_len
/// Sample payloads are feature vectors (KBs); anything bigger than this in
/// a length prefix is a torn or corrupt frame, not a real record.
constexpr std::uint32_t kMaxRecordPayload = 1U << 24;

[[nodiscard]] std::string frame_record(std::uint32_t id,
                                       std::span<const std::uint8_t> payload) {
    std::string body;
    body.reserve(4 + payload.size());
    put<std::uint32_t>(body, id);
    body.append(reinterpret_cast<const char*>(payload.data()),
                payload.size());
    std::string framed;
    framed.reserve(body.size() + 8);
    put<std::uint32_t>(framed, static_cast<std::uint32_t>(body.size()));
    put<std::uint32_t>(framed, checksum32(body.data(), body.size()));
    framed += body;
    return framed;
}

/// Frame -> (id, bytes); nullopt on truncation / CRC mismatch.
[[nodiscard]] std::optional<std::pair<std::uint32_t,
                                      std::vector<std::uint8_t>>>
unframe_record(const std::string& frame) {
    std::size_t off = 0;
    std::uint32_t len = 0;
    std::uint32_t sum = 0;
    if (!get(frame, off, len) || len > kMaxRecordPayload || len < 4 ||
        !get(frame, off, sum) || off + len > frame.size()) {
        return std::nullopt;
    }
    if (checksum32(frame.data() + off, len) != sum) return std::nullopt;
    std::uint32_t id = 0;
    std::size_t body_off = off;
    if (!get(frame, body_off, id)) return std::nullopt;
    std::vector<std::uint8_t> bytes(len - 4);
    std::memcpy(bytes.data(), frame.data() + body_off, len - 4);
    return std::make_pair(id, std::move(bytes));
}

[[nodiscard]] std::optional<std::string> read_range(const std::string& path,
                                                    std::uint64_t offset,
                                                    std::size_t len) {
    std::ifstream is{path, std::ios::binary};
    if (!is) return std::nullopt;
    is.seekg(static_cast<std::streamoff>(offset));
    std::string bytes(len, '\0');
    is.read(bytes.data(), static_cast<std::streamsize>(len));
    if (static_cast<std::size_t>(is.gcount()) != len) return std::nullopt;
    return bytes;
}

/// Provisional sizing for the active segment's bloom; the seal rebuilds
/// it with the exact key count, so this only affects FPR mid-segment.
[[nodiscard]] std::size_t expected_keys(std::size_t segment_bytes) {
    return std::max<std::size_t>(segment_bytes / 64, 1024);
}

}  // namespace

// ---- BloomFilter -----------------------------------------------------

BloomFilter::BloomFilter(std::size_t keys, std::size_t bits_per_key) {
    if (bits_per_key == 0) {
        disabled_ = true;
        return;
    }
    if (keys == 0) return;  // empty filter: rejects everything
    nbits_ = std::max<std::size_t>(keys * bits_per_key, 64);
    bits_.assign((nbits_ + 63) / 64, 0);
    const double ln2 = 0.6931471805599453;
    k_ = std::clamp(
        static_cast<int>(static_cast<double>(bits_per_key) * ln2 + 0.5), 1,
        30);
}

void BloomFilter::add(std::uint32_t id) {
    if (disabled_ || nbits_ == 0) return;
    std::uint64_t h = mix64(id);
    const std::uint64_t delta = (h >> 17) | (h << 47);
    for (int i = 0; i < k_; ++i) {
        const std::size_t bit = static_cast<std::size_t>(h % nbits_);
        bits_[bit >> 6] |= 1ULL << (bit & 63);
        h += delta;
    }
}

bool BloomFilter::maybe_contains(std::uint32_t id) const {
    if (disabled_) return true;
    if (nbits_ == 0) return false;
    std::uint64_t h = mix64(id);
    const std::uint64_t delta = (h >> 17) | (h << 47);
    for (int i = 0; i < k_; ++i) {
        const std::size_t bit = static_cast<std::size_t>(h % nbits_);
        if ((bits_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
        h += delta;
    }
    return true;
}

double BloomFilter::theoretical_fpr(std::size_t bits_per_key) {
    if (bits_per_key == 0) return 1.0;
    const double ln2 = 0.6931471805599453;
    const double k = std::clamp(
        std::round(static_cast<double>(bits_per_key) * ln2), 1.0, 30.0);
    return std::pow(1.0 - std::exp(-k / static_cast<double>(bits_per_key)),
                    k);
}

// ---- SsdBlockStore ---------------------------------------------------

SsdBlockStore::SsdBlockStore(SsdBlockStoreConfig config)
    : config_{std::move(config)} {
    if (config_.dir.empty()) {
        throw std::invalid_argument(
            "ssd_block_store: no directory configured");
    }
    if (config_.segment_bytes < 4096) config_.segment_bytes = 4096;
    open_dir();
}

SsdBlockStore::~SsdBlockStore() {
    // Clean close persists the buffered tail; a simulated kill -9 calls
    // drop_unflushed() first, so the tail is already gone by then.
    try {
        flush();
    } catch (...) {
        // The recovery scan tolerates the lost tail by design.
    }
}

std::string SsdBlockStore::segment_path(std::uint64_t seq) const {
    char name[32];
    std::snprintf(name, sizeof(name), "seg-%012llu.spb",
                  static_cast<unsigned long long>(seq));
    return (fs::path{config_.dir} / name).string();
}

SsdBlockStore::Segment& SsdBlockStore::active_locked() {
    return segments_.rbegin()->second;
}

void SsdBlockStore::start_segment(std::uint64_t seq) {
    Segment seg;
    seg.seq = seq;
    seg.path = segment_path(seq);
    seg.bloom = BloomFilter{expected_keys(config_.segment_bytes),
                            config_.bloom_bits_per_key};
    std::string header;
    put<std::uint32_t>(header, kSegmentMagic);
    put<std::uint32_t>(header, kVersion);
    put<std::uint64_t>(header, seq);
    seg.pending = std::move(header);
    seg.total_bytes = kHeaderLen;
    total_bytes_ += kHeaderLen;
    segments_.emplace(seq, std::move(seg));
}

void SsdBlockStore::recover_unsealed(Segment& seg) {
    const std::string bytes = wire::read_file(seg.path);
    std::uint64_t valid = kHeaderLen;
    std::size_t off = kHeaderLen;
    bool torn = false;
    while (off < bytes.size()) {
        std::size_t cursor = off;
        std::uint32_t len = 0;
        std::uint32_t sum = 0;
        if (!get(bytes, cursor, len) || !get(bytes, cursor, sum) ||
            len > kMaxRecordPayload || len < 4 ||
            cursor + len > bytes.size()) {
            torn = true;
            break;
        }
        if (checksum32(bytes.data() + cursor, len) != sum) {
            torn = true;
            break;
        }
        std::uint32_t id = 0;
        std::memcpy(&id, bytes.data() + cursor, 4);
        seg.index[id] = RecordRef{
            static_cast<std::uint64_t>(off),
            static_cast<std::uint32_t>(8 + len)};
        seg.bloom.add(id);
        off = cursor + len;
        valid = off;
    }
    if (torn) {
        ++stats_.dropped_tail_records;
        fs::resize_file(seg.path, valid);
    }
    seg.file_bytes = valid;
    seg.total_bytes = valid;
    stats_.recovered_records += seg.index.size();
}

void SsdBlockStore::open_dir() {
    fs::create_directories(config_.dir);
    segments_.clear();
    owner_.clear();
    total_bytes_ = 0;
    sealed_bytes_ = 0;

    std::vector<std::uint64_t> seqs;
    for (const auto& entry : fs::directory_iterator{config_.dir}) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("seg-", 0) != 0 || entry.path().extension() != ".spb") {
            continue;
        }
        try {
            seqs.push_back(std::stoull(name.substr(4)));
        } catch (...) {
            continue;  // foreign file; leave it alone
        }
    }
    std::sort(seqs.begin(), seqs.end());

    // Transient per-segment id lists for the owner map (newest seq wins).
    std::vector<std::pair<std::uint64_t, std::vector<std::uint32_t>>> id_sets;

    for (std::uint64_t seq : seqs) {
        const std::string path = segment_path(seq);
        const auto size = fs::file_size(path);
        const auto header = read_range(path, 0, kHeaderLen);
        if (!header) continue;
        std::size_t hoff = 0;
        std::uint32_t magic = 0;
        std::uint32_t version = 0;
        std::uint64_t file_seq = 0;
        if (!get(*header, hoff, magic) || !get(*header, hoff, version) ||
            !get(*header, hoff, file_seq) || magic != kSegmentMagic ||
            version != kVersion || file_seq != seq) {
            ++stats_.dropped_tail_records;
            fs::remove(path);  // not one of ours / hopelessly corrupt
            continue;
        }

        Segment seg;
        seg.seq = seq;
        seg.path = path;

        // Sealed if the trailer parses and the index block checks out.
        bool sealed = false;
        if (size >= kHeaderLen + kTrailerLen) {
            const auto trailer = read_range(path, size - kTrailerLen,
                                            kTrailerLen);
            std::size_t toff = 0;
            std::uint32_t index_len = 0;
            std::uint32_t index_crc = 0;
            std::uint32_t seal = 0;
            if (trailer && get(*trailer, toff, index_len) &&
                get(*trailer, toff, index_crc) && get(*trailer, toff, seal) &&
                seal == kSealMagic &&
                kHeaderLen + index_len + kTrailerLen <= size) {
                const std::uint64_t index_off = size - kTrailerLen - index_len;
                const auto index = read_range(path, index_off, index_len);
                if (index &&
                    checksum32(index->data(), index->size()) == index_crc) {
                    std::size_t ioff = 0;
                    std::uint32_t count = 0;
                    if (get(*index, ioff, count) &&
                        4 + static_cast<std::size_t>(count) * kIndexEntryLen ==
                            index_len) {
                        std::vector<std::uint32_t> ids;
                        ids.reserve(count);
                        BloomFilter bloom{count, config_.bloom_bits_per_key};
                        bool ok = true;
                        for (std::uint32_t i = 0; ok && i < count; ++i) {
                            std::uint32_t id = 0;
                            std::uint64_t rec_off = 0;
                            std::uint32_t frame_len = 0;
                            ok = get(*index, ioff, id) &&
                                 get(*index, ioff, rec_off) &&
                                 get(*index, ioff, frame_len);
                            if (ok) {
                                ids.push_back(id);
                                bloom.add(id);
                            }
                        }
                        if (ok) {
                            sealed = true;
                            seg.sealed = true;
                            seg.file_bytes = size;
                            seg.total_bytes = size;
                            seg.index_offset = index_off;
                            seg.index_len = index_len;
                            seg.bloom = std::move(bloom);
                            stats_.recovered_records += ids.size();
                            id_sets.emplace_back(seq, std::move(ids));
                        }
                    }
                }
            }
        }
        if (!sealed) {
            seg.bloom = BloomFilter{expected_keys(config_.segment_bytes),
                                    config_.bloom_bits_per_key};
            recover_unsealed(seg);
            std::vector<std::uint32_t> ids;
            ids.reserve(seg.index.size());
            for (const auto& [id, ref] : seg.index) ids.push_back(id);
            std::sort(ids.begin(), ids.end());
            id_sets.emplace_back(seq, std::move(ids));
        }
        total_bytes_ += seg.total_bytes;
        if (seg.sealed) sealed_bytes_ += seg.total_bytes;
        segments_.emplace(seq, std::move(seg));
    }

    // Owner map: ascending seq, so the newest version of each id wins.
    for (auto& [seq, ids] : id_sets) {
        for (std::uint32_t id : ids) account_owner(id, seq);
    }

    // Any unsealed segment except the newest is a past active segment cut
    // short by a crash — seal it now so its index/bloom live on disk and
    // GC can reclaim it.
    std::vector<std::uint64_t> to_seal;
    for (auto& [seq, seg] : segments_) {
        if (!seg.sealed && seq != segments_.rbegin()->first) {
            to_seal.push_back(seq);
        }
    }
    for (std::uint64_t seq : to_seal) seal_locked(segments_.at(seq));

    // Fully-stale sealed segments left over from before the crash.
    std::vector<std::uint64_t> sealed_seqs;
    for (const auto& [seq, seg] : segments_) {
        if (seg.sealed) sealed_seqs.push_back(seq);
    }
    for (std::uint64_t seq : sealed_seqs) maybe_collect(seq);

    if (segments_.empty() || segments_.rbegin()->second.sealed) {
        const std::uint64_t next =
            segments_.empty() ? 1 : segments_.rbegin()->first + 1;
        start_segment(next);
    }
}

void SsdBlockStore::account_owner(std::uint32_t id, std::uint64_t new_seq) {
    auto [it, inserted] = owner_.try_emplace(id, new_seq);
    if (inserted) {
        ++segments_.at(new_seq).live;
        return;
    }
    if (it->second == new_seq) return;
    const std::uint64_t prev = it->second;
    it->second = new_seq;
    ++segments_.at(new_seq).live;
    auto pit = segments_.find(prev);
    if (pit != segments_.end() && pit->second.live > 0) {
        --pit->second.live;
        maybe_collect(prev);
    }
}

void SsdBlockStore::maybe_collect(std::uint64_t seq) {
    auto it = segments_.find(seq);
    if (it == segments_.end()) return;
    Segment& seg = it->second;
    if (!seg.sealed || seg.live != 0) return;
    std::error_code ec;
    fs::remove(seg.path, ec);  // best effort; accounting proceeds anyway
    total_bytes_ -= std::min<std::size_t>(total_bytes_, seg.total_bytes);
    sealed_bytes_ -= std::min<std::size_t>(sealed_bytes_, seg.total_bytes);
    ++stats_.segments_collected;
    segments_.erase(it);
}

void SsdBlockStore::seal_locked(Segment& seg) {
    if (seg.sealed) return;
    // Persist the record region first so index offsets are durable.
    if (!seg.pending.empty()) {
        wire::write_file(seg.path, seg.pending, std::ios::app);
        seg.file_bytes += seg.pending.size();
        seg.pending.clear();
    }

    std::vector<std::pair<std::uint32_t, RecordRef>> entries{
        seg.index.begin(), seg.index.end()};
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    std::string index_payload;
    index_payload.reserve(4 + entries.size() * kIndexEntryLen);
    put<std::uint32_t>(index_payload,
                       static_cast<std::uint32_t>(entries.size()));
    BloomFilter bloom{entries.size(), config_.bloom_bits_per_key};
    for (const auto& [id, ref] : entries) {
        put<std::uint32_t>(index_payload, id);
        put<std::uint64_t>(index_payload, ref.offset);
        put<std::uint32_t>(index_payload, ref.frame_len);
        bloom.add(id);
    }

    std::string block = index_payload;
    put<std::uint32_t>(block,
                       static_cast<std::uint32_t>(index_payload.size()));
    put<std::uint32_t>(block,
                       checksum32(index_payload.data(), index_payload.size()));
    put<std::uint32_t>(block, kSealMagic);
    wire::write_file(seg.path, block, std::ios::app);

    seg.index_offset = seg.file_bytes;
    seg.index_len = static_cast<std::uint32_t>(index_payload.size());
    seg.file_bytes += block.size();
    seg.total_bytes += block.size();
    total_bytes_ += block.size();
    sealed_bytes_ += seg.total_bytes;
    seg.sealed = true;
    seg.bloom = std::move(bloom);  // exact key count replaces provisional
    seg.index.clear();
    ++stats_.segments_sealed;
}

void SsdBlockStore::write(std::uint32_t id,
                          std::span<const std::uint8_t> payload) {
    std::string frame = frame_record(id, payload);
    Segment* act = &active_locked();
    if (!act->index.empty() &&
        act->total_bytes + frame.size() > config_.segment_bytes) {
        const std::uint64_t next = act->seq + 1;
        seal_locked(*act);
        maybe_collect(act->seq);
        start_segment(next);
        act = &active_locked();
    }
    const RecordRef ref{act->file_bytes + act->pending.size(),
                        static_cast<std::uint32_t>(frame.size())};
    act->pending += frame;
    act->total_bytes += frame.size();
    total_bytes_ += frame.size();
    act->index[id] = ref;
    act->bloom.add(id);
    account_owner(id, act->seq);
    ++stats_.writes;
}

std::optional<std::vector<std::uint8_t>> SsdBlockStore::read_from(
    Segment& seg, std::uint32_t id) {
    std::string frame;
    if (!seg.sealed) {
        auto it = seg.index.find(id);
        if (it == seg.index.end()) {
            ++stats_.bloom_false_positives;
            return std::nullopt;
        }
        const RecordRef ref = it->second;
        if (ref.offset >= seg.file_bytes) {
            // Still in the buffered tail — memory, not disk.
            frame = seg.pending.substr(
                static_cast<std::size_t>(ref.offset - seg.file_bytes),
                ref.frame_len);
        } else {
            ++stats_.disk_reads;
            auto bytes = read_range(seg.path, ref.offset, ref.frame_len);
            if (!bytes) return std::nullopt;
            frame = std::move(*bytes);
        }
    } else {
        // On-disk index block: one read, binary search, one record read.
        ++stats_.disk_reads;
        const auto index = read_range(seg.path, seg.index_offset,
                                      seg.index_len);
        if (!index) return std::nullopt;
        std::size_t off = 0;
        std::uint32_t count = 0;
        if (!get(*index, off, count)) return std::nullopt;
        std::size_t lo = 0;
        std::size_t hi = count;
        RecordRef ref;
        bool found = false;
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            std::size_t eoff = 4 + mid * kIndexEntryLen;
            std::uint32_t eid = 0;
            if (!get(*index, eoff, eid)) return std::nullopt;
            if (eid == id) {
                std::uint64_t rec_off = 0;
                std::uint32_t frame_len = 0;
                if (!get(*index, eoff, rec_off) ||
                    !get(*index, eoff, frame_len)) {
                    return std::nullopt;
                }
                ref = RecordRef{rec_off, frame_len};
                found = true;
                break;
            }
            if (eid < id) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if (!found) {
            ++stats_.bloom_false_positives;
            return std::nullopt;
        }
        ++stats_.disk_reads;
        auto bytes = read_range(seg.path, ref.offset, ref.frame_len);
        if (!bytes) return std::nullopt;
        frame = std::move(*bytes);
    }
    auto rec = unframe_record(frame);
    if (!rec || rec->first != id) return std::nullopt;
    return std::move(rec->second);
}

std::optional<std::vector<std::uint8_t>> SsdBlockStore::read(
    std::uint32_t id) {
    ++stats_.reads;
    for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
        Segment& seg = it->second;
        if (!seg.bloom.maybe_contains(id)) {
            ++stats_.bloom_skips;
            continue;
        }
        if (auto bytes = read_from(seg, id)) {
            ++stats_.read_hits;
            return bytes;
        }
    }
    return std::nullopt;
}

void SsdBlockStore::erase(std::uint32_t id) {
    auto it = owner_.find(id);
    if (it == owner_.end()) return;
    const std::uint64_t seq = it->second;
    owner_.erase(it);
    auto sit = segments_.find(seq);
    if (sit != segments_.end() && sit->second.live > 0) {
        --sit->second.live;
        maybe_collect(seq);
    }
}

bool SsdBlockStore::contains(std::uint32_t id) const {
    return owner_.find(id) != owner_.end();
}

void SsdBlockStore::flush() {
    for (auto& [seq, seg] : segments_) {
        if (seg.pending.empty()) continue;
        wire::write_file(seg.path, seg.pending, std::ios::app);
        seg.file_bytes += seg.pending.size();
        seg.pending.clear();
    }
}

void SsdBlockStore::drop_unflushed() {
    // Everything buffered is gone; rebuild all in-memory state from what
    // disk actually holds — byte-for-byte the construction-time recovery.
    open_dir();
}

void SsdBlockStore::seal_active() {
    Segment& act = active_locked();
    if (act.index.empty()) return;  // nothing to seal
    const std::uint64_t next = act.seq + 1;
    seal_locked(act);
    maybe_collect(act.seq);
    start_segment(next);
}

void SsdBlockStore::clear() {
    for (const auto& [seq, seg] : segments_) {
        std::error_code ec;
        fs::remove(seg.path, ec);
    }
    segments_.clear();
    owner_.clear();
    total_bytes_ = 0;
    sealed_bytes_ = 0;
    start_segment(1);
}

std::vector<std::uint32_t> SsdBlockStore::live_ids() const {
    std::vector<std::uint32_t> ids;
    ids.reserve(owner_.size());
    for (const auto& [id, seq] : owner_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    return ids;
}

void SsdBlockStore::refresh_byte_totals() {
    total_bytes_ = 0;
    sealed_bytes_ = 0;
    for (const auto& [seq, seg] : segments_) {
        total_bytes_ += seg.total_bytes;
        if (seg.sealed) sealed_bytes_ += seg.total_bytes;
    }
}

}  // namespace spider::storage
