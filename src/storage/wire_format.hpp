#pragma once

// Shared on-disk framing helpers for the persistence layer.
//
// Both the residency WAL (wal.cpp) and the SSD block store
// (ssd_block_store.cpp) frame every record as
//
//     [u32 payload_len][u32 checksum32(payload)][payload]
//
// with the same SplitMix64-derived checksum, so a torn or corrupt tail is
// detected identically in both files and the recovery scans share one
// discipline: a bad frame ends replay, everything before it is intact.

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>

namespace spider::storage::wire {

/// SplitMix64 finalizer (same mix as the fault model's draw stream).
[[nodiscard]] inline std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

[[nodiscard]] inline std::uint32_t checksum32(const char* data,
                                              std::size_t len) {
    std::uint64_t h = 0x5CA1AB1EULL ^ len;
    std::size_t i = 0;
    for (; i + 8 <= len; i += 8) {
        std::uint64_t chunk = 0;
        std::memcpy(&chunk, data + i, 8);
        h = mix64(h ^ chunk);
    }
    std::uint64_t tail = 0;
    if (i < len) {
        std::memcpy(&tail, data + i, len - i);
        h = mix64(h ^ tail);
    }
    return static_cast<std::uint32_t>(h ^ (h >> 32));
}

template <typename T>
void put(std::string& out, T value) {
    char bytes[sizeof(T)];
    std::memcpy(bytes, &value, sizeof(T));
    out.append(bytes, sizeof(T));
}

template <typename T>
[[nodiscard]] bool get(const std::string& in, std::size_t& off, T& value) {
    if (off + sizeof(T) > in.size()) return false;
    std::memcpy(&value, in.data() + off, sizeof(T));
    off += sizeof(T);
    return true;
}

[[nodiscard]] inline std::string read_file(const std::string& path) {
    std::ifstream is{path, std::ios::binary};
    if (!is) return {};
    std::string bytes{std::istreambuf_iterator<char>{is},
                      std::istreambuf_iterator<char>{}};
    return bytes;
}

inline void write_file(const std::string& path, const std::string& bytes,
                       std::ios::openmode mode) {
    std::ofstream os{path, std::ios::binary | mode};
    if (!os) {
        throw std::runtime_error("storage: cannot open " + path +
                                 " for writing");
    }
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!os) throw std::runtime_error("storage: short write to " + path);
}

}  // namespace spider::storage::wire
