// clock.hpp is header-only; this TU anchors the target so the library has
// at least one object file even when other sources are pruned.
#include "storage/clock.hpp"

namespace spider::storage {
static_assert(from_ms(1.0) == SimDuration{1'000'000});
}  // namespace spider::storage
