#include "storage/resilient_store.hpp"

#include <algorithm>
#include <cmath>

namespace spider::storage {

namespace {

// Histogram geometry: bucket b covers [kHistoMinMs * 2^b, kHistoMinMs *
// 2^(b+1)) — 48 octaves from 10 µs to ~78 hours of virtual time.
constexpr double kHistoMinMs = 0.01;

// Context tag mixed into hedge draws so the duplicate request sees
// weather independent of its primary (contexts 0..15 are caller-chosen).
constexpr std::uint32_t kHedgeContextBit = 0x10;
// Purpose tag of the backoff-jitter draw (the fault model uses 0..2).
constexpr std::uint32_t kPurposeJitter = 8;

[[nodiscard]] std::size_t bucket_of(double ms, std::size_t buckets) {
    if (ms <= kHistoMinMs) return 0;
    const auto b = static_cast<std::size_t>(std::log2(ms / kHistoMinMs));
    return std::min(b, buckets - 1);
}

}  // namespace

ResilientStore::ResilientStore(RemoteStore& remote,
                               FaultModelConfig fault_config,
                               ResiliencePolicy policy)
    : remote_{remote},
      faults_{fault_config, remote.fetch_cost(0)},
      policy_{policy},
      base_cost_{remote.fetch_cost(0)} {
    policy_.max_attempts = std::clamp<std::size_t>(policy_.max_attempts, 1, 16);
    if (policy_.hedge_delay_ms > 0.0) {
        hedge_delay_ns_.store(from_ms(policy_.hedge_delay_ms).count(),
                              std::memory_order_relaxed);
    }
}

SimDuration ResilientStore::backoff_before(std::uint32_t id,
                                           std::uint32_t attempt) const {
    double wait_ms =
        policy_.backoff_base_ms *
        std::pow(policy_.backoff_mult, static_cast<double>(attempt - 1));
    wait_ms = std::min(wait_ms, policy_.backoff_max_ms);
    if (policy_.backoff_jitter > 0.0) {
        const double u = faults_.unit_draw(id, attempt, 0, kPurposeJitter);
        wait_ms *= 1.0 + policy_.backoff_jitter * (2.0 * u - 1.0);
    }
    return from_ms(std::max(wait_ms, 0.0));
}

void ResilientStore::record_latency(SimDuration latency) {
    latency_histo_[bucket_of(to_ms(latency), kHistogramBuckets)].fetch_add(
        1, std::memory_order_relaxed);
    latency_samples_.fetch_add(1, std::memory_order_relaxed);
}

double ResilientStore::histogram_quantile_ms(double q) const {
    const std::uint64_t total =
        latency_samples_.load(std::memory_order_relaxed);
    if (total == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(total));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        seen += latency_histo_[b].load(std::memory_order_relaxed);
        if (seen > target) {
            // Upper edge of the bucket: hedging should fire only once the
            // primary is slower than (nearly) everything observed.
            return kHistoMinMs * std::pow(2.0, static_cast<double>(b + 1));
        }
    }
    return kHistoMinMs * std::pow(2.0, static_cast<double>(kHistogramBuckets));
}

ResilientStore::BreakerState ResilientStore::breaker_state(
    SimDuration now) const {
    const auto state =
        static_cast<BreakerState>(breaker_.load(std::memory_order_acquire));
    if (state == BreakerState::kOpen &&
        now.count() >= breaker_reopen_ns_.load(std::memory_order_acquire)) {
        return BreakerState::kHalfOpen;
    }
    return state;
}

FetchResult ResilientStore::fetch(std::uint32_t id, SimDuration now,
                                  std::uint32_t context) {
    FetchResult result;
    fetches_.fetch_add(1, std::memory_order_relaxed);
    if (!faults_.enabled()) {
        // Healthy backend: one attempt, nominal cost, zero extra state.
        (void)remote_.fetch(id);
        result.ok = true;
        result.attempts = 1;
        result.cost = base_cost_;
        attempts_.fetch_add(1, std::memory_order_relaxed);
        successes_.fetch_add(1, std::memory_order_relaxed);
        return result;
    }

    if (policy_.breaker_failure_threshold > 0 &&
        breaker_state(now) == BreakerState::kOpen) {
        result.breaker_rejected = true;
        breaker_fast_fails_.fetch_add(1, std::memory_order_relaxed);
        failures_.fetch_add(1, std::memory_order_relaxed);
        return result;  // instant client-side rejection: zero cost
    }

    const SimDuration hedge_after = hedge_delay();
    SimDuration cost{};
    for (std::uint32_t attempt = 0; attempt < policy_.max_attempts;
         ++attempt) {
        ++result.attempts;
        attempts_.fetch_add(1, std::memory_order_relaxed);
        if (attempt > 0) {
            retries_.fetch_add(1, std::memory_order_relaxed);
            cost += backoff_before(id, attempt);
        }

        const FaultOutcome primary =
            faults_.evaluate(id, attempt, now, context);
        record_latency(primary.latency);
        SimDuration attempt_cost = primary.latency;
        bool ok = primary.ok();

        // Hedge: the duplicate goes out once the primary has been
        // outstanding for hedge_after; first completion wins. A primary
        // that would *fail* after hedge_after (timeout, outage) can be
        // rescued by a fast duplicate — that is the entire point.
        if (policy_.hedge_enabled && hedge_after > SimDuration::zero() &&
            primary.latency > hedge_after) {
            result.hedged = true;
            hedges_.fetch_add(1, std::memory_order_relaxed);
            const FaultOutcome dup = faults_.evaluate(
                id, attempt, now, context | kHedgeContextBit);
            const SimDuration dup_done = hedge_after + dup.latency;
            if (dup.ok() && (!ok || dup_done < attempt_cost)) {
                result.hedge_won = true;
                hedge_wins_.fetch_add(1, std::memory_order_relaxed);
                attempt_cost = ok ? std::min(attempt_cost, dup_done)
                                  : dup_done;
                ok = true;
            } else if (!dup.ok() && !ok) {
                // Both failed: the envelope learns of failure when the
                // later of the two gives up.
                attempt_cost = std::max(attempt_cost, dup_done);
            }
        }

        cost += attempt_cost;
        if (ok) {
            (void)remote_.fetch(id);
            result.ok = true;
            break;
        }
        result.last_fault = primary.kind;
    }

    result.cost = cost;
    if (result.ok) {
        successes_.fetch_add(1, std::memory_order_relaxed);
        fault_time_ns_.fetch_add((cost - base_cost_).count(),
                                 std::memory_order_relaxed);
    } else {
        failures_.fetch_add(1, std::memory_order_relaxed);
        fault_time_ns_.fetch_add(cost.count(), std::memory_order_relaxed);
    }
    return result;
}

void ResilientStore::on_batch_end(std::uint64_t failures,
                                  std::uint64_t successes, SimDuration now) {
    if (!faults_.enabled()) return;

    // Refresh the auto hedge delay once enough attempts are on record.
    if (policy_.hedge_enabled && policy_.hedge_delay_ms <= 0.0 &&
        latency_samples_.load(std::memory_order_relaxed) >= 64) {
        const double q_ms = histogram_quantile_ms(policy_.hedge_quantile);
        hedge_delay_ns_.store(from_ms(q_ms).count(),
                              std::memory_order_relaxed);
    }

    if (policy_.breaker_failure_threshold == 0) return;
    const BreakerState state = breaker_state(now);
    switch (state) {
        case BreakerState::kOpen:
            return;  // still cooling down
        case BreakerState::kHalfOpen:
            if (successes > 0) {
                // Probe batch reached the backend: close.
                failure_streak_ = 0;
                breaker_.store(static_cast<std::uint8_t>(BreakerState::kClosed),
                               std::memory_order_release);
            } else if (failures > 0) {
                // Still dead: re-open for another cooldown.
                breaker_trips_.fetch_add(1, std::memory_order_relaxed);
                breaker_reopen_ns_.store(
                    (now + from_ms(policy_.breaker_cooldown_ms)).count(),
                    std::memory_order_release);
                breaker_.store(static_cast<std::uint8_t>(BreakerState::kOpen),
                               std::memory_order_release);
            }
            return;
        case BreakerState::kClosed:
            break;
    }
    // Closed: a batch with any success resets the streak (the backend is
    // alive); an all-failure batch extends it — the signature of an
    // outage, not of sporadic transients.
    if (successes > 0) {
        failure_streak_ = 0;
    } else {
        failure_streak_ += failures;
    }
    if (failure_streak_ >= policy_.breaker_failure_threshold) {
        failure_streak_ = 0;
        breaker_trips_.fetch_add(1, std::memory_order_relaxed);
        breaker_reopen_ns_.store(
            (now + from_ms(policy_.breaker_cooldown_ms)).count(),
            std::memory_order_release);
        breaker_.store(static_cast<std::uint8_t>(BreakerState::kOpen),
                       std::memory_order_release);
    }
}

ResilientStore::Counters ResilientStore::counters() const {
    Counters c;
    c.fetches = fetches_.load(std::memory_order_relaxed);
    c.attempts = attempts_.load(std::memory_order_relaxed);
    c.retries = retries_.load(std::memory_order_relaxed);
    c.hedges = hedges_.load(std::memory_order_relaxed);
    c.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
    c.successes = successes_.load(std::memory_order_relaxed);
    c.failures = failures_.load(std::memory_order_relaxed);
    c.breaker_fast_fails = breaker_fast_fails_.load(std::memory_order_relaxed);
    c.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
    c.fault_time = SimDuration{fault_time_ns_.load(std::memory_order_relaxed)};
    return c;
}

}  // namespace spider::storage
