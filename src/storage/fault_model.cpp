#include "storage/fault_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace spider::storage {

namespace {

/// SplitMix64 finalizer: a full-avalanche mix so that nearby
/// (id, attempt) keys give uncorrelated draws.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

// Purpose tags keep the independent draws of one attempt apart.
// (ResilientStore claims 8 for its backoff jitter.)
constexpr std::uint32_t kPurposeTransient = 0;
constexpr std::uint32_t kPurposeSpike = 1;
constexpr std::uint32_t kPurposeSpikeMag = 2;
constexpr std::uint32_t kPurposeWeather = 16;

void require_prob(double p, const char* name) {
    if (p < 0.0 || p > 1.0) {
        throw std::invalid_argument(std::string{"faults: "} + name + " = " +
                                    std::to_string(p) +
                                    " must be a probability in [0, 1]");
    }
}

void require_non_negative(double v, const char* name) {
    if (v < 0.0) {
        throw std::invalid_argument(std::string{"faults: "} + name + " = " +
                                    std::to_string(v) +
                                    " must be non-negative");
    }
}

}  // namespace

void validate(const FaultModelConfig& config) {
    require_prob(config.transient_failure_prob, "transient_prob");
    require_prob(config.latency_spike_prob, "spike_prob");
    require_non_negative(config.latency_spike_mult, "spike_mult");
    require_non_negative(config.timeout_ms, "timeout_ms");
    require_non_negative(config.outage_start_ms, "outage_start_ms");
    require_non_negative(config.outage_duration_ms, "outage_duration_ms");
    require_non_negative(config.outage_period_ms, "outage_period_ms");
    require_non_negative(config.brownout_duration_ms, "brownout_duration_ms");
    if (config.brownout_factor < 1.0) {
        throw std::invalid_argument(
            "faults: brownout_factor = " +
            std::to_string(config.brownout_factor) +
            " must be >= 1.0 (1.0 disables the brownout tail; a recovery "
            "that is *faster* than healthy makes no sense)");
    }
    if (config.outage_period_ms > 0.0 &&
        config.outage_duration_ms > config.outage_period_ms) {
        throw std::invalid_argument(
            "faults: outage_duration_ms = " +
            std::to_string(config.outage_duration_ms) +
            " exceeds outage_period_ms = " +
            std::to_string(config.outage_period_ms) +
            " — periodic windows would overlap into a permanent outage; "
            "set period to 0 for a single window or shorten the duration");
    }
    const FaultWeatherConfig& w = config.weather;
    if (w.enabled && w.slot_ms <= 0.0) {
        throw std::invalid_argument(
            "faults: weather.slot_ms = " + std::to_string(w.slot_ms) +
            " must be > 0 when the weather chain is enabled");
    }
    require_prob(w.p_degrade, "weather.p_degrade");
    require_prob(w.p_recover, "weather.p_recover");
    require_prob(w.p_fail, "weather.p_fail");
    require_prob(w.p_restore, "weather.p_restore");
    if (w.p_recover + w.p_fail > 1.0) {
        throw std::invalid_argument(
            "faults: weather.p_recover + weather.p_fail = " +
            std::to_string(w.p_recover + w.p_fail) +
            " exceeds 1.0 — the degraded state cannot leave with total "
            "probability above 1");
    }
    if (w.degraded_mult < 1.0) {
        throw std::invalid_argument(
            "faults: weather.degraded_mult = " +
            std::to_string(w.degraded_mult) +
            " must be >= 1.0 (degraded weather cannot make faults rarer)");
    }
    if (w.degraded_slowdown < 1.0) {
        throw std::invalid_argument(
            "faults: weather.degraded_slowdown = " +
            std::to_string(w.degraded_slowdown) +
            " must be >= 1.0 (degraded weather cannot speed fetches up)");
    }
}

FaultModel::FaultModel(FaultModelConfig config, SimDuration base_latency)
    : config_{config}, base_latency_{base_latency} {
    validate(config_);
}

double FaultModel::unit_draw(std::uint32_t id, std::uint32_t attempt,
                             std::uint32_t context,
                             std::uint32_t purpose) const {
    // Pack the coordinates into disjoint bit ranges, then avalanche. The
    // seed is folded in twice (pre- and post-mix) so that flipping one
    // seed bit reshuffles every draw.
    const std::uint64_t key = (static_cast<std::uint64_t>(id) << 24) |
                              (static_cast<std::uint64_t>(context) << 16) |
                              (static_cast<std::uint64_t>(attempt) << 8) |
                              static_cast<std::uint64_t>(purpose);
    const std::uint64_t h = mix64(config_.seed ^ mix64(key + config_.seed));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultModel::in_outage(SimDuration now) const {
    if (config_.outage_duration_ms <= 0.0) return false;
    const double t = to_ms(now);
    if (t < config_.outage_start_ms) return false;
    double rel = t - config_.outage_start_ms;
    if (config_.outage_period_ms > 0.0) {
        rel = std::fmod(rel, config_.outage_period_ms);
    }
    return rel < config_.outage_duration_ms;
}

double FaultModel::slowdown(SimDuration now) const {
    if (config_.brownout_factor <= 1.0 || config_.brownout_duration_ms <= 0.0 ||
        config_.outage_duration_ms <= 0.0) {
        return 1.0;
    }
    const double t = to_ms(now);
    if (t < config_.outage_start_ms) return 1.0;
    double rel = t - config_.outage_start_ms;
    if (config_.outage_period_ms > 0.0) {
        rel = std::fmod(rel, config_.outage_period_ms);
    }
    const double brownout_end =
        config_.outage_duration_ms + config_.brownout_duration_ms;
    return (rel >= config_.outage_duration_ms && rel < brownout_end)
               ? config_.brownout_factor
               : 1.0;
}

WeatherState FaultModel::weather_state_at_slot(std::uint64_t slot) const {
    if (!config_.weather.enabled) return WeatherState::kGood;
    std::lock_guard<std::mutex> lock(weather_mu_);
    if (weather_states_.empty()) {
        weather_states_.push_back(
            static_cast<std::uint8_t>(WeatherState::kGood));
    }
    const FaultWeatherConfig& w = config_.weather;
    while (weather_states_.size() <= slot) {
        const auto prev =
            static_cast<WeatherState>(weather_states_.back());
        // One transition draw per slot boundary; the slot index rides in
        // the id coordinate of the shared draw-key packing, so the chain
        // never collides with per-attempt streams (distinct purpose tag).
        const double u =
            unit_draw(static_cast<std::uint32_t>(weather_states_.size()), 0, 0,
                      kPurposeWeather);
        WeatherState next = prev;
        switch (prev) {
            case WeatherState::kGood:
                if (u < w.p_degrade) next = WeatherState::kDegraded;
                break;
            case WeatherState::kDegraded:
                if (u < w.p_fail) {
                    next = WeatherState::kOutage;
                } else if (u < w.p_fail + w.p_recover) {
                    next = WeatherState::kGood;
                }
                break;
            case WeatherState::kOutage:
                if (u < w.p_restore) next = WeatherState::kDegraded;
                break;
        }
        weather_states_.push_back(static_cast<std::uint8_t>(next));
    }
    return static_cast<WeatherState>(weather_states_[slot]);
}

WeatherState FaultModel::weather_state(SimDuration now) const {
    if (!config_.weather.enabled) return WeatherState::kGood;
    const double t = to_ms(now);
    const auto slot =
        static_cast<std::uint64_t>(std::max(0.0, t / config_.weather.slot_ms));
    return weather_state_at_slot(slot);
}

FaultOutcome FaultModel::evaluate(std::uint32_t id, std::uint32_t attempt,
                                  SimDuration now,
                                  std::uint32_t context) const {
    FaultOutcome out;
    if (!config_.enabled) {
        out.latency = base_latency_;
        return out;
    }
    const double base_ms = to_ms(base_latency_);
    if (in_outage(now)) {
        // Unreachable backend: the client burns its full timeout before
        // giving up (or one nominal round trip when no timeout is set).
        out.kind = FaultKind::kOutage;
        out.latency = config_.timeout_ms > 0.0 ? from_ms(config_.timeout_ms)
                                               : base_latency_;
        outage_rejections_.fetch_add(1, std::memory_order_relaxed);
        return out;
    }

    // Weather modulation. Disabled (or a good-weather slot) leaves every
    // probability and multiplier untouched, so the draw arithmetic below
    // is bit-identical to the plain i.i.d. model.
    double transient_prob = config_.transient_failure_prob;
    double spike_prob = config_.latency_spike_prob;
    double weather_slow = 1.0;
    if (config_.weather.enabled) {
        switch (weather_state(now)) {
            case WeatherState::kGood:
                break;
            case WeatherState::kDegraded:
                transient_prob = std::min(
                    1.0, transient_prob * config_.weather.degraded_mult);
                spike_prob =
                    std::min(1.0, spike_prob * config_.weather.degraded_mult);
                weather_slow = config_.weather.degraded_slowdown;
                break;
            case WeatherState::kOutage:
                out.kind = FaultKind::kOutage;
                out.latency = config_.timeout_ms > 0.0
                                  ? from_ms(config_.timeout_ms)
                                  : base_latency_;
                weather_rejections_.fetch_add(1, std::memory_order_relaxed);
                return out;
        }
    }

    double latency_ms = base_ms * slowdown(now) * weather_slow;
    if (spike_prob > 0.0 &&
        unit_draw(id, attempt, context, kPurposeSpike) < spike_prob) {
        latency_ms = base_ms * config_.latency_spike_mult *
                     (0.5 + unit_draw(id, attempt, context, kPurposeSpikeMag));
        spikes_.fetch_add(1, std::memory_order_relaxed);
    }
    if (config_.timeout_ms > 0.0 && latency_ms >= config_.timeout_ms) {
        out.kind = FaultKind::kTimeout;
        out.latency = from_ms(config_.timeout_ms);
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        return out;
    }
    if (transient_prob > 0.0 &&
        unit_draw(id, attempt, context, kPurposeTransient) < transient_prob) {
        // The error reply arrives with the attempt's latency.
        out.kind = FaultKind::kTransient;
        out.latency = from_ms(latency_ms);
        transients_.fetch_add(1, std::memory_order_relaxed);
        return out;
    }
    out.latency = from_ms(latency_ms);
    return out;
}

void FaultModel::reset_counters() {
    transients_.store(0, std::memory_order_relaxed);
    spikes_.store(0, std::memory_order_relaxed);
    timeouts_.store(0, std::memory_order_relaxed);
    outage_rejections_.store(0, std::memory_order_relaxed);
    weather_rejections_.store(0, std::memory_order_relaxed);
}

}  // namespace spider::storage
