#include "storage/fault_model.hpp"

#include <cmath>

namespace spider::storage {

namespace {

/// SplitMix64 finalizer: a full-avalanche mix so that nearby
/// (id, attempt) keys give uncorrelated draws.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

// Purpose tags keep the independent draws of one attempt apart.
constexpr std::uint32_t kPurposeTransient = 0;
constexpr std::uint32_t kPurposeSpike = 1;
constexpr std::uint32_t kPurposeSpikeMag = 2;

}  // namespace

FaultModel::FaultModel(FaultModelConfig config, SimDuration base_latency)
    : config_{config}, base_latency_{base_latency} {}

double FaultModel::unit_draw(std::uint32_t id, std::uint32_t attempt,
                             std::uint32_t context,
                             std::uint32_t purpose) const {
    // Pack the coordinates into disjoint bit ranges, then avalanche. The
    // seed is folded in twice (pre- and post-mix) so that flipping one
    // seed bit reshuffles every draw.
    const std::uint64_t key = (static_cast<std::uint64_t>(id) << 24) |
                              (static_cast<std::uint64_t>(context) << 16) |
                              (static_cast<std::uint64_t>(attempt) << 8) |
                              static_cast<std::uint64_t>(purpose);
    const std::uint64_t h = mix64(config_.seed ^ mix64(key + config_.seed));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultModel::in_outage(SimDuration now) const {
    if (config_.outage_duration_ms <= 0.0) return false;
    const double t = to_ms(now);
    if (t < config_.outage_start_ms) return false;
    double rel = t - config_.outage_start_ms;
    if (config_.outage_period_ms > 0.0) {
        rel = std::fmod(rel, config_.outage_period_ms);
    }
    return rel < config_.outage_duration_ms;
}

double FaultModel::slowdown(SimDuration now) const {
    if (config_.brownout_factor <= 1.0 || config_.brownout_duration_ms <= 0.0 ||
        config_.outage_duration_ms <= 0.0) {
        return 1.0;
    }
    const double t = to_ms(now);
    if (t < config_.outage_start_ms) return 1.0;
    double rel = t - config_.outage_start_ms;
    if (config_.outage_period_ms > 0.0) {
        rel = std::fmod(rel, config_.outage_period_ms);
    }
    const double brownout_end =
        config_.outage_duration_ms + config_.brownout_duration_ms;
    return (rel >= config_.outage_duration_ms && rel < brownout_end)
               ? config_.brownout_factor
               : 1.0;
}

FaultOutcome FaultModel::evaluate(std::uint32_t id, std::uint32_t attempt,
                                  SimDuration now,
                                  std::uint32_t context) const {
    FaultOutcome out;
    if (!config_.enabled) {
        out.latency = base_latency_;
        return out;
    }
    const double base_ms = to_ms(base_latency_);
    if (in_outage(now)) {
        // Unreachable backend: the client burns its full timeout before
        // giving up (or one nominal round trip when no timeout is set).
        out.kind = FaultKind::kOutage;
        out.latency = config_.timeout_ms > 0.0 ? from_ms(config_.timeout_ms)
                                               : base_latency_;
        outage_rejections_.fetch_add(1, std::memory_order_relaxed);
        return out;
    }

    double latency_ms = base_ms * slowdown(now);
    if (config_.latency_spike_prob > 0.0 &&
        unit_draw(id, attempt, context, kPurposeSpike) <
            config_.latency_spike_prob) {
        latency_ms = base_ms * config_.latency_spike_mult *
                     (0.5 + unit_draw(id, attempt, context, kPurposeSpikeMag));
        spikes_.fetch_add(1, std::memory_order_relaxed);
    }
    if (config_.timeout_ms > 0.0 && latency_ms >= config_.timeout_ms) {
        out.kind = FaultKind::kTimeout;
        out.latency = from_ms(config_.timeout_ms);
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        return out;
    }
    if (config_.transient_failure_prob > 0.0 &&
        unit_draw(id, attempt, context, kPurposeTransient) <
            config_.transient_failure_prob) {
        // The error reply arrives with the attempt's latency.
        out.kind = FaultKind::kTransient;
        out.latency = from_ms(latency_ms);
        transients_.fetch_add(1, std::memory_order_relaxed);
        return out;
    }
    out.latency = from_ms(latency_ms);
    return out;
}

void FaultModel::reset_counters() {
    transients_.store(0, std::memory_order_relaxed);
    spikes_.store(0, std::memory_order_relaxed);
    timeouts_.store(0, std::memory_order_relaxed);
    outage_rejections_.store(0, std::memory_order_relaxed);
}

}  // namespace spider::storage
