#include "storage/wal.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <list>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "storage/wire_format.hpp"

namespace spider::storage {

namespace {

using wire::checksum32;
using wire::get;
using wire::put;
using wire::read_file;

void write_file(const std::string& path, const std::string& bytes,
                std::ios::openmode mode) {
    wire::write_file(path, bytes, mode);
}

/// A single record can describe one homophily entry; its neighbor list
/// is small (one per resident key). Anything bigger than this is a torn
/// or corrupt length prefix, not a real record.
constexpr std::uint32_t kMaxPayload = 1U << 20;

[[nodiscard]] std::string serialize(const cache::ResidencyRecord& record) {
    std::string payload;
    payload.reserve(25 + record.neighbors.size() * 4);
    put<std::uint8_t>(payload, static_cast<std::uint8_t>(record.op));
    put<std::uint32_t>(payload, record.id);
    put<double>(payload, record.score);
    put<std::uint64_t>(payload, record.generation);
    put<std::uint32_t>(payload,
                       static_cast<std::uint32_t>(record.neighbors.size()));
    for (std::uint32_t n : record.neighbors) put<std::uint32_t>(payload, n);

    std::string framed;
    framed.reserve(payload.size() + 8);
    put<std::uint32_t>(framed, static_cast<std::uint32_t>(payload.size()));
    put<std::uint32_t>(framed, checksum32(payload.data(), payload.size()));
    framed += payload;
    return framed;
}

[[nodiscard]] bool deserialize(const std::string& payload,
                               cache::ResidencyRecord& out) {
    std::size_t off = 0;
    std::uint8_t op = 0;
    std::uint32_t count = 0;
    if (!get(payload, off, op) || !get(payload, off, out.id) ||
        !get(payload, off, out.score) || !get(payload, off, out.generation) ||
        !get(payload, off, count)) {
        return false;
    }
    if (op < static_cast<std::uint8_t>(cache::ResidencyOp::kAdmitImportance) ||
        op > static_cast<std::uint8_t>(cache::ResidencyOp::kSsdEvict)) {
        return false;
    }
    out.op = static_cast<cache::ResidencyOp>(op);
    if (off + static_cast<std::size_t>(count) * 4 != payload.size()) {
        return false;
    }
    out.neighbors.resize(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        if (!get(payload, off, out.neighbors[i])) return false;
    }
    return true;
}

}  // namespace

CacheWal::CacheWal(WalConfig config) : config_{std::move(config)} {
    if (!config_.enabled) return;
    if (config_.dir.empty()) {
        throw std::invalid_argument(
            "wal: enabled but no directory configured (set wal.dir)");
    }
    std::filesystem::create_directories(config_.dir);
}

CacheWal::~CacheWal() {
    // Clean close: persist the buffered tail. A simulated kill -9 calls
    // drop_unflushed() first, so the tail is already gone by the time the
    // destructor runs.
    try {
        flush();
    } catch (...) {
        // Destructor must not throw; a failed final flush just means the
        // tail is lost, which the load() path tolerates by design.
    }
}

std::string CacheWal::wal_path() const {
    return (std::filesystem::path{config_.dir} / "cache.wal").string();
}

std::string CacheWal::snapshot_path() const {
    return (std::filesystem::path{config_.dir} / "cache.snapshot").string();
}

void CacheWal::append(const cache::ResidencyRecord& record) {
    if (!config_.enabled) return;
    const std::lock_guard lock{mu_};
    pending_ += serialize(record);
    ++appended_;
    if (config_.sync_every_append) {
        write_file(wal_path(), pending_, std::ios::app);
        pending_.clear();
    }
}

void CacheWal::flush() {
    if (!config_.enabled) return;
    const std::lock_guard lock{mu_};
    if (pending_.empty()) return;
    write_file(wal_path(), pending_, std::ios::app);
    pending_.clear();
}

void CacheWal::drop_unflushed() {
    if (!config_.enabled) return;
    const std::lock_guard lock{mu_};
    pending_.clear();
}

void CacheWal::compact(const cache::RestoreImage& image) {
    if (!config_.enabled) return;
    const std::lock_guard lock{mu_};
    std::string bytes;
    cache::ResidencyRecord record;
    for (const auto& [id, score] : image.importance) {
        record = {};
        record.op = cache::ResidencyOp::kAdmitImportance;
        record.id = id;
        record.score = score;
        bytes += serialize(record);
    }
    for (const auto& [key, neighbors] : image.homophily) {
        record = {};
        record.op = cache::ResidencyOp::kAdmitHomophily;
        record.id = key;
        record.neighbors = neighbors;
        bytes += serialize(record);
    }
    for (std::uint32_t id : image.ssd) {
        record = {};
        record.op = cache::ResidencyOp::kSsdInsert;
        record.id = id;
        bytes += serialize(record);
    }
    // Tmp + rename so a crash mid-compaction keeps the old snapshot.
    const std::string tmp = snapshot_path() + ".tmp";
    write_file(tmp, bytes, std::ios::trunc);
    std::filesystem::rename(tmp, snapshot_path());
    // Everything folded into the snapshot: the log starts over.
    write_file(wal_path(), "", std::ios::trunc);
    pending_.clear();
}

std::uint64_t CacheWal::parse_records(const std::string& bytes,
                                      std::vector<cache::ResidencyRecord>& out) {
    std::size_t off = 0;
    while (off < bytes.size()) {
        std::size_t cursor = off;
        std::uint32_t len = 0;
        std::uint32_t sum = 0;
        if (!get(bytes, cursor, len) || !get(bytes, cursor, sum) ||
            len > kMaxPayload || cursor + len > bytes.size()) {
            return 1;  // torn tail: header or payload incomplete
        }
        if (checksum32(bytes.data() + cursor, len) != sum) {
            return 1;  // corrupt record ends replay
        }
        cache::ResidencyRecord record;
        if (!deserialize(bytes.substr(cursor, len), record)) {
            return 1;
        }
        out.push_back(std::move(record));
        off = cursor + len;
    }
    return 0;
}

cache::RestoreImage CacheWal::fold(
    cache::RestoreImage base,
    const std::vector<cache::ResidencyRecord>& records) {
    // Importance: last-writer-wins map (restore re-sorts by score).
    std::unordered_map<std::uint32_t, double> importance;
    for (const auto& [id, score] : base.importance) importance[id] = score;
    // Homophily and SSD: order-preserving lists (FIFO / LRU horizons).
    std::list<std::uint32_t> hom_order;
    std::unordered_map<std::uint32_t,
                       std::pair<std::list<std::uint32_t>::iterator,
                                 std::vector<std::uint32_t>>>
        hom;
    for (auto& [key, neighbors] : base.homophily) {
        hom_order.push_back(key);
        hom[key] = {std::prev(hom_order.end()), std::move(neighbors)};
    }
    std::list<std::uint32_t> ssd_order;
    std::unordered_map<std::uint32_t, std::list<std::uint32_t>::iterator> ssd;
    for (std::uint32_t id : base.ssd) {
        ssd_order.push_back(id);
        ssd[id] = std::prev(ssd_order.end());
    }

    for (const auto& record : records) {
        switch (record.op) {
            case cache::ResidencyOp::kAdmitImportance:
            case cache::ResidencyOp::kScoreUpdate:
                importance[record.id] = record.score;
                break;
            case cache::ResidencyOp::kEvictImportance:
                importance.erase(record.id);
                break;
            case cache::ResidencyOp::kAdmitHomophily: {
                if (auto it = hom.find(record.id); it != hom.end()) {
                    hom_order.erase(it->second.first);
                    hom.erase(it);
                }
                hom_order.push_back(record.id);
                hom[record.id] = {std::prev(hom_order.end()),
                                  record.neighbors};
                break;
            }
            case cache::ResidencyOp::kEvictHomophily: {
                if (auto it = hom.find(record.id); it != hom.end()) {
                    hom_order.erase(it->second.first);
                    hom.erase(it);
                }
                break;
            }
            case cache::ResidencyOp::kSsdInsert: {
                if (auto it = ssd.find(record.id); it != ssd.end()) {
                    ssd_order.erase(it->second);  // LRU touch: move to back
                }
                ssd_order.push_back(record.id);
                ssd[record.id] = std::prev(ssd_order.end());
                break;
            }
            case cache::ResidencyOp::kSsdEvict: {
                if (auto it = ssd.find(record.id); it != ssd.end()) {
                    ssd_order.erase(it->second);
                    ssd.erase(it);
                }
                break;
            }
        }
    }

    cache::RestoreImage out;
    out.importance.assign(importance.begin(), importance.end());
    // Deterministic output independent of hash iteration order.
    std::sort(out.importance.begin(), out.importance.end());
    out.homophily.reserve(hom.size());
    for (std::uint32_t key : hom_order) {
        out.homophily.emplace_back(key, std::move(hom[key].second));
    }
    out.ssd.assign(ssd_order.begin(), ssd_order.end());
    return out;
}

cache::RestoreImage CacheWal::load() {
    if (!config_.enabled) return {};
    const std::lock_guard lock{mu_};
    dropped_ = 0;
    std::vector<cache::ResidencyRecord> snapshot_records;
    dropped_ += parse_records(read_file(snapshot_path()), snapshot_records);
    cache::RestoreImage image = fold({}, snapshot_records);
    std::vector<cache::ResidencyRecord> log_records;
    dropped_ += parse_records(read_file(wal_path()), log_records);
    return fold(std::move(image), log_records);
}

std::uint64_t CacheWal::appended_records() const {
    const std::lock_guard lock{mu_};
    return appended_;
}

std::uint64_t CacheWal::dropped_records() const {
    const std::lock_guard lock{mu_};
    return dropped_;
}

}  // namespace spider::storage
