#include "storage/remote_store.hpp"

namespace spider::storage {

RemoteStore::RemoteStore(const data::SyntheticDataset& dataset,
                         RemoteStoreConfig config)
    : dataset_{dataset}, config_{config} {}

const data::Sample& RemoteStore::fetch(std::uint32_t id) {
    total_fetches_.fetch_add(1, std::memory_order_relaxed);
    total_bytes_.fetch_add(dataset_.spec().bytes_per_sample,
                           std::memory_order_relaxed);
    return dataset_.sample(id);
}

SimDuration RemoteStore::fetch_cost(std::uint32_t /*id*/) const {
    const double transfer_ms =
        static_cast<double>(dataset_.spec().bytes_per_sample) /
        config_.bytes_per_ms;
    return config_.latency_per_sample + from_ms(transfer_ms);
}

SimDuration RemoteStore::batch_fetch_cost(std::size_t miss_count) const {
    if (miss_count == 0) return SimDuration::zero();
    const std::size_t workers = std::max<std::size_t>(config_.parallelism, 1);
    const std::size_t rounds = (miss_count + workers - 1) / workers;
    return fetch_cost(0) * static_cast<std::int64_t>(rounds);
}

void RemoteStore::reset_counters() {
    total_fetches_.store(0, std::memory_order_relaxed);
    total_bytes_.store(0, std::memory_order_relaxed);
}

}  // namespace spider::storage
