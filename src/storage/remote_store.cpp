#include "storage/remote_store.hpp"

namespace spider::storage {

RemoteStore::RemoteStore(const data::SyntheticDataset& dataset,
                         RemoteStoreConfig config)
    : dataset_{dataset}, config_{config} {}

/// RAII slot admission: acquires one of the capped fetch slots on
/// construction (blocking while the server is saturated), releases and
/// wakes one waiter on destruction. No-op when the cap is unlimited.
class RemoteStore::SlotGuard {
public:
    explicit SlotGuard(RemoteStore& store) : store_{store} {
        std::unique_lock lock{store_.slot_mu_};
        active_ = store_.slot_cap_ > 0;
        if (!active_) return;
        if (store_.in_flight_ >= store_.slot_cap_) {
            store_.slot_waits_.fetch_add(1, std::memory_order_relaxed);
            // The cap can change while we sleep: a waiter must also wake
            // when the cap is lifted entirely (cap == 0 means unlimited,
            // and `in_flight_ < 0` would otherwise strand it forever).
            store_.slot_cv_.wait(lock, [&] {
                return store_.slot_cap_ == 0 ||
                       store_.in_flight_ < store_.slot_cap_;
            });
            active_ = store_.slot_cap_ > 0;
            if (!active_) return;  // cap removed while we waited
        }
        ++store_.in_flight_;
        std::size_t peak =
            store_.peak_in_flight_.load(std::memory_order_relaxed);
        while (store_.in_flight_ > peak &&
               !store_.peak_in_flight_.compare_exchange_weak(
                   peak, store_.in_flight_, std::memory_order_relaxed)) {
        }
    }

    ~SlotGuard() {
        if (!active_) return;
        {
            const std::lock_guard lock{store_.slot_mu_};
            --store_.in_flight_;
        }
        store_.slot_cv_.notify_one();
    }

    SlotGuard(const SlotGuard&) = delete;
    SlotGuard& operator=(const SlotGuard&) = delete;

private:
    RemoteStore& store_;
    bool active_;
};

void RemoteStore::set_fetch_slot_cap(std::size_t cap) {
    {
        const std::lock_guard lock{slot_mu_};
        slot_cap_ = cap;
    }
    slot_cv_.notify_all();
}

const data::Sample& RemoteStore::fetch(std::uint32_t id) {
    const SlotGuard slot{*this};
    total_fetches_.fetch_add(1, std::memory_order_relaxed);
    total_bytes_.fetch_add(dataset_.spec().bytes_per_sample,
                           std::memory_order_relaxed);
    return dataset_.sample(id);
}

SimDuration RemoteStore::fetch_cost(std::uint32_t /*id*/) const {
    const double transfer_ms =
        static_cast<double>(dataset_.spec().bytes_per_sample) /
        config_.bytes_per_ms;
    return config_.latency_per_sample + from_ms(transfer_ms);
}

SimDuration RemoteStore::batch_fetch_cost(std::size_t miss_count) const {
    if (miss_count == 0) return SimDuration::zero();
    const std::size_t workers = std::max<std::size_t>(config_.parallelism, 1);
    const std::size_t rounds = (miss_count + workers - 1) / workers;
    return fetch_cost(0) * static_cast<std::int64_t>(rounds);
}

void RemoteStore::reset_counters() {
    total_fetches_.store(0, std::memory_order_relaxed);
    total_bytes_.store(0, std::memory_order_relaxed);
    reset_contention_counters();
}

void RemoteStore::reset_contention_counters() {
    slot_waits_.store(0, std::memory_order_relaxed);
    peak_in_flight_.store(0, std::memory_order_relaxed);
}

}  // namespace spider::storage
