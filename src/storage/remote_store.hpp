#pragma once

// Simulated remote dataset storage (the paper's NFS server reached over
// 10 GbE). A fetch costs `latency_per_sample` of virtual time plus a
// throughput term proportional to the sample's on-disk size; `parallelism`
// models the data-loader worker count, so a batch of k misses costs
// ceil(k / parallelism) serial rounds. Thread-safe counters support the
// multi-GPU simulator, where several workers contend for the same store.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>

#include "data/dataset.hpp"
#include "storage/clock.hpp"

namespace spider::storage {

struct RemoteStoreConfig {
    /// Virtual per-request latency (seek + RPC round trip).
    SimDuration latency_per_sample = from_ms(1.4);
    /// Virtual transfer rate in bytes per millisecond (10 Gbps ~ 1.25e6).
    double bytes_per_ms = 1.25e6;
    /// Concurrent fetch workers (PyTorch DataLoader num_workers analogue).
    std::size_t parallelism = 4;
};

class RemoteStore {
public:
    RemoteStore(const data::SyntheticDataset& dataset, RemoteStoreConfig config);

    [[nodiscard]] const RemoteStoreConfig& config() const { return config_; }

    /// The stored sample (features live in the dataset; the simulated I/O
    /// cost is what fetch accounting charges).
    [[nodiscard]] const data::Sample& fetch(std::uint32_t id);

    /// Virtual time to fetch one sample.
    [[nodiscard]] SimDuration fetch_cost(std::uint32_t id) const;

    /// Virtual wall time to fetch `miss_count` samples with the configured
    /// parallel fetch workers (the per-batch load-stage model).
    [[nodiscard]] SimDuration batch_fetch_cost(std::size_t miss_count) const;

    /// Caps concurrent fetch() calls across *all* threads at `cap` (the
    /// NFS-server bandwidth limit behind Fig. 17). 0 = unlimited, the
    /// default — single-threaded callers pay nothing. Excess callers block
    /// until a slot frees; contention is reported by slot_waits().
    void set_fetch_slot_cap(std::size_t cap);

    [[nodiscard]] std::uint64_t total_fetches() const {
        return total_fetches_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t total_bytes() const {
        return total_bytes_.load(std::memory_order_relaxed);
    }
    /// Times a fetch had to wait for a slot (capped mode only).
    [[nodiscard]] std::uint64_t slot_waits() const {
        return slot_waits_.load(std::memory_order_relaxed);
    }
    /// Highest concurrent in-flight fetch count observed (capped mode).
    [[nodiscard]] std::size_t peak_in_flight() const {
        return peak_in_flight_.load(std::memory_order_relaxed);
    }
    void reset_counters();
    /// Zeroes only the slot-contention counters (slot_waits /
    /// peak_in_flight) so per-epoch reporting can snapshot them fresh
    /// without disturbing the monotone fetch/byte totals.
    void reset_contention_counters();

private:
    class SlotGuard;

    const data::SyntheticDataset& dataset_;
    RemoteStoreConfig config_;
    std::atomic<std::uint64_t> total_fetches_{0};
    std::atomic<std::uint64_t> total_bytes_{0};

    // Fetch-slot admission (inactive while slot_cap_ == 0).
    std::mutex slot_mu_;
    std::condition_variable slot_cv_;
    std::size_t slot_cap_ = 0;
    std::size_t in_flight_ = 0;
    std::atomic<std::uint64_t> slot_waits_{0};
    std::atomic<std::size_t> peak_in_flight_{0};
};

}  // namespace spider::storage
