#pragma once

// Virtual time. All storage and compute costs in the simulator advance a
// VirtualClock instead of sleeping, so 100-epoch "hours-long" training runs
// finish in seconds of wall time while preserving every timing ratio. The
// clock is monotone and thread-compatible: the multi-GPU simulator gives
// each worker its own clock and merges with max() at barriers (data-parallel
// workers synchronize on the slowest).

#include <chrono>
#include <cstdint>

namespace spider::storage {

using SimDuration = std::chrono::nanoseconds;

[[nodiscard]] constexpr SimDuration from_ms(double ms) {
    return SimDuration{static_cast<std::int64_t>(ms * 1e6)};
}

[[nodiscard]] constexpr double to_ms(SimDuration d) {
    return static_cast<double>(d.count()) / 1e6;
}

[[nodiscard]] constexpr double to_minutes(SimDuration d) {
    return static_cast<double>(d.count()) / 1e9 / 60.0;
}

[[nodiscard]] constexpr double to_hours(SimDuration d) {
    return static_cast<double>(d.count()) / 1e9 / 3600.0;
}

class VirtualClock {
public:
    void advance(SimDuration d) { now_ += d; }
    void advance_ms(double ms) { now_ += from_ms(ms); }

    [[nodiscard]] SimDuration now() const { return now_; }

    /// Fast-forwards to `t` if it is in the future (barrier semantics).
    void sync_to(SimDuration t) {
        if (t > now_) now_ = t;
    }

    void reset() { now_ = SimDuration::zero(); }

private:
    SimDuration now_ = SimDuration::zero();
};

}  // namespace spider::storage
