#include "storage/cache_store.hpp"

#include <stdexcept>

namespace spider::storage {

CacheStore::CacheStore(std::uint64_t capacity_bytes,
                       std::uint64_t bytes_per_item)
    : capacity_bytes_{capacity_bytes}, bytes_per_item_{bytes_per_item} {
    if (bytes_per_item == 0) {
        throw std::invalid_argument{"CacheStore: bytes_per_item must be > 0"};
    }
}

bool CacheStore::contains(std::uint32_t id) const {
    const std::lock_guard lock{mutex_};
    return items_.contains(id);
}

std::size_t CacheStore::size() const {
    const std::lock_guard lock{mutex_};
    return items_.size();
}

std::uint64_t CacheStore::used_bytes() const {
    const std::lock_guard lock{mutex_};
    return items_.size() * bytes_per_item_;
}

bool CacheStore::put(std::uint32_t id) {
    const std::lock_guard lock{mutex_};
    if ((items_.size() + 1) * bytes_per_item_ > capacity_bytes_) return false;
    return items_.insert(id).second;
}

bool CacheStore::erase(std::uint32_t id) {
    const std::lock_guard lock{mutex_};
    return items_.erase(id) > 0;
}

void CacheStore::clear() {
    const std::lock_guard lock{mutex_};
    items_.clear();
}

bool CacheStore::lookup(std::uint32_t id) {
    const std::lock_guard lock{mutex_};
    const bool hit = items_.contains(id);
    (hit ? hits_ : misses_) += 1;
    return hit;
}

void CacheStore::reset_counters() {
    const std::lock_guard lock{mutex_};
    hits_ = 0;
    misses_ = 0;
}

}  // namespace spider::storage
