#pragma once

// On-disk sample store for the SSD tier: append-only segment files in an
// LSM/sstable style (DESIGN.md §14).
//
// Each segment file `seg-<seq>.spb` is
//
//     [header: magic | version | seq]
//     [record]*            each framed [u32 len][u32 crc][u32 id | bytes]
//     [sorted id index]    one checksum32-framed blob, written at seal
//     [trailer: u32 index_len | u32 index_crc | u32 seal magic]
//
// reusing the WAL's checksum32 framing discipline (wire_format.hpp), so a
// torn tail on the active segment is detected the same way a torn WAL
// tail is: the recovery scan keeps the valid prefix and drops the rest.
//
// Read path: segments are probed newest -> oldest. A per-segment bloom
// filter (double hashing off SplitMix64, k ≈ 0.69 * bits_per_key) gates
// every probe, so lookups for absent ids touch no disk at all; on a bloom
// pass the sealed segment's on-disk index block is read and binary
// searched, then the record itself — both counted as disk reads so the
// bench can show the bloom eliminating them. Sealed segments keep only
// their bloom + index location in memory (true LSM behavior); the active
// segment keeps its full index because it is still being built.
//
// Write path mirrors CacheWal: appends buffer in memory (the page-cache
// analogy), flush() persists, drop_unflushed() simulates kill -9 by
// discarding the buffered tail and re-running recovery on what disk
// actually holds. Overwrites go to the active segment; the older version
// becomes stale. GC is whole-segment: when every record in a sealed
// segment is stale (overwritten or erased), the file is deleted.
//
// Thread safety: none — the owning SsdTier serializes access under its
// own mutex.

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace spider::storage {

/// Blocked bloom-free bloom filter over u32 sample ids. Double hashing
/// (Kirsch–Mitzenmacher) off the SplitMix64 finalizer; k rounds of
/// ln 2 * bits_per_key. bits_per_key == 0 disables the filter (always
/// maybe). An empty filter rejects everything.
class BloomFilter {
public:
    BloomFilter() = default;
    BloomFilter(std::size_t expected_keys, std::size_t bits_per_key);

    void add(std::uint32_t id);
    [[nodiscard]] bool maybe_contains(std::uint32_t id) const;
    [[nodiscard]] std::size_t bit_count() const { return nbits_; }
    [[nodiscard]] int hash_count() const { return k_; }

    /// Expected false-positive rate at `bits_per_key`: (1 - e^{-k/b})^k,
    /// the standard bound the FPR test checks against (≤ 2x).
    [[nodiscard]] static double theoretical_fpr(std::size_t bits_per_key);

private:
    std::vector<std::uint64_t> bits_;
    std::size_t nbits_ = 0;
    int k_ = 1;
    bool disabled_ = false;
};

struct SsdBlockStoreConfig {
    std::string dir;
    /// Soft byte budget; enforcement (via LRU eviction until whole
    /// segments free up) is the owning SsdTier's job. 0 = unbounded.
    std::size_t capacity_bytes = 0;
    /// Segment rotation threshold. Small segments GC promptly; large ones
    /// amortize index/bloom overhead.
    std::size_t segment_bytes = 4U << 20;
    /// Bloom sizing; 10 bits/key ≈ 0.8% theoretical FPR. 0 disables.
    std::size_t bloom_bits_per_key = 10;
};

struct SsdBlockStoreStats {
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;            ///< read() calls
    std::uint64_t read_hits = 0;        ///< read() calls returning bytes
    std::uint64_t bloom_skips = 0;      ///< segment probes skipped by bloom
    std::uint64_t bloom_false_positives = 0;  ///< bloom passed, index miss
    std::uint64_t disk_reads = 0;       ///< index-block + record preads
    std::uint64_t segments_sealed = 0;
    std::uint64_t segments_collected = 0;     ///< whole-segment GC deletes
    std::uint64_t recovered_records = 0;      ///< live records seen at open
    std::uint64_t dropped_tail_records = 0;   ///< torn/corrupt frames cut
};

class SsdBlockStore {
public:
    explicit SsdBlockStore(SsdBlockStoreConfig config);
    ~SsdBlockStore();

    SsdBlockStore(const SsdBlockStore&) = delete;
    SsdBlockStore& operator=(const SsdBlockStore&) = delete;

    /// Latest payload for `id` wins regardless of which segment holds it.
    void write(std::uint32_t id, std::span<const std::uint8_t> payload);

    /// Newest live version of `id`, or nullopt when absent / CRC-corrupt.
    /// May resurrect an erased id whose bytes still sit in a segment —
    /// callers (the SsdTier LRU) own liveness; see erase().
    [[nodiscard]] std::optional<std::vector<std::uint8_t>> read(
        std::uint32_t id);

    /// Marks `id` stale for GC accounting. Bytes stay on disk until the
    /// whole segment is stale, exactly like an LSM tombstone horizon.
    void erase(std::uint32_t id);

    /// Exact liveness check against the owner map (no bloom, no disk).
    [[nodiscard]] bool contains(std::uint32_t id) const;

    /// Persist the buffered tail of the active segment.
    void flush();

    /// Simulated kill -9: discard the unflushed tail, then recover from
    /// what disk actually holds (same scan as construction).
    void drop_unflushed();

    /// Seal the active segment now (write index + trailer, rotate).
    /// Normally rotation happens when a segment fills; tests and callers
    /// that want bloom-exact sealed segments use this directly.
    void seal_active();

    /// Delete every segment and start empty — the fresh-run reset,
    /// mirroring CacheWal::compact({}).
    void clear();

    [[nodiscard]] std::size_t live_items() const { return owner_.size(); }
    [[nodiscard]] std::vector<std::uint32_t> live_ids() const;
    /// Total on-disk + buffered bytes across all segments.
    [[nodiscard]] std::size_t bytes_used() const { return total_bytes_; }
    /// Bytes held by sealed segments — the portion GC can ever reclaim.
    [[nodiscard]] std::size_t sealed_bytes() const { return sealed_bytes_; }
    [[nodiscard]] std::size_t segment_count() const {
        return segments_.size();
    }
    [[nodiscard]] const SsdBlockStoreStats& stats() const { return stats_; }
    [[nodiscard]] const SsdBlockStoreConfig& config() const {
        return config_;
    }

private:
    struct RecordRef {
        std::uint64_t offset = 0;  ///< frame start (logical file offset)
        std::uint32_t frame_len = 0;
    };

    struct Segment {
        std::uint64_t seq = 0;
        std::string path;
        bool sealed = false;
        /// Bytes durably on disk (valid prefix; excludes pending buffer).
        std::uint64_t file_bytes = 0;
        /// Total accounted bytes: file_bytes + pending.size().
        std::uint64_t total_bytes = 0;
        /// Buffered unflushed appends (active segment only).
        std::string pending;
        /// id -> newest record in this segment. Active segments only;
        /// sealed segments drop it and rely on the on-disk index.
        std::unordered_map<std::uint32_t, RecordRef> index;
        /// On-disk index block location (sealed segments).
        std::uint64_t index_offset = 0;
        std::uint32_t index_len = 0;
        /// How many ids in this segment the owner map still points at.
        std::size_t live = 0;
        BloomFilter bloom;
    };

    [[nodiscard]] std::string segment_path(std::uint64_t seq) const;
    Segment& active_locked();
    void open_dir();
    void start_segment(std::uint64_t seq);
    /// Scan an unsealed segment file, truncating a torn/corrupt tail.
    void recover_unsealed(Segment& seg);
    void seal_locked(Segment& seg);
    void maybe_collect(std::uint64_t seq);
    void account_owner(std::uint32_t id, std::uint64_t new_seq);
    [[nodiscard]] std::optional<std::vector<std::uint8_t>> read_from(
        Segment& seg, std::uint32_t id);
    void refresh_byte_totals();

    SsdBlockStoreConfig config_;
    /// seq -> segment, ordered so rbegin() is newest.
    std::map<std::uint64_t, Segment> segments_;
    /// id -> seq of the segment holding its live version.
    std::unordered_map<std::uint32_t, std::uint64_t> owner_;
    std::size_t total_bytes_ = 0;
    std::size_t sealed_bytes_ = 0;
    SsdBlockStoreStats stats_;
};

}  // namespace spider::storage
