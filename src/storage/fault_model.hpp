#pragma once

// Deterministic fault injection for the remote-storage path (the paper's
// Spot-VM / unstable-NFS setting, ROADMAP "fault model" item). The model
// wraps the nominal per-fetch cost with four failure modes:
//
//   transient  — per-attempt failure probability (RPC error, quick reply)
//   spike      — per-attempt latency multiplier draw (congested server)
//   timeout    — any attempt slower than `timeout_ms` is abandoned at the
//                threshold and reported as a timeout failure
//   outage     — scheduled windows in *virtual* time during which every
//                attempt fails (the Spot-VM preemption analogue), each
//                optionally followed by a slow "brownout" recovery tail
//
// Every draw is a pure hash of (seed, id, attempt, context) — no shared
// RNG stream — so the injected fault schedule is a function of the
// configuration alone: thread count, scheduling order, and retry timing
// cannot perturb it. That property is what makes the fault-injected
// simulator reproducible and is asserted by tests/fault_tolerance_test.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "storage/clock.hpp"

namespace spider::storage {

/// Markov-modulated "fault weather" layered over the i.i.d. draws: the
/// backend wanders through good / degraded / outage states on a fixed
/// virtual-time slot grid, so brownouts *cluster* the way real NFS does
/// instead of striking one attempt at a time. The chain is a pure
/// function of (seed, slot index) — state at slot k is derived by
/// folding the per-slot transition draws from slot 0 — so replays are
/// exact regardless of thread count or retry timing. `enabled=false`
/// (default) leaves the i.i.d. model bit-identical to before.
struct FaultWeatherConfig {
    bool enabled = false;
    /// Width of one weather slot in virtual milliseconds. State is
    /// constant within a slot and transitions only on slot boundaries.
    double slot_ms = 250.0;
    /// Per-slot transition probabilities.
    double p_degrade = 0.0;  ///< good -> degraded
    double p_recover = 0.0;  ///< degraded -> good
    double p_fail = 0.0;     ///< degraded -> outage
    double p_restore = 0.0;  ///< outage -> degraded
    /// In the degraded state, transient and spike probabilities are
    /// multiplied by this factor (clamped to 1.0 after scaling)...
    double degraded_mult = 4.0;
    /// ...and successful attempts run this much slower (compounds with
    /// any scheduled-outage brownout tail).
    double degraded_slowdown = 2.0;
};

enum class WeatherState : std::uint8_t {
    kGood = 0,
    kDegraded = 1,
    kOutage = 2,
};

struct FaultModelConfig {
    /// Master switch. Off (default) means evaluate() always succeeds at
    /// the nominal latency and the whole layer is zero-cost.
    bool enabled = false;
    /// Seed of the hash-based draw stream (independent of SimConfig seed
    /// so the same training run can be replayed under different weather).
    std::uint64_t seed = 0xFA017;

    /// Per-attempt transient failure probability (error reply at nominal
    /// latency).
    double transient_failure_prob = 0.0;
    /// Per-attempt latency-spike probability.
    double latency_spike_prob = 0.0;
    /// Spiked attempts cost base * mult * U[0.5, 1.5).
    double latency_spike_mult = 8.0;
    /// Client-side timeout: attempts slower than this are abandoned at the
    /// threshold and count as failures. 0 = wait forever (no timeouts).
    double timeout_ms = 0.0;

    /// Outage windows in virtual time: starting at `outage_start_ms`,
    /// every `outage_period_ms` (0 = a single window), the backend is
    /// unreachable for `outage_duration_ms` (0 = no outages).
    double outage_start_ms = 0.0;
    double outage_duration_ms = 0.0;
    double outage_period_ms = 0.0;
    /// After each outage window the backend serves at base latency times
    /// this factor for `brownout_duration_ms` (cold caches, reconnect
    /// storms). 1.0 disables the brownout tail.
    double brownout_factor = 1.0;
    double brownout_duration_ms = 0.0;

    /// Correlated-failure weather chain (off by default).
    FaultWeatherConfig weather{};
};

/// Validates a fault configuration, throwing std::invalid_argument with
/// an actionable message on out-of-range probabilities, a brownout
/// factor below 1.0, an outage window longer than its period, negative
/// durations, or malformed weather parameters. Called by the FaultModel
/// constructor and by the INI front-end at parse time.
void validate(const FaultModelConfig& config);

enum class FaultKind : std::uint8_t {
    kNone,       ///< attempt succeeded
    kTransient,  ///< injected RPC failure
    kTimeout,    ///< attempt exceeded timeout_ms
    kOutage,     ///< inside a scheduled outage window
};

struct FaultOutcome {
    FaultKind kind = FaultKind::kNone;
    /// Virtual time the attempt costs (success latency, error-reply
    /// latency, the timeout threshold, or the outage probe cost).
    SimDuration latency{};

    [[nodiscard]] bool ok() const { return kind == FaultKind::kNone; }
};

class FaultModel {
public:
    /// `base_latency` is the nominal healthy per-fetch cost (the
    /// RemoteStore's fetch_cost), which all penalties scale from.
    FaultModel(FaultModelConfig config, SimDuration base_latency);

    [[nodiscard]] const FaultModelConfig& config() const { return config_; }
    [[nodiscard]] bool enabled() const { return config_.enabled; }
    [[nodiscard]] SimDuration base_latency() const { return base_latency_; }

    /// Outcome of attempt number `attempt` at fetching `id`, issued at
    /// virtual time `now`. `context` separates otherwise-identical draw
    /// streams (demand vs. prefetch vs. hedge duplicates) so a retry after
    /// a failed speculative fetch sees fresh weather. Pure function of the
    /// arguments + config; counters are the only mutation (atomic adds, so
    /// totals are thread-order independent too).
    [[nodiscard]] FaultOutcome evaluate(std::uint32_t id, std::uint32_t attempt,
                                        SimDuration now,
                                        std::uint32_t context = 0) const;

    /// Is `now` inside a scheduled outage window? (Weather outages are
    /// reported separately via weather_state().)
    [[nodiscard]] bool in_outage(SimDuration now) const;
    /// Weather state governing virtual time `now` (kGood whenever the
    /// weather chain is disabled). Deterministic in (seed, slot index).
    [[nodiscard]] WeatherState weather_state(SimDuration now) const;
    /// Weather state at slot `slot` of the chain (slot 0 starts kGood).
    [[nodiscard]] WeatherState weather_state_at_slot(std::uint64_t slot) const;
    /// Latency multiplier at `now` (brownout_factor inside a brownout
    /// tail, 1.0 otherwise).
    [[nodiscard]] double slowdown(SimDuration now) const;

    /// Uniform [0,1) hash draw — exposed so the retry layer can derive
    /// deterministic backoff jitter from the same stream discipline.
    [[nodiscard]] double unit_draw(std::uint32_t id, std::uint32_t attempt,
                                   std::uint32_t context,
                                   std::uint32_t purpose) const;

    // ---- Injection counters (what the model actually did).
    [[nodiscard]] std::uint64_t injected_transients() const {
        return transients_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t injected_spikes() const {
        return spikes_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t injected_timeouts() const {
        return timeouts_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t outage_rejections() const {
        return outage_rejections_.load(std::memory_order_relaxed);
    }
    /// Attempts rejected because the weather chain was in kOutage
    /// (subset of nothing — counted separately from scheduled outages).
    [[nodiscard]] std::uint64_t weather_rejections() const {
        return weather_rejections_.load(std::memory_order_relaxed);
    }
    void reset_counters();

private:
    FaultModelConfig config_;
    SimDuration base_latency_;
    mutable std::atomic<std::uint64_t> transients_{0};
    mutable std::atomic<std::uint64_t> spikes_{0};
    mutable std::atomic<std::uint64_t> timeouts_{0};
    mutable std::atomic<std::uint64_t> outage_rejections_{0};
    mutable std::atomic<std::uint64_t> weather_rejections_{0};
    /// Memoized weather chain: weather_states_[k] is the state during
    /// slot k, extended on demand under weather_mu_. The chain itself is
    /// a pure function of (seed, k); the memo only avoids re-deriving a
    /// prefix per query. Never consulted when weather is disabled.
    mutable std::mutex weather_mu_;
    mutable std::vector<std::uint8_t> weather_states_;
};

}  // namespace spider::storage
