#pragma once

// Append-only write-ahead log + compacted snapshot for cache residency
// (DESIGN.md §12, ROADMAP "crash-safe warm restarts"). The cache layers
// stream `cache::ResidencyRecord`s into `append()`; at stable points
// (epoch boundaries in the simulator) the owner folds the live state
// into `compact()`, which atomically replaces the snapshot and truncates
// the log. After a kill -9, `load()` replays snapshot + surviving log
// tail into a `cache::RestoreImage`.
//
// On-disk framing (both files, little-endian):
//
//   [u32 payload_len][u32 checksum][payload]
//   payload = u8 op | u32 id | f64 score | u64 generation
//             | u32 neighbor_count | neighbor_count * u32
//
// The checksum is a SplitMix64 avalanche over the payload folded to 32
// bits. A torn or corrupt record ends replay at that point — everything
// before the tear is recovered, everything after is discarded (counted
// in `dropped_records()`), which is exactly the contract an append-only
// log can honor after an unclean death. The snapshot is written to a
// temp file and renamed into place so a crash mid-compaction leaves the
// previous snapshot intact.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "cache/residency_log.hpp"

namespace spider::storage {

struct WalConfig {
    /// Off (default) = every call is a no-op and load() returns empty.
    bool enabled = false;
    /// Directory holding `cache.wal` and `cache.snapshot`; created on
    /// first use. Required when enabled.
    std::string dir;
    /// Flush the OS buffer on every append (slower, loses nothing before
    /// the tear). Off = flush only at compaction, so a crash can lose the
    /// buffered tail — the realistic default the warm-restart bench uses.
    bool sync_every_append = false;
};

class CacheWal {
public:
    explicit CacheWal(WalConfig config);
    ~CacheWal();

    CacheWal(const CacheWal&) = delete;
    CacheWal& operator=(const CacheWal&) = delete;

    [[nodiscard]] const WalConfig& config() const { return config_; }
    [[nodiscard]] bool enabled() const { return config_.enabled; }

    /// Appends one record to the log. Thread-safe (internal mutex); safe
    /// to call from cache listeners holding shard locks — the WAL never
    /// calls back into the cache, so the shard -> wal lock order is
    /// acyclic.
    void append(const cache::ResidencyRecord& record);

    /// Folds `image` into a fresh snapshot (tmp file + rename) and
    /// truncates the log. Called at stable points; also flushes.
    void compact(const cache::RestoreImage& image);

    /// Replays snapshot + log into the folded residency image. Stops at
    /// the first corrupt/torn record of either file. Thread-safe.
    [[nodiscard]] cache::RestoreImage load();

    /// Forces buffered appends to the OS.
    void flush();

    /// Crash simulation: discards the buffered unflushed tail, exactly
    /// what a kill -9 does to writes the OS never saw. The chaos harness
    /// and the warm-restart simulator call this instead of flush() when
    /// killing a node.
    void drop_unflushed();

    /// Records appended through this handle's lifetime.
    [[nodiscard]] std::uint64_t appended_records() const;
    /// Corrupt/torn records discarded by the most recent load().
    [[nodiscard]] std::uint64_t dropped_records() const;

    /// Pure fold: applies `records` on top of `base` (exposed for tests
    /// and for owners that maintain an image incrementally).
    [[nodiscard]] static cache::RestoreImage fold(
        cache::RestoreImage base,
        const std::vector<cache::ResidencyRecord>& records);

    [[nodiscard]] std::string wal_path() const;
    [[nodiscard]] std::string snapshot_path() const;

private:
    /// Parses every intact record of `bytes`, appending to `out`; returns
    /// the number of trailing corrupt/torn tails discarded (0 or 1 — a
    /// tear ends parsing).
    static std::uint64_t parse_records(const std::string& bytes,
                                       std::vector<cache::ResidencyRecord>& out);

    WalConfig config_;
    mutable std::mutex mu_;
    /// Buffered unflushed tail of the log (simulates the page cache a
    /// kill -9 would lose when sync_every_append is off).
    std::string pending_;
    std::uint64_t appended_ = 0;
    std::uint64_t dropped_ = 0;
};

}  // namespace spider::storage
