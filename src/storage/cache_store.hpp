#pragma once

// In-process byte-budgeted key-value store — the stand-in for the Redis
// instance the paper uses as its in-memory cache tier. Policies decide
// *which* ids live here; the store enforces the byte budget and provides
// hit/miss accounting. Thread-safe (shared by multi-GPU workers).

#include <cstdint>
#include <mutex>
#include <unordered_set>

namespace spider::storage {

class CacheStore {
public:
    /// @param capacity_bytes  Total budget.
    /// @param bytes_per_item  Uniform serialized sample size.
    CacheStore(std::uint64_t capacity_bytes, std::uint64_t bytes_per_item);

    [[nodiscard]] std::uint64_t capacity_bytes() const { return capacity_bytes_; }
    [[nodiscard]] std::uint64_t bytes_per_item() const { return bytes_per_item_; }
    [[nodiscard]] std::size_t capacity_items() const {
        return static_cast<std::size_t>(capacity_bytes_ / bytes_per_item_);
    }

    [[nodiscard]] bool contains(std::uint32_t id) const;
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::uint64_t used_bytes() const;

    /// Inserts; returns false when the budget is exhausted (caller must
    /// evict first) or the id is already present.
    bool put(std::uint32_t id);
    /// Removes; returns whether the id was present.
    bool erase(std::uint32_t id);
    void clear();

    [[nodiscard]] std::uint64_t hit_count() const { return hits_; }
    [[nodiscard]] std::uint64_t miss_count() const { return misses_; }
    /// contains() + counter update, as a single call.
    bool lookup(std::uint32_t id);
    void reset_counters();

private:
    std::uint64_t capacity_bytes_;
    std::uint64_t bytes_per_item_;
    mutable std::mutex mutex_;
    std::unordered_set<std::uint32_t> items_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace spider::storage
