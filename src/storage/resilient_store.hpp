#pragma once

// Fault-tolerant client for RemoteStore: the layer a production data
// plane puts between the loader workers and an unreliable storage backend
// (DESIGN.md §9). Three mechanisms, all on the virtual clock:
//
//   retry    — bounded attempts with exponential backoff + deterministic
//              jitter; transient failures and timeouts are retried,
//              outage rejections too (the breaker is what stops those)
//   hedge    — when an attempt is still outstanding after a p99-based
//              delay, a duplicate request is issued and the first
//              completion wins (the classic tail-at-scale trick; rescues
//              latency spikes and timeouts without waiting out a retry)
//   breaker  — a circuit breaker over consecutive-failure streaks trips
//              during outages so callers fail fast into the degraded
//              path instead of burning timeouts against a dead backend;
//              after a cooldown it half-opens and probes
//
// Breaker state and the auto hedge delay advance only at batch
// boundaries (`on_batch_end`, main thread), and every fault draw is a
// pure hash — so the fault-tolerance behaviour is identical whether the
// batch's fetches ran on 1 worker thread or 8.

#include <array>
#include <atomic>
#include <cstdint>

#include "storage/fault_model.hpp"
#include "storage/remote_store.hpp"

namespace spider::storage {

struct ResiliencePolicy {
    /// Total tries per fetch (1 initial + N-1 retries). Capped at 16.
    std::size_t max_attempts = 4;
    /// Exponential backoff before retry k: base * mult^(k-1), capped,
    /// with +/- jitter fraction drawn deterministically per (id, attempt).
    double backoff_base_ms = 2.0;
    double backoff_mult = 2.0;
    double backoff_max_ms = 64.0;
    double backoff_jitter = 0.5;

    /// Hedged requests: issue a duplicate when the primary is still
    /// outstanding after the hedge delay.
    bool hedge_enabled = true;
    /// Fixed hedge delay; 0 = auto, the observed `hedge_quantile` attempt
    /// latency (refreshed per batch from a lock-free histogram).
    double hedge_delay_ms = 0.0;
    double hedge_quantile = 0.99;

    /// Circuit breaker: trips after this many consecutive failed fetches
    /// with no intervening success (counted at batch granularity), then
    /// rejects instantly for `breaker_cooldown_ms` of virtual time before
    /// half-opening. 0 disables the breaker.
    std::size_t breaker_failure_threshold = 16;
    double breaker_cooldown_ms = 400.0;

    /// Degraded-mode bound consumed by the training simulator: at most
    /// this fraction of an epoch's accesses may be served by a cache
    /// surrogate after a failed fetch (the rest are skipped + refilled).
    double max_substitute_fraction = 0.05;
};

/// Outcome of one resilient fetch (the whole retry/hedge envelope).
struct FetchResult {
    bool ok = false;
    /// Rejected instantly by an open circuit breaker (no attempts made).
    bool breaker_rejected = false;
    std::uint32_t attempts = 0;
    bool hedged = false;
    bool hedge_won = false;
    /// Total virtual time of the envelope (attempt latencies + backoff
    /// waits; hedges overlap their primary).
    SimDuration cost{};
    FaultKind last_fault = FaultKind::kNone;
};

class ResilientStore {
public:
    enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

    /// Aggregate counters (monotone; snapshot-diff them for per-epoch
    /// reporting). All updates are commutative atomic adds, so totals do
    /// not depend on worker interleaving.
    struct Counters {
        std::uint64_t fetches = 0;      ///< resilient fetch envelopes
        std::uint64_t attempts = 0;     ///< individual tries (incl. first)
        std::uint64_t retries = 0;      ///< attempts beyond the first
        std::uint64_t hedges = 0;       ///< duplicate requests issued
        std::uint64_t hedge_wins = 0;   ///< duplicates that completed first
        std::uint64_t successes = 0;
        std::uint64_t failures = 0;     ///< exhausted envelopes + fast fails
        std::uint64_t breaker_fast_fails = 0;
        std::uint64_t breaker_trips = 0;
        /// Virtual time beyond the nominal cost of the successful fetches
        /// (spikes, timeouts, backoff, failed envelopes).
        SimDuration fault_time{};
    };

    ResilientStore(RemoteStore& remote, FaultModelConfig fault_config,
                   ResiliencePolicy policy);

    /// Fetches `id` through the fault model at virtual time `now`,
    /// retrying/hedging per policy. On success the underlying
    /// RemoteStore::fetch runs exactly once (so its byte/fetch counters
    /// keep their healthy-backend meaning). `context` seeds an
    /// independent fault-draw stream (use distinct values for demand vs.
    /// speculative callers). Thread-safe.
    FetchResult fetch(std::uint32_t id, SimDuration now,
                      std::uint32_t context = 0);

    /// Batch barrier (main thread): advances the breaker state machine
    /// with the batch's failure/success totals and refreshes the auto
    /// hedge delay from the latency histogram.
    void on_batch_end(std::uint64_t failures, std::uint64_t successes,
                      SimDuration now);

    [[nodiscard]] BreakerState breaker_state(SimDuration now) const;
    /// Effective hedge delay right now (zero = hedging inactive).
    [[nodiscard]] SimDuration hedge_delay() const {
        return SimDuration{hedge_delay_ns_.load(std::memory_order_relaxed)};
    }

    [[nodiscard]] Counters counters() const;
    [[nodiscard]] const FaultModel& fault_model() const { return faults_; }
    [[nodiscard]] const ResiliencePolicy& policy() const { return policy_; }

private:
    static constexpr std::size_t kHistogramBuckets = 48;

    [[nodiscard]] SimDuration backoff_before(std::uint32_t id,
                                             std::uint32_t attempt) const;
    void record_latency(SimDuration latency);
    [[nodiscard]] double histogram_quantile_ms(double q) const;

    RemoteStore& remote_;
    FaultModel faults_;
    ResiliencePolicy policy_;
    SimDuration base_cost_;

    // Hedge-delay estimation: log-scale latency histogram filled by the
    // workers (atomic adds), reduced to a quantile at batch boundaries.
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> latency_histo_{};
    std::atomic<std::uint64_t> latency_samples_{0};
    std::atomic<std::int64_t> hedge_delay_ns_{0};

    // Breaker. State/reopen are atomics because workers read them while
    // fetching; mutation happens only in on_batch_end (main thread).
    std::atomic<std::uint8_t> breaker_{
        static_cast<std::uint8_t>(BreakerState::kClosed)};
    std::atomic<std::int64_t> breaker_reopen_ns_{0};
    std::uint64_t failure_streak_ = 0;  // main thread only

    mutable std::atomic<std::uint64_t> fetches_{0};
    mutable std::atomic<std::uint64_t> attempts_{0};
    mutable std::atomic<std::uint64_t> retries_{0};
    mutable std::atomic<std::uint64_t> hedges_{0};
    mutable std::atomic<std::uint64_t> hedge_wins_{0};
    mutable std::atomic<std::uint64_t> successes_{0};
    mutable std::atomic<std::uint64_t> failures_{0};
    mutable std::atomic<std::uint64_t> breaker_fast_fails_{0};
    mutable std::atomic<std::uint64_t> breaker_trips_{0};
    mutable std::atomic<std::int64_t> fault_time_ns_{0};
};

}  // namespace spider::storage
