#pragma once

// Dense kernels over Matrix. Shapes follow the "batch rows" convention:
// activations are [batch, features], weights are [in, out].

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace spider::tensor {

/// out = a @ b.   a: [m,k], b: [k,n], out: [m,n].
void matmul(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a^T @ b. a: [k,m], b: [k,n], out: [m,n]. (Weight gradients.)
void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a @ b^T. a: [m,k], b: [n,k], out: [m,n]. (Input gradients.)
void matmul_a_bt(const Matrix& a, const Matrix& b, Matrix& out);

/// Adds `bias` (length = cols) to every row of m.
void add_row_vector(Matrix& m, std::span<const float> bias);

/// y = max(x, 0), elementwise; shapes must match.
void relu(const Matrix& x, Matrix& y);

/// dx = dy where x > 0 else 0.
void relu_backward(const Matrix& x, const Matrix& dy, Matrix& dx);

/// Row-wise softmax (numerically stable).
void softmax_rows(const Matrix& logits, Matrix& probs);

/// Mean cross-entropy over the batch given integer labels; probs must
/// already be softmaxed. Returns the scalar loss.
[[nodiscard]] double cross_entropy(const Matrix& probs,
                                   std::span<const std::uint32_t> labels);

/// Per-row cross-entropy losses (what loss-based IS consumes).
[[nodiscard]] std::vector<double> cross_entropy_per_row(
    const Matrix& probs, std::span<const std::uint32_t> labels);

/// dlogits = (probs - onehot(labels)) / batch — the fused softmax+CE grad.
void softmax_cross_entropy_backward(const Matrix& probs,
                                    std::span<const std::uint32_t> labels,
                                    Matrix& dlogits);

/// Row-wise argmax (predicted class per sample).
[[nodiscard]] std::vector<std::uint32_t> argmax_rows(const Matrix& m);

/// y += alpha * x over flat storage; shapes must match.
void axpy(float alpha, const Matrix& x, Matrix& y);

/// Squared L2 distance between two equal-length vectors.
[[nodiscard]] float squared_l2(std::span<const float> a, std::span<const float> b);

/// Euclidean distance (Eq. 1 in the paper).
[[nodiscard]] float l2_distance(std::span<const float> a, std::span<const float> b);

// ---- Scalar reference implementations. The functions above dispatch to
// vectorized kernels (tensor/simd.hpp); these keep the original plain-loop
// bodies as the ground truth for parity tests and the "before" axis of
// bench_micro_kernels. Results may differ from the vector path by float
// reassociation only (parity bound: 1e-5 relative).

void matmul_scalar(const Matrix& a, const Matrix& b, Matrix& out);
void matmul_at_b_scalar(const Matrix& a, const Matrix& b, Matrix& out);
void matmul_a_bt_scalar(const Matrix& a, const Matrix& b, Matrix& out);
void axpy_scalar(float alpha, const Matrix& x, Matrix& y);
[[nodiscard]] float squared_l2_scalar(std::span<const float> a,
                                      std::span<const float> b);
[[nodiscard]] float l2_distance_scalar(std::span<const float> a,
                                       std::span<const float> b);

}  // namespace spider::tensor
