#include "tensor/pca.hpp"

#include <cmath>
#include <stdexcept>

namespace spider::tensor {

namespace {

/// y = centered_data^T @ (centered_data @ v), without materializing the
/// covariance matrix: two passes over the data per iteration.
std::vector<double> covariance_multiply(const Matrix& data,
                                        const std::vector<double>& mean,
                                        const std::vector<double>& v) {
    const std::size_t n = data.rows();
    const std::size_t dim = data.cols();
    std::vector<double> result(dim, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const auto row = data.row(i);
        double dot = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
            dot += (static_cast<double>(row[d]) - mean[d]) * v[d];
        }
        for (std::size_t d = 0; d < dim; ++d) {
            result[d] += dot * (static_cast<double>(row[d]) - mean[d]);
        }
    }
    for (double& x : result) {
        x /= static_cast<double>(n);
    }
    return result;
}

double normalize(std::vector<double>& v) {
    double norm_sq = 0.0;
    for (double x : v) norm_sq += x * x;
    const double norm = std::sqrt(norm_sq);
    if (norm > 1e-12) {
        for (double& x : v) x /= norm;
    }
    return norm;
}

}  // namespace

PcaResult pca(const Matrix& data, std::size_t components,
              std::size_t iterations, std::uint64_t seed) {
    const std::size_t n = data.rows();
    const std::size_t dim = data.cols();
    if (n == 0 || components == 0 || components > dim) {
        throw std::invalid_argument{"pca: bad shape or component count"};
    }

    PcaResult result;
    result.mean.assign(dim, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const auto row = data.row(i);
        for (std::size_t d = 0; d < dim; ++d) {
            result.mean[d] += row[d];
        }
    }
    for (double& m : result.mean) {
        m /= static_cast<double>(n);
    }

    util::Rng rng{seed};
    std::vector<std::vector<double>> axes;
    axes.reserve(components);
    for (std::size_t c = 0; c < components; ++c) {
        std::vector<double> v(dim);
        for (double& x : v) x = rng.normal();
        normalize(v);
        double eigenvalue = 0.0;
        for (std::size_t it = 0; it < iterations; ++it) {
            std::vector<double> w = covariance_multiply(data, result.mean, v);
            // Deflate: remove projections onto previously found axes.
            for (const auto& axis : axes) {
                double dot = 0.0;
                for (std::size_t d = 0; d < dim; ++d) dot += w[d] * axis[d];
                for (std::size_t d = 0; d < dim; ++d) w[d] -= dot * axis[d];
            }
            eigenvalue = normalize(w);
            v = std::move(w);
        }
        result.explained_variance.push_back(eigenvalue);
        axes.push_back(v);
    }

    result.components = Matrix{components, dim};
    for (std::size_t c = 0; c < components; ++c) {
        for (std::size_t d = 0; d < dim; ++d) {
            result.components.at(c, d) = static_cast<float>(axes[c][d]);
        }
    }
    result.projected = Matrix{n, components};
    for (std::size_t i = 0; i < n; ++i) {
        const auto row = data.row(i);
        for (std::size_t c = 0; c < components; ++c) {
            double dot = 0.0;
            for (std::size_t d = 0; d < dim; ++d) {
                dot += (static_cast<double>(row[d]) - result.mean[d]) *
                       axes[c][d];
            }
            result.projected.at(i, c) = static_cast<float>(dot);
        }
    }
    return result;
}

}  // namespace spider::tensor
