#pragma once

// Row-major single-precision matrix. This is the only tensor type the nn/
// substrate needs: batches are rows, features are columns. Kept deliberately
// small — contiguous storage, bounds-checked accessors in debug, span views
// per row for zero-copy interop with the ANN index.

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace spider::tensor {

class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, float fill = 0.0F);

    [[nodiscard]] std::size_t rows() const { return rows_; }
    [[nodiscard]] std::size_t cols() const { return cols_; }
    [[nodiscard]] std::size_t size() const { return data_.size(); }
    [[nodiscard]] bool empty() const { return data_.empty(); }

    [[nodiscard]] float& at(std::size_t r, std::size_t c) {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }
    [[nodiscard]] float at(std::size_t r, std::size_t c) const {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    [[nodiscard]] std::span<float> row(std::size_t r) {
        assert(r < rows_);
        return {data_.data() + r * cols_, cols_};
    }
    [[nodiscard]] std::span<const float> row(std::size_t r) const {
        assert(r < rows_);
        return {data_.data() + r * cols_, cols_};
    }

    [[nodiscard]] std::span<float> flat() { return data_; }
    [[nodiscard]] std::span<const float> flat() const { return data_; }
    [[nodiscard]] float* data() { return data_.data(); }
    [[nodiscard]] const float* data() const { return data_.data(); }

    void fill(float value);
    void zero() { fill(0.0F); }

    /// Fills with i.i.d. normal(mean, stddev) draws — weight init.
    void randomize_normal(util::Rng& rng, float mean, float stddev);

    /// Kaiming/He initialization for a layer with `fan_in` inputs.
    void randomize_kaiming(util::Rng& rng, std::size_t fan_in);

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

}  // namespace spider::tensor
