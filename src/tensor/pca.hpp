#pragma once

// Principal component analysis via power iteration with deflation — just
// enough to project high-dimensional embeddings to 2-D for the paper's
// Figure 8 (intra-class clustering / inter-class separation plots).

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace spider::tensor {

struct PcaResult {
    /// Projected rows, [n, components].
    Matrix projected;
    /// Principal axes, [components, dim] (unit vectors).
    Matrix components;
    /// Variance captured along each component.
    std::vector<double> explained_variance;
    /// Column means subtracted before projection.
    std::vector<double> mean;
};

/// Projects `data` ([n, dim]) onto its top `components` principal axes.
/// @param iterations  Power-iteration steps per component (30 is plenty for
///                    well-separated spectra).
[[nodiscard]] PcaResult pca(const Matrix& data, std::size_t components,
                            std::size_t iterations = 50,
                            std::uint64_t seed = 12345);

}  // namespace spider::tensor
