#include "tensor/ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "tensor/simd.hpp"

namespace spider::tensor {

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
    assert(a.cols() == b.rows());
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.cols();
    if (out.rows() != m || out.cols() != n) out = Matrix{m, n};
    out.zero();
    simd::active_kernels().gemm_acc(m, n, k, a.data(), k, 1, b.data(), n,
                                    out.data(), n);
}

void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out) {
    assert(a.rows() == b.rows());
    const std::size_t k = a.rows();
    const std::size_t m = a.cols();
    const std::size_t n = b.cols();
    if (out.rows() != m || out.cols() != n) out = Matrix{m, n};
    out.zero();
    // A^T is a with swapped strides; the strided-A microkernel absorbs it.
    simd::active_kernels().gemm_acc(m, n, k, a.data(), 1, m, b.data(), n,
                                    out.data(), n);
}

void matmul_a_bt(const Matrix& a, const Matrix& b, Matrix& out) {
    assert(a.cols() == b.cols());
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.rows();
    if (out.rows() != m || out.cols() != n) out = Matrix{m, n};
    const auto dot = simd::active_kernels().dot;
    for (std::size_t i = 0; i < m; ++i) {
        const float* a_row = a.row(i).data();
        float* out_row = out.row(i).data();
        for (std::size_t j = 0; j < n; ++j) {
            out_row[j] = dot(a_row, b.row(j).data(), k);
        }
    }
}

void matmul_scalar(const Matrix& a, const Matrix& b, Matrix& out) {
    assert(a.cols() == b.rows());
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.cols();
    if (out.rows() != m || out.cols() != n) out = Matrix{m, n};
    out.zero();
    // i-k-j loop order: the inner loop streams both b and out rows.
    for (std::size_t i = 0; i < m; ++i) {
        float* out_row = out.row(i).data();
        const float* a_row = a.row(i).data();
        for (std::size_t p = 0; p < k; ++p) {
            const float aip = a_row[p];
            if (aip == 0.0F) continue;
            const float* b_row = b.row(p).data();
            for (std::size_t j = 0; j < n; ++j) {
                out_row[j] += aip * b_row[j];
            }
        }
    }
}

void matmul_at_b_scalar(const Matrix& a, const Matrix& b, Matrix& out) {
    assert(a.rows() == b.rows());
    const std::size_t k = a.rows();
    const std::size_t m = a.cols();
    const std::size_t n = b.cols();
    if (out.rows() != m || out.cols() != n) out = Matrix{m, n};
    out.zero();
    for (std::size_t p = 0; p < k; ++p) {
        const float* a_row = a.row(p).data();
        const float* b_row = b.row(p).data();
        for (std::size_t i = 0; i < m; ++i) {
            const float aip = a_row[i];
            if (aip == 0.0F) continue;
            float* out_row = out.row(i).data();
            for (std::size_t j = 0; j < n; ++j) {
                out_row[j] += aip * b_row[j];
            }
        }
    }
}

void matmul_a_bt_scalar(const Matrix& a, const Matrix& b, Matrix& out) {
    assert(a.cols() == b.cols());
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.rows();
    if (out.rows() != m || out.cols() != n) out = Matrix{m, n};
    for (std::size_t i = 0; i < m; ++i) {
        const float* a_row = a.row(i).data();
        float* out_row = out.row(i).data();
        for (std::size_t j = 0; j < n; ++j) {
            const float* b_row = b.row(j).data();
            float sum = 0.0F;
            for (std::size_t p = 0; p < k; ++p) {
                sum += a_row[p] * b_row[p];
            }
            out_row[j] = sum;
        }
    }
}

void add_row_vector(Matrix& m, std::span<const float> bias) {
    assert(bias.size() == m.cols());
    for (std::size_t i = 0; i < m.rows(); ++i) {
        float* row = m.row(i).data();
        for (std::size_t j = 0; j < m.cols(); ++j) {
            row[j] += bias[j];
        }
    }
}

void relu(const Matrix& x, Matrix& y) {
    if (y.rows() != x.rows() || y.cols() != x.cols()) {
        y = Matrix{x.rows(), x.cols()};
    }
    const std::span<const float> in = x.flat();
    const std::span<float> out = y.flat();
    for (std::size_t i = 0; i < in.size(); ++i) {
        out[i] = in[i] > 0.0F ? in[i] : 0.0F;
    }
}

void relu_backward(const Matrix& x, const Matrix& dy, Matrix& dx) {
    assert(x.rows() == dy.rows() && x.cols() == dy.cols());
    if (dx.rows() != x.rows() || dx.cols() != x.cols()) {
        dx = Matrix{x.rows(), x.cols()};
    }
    const std::span<const float> xin = x.flat();
    const std::span<const float> grad = dy.flat();
    const std::span<float> out = dx.flat();
    for (std::size_t i = 0; i < xin.size(); ++i) {
        out[i] = xin[i] > 0.0F ? grad[i] : 0.0F;
    }
}

void softmax_rows(const Matrix& logits, Matrix& probs) {
    if (probs.rows() != logits.rows() || probs.cols() != logits.cols()) {
        probs = Matrix{logits.rows(), logits.cols()};
    }
    for (std::size_t i = 0; i < logits.rows(); ++i) {
        const std::span<const float> in = logits.row(i);
        const std::span<float> out = probs.row(i);
        const float maxv = *std::max_element(in.begin(), in.end());
        float sum = 0.0F;
        for (std::size_t j = 0; j < in.size(); ++j) {
            out[j] = std::exp(in[j] - maxv);
            sum += out[j];
        }
        for (float& v : out) {
            v /= sum;
        }
    }
}

double cross_entropy(const Matrix& probs,
                     std::span<const std::uint32_t> labels) {
    assert(labels.size() == probs.rows());
    double total = 0.0;
    for (std::size_t i = 0; i < probs.rows(); ++i) {
        const float p = std::max(probs.at(i, labels[i]), 1e-12F);
        total -= std::log(static_cast<double>(p));
    }
    return total / static_cast<double>(probs.rows());
}

std::vector<double> cross_entropy_per_row(
    const Matrix& probs, std::span<const std::uint32_t> labels) {
    assert(labels.size() == probs.rows());
    std::vector<double> losses(probs.rows());
    for (std::size_t i = 0; i < probs.rows(); ++i) {
        const float p = std::max(probs.at(i, labels[i]), 1e-12F);
        losses[i] = -std::log(static_cast<double>(p));
    }
    return losses;
}

void softmax_cross_entropy_backward(const Matrix& probs,
                                    std::span<const std::uint32_t> labels,
                                    Matrix& dlogits) {
    assert(labels.size() == probs.rows());
    if (dlogits.rows() != probs.rows() || dlogits.cols() != probs.cols()) {
        dlogits = Matrix{probs.rows(), probs.cols()};
    }
    const float inv_batch = 1.0F / static_cast<float>(probs.rows());
    for (std::size_t i = 0; i < probs.rows(); ++i) {
        const std::span<const float> p = probs.row(i);
        const std::span<float> g = dlogits.row(i);
        for (std::size_t j = 0; j < p.size(); ++j) {
            g[j] = p[j] * inv_batch;
        }
        g[labels[i]] -= inv_batch;
    }
}

std::vector<std::uint32_t> argmax_rows(const Matrix& m) {
    std::vector<std::uint32_t> out(m.rows());
    for (std::size_t i = 0; i < m.rows(); ++i) {
        const std::span<const float> row = m.row(i);
        out[i] = static_cast<std::uint32_t>(
            std::max_element(row.begin(), row.end()) - row.begin());
    }
    return out;
}

void axpy(float alpha, const Matrix& x, Matrix& y) {
    assert(x.rows() == y.rows() && x.cols() == y.cols());
    simd::active_kernels().axpy(alpha, x.data(), y.data(), x.size());
}

float squared_l2(std::span<const float> a, std::span<const float> b) {
    assert(a.size() == b.size());
    return simd::active_kernels().squared_l2(a.data(), b.data(), a.size());
}

float l2_distance(std::span<const float> a, std::span<const float> b) {
    return std::sqrt(squared_l2(a, b));
}

float squared_l2_scalar(std::span<const float> a, std::span<const float> b) {
    assert(a.size() == b.size());
    float sum = 0.0F;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const float d = a[i] - b[i];
        sum += d * d;
    }
    return sum;
}

float l2_distance_scalar(std::span<const float> a, std::span<const float> b) {
    return std::sqrt(squared_l2_scalar(a, b));
}

void axpy_scalar(float alpha, const Matrix& x, Matrix& y) {
    assert(x.rows() == y.rows() && x.cols() == y.cols());
    const std::span<const float> xin = x.flat();
    const std::span<float> yout = y.flat();
    for (std::size_t i = 0; i < xin.size(); ++i) {
        yout[i] += alpha * xin[i];
    }
}

}  // namespace spider::tensor
