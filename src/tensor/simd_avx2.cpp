// AVX2+FMA kernel table. This translation unit is the only one compiled
// with -mavx2 -mfma (see tensor/CMakeLists.txt); when the toolchain lacks
// those flags it degrades to a stub returning nullptr, and simd.cpp's
// runtime CPU check keeps the vector path off machines without AVX2.

#include "tensor/simd.hpp"

#ifdef __AVX2__

#include <immintrin.h>

#include <cstdint>

namespace spider::tensor::simd {

namespace {

float hsum8(__m256 v) {
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 sum = _mm_add_ps(lo, hi);
    sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
    sum = _mm_add_ss(sum, _mm_shuffle_ps(sum, sum, 0x55));
    return _mm_cvtss_f32(sum);
}

float squared_l2_avx2(const float* a, const float* b, std::size_t n) {
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256 d0 =
            _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
        const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8),
                                        _mm256_loadu_ps(b + i + 8));
        acc0 = _mm256_fmadd_ps(d0, d0, acc0);
        acc1 = _mm256_fmadd_ps(d1, d1, acc1);
    }
    for (; i + 8 <= n; i += 8) {
        const __m256 d =
            _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
        acc0 = _mm256_fmadd_ps(d, d, acc0);
    }
    float sum = hsum8(_mm256_add_ps(acc0, acc1));
    for (; i < n; ++i) {
        const float d = a[i] - b[i];
        sum += d * d;
    }
    return sum;
}

float dot_avx2(const float* a, const float* b, std::size_t n) {
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                               acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                               _mm256_loadu_ps(b + i + 8), acc1);
    }
    for (; i + 8 <= n; i += 8) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                               acc0);
    }
    float sum = hsum8(_mm256_add_ps(acc0, acc1));
    for (; i < n; ++i) {
        sum += a[i] * b[i];
    }
    return sum;
}

void axpy_avx2(float alpha, const float* x, float* y, std::size_t n) {
    const __m256 va = _mm256_set1_ps(alpha);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 vy = _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                                          _mm256_loadu_ps(y + i));
        _mm256_storeu_ps(y + i, vy);
    }
    for (; i < n; ++i) {
        y[i] += alpha * x[i];
    }
}

// 4x16 register-blocked microkernel: four C rows x two ymm columns stay in
// registers across the whole k loop (8 accumulators + 2 B loads + 1
// broadcast = 11 of 16 ymm registers), so each A element and B vector is
// touched once per tile.
void gemm_tile_4x16(std::size_t k, const float* a, std::size_t a_rs,
                    std::size_t a_cs, std::size_t i0, const float* b,
                    std::size_t ldb, std::size_t j0, float* c,
                    std::size_t ldc) {
    __m256 acc[4][2];
    for (auto& row : acc) {
        row[0] = _mm256_setzero_ps();
        row[1] = _mm256_setzero_ps();
    }
    for (std::size_t p = 0; p < k; ++p) {
        const float* b_row = b + p * ldb + j0;
        const __m256 b0 = _mm256_loadu_ps(b_row);
        const __m256 b1 = _mm256_loadu_ps(b_row + 8);
        const float* a_col = a + p * a_cs;
        for (std::size_t r = 0; r < 4; ++r) {
            const __m256 va = _mm256_set1_ps(a_col[(i0 + r) * a_rs]);
            acc[r][0] = _mm256_fmadd_ps(va, b0, acc[r][0]);
            acc[r][1] = _mm256_fmadd_ps(va, b1, acc[r][1]);
        }
    }
    for (std::size_t r = 0; r < 4; ++r) {
        float* c_row = c + (i0 + r) * ldc + j0;
        _mm256_storeu_ps(c_row, _mm256_add_ps(_mm256_loadu_ps(c_row), acc[r][0]));
        _mm256_storeu_ps(c_row + 8,
                         _mm256_add_ps(_mm256_loadu_ps(c_row + 8), acc[r][1]));
    }
}

// 1x16 edge kernel for the <4 leftover rows of an i panel.
void gemm_tile_1x16(std::size_t k, const float* a, std::size_t a_rs,
                    std::size_t a_cs, std::size_t i, const float* b,
                    std::size_t ldb, std::size_t j0, float* c,
                    std::size_t ldc) {
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    for (std::size_t p = 0; p < k; ++p) {
        const float* b_row = b + p * ldb + j0;
        const __m256 va = _mm256_set1_ps(a[i * a_rs + p * a_cs]);
        acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b_row), acc0);
        acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b_row + 8), acc1);
    }
    float* c_row = c + i * ldc + j0;
    _mm256_storeu_ps(c_row, _mm256_add_ps(_mm256_loadu_ps(c_row), acc0));
    _mm256_storeu_ps(c_row + 8,
                     _mm256_add_ps(_mm256_loadu_ps(c_row + 8), acc1));
}

// 4x8 tile for an 8-wide column strip (narrow right-hand sides, e.g. the
// 10-class logits GEMM, would otherwise fall entirely off the vector path).
void gemm_tile_4x8(std::size_t k, const float* a, std::size_t a_rs,
                   std::size_t a_cs, std::size_t i0, const float* b,
                   std::size_t ldb, std::size_t j0, float* c,
                   std::size_t ldc) {
    __m256 acc[4];
    for (auto& v : acc) v = _mm256_setzero_ps();
    for (std::size_t p = 0; p < k; ++p) {
        const __m256 bv = _mm256_loadu_ps(b + p * ldb + j0);
        const float* a_col = a + p * a_cs;
        for (std::size_t r = 0; r < 4; ++r) {
            const __m256 va = _mm256_set1_ps(a_col[(i0 + r) * a_rs]);
            acc[r] = _mm256_fmadd_ps(va, bv, acc[r]);
        }
    }
    for (std::size_t r = 0; r < 4; ++r) {
        float* c_row = c + (i0 + r) * ldc + j0;
        _mm256_storeu_ps(c_row, _mm256_add_ps(_mm256_loadu_ps(c_row), acc[r]));
    }
}

void gemm_tile_1x8(std::size_t k, const float* a, std::size_t a_rs,
                   std::size_t a_cs, std::size_t i, const float* b,
                   std::size_t ldb, std::size_t j0, float* c,
                   std::size_t ldc) {
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t p = 0; p < k; ++p) {
        const __m256 va = _mm256_set1_ps(a[i * a_rs + p * a_cs]);
        acc = _mm256_fmadd_ps(va, _mm256_loadu_ps(b + p * ldb + j0), acc);
    }
    float* c_row = c + i * ldc + j0;
    _mm256_storeu_ps(c_row, _mm256_add_ps(_mm256_loadu_ps(c_row), acc));
}

// Masked tiles for the final 1..7 columns: maskload/maskstore keep the
// strip on the FMA path without reading or writing past row ends.
__m256i tail_mask(std::size_t rem) {
    alignas(32) std::int32_t lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (std::size_t j = 0; j < rem; ++j) lanes[j] = -1;
    return _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes));
}

void gemm_tile_4xm(std::size_t k, const float* a, std::size_t a_rs,
                   std::size_t a_cs, std::size_t i0, const float* b,
                   std::size_t ldb, std::size_t j0, float* c, std::size_t ldc,
                   __m256i mask) {
    __m256 acc[4];
    for (auto& v : acc) v = _mm256_setzero_ps();
    for (std::size_t p = 0; p < k; ++p) {
        const __m256 bv = _mm256_maskload_ps(b + p * ldb + j0, mask);
        const float* a_col = a + p * a_cs;
        for (std::size_t r = 0; r < 4; ++r) {
            const __m256 va = _mm256_set1_ps(a_col[(i0 + r) * a_rs]);
            acc[r] = _mm256_fmadd_ps(va, bv, acc[r]);
        }
    }
    for (std::size_t r = 0; r < 4; ++r) {
        float* c_row = c + (i0 + r) * ldc + j0;
        const __m256 cv = _mm256_maskload_ps(c_row, mask);
        _mm256_maskstore_ps(c_row, mask, _mm256_add_ps(cv, acc[r]));
    }
}

void gemm_tile_1xm(std::size_t k, const float* a, std::size_t a_rs,
                   std::size_t a_cs, std::size_t i, const float* b,
                   std::size_t ldb, std::size_t j0, float* c, std::size_t ldc,
                   __m256i mask) {
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t p = 0; p < k; ++p) {
        const __m256 va = _mm256_set1_ps(a[i * a_rs + p * a_cs]);
        acc = _mm256_fmadd_ps(va, _mm256_maskload_ps(b + p * ldb + j0, mask),
                              acc);
    }
    float* c_row = c + i * ldc + j0;
    const __m256 cv = _mm256_maskload_ps(c_row, mask);
    _mm256_maskstore_ps(c_row, mask, _mm256_add_ps(cv, acc));
}

void gemm_acc_avx2(std::size_t m, std::size_t n, std::size_t k,
                   const float* a, std::size_t a_rs, std::size_t a_cs,
                   const float* b, std::size_t ldb, float* c,
                   std::size_t ldc) {
    const std::size_t n16 = n - n % 16;
    for (std::size_t j0 = 0; j0 < n16; j0 += 16) {
        std::size_t i = 0;
        for (; i + 4 <= m; i += 4) {
            gemm_tile_4x16(k, a, a_rs, a_cs, i, b, ldb, j0, c, ldc);
        }
        for (; i < m; ++i) {
            gemm_tile_1x16(k, a, a_rs, a_cs, i, b, ldb, j0, c, ldc);
        }
    }
    std::size_t j0 = n16;
    if (j0 + 8 <= n) {
        std::size_t i = 0;
        for (; i + 4 <= m; i += 4) {
            gemm_tile_4x8(k, a, a_rs, a_cs, i, b, ldb, j0, c, ldc);
        }
        for (; i < m; ++i) {
            gemm_tile_1x8(k, a, a_rs, a_cs, i, b, ldb, j0, c, ldc);
        }
        j0 += 8;
    }
    if (j0 < n) {
        const __m256i mask = tail_mask(n - j0);
        std::size_t i = 0;
        for (; i + 4 <= m; i += 4) {
            gemm_tile_4xm(k, a, a_rs, a_cs, i, b, ldb, j0, c, ldc, mask);
        }
        for (; i < m; ++i) {
            gemm_tile_1xm(k, a, a_rs, a_cs, i, b, ldb, j0, c, ldc, mask);
        }
    }
}

constexpr Kernels kAvx2{
    "avx2+fma",     squared_l2_avx2, dot_avx2, axpy_avx2, gemm_acc_avx2,
};

}  // namespace

const Kernels* avx2_kernels_or_null() { return &kAvx2; }

}  // namespace spider::tensor::simd

#else  // !__AVX2__

namespace spider::tensor::simd {

const Kernels* avx2_kernels_or_null() { return nullptr; }

}  // namespace spider::tensor::simd

#endif
