#pragma once

// Runtime SIMD dispatch for the hot tensor kernels. Every distance the ANN
// substrate computes and every GEMM the nn/ training loop issues funnels
// through the function-pointer table below, resolved once per process:
//
//   - portable_kernels(): multi-accumulator unrolled loops that plain
//     -O2 code generation handles well (and that auto-vectorize where the
//     compiler is allowed to) — the fallback on any CPU.
//   - an AVX2+FMA table (simd_avx2.cpp, compiled with -mavx2 -mfma when the
//     toolchain supports it) selected at runtime iff the executing CPU
//     reports both features, so the same binary runs on older x86-64.
//
// `SPIDER_SIMD=scalar` in the environment pins the portable table — the
// before/after axis of bench_micro_kernels. The plain-loop *_scalar
// reference implementations live in ops.hpp; parity tests compare the
// dispatched kernels against them to 1e-5.

#include <cstddef>

namespace spider::tensor::simd {

/// One ISA's implementation of the hot kernels. All pointers are non-null.
struct Kernels {
    /// Human-readable ISA tag ("portable", "avx2+fma") for logs/benches.
    const char* name;

    /// sum_i (a[i] - b[i])^2
    float (*squared_l2)(const float* a, const float* b, std::size_t n);

    /// sum_i a[i] * b[i]
    float (*dot)(const float* a, const float* b, std::size_t n);

    /// y[i] += alpha * x[i]
    void (*axpy)(float alpha, const float* x, float* y, std::size_t n);

    /// Register-blocked GEMM accumulate: c[i][j] += sum_p A(i,p) * B(p,j)
    /// with A(i,p) = a[i*a_rs + p*a_cs] and B(p,j) = b[p*ldb + j]. The
    /// strided A access lets one kernel serve both `a @ b` (a_rs=k, a_cs=1)
    /// and `a^T @ b` (a_rs=1, a_cs=m); B and C are dense row-major. C is
    /// accumulated into, so callers zero it first. C must not alias A or B.
    void (*gemm_acc)(std::size_t m, std::size_t n, std::size_t k,
                     const float* a, std::size_t a_rs, std::size_t a_cs,
                     const float* b, std::size_t ldb, float* c,
                     std::size_t ldc);
};

/// The portable fallback table (always available).
[[nodiscard]] const Kernels& portable_kernels();

/// The table in use for this process: AVX2+FMA when compiled in and the
/// CPU supports it, else portable. Resolved once; thread-safe.
[[nodiscard]] const Kernels& active_kernels();

/// True when active_kernels() is the AVX2+FMA table.
[[nodiscard]] bool avx2_active();

/// Defined in simd_avx2.cpp: the AVX2+FMA table, or nullptr when that
/// translation unit was built without AVX2 support. Callers must still
/// check CPU features before using it — active_kernels() does.
[[nodiscard]] const Kernels* avx2_kernels_or_null();

}  // namespace spider::tensor::simd
