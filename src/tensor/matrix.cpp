#include "tensor/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace spider::tensor {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_{rows}, cols_{cols}, data_(rows * cols, fill) {}

void Matrix::fill(float value) {
    std::fill(data_.begin(), data_.end(), value);
}

void Matrix::randomize_normal(util::Rng& rng, float mean, float stddev) {
    for (float& x : data_) {
        x = static_cast<float>(rng.normal(mean, stddev));
    }
}

void Matrix::randomize_kaiming(util::Rng& rng, std::size_t fan_in) {
    const float stddev =
        std::sqrt(2.0F / static_cast<float>(std::max<std::size_t>(fan_in, 1)));
    randomize_normal(rng, 0.0F, stddev);
}

}  // namespace spider::tensor
