#include "tensor/simd.hpp"

#include <algorithm>
#include <cstdlib>
#include <string_view>

namespace spider::tensor::simd {

namespace {

// ---- Portable kernels: unrolled with independent accumulators so the
// reduction has instruction-level parallelism even without explicit SIMD,
// and so -O2/-O3 auto-vectorization has straight-line bodies to work with.

float squared_l2_portable(const float* a, const float* b, std::size_t n) {
    float acc0 = 0.0F;
    float acc1 = 0.0F;
    float acc2 = 0.0F;
    float acc3 = 0.0F;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float d0 = a[i] - b[i];
        const float d1 = a[i + 1] - b[i + 1];
        const float d2 = a[i + 2] - b[i + 2];
        const float d3 = a[i + 3] - b[i + 3];
        acc0 += d0 * d0;
        acc1 += d1 * d1;
        acc2 += d2 * d2;
        acc3 += d3 * d3;
    }
    for (; i < n; ++i) {
        const float d = a[i] - b[i];
        acc0 += d * d;
    }
    return (acc0 + acc1) + (acc2 + acc3);
}

float dot_portable(const float* a, const float* b, std::size_t n) {
    float acc0 = 0.0F;
    float acc1 = 0.0F;
    float acc2 = 0.0F;
    float acc3 = 0.0F;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        acc0 += a[i] * b[i];
        acc1 += a[i + 1] * b[i + 1];
        acc2 += a[i + 2] * b[i + 2];
        acc3 += a[i + 3] * b[i + 3];
    }
    for (; i < n; ++i) {
        acc0 += a[i] * b[i];
    }
    return (acc0 + acc1) + (acc2 + acc3);
}

void axpy_portable(float alpha, const float* x, float* y, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        y[i] += alpha * x[i];
    }
}

void gemm_acc_portable(std::size_t m, std::size_t n, std::size_t k,
                       const float* a, std::size_t a_rs, std::size_t a_cs,
                       const float* b, std::size_t ldb, float* c,
                       std::size_t ldc) {
    // Row-blocked i-k-j: four output rows share one streaming pass over
    // each B row, quartering B traffic and giving the inner loop four
    // independent FMA chains.
    std::size_t i = 0;
    for (; i + 4 <= m; i += 4) {
        float* c0 = c + i * ldc;
        float* c1 = c0 + ldc;
        float* c2 = c1 + ldc;
        float* c3 = c2 + ldc;
        for (std::size_t p = 0; p < k; ++p) {
            const float* a_col = a + p * a_cs;
            const float a0 = a_col[i * a_rs];
            const float a1 = a_col[(i + 1) * a_rs];
            const float a2 = a_col[(i + 2) * a_rs];
            const float a3 = a_col[(i + 3) * a_rs];
            const float* b_row = b + p * ldb;
            for (std::size_t j = 0; j < n; ++j) {
                const float bv = b_row[j];
                c0[j] += a0 * bv;
                c1[j] += a1 * bv;
                c2[j] += a2 * bv;
                c3[j] += a3 * bv;
            }
        }
    }
    for (; i < m; ++i) {
        float* c_row = c + i * ldc;
        for (std::size_t p = 0; p < k; ++p) {
            const float aip = a[i * a_rs + p * a_cs];
            const float* b_row = b + p * ldb;
            for (std::size_t j = 0; j < n; ++j) {
                c_row[j] += aip * b_row[j];
            }
        }
    }
}

constexpr Kernels kPortable{
    "portable",         squared_l2_portable, dot_portable,
    axpy_portable,      gemm_acc_portable,
};

bool cpu_has_avx2_fma() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

const Kernels& resolve() {
    const char* env = std::getenv("SPIDER_SIMD");
    if (env != nullptr && std::string_view{env} == "scalar") {
        return kPortable;
    }
    if (cpu_has_avx2_fma()) {
        if (const Kernels* avx2 = avx2_kernels_or_null()) {
            return *avx2;
        }
    }
    return kPortable;
}

}  // namespace

const Kernels& portable_kernels() { return kPortable; }

const Kernels& active_kernels() {
    static const Kernels& kernels = resolve();
    return kernels;
}

bool avx2_active() { return &active_kernels() == avx2_kernels_or_null(); }

}  // namespace spider::tensor::simd
