#pragma once

// Multi-node cooperative cache (DESIGN.md §11): N simulated training
// nodes, each owning a consistent-hash slice of the sample-id space
// (util::HashRing with virtual-node weighting) and holding its own
// TwoLayerSemanticCache shard. A node that misses locally asks the id's
// ring owner over a peer-fetch path priced between a local hit and
// remote storage; only the owner ever admits an id, so the aggregate
// cache holds each sample at most once and peer hits substitute for
// full-price remote fetches.
//
// The peer wire is a RemoteStore priced from the PR-6 protocol framing
// (server::get_request_wire_len / get_reply_wire_len fold the real
// encoded GET exchange into the link latency) wrapped in a per-peer
// ResilientStore: peers can brown out or straggle, and the existing
// retry/hedge/breaker machinery — including hedged duplicates against a
// latency-spiking straggler node — is what rescues the tail. A
// GreenDyGNN-style per-epoch communication budget throttles peer bytes:
// once spent, misses fall back to remote storage (the degraded-mode
// surrogate ladder of the simulator sits above this layer).
//
// Concurrency: service() is safe from any number of loader workers.
// Membership changes (add_node / remove_node) and epoch/batch
// boundaries are main-thread only, with workers quiesced — the same
// contract the simulator's batch barrier already provides. After a
// rebalance, entries stranded on a no-longer-owning node simply age out
// of that shard: requests only ever consult the current ring owner, so
// a stale resident is never served.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cache/semantic_cache.hpp"
#include "data/dataset.hpp"
#include "storage/remote_store.hpp"
#include "storage/resilient_store.hpp"
#include "util/hash_ring.hpp"

namespace spider::cluster {

struct ClusterConfig {
    /// Simulated training nodes. The simulator engages the cooperative
    /// path only when > 1 (1 keeps the single-node code bit-identical).
    std::size_t nodes = 2;
    /// Ring points per unit of node weight (util::HashRing).
    std::size_t vnodes_per_node = 64;
    /// Items per node shard (the simulator derives this from
    /// cluster.node_cache_fraction of the dataset).
    std::size_t node_cache_items = 256;
    /// Shard count / read path of each node's TwoLayerSemanticCache.
    std::size_t cache_shards = 1;
    bool cache_lockfree_reads = true;

    /// false = no peer path at all: every node runs an independent
    /// cache and misses go straight to remote storage (the
    /// "storage-only" baseline of bench_multinode).
    bool peer_fetch_enabled = true;
    /// Virtual cost of serving a resident sample to the local trainer.
    double local_hit_ms = 0.02;
    /// Peer link round-trip latency (must sit between local_hit_ms and
    /// the remote fetch cost for the peer path to pay off).
    double peer_latency_ms = 0.45;
    /// Peer link transfer rate, bytes per virtual millisecond
    /// (intra-cluster 100 Gbps ~ 1.25e7).
    double peer_bytes_per_ms = 1.25e7;

    /// Hedged duplicates against slow peer exchanges (tail-at-scale).
    bool hedge_enabled = true;
    /// Fixed hedge delay; 0 = auto (observed p99 exchange latency).
    double hedge_delay_ms = 0.0;
    /// Retry attempts per peer envelope before failing over to remote.
    std::size_t max_attempts = 2;

    /// Per-epoch peer-traffic budget in MiB; 0 = unthrottled. Spent
    /// per exchange (request + reply frames + sample payload); when a
    /// reservation would overshoot, the miss falls back to remote
    /// storage and is counted as throttled.
    double comm_budget_mb = 0.0;

    /// Per-attempt transient-failure probability of every peer link
    /// (peers brown out too; failures fail over to remote storage).
    double peer_transient_prob = 0.0;
    /// Straggler node (-1 = none): its *serving* link draws latency
    /// spikes with this probability/multiplier, so exchanges against it
    /// are the ones hedging must rescue.
    std::int64_t straggler_node = -1;
    double straggler_spike_prob = 0.5;
    double straggler_spike_mult = 8.0;

    /// Seed of the per-peer fault-draw streams (independent per node).
    std::uint64_t seed = 1;
};

/// Where a serviced miss was ultimately satisfied.
enum class ServeSource : std::uint8_t {
    kLocalHit = 0,   ///< requester owns the id and had it resident
    kPeerHit = 1,    ///< ring owner had it resident; paid the wire
    kPeerMiss = 2,   ///< owner fetched remote on our behalf (wire + remote)
    kRemote = 3,     ///< no peer path: own-shard miss, throttle, or failover
};

struct ServiceResult {
    ServeSource source = ServeSource::kRemote;
    /// Virtual time of the whole exchange as seen by the requester.
    storage::SimDuration cost{};
    bool hedged = false;
    bool hedge_won = false;
    /// Peer path skipped because the communication budget is spent.
    bool throttled = false;
    /// Peer envelope failed (retries exhausted / breaker open) and the
    /// miss failed over to remote storage.
    bool failover = false;
};

/// Monotone aggregate counters (snapshot-diff for per-epoch rows).
struct ClusterCounters {
    std::uint64_t local_hits = 0;
    std::uint64_t peer_hits = 0;
    std::uint64_t peer_misses = 0;
    std::uint64_t remote_fetches = 0;
    std::uint64_t hedges = 0;
    std::uint64_t hedge_wins = 0;
    std::uint64_t throttled = 0;
    std::uint64_t failovers = 0;
    std::uint64_t peer_bytes = 0;
};

class CooperativeCache {
public:
    /// @param remote  The shared remote-storage backend; every miss the
    ///                cluster cannot absorb runs one real fetch() on it,
    ///                so its totals keep their single-node meaning.
    CooperativeCache(const data::SyntheticDataset& dataset,
                     storage::RemoteStore& remote, ClusterConfig config);

    /// Services a node-local cache miss for `id` raised on `node` at
    /// virtual time `now`. Thread-safe; `node` must be active.
    ServiceResult service(std::uint32_t node, std::uint32_t id,
                          storage::SimDuration now);

    /// Epoch boundary (main thread): resets the communication budget.
    void begin_epoch();
    /// Batch barrier (main thread): advances every peer envelope's
    /// breaker / auto-hedge state with the batch's outcome totals.
    void on_batch_end(storage::SimDuration now);

    /// Adds a fresh node (next unused id) with `weight`; returns its id.
    /// Main thread only, workers quiesced.
    std::uint32_t add_node(double weight = 1.0);
    /// Removes `node` from the ring; its shard's entries are simply
    /// abandoned (requests consult the ring, so they can never be
    /// served stale). Throws when removing the last node.
    void remove_node(std::uint32_t node);

    [[nodiscard]] std::vector<std::uint32_t> active_nodes() const {
        return ring_.nodes();
    }
    [[nodiscard]] std::size_t num_nodes() const { return ring_.num_nodes(); }
    [[nodiscard]] std::uint32_t owner_of(std::uint32_t id) const {
        return ring_.owner_of(id);
    }
    [[nodiscard]] const util::HashRing& ring() const { return ring_; }

    /// Is `id` resident in `node`'s shard? (test/bench inspection)
    [[nodiscard]] bool resident(std::uint32_t node, std::uint32_t id) const;

    [[nodiscard]] ClusterCounters counters() const;
    /// Peer bytes spent since begin_epoch().
    [[nodiscard]] std::uint64_t budget_spent() const {
        return budget_spent_.load(std::memory_order_relaxed);
    }
    /// Wire bytes charged per peer exchange (frames + sample payload).
    [[nodiscard]] std::size_t wire_bytes_per_fetch() const {
        return wire_bytes_;
    }
    /// Nominal (fault-free) virtual cost of one peer exchange.
    [[nodiscard]] storage::SimDuration peer_cost() const;
    /// Virtual cost of one remote-storage fetch.
    [[nodiscard]] storage::SimDuration remote_cost() const {
        return remote_cost_;
    }

private:
    struct Node {
        /// This node's slice of the cooperative cache.
        std::unique_ptr<cache::TwoLayerSemanticCache> shard;
        /// The link *to* this node as a peer server: a RemoteStore
        /// priced at peer cost, wrapped in the resilient envelope that
        /// models its brownouts/straggling.
        std::unique_ptr<storage::RemoteStore> link;
        std::unique_ptr<storage::ResilientStore> envelope;
        /// Batch tallies feeding the envelope's breaker at the barrier.
        std::atomic<std::uint64_t> batch_ok{0};
        std::atomic<std::uint64_t> batch_failed{0};
        bool active = false;
    };

    [[nodiscard]] std::unique_ptr<Node> make_node(std::uint32_t id) const;
    /// Bumps and returns the id's access-frequency score (admission /
    /// re-key input of the owner shard).
    [[nodiscard]] double touch_score(std::uint32_t id);
    /// Reserves `wire_bytes_` against the epoch budget; false = spent.
    [[nodiscard]] bool reserve_budget();
    void fetch_remote(std::uint32_t id);

    const data::SyntheticDataset& dataset_;
    storage::RemoteStore& remote_;
    ClusterConfig config_;
    util::HashRing ring_;

    // Indexed by node id (ids are never reused, so removed slots stay
    // behind as inactive tombstones). unique_ptr: Node holds atomics.
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<std::atomic<std::uint32_t>> freq_;  // per-id access count

    std::size_t wire_bytes_ = 0;
    storage::SimDuration remote_cost_{};
    storage::SimDuration peer_cost_{};
    std::uint64_t budget_limit_ = 0;  // bytes per epoch; 0 = unlimited
    std::atomic<std::uint64_t> budget_spent_{0};

    std::atomic<std::uint64_t> local_hits_{0};
    std::atomic<std::uint64_t> peer_hits_{0};
    std::atomic<std::uint64_t> peer_misses_{0};
    std::atomic<std::uint64_t> remote_fetches_{0};
    std::atomic<std::uint64_t> hedges_{0};
    std::atomic<std::uint64_t> hedge_wins_{0};
    std::atomic<std::uint64_t> throttled_{0};
    std::atomic<std::uint64_t> failovers_{0};
    std::atomic<std::uint64_t> peer_bytes_{0};
};

}  // namespace spider::cluster
