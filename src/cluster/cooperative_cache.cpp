#include "cluster/cooperative_cache.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "server/protocol.hpp"

namespace spider::cluster {

namespace {

/// Fault-draw context of peer exchanges: independent of the simulator's
/// demand (1) and prefetch (2) streams against remote storage.
constexpr std::uint32_t kPeerContext = 3;

/// Per-node perturbation of the fault-draw seed, so two peers never
/// replay each other's weather.
[[nodiscard]] std::uint64_t node_seed(std::uint64_t seed, std::uint32_t id) {
    return seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(id) + 1));
}

}  // namespace

CooperativeCache::CooperativeCache(const data::SyntheticDataset& dataset,
                                   storage::RemoteStore& remote,
                                   ClusterConfig config)
    : dataset_{dataset},
      remote_{remote},
      config_{std::move(config)},
      ring_{std::max<std::size_t>(config_.vnodes_per_node, 1)},
      freq_(dataset.size()) {
    if (config_.nodes == 0) {
        throw std::invalid_argument{"CooperativeCache: nodes must be >= 1"};
    }
    config_.node_cache_items =
        std::max<std::size_t>(config_.node_cache_items, 1);
    // One GET exchange on the wire: request frame + reply frame + the
    // sample payload riding with the reply.
    wire_bytes_ = server::get_request_wire_len() +
                  server::get_reply_wire_len() +
                  dataset_.spec().bytes_per_sample;
    remote_cost_ = remote_.fetch_cost(0);
    budget_limit_ = static_cast<std::uint64_t>(config_.comm_budget_mb *
                                               1024.0 * 1024.0);
    nodes_.reserve(config_.nodes);
    for (std::size_t i = 0; i < config_.nodes; ++i) {
        nodes_.push_back(make_node(static_cast<std::uint32_t>(i)));
        ring_.add_node(static_cast<std::uint32_t>(i));
    }
    peer_cost_ = nodes_.front()->link->fetch_cost(0);
}

std::unique_ptr<CooperativeCache::Node> CooperativeCache::make_node(
    std::uint32_t id) const {
    auto node = std::make_unique<Node>();
    // The cluster tier is an exact-id cache: imp_ratio 1.0 gives the
    // whole shard to the Importance section (Case 2/4 admission against
    // the frequency score). Semantic surrogate serving stays in the
    // node-local frontend, which owns the labels and embeddings.
    node->shard = std::make_unique<cache::TwoLayerSemanticCache>(
        config_.node_cache_items, 1.0, config_.cache_shards,
        config_.cache_lockfree_reads);

    // The link *to* this node as a peer server. The protocol frames are
    // folded into the per-request latency; the payload transfer term
    // comes from fetch_cost's bytes_per_sample / bytes_per_ms.
    const double frame_ms =
        static_cast<double>(server::get_request_wire_len() +
                            server::get_reply_wire_len()) /
        config_.peer_bytes_per_ms;
    node->link = std::make_unique<storage::RemoteStore>(
        dataset_, storage::RemoteStoreConfig{
                      .latency_per_sample =
                          storage::from_ms(config_.peer_latency_ms + frame_ms),
                      .bytes_per_ms = config_.peer_bytes_per_ms,
                      .parallelism = 4,
                  });

    const bool straggler =
        config_.straggler_node >= 0 &&
        id == static_cast<std::uint32_t>(config_.straggler_node);
    storage::FaultModelConfig faults;
    faults.enabled = config_.peer_transient_prob > 0.0 || straggler;
    faults.seed = node_seed(config_.seed, id);
    faults.transient_failure_prob = config_.peer_transient_prob;
    if (straggler) {
        faults.latency_spike_prob = config_.straggler_spike_prob;
        faults.latency_spike_mult = config_.straggler_spike_mult;
    }
    storage::ResiliencePolicy policy;
    policy.max_attempts = std::max<std::size_t>(config_.max_attempts, 1);
    // Backoff at wire scale, not storage scale.
    policy.backoff_base_ms = config_.peer_latency_ms;
    policy.backoff_max_ms = config_.peer_latency_ms * 8.0;
    policy.hedge_enabled = config_.hedge_enabled;
    policy.hedge_delay_ms = config_.hedge_delay_ms;
    node->envelope = std::make_unique<storage::ResilientStore>(
        *node->link, faults, policy);
    node->active = true;
    return node;
}

double CooperativeCache::touch_score(std::uint32_t id) {
    return static_cast<double>(
        freq_[id].fetch_add(1, std::memory_order_relaxed) + 1);
}

bool CooperativeCache::reserve_budget() {
    const auto bytes = static_cast<std::uint64_t>(wire_bytes_);
    if (budget_limit_ != 0) {
        // Atomic reservation: an overshooting reservation is rolled back
        // before any wire traffic, so the budget is a hard cap.
        const std::uint64_t prev =
            budget_spent_.fetch_add(bytes, std::memory_order_relaxed);
        if (prev + bytes > budget_limit_) {
            budget_spent_.fetch_sub(bytes, std::memory_order_relaxed);
            return false;
        }
    } else {
        budget_spent_.fetch_add(bytes, std::memory_order_relaxed);
    }
    peer_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    return true;
}

void CooperativeCache::fetch_remote(std::uint32_t id) {
    (void)remote_.fetch(id);
    remote_fetches_.fetch_add(1, std::memory_order_relaxed);
}

ServiceResult CooperativeCache::service(std::uint32_t node, std::uint32_t id,
                                        storage::SimDuration now) {
    ServiceResult r;
    const double score = touch_score(id);

    if (!config_.peer_fetch_enabled) {
        // Storage-only baseline: independent per-node caches, every
        // shared-cache miss goes straight to remote.
        Node& self = *nodes_[node];
        if (self.shard->lookup(id).kind != cache::HitKind::kMiss) {
            self.shard->update_importance_score(id, score);
            local_hits_.fetch_add(1, std::memory_order_relaxed);
            r.source = ServeSource::kLocalHit;
            r.cost = storage::from_ms(config_.local_hit_ms);
            return r;
        }
        fetch_remote(id);
        self.shard->on_miss_fetched(id, score);
        r.source = ServeSource::kRemote;
        r.cost = remote_cost_;
        return r;
    }

    const std::uint32_t owner = ring_.owner_of(id);
    Node& own = *nodes_[owner];
    if (owner == node) {
        if (own.shard->lookup(id).kind != cache::HitKind::kMiss) {
            own.shard->update_importance_score(id, score);
            local_hits_.fetch_add(1, std::memory_order_relaxed);
            r.source = ServeSource::kLocalHit;
            r.cost = storage::from_ms(config_.local_hit_ms);
            return r;
        }
        fetch_remote(id);
        own.shard->on_miss_fetched(id, score);
        r.source = ServeSource::kRemote;
        r.cost = remote_cost_;
        return r;
    }

    // Peer path. Budget first: a throttled miss never touches the wire.
    if (!reserve_budget()) {
        throttled_.fetch_add(1, std::memory_order_relaxed);
        fetch_remote(id);
        r.source = ServeSource::kRemote;
        r.cost = remote_cost_;
        r.throttled = true;
        return r;
    }

    const storage::FetchResult fr = own.envelope->fetch(id, now, kPeerContext);
    r.hedged = fr.hedged;
    r.hedge_won = fr.hedge_won;
    if (fr.hedged) {
        hedges_.fetch_add(1, std::memory_order_relaxed);
        // The duplicate is a second full exchange on the wire.
        budget_spent_.fetch_add(wire_bytes_, std::memory_order_relaxed);
        peer_bytes_.fetch_add(wire_bytes_, std::memory_order_relaxed);
    }
    if (fr.hedge_won) hedge_wins_.fetch_add(1, std::memory_order_relaxed);
    if (!fr.ok) {
        own.batch_failed.fetch_add(1, std::memory_order_relaxed);
        failovers_.fetch_add(1, std::memory_order_relaxed);
        fetch_remote(id);
        r.source = ServeSource::kRemote;
        r.cost = fr.cost + remote_cost_;
        r.failover = true;
        return r;
    }
    own.batch_ok.fetch_add(1, std::memory_order_relaxed);

    if (own.shard->lookup(id).kind != cache::HitKind::kMiss) {
        own.shard->update_importance_score(id, score);
        peer_hits_.fetch_add(1, std::memory_order_relaxed);
        r.source = ServeSource::kPeerHit;
        r.cost = fr.cost;
        return r;
    }
    // Owner misses too: it fetches from remote on the requester's
    // behalf, admits into its own shard (only the owner ever admits),
    // and forwards the sample — the requester pays wire + remote.
    fetch_remote(id);
    own.shard->on_miss_fetched(id, score);
    peer_misses_.fetch_add(1, std::memory_order_relaxed);
    r.source = ServeSource::kPeerMiss;
    r.cost = fr.cost + remote_cost_;
    return r;
}

void CooperativeCache::begin_epoch() {
    budget_spent_.store(0, std::memory_order_relaxed);
}

void CooperativeCache::on_batch_end(storage::SimDuration now) {
    for (const std::unique_ptr<Node>& node : nodes_) {
        if (!node->active) continue;
        const std::uint64_t failed =
            node->batch_failed.exchange(0, std::memory_order_relaxed);
        const std::uint64_t ok =
            node->batch_ok.exchange(0, std::memory_order_relaxed);
        node->envelope->on_batch_end(failed, ok, now);
    }
}

std::uint32_t CooperativeCache::add_node(double weight) {
    const auto id = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(make_node(id));
    ring_.add_node(id, weight);
    return id;
}

void CooperativeCache::remove_node(std::uint32_t node) {
    if (ring_.num_nodes() <= 1) {
        throw std::invalid_argument{
            "CooperativeCache: cannot remove the last node"};
    }
    ring_.remove_node(node);  // throws when not a member
    nodes_[node]->active = false;
}

bool CooperativeCache::resident(std::uint32_t node, std::uint32_t id) const {
    return nodes_[node]->shard->probe(id);
}

storage::SimDuration CooperativeCache::peer_cost() const { return peer_cost_; }

ClusterCounters CooperativeCache::counters() const {
    ClusterCounters c;
    c.local_hits = local_hits_.load(std::memory_order_relaxed);
    c.peer_hits = peer_hits_.load(std::memory_order_relaxed);
    c.peer_misses = peer_misses_.load(std::memory_order_relaxed);
    c.remote_fetches = remote_fetches_.load(std::memory_order_relaxed);
    c.hedges = hedges_.load(std::memory_order_relaxed);
    c.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
    c.throttled = throttled_.load(std::memory_order_relaxed);
    c.failovers = failovers_.load(std::memory_order_relaxed);
    c.peer_bytes = peer_bytes_.load(std::memory_order_relaxed);
    return c;
}

}  // namespace spider::cluster
