#pragma once

// Homophily Cache (paper Section 4.2, part 2): stores high-degree graph
// nodes together with their neighbor-ID lists. A request that misses the
// Importance Cache but appears in some resident node's neighbor list is
// served the *high-degree node itself* as a semantic surrogate — similar
// samples affect the model near-identically, so I/O is saved at negligible
// accuracy cost. Updates are FIFO ("all samples are regularly replaced,
// fostering diversity"), one candidate per processed batch.
//
// Since PR 9 the replacement order is policy-pluggable (DESIGN.md §13):
// the default PolicyKind::kFifo keeps the exact legacy FIFO code path
// (bit-identical), while kLru/kLfu/kGdsf/kCost delegate victim selection
// to an EvictionCache. The insertion-order list is kept in every mode —
// it is the section's iteration/snapshot order — only the *victim choice*
// changes. A delegated policy's access signal is the re-offer stream:
// update() on an already-resident key counts as a touch (the read path is
// seqlock wait-free and cannot take recency bookkeeping).

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/policy.hpp"

namespace spider::cache {

class HomophilyCache {
public:
    explicit HomophilyCache(std::size_t capacity,
                            PolicyKind kind = PolicyKind::kFifo);

    [[nodiscard]] std::string name() const { return "Homophily"; }
    [[nodiscard]] PolicyKind policy() const { return kind_; }
    /// Number of resident high-degree nodes (each entry holds one sample
    /// payload; the neighbor-ID lists are metadata, not payload).
    [[nodiscard]] std::size_t size() const { return entries_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }

    /// Is `id` itself a resident high-degree node?
    [[nodiscard]] bool contains_key(std::uint32_t id) const;

    /// Is `id` listed as a neighbor of some resident node? Returns that
    /// node's id (the surrogate to serve) — the paper's Case 3.
    [[nodiscard]] std::optional<std::uint32_t> surrogate_for(
        std::uint32_t id) const;

    /// Inserts the batch's highest-degree node with its neighbor list,
    /// unless it is already resident (paper: "which was not previously in
    /// the Homophily Cache"). Evicts the active policy's victim when full
    /// (FIFO head by default). Returns the evicted node id, if any.
    std::optional<std::uint32_t> update(std::uint32_t key,
                                        std::span<const std::uint32_t> neighbors);

    /// Access signal for a delegated policy: the key was re-offered as a
    /// batch's high-degree candidate while already resident. No-op (and
    /// bit-identical) under the default FIFO policy. Returns residency.
    bool touch_key(std::uint32_t key);

    /// Neighbor list of a resident node (empty span if absent) — used by
    /// tests and by the metrics layer.
    [[nodiscard]] std::span<const std::uint32_t> neighbors_of(
        std::uint32_t key) const;

    /// Newest resident key accepted by `pred` (degraded-mode surrogate
    /// search; newest first, as recency correlates with score freshness).
    template <typename Pred>
    [[nodiscard]] std::optional<std::uint32_t> find_key_if(Pred pred) const {
        for (auto it = fifo_.rbegin(); it != fifo_.rend(); ++it) {
            if (pred(*it)) return *it;
        }
        return std::nullopt;
    }

    /// The next eviction victim (nullopt when empty): the FIFO head by
    /// default, the delegated policy's choice otherwise. Lets the sharded
    /// two-layer cache capture a victim's neighbor list before the
    /// eviction invalidates it.
    [[nodiscard]] std::optional<std::uint32_t> oldest() const;

    /// Monotonic insert-generation counter of a resident key (nullopt when
    /// absent). Every successful insert of a key — including a re-insert
    /// after an eviction — gets a fresh value, so a caller that published
    /// derived state (the sharded neighbor index) can later detect that
    /// the generation it published for no longer exists (ABA-safe).
    [[nodiscard]] std::optional<std::uint64_t> seq_of(std::uint32_t key) const;

    /// Visits every resident key, insertion order (oldest first) — view-
    /// rebuild helper. Order is insertion-based in every policy mode.
    template <typename Fn>
    void for_each_key(Fn fn) const {
        for (std::uint32_t key : fifo_) fn(key);
    }

    /// Visits every internal neighbor-index entry (neighbor id, resident
    /// keys newest-last) — view-rebuild helper for the single-shard
    /// configuration, where this internal index is the surrogate source.
    template <typename Fn>
    void for_each_index_entry(Fn fn) const {
        for (const auto& [neighbor, keys] : neighbor_index_) fn(neighbor, keys);
    }

    /// Evicts the next victim and returns it with its neighbor list — the
    /// explicit-eviction path used when an external neighbor index must be
    /// kept in sync (sharded mode).
    std::optional<std::pair<std::uint32_t, std::vector<std::uint32_t>>>
    evict_oldest();

    /// Shrink evicts in the active policy's victim order.
    void set_capacity(std::size_t capacity);

private:
    struct Entry {
        std::vector<std::uint32_t> neighbors;
        std::list<std::uint32_t>::iterator fifo_pos;
        std::uint64_t seq = 0;
    };

    void evict_front();
    void evict_key(std::uint32_t victim);
    [[nodiscard]] std::optional<std::uint32_t> next_victim() const;

    std::size_t capacity_;
    PolicyKind kind_;
    std::unique_ptr<EvictionCache> policy_;  // null in kFifo mode
    std::uint64_t next_seq_ = 0;
    std::list<std::uint32_t> fifo_;  // front = oldest key
    std::unordered_map<std::uint32_t, Entry> entries_;
    // neighbor id -> resident keys whose lists contain it (usually one).
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> neighbor_index_;
};

}  // namespace spider::cache
