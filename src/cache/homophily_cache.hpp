#pragma once

// Homophily Cache (paper Section 4.2, part 2): stores high-degree graph
// nodes together with their neighbor-ID lists. A request that misses the
// Importance Cache but appears in some resident node's neighbor list is
// served the *high-degree node itself* as a semantic surrogate — similar
// samples affect the model near-identically, so I/O is saved at negligible
// accuracy cost. Updates are FIFO ("all samples are regularly replaced,
// fostering diversity"), one candidate per processed batch.

#include <cstdint>
#include <list>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace spider::cache {

class HomophilyCache {
public:
    explicit HomophilyCache(std::size_t capacity);

    [[nodiscard]] std::string name() const { return "Homophily"; }
    /// Number of resident high-degree nodes (each entry holds one sample
    /// payload; the neighbor-ID lists are metadata, not payload).
    [[nodiscard]] std::size_t size() const { return entries_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }

    /// Is `id` itself a resident high-degree node?
    [[nodiscard]] bool contains_key(std::uint32_t id) const;

    /// Is `id` listed as a neighbor of some resident node? Returns that
    /// node's id (the surrogate to serve) — the paper's Case 3.
    [[nodiscard]] std::optional<std::uint32_t> surrogate_for(
        std::uint32_t id) const;

    /// Inserts the batch's highest-degree node with its neighbor list,
    /// unless it is already resident (paper: "which was not previously in
    /// the Homophily Cache"). Evicts FIFO when full. Returns the evicted
    /// node id, if any.
    std::optional<std::uint32_t> update(std::uint32_t key,
                                        std::span<const std::uint32_t> neighbors);

    /// Neighbor list of a resident node (empty span if absent) — used by
    /// tests and by the metrics layer.
    [[nodiscard]] std::span<const std::uint32_t> neighbors_of(
        std::uint32_t key) const;

    /// Newest resident key accepted by `pred` (degraded-mode surrogate
    /// search; newest first, as recency correlates with score freshness).
    template <typename Pred>
    [[nodiscard]] std::optional<std::uint32_t> find_key_if(Pred pred) const {
        for (auto it = fifo_.rbegin(); it != fifo_.rend(); ++it) {
            if (pred(*it)) return *it;
        }
        return std::nullopt;
    }

    /// FIFO head: the next eviction victim (nullopt when empty). Lets the
    /// sharded two-layer cache capture a victim's neighbor list before the
    /// eviction invalidates it.
    [[nodiscard]] std::optional<std::uint32_t> oldest() const;

    /// Monotonic insert-generation counter of a resident key (nullopt when
    /// absent). Every successful insert of a key — including a re-insert
    /// after an eviction — gets a fresh value, so a caller that published
    /// derived state (the sharded neighbor index) can later detect that
    /// the generation it published for no longer exists (ABA-safe).
    [[nodiscard]] std::optional<std::uint64_t> seq_of(std::uint32_t key) const;

    /// Visits every resident key, oldest first — view-rebuild helper.
    template <typename Fn>
    void for_each_key(Fn fn) const {
        for (std::uint32_t key : fifo_) fn(key);
    }

    /// Visits every internal neighbor-index entry (neighbor id, resident
    /// keys newest-last) — view-rebuild helper for the single-shard
    /// configuration, where this internal index is the surrogate source.
    template <typename Fn>
    void for_each_index_entry(Fn fn) const {
        for (const auto& [neighbor, keys] : neighbor_index_) fn(neighbor, keys);
    }

    /// Pops the FIFO head and returns it with its neighbor list — the
    /// explicit-eviction path used when an external neighbor index must be
    /// kept in sync (sharded mode).
    std::optional<std::pair<std::uint32_t, std::vector<std::uint32_t>>>
    evict_oldest();

    void set_capacity(std::size_t capacity);

private:
    struct Entry {
        std::vector<std::uint32_t> neighbors;
        std::list<std::uint32_t>::iterator fifo_pos;
        std::uint64_t seq = 0;
    };

    void evict_front();

    std::size_t capacity_;
    std::uint64_t next_seq_ = 0;
    std::list<std::uint32_t> fifo_;  // front = oldest key
    std::unordered_map<std::uint32_t, Entry> entries_;
    // neighbor id -> resident keys whose lists contain it (usually one).
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> neighbor_index_;
};

}  // namespace spider::cache
