#include "cache/policy.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "cache/basic_policies.hpp"

namespace spider::cache {

PolicyKind policy_from_string(const std::string& name) {
    std::string n = name;
    std::transform(n.begin(), n.end(), n.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    if (n == "semantic" || n == "spider") return PolicyKind::kSemantic;
    if (n == "lru") return PolicyKind::kLru;
    if (n == "lfu") return PolicyKind::kLfu;
    if (n == "fifo") return PolicyKind::kFifo;
    if (n == "gdsf") return PolicyKind::kGdsf;
    if (n == "cost" || n == "cost-aware" || n == "costaware") {
        return PolicyKind::kCost;
    }
    if (n == "random") return PolicyKind::kRandom;
    if (n == "static" || n == "minio") return PolicyKind::kStatic;
    throw std::invalid_argument{"unknown cache policy '" + name + "'"};
}

std::string to_string(PolicyKind kind) {
    switch (kind) {
        case PolicyKind::kSemantic: return "semantic";
        case PolicyKind::kLru: return "lru";
        case PolicyKind::kLfu: return "lfu";
        case PolicyKind::kFifo: return "fifo";
        case PolicyKind::kGdsf: return "gdsf";
        case PolicyKind::kCost: return "cost";
        case PolicyKind::kRandom: return "random";
        case PolicyKind::kStatic: return "static";
    }
    return "unknown";
}

bool importance_policy_ok(PolicyKind kind) {
    switch (kind) {
        case PolicyKind::kSemantic:
        case PolicyKind::kLru:
        case PolicyKind::kLfu:
        case PolicyKind::kFifo:
        case PolicyKind::kGdsf:
        case PolicyKind::kCost:
            return true;
        case PolicyKind::kRandom:
        case PolicyKind::kStatic:
            return false;
    }
    return false;
}

bool homophily_policy_ok(PolicyKind kind) {
    // kSemantic is score-ordered admission — the homophily section has no
    // score stream, so it stays out; random/static as for importance.
    return kind != PolicyKind::kSemantic && importance_policy_ok(kind);
}

void validate(const SectionPolicies& policies) {
    if (!importance_policy_ok(policies.importance)) {
        throw std::invalid_argument{
            "importance section policy '" + to_string(policies.importance) +
            "' not eligible (use semantic|lru|lfu|fifo|gdsf|cost)"};
    }
    if (!homophily_policy_ok(policies.homophily)) {
        throw std::invalid_argument{
            "homophily section policy '" + to_string(policies.homophily) +
            "' not eligible (use fifo|lru|lfu|gdsf|cost)"};
    }
}

std::unique_ptr<EvictionCache> make_section_policy(PolicyKind kind,
                                                   std::size_t capacity) {
    switch (kind) {
        case PolicyKind::kLru: return std::make_unique<LruCache>(capacity);
        case PolicyKind::kLfu: return std::make_unique<LfuCache>(capacity);
        case PolicyKind::kFifo: return std::make_unique<FifoCache>(capacity);
        case PolicyKind::kGdsf: return std::make_unique<GdsfCache>(capacity);
        case PolicyKind::kCost:
            return std::make_unique<CostAwareCache>(capacity);
        case PolicyKind::kSemantic:
        case PolicyKind::kRandom:
        case PolicyKind::kStatic:
            break;
    }
    throw std::invalid_argument{"make_section_policy: '" + to_string(kind) +
                                "' is not a section policy"};
}

}  // namespace spider::cache
