#include "cache/shadow_tuner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spider::cache {

void validate(const TunerConfig& config) {
    if (!config.enabled) return;
    if (config.ratio_grid.empty()) {
        throw std::invalid_argument{"tuner: ratio_grid must not be empty"};
    }
    for (double ratio : config.ratio_grid) {
        if (ratio <= 0.0 || ratio > 1.0) {
            throw std::invalid_argument{
                "tuner: ratio_grid entries must be in (0, 1]"};
        }
    }
    if (config.policy_grid.empty()) {
        throw std::invalid_argument{"tuner: policies must not be empty"};
    }
    for (PolicyKind kind : config.policy_grid) {
        if (!importance_policy_ok(kind)) {
            throw std::invalid_argument{
                "tuner: policy '" + to_string(kind) +
                "' not eligible for the importance section"};
        }
    }
    if (config.margin < 0.0) {
        throw std::invalid_argument{"tuner: margin must be >= 0"};
    }
    if (config.sustain_epochs == 0) {
        throw std::invalid_argument{"tuner: sustain_epochs must be >= 1"};
    }
    if (config.max_neighbors == 0) {
        throw std::invalid_argument{"tuner: max_neighbors must be >= 1"};
    }
}

ShadowTuner::ShadowTuner(const TunerConfig& config, std::size_t total_capacity,
                         double incumbent_ratio, PolicyKind incumbent_policy)
    : config_{config}, incumbent_{incumbent_ratio, incumbent_policy} {
    validate(config_);
    // One ghost per grid point; the incumbent's own combination would only
    // re-measure the live cache, so it is skipped. (After a switch the new
    // incumbent's ghost is deliberately kept — see end_epoch.)
    for (double ratio : config_.ratio_grid) {
        for (PolicyKind kind : config_.policy_grid) {
            const Candidate candidate{ratio, kind};
            if (candidate == incumbent_) continue;
            ghosts_.push_back(
                std::make_unique<Ghost>(candidate, total_capacity));
        }
    }
}

void ShadowTuner::on_access(std::uint32_t id, double score) {
    ++epoch_accesses_;
    for (auto& ghost : ghosts_) {
        if (ghost->cache.lookup(id).kind != HitKind::kMiss) {
            ++ghost->epoch_hits;
        } else {
            (void)ghost->cache.on_miss_fetched(id, score);
        }
    }
}

void ShadowTuner::on_score_update(std::uint32_t id, double score) {
    for (auto& ghost : ghosts_) {
        ghost->cache.update_importance_score(id, score);
    }
}

void ShadowTuner::on_homophily_offer(
    std::uint32_t key, std::span<const std::uint32_t> neighbors) {
    std::span<const std::uint32_t> capped = neighbors;
    if (capped.size() > config_.max_neighbors) {
        capped = capped.first(config_.max_neighbors);
    }
    for (auto& ghost : ghosts_) {
        (void)ghost->cache.update_homophily(key, capped);
    }
}

ShadowTuner::Verdict ShadowTuner::end_epoch(double incumbent_hit_ratio) {
    Verdict verdict;
    verdict.incumbent_hit_ratio = incumbent_hit_ratio;
    const Ghost* best = nullptr;
    double best_ratio = -1.0;
    for (const auto& ghost : ghosts_) {
        const double ratio =
            epoch_accesses_ == 0
                ? 0.0
                : static_cast<double>(ghost->epoch_hits) /
                      static_cast<double>(epoch_accesses_);
        // Strict > keeps the ranking deterministic: ties resolve to the
        // earlier grid point, which is construction order every epoch.
        if (ratio > best_ratio) {
            best_ratio = ratio;
            best = ghost.get();
        }
    }
    if (best != nullptr) {
        verdict.shadow_hits = best->epoch_hits;
        verdict.best_hit_ratio = best_ratio;
        const bool beats =
            best_ratio >= incumbent_hit_ratio + config_.margin &&
            epoch_accesses_ > 0;
        if (beats) {
            if (streak_candidate_ == best->candidate) {
                ++streak_;
            } else {
                streak_candidate_ = best->candidate;
                streak_ = 1;
            }
        } else {
            streak_candidate_.reset();
            streak_ = 0;
        }
        if (streak_ >= config_.sustain_epochs) {
            verdict.switched = true;
            verdict.winner = best->candidate;
            incumbent_ = best->candidate;
            ++switches_;
            streak_candidate_.reset();
            streak_ = 0;
            // The winner's ghost stays in the panel: once applied, the
            // live cache should track it, so the margin test against the
            // (new) incumbent self-stabilizes instead of re-firing.
        }
    }
    for (auto& ghost : ghosts_) ghost->epoch_hits = 0;
    epoch_accesses_ = 0;
    return verdict;
}

}  // namespace spider::cache
