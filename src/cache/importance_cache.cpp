#include "cache/importance_cache.hpp"

#include <stdexcept>

namespace spider::cache {

ImportanceCache::ImportanceCache(std::size_t capacity, PolicyKind kind)
    : capacity_{capacity}, kind_{kind} {
    if (kind_ != PolicyKind::kSemantic) {
        if (!importance_policy_ok(kind_)) {
            throw std::invalid_argument{
                "ImportanceCache: policy '" + to_string(kind_) +
                "' not eligible for the importance section"};
        }
        policy_ = make_section_policy(kind_, capacity_);
    }
}

bool ImportanceCache::contains(std::uint32_t id) const {
    return scores_.contains(id);
}

std::optional<double> ImportanceCache::min_score() const {
    if (order_.empty()) return std::nullopt;
    return order_.begin()->first;
}

std::optional<double> ImportanceCache::score_of(std::uint32_t id) const {
    const auto it = scores_.find(id);
    if (it == scores_.end()) return std::nullopt;
    return it->second;
}

void ImportanceCache::evict_min() {
    const auto victim = order_.begin();
    scores_.erase(victim->second);
    order_.erase(victim);
}

void ImportanceCache::erase_tracking(std::uint32_t id) {
    const auto it = scores_.find(id);
    if (it == scores_.end()) return;
    order_.erase({it->second, id});
    scores_.erase(it);
}

ImportanceCache::AdmitResult ImportanceCache::admit_scored(std::uint32_t id,
                                                           double score) {
    AdmitResult result;
    if (capacity_ == 0 || scores_.contains(id)) return result;
    if (policy_) {
        // Delegated admission: the policy replaces its own victim; the
        // score still reaches cost-sensitive policies via note_score.
        policy_->note_score(id, score);
        result.evicted = policy_->admit(id);
        if (!policy_->contains(id)) return result;  // policy rejected
        if (result.evicted) erase_tracking(*result.evicted);
        scores_.emplace(id, score);
        order_.emplace(score, id);
        result.admitted = true;
        return result;
    }
    if (scores_.size() >= capacity_) {
        const auto min_it = order_.begin();
        if (score <= min_it->first) return result;  // does not beat the min
        result.evicted = min_it->second;
        evict_min();
    }
    scores_.emplace(id, score);
    order_.emplace(score, id);
    result.admitted = true;
    return result;
}

bool ImportanceCache::update_score(std::uint32_t id, double score) {
    const auto it = scores_.find(id);
    if (it == scores_.end()) return false;
    order_.erase({it->second, id});
    it->second = score;
    order_.emplace(score, id);
    if (policy_) {
        // The score refresh is the section's only write-path traffic for
        // resident ids — it doubles as the policy access signal.
        policy_->touch(id);
        policy_->note_score(id, score);
    }
    return true;
}

bool ImportanceCache::erase(std::uint32_t id) {
    const auto it = scores_.find(id);
    if (it == scores_.end()) return false;
    order_.erase({it->second, id});
    scores_.erase(it);
    if (policy_) policy_->erase(id);
    return true;
}

void ImportanceCache::set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    if (policy_) {
        while (scores_.size() > capacity_) {
            const auto victim = policy_->peek_victim();
            if (!victim) break;  // defensive: policy and tracking diverged
            policy_->erase(*victim);
            erase_tracking(*victim);
        }
        policy_->set_capacity(capacity_);
        return;
    }
    while (scores_.size() > capacity_) evict_min();
}

}  // namespace spider::cache
