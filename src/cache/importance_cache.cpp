#include "cache/importance_cache.hpp"

namespace spider::cache {

ImportanceCache::ImportanceCache(std::size_t capacity) : capacity_{capacity} {}

bool ImportanceCache::contains(std::uint32_t id) const {
    return scores_.contains(id);
}

std::optional<double> ImportanceCache::min_score() const {
    if (order_.empty()) return std::nullopt;
    return order_.begin()->first;
}

std::optional<double> ImportanceCache::score_of(std::uint32_t id) const {
    const auto it = scores_.find(id);
    if (it == scores_.end()) return std::nullopt;
    return it->second;
}

void ImportanceCache::evict_min() {
    const auto victim = order_.begin();
    scores_.erase(victim->second);
    order_.erase(victim);
}

ImportanceCache::AdmitResult ImportanceCache::admit_scored(std::uint32_t id,
                                                           double score) {
    AdmitResult result;
    if (capacity_ == 0 || scores_.contains(id)) return result;
    if (scores_.size() >= capacity_) {
        const auto min_it = order_.begin();
        if (score <= min_it->first) return result;  // does not beat the min
        result.evicted = min_it->second;
        evict_min();
    }
    scores_.emplace(id, score);
    order_.emplace(score, id);
    result.admitted = true;
    return result;
}

bool ImportanceCache::update_score(std::uint32_t id, double score) {
    const auto it = scores_.find(id);
    if (it == scores_.end()) return false;
    order_.erase({it->second, id});
    it->second = score;
    order_.emplace(score, id);
    return true;
}

bool ImportanceCache::erase(std::uint32_t id) {
    const auto it = scores_.find(id);
    if (it == scores_.end()) return false;
    order_.erase({it->second, id});
    scores_.erase(it);
    return true;
}

void ImportanceCache::set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    while (scores_.size() > capacity_) evict_min();
}

}  // namespace spider::cache
