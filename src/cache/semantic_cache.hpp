#pragma once

// Semantic-aware two-layer cache (paper Section 4.2, Figure 9): an
// Importance Cache section and a Homophily Cache section that are exclusive
// (no data exchange). The lookup order and update rules implement
// Algorithm 1 lines 4-13 and the paper's Cases 1-4:
//
//   Case 1  hit Importance Cache                 -> serve as-is
//   Case 3  miss Importance, neighbor match      -> serve the resident
//                                                   high-degree surrogate
//   Case 2  miss both, score <= resident min     -> remote fetch, no admit
//   Case 4  miss both, score >  resident min     -> remote fetch, evict the
//                                                   min, admit the sample
//
// The split between sections is `imp_ratio` of total capacity, adjusted at
// runtime by the Elastic Cache Manager (Section 4.3).

#include <cstdint>
#include <optional>
#include <span>

#include "cache/homophily_cache.hpp"
#include "cache/importance_cache.hpp"

namespace spider::cache {

enum class HitKind : std::uint8_t {
    kImportance,  // Case 1
    kHomophily,   // Case 3 (served a surrogate)
    kMiss,        // Cases 2 and 4
};

struct Lookup {
    HitKind kind = HitKind::kMiss;
    /// For kHomophily: the surrogate id actually served instead of the
    /// requested one. Otherwise equals the requested id.
    std::uint32_t served_id = 0;
};

class TwoLayerSemanticCache {
public:
    /// @param total_capacity  Items across both sections.
    /// @param imp_ratio       Initial Importance-section fraction (0..1].
    TwoLayerSemanticCache(std::size_t total_capacity, double imp_ratio);

    [[nodiscard]] std::size_t total_capacity() const { return total_capacity_; }
    [[nodiscard]] double imp_ratio() const { return imp_ratio_; }
    [[nodiscard]] ImportanceCache& importance() { return importance_; }
    [[nodiscard]] const ImportanceCache& importance() const { return importance_; }
    [[nodiscard]] HomophilyCache& homophily() { return homophily_; }
    [[nodiscard]] const HomophilyCache& homophily() const { return homophily_; }

    /// Read path (Algorithm 1 lines 5-11): Importance first, then the
    /// Homophily neighbor lists. Does not mutate either section.
    [[nodiscard]] Lookup lookup(std::uint32_t id) const;

    /// Miss path (line 10): called after the sample was fetched remotely.
    /// Applies the Case 2/4 admission rule with the sample's current score.
    ImportanceCache::AdmitResult on_miss_fetched(std::uint32_t id, double score);

    /// Batch-end path (line 22): offer the batch's highest-degree node.
    std::optional<std::uint32_t> update_homophily(
        std::uint32_t key, std::span<const std::uint32_t> neighbors);

    /// Elastic repartition: resizes both sections to match `imp_ratio` of
    /// the unchanged total capacity (Eq. 8 output).
    void set_imp_ratio(double imp_ratio);

private:
    [[nodiscard]] std::size_t imp_items(double ratio) const;

    std::size_t total_capacity_;
    double imp_ratio_;
    ImportanceCache importance_;
    HomophilyCache homophily_;
};

}  // namespace spider::cache
