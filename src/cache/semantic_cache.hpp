#pragma once

// Semantic-aware two-layer cache (paper Section 4.2, Figure 9): an
// Importance Cache section and a Homophily Cache section that are exclusive
// (no data exchange). The lookup order and update rules implement
// Algorithm 1 lines 4-13 and the paper's Cases 1-4:
//
//   Case 1  hit Importance Cache                 -> serve as-is
//   Case 3  miss Importance, neighbor match      -> serve the resident
//                                                   high-degree surrogate
//   Case 2  miss both, score <= resident min     -> remote fetch, no admit
//   Case 4  miss both, score >  resident min     -> remote fetch, evict the
//                                                   min, admit the sample
//
// The split between sections is `imp_ratio` of total capacity, adjusted at
// runtime by the Elastic Cache Manager (Section 4.3).
//
// Concurrency (DESIGN.md §8): the cache is sharded by id hash into S
// independent shards, each owning a mutex, an Importance section slice, a
// Homophily section slice, and the neighbor-index slice for ids hashing to
// it. Every public operation locks exactly one shard at a time (homophily
// updates touch the key's shard, then each neighbor's shard in turn), so
// trainer workers on different shards never serialize and no operation can
// deadlock. `shards == 1` degenerates to the original single structure
// behind one mutex and reproduces the legacy hit/miss/eviction sequence
// bit for bit; the Case 2/4 admission rule then compares against the
// *per-shard* resident minimum when S > 1.
//
// Lock-free reads (DESIGN.md §8.4): when `lockfree_reads` is on (default),
// `lookup`, `probe`, and the no-op pre-check of `update_importance_score`
// never take the shard mutex. Each shard carries a seqlock-versioned
// residency view (`ShardResidencyView`, seqlock.hpp) that writers keep in
// sync under the shard mutex; readers validate the version counter around
// a wait-free table probe, retry on a torn snapshot, and fall back to the
// locked path after a bounded number of torn reads or when a legacy
// direct-section accessor has marked the view stale.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/homophily_cache.hpp"
#include "cache/importance_cache.hpp"
#include "cache/residency_log.hpp"
#include "cache/seqlock.hpp"

namespace spider::cache {

enum class HitKind : std::uint8_t {
    kImportance,  // Case 1
    kHomophily,   // Case 3 (served a surrogate)
    kMiss,        // Cases 2 and 4
};

struct Lookup {
    HitKind kind = HitKind::kMiss;
    /// For kHomophily: the surrogate id actually served instead of the
    /// requested one. Otherwise equals the requested id.
    std::uint32_t served_id = 0;
};

class TwoLayerSemanticCache {
public:
    /// Sentinel for the `shards` parameter: resolve to auto_shards().
    static constexpr std::size_t kAutoShards = 0;
    /// Default shard count for concurrent use: min(16, hw_concurrency).
    [[nodiscard]] static std::size_t auto_shards();

    /// Smallest Importance-section fraction the cache operates at. Both
    /// the constructor and set_imp_ratio() clamp valid input up to this
    /// floor, so elastic output and construction agree at the boundary.
    static constexpr double kMinImpRatio = 0.01;

    /// @param total_capacity  Items across both sections and all shards.
    /// @param imp_ratio       Initial Importance-section fraction (0..1];
    ///                        clamped up to kMinImpRatio.
    /// @param shards          Shard count (1 = legacy single structure;
    ///                        kAutoShards = min(16, hw_concurrency)).
    /// @param lockfree_reads  Serve lookup/probe from the seqlock view
    ///                        (off = every read takes the shard mutex).
    /// @param policies        Per-section eviction policies (DESIGN.md
    ///                        §13). The default — semantic importance +
    ///                        FIFO homophily — takes the exact legacy code
    ///                        path, bit-identical to pre-seam builds.
    TwoLayerSemanticCache(std::size_t total_capacity, double imp_ratio,
                          std::size_t shards = 1, bool lockfree_reads = true,
                          SectionPolicies policies = {});

    [[nodiscard]] std::size_t total_capacity() const { return total_capacity_; }
    [[nodiscard]] SectionPolicies section_policies() const {
        const std::lock_guard lock{policies_mu_};
        return policies_;
    }
    [[nodiscard]] double imp_ratio() const {
        return imp_ratio_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
    [[nodiscard]] bool lockfree_reads() const { return lockfree_reads_; }
    /// Which shard `id` hashes to (stable across the cache's lifetime).
    [[nodiscard]] std::size_t shard_of(std::uint32_t id) const;

    /// Direct section access — single-shard configurations only (the
    /// legacy API used by tests and single-threaded callers). Throws
    /// std::logic_error when num_shards() > 1. The non-const overloads
    /// mark the residency view stale: lock-free reads fall back to the
    /// mutex path until the next locked operation rebuilds the view.
    [[nodiscard]] ImportanceCache& importance();
    [[nodiscard]] const ImportanceCache& importance() const;
    [[nodiscard]] HomophilyCache& homophily();
    [[nodiscard]] const HomophilyCache& homophily() const;

    /// Read path (Algorithm 1 lines 5-11): Importance first, then the
    /// Homophily neighbor lists. Does not mutate either section. With
    /// lock-free reads on, served from the shard's residency view without
    /// taking the shard mutex; otherwise locks the requested id's shard
    /// only. Safe from any thread.
    [[nodiscard]] Lookup lookup(std::uint32_t id) const;

    /// Wait-free residency probe: would `lookup(id)` hit (Case 1 or 3)?
    /// The prefetch pipeline calls this once per lookahead id; with
    /// lock-free reads on it never blocks behind admissions.
    [[nodiscard]] bool probe(std::uint32_t id) const;

    /// Miss path (line 10): called after the sample was fetched remotely.
    /// Applies the Case 2/4 admission rule with the sample's current score
    /// against the id's shard minimum. Ids resident as Homophily *keys*
    /// are not admitted (paper §4.2: the sections are exclusive). Safe
    /// from any thread.
    ImportanceCache::AdmitResult on_miss_fetched(std::uint32_t id, double score);

    /// Batch-end path (line 22): offer the batch's highest-degree node.
    /// Ids resident in the Importance section are not inserted (section
    /// exclusivity). Safe from any thread; locks one shard at a time.
    std::optional<std::uint32_t> update_homophily(
        std::uint32_t key, std::span<const std::uint32_t> neighbors);

    /// Re-keys a resident importance entry after its global score changed
    /// (scores drift every epoch). No-op when absent — with lock-free
    /// reads on, the no-op case is detected from the residency view
    /// without taking the shard mutex. Safe from any thread.
    void update_importance_score(std::uint32_t id, double score);

    /// Elastic repartition: resizes both sections of every shard to match
    /// `imp_ratio` of the unchanged total capacity (Eq. 8 output, clamped
    /// to [kMinImpRatio, 1]). Locks shards one at a time; concurrent
    /// lookups/admissions stay valid.
    void set_imp_ratio(double imp_ratio);

    /// Live policy switch (shadow-tuner apply path, DESIGN.md §13):
    /// rebuilds both sections of every shard under the new eviction
    /// policies, preserving the current residency set, scores, and
    /// homophily insertion order. Locks shards one at a time; concurrent
    /// *reads* stay valid throughout. Callers must quiesce concurrent
    /// writers (the tuner applies at an epoch boundary on the driver
    /// thread). No-op when `policies` equals the active pair. Residency
    /// is unchanged, so nothing is streamed to the WAL listener.
    void set_section_policies(const SectionPolicies& policies);

    /// Degraded-mode surrogate scan (fault-tolerance ladder, DESIGN.md
    /// §9): any resident id accepted by `accept`, preferring the requested
    /// id's own shard and its Importance section (highest score first).
    /// Read-only; locks one shard at a time. Nullopt when nothing resident
    /// qualifies.
    [[nodiscard]] std::optional<std::uint32_t> find_resident_if(
        std::uint32_t near,
        const std::function<bool(std::uint32_t)>& accept) const;

    // ---- Aggregate inspection (sums over shards, locking each in turn).
    [[nodiscard]] std::size_t importance_size() const;
    [[nodiscard]] std::size_t homophily_size() const;
    [[nodiscard]] std::size_t importance_capacity() const;
    [[nodiscard]] std::size_t homophily_capacity() const;

    // ---- Per-shard inspection (invariant tests and the concurrency bench).
    [[nodiscard]] std::size_t shard_capacity(std::size_t s) const;
    [[nodiscard]] std::size_t shard_importance_capacity(std::size_t s) const;
    [[nodiscard]] std::size_t shard_importance_size(std::size_t s) const;
    [[nodiscard]] std::size_t shard_homophily_capacity(std::size_t s) const;
    [[nodiscard]] std::size_t shard_homophily_size(std::size_t s) const;
    /// Lowest resident importance score of shard `s` (the per-shard
    /// admission threshold).
    [[nodiscard]] std::optional<double> shard_min_score(std::size_t s) const;

    // ---- Whole-cache freeze (cross-shard invariant oracle).

    /// Consistent snapshot of one shard taken with its mutex held.
    struct FrozenShard {
        std::vector<std::pair<std::uint32_t, double>> importance;
        std::vector<std::uint32_t> homophily_keys;
        /// Neighbor-index slice: (neighbor id, resident keys newest-last).
        std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>>
            neighbor_index;
        /// Residency-view dump (flags != 0 entries), for view<->section
        /// parity checks.
        std::vector<std::pair<std::uint32_t, ShardResidencyView::Probe>> view;
        std::size_t importance_capacity = 0;
        std::size_t homophily_capacity = 0;
    };
    struct FrozenState {
        std::vector<FrozenShard> shards;
    };

    /// Takes every shard lock (ascending index — safe because no other
    /// operation ever holds two), syncs stale views, and dumps the full
    /// state. Invariant-test oracle; O(total residency), not a hot path.
    [[nodiscard]] FrozenState freeze() const;

    /// Test seam: invoked in sharded `update_homophily` after the key was
    /// inserted (key shard unlocked) and before the neighbor-index publish
    /// loop — the window where a concurrent eviction of the key used to
    /// leave dangling index entries. Set before any concurrent use.
    void set_homophily_publish_hook(std::function<void()> hook) {
        publish_hook_ = std::move(hook);
    }

    // ---- Crash-safe warm restart (DESIGN.md §12).

    /// Streams admissions / evictions / score re-keys to `listener`
    /// (typically storage::CacheWal::append). Invoked with the affected
    /// shard's mutex held, so the listener must not call back into the
    /// cache. Set before concurrent use — and *after* restore_from_wal,
    /// or the restore itself gets re-logged. Elastic repartition
    /// evictions are NOT streamed; owners reconcile them by compacting a
    /// dump_residency() snapshot at the next stable point.
    void set_residency_listener(ResidencyListener listener) {
        residency_listener_ = std::move(listener);
    }

    /// Folds the full residency into a RestoreImage (importance pairs,
    /// homophily FIFO oldest-first) for WAL compaction. Takes every shard
    /// lock like freeze(); not a hot path.
    [[nodiscard]] RestoreImage dump_residency() const;

    /// Rebuilds residency from a recovered image through the normal
    /// admission paths (importance re-admitted highest-score-first, then
    /// homophily keys in FIFO order), so section exclusivity, per-shard
    /// capacity slices, and the neighbor index hold by construction even
    /// when the shard count changed across the restart. Returns how many
    /// items are resident afterwards. Call on a fresh cache before
    /// concurrent use.
    std::size_t restore_from_wal(const RestoreImage& image);

private:
    struct Shard {
        Shard(std::size_t imp_capacity, std::size_t hom_capacity,
              const SectionPolicies& policies)
            : importance{imp_capacity, policies.importance},
              homophily{hom_capacity, policies.homophily},
              view{imp_capacity + hom_capacity} {}

        mutable std::mutex mu;
        ImportanceCache importance;
        HomophilyCache homophily;
        /// Sharded slice of the neighbor index, keyed by *neighbor* id (so
        /// a surrogate probe for id only touches id's shard). Values are
        /// resident homophily keys — possibly in other shards — newest
        /// last. Unused when num_shards() == 1 (the shard's HomophilyCache
        /// keeps its own index and the legacy path consults it directly).
        std::unordered_map<std::uint32_t, std::vector<std::uint32_t>>
            neighbor_index;
        /// Seqlock-versioned id -> {section, score, surrogate} table
        /// mirroring the three structures above; written under `mu`, read
        /// without it (DESIGN.md §8.4).
        mutable ShardResidencyView view;
        /// Set by the legacy direct-section accessors (which mutate behind
        /// the view's back); cleared by the next locked operation after it
        /// rebuilds the view.
        mutable std::atomic<bool> view_stale{false};
    };

    /// Capacity slice owned by shard `s` of `shards` (total split evenly,
    /// remainder to the low shards).
    [[nodiscard]] static std::size_t slice_capacity(std::size_t total,
                                                    std::size_t shards,
                                                    std::size_t s);
    [[nodiscard]] std::size_t shard_total(std::size_t s) const;
    [[nodiscard]] static std::size_t imp_items_for(std::size_t capacity,
                                                   double ratio);
    void unindex_evicted(std::uint32_t victim,
                         std::span<const std::uint32_t> neighbors);
    /// Locked read path (exact legacy semantics). Caller holds no lock.
    [[nodiscard]] Lookup lookup_locked(const Shard& shard,
                                       std::uint32_t id) const;
    /// Rebuild `shard.view` from its sections if a direct accessor marked
    /// it stale. Must hold `shard.mu`. Every locked mutating operation
    /// calls this first so incremental view updates start from truth.
    void sync_view_locked(const Shard& shard) const;
    /// Full in-place view rebuild (repartitions, staleness recovery).
    /// Must hold `shard.mu`.
    void rebuild_view_locked(const Shard& shard) const;

    /// Forwards a residency change to the listener, if any. Called with
    /// the affected shard's mutex held.
    void emit(const ResidencyRecord& record) const {
        if (residency_listener_) residency_listener_(record);
    }

    std::size_t total_capacity_;
    std::atomic<double> imp_ratio_;
    bool lockfree_reads_;
    mutable std::mutex policies_mu_;  // guards policies_ (rarely written)
    SectionPolicies policies_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::function<void()> publish_hook_;
    ResidencyListener residency_listener_;
};

}  // namespace spider::cache
