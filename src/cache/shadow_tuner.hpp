#pragma once

// Online shadow-cache tuner (DESIGN.md §13): a panel of metadata-only
// "ghost" caches replays the live access stream under candidate
// configurations — alternative Importance-section policies and alternative
// imp_ratio splits — and reports, at every epoch boundary, whether some
// candidate sustainably out-hits the incumbent. Ghosts are single-shard
// TwoLayerSemanticCache instances: the repo's cache structures track ids
// and scores only (payloads live in the storage layer), so a ghost costs
// O(capacity) id/score entries plus its capped neighbor lists — the
// ghost-cache memory bound is
//     num_ghosts * capacity * (id + score) + hom_capacity * max_neighbors.
//
// Hysteresis rule: a switch fires only when the SAME candidate beats the
// incumbent's measured hit ratio by at least `margin` for `sustain_epochs`
// consecutive epochs. The streak resets whenever the best candidate
// changes or drops below the margin, so a noisy epoch cannot flip the
// policy back and forth. After a switch the incumbent is the winner, its
// own ghost keeps replaying, and the streak restarts from zero.
//
// Threading: the tuner is single-threaded by design. The simulator feeds
// it the merged per-batch served stream on the driver thread (the live
// cache is sharded and its reads are seqlock wait-free; replaying the
// merged stream serially is what makes the tuner deterministic — same
// seed + same trace => same switch epochs).

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cache/policy.hpp"
#include "cache/semantic_cache.hpp"

namespace spider::cache {

/// [tuner] knobs (sim INI + programmatic construction).
struct TunerConfig {
    bool enabled = false;
    /// Candidate Importance-section fractions. Each in (0, 1].
    std::vector<double> ratio_grid{0.5, 0.7, 0.9};
    /// Candidate Importance-section policies (homophily stays FIFO — the
    /// split and the importance policy dominate hit ratio; one grid axis
    /// per section would square the ghost count).
    std::vector<PolicyKind> policy_grid{PolicyKind::kSemantic};
    /// Required hit-ratio advantage over the incumbent (absolute).
    double margin = 0.02;
    /// Consecutive epochs the same candidate must hold the margin.
    std::size_t sustain_epochs = 2;
    /// Apply the winning candidate to the live cache (off = report only).
    bool auto_apply = true;
    /// Ghost neighbor-list cap (memory bound; live lists are uncapped).
    std::size_t max_neighbors = 32;
};

/// Throws std::invalid_argument on out-of-range knobs.
void validate(const TunerConfig& config);

class ShadowTuner {
public:
    struct Candidate {
        double imp_ratio = 0.0;
        PolicyKind importance = PolicyKind::kSemantic;
        friend bool operator==(const Candidate&, const Candidate&) = default;
    };

    /// Epoch-boundary outcome (end_epoch).
    struct Verdict {
        /// Hits of the best shadow this epoch (metrics column).
        std::uint64_t shadow_hits = 0;
        /// Best shadow's epoch hit ratio, and what it was measured against.
        double best_hit_ratio = 0.0;
        double incumbent_hit_ratio = 0.0;
        /// Did the hysteresis rule fire this epoch?
        bool switched = false;
        /// The candidate to apply when `switched` (also the new incumbent).
        std::optional<Candidate> winner;
    };

    /// Ghosts are built for every (ratio_grid x policy_grid) combination
    /// except the incumbent's own, at the live cache's total capacity.
    ShadowTuner(const TunerConfig& config, std::size_t total_capacity,
                double incumbent_ratio, PolicyKind incumbent_policy);

    /// Replay one served request (the id the trainer asked for, with its
    /// score at lookup time). Ghost hit => counted; ghost miss => admitted
    /// through the normal Case 2/4 path.
    void on_access(std::uint32_t id, double score);

    /// Replay a post-batch score refresh (the write-path served stream).
    void on_score_update(std::uint32_t id, double score);

    /// Replay a batch's high-degree offer. The neighbor list is truncated
    /// to max_neighbors before it reaches the ghosts (memory bound).
    void on_homophily_offer(std::uint32_t key,
                            std::span<const std::uint32_t> neighbors);

    /// Close the epoch: rank ghosts, apply the hysteresis rule against the
    /// live cache's measured `incumbent_hit_ratio`, reset per-epoch
    /// counters. Deterministic given the replayed stream.
    Verdict end_epoch(double incumbent_hit_ratio);

    [[nodiscard]] std::size_t num_ghosts() const { return ghosts_.size(); }
    [[nodiscard]] std::uint64_t total_switches() const { return switches_; }
    [[nodiscard]] Candidate incumbent() const { return incumbent_; }
    [[nodiscard]] const TunerConfig& config() const { return config_; }

private:
    struct Ghost {
        Candidate candidate;
        TwoLayerSemanticCache cache;
        std::uint64_t epoch_hits = 0;

        Ghost(const Candidate& c, std::size_t capacity)
            : candidate{c},
              cache{capacity, c.imp_ratio, /*shards=*/1,
                    /*lockfree_reads=*/false,
                    SectionPolicies{c.importance, PolicyKind::kFifo}} {}
    };

    TunerConfig config_;
    Candidate incumbent_;
    std::vector<std::unique_ptr<Ghost>> ghosts_;
    std::uint64_t epoch_accesses_ = 0;
    /// Hysteresis state: the candidate currently holding the margin and
    /// for how many consecutive epochs.
    std::optional<Candidate> streak_candidate_;
    std::size_t streak_ = 0;
    std::uint64_t switches_ = 0;
    std::vector<std::uint32_t> neighbor_scratch_;
};

}  // namespace spider::cache
