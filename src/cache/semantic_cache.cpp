#include "cache/semantic_cache.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <thread>

namespace spider::cache {

namespace {

/// Fibonacci-hash mix: ids arrive as dense small integers, so a plain
/// modulus would put every run of batch_size consecutive ids on rotating
/// shards; the multiplicative mix decorrelates shard choice from id order.
[[nodiscard]] std::uint32_t mix(std::uint32_t id) {
    return id * 0x9E3779B9U;
}

}  // namespace

std::size_t TwoLayerSemanticCache::auto_shards() {
    const std::size_t hw = std::thread::hardware_concurrency();
    return std::min<std::size_t>(16, std::max<std::size_t>(hw, 1));
}

TwoLayerSemanticCache::TwoLayerSemanticCache(std::size_t total_capacity,
                                             double imp_ratio,
                                             std::size_t shards,
                                             bool lockfree_reads,
                                             SectionPolicies policies)
    : total_capacity_{total_capacity},
      imp_ratio_{imp_ratio},
      lockfree_reads_{lockfree_reads},
      policies_{policies} {
    if (imp_ratio <= 0.0 || imp_ratio > 1.0) {
        throw std::invalid_argument{
            "TwoLayerSemanticCache: imp_ratio must be in (0, 1]"};
    }
    validate(policies_);
    // Same floor as set_imp_ratio(), so a ratio the elastic manager would
    // clamp builds the same partition when passed at construction.
    imp_ratio = std::max(imp_ratio, kMinImpRatio);
    imp_ratio_.store(imp_ratio, std::memory_order_relaxed);
    if (shards == kAutoShards) shards = auto_shards();
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t capacity = slice_capacity(total_capacity_, shards, s);
        const std::size_t imp = imp_items_for(capacity, imp_ratio);
        shards_.push_back(
            std::make_unique<Shard>(imp, capacity - imp, policies_));
    }
}

std::size_t TwoLayerSemanticCache::slice_capacity(std::size_t total,
                                                  std::size_t shards,
                                                  std::size_t s) {
    return total / shards + (s < total % shards ? 1 : 0);
}

std::size_t TwoLayerSemanticCache::shard_total(std::size_t s) const {
    return slice_capacity(total_capacity_, shards_.size(), s);
}

std::size_t TwoLayerSemanticCache::imp_items_for(std::size_t capacity,
                                                 double ratio) {
    const auto items = static_cast<std::size_t>(
        std::llround(static_cast<double>(capacity) * ratio));
    return std::min(items, capacity);
}

std::size_t TwoLayerSemanticCache::shard_of(std::uint32_t id) const {
    return shards_.size() == 1 ? 0 : mix(id) % shards_.size();
}

ImportanceCache& TwoLayerSemanticCache::importance() {
    if (shards_.size() != 1) {
        throw std::logic_error{
            "TwoLayerSemanticCache::importance: sharded cache has no single "
            "section; use the aggregate/per-shard accessors"};
    }
    shards_[0]->view_stale.store(true, std::memory_order_release);
    return shards_[0]->importance;
}

const ImportanceCache& TwoLayerSemanticCache::importance() const {
    if (shards_.size() != 1) {
        throw std::logic_error{
            "TwoLayerSemanticCache::importance: sharded cache has no single "
            "section; use the aggregate/per-shard accessors"};
    }
    return shards_[0]->importance;
}

HomophilyCache& TwoLayerSemanticCache::homophily() {
    if (shards_.size() != 1) {
        throw std::logic_error{
            "TwoLayerSemanticCache::homophily: sharded cache has no single "
            "section; use the aggregate/per-shard accessors"};
    }
    shards_[0]->view_stale.store(true, std::memory_order_release);
    return shards_[0]->homophily;
}

const HomophilyCache& TwoLayerSemanticCache::homophily() const {
    if (shards_.size() != 1) {
        throw std::logic_error{
            "TwoLayerSemanticCache::homophily: sharded cache has no single "
            "section; use the aggregate/per-shard accessors"};
    }
    return shards_[0]->homophily;
}

void TwoLayerSemanticCache::rebuild_view_locked(const Shard& shard) const {
    const ShardResidencyView::WriteSection ws{shard.view};
    shard.view.clear();
    shard.importance.for_each([&shard](std::uint32_t id, double score) {
        shard.view.set_importance(id, score);
    });
    shard.homophily.for_each_key(
        [&shard](std::uint32_t key) { shard.view.set_hom_key(key); });
    if (shards_.size() == 1) {
        shard.homophily.for_each_index_entry(
            [&shard](std::uint32_t neighbor,
                     const std::vector<std::uint32_t>& keys) {
                if (!keys.empty()) {
                    shard.view.set_surrogate(neighbor, keys.back());
                }
            });
    } else {
        for (const auto& [neighbor, keys] : shard.neighbor_index) {
            if (!keys.empty()) shard.view.set_surrogate(neighbor, keys.back());
        }
    }
    shard.view_stale.store(false, std::memory_order_release);
}

void TwoLayerSemanticCache::sync_view_locked(const Shard& shard) const {
    if (shard.view_stale.load(std::memory_order_acquire)) {
        rebuild_view_locked(shard);
    }
}

Lookup TwoLayerSemanticCache::lookup_locked(const Shard& shard,
                                            std::uint32_t id) const {
    const std::lock_guard lock{shard.mu};
    sync_view_locked(shard);
    if (shard.importance.contains(id)) {
        return {HitKind::kImportance, id};
    }
    // A resident high-degree node can also be served directly: it is its
    // own best surrogate.
    if (shard.homophily.contains_key(id)) {
        return {HitKind::kHomophily, id};
    }
    if (shards_.size() == 1) {
        if (const auto surrogate = shard.homophily.surrogate_for(id)) {
            return {HitKind::kHomophily, *surrogate};
        }
        return {HitKind::kMiss, id};
    }
    // Sharded: the neighbor index slice for `id` lives in id's shard, even
    // though the surrogate key it names may reside elsewhere. Newest
    // resident node listing this neighbor wins (freshest embedding).
    const auto it = shard.neighbor_index.find(id);
    if (it != shard.neighbor_index.end() && !it->second.empty()) {
        return {HitKind::kHomophily, it->second.back()};
    }
    return {HitKind::kMiss, id};
}

Lookup TwoLayerSemanticCache::lookup(std::uint32_t id) const {
    const Shard& shard = *shards_[shard_of(id)];
    if (lockfree_reads_ &&
        !shard.view_stale.load(std::memory_order_acquire)) {
        if (const auto probe = shard.view.try_probe(id);
            probe.has_value() &&
            !shard.view_stale.load(std::memory_order_acquire)) {
            // View order mirrors the locked path: Importance, then self-
            // serve homophily key, then surrogate (Algorithm 1 lines 5-9).
            if (probe->flags & ShardResidencyView::kImportance) {
                return {HitKind::kImportance, id};
            }
            if (probe->flags & ShardResidencyView::kHomKey) {
                return {HitKind::kHomophily, id};
            }
            if (probe->flags & ShardResidencyView::kSurrogate) {
                return {HitKind::kHomophily, probe->surrogate};
            }
            return {HitKind::kMiss, id};
        }
    }
    return lookup_locked(shard, id);
}

bool TwoLayerSemanticCache::probe(std::uint32_t id) const {
    const Shard& shard = *shards_[shard_of(id)];
    if (lockfree_reads_ &&
        !shard.view_stale.load(std::memory_order_acquire)) {
        if (const auto probe = shard.view.try_probe(id);
            probe.has_value() &&
            !shard.view_stale.load(std::memory_order_acquire)) {
            return probe->flags != 0;
        }
    }
    return lookup_locked(shard, id).kind != HitKind::kMiss;
}

ImportanceCache::AdmitResult TwoLayerSemanticCache::on_miss_fetched(
    std::uint32_t id, double score) {
    Shard& shard = *shards_[shard_of(id)];
    const std::lock_guard lock{shard.mu};
    sync_view_locked(shard);
    // Section exclusivity (paper §4.2): an id resident as a Homophily key
    // must not also enter the Importance section — it is already cached
    // and a duplicate would double-count capacity.
    if (shard.homophily.contains_key(id)) return {};
    const auto result = shard.importance.admit_scored(id, score);
    if (result.admitted) {
        const ShardResidencyView::WriteSection ws{shard.view};
        if (result.evicted.has_value()) {
            shard.view.clear_importance(*result.evicted);
        }
        shard.view.set_importance(id, score);
    }
    if (residency_listener_ && result.admitted) {
        if (result.evicted.has_value()) {
            ResidencyRecord evict;
            evict.op = ResidencyOp::kEvictImportance;
            evict.id = *result.evicted;
            emit(evict);
        }
        ResidencyRecord admit;
        admit.op = ResidencyOp::kAdmitImportance;
        admit.id = id;
        admit.score = score;
        emit(admit);
    }
    return result;
}

void TwoLayerSemanticCache::update_importance_score(std::uint32_t id,
                                                    double score) {
    Shard& shard = *shards_[shard_of(id)];
    if (lockfree_reads_ &&
        !shard.view_stale.load(std::memory_order_acquire)) {
        // Wait-free no-op check: most batch ids are not resident, so the
        // common case never touches the mutex. A racing admit right after
        // the probe is the same outcome as running this call just before
        // that admit under the lock.
        if (const auto probe = shard.view.try_probe(id);
            probe.has_value() &&
            !shard.view_stale.load(std::memory_order_acquire) &&
            (probe->flags & ShardResidencyView::kImportance) == 0) {
            return;
        }
    }
    const std::lock_guard lock{shard.mu};
    sync_view_locked(shard);
    if (shard.importance.update_score(id, score)) {
        const ShardResidencyView::WriteSection ws{shard.view};
        shard.view.set_importance(id, score);
        ResidencyRecord record;
        record.op = ResidencyOp::kScoreUpdate;
        record.id = id;
        record.score = score;
        emit(record);
    }
}

void TwoLayerSemanticCache::unindex_evicted(
    std::uint32_t victim, std::span<const std::uint32_t> neighbors) {
    for (std::uint32_t neighbor : neighbors) {
        Shard& shard = *shards_[shard_of(neighbor)];
        const std::lock_guard lock{shard.mu};
        sync_view_locked(shard);
        const auto it = shard.neighbor_index.find(neighbor);
        if (it == shard.neighbor_index.end()) continue;
        auto& keys = it->second;
        keys.erase(std::remove(keys.begin(), keys.end(), victim), keys.end());
        const ShardResidencyView::WriteSection ws{shard.view};
        if (keys.empty()) {
            shard.neighbor_index.erase(it);
            shard.view.clear_surrogate(neighbor);
        } else {
            shard.view.set_surrogate(neighbor, keys.back());
        }
    }
}

std::optional<std::uint32_t> TwoLayerSemanticCache::update_homophily(
    std::uint32_t key, std::span<const std::uint32_t> neighbors) {
    Shard& key_shard = *shards_[shard_of(key)];
    if (shards_.size() == 1) {
        const std::lock_guard lock{key_shard.mu};
        sync_view_locked(key_shard);
        // Section exclusivity (paper §4.2): a key resident in Importance
        // is already cached — do not duplicate it as a homophily node.
        if (key_shard.importance.contains(key)) return std::nullopt;
        if (key_shard.homophily.contains_key(key)) {
            // Re-offer of a resident key is the section's access signal
            // for a delegated policy (no-op under the default FIFO).
            key_shard.homophily.touch_key(key);
            return std::nullopt;
        }
        if (key_shard.homophily.capacity() == 0) return std::nullopt;
        std::vector<std::uint32_t> victim_neighbors;
        if (key_shard.homophily.size() >= key_shard.homophily.capacity()) {
            const auto nb = key_shard.homophily.neighbors_of(
                *key_shard.homophily.oldest());
            victim_neighbors.assign(nb.begin(), nb.end());
        }
        const auto evicted = key_shard.homophily.update(key, neighbors);
        if (residency_listener_) {
            if (evicted.has_value()) {
                ResidencyRecord ev;
                ev.op = ResidencyOp::kEvictHomophily;
                ev.id = *evicted;
                emit(ev);
            }
            ResidencyRecord admit;
            admit.op = ResidencyOp::kAdmitHomophily;
            admit.id = key;
            admit.generation = key_shard.homophily.seq_of(key).value_or(0);
            admit.neighbors.assign(neighbors.begin(), neighbors.end());
            emit(admit);
        }
        const ShardResidencyView::WriteSection ws{key_shard.view};
        if (evicted.has_value()) {
            key_shard.view.clear_hom_key(*evicted);
            // The internal neighbor index already dropped the victim;
            // re-derive each affected neighbor's surviving surrogate.
            for (std::uint32_t neighbor : victim_neighbors) {
                if (const auto surrogate =
                        key_shard.homophily.surrogate_for(neighbor)) {
                    key_shard.view.set_surrogate(neighbor, *surrogate);
                } else {
                    key_shard.view.clear_surrogate(neighbor);
                }
            }
        }
        key_shard.view.set_hom_key(key);
        for (std::uint32_t neighbor : neighbors) {
            key_shard.view.set_surrogate(neighbor, key);
        }
        return evicted;
    }
    // Sharded: insert the entry under the key's shard, then maintain the
    // neighbor-index slices one shard at a time (never holding two locks,
    // so update/lookup traffic on other shards cannot deadlock with us).
    std::optional<std::uint32_t> evicted;
    std::vector<std::uint32_t> victim_neighbors;
    std::uint64_t insert_seq = 0;
    {
        const std::lock_guard lock{key_shard.mu};
        sync_view_locked(key_shard);
        if (key_shard.importance.contains(key) ||  // section exclusivity
            key_shard.homophily.capacity() == 0) {
            return std::nullopt;
        }
        if (key_shard.homophily.contains_key(key)) {
            // Re-offer of a resident key is the section's access signal
            // for a delegated policy (no-op under the default FIFO).
            key_shard.homophily.touch_key(key);
            return std::nullopt;
        }
        if (key_shard.homophily.size() >= key_shard.homophily.capacity()) {
            const auto victim = *key_shard.homophily.oldest();
            const auto nb = key_shard.homophily.neighbors_of(victim);
            victim_neighbors.assign(nb.begin(), nb.end());
        }
        evicted = key_shard.homophily.update(key, neighbors);
        insert_seq = *key_shard.homophily.seq_of(key);
        if (residency_listener_) {
            if (evicted.has_value()) {
                ResidencyRecord ev;
                ev.op = ResidencyOp::kEvictHomophily;
                ev.id = *evicted;
                emit(ev);
            }
            ResidencyRecord admit;
            admit.op = ResidencyOp::kAdmitHomophily;
            admit.id = key;
            admit.generation = insert_seq;
            admit.neighbors.assign(neighbors.begin(), neighbors.end());
            emit(admit);
        }
        const ShardResidencyView::WriteSection ws{key_shard.view};
        if (evicted.has_value()) key_shard.view.clear_hom_key(*evicted);
        key_shard.view.set_hom_key(key);
    }
    if (evicted.has_value()) {
        unindex_evicted(*evicted, victim_neighbors);
    }
    if (publish_hook_) publish_hook_();
    for (std::uint32_t neighbor : neighbors) {
        Shard& shard = *shards_[shard_of(neighbor)];
        const std::lock_guard lock{shard.mu};
        sync_view_locked(shard);
        shard.neighbor_index[neighbor].push_back(key);
        const ShardResidencyView::WriteSection ws{shard.view};
        shard.view.set_surrogate(neighbor, key);
    }
    // Dangling-surrogate guard: the publish loop above ran without the key
    // shard's lock, so a concurrent eviction (elastic shrink, FIFO churn)
    // may already have removed `key` — unindex_evicted for that eviction
    // ran before our entries existed and missed them. Re-check the insert
    // generation and retract our own publications if it is gone. (If the
    // key was re-inserted meanwhile, retraction may also drop the newer
    // generation's entries — a lost surrogate opportunity, never a
    // dangling one; the newer insert's own publish loop restores most.)
    bool stale_publish = false;
    {
        const std::lock_guard lock{key_shard.mu};
        const auto seq_now = key_shard.homophily.seq_of(key);
        stale_publish = !seq_now.has_value() || *seq_now != insert_seq;
    }
    if (stale_publish) {
        unindex_evicted(key, neighbors);
    }
    return evicted;
}

void TwoLayerSemanticCache::set_imp_ratio(double imp_ratio) {
    imp_ratio = std::clamp(imp_ratio, kMinImpRatio, 1.0);
    imp_ratio_.store(imp_ratio, std::memory_order_relaxed);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        Shard& shard = *shards_[s];
        const std::size_t capacity = shard_total(s);
        const std::size_t imp = imp_items_for(capacity, imp_ratio);
        const std::size_t hom = capacity - imp;
        if (shards_.size() == 1) {
            const std::lock_guard lock{shard.mu};
            shard.importance.set_capacity(imp);
            shard.homophily.set_capacity(hom);
            rebuild_view_locked(shard);
            continue;
        }
        // Sharded: evictions forced by a shrinking homophily slice must
        // also leave the neighbor-index slices, which live under other
        // shards' locks — collect victims first, unindex after releasing.
        std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>>
            victims;
        {
            const std::lock_guard lock{shard.mu};
            shard.importance.set_capacity(imp);
            while (shard.homophily.size() > hom) {
                victims.push_back(*shard.homophily.evict_oldest());
            }
            shard.homophily.set_capacity(hom);
            rebuild_view_locked(shard);
        }
        for (const auto& [victim, victim_neighbors] : victims) {
            unindex_evicted(victim, victim_neighbors);
        }
    }
}

void TwoLayerSemanticCache::set_section_policies(
    const SectionPolicies& policies) {
    validate(policies);
    {
        const std::lock_guard plock{policies_mu_};
        if (policies == policies_) return;
        policies_ = policies;
    }
    for (auto& shard_ptr : shards_) {
        Shard& shard = *shard_ptr;
        const std::lock_guard lock{shard.mu};
        sync_view_locked(shard);
        // Snapshot the shard's residency, rebuild both sections under the
        // new policies, and re-admit. Importance goes highest score first
        // (everything fits — same capacity — but the order also seeds a
        // semantic target's min-heap exactly as steady state would);
        // homophily keys go in their live insertion order so the FIFO
        // record carries over.
        std::vector<std::pair<std::uint32_t, double>> imp;
        shard.importance.for_each([&imp](std::uint32_t id, double score) {
            imp.emplace_back(id, score);
        });
        std::sort(imp.begin(), imp.end(), [](const auto& a, const auto& b) {
            return a.second > b.second;
        });
        std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> hom;
        shard.homophily.for_each_key([&hom, &shard](std::uint32_t key) {
            const auto nb = shard.homophily.neighbors_of(key);
            hom.emplace_back(key,
                             std::vector<std::uint32_t>{nb.begin(), nb.end()});
        });
        ImportanceCache fresh_imp{shard.importance.capacity(),
                                  policies.importance};
        for (const auto& [id, score] : imp) {
            (void)fresh_imp.admit_scored(id, score);
        }
        shard.importance = std::move(fresh_imp);
        HomophilyCache fresh_hom{shard.homophily.capacity(),
                                 policies.homophily};
        for (const auto& [key, neighbors] : hom) {
            (void)fresh_hom.update(key, neighbors);
        }
        shard.homophily = std::move(fresh_hom);
        // The sharded neighbor-index slices key off residency, which is
        // unchanged — only the view needs a rebuild (section scores and
        // surrogate choices are re-derived from the fresh sections).
        rebuild_view_locked(shard);
    }
}

std::optional<std::uint32_t> TwoLayerSemanticCache::find_resident_if(
    std::uint32_t near,
    const std::function<bool(std::uint32_t)>& accept) const {
    // Degraded-mode ladder: start at the requested id's own shard (its
    // semantic neighborhood hashes there) and walk the ring. Importance
    // first — the most important compatible resident is the best stand-in.
    const std::size_t start = shard_of(near);
    const std::size_t n = shards_.size();
    for (std::size_t offset = 0; offset < n; ++offset) {
        const Shard& shard = *shards_[(start + offset) % n];
        const std::lock_guard lock{shard.mu};
        if (auto hit = shard.importance.find_best_if(accept)) return hit;
        if (auto hit = shard.homophily.find_key_if(accept)) return hit;
    }
    return std::nullopt;
}

TwoLayerSemanticCache::FrozenState TwoLayerSemanticCache::freeze() const {
    // All shard locks, ascending index. Deadlock-free: every other
    // operation holds at most one shard lock at a time and never blocks
    // on a second while holding it.
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(shards_.size());
    for (const auto& shard : shards_) {
        locks.emplace_back(shard->mu);
    }
    FrozenState state;
    state.shards.reserve(shards_.size());
    for (const auto& shard_ptr : shards_) {
        const Shard& shard = *shard_ptr;
        sync_view_locked(shard);
        FrozenShard frozen;
        shard.importance.for_each([&frozen](std::uint32_t id, double score) {
            frozen.importance.emplace_back(id, score);
        });
        shard.homophily.for_each_key([&frozen](std::uint32_t key) {
            frozen.homophily_keys.push_back(key);
        });
        if (shards_.size() == 1) {
            shard.homophily.for_each_index_entry(
                [&frozen](std::uint32_t neighbor,
                          const std::vector<std::uint32_t>& keys) {
                    frozen.neighbor_index.emplace_back(neighbor, keys);
                });
        } else {
            for (const auto& [neighbor, keys] : shard.neighbor_index) {
                frozen.neighbor_index.emplace_back(neighbor, keys);
            }
        }
        frozen.view = shard.view.entries();
        frozen.importance_capacity = shard.importance.capacity();
        frozen.homophily_capacity = shard.homophily.capacity();
        state.shards.push_back(std::move(frozen));
    }
    return state;
}

std::size_t TwoLayerSemanticCache::importance_size() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
        const std::lock_guard lock{shard->mu};
        total += shard->importance.size();
    }
    return total;
}

std::size_t TwoLayerSemanticCache::homophily_size() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
        const std::lock_guard lock{shard->mu};
        total += shard->homophily.size();
    }
    return total;
}

std::size_t TwoLayerSemanticCache::importance_capacity() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
        const std::lock_guard lock{shard->mu};
        total += shard->importance.capacity();
    }
    return total;
}

std::size_t TwoLayerSemanticCache::homophily_capacity() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
        const std::lock_guard lock{shard->mu};
        total += shard->homophily.capacity();
    }
    return total;
}

std::size_t TwoLayerSemanticCache::shard_capacity(std::size_t s) const {
    return shard_total(s);
}

std::size_t TwoLayerSemanticCache::shard_importance_capacity(
    std::size_t s) const {
    const std::lock_guard lock{shards_[s]->mu};
    return shards_[s]->importance.capacity();
}

std::size_t TwoLayerSemanticCache::shard_importance_size(std::size_t s) const {
    const std::lock_guard lock{shards_[s]->mu};
    return shards_[s]->importance.size();
}

std::size_t TwoLayerSemanticCache::shard_homophily_capacity(
    std::size_t s) const {
    const std::lock_guard lock{shards_[s]->mu};
    return shards_[s]->homophily.capacity();
}

std::size_t TwoLayerSemanticCache::shard_homophily_size(std::size_t s) const {
    const std::lock_guard lock{shards_[s]->mu};
    return shards_[s]->homophily.size();
}

std::optional<double> TwoLayerSemanticCache::shard_min_score(
    std::size_t s) const {
    const std::lock_guard lock{shards_[s]->mu};
    return shards_[s]->importance.min_score();
}

RestoreImage TwoLayerSemanticCache::dump_residency() const {
    // All shard locks ascending, like freeze(): the dump must be one
    // consistent cut or the compacted snapshot could capture a key in
    // neither (or both) sections mid-move.
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(shards_.size());
    for (const auto& shard : shards_) {
        locks.emplace_back(shard->mu);
    }
    RestoreImage image;
    for (const auto& shard_ptr : shards_) {
        const Shard& shard = *shard_ptr;
        shard.importance.for_each([&image](std::uint32_t id, double score) {
            image.importance.emplace_back(id, score);
        });
        shard.homophily.for_each_key([&image, &shard](std::uint32_t key) {
            const auto nb = shard.homophily.neighbors_of(key);
            image.homophily.emplace_back(
                key, std::vector<std::uint32_t>{nb.begin(), nb.end()});
        });
    }
    return image;
}

std::size_t TwoLayerSemanticCache::restore_from_wal(const RestoreImage& image) {
    // Re-admit through the public paths so every invariant the normal
    // write traffic maintains (section exclusivity, per-shard capacity
    // slices, neighbor index, residency views) holds by construction —
    // even when this cache has a different shard count than the one that
    // wrote the log. Importance first, highest score first: if the image
    // outsizes a shard slice, the admission rule keeps the most important
    // survivors, matching what steady-state churn would have converged to.
    auto importance = image.importance;
    std::sort(importance.begin(), importance.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (const auto& [id, score] : importance) {
        (void)on_miss_fetched(id, score);
    }
    // Homophily in FIFO order (oldest first) reproduces the pre-crash
    // eviction horizon; keys that landed in Importance above are skipped
    // by the exclusivity guard.
    for (const auto& [key, neighbors] : image.homophily) {
        (void)update_homophily(key, neighbors);
    }
    return importance_size() + homophily_size();
}

}  // namespace spider::cache
