#include "cache/semantic_cache.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <thread>

namespace spider::cache {

namespace {

/// Fibonacci-hash mix: ids arrive as dense small integers, so a plain
/// modulus would put every run of batch_size consecutive ids on rotating
/// shards; the multiplicative mix decorrelates shard choice from id order.
[[nodiscard]] std::uint32_t mix(std::uint32_t id) {
    return id * 0x9E3779B9U;
}

}  // namespace

std::size_t TwoLayerSemanticCache::auto_shards() {
    const std::size_t hw = std::thread::hardware_concurrency();
    return std::min<std::size_t>(16, std::max<std::size_t>(hw, 1));
}

TwoLayerSemanticCache::TwoLayerSemanticCache(std::size_t total_capacity,
                                             double imp_ratio,
                                             std::size_t shards)
    : total_capacity_{total_capacity}, imp_ratio_{imp_ratio} {
    if (imp_ratio <= 0.0 || imp_ratio > 1.0) {
        throw std::invalid_argument{
            "TwoLayerSemanticCache: imp_ratio must be in (0, 1]"};
    }
    if (shards == kAutoShards) shards = auto_shards();
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t capacity = slice_capacity(total_capacity_, shards, s);
        const std::size_t imp = imp_items_for(capacity, imp_ratio);
        shards_.push_back(std::make_unique<Shard>(imp, capacity - imp));
    }
}

std::size_t TwoLayerSemanticCache::slice_capacity(std::size_t total,
                                                  std::size_t shards,
                                                  std::size_t s) {
    return total / shards + (s < total % shards ? 1 : 0);
}

std::size_t TwoLayerSemanticCache::shard_total(std::size_t s) const {
    return slice_capacity(total_capacity_, shards_.size(), s);
}

std::size_t TwoLayerSemanticCache::imp_items_for(std::size_t capacity,
                                                 double ratio) {
    const auto items = static_cast<std::size_t>(
        std::llround(static_cast<double>(capacity) * ratio));
    return std::min(items, capacity);
}

std::size_t TwoLayerSemanticCache::shard_of(std::uint32_t id) const {
    return shards_.size() == 1 ? 0 : mix(id) % shards_.size();
}

ImportanceCache& TwoLayerSemanticCache::importance() {
    if (shards_.size() != 1) {
        throw std::logic_error{
            "TwoLayerSemanticCache::importance: sharded cache has no single "
            "section; use the aggregate/per-shard accessors"};
    }
    return shards_[0]->importance;
}

const ImportanceCache& TwoLayerSemanticCache::importance() const {
    return const_cast<TwoLayerSemanticCache*>(this)->importance();
}

HomophilyCache& TwoLayerSemanticCache::homophily() {
    if (shards_.size() != 1) {
        throw std::logic_error{
            "TwoLayerSemanticCache::homophily: sharded cache has no single "
            "section; use the aggregate/per-shard accessors"};
    }
    return shards_[0]->homophily;
}

const HomophilyCache& TwoLayerSemanticCache::homophily() const {
    return const_cast<TwoLayerSemanticCache*>(this)->homophily();
}

Lookup TwoLayerSemanticCache::lookup(std::uint32_t id) const {
    const Shard& shard = *shards_[shard_of(id)];
    const std::lock_guard lock{shard.mu};
    if (shard.importance.contains(id)) {
        return {HitKind::kImportance, id};
    }
    // A resident high-degree node can also be served directly: it is its
    // own best surrogate.
    if (shard.homophily.contains_key(id)) {
        return {HitKind::kHomophily, id};
    }
    if (shards_.size() == 1) {
        if (const auto surrogate = shard.homophily.surrogate_for(id)) {
            return {HitKind::kHomophily, *surrogate};
        }
        return {HitKind::kMiss, id};
    }
    // Sharded: the neighbor index slice for `id` lives in id's shard, even
    // though the surrogate key it names may reside elsewhere. Newest
    // resident node listing this neighbor wins (freshest embedding).
    const auto it = shard.neighbor_index.find(id);
    if (it != shard.neighbor_index.end() && !it->second.empty()) {
        return {HitKind::kHomophily, it->second.back()};
    }
    return {HitKind::kMiss, id};
}

ImportanceCache::AdmitResult TwoLayerSemanticCache::on_miss_fetched(
    std::uint32_t id, double score) {
    Shard& shard = *shards_[shard_of(id)];
    const std::lock_guard lock{shard.mu};
    return shard.importance.admit_scored(id, score);
}

void TwoLayerSemanticCache::update_importance_score(std::uint32_t id,
                                                    double score) {
    Shard& shard = *shards_[shard_of(id)];
    const std::lock_guard lock{shard.mu};
    shard.importance.update_score(id, score);
}

void TwoLayerSemanticCache::unindex_evicted(
    std::uint32_t victim, std::span<const std::uint32_t> neighbors) {
    for (std::uint32_t neighbor : neighbors) {
        Shard& shard = *shards_[shard_of(neighbor)];
        const std::lock_guard lock{shard.mu};
        const auto it = shard.neighbor_index.find(neighbor);
        if (it == shard.neighbor_index.end()) continue;
        auto& keys = it->second;
        keys.erase(std::remove(keys.begin(), keys.end(), victim), keys.end());
        if (keys.empty()) shard.neighbor_index.erase(it);
    }
}

std::optional<std::uint32_t> TwoLayerSemanticCache::update_homophily(
    std::uint32_t key, std::span<const std::uint32_t> neighbors) {
    Shard& key_shard = *shards_[shard_of(key)];
    if (shards_.size() == 1) {
        const std::lock_guard lock{key_shard.mu};
        return key_shard.homophily.update(key, neighbors);
    }
    // Sharded: insert the entry under the key's shard, then maintain the
    // neighbor-index slices one shard at a time (never holding two locks,
    // so update/lookup traffic on other shards cannot deadlock with us).
    std::optional<std::uint32_t> evicted;
    std::vector<std::uint32_t> victim_neighbors;
    {
        const std::lock_guard lock{key_shard.mu};
        if (key_shard.homophily.capacity() == 0 ||
            key_shard.homophily.contains_key(key)) {
            return std::nullopt;
        }
        if (key_shard.homophily.size() >= key_shard.homophily.capacity()) {
            const auto victim = *key_shard.homophily.oldest();
            const auto nb = key_shard.homophily.neighbors_of(victim);
            victim_neighbors.assign(nb.begin(), nb.end());
        }
        evicted = key_shard.homophily.update(key, neighbors);
    }
    if (evicted.has_value()) {
        unindex_evicted(*evicted, victim_neighbors);
    }
    for (std::uint32_t neighbor : neighbors) {
        Shard& shard = *shards_[shard_of(neighbor)];
        const std::lock_guard lock{shard.mu};
        shard.neighbor_index[neighbor].push_back(key);
    }
    return evicted;
}

void TwoLayerSemanticCache::set_imp_ratio(double imp_ratio) {
    imp_ratio = std::clamp(imp_ratio, 0.01, 1.0);
    imp_ratio_.store(imp_ratio, std::memory_order_relaxed);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        Shard& shard = *shards_[s];
        const std::size_t capacity = shard_total(s);
        const std::size_t imp = imp_items_for(capacity, imp_ratio);
        const std::size_t hom = capacity - imp;
        if (shards_.size() == 1) {
            const std::lock_guard lock{shard.mu};
            shard.importance.set_capacity(imp);
            shard.homophily.set_capacity(hom);
            continue;
        }
        // Sharded: evictions forced by a shrinking homophily slice must
        // also leave the neighbor-index slices, which live under other
        // shards' locks — collect victims first, unindex after releasing.
        std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>>
            victims;
        {
            const std::lock_guard lock{shard.mu};
            shard.importance.set_capacity(imp);
            while (shard.homophily.size() > hom) {
                victims.push_back(*shard.homophily.evict_oldest());
            }
            shard.homophily.set_capacity(hom);
        }
        for (const auto& [victim, victim_neighbors] : victims) {
            unindex_evicted(victim, victim_neighbors);
        }
    }
}

std::optional<std::uint32_t> TwoLayerSemanticCache::find_resident_if(
    std::uint32_t near,
    const std::function<bool(std::uint32_t)>& accept) const {
    // Degraded-mode ladder: start at the requested id's own shard (its
    // semantic neighborhood hashes there) and walk the ring. Importance
    // first — the most important compatible resident is the best stand-in.
    const std::size_t start = shard_of(near);
    const std::size_t n = shards_.size();
    for (std::size_t offset = 0; offset < n; ++offset) {
        const Shard& shard = *shards_[(start + offset) % n];
        const std::lock_guard lock{shard.mu};
        if (auto hit = shard.importance.find_best_if(accept)) return hit;
        if (auto hit = shard.homophily.find_key_if(accept)) return hit;
    }
    return std::nullopt;
}

std::size_t TwoLayerSemanticCache::importance_size() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
        const std::lock_guard lock{shard->mu};
        total += shard->importance.size();
    }
    return total;
}

std::size_t TwoLayerSemanticCache::homophily_size() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
        const std::lock_guard lock{shard->mu};
        total += shard->homophily.size();
    }
    return total;
}

std::size_t TwoLayerSemanticCache::importance_capacity() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
        const std::lock_guard lock{shard->mu};
        total += shard->importance.capacity();
    }
    return total;
}

std::size_t TwoLayerSemanticCache::homophily_capacity() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
        const std::lock_guard lock{shard->mu};
        total += shard->homophily.capacity();
    }
    return total;
}

std::size_t TwoLayerSemanticCache::shard_capacity(std::size_t s) const {
    return shard_total(s);
}

std::size_t TwoLayerSemanticCache::shard_importance_capacity(
    std::size_t s) const {
    const std::lock_guard lock{shards_[s]->mu};
    return shards_[s]->importance.capacity();
}

std::size_t TwoLayerSemanticCache::shard_importance_size(std::size_t s) const {
    const std::lock_guard lock{shards_[s]->mu};
    return shards_[s]->importance.size();
}

std::size_t TwoLayerSemanticCache::shard_homophily_capacity(
    std::size_t s) const {
    const std::lock_guard lock{shards_[s]->mu};
    return shards_[s]->homophily.capacity();
}

std::size_t TwoLayerSemanticCache::shard_homophily_size(std::size_t s) const {
    const std::lock_guard lock{shards_[s]->mu};
    return shards_[s]->homophily.size();
}

std::optional<double> TwoLayerSemanticCache::shard_min_score(
    std::size_t s) const {
    const std::lock_guard lock{shards_[s]->mu};
    return shards_[s]->importance.min_score();
}

}  // namespace spider::cache
