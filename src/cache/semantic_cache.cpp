#include "cache/semantic_cache.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spider::cache {

TwoLayerSemanticCache::TwoLayerSemanticCache(std::size_t total_capacity,
                                             double imp_ratio)
    : total_capacity_{total_capacity},
      imp_ratio_{imp_ratio},
      importance_{imp_items(imp_ratio)},
      homophily_{total_capacity - imp_items(imp_ratio)} {
    if (imp_ratio <= 0.0 || imp_ratio > 1.0) {
        throw std::invalid_argument{
            "TwoLayerSemanticCache: imp_ratio must be in (0, 1]"};
    }
}

std::size_t TwoLayerSemanticCache::imp_items(double ratio) const {
    const auto items = static_cast<std::size_t>(
        std::llround(static_cast<double>(total_capacity_) * ratio));
    return std::min(items, total_capacity_);
}

Lookup TwoLayerSemanticCache::lookup(std::uint32_t id) const {
    if (importance_.contains(id)) {
        return {HitKind::kImportance, id};
    }
    // A resident high-degree node can also be served directly: it is its
    // own best surrogate.
    if (homophily_.contains_key(id)) {
        return {HitKind::kHomophily, id};
    }
    if (const auto surrogate = homophily_.surrogate_for(id)) {
        return {HitKind::kHomophily, *surrogate};
    }
    return {HitKind::kMiss, id};
}

ImportanceCache::AdmitResult TwoLayerSemanticCache::on_miss_fetched(
    std::uint32_t id, double score) {
    return importance_.admit_scored(id, score);
}

std::optional<std::uint32_t> TwoLayerSemanticCache::update_homophily(
    std::uint32_t key, std::span<const std::uint32_t> neighbors) {
    return homophily_.update(key, neighbors);
}

void TwoLayerSemanticCache::set_imp_ratio(double imp_ratio) {
    imp_ratio = std::clamp(imp_ratio, 0.01, 1.0);
    imp_ratio_ = imp_ratio;
    const std::size_t imp = imp_items(imp_ratio);
    importance_.set_capacity(imp);
    homophily_.set_capacity(total_capacity_ - imp);
}

}  // namespace spider::cache
