#pragma once

// Classic eviction policies: LRU and LFU (the Figure 3(b) motivation
// baselines), FIFO, the CoorDL/MinIO-style static cache, and uniform
// random replacement (the L-section policy of iCache).

#include <cstdint>
#include <list>
#include <map>
#include <unordered_map>
#include <vector>

#include "cache/policy.hpp"
#include "util/rng.hpp"

namespace spider::cache {

/// Least-recently-used: doubly-linked recency list + index map.
class LruCache final : public EvictionCache {
public:
    explicit LruCache(std::size_t capacity);

    [[nodiscard]] std::string name() const override { return "LRU"; }
    [[nodiscard]] std::size_t size() const override { return index_.size(); }
    [[nodiscard]] std::size_t capacity() const override { return capacity_; }
    [[nodiscard]] bool contains(std::uint32_t id) const override;
    bool touch(std::uint32_t id) override;
    std::optional<std::uint32_t> admit(std::uint32_t id) override;
    void set_capacity(std::size_t capacity) override;

    /// Visits every resident id, least-recently-used first. Re-admitting
    /// in this order reproduces the recency horizon exactly — the SSD
    /// tier's residency dump (warm-restart snapshots) relies on it.
    template <typename Fn>
    void for_each_lru_first(Fn fn) const {
        for (auto it = order_.rbegin(); it != order_.rend(); ++it) fn(*it);
    }

private:
    std::optional<std::uint32_t> evict_lru();

    std::size_t capacity_;
    std::list<std::uint32_t> order_;  // front = most recent
    std::unordered_map<std::uint32_t, std::list<std::uint32_t>::iterator> index_;
};

/// Least-frequently-used with LRU tie-break inside a frequency bucket.
class LfuCache final : public EvictionCache {
public:
    explicit LfuCache(std::size_t capacity);

    [[nodiscard]] std::string name() const override { return "LFU"; }
    [[nodiscard]] std::size_t size() const override { return entries_.size(); }
    [[nodiscard]] std::size_t capacity() const override { return capacity_; }
    [[nodiscard]] bool contains(std::uint32_t id) const override;
    bool touch(std::uint32_t id) override;
    std::optional<std::uint32_t> admit(std::uint32_t id) override;
    void set_capacity(std::size_t capacity) override;

private:
    struct Entry {
        std::uint64_t frequency;
        std::uint64_t stamp;  // global access counter for LRU tie-break
    };
    std::optional<std::uint32_t> evict_lfu();
    void bump(std::uint32_t id, Entry& entry);

    std::size_t capacity_;
    std::uint64_t access_counter_ = 0;
    std::unordered_map<std::uint32_t, Entry> entries_;
    // (frequency, stamp) -> id; begin() is the eviction victim.
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> order_;
};

/// First-in-first-out ring.
class FifoCache final : public EvictionCache {
public:
    explicit FifoCache(std::size_t capacity);

    [[nodiscard]] std::string name() const override { return "FIFO"; }
    [[nodiscard]] std::size_t size() const override { return index_.size(); }
    [[nodiscard]] std::size_t capacity() const override { return capacity_; }
    [[nodiscard]] bool contains(std::uint32_t id) const override;
    bool touch(std::uint32_t id) override;
    std::optional<std::uint32_t> admit(std::uint32_t id) override;
    void set_capacity(std::size_t capacity) override;

private:
    std::size_t capacity_;
    std::list<std::uint32_t> order_;  // front = oldest
    std::unordered_map<std::uint32_t, std::list<std::uint32_t>::iterator> index_;
};

/// CoorDL's MinIO cache: admits until full, then never replaces. Random
/// sampling touches every sample once per epoch, so a never-churning cache
/// gives a stable hit ratio equal to the cache fraction.
class StaticCache final : public EvictionCache {
public:
    explicit StaticCache(std::size_t capacity);

    [[nodiscard]] std::string name() const override { return "Static(MinIO)"; }
    [[nodiscard]] std::size_t size() const override { return items_.size(); }
    [[nodiscard]] std::size_t capacity() const override { return capacity_; }
    [[nodiscard]] bool contains(std::uint32_t id) const override;
    bool touch(std::uint32_t id) override;
    std::optional<std::uint32_t> admit(std::uint32_t id) override;
    void set_capacity(std::size_t capacity) override;

private:
    std::size_t capacity_;
    std::unordered_map<std::uint32_t, std::size_t> slots_;
    std::vector<std::uint32_t> items_;
};

/// Uniform random replacement (iCache's policy for non-important samples).
class RandomCache final : public EvictionCache {
public:
    RandomCache(std::size_t capacity, util::Rng rng);

    [[nodiscard]] std::string name() const override { return "Random"; }
    [[nodiscard]] std::size_t size() const override { return items_.size(); }
    [[nodiscard]] std::size_t capacity() const override { return capacity_; }
    [[nodiscard]] bool contains(std::uint32_t id) const override;
    bool touch(std::uint32_t id) override;
    std::optional<std::uint32_t> admit(std::uint32_t id) override;
    void set_capacity(std::size_t capacity) override;

    /// A uniformly random resident id — iCache serves this as a substitute
    /// for a missed non-important sample. Empty cache -> nullopt.
    [[nodiscard]] std::optional<std::uint32_t> random_resident(util::Rng& rng) const;

private:
    std::size_t capacity_;
    util::Rng rng_;
    std::unordered_map<std::uint32_t, std::size_t> slots_;
    std::vector<std::uint32_t> items_;
};

}  // namespace spider::cache
