#pragma once

// Classic eviction policies: LRU and LFU (the Figure 3(b) motivation
// baselines), FIFO, the CoorDL/MinIO-style static cache, uniform random
// replacement (the L-section policy of iCache), and the score-sensitive
// GDSF / cost-aware policies selectable for the semantic-cache sections
// (DESIGN.md §13).

#include <cstdint>
#include <list>
#include <map>
#include <unordered_map>
#include <vector>

#include "cache/policy.hpp"
#include "util/rng.hpp"

namespace spider::cache {

/// Least-recently-used: doubly-linked recency list + index map.
class LruCache final : public EvictionCache {
public:
    explicit LruCache(std::size_t capacity);

    [[nodiscard]] std::string name() const override { return "LRU"; }
    [[nodiscard]] std::size_t size() const override { return index_.size(); }
    [[nodiscard]] std::size_t capacity() const override { return capacity_; }
    [[nodiscard]] bool contains(std::uint32_t id) const override;
    bool touch(std::uint32_t id) override;
    std::optional<std::uint32_t> admit(std::uint32_t id) override;
    void set_capacity(std::size_t capacity) override;
    [[nodiscard]] std::optional<std::uint32_t> peek_victim() const override;
    bool erase(std::uint32_t id) override;

    /// Visits every resident id, least-recently-used first. Re-admitting
    /// in this order reproduces the recency horizon exactly — the SSD
    /// tier's residency dump (warm-restart snapshots) relies on it.
    template <typename Fn>
    void for_each_lru_first(Fn fn) const {
        for (auto it = order_.rbegin(); it != order_.rend(); ++it) fn(*it);
    }

private:
    std::optional<std::uint32_t> evict_lru();

    std::size_t capacity_;
    std::list<std::uint32_t> order_;  // front = most recent
    std::unordered_map<std::uint32_t, std::list<std::uint32_t>::iterator> index_;
};

/// Least-frequently-used with LRU tie-break inside a frequency bucket.
class LfuCache final : public EvictionCache {
public:
    explicit LfuCache(std::size_t capacity);

    [[nodiscard]] std::string name() const override { return "LFU"; }
    [[nodiscard]] std::size_t size() const override { return entries_.size(); }
    [[nodiscard]] std::size_t capacity() const override { return capacity_; }
    [[nodiscard]] bool contains(std::uint32_t id) const override;
    bool touch(std::uint32_t id) override;
    std::optional<std::uint32_t> admit(std::uint32_t id) override;
    void set_capacity(std::size_t capacity) override;
    [[nodiscard]] std::optional<std::uint32_t> peek_victim() const override;
    bool erase(std::uint32_t id) override;

private:
    struct Entry {
        std::uint64_t frequency;
        std::uint64_t stamp;  // global access counter for LRU tie-break
    };
    std::optional<std::uint32_t> evict_lfu();
    void bump(std::uint32_t id, Entry& entry);

    std::size_t capacity_;
    std::uint64_t access_counter_ = 0;
    std::unordered_map<std::uint32_t, Entry> entries_;
    // (frequency, stamp) -> id; begin() is the eviction victim.
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> order_;
};

/// First-in-first-out ring.
class FifoCache final : public EvictionCache {
public:
    explicit FifoCache(std::size_t capacity);

    [[nodiscard]] std::string name() const override { return "FIFO"; }
    [[nodiscard]] std::size_t size() const override { return index_.size(); }
    [[nodiscard]] std::size_t capacity() const override { return capacity_; }
    [[nodiscard]] bool contains(std::uint32_t id) const override;
    bool touch(std::uint32_t id) override;
    std::optional<std::uint32_t> admit(std::uint32_t id) override;
    void set_capacity(std::size_t capacity) override;
    [[nodiscard]] std::optional<std::uint32_t> peek_victim() const override;
    bool erase(std::uint32_t id) override;

private:
    std::size_t capacity_;
    std::list<std::uint32_t> order_;  // front = oldest
    std::unordered_map<std::uint32_t, std::list<std::uint32_t>::iterator> index_;
};

/// CoorDL's MinIO cache: admits until full, then never replaces. Random
/// sampling touches every sample once per epoch, so a never-churning cache
/// gives a stable hit ratio equal to the cache fraction.
///
/// Shrink semantics: "never replaces" does NOT mean "never shrinks" —
/// under an elastic resize the cache must still give capacity back. With
/// no replacement order to follow, shrink evicts newest-admitted first
/// (LIFO), preserving the earliest-admitted stable set that MinIO's
/// steady hit ratio comes from. peek_victim() previews the same order.
class StaticCache final : public EvictionCache {
public:
    explicit StaticCache(std::size_t capacity);

    [[nodiscard]] std::string name() const override { return "Static(MinIO)"; }
    [[nodiscard]] std::size_t size() const override { return items_.size(); }
    [[nodiscard]] std::size_t capacity() const override { return capacity_; }
    [[nodiscard]] bool contains(std::uint32_t id) const override;
    bool touch(std::uint32_t id) override;
    std::optional<std::uint32_t> admit(std::uint32_t id) override;
    void set_capacity(std::size_t capacity) override;
    [[nodiscard]] std::optional<std::uint32_t> peek_victim() const override;
    bool erase(std::uint32_t id) override;

private:
    std::size_t capacity_;
    std::unordered_map<std::uint32_t, std::size_t> slots_;
    std::vector<std::uint32_t> items_;
};

/// Uniform random replacement (iCache's policy for non-important samples).
/// All randomness — replacement victims, shrink victims, and the
/// random_resident() surrogate draws — comes from the single ctor-seeded
/// stream, so a fixed seed pins the full eviction/surrogate sequence.
class RandomCache final : public EvictionCache {
public:
    RandomCache(std::size_t capacity, util::Rng rng);

    [[nodiscard]] std::string name() const override { return "Random"; }
    [[nodiscard]] std::size_t size() const override { return items_.size(); }
    [[nodiscard]] std::size_t capacity() const override { return capacity_; }
    [[nodiscard]] bool contains(std::uint32_t id) const override;
    bool touch(std::uint32_t id) override;
    std::optional<std::uint32_t> admit(std::uint32_t id) override;
    /// Shrink evicts uniformly random victims (the policy's only victim
    /// order), not the newest-admitted tail.
    void set_capacity(std::size_t capacity) override;
    /// Previews the next eviction draw without consuming it; invalidated
    /// by any intervening draw (admit over capacity, shrink,
    /// random_resident).
    [[nodiscard]] std::optional<std::uint32_t> peek_victim() const override;
    bool erase(std::uint32_t id) override;

    /// A uniformly random resident id — iCache serves this as a substitute
    /// for a missed non-important sample. Draws from the same internal
    /// stream as replacement. Empty cache -> nullopt.
    [[nodiscard]] std::optional<std::uint32_t> random_resident();

private:
    std::uint32_t remove_slot(std::size_t slot);

    std::size_t capacity_;
    util::Rng rng_;
    std::unordered_map<std::uint32_t, std::size_t> slots_;
    std::vector<std::uint32_t> items_;
};

/// Greedy-Dual-Size-Frequency over unit-size items: priority =
/// clock + frequency * score, victim = lowest priority, and the clock
/// inflates to each victim's priority so long-idle entries age out.
/// The score arrives via note_score() (importance scores in the semantic
/// sections); without one, cost defaults to 1 and GDSF degrades to LFU
/// with aging.
class GdsfCache final : public EvictionCache {
public:
    explicit GdsfCache(std::size_t capacity);

    [[nodiscard]] std::string name() const override { return "GDSF"; }
    [[nodiscard]] std::size_t size() const override { return entries_.size(); }
    [[nodiscard]] std::size_t capacity() const override { return capacity_; }
    [[nodiscard]] bool contains(std::uint32_t id) const override;
    bool touch(std::uint32_t id) override;
    std::optional<std::uint32_t> admit(std::uint32_t id) override;
    void set_capacity(std::size_t capacity) override;
    void note_score(std::uint32_t id, double score) override;
    [[nodiscard]] std::optional<std::uint32_t> peek_victim() const override;
    bool erase(std::uint32_t id) override;

private:
    struct Entry {
        std::uint64_t frequency;
        double cost;
        double priority;
        std::uint64_t stamp;  // insertion-order tie-break
    };
    void rekey(std::uint32_t id, Entry& entry, double priority);
    std::optional<std::uint32_t> evict_min();

    std::size_t capacity_;
    double clock_ = 0.0;  // inflates to each evicted priority
    std::uint64_t stamp_counter_ = 0;
    std::uint32_t pending_id_ = 0;  // note_score for a not-yet-resident id
    double pending_cost_ = 1.0;
    bool pending_valid_ = false;
    std::unordered_map<std::uint32_t, Entry> entries_;
    std::map<std::pair<double, std::uint64_t>, std::uint32_t> order_;
};

/// Cost-aware replacement: evict the lowest-scored resident, breaking
/// ties least-recently-touched first. Scores arrive via note_score();
/// unknown scores default to 1.
class CostAwareCache final : public EvictionCache {
public:
    explicit CostAwareCache(std::size_t capacity);

    [[nodiscard]] std::string name() const override { return "CostAware"; }
    [[nodiscard]] std::size_t size() const override { return entries_.size(); }
    [[nodiscard]] std::size_t capacity() const override { return capacity_; }
    [[nodiscard]] bool contains(std::uint32_t id) const override;
    bool touch(std::uint32_t id) override;
    std::optional<std::uint32_t> admit(std::uint32_t id) override;
    void set_capacity(std::size_t capacity) override;
    void note_score(std::uint32_t id, double score) override;
    [[nodiscard]] std::optional<std::uint32_t> peek_victim() const override;
    bool erase(std::uint32_t id) override;

private:
    struct Entry {
        double cost;
        std::uint64_t stamp;  // recency tie-break within equal cost
    };
    void rekey(std::uint32_t id, Entry& entry, double cost);
    std::optional<std::uint32_t> evict_min();

    std::size_t capacity_;
    std::uint64_t access_counter_ = 0;
    std::uint32_t pending_id_ = 0;
    double pending_cost_ = 1.0;
    bool pending_valid_ = false;
    std::unordered_map<std::uint32_t, Entry> entries_;
    std::map<std::pair<double, std::uint64_t>, std::uint32_t> order_;
};

}  // namespace spider::cache
