#include "cache/basic_policies.hpp"

#include <algorithm>

namespace spider::cache {

// ---------------------------------------------------------------- LruCache

LruCache::LruCache(std::size_t capacity) : capacity_{capacity} {}

bool LruCache::contains(std::uint32_t id) const {
    return index_.contains(id);
}

bool LruCache::touch(std::uint32_t id) {
    const auto it = index_.find(id);
    if (it == index_.end()) return false;
    order_.splice(order_.begin(), order_, it->second);
    return true;
}

std::optional<std::uint32_t> LruCache::evict_lru() {
    if (order_.empty()) return std::nullopt;
    const std::uint32_t victim = order_.back();
    order_.pop_back();
    index_.erase(victim);
    return victim;
}

std::optional<std::uint32_t> LruCache::admit(std::uint32_t id) {
    if (capacity_ == 0 || index_.contains(id)) return std::nullopt;
    std::optional<std::uint32_t> evicted;
    if (index_.size() >= capacity_) evicted = evict_lru();
    order_.push_front(id);
    index_.emplace(id, order_.begin());
    return evicted;
}

void LruCache::set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    while (index_.size() > capacity_) evict_lru();
}

// ---------------------------------------------------------------- LfuCache

LfuCache::LfuCache(std::size_t capacity) : capacity_{capacity} {}

bool LfuCache::contains(std::uint32_t id) const {
    return entries_.contains(id);
}

void LfuCache::bump(std::uint32_t id, Entry& entry) {
    order_.erase({entry.frequency, entry.stamp});
    ++entry.frequency;
    entry.stamp = ++access_counter_;
    order_.emplace(std::pair{entry.frequency, entry.stamp}, id);
}

bool LfuCache::touch(std::uint32_t id) {
    const auto it = entries_.find(id);
    if (it == entries_.end()) return false;
    bump(id, it->second);
    return true;
}

std::optional<std::uint32_t> LfuCache::evict_lfu() {
    if (order_.empty()) return std::nullopt;
    const auto victim_it = order_.begin();
    const std::uint32_t victim = victim_it->second;
    order_.erase(victim_it);
    entries_.erase(victim);
    return victim;
}

std::optional<std::uint32_t> LfuCache::admit(std::uint32_t id) {
    if (capacity_ == 0 || entries_.contains(id)) return std::nullopt;
    std::optional<std::uint32_t> evicted;
    if (entries_.size() >= capacity_) evicted = evict_lfu();
    const Entry entry{1, ++access_counter_};
    entries_.emplace(id, entry);
    order_.emplace(std::pair{entry.frequency, entry.stamp}, id);
    return evicted;
}

void LfuCache::set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    while (entries_.size() > capacity_) evict_lfu();
}

// --------------------------------------------------------------- FifoCache

FifoCache::FifoCache(std::size_t capacity) : capacity_{capacity} {}

bool FifoCache::contains(std::uint32_t id) const {
    return index_.contains(id);
}

bool FifoCache::touch(std::uint32_t id) {
    return index_.contains(id);  // FIFO order is insertion-only.
}

std::optional<std::uint32_t> FifoCache::admit(std::uint32_t id) {
    if (capacity_ == 0 || index_.contains(id)) return std::nullopt;
    std::optional<std::uint32_t> evicted;
    if (index_.size() >= capacity_) {
        const std::uint32_t victim = order_.front();
        order_.pop_front();
        index_.erase(victim);
        evicted = victim;
    }
    order_.push_back(id);
    index_.emplace(id, std::prev(order_.end()));
    return evicted;
}

void FifoCache::set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    while (index_.size() > capacity_) {
        const std::uint32_t victim = order_.front();
        order_.pop_front();
        index_.erase(victim);
    }
}

// ------------------------------------------------------------- StaticCache

StaticCache::StaticCache(std::size_t capacity) : capacity_{capacity} {}

bool StaticCache::contains(std::uint32_t id) const {
    return slots_.contains(id);
}

bool StaticCache::touch(std::uint32_t id) {
    return slots_.contains(id);
}

std::optional<std::uint32_t> StaticCache::admit(std::uint32_t id) {
    if (slots_.size() >= capacity_ || slots_.contains(id)) return std::nullopt;
    slots_.emplace(id, items_.size());
    items_.push_back(id);
    return std::nullopt;  // MinIO never replaces.
}

void StaticCache::set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    while (items_.size() > capacity_) {
        slots_.erase(items_.back());
        items_.pop_back();
    }
}

// ------------------------------------------------------------- RandomCache

RandomCache::RandomCache(std::size_t capacity, util::Rng rng)
    : capacity_{capacity}, rng_{rng} {}

bool RandomCache::contains(std::uint32_t id) const {
    return slots_.contains(id);
}

bool RandomCache::touch(std::uint32_t id) {
    return slots_.contains(id);
}

std::optional<std::uint32_t> RandomCache::admit(std::uint32_t id) {
    if (capacity_ == 0 || slots_.contains(id)) return std::nullopt;
    std::optional<std::uint32_t> evicted;
    if (items_.size() >= capacity_) {
        // Swap-remove a uniformly random victim.
        const std::size_t victim_slot = rng_.uniform_index(items_.size());
        const std::uint32_t victim = items_[victim_slot];
        items_[victim_slot] = items_.back();
        slots_[items_.back()] = victim_slot;
        items_.pop_back();
        slots_.erase(victim);
        evicted = victim;
    }
    slots_.emplace(id, items_.size());
    items_.push_back(id);
    return evicted;
}

void RandomCache::set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    while (items_.size() > capacity_) {
        slots_.erase(items_.back());
        items_.pop_back();
    }
}

std::optional<std::uint32_t> RandomCache::random_resident(
    util::Rng& rng) const {
    if (items_.empty()) return std::nullopt;
    return items_[rng.uniform_index(items_.size())];
}

}  // namespace spider::cache
