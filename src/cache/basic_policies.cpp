#include "cache/basic_policies.hpp"

#include <algorithm>

namespace spider::cache {

// ---------------------------------------------------------------- LruCache

LruCache::LruCache(std::size_t capacity) : capacity_{capacity} {}

bool LruCache::contains(std::uint32_t id) const {
    return index_.contains(id);
}

bool LruCache::touch(std::uint32_t id) {
    const auto it = index_.find(id);
    if (it == index_.end()) return false;
    order_.splice(order_.begin(), order_, it->second);
    return true;
}

std::optional<std::uint32_t> LruCache::evict_lru() {
    if (order_.empty()) return std::nullopt;
    const std::uint32_t victim = order_.back();
    order_.pop_back();
    index_.erase(victim);
    return victim;
}

std::optional<std::uint32_t> LruCache::admit(std::uint32_t id) {
    if (capacity_ == 0 || index_.contains(id)) return std::nullopt;
    std::optional<std::uint32_t> evicted;
    if (index_.size() >= capacity_) evicted = evict_lru();
    order_.push_front(id);
    index_.emplace(id, order_.begin());
    return evicted;
}

void LruCache::set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    while (index_.size() > capacity_) evict_lru();
}

std::optional<std::uint32_t> LruCache::peek_victim() const {
    if (order_.empty()) return std::nullopt;
    return order_.back();
}

bool LruCache::erase(std::uint32_t id) {
    const auto it = index_.find(id);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
}

// ---------------------------------------------------------------- LfuCache

LfuCache::LfuCache(std::size_t capacity) : capacity_{capacity} {}

bool LfuCache::contains(std::uint32_t id) const {
    return entries_.contains(id);
}

void LfuCache::bump(std::uint32_t id, Entry& entry) {
    order_.erase({entry.frequency, entry.stamp});
    ++entry.frequency;
    entry.stamp = ++access_counter_;
    order_.emplace(std::pair{entry.frequency, entry.stamp}, id);
}

bool LfuCache::touch(std::uint32_t id) {
    const auto it = entries_.find(id);
    if (it == entries_.end()) return false;
    bump(id, it->second);
    return true;
}

std::optional<std::uint32_t> LfuCache::evict_lfu() {
    if (order_.empty()) return std::nullopt;
    const auto victim_it = order_.begin();
    const std::uint32_t victim = victim_it->second;
    order_.erase(victim_it);
    entries_.erase(victim);
    return victim;
}

std::optional<std::uint32_t> LfuCache::admit(std::uint32_t id) {
    if (capacity_ == 0 || entries_.contains(id)) return std::nullopt;
    std::optional<std::uint32_t> evicted;
    if (entries_.size() >= capacity_) evicted = evict_lfu();
    const Entry entry{1, ++access_counter_};
    entries_.emplace(id, entry);
    order_.emplace(std::pair{entry.frequency, entry.stamp}, id);
    return evicted;
}

void LfuCache::set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    // Shrink follows the exact (frequency, stamp) eviction order.
    while (entries_.size() > capacity_) evict_lfu();
}

std::optional<std::uint32_t> LfuCache::peek_victim() const {
    if (order_.empty()) return std::nullopt;
    return order_.begin()->second;
}

bool LfuCache::erase(std::uint32_t id) {
    const auto it = entries_.find(id);
    if (it == entries_.end()) return false;
    order_.erase({it->second.frequency, it->second.stamp});
    entries_.erase(it);
    return true;
}

// --------------------------------------------------------------- FifoCache

FifoCache::FifoCache(std::size_t capacity) : capacity_{capacity} {}

bool FifoCache::contains(std::uint32_t id) const {
    return index_.contains(id);
}

bool FifoCache::touch(std::uint32_t id) {
    return index_.contains(id);  // FIFO order is insertion-only.
}

std::optional<std::uint32_t> FifoCache::admit(std::uint32_t id) {
    if (capacity_ == 0 || index_.contains(id)) return std::nullopt;
    std::optional<std::uint32_t> evicted;
    if (index_.size() >= capacity_) {
        const std::uint32_t victim = order_.front();
        order_.pop_front();
        index_.erase(victim);
        evicted = victim;
    }
    order_.push_back(id);
    index_.emplace(id, std::prev(order_.end()));
    return evicted;
}

void FifoCache::set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    while (index_.size() > capacity_) {
        const std::uint32_t victim = order_.front();
        order_.pop_front();
        index_.erase(victim);
    }
}

std::optional<std::uint32_t> FifoCache::peek_victim() const {
    if (order_.empty()) return std::nullopt;
    return order_.front();
}

bool FifoCache::erase(std::uint32_t id) {
    const auto it = index_.find(id);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
}

// ------------------------------------------------------------- StaticCache

StaticCache::StaticCache(std::size_t capacity) : capacity_{capacity} {}

bool StaticCache::contains(std::uint32_t id) const {
    return slots_.contains(id);
}

bool StaticCache::touch(std::uint32_t id) {
    return slots_.contains(id);
}

std::optional<std::uint32_t> StaticCache::admit(std::uint32_t id) {
    if (slots_.size() >= capacity_ || slots_.contains(id)) return std::nullopt;
    slots_.emplace(id, items_.size());
    items_.push_back(id);
    return std::nullopt;  // MinIO never replaces.
}

void StaticCache::set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    // Never-replaces != never-shrinks: elastic resize evicts LIFO
    // (newest-admitted first), keeping the earliest-admitted stable set.
    while (items_.size() > capacity_) {
        slots_.erase(items_.back());
        items_.pop_back();
    }
}

std::optional<std::uint32_t> StaticCache::peek_victim() const {
    if (items_.empty()) return std::nullopt;
    return items_.back();
}

bool StaticCache::erase(std::uint32_t id) {
    const auto it = slots_.find(id);
    if (it == slots_.end()) return false;
    const std::size_t slot = it->second;
    items_[slot] = items_.back();
    slots_[items_.back()] = slot;
    items_.pop_back();
    slots_.erase(id);
    return true;
}

// ------------------------------------------------------------- RandomCache

RandomCache::RandomCache(std::size_t capacity, util::Rng rng)
    : capacity_{capacity}, rng_{rng} {}

bool RandomCache::contains(std::uint32_t id) const {
    return slots_.contains(id);
}

bool RandomCache::touch(std::uint32_t id) {
    return slots_.contains(id);
}

std::uint32_t RandomCache::remove_slot(std::size_t slot) {
    const std::uint32_t victim = items_[slot];
    items_[slot] = items_.back();
    slots_[items_.back()] = slot;
    items_.pop_back();
    slots_.erase(victim);
    return victim;
}

std::optional<std::uint32_t> RandomCache::admit(std::uint32_t id) {
    if (capacity_ == 0 || slots_.contains(id)) return std::nullopt;
    std::optional<std::uint32_t> evicted;
    if (items_.size() >= capacity_) {
        // Swap-remove a uniformly random victim.
        evicted = remove_slot(rng_.uniform_index(items_.size()));
    }
    slots_.emplace(id, items_.size());
    items_.push_back(id);
    return evicted;
}

void RandomCache::set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    // Shrink evicts uniformly random victims — the same victim order the
    // policy uses on the admission path.
    while (items_.size() > capacity_) {
        remove_slot(rng_.uniform_index(items_.size()));
    }
}

std::optional<std::uint32_t> RandomCache::peek_victim() const {
    if (items_.empty()) return std::nullopt;
    util::Rng preview = rng_;  // preview the next draw without consuming it
    return items_[preview.uniform_index(items_.size())];
}

bool RandomCache::erase(std::uint32_t id) {
    const auto it = slots_.find(id);
    if (it == slots_.end()) return false;
    remove_slot(it->second);
    return true;
}

std::optional<std::uint32_t> RandomCache::random_resident() {
    if (items_.empty()) return std::nullopt;
    return items_[rng_.uniform_index(items_.size())];
}

// --------------------------------------------------------------- GdsfCache

GdsfCache::GdsfCache(std::size_t capacity) : capacity_{capacity} {}

bool GdsfCache::contains(std::uint32_t id) const {
    return entries_.contains(id);
}

void GdsfCache::rekey(std::uint32_t id, Entry& entry, double priority) {
    order_.erase({entry.priority, entry.stamp});
    entry.priority = priority;
    entry.stamp = ++stamp_counter_;
    order_.emplace(std::pair{entry.priority, entry.stamp}, id);
}

bool GdsfCache::touch(std::uint32_t id) {
    const auto it = entries_.find(id);
    if (it == entries_.end()) return false;
    Entry& e = it->second;
    ++e.frequency;
    rekey(id, e, clock_ + static_cast<double>(e.frequency) * e.cost);
    return true;
}

std::optional<std::uint32_t> GdsfCache::evict_min() {
    if (order_.empty()) return std::nullopt;
    const auto victim_it = order_.begin();
    const std::uint32_t victim = victim_it->second;
    // The clock inflates to the evicted priority: future insertions start
    // above everything that has already aged out.
    clock_ = std::max(clock_, victim_it->first.first);
    order_.erase(victim_it);
    entries_.erase(victim);
    return victim;
}

std::optional<std::uint32_t> GdsfCache::admit(std::uint32_t id) {
    if (capacity_ == 0 || entries_.contains(id)) return std::nullopt;
    std::optional<std::uint32_t> evicted;
    if (entries_.size() >= capacity_) evicted = evict_min();
    const double cost =
        (pending_valid_ && pending_id_ == id) ? pending_cost_ : 1.0;
    pending_valid_ = false;
    Entry entry{.frequency = 1,
                .cost = cost,
                .priority = clock_ + cost,
                .stamp = ++stamp_counter_};
    order_.emplace(std::pair{entry.priority, entry.stamp}, id);
    entries_.emplace(id, entry);
    return evicted;
}

void GdsfCache::set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    while (entries_.size() > capacity_) evict_min();
}

void GdsfCache::note_score(std::uint32_t id, double score) {
    const double cost = std::max(score, 0.0);
    const auto it = entries_.find(id);
    if (it == entries_.end()) {
        pending_id_ = id;
        pending_cost_ = cost;
        pending_valid_ = true;
        return;
    }
    Entry& e = it->second;
    e.cost = cost;
    rekey(id, e, clock_ + static_cast<double>(e.frequency) * e.cost);
}

std::optional<std::uint32_t> GdsfCache::peek_victim() const {
    if (order_.empty()) return std::nullopt;
    return order_.begin()->second;
}

bool GdsfCache::erase(std::uint32_t id) {
    const auto it = entries_.find(id);
    if (it == entries_.end()) return false;
    order_.erase({it->second.priority, it->second.stamp});
    entries_.erase(it);
    return true;
}

// ---------------------------------------------------------- CostAwareCache

CostAwareCache::CostAwareCache(std::size_t capacity) : capacity_{capacity} {}

bool CostAwareCache::contains(std::uint32_t id) const {
    return entries_.contains(id);
}

void CostAwareCache::rekey(std::uint32_t id, Entry& entry, double cost) {
    order_.erase({entry.cost, entry.stamp});
    entry.cost = cost;
    entry.stamp = ++access_counter_;
    order_.emplace(std::pair{entry.cost, entry.stamp}, id);
}

bool CostAwareCache::touch(std::uint32_t id) {
    const auto it = entries_.find(id);
    if (it == entries_.end()) return false;
    rekey(id, it->second, it->second.cost);  // recency bump within the bucket
    return true;
}

std::optional<std::uint32_t> CostAwareCache::evict_min() {
    if (order_.empty()) return std::nullopt;
    const auto victim_it = order_.begin();
    const std::uint32_t victim = victim_it->second;
    order_.erase(victim_it);
    entries_.erase(victim);
    return victim;
}

std::optional<std::uint32_t> CostAwareCache::admit(std::uint32_t id) {
    if (capacity_ == 0 || entries_.contains(id)) return std::nullopt;
    std::optional<std::uint32_t> evicted;
    if (entries_.size() >= capacity_) evicted = evict_min();
    const double cost =
        (pending_valid_ && pending_id_ == id) ? pending_cost_ : 1.0;
    pending_valid_ = false;
    const Entry entry{.cost = cost, .stamp = ++access_counter_};
    order_.emplace(std::pair{entry.cost, entry.stamp}, id);
    entries_.emplace(id, entry);
    return evicted;
}

void CostAwareCache::set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    while (entries_.size() > capacity_) evict_min();
}

void CostAwareCache::note_score(std::uint32_t id, double score) {
    const double cost = std::max(score, 0.0);
    const auto it = entries_.find(id);
    if (it == entries_.end()) {
        pending_id_ = id;
        pending_cost_ = cost;
        pending_valid_ = true;
        return;
    }
    rekey(id, it->second, cost);
}

std::optional<std::uint32_t> CostAwareCache::peek_victim() const {
    if (order_.empty()) return std::nullopt;
    return order_.begin()->second;
}

bool CostAwareCache::erase(std::uint32_t id) {
    const auto it = entries_.find(id);
    if (it == entries_.end()) return false;
    order_.erase({it->second.cost, it->second.stamp});
    entries_.erase(it);
    return true;
}

}  // namespace spider::cache
