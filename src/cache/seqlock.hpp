#pragma once

// Seqlock-protected residency view (DESIGN.md §8.4): the lock-free read
// path of the sharded TwoLayerSemanticCache.
//
// Each shard owns a ShardResidencyView — a compact open-addressed hash
// table mapping id -> {section flags, importance score, newest surrogate
// key} — kept in exact sync with the shard's Importance section, Homophily
// section, and neighbor-index slice by every writer, *under the existing
// shard mutex*. Readers never take that mutex: they validate an even/odd
// version counter (the seqlock) around a wait-free table probe and retry
// when a concurrent write section tore the snapshot. After a bounded
// number of torn reads (kMaxReadAttempts) the caller falls back to the
// locked path, so progress is guaranteed even under a writer storm.
//
// Memory-model notes (ThreadSanitizer-clean by construction):
//  * All shared words are std::atomic accessed with acquire/release — no
//    standalone fences, which TSan models imprecisely. On x86 these
//    orderings compile to plain loads/stores; the seqlock costs two
//    uncontended atomic loads per read.
//  * The reader orderings give: seq load (acquire) <= slot loads (acquire)
//    <= validation load, so a validated even-and-unchanged counter proves
//    no write section overlapped the probe.
//  * Writers only ever run under the shard mutex, so write sections never
//    nest or race each other; the RMW increments are for reader ordering,
//    not writer mutual exclusion.
//  * Tables grow by pointer swap and the old allocations are retired, not
//    freed, until the view dies: a reader still scanning a superseded
//    table reads stale-but-allocated memory and its validation fails.
//    Growth doubles, so retired memory is bounded by ~2x the final table.
//    The per-epoch elastic rebuild reuses the current allocation in place
//    (readers that observe the wipe retry), so repartitions allocate
//    nothing once the table has reached steady-state size.

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace spider::cache {

/// Even/odd version counter. Writers (externally serialized) wrap each
/// mutation burst in write_begin()/write_end(); readers snapshot with
/// read_begin() and accept the data they read only if read_valid() holds.
class Seqlock {
public:
    [[nodiscard]] std::uint64_t read_begin() const {
        return seq_.load(std::memory_order_acquire);
    }
    /// True when `begin` was even (no write in progress) and no write
    /// section started since — i.e. every relaxed/acquire data load made
    /// between read_begin() and this call saw a consistent snapshot.
    [[nodiscard]] bool read_valid(std::uint64_t begin) const {
        return (begin & 1U) == 0U &&
               seq_.load(std::memory_order_acquire) == begin;
    }
    void write_begin() { seq_.fetch_add(1, std::memory_order_acq_rel); }
    void write_end() { seq_.fetch_add(1, std::memory_order_acq_rel); }

private:
    std::atomic<std::uint64_t> seq_{0};
};

/// Read-optimized residency table of one TwoLayerSemanticCache shard.
/// Writer methods require the owning shard's mutex; try_probe() requires
/// nothing.
class ShardResidencyView {
public:
    /// Section-membership flags of an id within its shard.
    static constexpr std::uint32_t kImportance = 1U;  // Case 1 resident
    static constexpr std::uint32_t kHomKey = 2U;      // Case 3 self-serve
    static constexpr std::uint32_t kSurrogate = 4U;   // Case 3 via surrogate

    struct Probe {
        std::uint32_t flags = 0;
        /// Newest resident homophily key listing this id as a neighbor.
        /// Meaningful only when flags & kSurrogate.
        std::uint32_t surrogate = 0;
        /// Importance score. Meaningful only when flags & kImportance.
        double score = 0.0;
    };

    /// Torn-read retry bound: after this many invalidated probes the
    /// caller must fall back to the locked path (a writer is rebuilding).
    static constexpr int kMaxReadAttempts = 64;

    explicit ShardResidencyView(std::size_t expected_entries) {
        tables_.push_back(
            std::make_unique<Table>(table_capacity_for(expected_entries)));
        table_.store(tables_.back().get(), std::memory_order_release);
    }

    ShardResidencyView(const ShardResidencyView&) = delete;
    ShardResidencyView& operator=(const ShardResidencyView&) = delete;

    // ------------------------------------------------------- reader side

    /// Wait-free residency probe. Returns the id's flags/score/surrogate
    /// (flags == 0 for a non-resident id), or nullopt when every attempt
    /// within the retry bound was torn by concurrent write sections.
    [[nodiscard]] std::optional<Probe> try_probe(std::uint32_t id) const {
        for (int attempt = 0; attempt < kMaxReadAttempts; ++attempt) {
            const std::uint64_t begin = seq_.read_begin();
            if (begin & 1U) {  // write section in progress
                relax();
                continue;
            }
            const Table* table = table_.load(std::memory_order_acquire);
            Probe out;
            const std::size_t mask = table->mask();
            std::size_t i = slot_index(id, mask);
            for (std::size_t n = 0; n <= mask; ++n, i = (i + 1) & mask) {
                const std::uint64_t word =
                    table->slots[i].key.load(std::memory_order_acquire);
                if (word == kEmptyWord) break;
                if (static_cast<std::uint32_t>(word >> 32) != id) continue;
                out.flags = static_cast<std::uint32_t>(word);
                out.surrogate = static_cast<std::uint32_t>(
                    table->slots[i].surrogate.load(
                        std::memory_order_acquire));
                out.score = std::bit_cast<double>(
                    table->slots[i].score_bits.load(
                        std::memory_order_acquire));
                break;
            }
            if (seq_.read_valid(begin)) return out;
        }
        return std::nullopt;
    }

    // ------------------------------------------------------- writer side
    // Every mutator below must run inside a WriteSection, which must run
    // under the owning shard's mutex.

    /// RAII write section: bumps the version to odd on entry (readers
    /// start retrying) and back to even on exit (snapshots validate
    /// again). Group all view mutations of one cache operation under a
    /// single section so readers retry at most once per operation.
    class WriteSection {
    public:
        explicit WriteSection(ShardResidencyView& view) : view_{view} {
            view_.seq_.write_begin();
        }
        ~WriteSection() { view_.seq_.write_end(); }
        WriteSection(const WriteSection&) = delete;
        WriteSection& operator=(const WriteSection&) = delete;

    private:
        ShardResidencyView& view_;
    };

    void set_importance(std::uint32_t id, double score) {
        Slot& slot = upsert(id);
        slot.score_bits.store(std::bit_cast<std::uint64_t>(score),
                              std::memory_order_release);
        or_flags(slot, id, kImportance);
    }
    void clear_importance(std::uint32_t id) { clear_flags(id, kImportance); }

    void set_hom_key(std::uint32_t id) { or_flags(upsert(id), id, kHomKey); }
    void clear_hom_key(std::uint32_t id) { clear_flags(id, kHomKey); }

    void set_surrogate(std::uint32_t id, std::uint32_t key) {
        Slot& slot = upsert(id);
        slot.surrogate.store(key, std::memory_order_release);
        or_flags(slot, id, kSurrogate);
    }
    void clear_surrogate(std::uint32_t id) { clear_flags(id, kSurrogate); }

    /// Wipes the table in place (allocation reused; concurrent readers see
    /// torn slots and retry). Prelude to a full rebuild after an elastic
    /// repartition or a legacy direct-section mutation.
    void clear() {
        Table& table = *tables_.back();
        for (Slot& slot : table.slots) {
            slot.key.store(kEmptyWord, std::memory_order_release);
        }
        table.used = 0;
        live_ = 0;
    }

    /// All live entries (flags != 0). Caller must hold the shard mutex so
    /// no write section is possible; used by the frozen-state oracle.
    [[nodiscard]] std::vector<std::pair<std::uint32_t, Probe>> entries()
        const {
        std::vector<std::pair<std::uint32_t, Probe>> out;
        const Table* table = table_.load(std::memory_order_acquire);
        for (const Slot& slot : table->slots) {
            const std::uint64_t word =
                slot.key.load(std::memory_order_acquire);
            if (word == kEmptyWord) continue;
            const auto flags = static_cast<std::uint32_t>(word);
            if (flags == 0) continue;  // tombstone
            Probe probe;
            probe.flags = flags;
            probe.surrogate = static_cast<std::uint32_t>(
                slot.surrogate.load(std::memory_order_acquire));
            probe.score = std::bit_cast<double>(
                slot.score_bits.load(std::memory_order_acquire));
            out.emplace_back(static_cast<std::uint32_t>(word >> 32), probe);
        }
        return out;
    }

    [[nodiscard]] std::size_t live_entries() const { return live_; }

private:
    struct Slot {
        /// [id:32 | flags:32]. kEmptyWord = never used (probe chains end
        /// here); a valid id with flags == 0 is a tombstone (chains
        /// continue through it, probes report non-resident).
        std::atomic<std::uint64_t> key{kEmptyWord};
        std::atomic<std::uint64_t> surrogate{0};
        std::atomic<std::uint64_t> score_bits{0};
    };
    struct Table {
        explicit Table(std::size_t capacity) : slots(capacity) {}
        std::vector<Slot> slots;
        /// Occupied slots including tombstones (writer-only bookkeeping).
        std::size_t used = 0;
        [[nodiscard]] std::size_t mask() const { return slots.size() - 1; }
    };

    /// Real entries never collide with this: flags occupy 3 bits.
    static constexpr std::uint64_t kEmptyWord = ~0ULL;

    static void relax() {
#if defined(__x86_64__) || defined(_M_X64)
        _mm_pause();
#endif
    }

    [[nodiscard]] static std::size_t table_capacity_for(
        std::size_t entries) {
        return std::bit_ceil(std::max<std::size_t>(2 * entries + 8, 16));
    }

    [[nodiscard]] static std::size_t slot_index(std::uint32_t id,
                                                std::size_t mask) {
        // Fibonacci mix: dense small ids spread over the whole table.
        return static_cast<std::size_t>(
                   (static_cast<std::uint64_t>(id) * 0x9E3779B97F4A7C15ULL) >>
                   32) &
               mask;
    }

    [[nodiscard]] Slot* find(std::uint32_t id) {
        Table& table = *tables_.back();
        const std::size_t mask = table.mask();
        std::size_t i = slot_index(id, mask);
        for (std::size_t n = 0; n <= mask; ++n, i = (i + 1) & mask) {
            const std::uint64_t word =
                table.slots[i].key.load(std::memory_order_relaxed);
            if (word == kEmptyWord) return nullptr;
            if (static_cast<std::uint32_t>(word >> 32) == id) {
                return &table.slots[i];
            }
        }
        return nullptr;
    }

    [[nodiscard]] Slot& upsert(std::uint32_t id) {
        Table* table = tables_.back().get();
        if (4 * (table->used + 1) > 3 * table->slots.size()) {
            grow();
            table = tables_.back().get();
        }
        const std::size_t mask = table->mask();
        std::size_t i = slot_index(id, mask);
        Slot* tombstone = nullptr;
        for (std::size_t n = 0; n <= mask; ++n, i = (i + 1) & mask) {
            Slot& slot = table->slots[i];
            const std::uint64_t word =
                slot.key.load(std::memory_order_relaxed);
            if (word == kEmptyWord) {
                if (tombstone != nullptr) {
                    reset_slot(*tombstone, id);
                    return *tombstone;
                }
                ++table->used;
                reset_slot(slot, id);
                return slot;
            }
            if (static_cast<std::uint32_t>(word >> 32) == id) return slot;
            if (static_cast<std::uint32_t>(word) == 0 &&
                tombstone == nullptr) {
                tombstone = &slot;
            }
        }
        // Unreachable: the load-factor bound guarantees a free slot.
        grow();
        return upsert(id);
    }

    static void reset_slot(Slot& slot, std::uint32_t id) {
        slot.key.store(static_cast<std::uint64_t>(id) << 32,
                       std::memory_order_release);
        slot.surrogate.store(0, std::memory_order_release);
        slot.score_bits.store(0, std::memory_order_release);
    }

    void or_flags(Slot& slot, std::uint32_t id, std::uint32_t bits) {
        const std::uint64_t word = slot.key.load(std::memory_order_relaxed);
        const auto flags = static_cast<std::uint32_t>(word);
        if (flags == 0) ++live_;
        slot.key.store((static_cast<std::uint64_t>(id) << 32) |
                           (flags | bits),
                       std::memory_order_release);
    }

    void clear_flags(std::uint32_t id, std::uint32_t bits) {
        Slot* slot = find(id);
        if (slot == nullptr) return;
        const std::uint64_t word = slot->key.load(std::memory_order_relaxed);
        const auto flags = static_cast<std::uint32_t>(word);
        const std::uint32_t next = flags & ~bits;
        if (flags != 0 && next == 0) --live_;  // becomes a tombstone
        slot->key.store((word & ~0xFFFFFFFFULL) | next,
                        std::memory_order_release);
    }

    /// Doubles capacity: live entries rehash into a fresh table, the
    /// pointer swaps, the old allocation is retired (never freed) so
    /// in-flight readers stay memory-safe.
    void grow() {
        const Table& old = *tables_.back();
        auto grown =
            std::make_unique<Table>(std::max<std::size_t>(2 * old.slots.size(),
                                                          16));
        for (const Slot& slot : old.slots) {
            const std::uint64_t word =
                slot.key.load(std::memory_order_relaxed);
            if (word == kEmptyWord ||
                static_cast<std::uint32_t>(word) == 0) {
                continue;
            }
            const auto id = static_cast<std::uint32_t>(word >> 32);
            const std::size_t mask = grown->mask();
            std::size_t i = slot_index(id, mask);
            while (grown->slots[i].key.load(std::memory_order_relaxed) !=
                   kEmptyWord) {
                i = (i + 1) & mask;
            }
            Slot& fresh = grown->slots[i];
            fresh.key.store(word, std::memory_order_release);
            fresh.surrogate.store(
                slot.surrogate.load(std::memory_order_relaxed),
                std::memory_order_release);
            fresh.score_bits.store(
                slot.score_bits.load(std::memory_order_relaxed),
                std::memory_order_release);
            ++grown->used;
        }
        table_.store(grown.get(), std::memory_order_release);
        tables_.push_back(std::move(grown));
    }

    Seqlock seq_;
    std::atomic<Table*> table_{nullptr};
    /// Current table (back) plus retired predecessors, kept allocated for
    /// the lifetime of the view (see header comment).
    std::vector<std::unique_ptr<Table>> tables_;
    /// Entries with flags != 0 (writer-only bookkeeping).
    std::size_t live_ = 0;
};

}  // namespace spider::cache
