#pragma once

// Residency-change vocabulary shared by the cache layers and the WAL
// (DESIGN.md §12). The two in-memory sections and the SSD tier report
// admissions / evictions / score drift as `ResidencyRecord`s through a
// listener callback; `storage::CacheWal` appends them to an append-only
// log and periodically compacts the folded state into a snapshot. After
// a kill -9, replaying snapshot + log tail yields a `RestoreImage` from
// which `TwoLayerSemanticCache::restore_from_wal` rebuilds residency —
// the warm-restart path measured by the per-epoch cold_start_misses
// burn-down.

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace spider::cache {

enum class ResidencyOp : std::uint8_t {
    kAdmitImportance = 1,  ///< id entered the Importance section
    kEvictImportance = 2,  ///< id left the Importance section
    kScoreUpdate = 3,      ///< resident importance entry re-keyed
    kAdmitHomophily = 4,   ///< id became a homophily key (carries neighbors)
    kEvictHomophily = 5,   ///< homophily key evicted (FIFO or retraction)
    kSsdInsert = 6,        ///< id admitted to (or touched in) the SSD tier
    kSsdEvict = 7,         ///< id evicted from the SSD tier
};

/// One residency change. `score` is meaningful for the importance ops,
/// `generation` carries the homophily insert sequence (ABA disambiguator
/// for log readers), and `neighbors` only rides on kAdmitHomophily.
struct ResidencyRecord {
    ResidencyOp op = ResidencyOp::kAdmitImportance;
    std::uint32_t id = 0;
    double score = 0.0;
    std::uint64_t generation = 0;
    std::vector<std::uint32_t> neighbors;
};

using ResidencyListener = std::function<void(const ResidencyRecord&)>;

/// Folded residency state: what a crash-surviving log replays into and
/// what a compaction snapshot serializes. Orders matter — importance is
/// arbitrary (restore sorts by score), homophily is FIFO oldest-first,
/// ssd is LRU oldest-first — so re-inserting in order reproduces the
/// pre-crash eviction horizons.
struct RestoreImage {
    std::vector<std::pair<std::uint32_t, double>> importance;
    std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>>
        homophily;
    std::vector<std::uint32_t> ssd;

    [[nodiscard]] bool empty() const {
        return importance.empty() && homophily.empty() && ssd.empty();
    }
    [[nodiscard]] std::size_t total_items() const {
        return importance.size() + homophily.size() + ssd.size();
    }
};

}  // namespace spider::cache
