#pragma once

// Cache-policy interface shared by every eviction strategy in the repo.
// Caches here track *which sample ids are resident*; the actual payloads
// live in the dataset (see storage::CacheStore for the byte-budget view).
// Capacity is in items: the paper sizes caches as a percentage of the
// dataset, and samples within a dataset share one serialized size.
//
// Since PR 9 this seam also backs the *sections* of the two-layer
// semantic cache (DESIGN.md §13): ImportanceCache and HomophilyCache can
// delegate victim selection to any EvictionCache, so the paper's Table
// baselines and SpiderCache run on one code path and policies are
// swappable per section (and per server tenant).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace spider::cache {

class EvictionCache {
public:
    virtual ~EvictionCache() = default;

    /// Policy name for tables and logs.
    [[nodiscard]] virtual std::string name() const = 0;

    [[nodiscard]] virtual std::size_t size() const = 0;
    [[nodiscard]] virtual std::size_t capacity() const = 0;

    /// Pure membership test (no recency/frequency side effects).
    [[nodiscard]] virtual bool contains(std::uint32_t id) const = 0;

    /// Access on the read path: returns true on hit and applies the
    /// policy's bookkeeping (LRU recency bump, LFU frequency bump, ...).
    virtual bool touch(std::uint32_t id) = 0;

    /// Admission after a miss. Returns the evicted id, if any. Policies
    /// are free to reject admission (e.g. a full static cache), in which
    /// case they return nullopt and size() is unchanged.
    virtual std::optional<std::uint32_t> admit(std::uint32_t id) = 0;

    /// Elastic resize; evicts per-policy when shrinking (see peek_victim:
    /// shrink removes victims in exactly the policy's eviction order).
    virtual void set_capacity(std::size_t capacity) = 0;

    /// Value signal for cost-sensitive policies (GDSF, cost-aware): the
    /// importance score of `id`, delivered before admit() on the miss path
    /// and on every score refresh. Value-blind policies ignore it.
    virtual void note_score(std::uint32_t id, double score) {
        (void)id;
        (void)score;
    }

    /// The id the next admission/shrink would evict, or nullopt when
    /// empty. For RandomCache this previews (without consuming) the next
    /// rng draw, so it stays valid only until the next draw.
    [[nodiscard]] virtual std::optional<std::uint32_t> peek_victim()
        const = 0;

    /// Out-of-band removal (section exclusivity moves, cross-section
    /// rebalancing). Returns whether `id` was resident.
    virtual bool erase(std::uint32_t id) = 0;
};

/// Selectable eviction/admission policy, per cache section.
enum class PolicyKind : std::uint8_t {
    kSemantic,  ///< the paper's score-ordered admission (importance only)
    kLru,
    kLfu,
    kFifo,  ///< insertion order — the paper's homophily-section default
    kGdsf,  ///< greedy-dual-size-frequency: clock + frequency * score
    kCost,  ///< evict the lowest-scored resident (LRU tie-break)
    kRandom,
    kStatic,
};

/// Parses "semantic|lru|lfu|fifo|gdsf|cost|random|static" (case-
/// insensitive). Throws std::invalid_argument on anything else.
PolicyKind policy_from_string(const std::string& name);
std::string to_string(PolicyKind kind);

/// Section eligibility: random (nondeterministic victim preview) and
/// static (rejects instead of replacing) stay baseline-frontend-only.
[[nodiscard]] bool importance_policy_ok(PolicyKind kind);
[[nodiscard]] bool homophily_policy_ok(PolicyKind kind);

/// Policy choice for the two sections of a TwoLayerSemanticCache. The
/// defaults reproduce the paper exactly (and bit-identically to pre-seam
/// builds): score-ordered importance admission + FIFO homophily.
struct SectionPolicies {
    PolicyKind importance = PolicyKind::kSemantic;
    PolicyKind homophily = PolicyKind::kFifo;

    [[nodiscard]] bool is_default() const {
        return importance == PolicyKind::kSemantic &&
               homophily == PolicyKind::kFifo;
    }
    friend bool operator==(const SectionPolicies&,
                           const SectionPolicies&) = default;
};

/// Throws std::invalid_argument when either section names an ineligible
/// policy (see importance_policy_ok / homophily_policy_ok).
void validate(const SectionPolicies& policies);

/// Instantiates a section-eligible policy (kLru/kLfu/kFifo/kGdsf/kCost)
/// at `capacity`. Throws std::invalid_argument for the rest — kSemantic
/// and the default kFifo homophily path are built into the sections
/// themselves.
std::unique_ptr<EvictionCache> make_section_policy(PolicyKind kind,
                                                   std::size_t capacity);

}  // namespace spider::cache
