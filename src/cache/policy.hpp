#pragma once

// Cache-policy interface shared by every eviction strategy in the repo.
// Caches here track *which sample ids are resident*; the actual payloads
// live in the dataset (see storage::CacheStore for the byte-budget view).
// Capacity is in items: the paper sizes caches as a percentage of the
// dataset, and samples within a dataset share one serialized size.

#include <cstdint>
#include <optional>
#include <string>

namespace spider::cache {

class EvictionCache {
public:
    virtual ~EvictionCache() = default;

    /// Policy name for tables and logs.
    [[nodiscard]] virtual std::string name() const = 0;

    [[nodiscard]] virtual std::size_t size() const = 0;
    [[nodiscard]] virtual std::size_t capacity() const = 0;

    /// Pure membership test (no recency/frequency side effects).
    [[nodiscard]] virtual bool contains(std::uint32_t id) const = 0;

    /// Access on the read path: returns true on hit and applies the
    /// policy's bookkeeping (LRU recency bump, LFU frequency bump, ...).
    virtual bool touch(std::uint32_t id) = 0;

    /// Admission after a miss. Returns the evicted id, if any. Policies
    /// are free to reject admission (e.g. a full static cache), in which
    /// case they return nullopt and size() is unchanged.
    virtual std::optional<std::uint32_t> admit(std::uint32_t id) = 0;

    /// Elastic resize; evicts per-policy when shrinking.
    virtual void set_capacity(std::size_t capacity) = 0;
};

}  // namespace spider::cache
