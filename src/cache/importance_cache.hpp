#pragma once

// Importance Cache (paper Section 4.2, part 1): retains the samples with
// the highest global importance scores. A min-ordered structure exposes the
// lowest resident score so the admission rule of Algorithm 1 — "insert on
// miss only if the new sample outscores the current minimum" — is O(log n).
// Also serves as the cache layer of SHADE and of iCache's H-section, which
// share the score-driven eviction idea (with their own scoring functions).
//
// Since PR 9 the section is policy-pluggable (DESIGN.md §13): the default
// PolicyKind::kSemantic keeps the exact legacy min-heap code path
// (bit-identical), while kLru/kLfu/kFifo/kGdsf/kCost delegate admission
// and victim selection to an EvictionCache. Under a delegated policy the
// score-gated rejection of Algorithm 1 (Case 2) does not apply — the
// policy always replaces its own victim — and the write-path score
// refresh doubles as the policy's access signal (the read path is
// seqlock wait-free and cannot take recency bookkeeping).

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "cache/policy.hpp"

namespace spider::cache {

class ImportanceCache {
public:
    explicit ImportanceCache(std::size_t capacity,
                             PolicyKind kind = PolicyKind::kSemantic);

    [[nodiscard]] std::string name() const { return "Importance"; }
    [[nodiscard]] PolicyKind policy() const { return kind_; }
    [[nodiscard]] std::size_t size() const { return scores_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] bool contains(std::uint32_t id) const;

    /// Lowest resident score (the min-heap top in the paper's Figure 9).
    /// Under a delegated policy this is informational only — the
    /// admission gate is the policy's.
    [[nodiscard]] std::optional<double> min_score() const;
    [[nodiscard]] std::optional<double> score_of(std::uint32_t id) const;

    /// Admission rule. kSemantic: inserts when there is free space, or
    /// when `score` beats the current minimum (which is then evicted).
    /// Delegated policies: the policy decides — LRU/LFU/FIFO/GDSF/cost
    /// always admit, evicting their own victim when full. Returns the
    /// evicted id, if any; `admitted` reports whether the insert happened.
    struct AdmitResult {
        bool admitted = false;
        std::optional<std::uint32_t> evicted;
    };
    AdmitResult admit_scored(std::uint32_t id, double score);

    /// Re-keys a resident sample after its global score changed (scores
    /// drift every epoch as the model trains). Under a delegated policy
    /// this is also the access signal: the served stream reaches the
    /// section exactly here, so the policy's touch() rides along. Returns
    /// whether the id was resident (false = no-op), so callers mirroring
    /// residency into a read-optimized view know whether anything changed.
    bool update_score(std::uint32_t id, double score);

    /// Visits every resident (id, score) pair in unspecified order — used
    /// to rebuild a shard's residency view after a repartition.
    template <typename Fn>
    void for_each(Fn fn) const {
        for (const auto& [id, score] : scores_) fn(id, score);
    }

    /// Highest-scored resident accepted by `pred`, scanning from the top
    /// of the score order (degraded-mode surrogate search: serve the most
    /// important compatible sample we still hold). Nullopt when none.
    template <typename Pred>
    [[nodiscard]] std::optional<std::uint32_t> find_best_if(Pred pred) const {
        for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
            if (pred(it->second)) return it->second;
        }
        return std::nullopt;
    }

    bool erase(std::uint32_t id);
    /// Shrink evicts in the active policy's victim order (kSemantic:
    /// ascending score; delegated: the policy's peek_victim order).
    void set_capacity(std::size_t capacity);

private:
    void evict_min();
    void erase_tracking(std::uint32_t id);

    std::size_t capacity_;
    PolicyKind kind_;
    std::unique_ptr<EvictionCache> policy_;  // null in kSemantic mode
    std::unordered_map<std::uint32_t, double> scores_;
    std::set<std::pair<double, std::uint32_t>> order_;  // ascending score
};

}  // namespace spider::cache
