#pragma once

// Importance Cache (paper Section 4.2, part 1): retains the samples with
// the highest global importance scores. A min-ordered structure exposes the
// lowest resident score so the admission rule of Algorithm 1 — "insert on
// miss only if the new sample outscores the current minimum" — is O(log n).
// Also serves as the cache layer of SHADE and of iCache's H-section, which
// share the score-driven eviction idea (with their own scoring functions).

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

namespace spider::cache {

class ImportanceCache {
public:
    explicit ImportanceCache(std::size_t capacity);

    [[nodiscard]] std::string name() const { return "Importance"; }
    [[nodiscard]] std::size_t size() const { return scores_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] bool contains(std::uint32_t id) const;

    /// Lowest resident score (the min-heap top in the paper's Figure 9).
    [[nodiscard]] std::optional<double> min_score() const;
    [[nodiscard]] std::optional<double> score_of(std::uint32_t id) const;

    /// Admission rule: inserts when there is free space, or when `score`
    /// beats the current minimum (which is then evicted). Returns the
    /// evicted id, if any; `admitted` reports whether the insert happened.
    struct AdmitResult {
        bool admitted = false;
        std::optional<std::uint32_t> evicted;
    };
    AdmitResult admit_scored(std::uint32_t id, double score);

    /// Re-keys a resident sample after its global score changed (scores
    /// drift every epoch as the model trains). Returns whether the id was
    /// resident (false = no-op), so callers mirroring residency into a
    /// read-optimized view know whether anything changed.
    bool update_score(std::uint32_t id, double score);

    /// Visits every resident (id, score) pair in unspecified order — used
    /// to rebuild a shard's residency view after a repartition.
    template <typename Fn>
    void for_each(Fn fn) const {
        for (const auto& [id, score] : scores_) fn(id, score);
    }

    /// Highest-scored resident accepted by `pred`, scanning from the top
    /// of the score order (degraded-mode surrogate search: serve the most
    /// important compatible sample we still hold). Nullopt when none.
    template <typename Pred>
    [[nodiscard]] std::optional<std::uint32_t> find_best_if(Pred pred) const {
        for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
            if (pred(it->second)) return it->second;
        }
        return std::nullopt;
    }

    bool erase(std::uint32_t id);
    void set_capacity(std::size_t capacity);

private:
    void evict_min();

    std::size_t capacity_;
    std::unordered_map<std::uint32_t, double> scores_;
    std::set<std::pair<double, std::uint32_t>> order_;  // ascending score
};

}  // namespace spider::cache
