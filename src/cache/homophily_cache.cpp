#include "cache/homophily_cache.hpp"

#include <algorithm>

namespace spider::cache {

HomophilyCache::HomophilyCache(std::size_t capacity) : capacity_{capacity} {}

bool HomophilyCache::contains_key(std::uint32_t id) const {
    return entries_.contains(id);
}

std::optional<std::uint32_t> HomophilyCache::surrogate_for(
    std::uint32_t id) const {
    const auto it = neighbor_index_.find(id);
    if (it == neighbor_index_.end() || it->second.empty()) return std::nullopt;
    // Newest resident node listing this neighbor (its embedding is the
    // freshest, hence the closest surrogate).
    return it->second.back();
}

void HomophilyCache::evict_front() {
    const std::uint32_t victim = fifo_.front();
    fifo_.pop_front();
    const auto entry_it = entries_.find(victim);
    for (std::uint32_t neighbor : entry_it->second.neighbors) {
        const auto idx_it = neighbor_index_.find(neighbor);
        if (idx_it == neighbor_index_.end()) continue;
        auto& keys = idx_it->second;
        keys.erase(std::remove(keys.begin(), keys.end(), victim), keys.end());
        if (keys.empty()) neighbor_index_.erase(idx_it);
    }
    entries_.erase(entry_it);
}

std::optional<std::uint32_t> HomophilyCache::update(
    std::uint32_t key, std::span<const std::uint32_t> neighbors) {
    if (capacity_ == 0 || entries_.contains(key)) return std::nullopt;
    std::optional<std::uint32_t> evicted;
    if (entries_.size() >= capacity_) {
        evicted = fifo_.front();
        evict_front();
    }
    fifo_.push_back(key);
    Entry entry;
    entry.neighbors.assign(neighbors.begin(), neighbors.end());
    entry.fifo_pos = std::prev(fifo_.end());
    entry.seq = ++next_seq_;
    for (std::uint32_t neighbor : entry.neighbors) {
        neighbor_index_[neighbor].push_back(key);
    }
    entries_.emplace(key, std::move(entry));
    return evicted;
}

std::optional<std::uint32_t> HomophilyCache::oldest() const {
    if (fifo_.empty()) return std::nullopt;
    return fifo_.front();
}

std::optional<std::uint64_t> HomophilyCache::seq_of(std::uint32_t key) const {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second.seq;
}

std::optional<std::pair<std::uint32_t, std::vector<std::uint32_t>>>
HomophilyCache::evict_oldest() {
    if (fifo_.empty()) return std::nullopt;
    const std::uint32_t victim = fifo_.front();
    std::vector<std::uint32_t> neighbors{entries_.at(victim).neighbors};
    evict_front();
    return std::make_pair(victim, std::move(neighbors));
}

std::span<const std::uint32_t> HomophilyCache::neighbors_of(
    std::uint32_t key) const {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return {};
    return it->second.neighbors;
}

void HomophilyCache::set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    while (entries_.size() > capacity_) evict_front();
}

}  // namespace spider::cache
