#include "cache/homophily_cache.hpp"

#include <algorithm>
#include <stdexcept>

namespace spider::cache {

HomophilyCache::HomophilyCache(std::size_t capacity, PolicyKind kind)
    : capacity_{capacity}, kind_{kind} {
    if (kind_ != PolicyKind::kFifo) {
        if (!homophily_policy_ok(kind_)) {
            throw std::invalid_argument{
                "HomophilyCache: policy '" + to_string(kind_) +
                "' not eligible for the homophily section"};
        }
        policy_ = make_section_policy(kind_, capacity_);
    }
}

bool HomophilyCache::contains_key(std::uint32_t id) const {
    return entries_.contains(id);
}

std::optional<std::uint32_t> HomophilyCache::surrogate_for(
    std::uint32_t id) const {
    const auto it = neighbor_index_.find(id);
    if (it == neighbor_index_.end() || it->second.empty()) return std::nullopt;
    // Newest resident node listing this neighbor (its embedding is the
    // freshest, hence the closest surrogate).
    return it->second.back();
}

void HomophilyCache::evict_front() {
    evict_key(fifo_.front());
}

void HomophilyCache::evict_key(std::uint32_t victim) {
    const auto entry_it = entries_.find(victim);
    fifo_.erase(entry_it->second.fifo_pos);
    for (std::uint32_t neighbor : entry_it->second.neighbors) {
        const auto idx_it = neighbor_index_.find(neighbor);
        if (idx_it == neighbor_index_.end()) continue;
        auto& keys = idx_it->second;
        keys.erase(std::remove(keys.begin(), keys.end(), victim), keys.end());
        if (keys.empty()) neighbor_index_.erase(idx_it);
    }
    entries_.erase(entry_it);
    if (policy_) policy_->erase(victim);
}

std::optional<std::uint32_t> HomophilyCache::next_victim() const {
    if (policy_) return policy_->peek_victim();
    if (fifo_.empty()) return std::nullopt;
    return fifo_.front();
}

std::optional<std::uint32_t> HomophilyCache::update(
    std::uint32_t key, std::span<const std::uint32_t> neighbors) {
    if (capacity_ == 0 || entries_.contains(key)) return std::nullopt;
    std::optional<std::uint32_t> evicted;
    if (entries_.size() >= capacity_) {
        evicted = next_victim();
        evict_key(*evicted);
    }
    fifo_.push_back(key);
    Entry entry;
    entry.neighbors.assign(neighbors.begin(), neighbors.end());
    entry.fifo_pos = std::prev(fifo_.end());
    entry.seq = ++next_seq_;
    for (std::uint32_t neighbor : entry.neighbors) {
        neighbor_index_[neighbor].push_back(key);
    }
    entries_.emplace(key, std::move(entry));
    if (policy_) policy_->admit(key);  // never evicts: victim pre-removed
    return evicted;
}

bool HomophilyCache::touch_key(std::uint32_t key) {
    if (!entries_.contains(key)) return false;
    if (policy_) policy_->touch(key);
    return true;
}

std::optional<std::uint32_t> HomophilyCache::oldest() const {
    return next_victim();
}

std::optional<std::uint64_t> HomophilyCache::seq_of(std::uint32_t key) const {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second.seq;
}

std::optional<std::pair<std::uint32_t, std::vector<std::uint32_t>>>
HomophilyCache::evict_oldest() {
    const auto victim = next_victim();
    if (!victim) return std::nullopt;
    std::vector<std::uint32_t> neighbors{entries_.at(*victim).neighbors};
    evict_key(*victim);
    return std::make_pair(*victim, std::move(neighbors));
}

std::span<const std::uint32_t> HomophilyCache::neighbors_of(
    std::uint32_t key) const {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return {};
    return it->second.neighbors;
}

void HomophilyCache::set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    while (entries_.size() > capacity_) evict_key(*next_victim());
    if (policy_) policy_->set_capacity(capacity_);
}

}  // namespace spider::cache
