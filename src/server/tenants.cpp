#include "server/tenants.hpp"

#include <cmath>
#include <stdexcept>

namespace spider::server {

TenantCacheManager::TenantCacheManager(std::size_t total_items,
                                       std::vector<TenantSpec> specs,
                                       std::size_t shards,
                                       bool lockfree_reads)
    : total_items_{total_items}, specs_{std::move(specs)} {
    if (specs_.empty()) {
        throw std::invalid_argument{"TenantCacheManager: no tenants"};
    }
    if (specs_.size() > 256) {
        throw std::invalid_argument{
            "TenantCacheManager: tenant byte addresses at most 256 tenants"};
    }
    double pct_sum = 0.0;
    for (const TenantSpec& s : specs_) {
        if (s.capacity_pct <= 0.0) {
            throw std::invalid_argument{
                "TenantCacheManager: capacity_pct must be > 0"};
        }
        pct_sum += s.capacity_pct;
    }
    if (pct_sum > 100.0 + 1e-9) {
        throw std::invalid_argument{
            "TenantCacheManager: capacity_pct sums to > 100"};
    }
    tenants_.reserve(specs_.size());
    for (const TenantSpec& s : specs_) {
        const auto slice = static_cast<std::size_t>(std::floor(
            static_cast<double>(total_items) * s.capacity_pct / 100.0));
        if (slice == 0) {
            throw std::invalid_argument{
                "TenantCacheManager: tenant slice rounds to zero items"};
        }
        tenants_.push_back(std::make_unique<Tenant>(
            slice, s.imp_ratio, shards, lockfree_reads, s.policies));
    }
}

std::size_t TenantCacheManager::tenant_capacity(std::uint8_t t) const {
    return tenants_.at(t)->cache.total_capacity();
}

const TenantSpec& TenantCacheManager::spec(std::uint8_t t) const {
    return specs_.at(t);
}

cache::Lookup TenantCacheManager::lookup(std::uint8_t t, std::uint32_t id) {
    Tenant& tenant = *tenants_.at(t);
    const cache::Lookup r = tenant.cache.lookup(id);
    switch (r.kind) {
        case cache::HitKind::kImportance:
            tenant.hits_importance.fetch_add(1, std::memory_order_relaxed);
            break;
        case cache::HitKind::kHomophily:
            tenant.hits_homophily.fetch_add(1, std::memory_order_relaxed);
            break;
        case cache::HitKind::kMiss:
            tenant.misses.fetch_add(1, std::memory_order_relaxed);
            break;
    }
    return r;
}

bool TenantCacheManager::probe(std::uint8_t t, std::uint32_t id) const {
    return tenants_.at(t)->cache.probe(id);
}

bool TenantCacheManager::admit_after_fetch(std::uint8_t t, std::uint32_t id,
                                           double score) {
    Tenant& tenant = *tenants_.at(t);
    {
        const std::lock_guard lock{tenant.score_mu};
        tenant.scores[id] = score;
    }
    const auto result = tenant.cache.on_miss_fetched(id, score);
    if (result.admitted) {
        tenant.admitted.fetch_add(1, std::memory_order_relaxed);
    }
    return result.admitted;
}

void TenantCacheManager::put_score(std::uint8_t t, std::uint32_t id,
                                   double score) {
    Tenant& tenant = *tenants_.at(t);
    {
        const std::lock_guard lock{tenant.score_mu};
        tenant.scores[id] = score;
    }
    tenant.cache.update_importance_score(id, score);
}

double TenantCacheManager::score_of(std::uint8_t t, std::uint32_t id) const {
    const Tenant& tenant = *tenants_.at(t);
    const std::lock_guard lock{tenant.score_mu};
    const auto it = tenant.scores.find(id);
    return it == tenant.scores.end() ? 0.0 : it->second;
}

std::optional<std::uint32_t> TenantCacheManager::put_neighbors(
    std::uint8_t t, std::uint32_t key,
    std::span<const std::uint32_t> neighbors) {
    return tenants_.at(t)->cache.update_homophily(key, neighbors);
}

double TenantCacheManager::set_imp_ratio(std::uint8_t t, double ratio) {
    Tenant& tenant = *tenants_.at(t);
    tenant.cache.set_imp_ratio(ratio);
    return tenant.cache.imp_ratio();
}

TenantStatReply TenantCacheManager::stats(std::uint8_t t) const {
    const Tenant& tenant = *tenants_.at(t);
    TenantStatReply r;
    r.capacity = tenant.cache.total_capacity();
    r.imp_capacity = tenant.cache.importance_capacity();
    r.hom_capacity = tenant.cache.homophily_capacity();
    r.imp_size = tenant.cache.importance_size();
    r.hom_size = tenant.cache.homophily_size();
    r.hits_importance =
        tenant.hits_importance.load(std::memory_order_relaxed);
    r.hits_homophily = tenant.hits_homophily.load(std::memory_order_relaxed);
    r.misses = tenant.misses.load(std::memory_order_relaxed);
    r.admitted = tenant.admitted.load(std::memory_order_relaxed);
    r.imp_ratio = tenant.cache.imp_ratio();
    return r;
}

cache::TwoLayerSemanticCache& TenantCacheManager::cache(std::uint8_t t) {
    return tenants_.at(t)->cache;
}

const cache::TwoLayerSemanticCache& TenantCacheManager::cache(
    std::uint8_t t) const {
    return tenants_.at(t)->cache;
}

TenantCacheManager::IsolationReport TenantCacheManager::check_isolation()
    const {
    IsolationReport report;
    std::size_t slice_sum = 0;
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
        const cache::TwoLayerSemanticCache& c = tenants_[t]->cache;
        slice_sum += c.total_capacity();
        const auto fail = [&](const std::string& what) {
            report.ok = false;
            report.detail = "tenant " + std::to_string(t) + ": " + what;
        };
        if (c.importance_size() > c.importance_capacity()) {
            fail("importance section over its budget");
            return report;
        }
        if (c.homophily_size() > c.homophily_capacity()) {
            fail("homophily section over its budget");
            return report;
        }
        if (c.importance_capacity() + c.homophily_capacity() >
            c.total_capacity()) {
            fail("section budgets exceed the tenant slice");
            return report;
        }
    }
    if (slice_sum > total_items_) {
        report.ok = false;
        report.detail = "tenant slices sum past the server budget";
    }
    return report;
}

}  // namespace spider::server
