#include "server/protocol.hpp"

#include <algorithm>

namespace spider::server {

// ---------------------------------------------------------------- writer

std::size_t WireWriter::begin_frame(std::uint8_t b0, std::uint8_t b1) {
    const std::size_t off = buf_.size();
    u32(0);  // length placeholder
    u8(b0);
    u8(b1);
    u16(0);  // reserved
    return off;
}

void WireWriter::end_frame(std::size_t frame_off) {
    const std::size_t body = buf_.size() - frame_off - sizeof(std::uint32_t);
    const auto len = static_cast<std::uint32_t>(body);
    std::memcpy(buf_.data() + frame_off, &len, sizeof len);
}

// --------------------------------------------------------------- decoder

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
    if (poisoned_) return;
    // Compact the consumed prefix before growing — keeps the buffer at
    // O(unconsumed), not O(stream).
    if (pos_ > 0) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

FrameDecoder::Result FrameDecoder::next(Frame& out) {
    if (poisoned_) return Result::kMalformed;
    const std::size_t avail = buf_.size() - pos_;
    if (avail < sizeof(std::uint32_t)) return Result::kNeedMore;
    std::uint32_t len = 0;
    std::memcpy(&len, buf_.data() + pos_, sizeof len);
    if (len > kMaxFrameLen) {
        poisoned_ = true;
        return Result::kTooBig;
    }
    if (len < kHeaderLen) {
        poisoned_ = true;
        return Result::kMalformed;
    }
    if (avail < sizeof(std::uint32_t) + len) return Result::kNeedMore;
    const std::uint8_t* frame = buf_.data() + pos_ + sizeof(std::uint32_t);
    out.b0 = frame[0];
    out.b1 = frame[1];
    out.payload = {frame + kHeaderLen, len - kHeaderLen};
    pos_ += sizeof(std::uint32_t) + len;
    return Result::kFrame;
}

std::size_t FrameDecoder::buffered_frames() const {
    if (poisoned_) return 0;
    std::size_t n = 0;
    std::size_t p = pos_;
    while (buf_.size() - p >= sizeof(std::uint32_t)) {
        std::uint32_t len = 0;
        std::memcpy(&len, buf_.data() + p, sizeof len);
        if (len > kMaxFrameLen || len < kHeaderLen) break;
        if (buf_.size() - p < sizeof(std::uint32_t) + len) break;
        p += sizeof(std::uint32_t) + len;
        ++n;
    }
    return n;
}

// ---------------------------------------------------------------- requests

void encode_get(WireWriter& w, std::uint8_t tenant, std::uint32_t id,
                double score) {
    const auto off =
        w.begin_frame(static_cast<std::uint8_t>(Op::kGet), tenant);
    w.u32(id);
    w.f64(score);
    w.end_frame(off);
}

void encode_probe(WireWriter& w, std::uint8_t tenant, std::uint32_t id) {
    const auto off =
        w.begin_frame(static_cast<std::uint8_t>(Op::kProbe), tenant);
    w.u32(id);
    w.end_frame(off);
}

void encode_mget(WireWriter& w, std::uint8_t tenant,
                 std::span<const std::uint32_t> ids,
                 std::span<const double> scores) {
    const auto off =
        w.begin_frame(static_cast<std::uint8_t>(Op::kMget), tenant);
    w.u16(static_cast<std::uint16_t>(ids.size()));
    for (std::size_t i = 0; i < ids.size(); ++i) {
        w.u32(ids[i]);
        w.f64(i < scores.size() ? scores[i] : 0.0);
    }
    w.end_frame(off);
}

void encode_put_score(WireWriter& w, std::uint8_t tenant, std::uint32_t id,
                      double score) {
    const auto off =
        w.begin_frame(static_cast<std::uint8_t>(Op::kPutScore), tenant);
    w.u32(id);
    w.f64(score);
    w.end_frame(off);
}

void encode_stats(WireWriter& w) {
    const auto off = w.begin_frame(static_cast<std::uint8_t>(Op::kStats), 0);
    w.end_frame(off);
}

void encode_tenant_stat(WireWriter& w, std::uint8_t tenant) {
    const auto off =
        w.begin_frame(static_cast<std::uint8_t>(Op::kTenantStat), tenant);
    w.end_frame(off);
}

void encode_tenant_set_ratio(WireWriter& w, std::uint8_t tenant,
                             double ratio) {
    const auto off = w.begin_frame(
        static_cast<std::uint8_t>(Op::kTenantSetRatio), tenant);
    w.f64(ratio);
    w.end_frame(off);
}

void encode_put_neighbors(WireWriter& w, std::uint8_t tenant,
                          std::uint32_t key,
                          std::span<const std::uint32_t> neighbors) {
    const auto off =
        w.begin_frame(static_cast<std::uint8_t>(Op::kPutNeighbors), tenant);
    w.u32(key);
    w.u16(static_cast<std::uint16_t>(neighbors.size()));
    for (const std::uint32_t n : neighbors) w.u32(n);
    w.end_frame(off);
}

void encode_ping(WireWriter& w) {
    const auto off = w.begin_frame(static_cast<std::uint8_t>(Op::kPing), 0);
    w.end_frame(off);
}

void encode_get_data(WireWriter& w, std::uint8_t tenant, std::uint32_t id,
                     double score) {
    const auto off =
        w.begin_frame(static_cast<std::uint8_t>(Op::kGetData), tenant);
    w.u32(id);
    w.f64(score);
    w.end_frame(off);
}

// ----------------------------------------------------------------- replies

void encode_get_reply(WireWriter& w, const GetReply& r) {
    w.u8(static_cast<std::uint8_t>(r.kind));
    w.u32(r.served_id);
}

void encode_get_data_reply(WireWriter& w, const GetDataReply& r) {
    encode_get_reply(w, r.base);
    w.u32(static_cast<std::uint32_t>(r.payload.size()));
    w.blob(r.payload);
}

void encode_stats_reply(WireWriter& w, const StatsReply& r) {
    w.u64(r.conns_accepted);
    w.u64(r.conns_open);
    w.u64(r.frames);
    w.u64(r.batches);
    w.u64(r.single_frame_batches);
    w.u64(r.max_batch);
    w.u64(r.gets);
    w.u64(r.probes);
    w.u64(r.mget_keys);
    w.u64(r.put_scores);
    w.u64(r.errors);
    w.u64(r.dropped_frames);
    w.u64(r.in_flight);
    w.u64(r.bytes_in);
    w.u64(r.bytes_out);
}

void encode_tenant_stat_reply(WireWriter& w, const TenantStatReply& r) {
    w.u64(r.capacity);
    w.u64(r.imp_capacity);
    w.u64(r.hom_capacity);
    w.u64(r.imp_size);
    w.u64(r.hom_size);
    w.u64(r.hits_importance);
    w.u64(r.hits_homophily);
    w.u64(r.misses);
    w.u64(r.admitted);
    w.f64(r.imp_ratio);
}

std::optional<GetReply> decode_get_reply(
    std::span<const std::uint8_t> payload) {
    WireReader r{payload};
    GetReply g;
    g.kind = static_cast<ServeKind>(r.u8());
    g.served_id = r.u32();
    if (!r.done()) return std::nullopt;
    return g;
}

std::optional<GetDataReply> decode_get_data_reply(
    std::span<const std::uint8_t> payload) {
    WireReader r{payload};
    GetDataReply g;
    g.base.kind = static_cast<ServeKind>(r.u8());
    g.base.served_id = r.u32();
    const std::uint32_t len = r.u32();
    const auto bytes = r.bytes(len);
    if (!r.done()) return std::nullopt;
    g.payload.assign(bytes.begin(), bytes.end());
    return g;
}

std::optional<std::vector<GetReply>> decode_mget_reply(
    std::span<const std::uint8_t> payload) {
    WireReader r{payload};
    const std::uint16_t n = r.u16();
    std::vector<GetReply> out;
    out.reserve(n);
    for (std::uint16_t i = 0; i < n; ++i) {
        GetReply g;
        g.kind = static_cast<ServeKind>(r.u8());
        g.served_id = r.u32();
        out.push_back(g);
    }
    if (!r.done()) return std::nullopt;
    return out;
}

std::optional<StatsReply> decode_stats_reply(
    std::span<const std::uint8_t> payload) {
    WireReader r{payload};
    StatsReply s;
    s.conns_accepted = r.u64();
    s.conns_open = r.u64();
    s.frames = r.u64();
    s.batches = r.u64();
    s.single_frame_batches = r.u64();
    s.max_batch = r.u64();
    s.gets = r.u64();
    s.probes = r.u64();
    s.mget_keys = r.u64();
    s.put_scores = r.u64();
    s.errors = r.u64();
    s.dropped_frames = r.u64();
    s.in_flight = r.u64();
    s.bytes_in = r.u64();
    s.bytes_out = r.u64();
    if (!r.done()) return std::nullopt;
    return s;
}

std::optional<TenantStatReply> decode_tenant_stat_reply(
    std::span<const std::uint8_t> payload) {
    WireReader r{payload};
    TenantStatReply t;
    t.capacity = r.u64();
    t.imp_capacity = r.u64();
    t.hom_capacity = r.u64();
    t.imp_size = r.u64();
    t.hom_size = r.u64();
    t.hits_importance = r.u64();
    t.hits_homophily = r.u64();
    t.misses = r.u64();
    t.admitted = r.u64();
    t.imp_ratio = r.f64();
    if (!r.done()) return std::nullopt;
    return t;
}

const char* to_string(Status status) {
    switch (status) {
        case Status::kOk: return "ok";
        case Status::kBadOp: return "bad-op";
        case Status::kBadTenant: return "bad-tenant";
        case Status::kBadPayload: return "bad-payload";
        case Status::kFrameTooBig: return "frame-too-big";
        case Status::kShutdown: return "shutdown";
    }
    return "unknown";
}

const char* to_string(Op op) {
    switch (op) {
        case Op::kGet: return "GET";
        case Op::kProbe: return "PROBE";
        case Op::kMget: return "MGET";
        case Op::kPutScore: return "PUT_SCORE";
        case Op::kStats: return "STATS";
        case Op::kTenantStat: return "TENANT_STAT";
        case Op::kTenantSetRatio: return "TENANT_SET_RATIO";
        case Op::kPutNeighbors: return "PUT_NEIGHBORS";
        case Op::kPing: return "PING";
        case Op::kGetData: return "GET_DATA";
    }
    return "unknown";
}

std::size_t get_request_wire_len() {
    std::vector<std::uint8_t> buf;
    WireWriter w{buf};
    encode_get(w, 0, 0, 0.0);
    return buf.size();
}

std::size_t get_reply_wire_len() {
    std::vector<std::uint8_t> buf;
    WireWriter w{buf};
    const auto off =
        w.begin_frame(static_cast<std::uint8_t>(Op::kGet),
                      static_cast<std::uint8_t>(Status::kOk));
    encode_get_reply(w, GetReply{});
    w.end_frame(off);
    return buf.size();
}

}  // namespace spider::server
