#pragma once

// Multi-tenant front-end over the two-layer semantic cache (DESIGN.md
// §10.3): N training jobs share one served SpiderCache, each behind an
// isolated capacity slice. Isolation is structural — every tenant owns a
// private TwoLayerSemanticCache sized to floor(total * capacity_pct/100)
// items — so a tenant's eviction storm cannot displace another tenant's
// residents and a slice can never grow past its budget (the DCI-style
// workload-aware allocation is then just a choice of percentages and
// per-tenant imp_ratio).
//
// Thread safety: lookups/probes ride each cache's seqlock wait-free read
// path; admissions and score updates take only that tenant's shard locks.
// The per-tenant score table carries its own mutex. The manager itself
// adds no cross-tenant synchronization — the isolation stress test hammers
// all tenants from concurrent threads.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/semantic_cache.hpp"
#include "server/protocol.hpp"

namespace spider::server {

struct TenantSpec {
    /// Slice of the server's total cache capacity, in percent.
    double capacity_pct = 100.0;
    /// Initial Importance-section fraction of this tenant's slice.
    double imp_ratio = 0.9;
    /// Per-tenant eviction policies (DESIGN.md §13): one tenant can run
    /// the paper's semantic admission while another runs plain LRU over
    /// the same served budget. Defaults are the paper's.
    cache::SectionPolicies policies{};
};

class TenantCacheManager {
public:
    /// @param total_items  Server-wide cache budget, in items.
    /// @param specs        One entry per tenant; capacity_pct must sum to
    ///                     <= 100 (+epsilon). Throws std::invalid_argument
    ///                     otherwise, or when specs is empty / > 256.
    /// @param shards       Shard count per tenant cache (0 = auto).
    /// @param lockfree_reads  Seqlock read path on the tenant caches.
    TenantCacheManager(std::size_t total_items, std::vector<TenantSpec> specs,
                       std::size_t shards = 0, bool lockfree_reads = true);

    [[nodiscard]] std::size_t num_tenants() const { return tenants_.size(); }
    [[nodiscard]] std::size_t total_items() const { return total_items_; }
    [[nodiscard]] bool valid_tenant(std::uint8_t t) const {
        return t < tenants_.size();
    }
    /// Items budgeted to tenant `t` (its cache's total capacity).
    [[nodiscard]] std::size_t tenant_capacity(std::uint8_t t) const;
    [[nodiscard]] const TenantSpec& spec(std::uint8_t t) const;

    /// Read path: Case 1/3 lookup in tenant `t`'s cache. Wait-free when
    /// lockfree reads are on. Bumps the tenant hit/miss counters.
    [[nodiscard]] cache::Lookup lookup(std::uint8_t t, std::uint32_t id);
    /// Residency probe without counter side effects.
    [[nodiscard]] bool probe(std::uint8_t t, std::uint32_t id) const;

    /// Miss path, after the backing fetch succeeded: records `score` in
    /// the tenant's score table and applies the Case 2/4 admission rule.
    /// Returns whether the id was admitted.
    bool admit_after_fetch(std::uint8_t t, std::uint32_t id, double score);

    /// Score refresh (scores drift every epoch): updates the table and
    /// re-keys the entry if resident.
    void put_score(std::uint8_t t, std::uint32_t id, double score);
    [[nodiscard]] double score_of(std::uint8_t t, std::uint32_t id) const;

    /// Homophily offer (Algorithm 1 line 22) for tenant `t`.
    std::optional<std::uint32_t> put_neighbors(
        std::uint8_t t, std::uint32_t key,
        std::span<const std::uint32_t> neighbors);

    /// Elastic repartition of one tenant's slice. Returns the applied
    /// (clamped) ratio.
    double set_imp_ratio(std::uint8_t t, double ratio);

    [[nodiscard]] TenantStatReply stats(std::uint8_t t) const;

    /// Direct cache access for the freeze-oracle isolation tests.
    [[nodiscard]] cache::TwoLayerSemanticCache& cache(std::uint8_t t);
    [[nodiscard]] const cache::TwoLayerSemanticCache& cache(
        std::uint8_t t) const;

    /// Capacity-slice invariants, checkable at any quiescent point:
    /// every tenant's per-section sizes are within its slice's budgets and
    /// the slices sum to at most the server budget. `detail` names the
    /// first violated invariant.
    struct IsolationReport {
        bool ok = true;
        std::string detail;
    };
    [[nodiscard]] IsolationReport check_isolation() const;

private:
    struct Tenant {
        Tenant(std::size_t capacity, double imp_ratio, std::size_t shards,
               bool lockfree, const cache::SectionPolicies& policies)
            : cache{capacity, imp_ratio,
                    shards == 0 ? cache::TwoLayerSemanticCache::kAutoShards
                                : shards,
                    lockfree, policies} {}

        cache::TwoLayerSemanticCache cache;
        mutable std::mutex score_mu;
        std::unordered_map<std::uint32_t, double> scores;
        std::atomic<std::uint64_t> hits_importance{0};
        std::atomic<std::uint64_t> hits_homophily{0};
        std::atomic<std::uint64_t> misses{0};
        std::atomic<std::uint64_t> admitted{0};
    };

    std::size_t total_items_;
    std::vector<TenantSpec> specs_;
    std::vector<std::unique_ptr<Tenant>> tenants_;
};

}  // namespace spider::server
