#pragma once

// Blocking client for the cache service: the loader-side half of the wire
// protocol. One Client owns one TCP connection. Requests are queued into
// a local pipeline buffer and shipped with a single write() per flush —
// exactly the depth-D pipelining the netbench sweeps — after which the
// matching responses are read back in order. The convenience one-shots
// (get / probe / ...) are queue + flush of a single frame.
//
// Not thread-safe: callers that share a Client across threads serialize
// externally (sim::NetworkFrontend does).

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "server/protocol.hpp"

namespace spider::server {

/// One decoded response frame.
struct Response {
    Op op = static_cast<Op>(0);
    Status status = Status::kOk;
    std::vector<std::uint8_t> payload;
};

class Client {
public:
    Client() = default;
    ~Client();
    Client(Client&& other) noexcept;
    Client& operator=(Client&& other) noexcept;
    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /// Connects (blocking). Throws std::runtime_error on failure.
    void connect(const std::string& host, std::uint16_t port);
    void close();
    [[nodiscard]] bool connected() const { return fd_ >= 0; }
    /// Raw socket (tests that want to write malformed bytes directly).
    [[nodiscard]] int fd() const { return fd_; }

    // ---- pipelined mode: queue N requests, then flush() once.
    void queue_get(std::uint8_t tenant, std::uint32_t id, double score);
    void queue_probe(std::uint8_t tenant, std::uint32_t id);
    void queue_mget(std::uint8_t tenant, std::span<const std::uint32_t> ids,
                    std::span<const double> scores);
    void queue_put_score(std::uint8_t tenant, std::uint32_t id, double score);
    void queue_stats();
    void queue_tenant_stat(std::uint8_t tenant);
    void queue_tenant_set_ratio(std::uint8_t tenant, double ratio);
    void queue_put_neighbors(std::uint8_t tenant, std::uint32_t key,
                             std::span<const std::uint32_t> neighbors);
    void queue_ping();
    void queue_get_data(std::uint8_t tenant, std::uint32_t id, double score);
    [[nodiscard]] std::size_t queued() const { return queued_; }

    /// Sends every queued frame in one write, then reads exactly that
    /// many responses. Throws std::runtime_error on I/O failure or a
    /// garbled response stream.
    std::vector<Response> flush();

    /// Sends queued frames without reading responses (tests that close
    /// mid-pipeline). Leaves the response stream to the caller.
    void send_only();

    // ---- one-shot conveniences (throw on transport error; protocol
    // errors come back in the Response/reply status).
    GetReply get(std::uint8_t tenant, std::uint32_t id, double score);
    bool probe(std::uint8_t tenant, std::uint32_t id);
    std::vector<GetReply> mget(std::uint8_t tenant,
                               std::span<const std::uint32_t> ids,
                               std::span<const double> scores);
    void put_score(std::uint8_t tenant, std::uint32_t id, double score);
    StatsReply stats();
    TenantStatReply tenant_stat(std::uint8_t tenant);
    double tenant_set_ratio(std::uint8_t tenant, double ratio);
    bool put_neighbors(std::uint8_t tenant, std::uint32_t key,
                       std::span<const std::uint32_t> neighbors);
    void ping();
    /// GET that also returns the sample's stored bytes (SSD block-store
    /// payload on a tier hit, remote payload on a miss, payload_read hook
    /// on a memory hit). Empty payload = server has no bytes for the id.
    GetDataReply get_data(std::uint8_t tenant, std::uint32_t id,
                          double score);

private:
    /// Writes all of `bytes` (blocking, EINTR-safe).
    void write_all(std::span<const std::uint8_t> bytes);
    /// Reads until `n` complete response frames were decoded.
    std::vector<Response> read_responses(std::size_t n);
    Response one_shot();

    int fd_ = -1;
    std::vector<std::uint8_t> pipeline_;
    std::size_t queued_ = 0;
    FrameDecoder decoder_;
};

}  // namespace spider::server
