#pragma once

// Cache-as-a-service front door (DESIGN.md §10): a poll(2)-driven event
// loop serving the length-prefixed binary protocol of protocol.hpp over
// loopback/LAN TCP. Design points:
//
//   pipelining  a connection may send any number of request frames back
//               to back; the server answers strictly in order.
//   batching    each readable socket is drained to EAGAIN, then every
//               complete frame in the buffer (up to max_pipeline per
//               chunk) is serviced in one pass and the responses leave in
//               a single gathered write — the syscall amplification that
//               bench_netbench measures.
//   lock-free   the hot GET/PROBE path rides the tenant caches' seqlock
//               residency views (PR 5), so the event loop adds zero locks
//               of its own; admissions take only the touched shard's
//               mutex inside the cache.
//
// The loop runs on one background thread (start()/stop()); poll keeps it
// portable (no epoll dependency), and at the few-hundred-connection scale
// of the netbench the fd-scan cost is noise against the cache work.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.hpp"
#include "server/tenants.hpp"
#include "storage/clock.hpp"

namespace spider::server {

struct ServerConfig {
    std::string host = "127.0.0.1";
    /// 0 = ephemeral; the bound port is reported by port() after start().
    std::uint16_t port = 0;
    /// Frames serviced per connection per batch chunk: the responses of
    /// one chunk are flushed together, so this bounds both the gathered
    /// write size and how long one greedy pipeliner can hold the loop.
    std::size_t max_pipeline = 64;
    /// Server-wide cache budget in items, split across tenants.
    std::size_t cache_items = 4096;
    /// Shard count per tenant cache (0 = auto).
    std::size_t cache_shards = 0;
    /// Seqlock read path on the tenant caches.
    bool lockfree_reads = true;
    std::vector<TenantSpec> tenants{TenantSpec{}};
};

/// Outcome of a backing-store fetch on the GET miss path.
struct MissOutcome {
    bool ok = true;        ///< false = fetch failed (nothing admitted)
    bool from_ssd = false; ///< served by the shared SSD tier
    /// Sample bytes that came back with the fetch (SSD block-store read
    /// or remote payload). Returned verbatim by GET_DATA; plain GET
    /// ignores it.
    std::vector<std::uint8_t> payload;
};

/// Backing fetch hook: SSD tier + ResilientStore in production wiring
/// (tools/spider_server_main.cpp), a stub in pure-cache deployments and
/// most tests. `now` is the server's virtual clock (steady time since
/// start), which drives fault-model outage windows. Called only from the
/// event-loop thread.
using MissFetchFn = std::function<MissOutcome(
    std::uint8_t tenant, std::uint32_t id, storage::SimDuration now)>;

/// Payload source for GET_DATA requests served from the in-memory cache
/// (a hit never reaches miss_fetch, so the bytes come from here — the
/// dataset/decode layer in production wiring). Empty return = no bytes.
/// Called only from the event-loop thread.
using PayloadReadFn = std::function<std::vector<std::uint8_t>(
    std::uint8_t tenant, std::uint32_t id)>;

class SpiderServer {
public:
    explicit SpiderServer(ServerConfig config, MissFetchFn miss_fetch = {},
                          PayloadReadFn payload_read = {});
    ~SpiderServer();

    SpiderServer(const SpiderServer&) = delete;
    SpiderServer& operator=(const SpiderServer&) = delete;

    /// Binds, listens, and spawns the event-loop thread. Throws
    /// std::runtime_error on socket/bind failure.
    void start();
    /// Idempotent; joins the loop thread and closes every connection.
    void stop();

    [[nodiscard]] bool running() const {
        return running_.load(std::memory_order_acquire);
    }
    /// Bound port (valid after start(); resolves port 0 requests).
    [[nodiscard]] std::uint16_t port() const { return bound_port_; }
    [[nodiscard]] const ServerConfig& config() const { return config_; }

    [[nodiscard]] TenantCacheManager& tenants() { return tenants_; }
    [[nodiscard]] const TenantCacheManager& tenants() const {
        return tenants_;
    }

    /// Snapshot of the server-wide counters (same data the STATS op
    /// returns; safe from any thread).
    [[nodiscard]] StatsReply stats() const;

private:
    struct Conn {
        int fd = -1;
        FrameDecoder decoder;
        std::vector<std::uint8_t> wbuf;
        std::size_t woff = 0;
        bool want_write = false;
        /// Poisoned stream or fatal write error: close once drained.
        bool closing = false;
    };

    void run_loop();
    void accept_ready();
    /// Drains the socket, services buffered frames in max_pipeline-sized
    /// chunks with one gathered flush per chunk. Returns false when the
    /// connection died.
    bool handle_readable(Conn& conn);
    /// Services up to max_pipeline frames; returns frames processed.
    std::size_t service_chunk(Conn& conn);
    void process_frame(Conn& conn, const Frame& frame);
    void error_reply(Conn& conn, Op op, Status status);
    /// Writes wbuf until done or EAGAIN; sets want_write on residue.
    /// Returns false on fatal write error.
    bool flush(Conn& conn);
    void close_conn(int fd);
    [[nodiscard]] storage::SimDuration virtual_now() const;

    ServerConfig config_;
    MissFetchFn miss_fetch_;
    PayloadReadFn payload_read_;
    TenantCacheManager tenants_;

    int listen_fd_ = -1;
    int wake_read_fd_ = -1;
    int wake_write_fd_ = -1;
    std::uint16_t bound_port_ = 0;
    std::thread loop_;
    std::atomic<bool> running_{false};
    std::map<int, Conn> conns_;  // event-loop thread only
    std::chrono::steady_clock::time_point start_time_;

    // Counters: written by the loop thread, read by stats() callers.
    std::atomic<std::uint64_t> conns_accepted_{0};
    std::atomic<std::uint64_t> conns_open_{0};
    std::atomic<std::uint64_t> frames_decoded_{0};
    std::atomic<std::uint64_t> frames_answered_{0};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> single_frame_batches_{0};
    std::atomic<std::uint64_t> max_batch_{0};
    std::atomic<std::uint64_t> gets_{0};
    std::atomic<std::uint64_t> probes_{0};
    std::atomic<std::uint64_t> mget_keys_{0};
    std::atomic<std::uint64_t> put_scores_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> dropped_frames_{0};
    std::atomic<std::uint64_t> bytes_in_{0};
    std::atomic<std::uint64_t> bytes_out_{0};
};

}  // namespace spider::server
