#include "server/config_io.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace spider::server {

namespace {

std::vector<double> parse_list(const std::string& text, const char* key) {
    std::vector<double> out;
    std::stringstream ss{text};
    std::string item;
    while (std::getline(ss, item, ',')) {
        try {
            std::size_t used = 0;
            const double v = std::stod(item, &used);
            while (used < item.size() &&
                   std::isspace(static_cast<unsigned char>(item[used]))) {
                ++used;
            }
            if (used != item.size()) throw std::invalid_argument{item};
            out.push_back(v);
        } catch (const std::exception&) {
            throw std::invalid_argument{std::string{"server config: bad "} +
                                        key + " entry '" + item + "'"};
        }
    }
    if (out.empty()) {
        throw std::invalid_argument{std::string{"server config: empty "} +
                                    key + " list"};
    }
    return out;
}

std::vector<std::string> parse_name_list(const std::string& text,
                                         const char* key) {
    std::vector<std::string> out;
    std::stringstream ss{text};
    std::string item;
    while (std::getline(ss, item, ',')) {
        const auto begin = item.find_first_not_of(" \t");
        if (begin == std::string::npos) {
            throw std::invalid_argument{std::string{"server config: bad "} +
                                        key + " entry '" + item + "'"};
        }
        const auto end = item.find_last_not_of(" \t");
        out.push_back(item.substr(begin, end - begin + 1));
    }
    if (out.empty()) {
        throw std::invalid_argument{std::string{"server config: empty "} +
                                    key + " list"};
    }
    return out;
}

}  // namespace

ServerConfig server_config_from(const util::Config& config) {
    ServerConfig sc;
    sc.port = static_cast<std::uint16_t>(
        config.get_int("server.port", sc.port));
    sc.max_pipeline = static_cast<std::size_t>(config.get_int(
        "server.max_pipeline", static_cast<std::int64_t>(sc.max_pipeline)));
    if (sc.max_pipeline == 0) {
        throw std::invalid_argument{"server config: max_pipeline must be > 0"};
    }
    sc.cache_items = static_cast<std::size_t>(config.get_int(
        "server.cache_items", static_cast<std::int64_t>(sc.cache_items)));
    sc.cache_shards = static_cast<std::size_t>(config.get_int(
        "server.cache_shards", static_cast<std::int64_t>(sc.cache_shards)));
    sc.lockfree_reads = config.get_bool("server.lockfree_reads", true);

    const auto n_tenants =
        static_cast<std::size_t>(config.get_int("server.tenants", 1));
    if (n_tenants == 0 || n_tenants > 256) {
        throw std::invalid_argument{
            "server config: tenants must be in [1, 256]"};
    }
    std::vector<double> pct(n_tenants, 100.0 / static_cast<double>(n_tenants));
    if (config.contains("server.capacity_pct")) {
        pct = parse_list(config.get_string("server.capacity_pct"),
                         "capacity_pct");
    }
    std::vector<double> ratio(n_tenants, 0.9);
    if (config.contains("server.imp_ratio")) {
        ratio = parse_list(config.get_string("server.imp_ratio"), "imp_ratio");
    }
    // Per-tenant eviction policies (DESIGN.md §13), one name per tenant.
    std::vector<std::string> imp_policy(n_tenants, "semantic");
    if (config.contains("server.imp_policy")) {
        imp_policy = parse_name_list(config.get_string("server.imp_policy"),
                                     "imp_policy");
    }
    std::vector<std::string> hom_policy(n_tenants, "fifo");
    if (config.contains("server.hom_policy")) {
        hom_policy = parse_name_list(config.get_string("server.hom_policy"),
                                     "hom_policy");
    }
    if (pct.size() != n_tenants || ratio.size() != n_tenants ||
        imp_policy.size() != n_tenants || hom_policy.size() != n_tenants) {
        throw std::invalid_argument{
            "server config: capacity_pct/imp_ratio/imp_policy/hom_policy "
            "list length != tenants"};
    }
    sc.tenants.clear();
    for (std::size_t t = 0; t < n_tenants; ++t) {
        cache::SectionPolicies policies;
        policies.importance = cache::policy_from_string(imp_policy[t]);
        policies.homophily = cache::policy_from_string(hom_policy[t]);
        cache::validate(policies);  // section eligibility, at parse time
        sc.tenants.push_back(TenantSpec{.capacity_pct = pct[t],
                                        .imp_ratio = ratio[t],
                                        .policies = policies});
    }
    // Fail at parse time, not at server construction: the same checks
    // TenantCacheManager enforces, minus the slice-size one that needs
    // cache_items context it also has here.
    double pct_sum = 0.0;
    for (const TenantSpec& t : sc.tenants) pct_sum += t.capacity_pct;
    if (pct_sum > 100.0 + 1e-9) {
        throw std::invalid_argument{
            "server config: capacity_pct sums to > 100"};
    }
    return sc;
}

std::string serialize_server_config(const ServerConfig& config) {
    std::ostringstream out;
    out << "[server]\n";
    out << "port = " << config.port << "\n";
    out << "max_pipeline = " << config.max_pipeline << "\n";
    out << "cache_items = " << config.cache_items << "\n";
    out << "cache_shards = " << config.cache_shards << "\n";
    out << "lockfree_reads = " << (config.lockfree_reads ? "true" : "false")
        << "\n";
    out << "tenants = " << config.tenants.size() << "\n";
    out << "capacity_pct = ";
    for (std::size_t t = 0; t < config.tenants.size(); ++t) {
        out << (t == 0 ? "" : ",") << config.tenants[t].capacity_pct;
    }
    out << "\nimp_ratio = ";
    for (std::size_t t = 0; t < config.tenants.size(); ++t) {
        out << (t == 0 ? "" : ",") << config.tenants[t].imp_ratio;
    }
    out << "\nimp_policy = ";
    for (std::size_t t = 0; t < config.tenants.size(); ++t) {
        out << (t == 0 ? "" : ",")
            << cache::to_string(config.tenants[t].policies.importance);
    }
    out << "\nhom_policy = ";
    for (std::size_t t = 0; t < config.tenants.size(); ++t) {
        out << (t == 0 ? "" : ",")
            << cache::to_string(config.tenants[t].policies.homophily);
    }
    out << "\n";
    return out.str();
}

}  // namespace spider::server
