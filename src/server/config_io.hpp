#pragma once

// [server] INI section <-> ServerConfig. The per-tenant knobs are comma
// lists aligned by position (tenant 0 first):
//
//   [server]
//   port = 7071            ; 0 = ephemeral
//   max_pipeline = 64      ; frames serviced per connection per batch
//   cache_items = 4096     ; server-wide budget, split across tenants
//   cache_shards = 0       ; per-tenant shard count (0 = auto)
//   lockfree_reads = true
//   tenants = 3
//   capacity_pct = 50,30,20   ; default: even split of 100%
//   imp_ratio = 0.9,0.8,0.9   ; default: 0.9 each
//
// serialize -> parse round-trips exactly (config_test pins this).

#include <string>

#include "server/server.hpp"
#include "util/config.hpp"

namespace spider::server {

/// Builds a ServerConfig from the `server.*` keys of a parsed config.
/// Missing keys use the defaults above; inconsistent list lengths or a
/// capacity_pct sum > 100 throw std::invalid_argument.
[[nodiscard]] ServerConfig server_config_from(const util::Config& config);

/// Emits the `[server]` section (every key explicit) such that
/// server_config_from(parse(serialize(c))) == c.
[[nodiscard]] std::string serialize_server_config(const ServerConfig& config);

}  // namespace spider::server
