#include "server/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace spider::server {

namespace {

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

SpiderServer::SpiderServer(ServerConfig config, MissFetchFn miss_fetch,
                           PayloadReadFn payload_read)
    : config_{std::move(config)},
      miss_fetch_{std::move(miss_fetch)},
      payload_read_{std::move(payload_read)},
      tenants_{config_.cache_items, config_.tenants, config_.cache_shards,
               config_.lockfree_reads} {}

SpiderServer::~SpiderServer() { stop(); }

void SpiderServer::start() {
    if (running_.load(std::memory_order_acquire)) return;

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        throw std::runtime_error{"SpiderServer: socket() failed"};
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error{"SpiderServer: bad host '" + config_.host +
                                 "'"};
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error{"SpiderServer: bind() failed: " +
                                 std::string{std::strerror(errno)}};
    }
    if (::listen(listen_fd_, 512) != 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error{"SpiderServer: listen() failed"};
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len);
    bound_port_ = ntohs(bound.sin_port);
    set_nonblocking(listen_fd_);

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error{"SpiderServer: pipe() failed"};
    }
    wake_read_fd_ = pipe_fds[0];
    wake_write_fd_ = pipe_fds[1];
    set_nonblocking(wake_read_fd_);
    set_nonblocking(wake_write_fd_);

    start_time_ = std::chrono::steady_clock::now();
    running_.store(true, std::memory_order_release);
    loop_ = std::thread{[this] { run_loop(); }};
}

void SpiderServer::stop() {
    if (running_.exchange(false, std::memory_order_acq_rel)) {
        const char byte = 'x';
        [[maybe_unused]] const auto n = ::write(wake_write_fd_, &byte, 1);
    }
    if (loop_.joinable()) loop_.join();
    for (auto& [fd, conn] : conns_) {
        dropped_frames_.fetch_add(conn.decoder.buffered_frames(),
                                  std::memory_order_relaxed);
        ::close(fd);
    }
    conns_.clear();
    conns_open_.store(0, std::memory_order_relaxed);
    for (int* fd : {&listen_fd_, &wake_read_fd_, &wake_write_fd_}) {
        if (*fd >= 0) {
            ::close(*fd);
            *fd = -1;
        }
    }
}

storage::SimDuration SpiderServer::virtual_now() const {
    return std::chrono::duration_cast<storage::SimDuration>(
        std::chrono::steady_clock::now() - start_time_);
}

void SpiderServer::run_loop() {
    std::vector<pollfd> fds;
    std::vector<int> dead;
    while (running_.load(std::memory_order_acquire)) {
        fds.clear();
        fds.push_back({listen_fd_, POLLIN, 0});
        fds.push_back({wake_read_fd_, POLLIN, 0});
        for (const auto& [fd, conn] : conns_) {
            short events = conn.closing ? 0 : POLLIN;
            if (conn.want_write) events |= POLLOUT;
            fds.push_back({fd, events, 0});
        }

        const int ready = ::poll(fds.data(), fds.size(), 100);
        if (!running_.load(std::memory_order_acquire)) break;
        if (ready <= 0) continue;

        if ((fds[1].revents & POLLIN) != 0) {
            char sink[64];
            while (::read(wake_read_fd_, sink, sizeof sink) > 0) {
            }
        }
        if ((fds[0].revents & POLLIN) != 0) accept_ready();

        dead.clear();
        for (std::size_t i = 2; i < fds.size(); ++i) {
            const pollfd& p = fds[i];
            if (p.revents == 0) continue;
            const auto it = conns_.find(p.fd);
            if (it == conns_.end()) continue;
            Conn& conn = it->second;
            bool alive = true;
            if ((p.revents & (POLLERR | POLLNVAL)) != 0) {
                alive = false;
            }
            if (alive && (p.revents & POLLOUT) != 0) {
                alive = flush(conn);
            }
            if (alive && (p.revents & (POLLIN | POLLHUP)) != 0 &&
                !conn.closing) {
                alive = handle_readable(conn);
            }
            // A poisoned/erroring connection closes once its error reply
            // has drained (or immediately if the flush already failed).
            if (alive && conn.closing && !conn.want_write) alive = false;
            if (!alive) dead.push_back(p.fd);
        }
        for (const int fd : dead) close_conn(fd);
    }
}

void SpiderServer::accept_ready() {
    while (true) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        set_nonblocking(fd);
        set_nodelay(fd);
        Conn conn;
        conn.fd = fd;
        conns_.emplace(fd, std::move(conn));
        conns_accepted_.fetch_add(1, std::memory_order_relaxed);
        conns_open_.fetch_add(1, std::memory_order_relaxed);
    }
}

bool SpiderServer::handle_readable(Conn& conn) {
    // Drain the socket to EAGAIN so every pipelined frame already on the
    // wire lands in the decoder before we start servicing.
    std::uint8_t buf[64 * 1024];
    bool eof = false;
    while (true) {
        const ssize_t n = ::read(conn.fd, buf, sizeof buf);
        if (n > 0) {
            bytes_in_.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
            conn.decoder.feed({buf, static_cast<std::size_t>(n)});
            continue;
        }
        if (n == 0) {
            eof = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        return false;  // fatal read error
    }

    // Service everything buffered, one bounded chunk + gathered flush at
    // a time, so a deep pipeline still produces few large writes without
    // letting wbuf grow unboundedly.
    while (true) {
        const std::size_t serviced = service_chunk(conn);
        if (serviced == 0) break;
        batches_.fetch_add(1, std::memory_order_relaxed);
        if (serviced == 1) {
            single_frame_batches_.fetch_add(1, std::memory_order_relaxed);
        }
        std::uint64_t prev = max_batch_.load(std::memory_order_relaxed);
        while (prev < serviced &&
               !max_batch_.compare_exchange_weak(prev, serviced,
                                                 std::memory_order_relaxed)) {
        }
        if (!flush(conn)) return false;
        if (conn.closing) break;
    }
    if (eof) {
        // Client went away mid-pipeline: whatever it still had buffered
        // is dropped, never half-serviced (no leaked in-flight slots).
        dropped_frames_.fetch_add(conn.decoder.buffered_frames(),
                                  std::memory_order_relaxed);
        return false;
    }
    return true;
}

std::size_t SpiderServer::service_chunk(Conn& conn) {
    std::size_t serviced = 0;
    Frame frame;
    while (serviced < config_.max_pipeline && !conn.closing) {
        const FrameDecoder::Result r = conn.decoder.next(frame);
        if (r == FrameDecoder::Result::kNeedMore) break;
        if (r == FrameDecoder::Result::kTooBig ||
            r == FrameDecoder::Result::kMalformed) {
            // The stream can no longer be framed: tell the peer once,
            // then close after the reply drains.
            error_reply(conn, static_cast<Op>(0),
                        r == FrameDecoder::Result::kTooBig
                            ? Status::kFrameTooBig
                            : Status::kBadPayload);
            conn.closing = true;
            ++serviced;
            break;
        }
        frames_decoded_.fetch_add(1, std::memory_order_relaxed);
        process_frame(conn, frame);
        frames_answered_.fetch_add(1, std::memory_order_relaxed);
        ++serviced;
    }
    return serviced;
}

void SpiderServer::error_reply(Conn& conn, Op op, Status status) {
    WireWriter w{conn.wbuf};
    const auto off = w.begin_frame(static_cast<std::uint8_t>(op),
                                   static_cast<std::uint8_t>(status));
    w.end_frame(off);
    errors_.fetch_add(1, std::memory_order_relaxed);
}

void SpiderServer::process_frame(Conn& conn, const Frame& frame) {
    const Op op = static_cast<Op>(frame.b0);
    const std::uint8_t tenant = frame.b1;
    WireWriter w{conn.wbuf};
    WireReader r{frame.payload};

    const auto needs_tenant = [&]() -> bool {
        switch (op) {
            case Op::kGet:
            case Op::kProbe:
            case Op::kMget:
            case Op::kPutScore:
            case Op::kTenantStat:
            case Op::kTenantSetRatio:
            case Op::kPutNeighbors:
            case Op::kGetData:
                return true;
            case Op::kStats:
            case Op::kPing:
                return false;
        }
        return false;
    };
    switch (op) {
        case Op::kGet:
        case Op::kProbe:
        case Op::kMget:
        case Op::kPutScore:
        case Op::kStats:
        case Op::kTenantStat:
        case Op::kTenantSetRatio:
        case Op::kPutNeighbors:
        case Op::kPing:
        case Op::kGetData:
            break;
        default:
            error_reply(conn, op, Status::kBadOp);
            return;
    }
    if (needs_tenant() && !tenants_.valid_tenant(tenant)) {
        error_reply(conn, op, Status::kBadTenant);
        return;
    }

    // `payload_out` non-null = GET_DATA: memory hits read bytes through
    // the payload hook, misses carry whatever the backing fetch returned
    // (the SSD block store's bytes on an SSD hit).
    const auto serve_one = [&](std::uint32_t id, double score,
                               std::vector<std::uint8_t>* payload_out =
                                   nullptr) -> GetReply {
        GetReply reply;
        const cache::Lookup hit = tenants_.lookup(tenant, id);
        if (hit.kind == cache::HitKind::kImportance ||
            hit.kind == cache::HitKind::kHomophily) {
            reply.kind = hit.kind == cache::HitKind::kImportance
                             ? ServeKind::kImportanceHit
                             : ServeKind::kHomophilyHit;
            reply.served_id = hit.served_id;
            if (payload_out != nullptr && payload_read_) {
                *payload_out = payload_read_(tenant, reply.served_id);
            }
            return reply;
        }
        MissOutcome outcome;
        if (miss_fetch_) outcome = miss_fetch_(tenant, id, virtual_now());
        if (!outcome.ok) {
            reply.kind = ServeKind::kFetchFailed;
            reply.served_id = id;
            return reply;
        }
        if (payload_out != nullptr) {
            *payload_out = std::move(outcome.payload);
        }
        const bool admitted = tenants_.admit_after_fetch(tenant, id, score);
        reply.kind = outcome.from_ssd
                         ? ServeKind::kMissSsd
                         : (admitted ? ServeKind::kMissAdmitted
                                     : ServeKind::kMissRejected);
        reply.served_id = id;
        return reply;
    };

    switch (op) {
        case Op::kGet: {
            const std::uint32_t id = r.u32();
            const double score = r.f64();
            if (!r.done()) {
                error_reply(conn, op, Status::kBadPayload);
                return;
            }
            gets_.fetch_add(1, std::memory_order_relaxed);
            const GetReply reply = serve_one(id, score);
            const auto off = w.begin_frame(
                frame.b0, static_cast<std::uint8_t>(Status::kOk));
            encode_get_reply(w, reply);
            w.end_frame(off);
            return;
        }
        case Op::kGetData: {
            const std::uint32_t id = r.u32();
            const double score = r.f64();
            if (!r.done()) {
                error_reply(conn, op, Status::kBadPayload);
                return;
            }
            gets_.fetch_add(1, std::memory_order_relaxed);
            std::vector<std::uint8_t> payload;
            const GetReply reply = serve_one(id, score, &payload);
            // Keep the response frameable: an oversized sample degrades
            // to a payload-less reply rather than poisoning the stream.
            if (payload.size() > kMaxFrameLen - 64) payload.clear();
            const auto off = w.begin_frame(
                frame.b0, static_cast<std::uint8_t>(Status::kOk));
            encode_get_reply(w, reply);
            w.u32(static_cast<std::uint32_t>(payload.size()));
            w.blob(payload);
            w.end_frame(off);
            return;
        }
        case Op::kProbe: {
            const std::uint32_t id = r.u32();
            if (!r.done()) {
                error_reply(conn, op, Status::kBadPayload);
                return;
            }
            probes_.fetch_add(1, std::memory_order_relaxed);
            const auto off = w.begin_frame(
                frame.b0, static_cast<std::uint8_t>(Status::kOk));
            w.u8(tenants_.probe(tenant, id) ? 1 : 0);
            w.end_frame(off);
            return;
        }
        case Op::kMget: {
            const std::uint16_t n = r.u16();
            if (!r.ok() || n > kMaxMgetKeys) {
                error_reply(conn, op, Status::kBadPayload);
                return;
            }
            // One pass over the sharded cache for the whole vector — the
            // server-side half of the batching story.
            std::vector<GetReply> replies;
            replies.reserve(n);
            std::vector<std::pair<std::uint32_t, double>> keys;
            keys.reserve(n);
            for (std::uint16_t i = 0; i < n; ++i) {
                const std::uint32_t id = r.u32();
                const double score = r.f64();
                keys.emplace_back(id, score);
            }
            if (!r.done()) {
                error_reply(conn, op, Status::kBadPayload);
                return;
            }
            for (const auto& [id, score] : keys) {
                replies.push_back(serve_one(id, score));
            }
            gets_.fetch_add(n, std::memory_order_relaxed);
            mget_keys_.fetch_add(n, std::memory_order_relaxed);
            const auto off = w.begin_frame(
                frame.b0, static_cast<std::uint8_t>(Status::kOk));
            w.u16(n);
            for (const GetReply& reply : replies) encode_get_reply(w, reply);
            w.end_frame(off);
            return;
        }
        case Op::kPutScore: {
            const std::uint32_t id = r.u32();
            const double score = r.f64();
            if (!r.done()) {
                error_reply(conn, op, Status::kBadPayload);
                return;
            }
            put_scores_.fetch_add(1, std::memory_order_relaxed);
            tenants_.put_score(tenant, id, score);
            const auto off = w.begin_frame(
                frame.b0, static_cast<std::uint8_t>(Status::kOk));
            w.end_frame(off);
            return;
        }
        case Op::kStats: {
            StatsReply s = stats();
            // The STATS frame itself is decoded but not yet answered at
            // this point; it is not "in flight" from the peer's view.
            if (s.in_flight > 0) --s.in_flight;
            const auto off = w.begin_frame(
                frame.b0, static_cast<std::uint8_t>(Status::kOk));
            encode_stats_reply(w, s);
            w.end_frame(off);
            return;
        }
        case Op::kTenantStat: {
            if (!r.done()) {
                error_reply(conn, op, Status::kBadPayload);
                return;
            }
            const auto off = w.begin_frame(
                frame.b0, static_cast<std::uint8_t>(Status::kOk));
            encode_tenant_stat_reply(w, tenants_.stats(tenant));
            w.end_frame(off);
            return;
        }
        case Op::kTenantSetRatio: {
            const double ratio = r.f64();
            if (!r.done()) {
                error_reply(conn, op, Status::kBadPayload);
                return;
            }
            const double applied = tenants_.set_imp_ratio(tenant, ratio);
            const auto off = w.begin_frame(
                frame.b0, static_cast<std::uint8_t>(Status::kOk));
            w.f64(applied);
            w.end_frame(off);
            return;
        }
        case Op::kPutNeighbors: {
            const std::uint32_t key = r.u32();
            const std::uint16_t n = r.u16();
            if (!r.ok() || n > kMaxNeighbors) {
                error_reply(conn, op, Status::kBadPayload);
                return;
            }
            std::vector<std::uint32_t> neighbors;
            neighbors.reserve(n);
            for (std::uint16_t i = 0; i < n; ++i) neighbors.push_back(r.u32());
            if (!r.done()) {
                error_reply(conn, op, Status::kBadPayload);
                return;
            }
            const auto inserted = tenants_.put_neighbors(tenant, key,
                                                         neighbors);
            const auto off = w.begin_frame(
                frame.b0, static_cast<std::uint8_t>(Status::kOk));
            w.u8(inserted.has_value() ? 1 : 0);
            w.end_frame(off);
            return;
        }
        case Op::kPing: {
            const auto off = w.begin_frame(
                frame.b0, static_cast<std::uint8_t>(Status::kOk));
            w.end_frame(off);
            return;
        }
    }
}

bool SpiderServer::flush(Conn& conn) {
    while (conn.woff < conn.wbuf.size()) {
        const ssize_t n = ::write(conn.fd, conn.wbuf.data() + conn.woff,
                                  conn.wbuf.size() - conn.woff);
        if (n > 0) {
            conn.woff += static_cast<std::size_t>(n);
            bytes_out_.fetch_add(static_cast<std::uint64_t>(n),
                                 std::memory_order_relaxed);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            conn.want_write = true;
            return true;
        }
        if (n < 0 && errno == EINTR) continue;
        return false;  // peer vanished; caller closes
    }
    conn.wbuf.clear();
    conn.woff = 0;
    conn.want_write = false;
    return true;
}

void SpiderServer::close_conn(int fd) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    dropped_frames_.fetch_add(it->second.decoder.buffered_frames(),
                              std::memory_order_relaxed);
    ::close(fd);
    conns_.erase(it);
    conns_open_.fetch_sub(1, std::memory_order_relaxed);
}

StatsReply SpiderServer::stats() const {
    StatsReply s;
    s.conns_accepted = conns_accepted_.load(std::memory_order_relaxed);
    s.conns_open = conns_open_.load(std::memory_order_relaxed);
    s.frames = frames_answered_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.single_frame_batches =
        single_frame_batches_.load(std::memory_order_relaxed);
    s.max_batch = max_batch_.load(std::memory_order_relaxed);
    s.gets = gets_.load(std::memory_order_relaxed);
    s.probes = probes_.load(std::memory_order_relaxed);
    s.mget_keys = mget_keys_.load(std::memory_order_relaxed);
    s.put_scores = put_scores_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    s.dropped_frames = dropped_frames_.load(std::memory_order_relaxed);
    const std::uint64_t decoded =
        frames_decoded_.load(std::memory_order_relaxed);
    const std::uint64_t answered =
        frames_answered_.load(std::memory_order_relaxed);
    s.in_flight = decoded >= answered ? decoded - answered : 0;
    s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
    s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
    return s;
}

}  // namespace spider::server
