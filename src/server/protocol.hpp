#pragma once

// Wire protocol of the cache service (DESIGN.md §10): length-prefixed
// binary frames, RESP-in-spirit but fixed-width little-endian instead of
// text. One frame = one request or one response; a connection may carry
// any number of frames back to back (pipelining), and the server answers
// them in order.
//
//   request   u32 len | u8 op     | u8 tenant | u16 reserved | payload
//   response  u32 len | u8 op     | u8 status | u16 reserved | payload
//
// `len` counts every byte after the length field itself (so the minimum
// legal value is kHeaderLen). Frames whose `len` exceeds kMaxFrameLen are
// rejected without buffering the body — the peer is told once
// (kFrameTooBig) and the connection is closed, since the stream can no
// longer be framed. All integers and doubles are little-endian /
// IEEE-754; encode/decode goes through memcpy, never pointer casts.

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace spider::server {

/// Bytes of (op, tenant/status, reserved) — the fixed part `len` counts.
inline constexpr std::size_t kHeaderLen = 4;
/// Hard cap on `len`: 1 MiB. An MGET of ~87k keys fits; anything larger
/// is a protocol error, not a workload.
inline constexpr std::uint32_t kMaxFrameLen = 1u << 20;
/// Largest MGET key count in one frame.
inline constexpr std::size_t kMaxMgetKeys = 4096;
/// Largest neighbor list in one PUT_NEIGHBORS frame.
inline constexpr std::size_t kMaxNeighbors = 1024;

enum class Op : std::uint8_t {
    kGet = 1,             ///< u32 id, f64 score -> GetReply
    kProbe = 2,           ///< u32 id -> u8 resident
    kMget = 3,            ///< u16 n, n x (u32 id, f64 score) -> u16 n, n x GetReply
    kPutScore = 4,        ///< u32 id, f64 score -> (empty)
    kStats = 5,           ///< (empty) -> StatsReply
    kTenantStat = 6,      ///< (empty) -> TenantStatReply
    kTenantSetRatio = 7,  ///< f64 imp_ratio -> f64 applied (post-clamp)
    kPutNeighbors = 8,    ///< u32 key, u16 n, n x u32 -> u8 accepted
    kPing = 9,            ///< (empty) -> (empty)
    kGetData = 10,        ///< u32 id, f64 score -> GetDataReply (GET that
                          ///< also carries the sample's stored bytes:
                          ///< SSD-tier hits return the block-store
                          ///< payload, memory hits go through the
                          ///< server's payload_read hook)
};

/// Response status byte. kOk means the payload is the op's reply; any
/// other value means the payload is empty.
enum class Status : std::uint8_t {
    kOk = 0,
    kBadOp = 1,        ///< unknown opcode
    kBadTenant = 2,    ///< tenant byte out of range
    kBadPayload = 3,   ///< payload too short / inconsistent counts
    kFrameTooBig = 4,  ///< len > kMaxFrameLen (connection is then closed)
    kShutdown = 5,     ///< server is stopping
};

/// How a GET was ultimately served.
enum class ServeKind : std::uint8_t {
    kImportanceHit = 0,  ///< Case 1: resident in the Importance section
    kHomophilyHit = 1,   ///< Case 3: a resident surrogate was served
    kMissAdmitted = 2,   ///< fetched from backing, Case 4 admit
    kMissRejected = 3,   ///< fetched from backing, Case 2 no-admit
    kMissSsd = 4,        ///< served by the shared SSD tier (no admit change)
    kFetchFailed = 5,    ///< backing fetch failed (resilient envelope
                         ///< exhausted / breaker open); nothing admitted
};

struct GetReply {
    ServeKind kind = ServeKind::kMissRejected;
    /// Sample actually served (the surrogate for kHomophilyHit).
    std::uint32_t served_id = 0;
};

/// GET_DATA reply: the GET verdict plus the served sample's bytes.
/// `payload` is empty when the server has no bytes for the id (no block
/// store and no payload_read hook, or the fetch failed).
struct GetDataReply {
    GetReply base;
    std::vector<std::uint8_t> payload;
};

/// Server-wide counters, all monotone u64 (see SpiderServer for the
/// semantics of batches vs frames — amplification = frames / batches).
struct StatsReply {
    std::uint64_t conns_accepted = 0;
    std::uint64_t conns_open = 0;
    std::uint64_t frames = 0;          ///< requests fully serviced
    std::uint64_t batches = 0;         ///< drain passes servicing >= 1 frame
    std::uint64_t single_frame_batches = 0;
    std::uint64_t max_batch = 0;       ///< largest single drain pass
    std::uint64_t gets = 0;
    std::uint64_t probes = 0;
    std::uint64_t mget_keys = 0;
    std::uint64_t put_scores = 0;
    std::uint64_t errors = 0;          ///< non-kOk responses sent
    std::uint64_t dropped_frames = 0;  ///< decoded but unanswered at close
    std::uint64_t in_flight = 0;       ///< decoded, not yet answered (0 at rest)
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
};

struct TenantStatReply {
    std::uint64_t capacity = 0;      ///< tenant slice, items
    std::uint64_t imp_capacity = 0;
    std::uint64_t hom_capacity = 0;
    std::uint64_t imp_size = 0;
    std::uint64_t hom_size = 0;
    std::uint64_t hits_importance = 0;
    std::uint64_t hits_homophily = 0;
    std::uint64_t misses = 0;
    std::uint64_t admitted = 0;
    double imp_ratio = 0.0;
};

// ---------------------------------------------------------------- encoding

/// Append-only little-endian writer over a caller-owned byte buffer.
class WireWriter {
public:
    explicit WireWriter(std::vector<std::uint8_t>& buf) : buf_{buf} {}

    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v) { raw(&v, sizeof v); }
    void u32(std::uint32_t v) { raw(&v, sizeof v); }
    void u64(std::uint64_t v) { raw(&v, sizeof v); }
    void f64(double v) { raw(&v, sizeof v); }
    void blob(std::span<const std::uint8_t> bytes) {
        raw(bytes.data(), bytes.size());
    }

    /// Opens a frame: writes a length placeholder plus the two id bytes
    /// (op + tenant for requests, op + status for responses). Returns the
    /// offset to hand back to end_frame.
    std::size_t begin_frame(std::uint8_t b0, std::uint8_t b1);
    /// Patches the length field of the frame opened at `frame_off`.
    void end_frame(std::size_t frame_off);

private:
    void raw(const void* p, std::size_t n) {
        const auto* bytes = static_cast<const std::uint8_t*>(p);
        buf_.insert(buf_.end(), bytes, bytes + n);
    }
    std::vector<std::uint8_t>& buf_;
};

/// Bounds-checked little-endian reader over a frame payload. Every getter
/// returns a value; `ok()` goes false (and stays false) on the first
/// out-of-bounds read, so callers validate once at the end.
class WireReader {
public:
    explicit WireReader(std::span<const std::uint8_t> data) : data_{data} {}

    [[nodiscard]] bool ok() const { return ok_; }
    /// True when every byte was consumed (trailing garbage = malformed).
    [[nodiscard]] bool done() const { return ok_ && pos_ == data_.size(); }

    std::uint8_t u8() { return get<std::uint8_t>(); }
    std::uint16_t u16() { return get<std::uint16_t>(); }
    std::uint32_t u32() { return get<std::uint32_t>(); }
    std::uint64_t u64() { return get<std::uint64_t>(); }
    double f64() { return get<double>(); }
    /// Raw view of the next `n` bytes (empty + !ok() when short).
    std::span<const std::uint8_t> bytes(std::size_t n) {
        if (!ok_ || data_.size() - pos_ < n) {
            ok_ = false;
            return {};
        }
        const auto view = data_.subspan(pos_, n);
        pos_ += n;
        return view;
    }

private:
    template <typename T>
    T get() {
        T v{};
        if (!ok_ || data_.size() - pos_ < sizeof(T)) {
            ok_ = false;
            return v;
        }
        std::memcpy(&v, data_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }
    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

// ------------------------------------------------------------- de-framing

/// One decoded frame. `payload` views into the decoder's buffer and is
/// valid until the next feed()/next() call on that decoder.
struct Frame {
    std::uint8_t b0 = 0;  ///< op
    std::uint8_t b1 = 0;  ///< tenant (request) or status (response)
    std::span<const std::uint8_t> payload;
};

/// Incremental frame reassembly over an arbitrary chunking of the byte
/// stream (partial reads across read() boundaries are the normal case).
/// Once kTooBig or kMalformed is returned the decoder is poisoned: the
/// stream cannot be re-framed and the connection must be dropped.
class FrameDecoder {
public:
    enum class Result : std::uint8_t {
        kFrame,     ///< `out` holds the next complete frame
        kNeedMore,  ///< no complete frame buffered
        kTooBig,    ///< announced len > kMaxFrameLen
        kMalformed, ///< announced len < kHeaderLen
    };

    void feed(std::span<const std::uint8_t> bytes);
    Result next(Frame& out);

    /// Complete frames currently buffered (cheap scan; used for the
    /// dropped-at-close accounting and the pipelining tests).
    [[nodiscard]] std::size_t buffered_frames() const;
    /// Bytes buffered but not yet consumed (complete or partial).
    [[nodiscard]] std::size_t buffered_bytes() const { return buf_.size() - pos_; }
    [[nodiscard]] bool poisoned() const { return poisoned_; }

private:
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;  ///< consumed prefix, compacted on feed()
    bool poisoned_ = false;
};

// ------------------------------------------- typed request/reply encoding

void encode_get(WireWriter& w, std::uint8_t tenant, std::uint32_t id,
                double score);
void encode_probe(WireWriter& w, std::uint8_t tenant, std::uint32_t id);
void encode_mget(WireWriter& w, std::uint8_t tenant,
                 std::span<const std::uint32_t> ids,
                 std::span<const double> scores);
void encode_put_score(WireWriter& w, std::uint8_t tenant, std::uint32_t id,
                      double score);
void encode_stats(WireWriter& w);
void encode_tenant_stat(WireWriter& w, std::uint8_t tenant);
void encode_tenant_set_ratio(WireWriter& w, std::uint8_t tenant, double ratio);
void encode_put_neighbors(WireWriter& w, std::uint8_t tenant,
                          std::uint32_t key,
                          std::span<const std::uint32_t> neighbors);
void encode_ping(WireWriter& w);
void encode_get_data(WireWriter& w, std::uint8_t tenant, std::uint32_t id,
                     double score);

void encode_get_reply(WireWriter& w, const GetReply& r);
void encode_get_data_reply(WireWriter& w, const GetDataReply& r);
void encode_stats_reply(WireWriter& w, const StatsReply& r);
void encode_tenant_stat_reply(WireWriter& w, const TenantStatReply& r);

/// Payload decoders for the reply side (nullopt = short/garbled payload).
[[nodiscard]] std::optional<GetReply> decode_get_reply(
    std::span<const std::uint8_t> payload);
[[nodiscard]] std::optional<std::vector<GetReply>> decode_mget_reply(
    std::span<const std::uint8_t> payload);
[[nodiscard]] std::optional<GetDataReply> decode_get_data_reply(
    std::span<const std::uint8_t> payload);
[[nodiscard]] std::optional<StatsReply> decode_stats_reply(
    std::span<const std::uint8_t> payload);
[[nodiscard]] std::optional<TenantStatReply> decode_tenant_stat_reply(
    std::span<const std::uint8_t> payload);

/// On-the-wire byte counts (length prefix included) of one GET request
/// frame and its reply frame. The cooperative cache prices its peer-fetch
/// envelope with these, so the virtual wire cost tracks the real protocol
/// encoding instead of a hand-kept constant.
[[nodiscard]] std::size_t get_request_wire_len();
[[nodiscard]] std::size_t get_reply_wire_len();

[[nodiscard]] const char* to_string(Status status);
[[nodiscard]] const char* to_string(Op op);

}  // namespace spider::server
