#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace spider::server {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_{std::exchange(other.fd_, -1)},
      pipeline_{std::move(other.pipeline_)},
      queued_{std::exchange(other.queued_, 0)},
      decoder_{std::move(other.decoder_)} {}

Client& Client::operator=(Client&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        pipeline_ = std::move(other.pipeline_);
        queued_ = std::exchange(other.queued_, 0);
        decoder_ = std::move(other.decoder_);
    }
    return *this;
}

void Client::connect(const std::string& host, std::uint16_t port) {
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error{"Client: socket() failed"};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        close();
        throw std::runtime_error{"Client: bad host '" + host + "'"};
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        close();
        throw std::runtime_error{"Client: connect() failed: " +
                                 std::string{std::strerror(errno)}};
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void Client::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    pipeline_.clear();
    queued_ = 0;
    decoder_ = FrameDecoder{};
}

void Client::queue_get(std::uint8_t tenant, std::uint32_t id, double score) {
    WireWriter w{pipeline_};
    encode_get(w, tenant, id, score);
    ++queued_;
}

void Client::queue_get_data(std::uint8_t tenant, std::uint32_t id,
                            double score) {
    WireWriter w{pipeline_};
    encode_get_data(w, tenant, id, score);
    ++queued_;
}

void Client::queue_probe(std::uint8_t tenant, std::uint32_t id) {
    WireWriter w{pipeline_};
    encode_probe(w, tenant, id);
    ++queued_;
}

void Client::queue_mget(std::uint8_t tenant,
                        std::span<const std::uint32_t> ids,
                        std::span<const double> scores) {
    WireWriter w{pipeline_};
    encode_mget(w, tenant, ids, scores);
    ++queued_;
}

void Client::queue_put_score(std::uint8_t tenant, std::uint32_t id,
                             double score) {
    WireWriter w{pipeline_};
    encode_put_score(w, tenant, id, score);
    ++queued_;
}

void Client::queue_stats() {
    WireWriter w{pipeline_};
    encode_stats(w);
    ++queued_;
}

void Client::queue_tenant_stat(std::uint8_t tenant) {
    WireWriter w{pipeline_};
    encode_tenant_stat(w, tenant);
    ++queued_;
}

void Client::queue_tenant_set_ratio(std::uint8_t tenant, double ratio) {
    WireWriter w{pipeline_};
    encode_tenant_set_ratio(w, tenant, ratio);
    ++queued_;
}

void Client::queue_put_neighbors(std::uint8_t tenant, std::uint32_t key,
                                 std::span<const std::uint32_t> neighbors) {
    WireWriter w{pipeline_};
    encode_put_neighbors(w, tenant, key, neighbors);
    ++queued_;
}

void Client::queue_ping() {
    WireWriter w{pipeline_};
    encode_ping(w);
    ++queued_;
}

void Client::write_all(std::span<const std::uint8_t> bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd_, bytes.data() + off, bytes.size() - off);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        throw std::runtime_error{"Client: write() failed"};
    }
}

void Client::send_only() {
    write_all(pipeline_);
    pipeline_.clear();
    queued_ = 0;
}

std::vector<Response> Client::read_responses(std::size_t n) {
    std::vector<Response> out;
    out.reserve(n);
    std::uint8_t buf[64 * 1024];
    while (out.size() < n) {
        Frame frame;
        const FrameDecoder::Result r = decoder_.next(frame);
        if (r == FrameDecoder::Result::kFrame) {
            Response resp;
            resp.op = static_cast<Op>(frame.b0);
            resp.status = static_cast<Status>(frame.b1);
            resp.payload.assign(frame.payload.begin(), frame.payload.end());
            out.push_back(std::move(resp));
            continue;
        }
        if (r != FrameDecoder::Result::kNeedMore) {
            throw std::runtime_error{"Client: garbled response stream"};
        }
        const ssize_t got = ::read(fd_, buf, sizeof buf);
        if (got > 0) {
            decoder_.feed({buf, static_cast<std::size_t>(got)});
            continue;
        }
        if (got < 0 && errno == EINTR) continue;
        throw std::runtime_error{
            "Client: connection closed with responses outstanding"};
    }
    return out;
}

std::vector<Response> Client::flush() {
    const std::size_t n = queued_;
    send_only();
    return read_responses(n);
}

Response Client::one_shot() {
    auto responses = flush();
    if (responses.size() != 1) {
        throw std::runtime_error{"Client: expected one response"};
    }
    return std::move(responses.front());
}

namespace {

void require_ok(const Response& r, const char* what) {
    if (r.status != Status::kOk) {
        throw std::runtime_error{std::string{"Client: "} + what +
                                 " failed: " + to_string(r.status)};
    }
}

}  // namespace

GetReply Client::get(std::uint8_t tenant, std::uint32_t id, double score) {
    queue_get(tenant, id, score);
    const Response r = one_shot();
    require_ok(r, "GET");
    const auto reply = decode_get_reply(r.payload);
    if (!reply) throw std::runtime_error{"Client: short GET reply"};
    return *reply;
}

GetDataReply Client::get_data(std::uint8_t tenant, std::uint32_t id,
                              double score) {
    queue_get_data(tenant, id, score);
    const Response r = one_shot();
    require_ok(r, "GET_DATA");
    auto reply = decode_get_data_reply(r.payload);
    if (!reply) throw std::runtime_error{"Client: short GET_DATA reply"};
    return std::move(*reply);
}

bool Client::probe(std::uint8_t tenant, std::uint32_t id) {
    queue_probe(tenant, id);
    const Response r = one_shot();
    require_ok(r, "PROBE");
    WireReader reader{r.payload};
    const bool resident = reader.u8() != 0;
    if (!reader.done()) throw std::runtime_error{"Client: bad PROBE reply"};
    return resident;
}

std::vector<GetReply> Client::mget(std::uint8_t tenant,
                                   std::span<const std::uint32_t> ids,
                                   std::span<const double> scores) {
    queue_mget(tenant, ids, scores);
    const Response r = one_shot();
    require_ok(r, "MGET");
    auto replies = decode_mget_reply(r.payload);
    if (!replies) throw std::runtime_error{"Client: short MGET reply"};
    return std::move(*replies);
}

void Client::put_score(std::uint8_t tenant, std::uint32_t id, double score) {
    queue_put_score(tenant, id, score);
    require_ok(one_shot(), "PUT_SCORE");
}

StatsReply Client::stats() {
    queue_stats();
    const Response r = one_shot();
    require_ok(r, "STATS");
    const auto reply = decode_stats_reply(r.payload);
    if (!reply) throw std::runtime_error{"Client: short STATS reply"};
    return *reply;
}

TenantStatReply Client::tenant_stat(std::uint8_t tenant) {
    queue_tenant_stat(tenant);
    const Response r = one_shot();
    require_ok(r, "TENANT_STAT");
    const auto reply = decode_tenant_stat_reply(r.payload);
    if (!reply) throw std::runtime_error{"Client: short TENANT_STAT reply"};
    return *reply;
}

double Client::tenant_set_ratio(std::uint8_t tenant, double ratio) {
    queue_tenant_set_ratio(tenant, ratio);
    const Response r = one_shot();
    require_ok(r, "TENANT_SET_RATIO");
    WireReader reader{r.payload};
    const double applied = reader.f64();
    if (!reader.done()) {
        throw std::runtime_error{"Client: bad TENANT_SET_RATIO reply"};
    }
    return applied;
}

bool Client::put_neighbors(std::uint8_t tenant, std::uint32_t key,
                           std::span<const std::uint32_t> neighbors) {
    queue_put_neighbors(tenant, key, neighbors);
    const Response r = one_shot();
    require_ok(r, "PUT_NEIGHBORS");
    WireReader reader{r.payload};
    const bool accepted = reader.u8() != 0;
    if (!reader.done()) {
        throw std::runtime_error{"Client: bad PUT_NEIGHBORS reply"};
    }
    return accepted;
}

void Client::ping() {
    queue_ping();
    require_ok(one_shot(), "PING");
}

}  // namespace spider::server
