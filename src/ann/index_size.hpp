#pragma once

// Storage model for HNSW + Product Quantization indexes over large image
// datasets (paper Section 5, Table 2). The paper's numbers work out to
// roughly 110 bytes of index per image regardless of dataset scale; this
// model makes the per-vector budget explicit (PQ code + layer-0 links +
// expected upper-layer links + identifiers) and reproduces the table's
// compression ratios from first principles.

#include <cstdint>
#include <string>
#include <vector>

namespace spider::ann {

struct IndexSizeModel {
    std::size_t pq_code_bytes = 64;     // 64 subquantizers x 1 byte
    std::size_t hnsw_m = 4;             // links kept per upper layer
    std::size_t layer0_links = 8;       // compressed layer-0 degree
    std::size_t bytes_per_link = 4;     // uint32 ids
    std::size_t id_bytes = 8;           // external label + level byte, padded

    /// Expected index bytes for one vector. Upper layers add a geometric
    /// tail: a node appears on layer l>=1 with probability ~(1/M)^l, so the
    /// expected extra links per node are M * 1/(M-1).
    [[nodiscard]] double bytes_per_vector() const;

    /// Total index bytes for `count` vectors.
    [[nodiscard]] double index_bytes(double count) const;
};

struct DatasetScale {
    std::string name;
    double image_count;
    double raw_bytes;
};

/// The six dataset rows of Table 2.
[[nodiscard]] const std::vector<DatasetScale>& table2_datasets();

/// Human-readable size with binary units (e.g. "134 MB", "1.5 GB").
[[nodiscard]] std::string format_bytes(double bytes);

}  // namespace spider::ann
