#include "ann/index_size.hpp"

#include <array>
#include <cmath>
#include <sstream>

namespace spider::ann {

double IndexSizeModel::bytes_per_vector() const {
    const double upper_links =
        static_cast<double>(hnsw_m) /
        (static_cast<double>(hnsw_m) - 1.0);  // sum_{l>=1} M (1/M)^l
    const double link_bytes =
        (static_cast<double>(layer0_links) + upper_links) *
        static_cast<double>(bytes_per_link);
    return static_cast<double>(pq_code_bytes) + link_bytes +
           static_cast<double>(id_bytes);
}

double IndexSizeModel::index_bytes(double count) const {
    return count * bytes_per_vector();
}

const std::vector<DatasetScale>& table2_datasets() {
    constexpr double kGb = 1024.0 * 1024.0 * 1024.0;
    constexpr double kTb = kGb * 1024.0;
    constexpr double kPb = kTb * 1024.0;
    static const std::vector<DatasetScale> datasets = {
        {"ImageNet-1K", 1.2e6, 138.0 * kGb},
        {"Open Images (V6)", 9.0e6, 600.0 * kGb},
        {"ImageNet-21K", 14.0e6, 1.3 * kTb},
        {"YFCC100M", 100.0e6, 100.0 * kTb},
        {"LAION-400M", 400.0e6, 240.0 * kTb},
        {"LAION-5B", 5.0e9, 2.5 * kPb},
    };
    return datasets;
}

std::string format_bytes(double bytes) {
    static constexpr std::array<const char*, 6> units = {"B",  "KB", "MB",
                                                         "GB", "TB", "PB"};
    std::size_t unit = 0;
    while (bytes >= 1024.0 && unit + 1 < units.size()) {
        bytes /= 1024.0;
        ++unit;
    }
    std::ostringstream oss;
    if (bytes >= 100.0) {
        oss << static_cast<long long>(std::llround(bytes));
    } else {
        oss.precision(bytes >= 10.0 ? 3 : 2);
        oss << bytes;
    }
    oss << ' ' << units[unit];
    return oss.str();
}

}  // namespace spider::ann
