#pragma once

// Exact K-nearest-neighbor index: the correctness reference that HNSW's
// recall is validated against in tests, and a drop-in Index implementation
// for small datasets.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace spider::ann {

struct Neighbor {
    std::uint32_t label;
    float distance;
};

class BruteForceIndex {
public:
    explicit BruteForceIndex(std::size_t dim);

    [[nodiscard]] std::size_t dim() const { return dim_; }
    [[nodiscard]] std::size_t size() const { return vectors_.size(); }

    /// Inserts or replaces the vector stored under `label`.
    void upsert(std::uint32_t label, std::span<const float> vec);
    [[nodiscard]] bool contains(std::uint32_t label) const;

    /// The k nearest stored vectors by Euclidean distance, ascending.
    [[nodiscard]] std::vector<Neighbor> knn(std::span<const float> query,
                                            std::size_t k) const;

private:
    std::size_t dim_;
    std::unordered_map<std::uint32_t, std::size_t> slots_;
    std::vector<std::vector<float>> vectors_;
    std::vector<std::uint32_t> labels_;
};

}  // namespace spider::ann
