#pragma once

// Binary serialization for the ANN substrate. A production deployment
// builds the HNSW+PQ index once (or incrementally across training jobs)
// and persists it — the paper's Table 2 sizes are the on-disk footprint of
// exactly this artifact. Format: little-endian, fixed-width headers with
// magic + version, strict validation on load.

#include <cstdint>
#include <iosfwd>

#include "ann/hnsw.hpp"
#include "ann/pq.hpp"

namespace spider::ann {

/// Writes the full index (config, nodes, links, entry point) to `os`.
void save_index(const HnswIndex& index, std::ostream& os);

/// Reconstructs an index saved by save_index. Throws std::runtime_error on
/// magic/version mismatch or truncated input.
[[nodiscard]] HnswIndex load_index(std::istream& is);

/// Writes a trained quantizer (config + codebooks).
void save_quantizer(const ProductQuantizer& pq, std::ostream& os);

/// Reconstructs a quantizer saved by save_quantizer.
[[nodiscard]] ProductQuantizer load_quantizer(std::istream& is);

}  // namespace spider::ann
