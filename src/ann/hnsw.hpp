#pragma once

// Hierarchical Navigable Small World graph (Malkov & Yashunin, 2018),
// implemented from scratch: multi-layer greedy search, heuristic neighbor
// selection, dynamic insert and in-place update. This is the ANN substrate
// the paper builds its semantic graph on (it uses the hnswlib library; we
// reproduce the algorithm).
//
// Thread-safety: reader/writer *phase* contract. Queries (knn, vector_of,
// degree, contains) may run concurrently with each other — each holds a
// shared lock, uses a pooled per-query visited buffer, and bumps only the
// relaxed-atomic distance counter. upsert() is a writer: it takes the lock
// exclusively, so interleaving upserts with queries is correct but
// serializes. The intended shape (and what the batch scorer does) is
// phased: an update phase of upserts, then a scoring phase that fans knn
// across a thread pool. Spans returned by vector_of() point into the graph
// and are invalidated by the next upsert, exactly like iterator
// invalidation on a std::vector.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "ann/bruteforce.hpp"  // Neighbor
#include "util/rng.hpp"

namespace spider::ann {

struct HnswConfig {
    std::size_t dim = 32;
    /// Max links per node on layers > 0; layer 0 allows 2*M.
    std::size_t M = 12;
    /// Beam width during construction.
    std::size_t ef_construction = 64;
    /// Default beam width during search (raise for higher recall).
    std::size_t ef_search = 48;
    std::uint64_t seed = 7;
};

class HnswIndex {
public:
    explicit HnswIndex(HnswConfig config);

    // Movable (indexes are built in factories and returned by value) but
    // not copyable; moving must not race with concurrent queries.
    HnswIndex(HnswIndex&& other) noexcept;
    HnswIndex& operator=(HnswIndex&& other) noexcept;
    HnswIndex(const HnswIndex&) = delete;
    HnswIndex& operator=(const HnswIndex&) = delete;
    ~HnswIndex() = default;

    [[nodiscard]] const HnswConfig& config() const { return config_; }
    [[nodiscard]] std::size_t size() const { return nodes_.size(); }
    [[nodiscard]] bool contains(std::uint32_t label) const;

    /// Inserts a new vector, or — when `label` already exists — replaces
    /// its vector in place and rewires its links at every level (the
    /// "dynamic sample update" the paper relies on: embeddings drift every
    /// epoch as the model trains). Writer: takes the phase lock exclusively.
    void upsert(std::uint32_t label, std::span<const float> vec);

    /// K nearest neighbors by Euclidean distance, ascending. `ef` overrides
    /// ef_search when nonzero. The query label itself is *not* excluded.
    /// Reader: safe to call from many threads concurrently.
    [[nodiscard]] std::vector<Neighbor> knn(std::span<const float> query,
                                            std::size_t k,
                                            std::size_t ef = 0) const;

    /// Current stored vector for a label (empty if absent).
    [[nodiscard]] std::optional<std::span<const float>> vector_of(
        std::uint32_t label) const;

    /// Layer-0 out-degree of a label's node (0 if absent). High-degree
    /// nodes are the homophily-cache candidates.
    [[nodiscard]] std::size_t degree(std::uint32_t label) const;

    /// Estimated resident bytes of the graph + vectors (Table 2 support).
    [[nodiscard]] std::size_t memory_bytes() const;

    /// Number of distance computations since construction (perf counters
    /// for the microbench). Exact even under concurrent queries — the
    /// counter is a relaxed atomic.
    [[nodiscard]] std::uint64_t distance_computations() const {
        return dist_comps_.load(std::memory_order_relaxed);
    }

    // Binary persistence (ann/serialize.hpp).
    friend void save_index(const HnswIndex& index, std::ostream& os);
    friend HnswIndex load_index(std::istream& is);

private:
    struct Node {
        std::uint32_t label = 0;
        std::vector<float> point;
        /// links[l] = neighbor internal-ids at layer l; size() = level + 1.
        std::vector<std::vector<std::uint32_t>> links;
        /// in_degree[l] = number of edges pointing at this node at layer l.
        /// The pruning paths preserve in_degree >= 1 so every node stays
        /// reachable by the directed greedy search even under heavy
        /// update churn (embeddings drift every epoch).
        std::vector<std::uint32_t> in_degree;
    };

    struct Candidate {
        float distance;
        std::uint32_t id;
        bool operator<(const Candidate& other) const {
            return distance < other.distance;
        }
        bool operator>(const Candidate& other) const {
            return distance > other.distance;
        }
    };

    /// Per-query visited set: an epoch-stamped array (stamp[id] == epoch
    /// means visited this query). Leased from a pool so concurrent queries
    /// never share one and steady state allocates nothing.
    struct VisitTable {
        std::vector<std::uint32_t> stamp;
        std::uint32_t epoch = 0;
    };

    class VisitTablePool {
    public:
        /// Pops a free table (or makes one), sized for >= n nodes, with a
        /// fresh epoch.
        [[nodiscard]] VisitTable acquire(std::size_t n);
        void release(VisitTable&& table);

    private:
        std::mutex mutex_;
        std::vector<VisitTable> free_;
    };

    /// RAII lease so a table returns to the pool even on exceptions.
    struct VisitLease {
        VisitLease(VisitTablePool& p, std::size_t n)
            : pool{&p}, table{p.acquire(n)} {}
        ~VisitLease() { pool->release(std::move(table)); }
        VisitLease(const VisitLease&) = delete;
        VisitLease& operator=(const VisitLease&) = delete;

        VisitTablePool* pool;
        VisitTable table;
    };

    [[nodiscard]] float dist(std::span<const float> a,
                             std::span<const float> b) const;
    [[nodiscard]] std::size_t random_level();
    [[nodiscard]] std::size_t max_links(std::size_t layer) const {
        return layer == 0 ? config_.M * 2 : config_.M;
    }

    /// Greedy descent on one layer: returns the closest node found.
    [[nodiscard]] std::uint32_t greedy_closest(std::span<const float> query,
                                               std::uint32_t entry,
                                               std::size_t layer) const;

    /// Beam search on one layer; returns up to `ef` candidates sorted
    /// ascending by distance. `visited` is the caller's leased table.
    [[nodiscard]] std::vector<Candidate> search_layer(
        std::span<const float> query, std::uint32_t entry, std::size_t ef,
        std::size_t layer, VisitTable& visited) const;

    /// Heuristic neighbor selection (Algorithm 4 of the HNSW paper): keeps
    /// a candidate only if it is closer to the query than to every
    /// already-kept neighbor, preserving graph navigability.
    [[nodiscard]] std::vector<std::uint32_t> select_neighbors(
        std::span<const float> query, std::vector<Candidate> candidates,
        std::size_t m) const;

    /// Connects `id` to `neighbors` bidirectionally at `layer`, shrinking
    /// any neighbor that exceeds its link budget via the same heuristic.
    void link(std::uint32_t id, std::span<const std::uint32_t> neighbors,
              std::size_t layer);

    /// (Re)wires the links of node `id` across all its layers, starting the
    /// descent from the current entry point. Shared by insert and update.
    void wire_node(std::uint32_t id);

    HnswConfig config_;
    double level_lambda_;  // 1 / ln(M)
    util::Rng rng_;
    std::vector<Node> nodes_;
    std::unordered_map<std::uint32_t, std::uint32_t> label_to_id_;
    std::uint32_t entry_point_ = 0;
    std::size_t max_level_ = 0;
    bool empty_ = true;
    mutable std::atomic<std::uint64_t> dist_comps_{0};
    mutable VisitTablePool visit_pool_;
    /// Reader/writer phase lock: queries shared, upserts exclusive.
    mutable std::shared_mutex phase_mutex_;
};

}  // namespace spider::ann
