#include "ann/bruteforce.hpp"

#include <algorithm>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace spider::ann {

BruteForceIndex::BruteForceIndex(std::size_t dim) : dim_{dim} {
    if (dim == 0) throw std::invalid_argument{"BruteForceIndex: dim must be > 0"};
}

void BruteForceIndex::upsert(std::uint32_t label, std::span<const float> vec) {
    if (vec.size() != dim_) {
        throw std::invalid_argument{"BruteForceIndex::upsert: bad dimension"};
    }
    auto [it, inserted] = slots_.try_emplace(label, vectors_.size());
    if (inserted) {
        vectors_.emplace_back(vec.begin(), vec.end());
        labels_.push_back(label);
    } else {
        std::copy(vec.begin(), vec.end(), vectors_[it->second].begin());
    }
}

bool BruteForceIndex::contains(std::uint32_t label) const {
    return slots_.contains(label);
}

std::vector<Neighbor> BruteForceIndex::knn(std::span<const float> query,
                                           std::size_t k) const {
    if (query.size() != dim_) {
        throw std::invalid_argument{"BruteForceIndex::knn: bad dimension"};
    }
    std::vector<Neighbor> all;
    all.reserve(vectors_.size());
    for (std::size_t i = 0; i < vectors_.size(); ++i) {
        all.push_back({labels_[i], tensor::l2_distance(query, vectors_[i])});
    }
    const std::size_t take = std::min(k, all.size());
    std::partial_sort(all.begin(), all.begin() + take, all.end(),
                      [](const Neighbor& a, const Neighbor& b) {
                          return a.distance < b.distance;
                      });
    all.resize(take);
    return all;
}

}  // namespace spider::ann
