#include "ann/pq.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace spider::ann {

namespace {

float sub_sq_l2(const float* a, const float* b, std::size_t n) {
    float sum = 0.0F;
    for (std::size_t i = 0; i < n; ++i) {
        const float d = a[i] - b[i];
        sum += d * d;
    }
    return sum;
}

}  // namespace

ProductQuantizer::ProductQuantizer(PqConfig config)
    : config_{config},
      sub_dim_{config.dim / std::max<std::size_t>(config.num_subspaces, 1)},
      rng_{config.seed} {
    if (config_.num_subspaces == 0 || config_.dim % config_.num_subspaces != 0) {
        throw std::invalid_argument{
            "ProductQuantizer: num_subspaces must divide dim"};
    }
    if (config_.codebook_size == 0 || config_.codebook_size > 256) {
        throw std::invalid_argument{
            "ProductQuantizer: codebook_size must be in [1, 256]"};
    }
    codebooks_.resize(config_.num_subspaces);
}

void ProductQuantizer::train(std::span<const float> vectors,
                             std::size_t count) {
    if (count == 0 || vectors.size() != count * config_.dim) {
        throw std::invalid_argument{"ProductQuantizer::train: bad layout"};
    }
    const std::size_t k = std::min(config_.codebook_size, count);

    for (std::size_t s = 0; s < config_.num_subspaces; ++s) {
        const std::size_t offset = s * sub_dim_;
        auto& codebook = codebooks_[s];
        codebook.assign(config_.codebook_size * sub_dim_, 0.0F);

        // Init centroids from random distinct training rows.
        std::vector<std::uint32_t> order(count);
        for (std::size_t i = 0; i < count; ++i) {
            order[i] = static_cast<std::uint32_t>(i);
        }
        rng_.shuffle(order);
        for (std::size_t c = 0; c < k; ++c) {
            const float* src = vectors.data() + order[c] * config_.dim + offset;
            std::copy(src, src + sub_dim_, codebook.data() + c * sub_dim_);
        }
        // Duplicate-fill any remaining slots (count < codebook_size).
        for (std::size_t c = k; c < config_.codebook_size; ++c) {
            const float* src = codebook.data() + (c % k) * sub_dim_;
            std::copy(src, src + sub_dim_, codebook.data() + c * sub_dim_);
        }

        // Lloyd iterations.
        std::vector<std::uint32_t> assignment(count, 0);
        std::vector<float> sums(k * sub_dim_);
        std::vector<std::uint32_t> counts(k);
        for (std::size_t iter = 0; iter < config_.kmeans_iterations; ++iter) {
            // Assign.
            for (std::size_t i = 0; i < count; ++i) {
                const float* x = vectors.data() + i * config_.dim + offset;
                float best = std::numeric_limits<float>::max();
                std::uint32_t best_c = 0;
                for (std::size_t c = 0; c < k; ++c) {
                    const float d =
                        sub_sq_l2(x, codebook.data() + c * sub_dim_, sub_dim_);
                    if (d < best) {
                        best = d;
                        best_c = static_cast<std::uint32_t>(c);
                    }
                }
                assignment[i] = best_c;
            }
            // Update.
            std::fill(sums.begin(), sums.end(), 0.0F);
            std::fill(counts.begin(), counts.end(), 0);
            for (std::size_t i = 0; i < count; ++i) {
                const float* x = vectors.data() + i * config_.dim + offset;
                float* sum = sums.data() + assignment[i] * sub_dim_;
                for (std::size_t d = 0; d < sub_dim_; ++d) sum[d] += x[d];
                ++counts[assignment[i]];
            }
            for (std::size_t c = 0; c < k; ++c) {
                if (counts[c] == 0) {
                    // Re-seed empty cluster from a random row.
                    const float* src = vectors.data() +
                                       rng_.uniform_index(count) * config_.dim +
                                       offset;
                    std::copy(src, src + sub_dim_,
                              codebook.data() + c * sub_dim_);
                    continue;
                }
                float* centroid = codebook.data() + c * sub_dim_;
                const float inv = 1.0F / static_cast<float>(counts[c]);
                for (std::size_t d = 0; d < sub_dim_; ++d) {
                    centroid[d] = sums[c * sub_dim_ + d] * inv;
                }
            }
        }
    }
    trained_ = true;
}

std::vector<std::uint8_t> ProductQuantizer::encode(
    std::span<const float> vec) const {
    if (!trained_) throw std::logic_error{"ProductQuantizer::encode: not trained"};
    if (vec.size() != config_.dim) {
        throw std::invalid_argument{"ProductQuantizer::encode: bad dimension"};
    }
    std::vector<std::uint8_t> code(config_.num_subspaces);
    for (std::size_t s = 0; s < config_.num_subspaces; ++s) {
        const float* x = vec.data() + s * sub_dim_;
        const auto& codebook = codebooks_[s];
        float best = std::numeric_limits<float>::max();
        std::size_t best_c = 0;
        for (std::size_t c = 0; c < config_.codebook_size; ++c) {
            const float d = sub_sq_l2(x, codebook.data() + c * sub_dim_, sub_dim_);
            if (d < best) {
                best = d;
                best_c = c;
            }
        }
        code[s] = static_cast<std::uint8_t>(best_c);
    }
    return code;
}

std::vector<float> ProductQuantizer::decode(
    std::span<const std::uint8_t> code) const {
    if (!trained_) throw std::logic_error{"ProductQuantizer::decode: not trained"};
    if (code.size() != config_.num_subspaces) {
        throw std::invalid_argument{"ProductQuantizer::decode: bad code size"};
    }
    std::vector<float> out(config_.dim);
    for (std::size_t s = 0; s < config_.num_subspaces; ++s) {
        const float* centroid = codebooks_[s].data() + code[s] * sub_dim_;
        std::copy(centroid, centroid + sub_dim_, out.data() + s * sub_dim_);
    }
    return out;
}

double ProductQuantizer::reconstruction_mse(std::span<const float> vectors,
                                            std::size_t count) const {
    if (count == 0) return 0.0;
    double total = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        const std::span<const float> row{vectors.data() + i * config_.dim,
                                         config_.dim};
        const std::vector<float> approx = decode(encode(row));
        for (std::size_t d = 0; d < config_.dim; ++d) {
            const double diff = row[d] - approx[d];
            total += diff * diff;
        }
    }
    return total / static_cast<double>(count * config_.dim);
}

float ProductQuantizer::adc_distance(std::span<const float> query,
                                     std::span<const std::uint8_t> code) const {
    if (query.size() != config_.dim || code.size() != config_.num_subspaces) {
        throw std::invalid_argument{"ProductQuantizer::adc_distance: bad sizes"};
    }
    float sum = 0.0F;
    for (std::size_t s = 0; s < config_.num_subspaces; ++s) {
        const float* centroid = codebooks_[s].data() + code[s] * sub_dim_;
        sum += sub_sq_l2(query.data() + s * sub_dim_, centroid, sub_dim_);
    }
    return sum;
}

std::vector<float> ProductQuantizer::build_distance_table(
    std::span<const float> query) const {
    if (query.size() != config_.dim) {
        throw std::invalid_argument{"build_distance_table: bad dimension"};
    }
    std::vector<float> table(config_.num_subspaces * config_.codebook_size);
    for (std::size_t s = 0; s < config_.num_subspaces; ++s) {
        const float* q = query.data() + s * sub_dim_;
        for (std::size_t c = 0; c < config_.codebook_size; ++c) {
            table[s * config_.codebook_size + c] =
                sub_sq_l2(q, codebooks_[s].data() + c * sub_dim_, sub_dim_);
        }
    }
    return table;
}

float ProductQuantizer::table_distance(
    std::span<const float> table, std::span<const std::uint8_t> code) const {
    float sum = 0.0F;
    for (std::size_t s = 0; s < config_.num_subspaces; ++s) {
        sum += table[s * config_.codebook_size + code[s]];
    }
    return sum;
}

}  // namespace spider::ann
