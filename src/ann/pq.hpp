#pragma once

// Product Quantization (Jégou et al.): splits vectors into M subspaces,
// k-means-learns a 256-entry codebook per subspace, and stores each vector
// as M uint8 codes. The paper combines HNSW with PQ to keep ANN index
// storage ~1000x below raw dataset size (Section 5, Table 2); this module
// provides the quantizer plus the asymmetric-distance computation (ADC)
// used for compressed-domain search.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace spider::ann {

struct PqConfig {
    std::size_t dim = 32;
    /// Number of subquantizers; must divide dim.
    std::size_t num_subspaces = 8;
    /// Codebook size per subspace (<= 256 so codes fit in a byte).
    std::size_t codebook_size = 256;
    std::size_t kmeans_iterations = 12;
    std::uint64_t seed = 17;
};

class ProductQuantizer {
public:
    explicit ProductQuantizer(PqConfig config);

    [[nodiscard]] const PqConfig& config() const { return config_; }
    [[nodiscard]] bool trained() const { return trained_; }
    [[nodiscard]] std::size_t sub_dim() const { return sub_dim_; }
    [[nodiscard]] std::size_t code_bytes() const { return config_.num_subspaces; }

    /// Learns the codebooks from training vectors laid out row-major
    /// (count x dim).
    void train(std::span<const float> vectors, std::size_t count);

    /// Encodes one vector into num_subspaces bytes.
    [[nodiscard]] std::vector<std::uint8_t> encode(
        std::span<const float> vec) const;

    /// Reconstructs the centroid approximation of a code.
    [[nodiscard]] std::vector<float> decode(
        std::span<const std::uint8_t> code) const;

    /// Mean squared reconstruction error over a vector set — quantization
    /// quality metric used in tests.
    [[nodiscard]] double reconstruction_mse(std::span<const float> vectors,
                                            std::size_t count) const;

    /// Asymmetric distance: exact query vs quantized database vector.
    /// Returns squared L2.
    [[nodiscard]] float adc_distance(std::span<const float> query,
                                     std::span<const std::uint8_t> code) const;

    /// Precomputed per-subspace distance table for a query (ADC fast path):
    /// table[s * codebook_size + c] = ||query_s - centroid_{s,c}||^2.
    [[nodiscard]] std::vector<float> build_distance_table(
        std::span<const float> query) const;
    [[nodiscard]] float table_distance(
        std::span<const float> table, std::span<const std::uint8_t> code) const;

    // Binary persistence (ann/serialize.hpp).
    friend void save_quantizer(const ProductQuantizer& pq, std::ostream& os);
    friend ProductQuantizer load_quantizer(std::istream& is);

private:
    PqConfig config_;
    std::size_t sub_dim_;
    bool trained_ = false;
    /// codebooks_[s] is codebook_size x sub_dim_, row-major.
    std::vector<std::vector<float>> codebooks_;
    util::Rng rng_;
};

}  // namespace spider::ann
