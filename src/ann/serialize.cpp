#include "ann/serialize.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace spider::ann {

namespace {

constexpr std::uint32_t kHnswMagic = 0x48'4E'53'57;  // "HNSW"
constexpr std::uint32_t kPqMagic = 0x50'51'49'58;    // "PQIX"
constexpr std::uint32_t kVersion = 1;

// Fixed-width little-endian scalar I/O. We target little-endian hosts
// (asserted at load time via the magic); the explicit widths make the
// format stable across compilers.
template <typename T>
void write_scalar(std::ostream& os, T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_scalar(std::istream& is) {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    is.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!is) {
        throw std::runtime_error{"ann::serialize: truncated input"};
    }
    return value;
}

template <typename T>
void write_vector(std::ostream& os, const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_scalar<std::uint64_t>(os, values.size());
    os.write(reinterpret_cast<const char*>(values.data()),
             static_cast<std::streamsize>(values.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vector(std::istream& is) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto count = read_scalar<std::uint64_t>(is);
    if (count > (1ULL << 34)) {
        throw std::runtime_error{"ann::serialize: implausible vector size"};
    }
    std::vector<T> values(count);
    is.read(reinterpret_cast<char*>(values.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
    if (!is) {
        throw std::runtime_error{"ann::serialize: truncated input"};
    }
    return values;
}

void check_header(std::istream& is, std::uint32_t magic, const char* what) {
    if (read_scalar<std::uint32_t>(is) != magic) {
        throw std::runtime_error{std::string{"ann::serialize: bad magic for "} +
                                 what};
    }
    if (read_scalar<std::uint32_t>(is) != kVersion) {
        throw std::runtime_error{
            std::string{"ann::serialize: unsupported version for "} + what};
    }
}

}  // namespace

void save_index(const HnswIndex& index, std::ostream& os) {
    write_scalar(os, kHnswMagic);
    write_scalar(os, kVersion);
    write_scalar<std::uint64_t>(os, index.config_.dim);
    write_scalar<std::uint64_t>(os, index.config_.M);
    write_scalar<std::uint64_t>(os, index.config_.ef_construction);
    write_scalar<std::uint64_t>(os, index.config_.ef_search);
    write_scalar<std::uint64_t>(os, index.config_.seed);

    write_scalar<std::uint32_t>(os, index.entry_point_);
    write_scalar<std::uint64_t>(os, index.max_level_);
    write_scalar<std::uint8_t>(os, index.empty_ ? 1 : 0);

    write_scalar<std::uint64_t>(os, index.nodes_.size());
    for (const auto& node : index.nodes_) {
        write_scalar<std::uint32_t>(os, node.label);
        write_vector(os, node.point);
        write_vector(os, node.in_degree);
        write_scalar<std::uint64_t>(os, node.links.size());
        for (const auto& layer_links : node.links) {
            write_vector(os, layer_links);
        }
    }
    if (!os) {
        throw std::runtime_error{"ann::serialize: write failed"};
    }
}

HnswIndex load_index(std::istream& is) {
    check_header(is, kHnswMagic, "HnswIndex");
    HnswConfig config;
    config.dim = read_scalar<std::uint64_t>(is);
    config.M = read_scalar<std::uint64_t>(is);
    config.ef_construction = read_scalar<std::uint64_t>(is);
    config.ef_search = read_scalar<std::uint64_t>(is);
    config.seed = read_scalar<std::uint64_t>(is);
    HnswIndex index{config};

    index.entry_point_ = read_scalar<std::uint32_t>(is);
    index.max_level_ = read_scalar<std::uint64_t>(is);
    index.empty_ = read_scalar<std::uint8_t>(is) != 0;

    const auto node_count = read_scalar<std::uint64_t>(is);
    index.nodes_.reserve(node_count);
    for (std::uint64_t i = 0; i < node_count; ++i) {
        HnswIndex::Node node;
        node.label = read_scalar<std::uint32_t>(is);
        node.point = read_vector<float>(is);
        if (node.point.size() != config.dim) {
            throw std::runtime_error{"ann::serialize: node dim mismatch"};
        }
        node.in_degree = read_vector<std::uint32_t>(is);
        const auto levels = read_scalar<std::uint64_t>(is);
        if (levels == 0 || levels > 64) {
            throw std::runtime_error{"ann::serialize: bad level count"};
        }
        node.links.resize(levels);
        for (auto& layer_links : node.links) {
            layer_links = read_vector<std::uint32_t>(is);
            for (std::uint32_t target : layer_links) {
                if (target >= node_count) {
                    throw std::runtime_error{
                        "ann::serialize: dangling link target"};
                }
            }
        }
        index.label_to_id_.emplace(node.label,
                                   static_cast<std::uint32_t>(i));
        index.nodes_.push_back(std::move(node));
    }
    if (!index.empty_ && index.entry_point_ >= index.nodes_.size()) {
        throw std::runtime_error{"ann::serialize: bad entry point"};
    }
    return index;
}

void save_quantizer(const ProductQuantizer& pq, std::ostream& os) {
    write_scalar(os, kPqMagic);
    write_scalar(os, kVersion);
    write_scalar<std::uint64_t>(os, pq.config_.dim);
    write_scalar<std::uint64_t>(os, pq.config_.num_subspaces);
    write_scalar<std::uint64_t>(os, pq.config_.codebook_size);
    write_scalar<std::uint64_t>(os, pq.config_.kmeans_iterations);
    write_scalar<std::uint64_t>(os, pq.config_.seed);
    write_scalar<std::uint8_t>(os, pq.trained_ ? 1 : 0);
    for (const auto& codebook : pq.codebooks_) {
        write_vector(os, codebook);
    }
    if (!os) {
        throw std::runtime_error{"ann::serialize: write failed"};
    }
}

ProductQuantizer load_quantizer(std::istream& is) {
    check_header(is, kPqMagic, "ProductQuantizer");
    PqConfig config;
    config.dim = read_scalar<std::uint64_t>(is);
    config.num_subspaces = read_scalar<std::uint64_t>(is);
    config.codebook_size = read_scalar<std::uint64_t>(is);
    config.kmeans_iterations = read_scalar<std::uint64_t>(is);
    config.seed = read_scalar<std::uint64_t>(is);
    ProductQuantizer pq{config};
    pq.trained_ = read_scalar<std::uint8_t>(is) != 0;
    for (auto& codebook : pq.codebooks_) {
        codebook = read_vector<float>(is);
        if (pq.trained_ &&
            codebook.size() != config.codebook_size * pq.sub_dim_) {
            throw std::runtime_error{"ann::serialize: codebook size mismatch"};
        }
    }
    return pq;
}

}  // namespace spider::ann
