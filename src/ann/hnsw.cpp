#include "ann/hnsw.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace spider::ann {

HnswIndex::HnswIndex(HnswConfig config)
    : config_{config},
      level_lambda_{1.0 / std::log(static_cast<double>(std::max<std::size_t>(config.M, 2)))},
      rng_{config.seed} {
    if (config_.dim == 0) throw std::invalid_argument{"HnswIndex: dim must be > 0"};
    if (config_.M < 2) throw std::invalid_argument{"HnswIndex: M must be >= 2"};
    if (config_.ef_construction < config_.M) {
        throw std::invalid_argument{"HnswIndex: ef_construction must be >= M"};
    }
}

HnswIndex::HnswIndex(HnswIndex&& other) noexcept
    : config_{other.config_},
      level_lambda_{other.level_lambda_},
      rng_{other.rng_},
      nodes_{std::move(other.nodes_)},
      label_to_id_{std::move(other.label_to_id_)},
      entry_point_{other.entry_point_},
      max_level_{other.max_level_},
      empty_{other.empty_},
      dist_comps_{other.dist_comps_.load(std::memory_order_relaxed)} {
    // visit_pool_ / phase_mutex_ start fresh: a moved index has no
    // in-flight queries by precondition.
}

HnswIndex& HnswIndex::operator=(HnswIndex&& other) noexcept {
    if (this != &other) {
        config_ = other.config_;
        level_lambda_ = other.level_lambda_;
        rng_ = other.rng_;
        nodes_ = std::move(other.nodes_);
        label_to_id_ = std::move(other.label_to_id_);
        entry_point_ = other.entry_point_;
        max_level_ = other.max_level_;
        empty_ = other.empty_;
        dist_comps_.store(other.dist_comps_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    }
    return *this;
}

HnswIndex::VisitTable HnswIndex::VisitTablePool::acquire(std::size_t n) {
    VisitTable table;
    {
        const std::lock_guard lock{mutex_};
        if (!free_.empty()) {
            table = std::move(free_.back());
            free_.pop_back();
        }
    }
    if (table.stamp.size() < n) {
        table.stamp.resize(n, 0);
    }
    ++table.epoch;
    if (table.epoch == 0) {  // wrapped: reset stamps
        std::fill(table.stamp.begin(), table.stamp.end(), 0);
        table.epoch = 1;
    }
    return table;
}

void HnswIndex::VisitTablePool::release(VisitTable&& table) {
    const std::lock_guard lock{mutex_};
    free_.push_back(std::move(table));
}

bool HnswIndex::contains(std::uint32_t label) const {
    const std::shared_lock lock{phase_mutex_};
    return label_to_id_.contains(label);
}

float HnswIndex::dist(std::span<const float> a, std::span<const float> b) const {
    dist_comps_.fetch_add(1, std::memory_order_relaxed);
    return tensor::squared_l2(a, b);  // Monotone in L2; sqrt only at the API edge.
}

std::size_t HnswIndex::random_level() {
    const double u = std::max(rng_.uniform(), 1e-12);
    const auto level = static_cast<std::size_t>(-std::log(u) * level_lambda_);
    return std::min<std::size_t>(level, 31);
}

std::uint32_t HnswIndex::greedy_closest(std::span<const float> query,
                                        std::uint32_t entry,
                                        std::size_t layer) const {
    std::uint32_t current = entry;
    float current_dist = dist(query, nodes_[current].point);
    bool improved = true;
    while (improved) {
        improved = false;
        for (std::uint32_t neighbor : nodes_[current].links[layer]) {
            const float d = dist(query, nodes_[neighbor].point);
            if (d < current_dist) {
                current = neighbor;
                current_dist = d;
                improved = true;
            }
        }
    }
    return current;
}

std::vector<HnswIndex::Candidate> HnswIndex::search_layer(
    std::span<const float> query, std::uint32_t entry, std::size_t ef,
    std::size_t layer, VisitTable& visited) const {
    // One lease covers a whole descent; a fresh epoch per layer resets the
    // visited set without touching memory.
    std::vector<std::uint32_t>& stamp = visited.stamp;
    ++visited.epoch;
    if (visited.epoch == 0) {  // wrapped: reset stamps
        std::fill(stamp.begin(), stamp.end(), 0);
        visited.epoch = 1;
    }
    const std::uint32_t epoch = visited.epoch;

    std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>>
        to_visit;  // min-heap by distance
    std::priority_queue<Candidate> best;  // max-heap: worst of the ef best on top

    const float entry_dist = dist(query, nodes_[entry].point);
    to_visit.push({entry_dist, entry});
    best.push({entry_dist, entry});
    stamp[entry] = epoch;

    while (!to_visit.empty()) {
        const Candidate current = to_visit.top();
        to_visit.pop();
        if (current.distance > best.top().distance && best.size() >= ef) break;

        for (std::uint32_t neighbor : nodes_[current.id].links[layer]) {
            if (stamp[neighbor] == epoch) continue;
            stamp[neighbor] = epoch;
            const float d = dist(query, nodes_[neighbor].point);
            if (best.size() < ef || d < best.top().distance) {
                to_visit.push({d, neighbor});
                best.push({d, neighbor});
                if (best.size() > ef) best.pop();
            }
        }
    }

    std::vector<Candidate> result;
    result.resize(best.size());
    for (std::size_t i = best.size(); i-- > 0;) {
        result[i] = best.top();
        best.pop();
    }
    return result;  // ascending by distance
}

std::vector<std::uint32_t> HnswIndex::select_neighbors(
    std::span<const float> query, std::vector<Candidate> candidates,
    std::size_t m) const {
    std::sort(candidates.begin(), candidates.end());
    std::vector<std::uint32_t> selected;
    selected.reserve(m);
    for (const Candidate& cand : candidates) {
        if (selected.size() >= m) break;
        // Keep only candidates closer to the query than to any kept
        // neighbor — spreads links across directions (HNSW Algorithm 4).
        bool keep = true;
        for (std::uint32_t kept : selected) {
            const float d_to_kept =
                dist(nodes_[cand.id].point, nodes_[kept].point);
            if (d_to_kept < cand.distance) {
                keep = false;
                break;
            }
        }
        if (keep) selected.push_back(cand.id);
    }
    // Backfill with nearest rejected candidates if underfull (keeps graphs
    // connected in clustered data).
    if (selected.size() < m) {
        for (const Candidate& cand : candidates) {
            if (selected.size() >= m) break;
            if (std::find(selected.begin(), selected.end(), cand.id) ==
                selected.end()) {
                selected.push_back(cand.id);
            }
        }
    }
    (void)query;
    return selected;
}

void HnswIndex::link(std::uint32_t id,
                     std::span<const std::uint32_t> neighbors,
                     std::size_t layer) {
    auto& own_links = nodes_[id].links[layer];
    // Replace out-edges; maintain the targets' in-degree counters. An old
    // target whose in-degree would hit zero keeps its edge (appended past
    // the budget) — dropping a node's last in-edge would cut it off from
    // the directed search graph.
    const std::vector<std::uint32_t> old_links = own_links;
    std::vector<std::uint32_t> keep;
    for (std::uint32_t old_target : old_links) {
        const bool in_new = std::find(neighbors.begin(), neighbors.end(),
                                      old_target) != neighbors.end();
        if (in_new) continue;  // still linked; count unchanged
        auto& count = nodes_[old_target].in_degree[layer];
        if (count <= 1) {
            keep.push_back(old_target);
        } else {
            --count;
        }
    }
    own_links.assign(neighbors.begin(), neighbors.end());
    own_links.insert(own_links.end(), keep.begin(), keep.end());
    for (std::uint32_t target : neighbors) {
        const bool was_old = std::find(old_links.begin(), old_links.end(),
                                       target) != old_links.end();
        if (!was_old) ++nodes_[target].in_degree[layer];
    }

    for (std::uint32_t neighbor : neighbors) {
        auto& back = nodes_[neighbor].links[layer];
        if (std::find(back.begin(), back.end(), id) != back.end()) continue;
        back.push_back(id);
        ++nodes_[id].in_degree[layer];
        const std::size_t budget = max_links(layer);
        if (back.size() > budget) {
            // Shrink with the same heuristic, from the neighbor's view —
            // but (a) never prune the edge just added (it may be the
            // updated node's only in-edge) and (b) never prune an edge
            // that is its target's *last* in-edge anywhere: either would
            // make a node unreachable by the directed greedy search.
            std::vector<Candidate> cands;
            cands.reserve(back.size());
            for (std::uint32_t other : back) {
                cands.push_back(
                    {dist(nodes_[neighbor].point, nodes_[other].point), other});
            }
            std::vector<std::uint32_t> pruned = select_neighbors(
                nodes_[neighbor].point, std::move(cands), budget);
            if (std::find(pruned.begin(), pruned.end(), id) == pruned.end()) {
                pruned.back() = id;
            }
            for (std::uint32_t other : back) {
                const bool kept = std::find(pruned.begin(), pruned.end(),
                                            other) != pruned.end();
                if (kept) continue;
                auto& count = nodes_[other].in_degree[layer];
                if (count <= 1) {
                    pruned.push_back(other);  // last in-edge: keep (overflow)
                } else {
                    --count;
                }
            }
            back = std::move(pruned);
        }
    }
}

void HnswIndex::wire_node(std::uint32_t id) {
    const std::size_t node_level = nodes_[id].links.size() - 1;
    std::span<const float> query = nodes_[id].point;
    VisitLease lease{visit_pool_, nodes_.size()};

    std::uint32_t entry = entry_point_;
    // Descend through layers above the node's level greedily.
    for (std::size_t layer = max_level_; layer > node_level; --layer) {
        entry = greedy_closest(query, entry, layer);
    }
    // From min(max_level_, node_level) down to 0: beam-search and link.
    const std::size_t top = std::min(max_level_, node_level);
    for (std::size_t layer = top + 1; layer-- > 0;) {
        std::vector<Candidate> candidates = search_layer(
            query, entry, config_.ef_construction, layer, lease.table);
        // Exclude self (present when rewiring an updated node).
        candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                        [id](const Candidate& c) {
                                            return c.id == id;
                                        }),
                         candidates.end());
        if (!candidates.empty()) {
            entry = candidates.front().id;
            const std::vector<std::uint32_t> neighbors = select_neighbors(
                query, candidates, max_links(layer));
            link(id, neighbors, layer);
        }
    }
}

void HnswIndex::upsert(std::uint32_t label, std::span<const float> vec) {
    if (vec.size() != config_.dim) {
        throw std::invalid_argument{"HnswIndex::upsert: bad dimension"};
    }
    const std::unique_lock lock{phase_mutex_};  // writer phase: exclusive

    if (auto it = label_to_id_.find(label); it != label_to_id_.end()) {
        // In-place update (the hnswlib updatePoint strategy): replace the
        // vector and rewire the node's *out*-links from a fresh descent,
        // but keep existing in-edges intact. A stale in-edge is merely a
        // sub-optimal long link — distances are always recomputed from the
        // current vectors — while removing it could disconnect the node
        // from the directed search graph entirely.
        const std::uint32_t id = it->second;
        std::copy(vec.begin(), vec.end(), nodes_[id].point.begin());
        if (nodes_.size() == 1) return;
        if (entry_point_ == id) {
            // Descend from another top node so the (moved) entry doesn't
            // anchor its own search; a linear scan for the max level is
            // fine — updates are rare relative to searches.
            std::uint32_t best = id == 0 ? 1 : 0;
            std::size_t best_level = nodes_[best].links.size() - 1;
            for (std::uint32_t other = 0; other < nodes_.size(); ++other) {
                if (other == id) continue;
                const std::size_t lvl = nodes_[other].links.size() - 1;
                if (lvl > best_level) {
                    best = other;
                    best_level = lvl;
                }
            }
            entry_point_ = best;
            max_level_ = best_level;
        }
        wire_node(id);
        // Updated node may still own the globally max level.
        const std::size_t node_level = nodes_[id].links.size() - 1;
        if (node_level > max_level_) {
            max_level_ = node_level;
            entry_point_ = id;
        }
        return;
    }

    Node node;
    node.label = label;
    node.point.assign(vec.begin(), vec.end());
    const std::size_t level = empty_ ? 0 : random_level();
    node.links.resize(level + 1);
    node.in_degree.assign(level + 1, 0);
    const auto id = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(std::move(node));
    label_to_id_.emplace(label, id);

    if (empty_) {
        entry_point_ = id;
        max_level_ = level;
        empty_ = false;
        return;
    }

    wire_node(id);
    if (level > max_level_) {
        max_level_ = level;
        entry_point_ = id;
    }
}

std::vector<Neighbor> HnswIndex::knn(std::span<const float> query,
                                     std::size_t k, std::size_t ef) const {
    if (query.size() != config_.dim) {
        throw std::invalid_argument{"HnswIndex::knn: bad dimension"};
    }
    const std::shared_lock lock{phase_mutex_};  // reader phase: shared
    if (empty_ || k == 0) return {};

    const std::size_t beam = std::max(ef == 0 ? config_.ef_search : ef, k);
    VisitLease lease{visit_pool_, nodes_.size()};

    std::uint32_t entry = entry_point_;
    for (std::size_t layer = max_level_; layer > 0; --layer) {
        entry = greedy_closest(query, entry, layer);
    }
    std::vector<Candidate> found =
        search_layer(query, entry, beam, 0, lease.table);

    std::vector<Neighbor> result;
    result.reserve(std::min(k, found.size()));
    for (const Candidate& c : found) {
        if (result.size() >= k) break;
        result.push_back({nodes_[c.id].label, std::sqrt(c.distance)});
    }
    return result;
}

std::optional<std::span<const float>> HnswIndex::vector_of(
    std::uint32_t label) const {
    const std::shared_lock lock{phase_mutex_};
    const auto it = label_to_id_.find(label);
    if (it == label_to_id_.end()) return std::nullopt;
    return std::span<const float>{nodes_[it->second].point};
}

std::size_t HnswIndex::degree(std::uint32_t label) const {
    const std::shared_lock lock{phase_mutex_};
    const auto it = label_to_id_.find(label);
    if (it == label_to_id_.end()) return 0;
    return nodes_[it->second].links[0].size();
}

std::size_t HnswIndex::memory_bytes() const {
    const std::shared_lock lock{phase_mutex_};
    std::size_t total = sizeof(*this);
    for (const Node& node : nodes_) {
        total += sizeof(Node);
        total += node.point.capacity() * sizeof(float);
        total += node.in_degree.capacity() * sizeof(std::uint32_t);
        for (const auto& layer_links : node.links) {
            total += layer_links.capacity() * sizeof(std::uint32_t);
        }
    }
    total += label_to_id_.size() *
             (sizeof(std::uint32_t) * 2 + sizeof(void*));  // bucket estimate
    return total;
}

}  // namespace spider::ann
