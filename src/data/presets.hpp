#pragma once

// Dataset presets mirroring the paper's evaluation datasets. `scale`
// multiplies sample counts so the whole harness runs on one CPU core;
// EXPERIMENTS.md records the scale used per experiment. The defaults keep
// the class structure (10 / 100 / 1000 classes) and the relative on-disk
// sample sizes (CIFAR ~3 KB vs ImageNet ~110 KB), which is what the caching
// results depend on.

#include "data/dataset.hpp"

namespace spider::data {

/// CIFAR-10: 50,000 images, 10 classes, ~3 KB/image.
[[nodiscard]] DatasetSpec cifar10_like(double scale = 0.1,
                                       std::uint64_t seed = 42);

/// CIFAR-100: 50,000 images, 100 classes (finer task: closer centroids).
[[nodiscard]] DatasetSpec cifar100_like(double scale = 0.1,
                                        std::uint64_t seed = 43);

/// ImageNet: 1.2M images, 1000 classes, ~110 KB/image. Default scale keeps
/// the sample count ~4x CIFAR's so the "much larger dataset" effects from
/// the paper (Section 6.2, finding 2) remain visible.
[[nodiscard]] DatasetSpec imagenet_like(double scale = 0.016,
                                        std::uint64_t seed = 44);

}  // namespace spider::data
