#include "data/presets.hpp"

#include <algorithm>
#include <cmath>

namespace spider::data {

namespace {

std::size_t scaled(double base, double scale) {
    return static_cast<std::size_t>(std::llround(base * scale));
}

}  // namespace

DatasetSpec cifar10_like(double scale, std::uint64_t seed) {
    DatasetSpec spec;
    spec.name = "CIFAR-10";
    spec.num_samples = std::max<std::size_t>(scaled(50'000, scale), 500);
    spec.num_classes = 10;
    spec.feature_dim = 32;
    spec.class_separation = 0.52;
    spec.cluster_stddev = 1.0;
    spec.boundary_fraction = 0.20;
    spec.isolated_fraction = 0.02;
    spec.mislabeled_fraction = 0.005;
    spec.duplicate_fraction = 0.25;
    spec.imbalance_factor = 6.0;
    spec.bytes_per_sample = 3 * 1024;
    spec.test_samples = std::min<std::size_t>(1000, spec.num_samples / 4);
    spec.seed = seed;
    return spec;
}

DatasetSpec cifar100_like(double scale, std::uint64_t seed) {
    DatasetSpec spec;
    spec.name = "CIFAR-100";
    spec.num_samples = std::max<std::size_t>(scaled(50'000, scale), 1000);
    spec.num_classes = 100;
    spec.feature_dim = 32;
    // 10x more classes in the same volume: centroids sit closer together,
    // making the task genuinely harder (paper: CIFAR-100 accuracies are
    // roughly half of CIFAR-10's).
    spec.class_separation = 0.40;
    spec.cluster_stddev = 1.0;
    spec.boundary_fraction = 0.20;
    spec.isolated_fraction = 0.02;
    spec.mislabeled_fraction = 0.005;
    spec.duplicate_fraction = 0.25;
    spec.imbalance_factor = 6.0;
    spec.bytes_per_sample = 3 * 1024;
    spec.test_samples = std::min<std::size_t>(1500, spec.num_samples / 4);
    spec.seed = seed;
    return spec;
}

DatasetSpec imagenet_like(double scale, std::uint64_t seed) {
    DatasetSpec spec;
    spec.name = "ImageNet";
    spec.num_samples = std::max<std::size_t>(scaled(1'200'000, scale), 2000);
    // Full ImageNet has 1000 classes; at reduced sample counts we keep the
    // samples-per-class ratio (~1200) bounded below by using 100 classes
    // past which accuracy dynamics stop changing.
    spec.num_classes = 100;
    spec.feature_dim = 48;
    spec.class_separation = 0.50;
    spec.cluster_stddev = 1.0;
    spec.boundary_fraction = 0.15;
    spec.isolated_fraction = 0.02;
    spec.mislabeled_fraction = 0.005;
    spec.duplicate_fraction = 0.25;
    spec.imbalance_factor = 6.0;
    spec.bytes_per_sample = 110 * 1024;
    spec.test_samples = std::min<std::size_t>(2000, spec.num_samples / 4);
    spec.seed = seed;
    return spec;
}

}  // namespace spider::data
