#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spider::data {

const char* to_string(SampleState state) {
    switch (state) {
        case SampleState::kCore: return "core";
        case SampleState::kBoundary: return "boundary";
        case SampleState::kIsolated: return "isolated";
        case SampleState::kMislabeled: return "mislabeled";
        case SampleState::kDuplicate: return "duplicate";
    }
    return "unknown";
}

SyntheticDataset::SyntheticDataset(DatasetSpec spec) : spec_{std::move(spec)} {
    if (spec_.num_classes < 2) {
        throw std::invalid_argument{"SyntheticDataset: need >= 2 classes"};
    }
    if (spec_.num_samples < spec_.num_classes) {
        throw std::invalid_argument{"SyntheticDataset: need >= 1 sample/class"};
    }
    const double fractions = spec_.boundary_fraction + spec_.isolated_fraction +
                             spec_.mislabeled_fraction +
                             spec_.duplicate_fraction;
    if (fractions >= 1.0) {
        throw std::invalid_argument{
            "SyntheticDataset: difficulty fractions must sum below 1"};
    }

    util::Rng rng{spec_.seed};

    // Class centroids: i.i.d. Gaussian placement. With per-dimension spread
    // `class_separation`, expected inter-centroid distance is
    // separation * sqrt(2 * dim) — comfortably above the intra-cluster
    // spread stddev * sqrt(dim) for the default settings, so classes are
    // learnable but overlap at the margins.
    centroids_.resize(spec_.num_classes);
    for (std::size_t c = 0; c < spec_.num_classes; ++c) {
        // Under a long tail, rare (high-index) classes also sit closer to
        // the centroid clump: rarity and hardness co-occur, as in real
        // datasets where tail classes are visually entangled with head
        // classes (paper Figure 4 group (d)).
        double separation = spec_.class_separation;
        if (spec_.imbalance_factor > 1.0 && spec_.num_classes > 1) {
            const double tail_position =
                static_cast<double>(c) /
                static_cast<double>(spec_.num_classes - 1);
            separation *= 1.0 - 0.30 * tail_position;
        }
        auto& centroid = centroids_[c];
        centroid.resize(spec_.feature_dim);
        for (float& x : centroid) {
            x = static_cast<float>(rng.normal(0.0, separation));
        }
    }

    // Class assignment: exponential long-tail when imbalance_factor > 1.
    // share(c) ~ imbalance^(-c / (C-1)), normalized; a weighted roll per
    // sample keeps assignment order-independent of id.
    std::vector<double> class_shares(spec_.num_classes, 1.0);
    if (spec_.imbalance_factor > 1.0) {
        for (std::size_t c = 0; c < spec_.num_classes; ++c) {
            const double exponent =
                spec_.num_classes > 1
                    ? static_cast<double>(c) /
                          static_cast<double>(spec_.num_classes - 1)
                    : 0.0;
            class_shares[c] = std::pow(spec_.imbalance_factor, -exponent);
        }
    }
    const util::AliasSampler class_sampler{class_shares};

    samples_.reserve(spec_.num_samples);
    for (std::size_t i = 0; i < spec_.num_samples; ++i) {
        Sample s;
        s.id = static_cast<std::uint32_t>(i);
        s.true_class =
            spec_.imbalance_factor > 1.0
                ? static_cast<std::uint32_t>(class_sampler.draw(rng))
                : static_cast<std::uint32_t>(i % spec_.num_classes);

        const double roll = rng.uniform();
        double edge = spec_.mislabeled_fraction;
        if (roll < edge) {
            s.state = SampleState::kMislabeled;
        } else if (roll < (edge += spec_.isolated_fraction)) {
            s.state = SampleState::kIsolated;
        } else if (roll < (edge += spec_.boundary_fraction)) {
            s.state = SampleState::kBoundary;
        } else if (roll < (edge += spec_.duplicate_fraction)) {
            s.state = SampleState::kDuplicate;
        } else {
            s.state = SampleState::kCore;
        }

        // Second class involved in boundary placement / wrong labels.
        std::uint32_t second = s.true_class;
        while (second == s.true_class) {
            second = static_cast<std::uint32_t>(
                rng.uniform_index(spec_.num_classes));
        }

        s.duplicate_of = s.id;
        if (s.state == SampleState::kDuplicate) {
            // Clone a random earlier same-class sample; fall back to core
            // when no donor exists yet (the first few samples).
            const std::uint32_t donor = find_donor(s.true_class, rng);
            if (donor != s.id) {
                s.duplicate_of = donor;
                s.features = samples_[donor].features;
                const double jitter =
                    spec_.duplicate_jitter * spec_.cluster_stddev;
                for (float& x : s.features) {
                    x += static_cast<float>(rng.normal(0.0, jitter));
                }
                s.label = samples_[donor].label;
                samples_.push_back(std::move(s));
                continue;
            }
            s.state = SampleState::kCore;
        }

        s.features = draw_features(s.true_class, s.state, second, rng);
        s.label = s.state == SampleState::kMislabeled ? second : s.true_class;
        samples_.push_back(std::move(s));
    }

    // Test split: i.i.d. with the training distribution over the
    // correctly-labelled states (core / boundary / isolated) — mislabeled
    // and duplicate rolls fall back to core so accuracy measures true
    // generalization, including on the hard regions IS emphasizes.
    test_features_ = tensor::Matrix{spec_.test_samples, spec_.feature_dim};
    test_labels_.resize(spec_.test_samples);
    for (std::size_t i = 0; i < spec_.test_samples; ++i) {
        const auto cls = static_cast<std::uint32_t>(i % spec_.num_classes);
        const double roll = rng.uniform();
        SampleState state = SampleState::kCore;
        double edge = spec_.mislabeled_fraction + spec_.isolated_fraction;
        if (roll >= spec_.mislabeled_fraction && roll < edge) {
            state = SampleState::kIsolated;
        } else if (roll >= edge && roll < edge + spec_.boundary_fraction) {
            state = SampleState::kBoundary;
        }
        std::uint32_t second = cls;
        while (second == cls) {
            second = static_cast<std::uint32_t>(
                rng.uniform_index(spec_.num_classes));
        }
        const std::vector<float> features =
            draw_features(cls, state, second, rng);
        std::copy(features.begin(), features.end(),
                  test_features_.row(i).begin());
        test_labels_[i] = cls;
    }
}

std::uint32_t SyntheticDataset::find_donor(std::uint32_t cls,
                                           util::Rng& rng) const {
    // A handful of random probes is enough: every (num_classes)-th sample
    // shares the class, so the expected probe count is small.
    for (int attempt = 0; attempt < 16 && !samples_.empty(); ++attempt) {
        const auto probe =
            static_cast<std::uint32_t>(rng.uniform_index(samples_.size()));
        const Sample& candidate = samples_[probe];
        if (candidate.true_class == cls &&
            candidate.state != SampleState::kDuplicate &&
            candidate.state != SampleState::kMislabeled) {
            return candidate.id;
        }
    }
    return static_cast<std::uint32_t>(samples_.size());  // self: no donor
}

std::vector<float> SyntheticDataset::draw_features(std::uint32_t cls,
                                                   SampleState state,
                                                   std::uint32_t second_cls,
                                                   util::Rng& rng) const {
    const std::span<const float> own{centroids_[cls]};
    std::vector<float> features(spec_.feature_dim);
    switch (state) {
        case SampleState::kCore:
        case SampleState::kDuplicate:  // donorless duplicates demote to core
        case SampleState::kMislabeled: {
            // Mislabeled samples *look* like their true class.
            for (std::size_t d = 0; d < spec_.feature_dim; ++d) {
                features[d] = own[d] + static_cast<float>(
                                           rng.normal(0.0, spec_.cluster_stddev));
            }
            break;
        }
        case SampleState::kBoundary: {
            const std::span<const float> other{centroids_[second_cls]};
            // Sit 20-35% of the way toward the second class: hard but
            // still on the correct side of the boundary (learnable).
            const double mix = rng.uniform(0.15, 0.35);
            for (std::size_t d = 0; d < spec_.feature_dim; ++d) {
                const double base =
                    own[d] + mix * (static_cast<double>(other[d]) - own[d]);
                features[d] = static_cast<float>(
                    base + rng.normal(0.0, spec_.cluster_stddev * 0.5));
            }
            break;
        }
        case SampleState::kIsolated: {
            // Outliers must clear the cluster's typical radius
            // sqrt(dim)*stddev; push 1.5-2x that along a random direction.
            const double push = rng.uniform(1.5, 2.0) *
                                std::sqrt(static_cast<double>(spec_.feature_dim)) *
                                spec_.cluster_stddev;
            std::vector<double> direction(spec_.feature_dim);
            double norm = 0.0;
            for (double& d : direction) {
                d = rng.normal();
                norm += d * d;
            }
            norm = std::sqrt(std::max(norm, 1e-12));
            for (std::size_t d = 0; d < spec_.feature_dim; ++d) {
                features[d] = own[d] + static_cast<float>(
                                           direction[d] / norm * push +
                                           rng.normal(0.0, spec_.cluster_stddev * 0.5));
            }
            break;
        }
    }
    return features;
}

const Sample& SyntheticDataset::sample(std::uint32_t id) const {
    if (id >= samples_.size()) {
        throw std::out_of_range{"SyntheticDataset::sample: bad id"};
    }
    return samples_[id];
}

std::uint32_t SyntheticDataset::label_of(std::uint32_t id) const {
    return sample(id).label;
}

tensor::Matrix SyntheticDataset::gather_features(
    std::span<const std::uint32_t> ids) const {
    tensor::Matrix batch{ids.size(), spec_.feature_dim};
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const Sample& s = sample(ids[i]);
        std::copy(s.features.begin(), s.features.end(), batch.row(i).begin());
    }
    return batch;
}

tensor::Matrix SyntheticDataset::gather_features_augmented(
    std::span<const std::uint32_t> ids, util::Rng& rng) const {
    tensor::Matrix batch = gather_features(ids);
    const double jitter = spec_.augment_jitter * spec_.cluster_stddev;
    if (jitter > 0.0) {
        for (float& x : batch.flat()) {
            x += static_cast<float>(rng.normal(0.0, jitter));
        }
    }
    return batch;
}

std::vector<std::uint32_t> SyntheticDataset::gather_labels(
    std::span<const std::uint32_t> ids) const {
    std::vector<std::uint32_t> labels(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
        labels[i] = sample(ids[i]).label;
    }
    return labels;
}

std::span<const float> SyntheticDataset::centroid(std::uint32_t cls) const {
    if (cls >= centroids_.size()) {
        throw std::out_of_range{"SyntheticDataset::centroid: bad class"};
    }
    return centroids_[cls];
}

std::size_t SyntheticDataset::count_state(SampleState state) const {
    return static_cast<std::size_t>(
        std::count_if(samples_.begin(), samples_.end(),
                      [state](const Sample& s) { return s.state == state; }));
}

}  // namespace spider::data
