#pragma once

// Synthetic training datasets. Each class is a Gaussian cluster in feature
// space; individual samples are drawn in one of four difficulty states that
// mirror the paper's Figure 4/8 taxonomy:
//   kCore       — well-classified: near its class centroid.
//   kBoundary   — between its own and a second class's centroid.
//   kIsolated   — far from every centroid.
//   kMislabeled — drawn from one cluster, labelled as another.
// The graph-based importance scorer should rank these Core < Boundary ~
// Isolated < Mislabeled (paper Section 4.1) — a property test asserts this.
//
// A held-out *clean* test split (no mislabeling) is generated alongside the
// training set so per-epoch Top-1 accuracy measures true generalization.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace spider::data {

enum class SampleState : std::uint8_t {
    kCore,
    kBoundary,
    kIsolated,
    kMislabeled,
    /// Jittered copy of an earlier same-class sample. Real training sets
    /// "frequently contain many duplicate or highly similar samples"
    /// (paper Section 4.2) — these are what the Homophily Cache exploits.
    kDuplicate,
};

[[nodiscard]] const char* to_string(SampleState state);

struct Sample {
    std::uint32_t id = 0;
    std::uint32_t label = 0;       // training label (wrong for kMislabeled)
    std::uint32_t true_class = 0;  // generating cluster
    SampleState state = SampleState::kCore;
    /// For kDuplicate: the id this sample was cloned from; otherwise id.
    std::uint32_t duplicate_of = 0;
    std::vector<float> features;
};

struct DatasetSpec {
    std::string name = "synthetic";
    std::size_t num_samples = 5000;
    std::size_t num_classes = 10;
    std::size_t feature_dim = 32;

    /// Per-dimension stddev of class-centroid placement; larger = easier.
    double class_separation = 1.6;
    /// Per-dimension stddev of samples around their centroid.
    double cluster_stddev = 1.0;

    double boundary_fraction = 0.15;
    double isolated_fraction = 0.05;
    double mislabeled_fraction = 0.04;
    /// Fraction of samples that are jittered near-copies of earlier ones.
    double duplicate_fraction = 0.0;
    /// Feature jitter of a duplicate, relative to cluster_stddev.
    double duplicate_jitter = 0.05;
    /// Training-time augmentation noise (relative to cluster_stddev) —
    /// the stand-in for crop/flip pipelines. Makes per-view losses noisy,
    /// which is precisely why per-batch loss ranks are unstable while
    /// graph neighborhoods stay robust (paper Motivation 1).
    double augment_jitter = 0.25;

    /// Long-tail class imbalance: ratio between the most and least
    /// frequent class counts (exponential profile, 1.0 = balanced). Real
    /// image datasets are long-tailed; rare-class samples are exactly the
    /// persistently-important ones (paper Figure 4 group (d)) that
    /// importance sampling must keep revisiting. The test split stays
    /// balanced, so rare-class generalization is weighted fairly.
    double imbalance_factor = 1.0;

    /// Simulated on-disk bytes per sample (drives storage modeling; a CIFAR
    /// image is ~3 KB, an ImageNet JPEG ~110 KB).
    std::size_t bytes_per_sample = 3 * 1024;

    /// Held-out clean test samples.
    std::size_t test_samples = 1000;

    std::uint64_t seed = 42;
};

class SyntheticDataset {
public:
    explicit SyntheticDataset(DatasetSpec spec);

    [[nodiscard]] const DatasetSpec& spec() const { return spec_; }
    [[nodiscard]] std::size_t size() const { return samples_.size(); }
    [[nodiscard]] std::size_t feature_dim() const { return spec_.feature_dim; }
    [[nodiscard]] std::size_t num_classes() const { return spec_.num_classes; }

    [[nodiscard]] const Sample& sample(std::uint32_t id) const;
    [[nodiscard]] std::uint32_t label_of(std::uint32_t id) const;

    /// Batch assembly: rows in `ids` order.
    [[nodiscard]] tensor::Matrix gather_features(
        std::span<const std::uint32_t> ids) const;

    /// Batch assembly with training-time augmentation noise applied.
    [[nodiscard]] tensor::Matrix gather_features_augmented(
        std::span<const std::uint32_t> ids, util::Rng& rng) const;
    [[nodiscard]] std::vector<std::uint32_t> gather_labels(
        std::span<const std::uint32_t> ids) const;

    /// Clean held-out split for accuracy measurement.
    [[nodiscard]] const tensor::Matrix& test_features() const {
        return test_features_;
    }
    [[nodiscard]] std::span<const std::uint32_t> test_labels() const {
        return test_labels_;
    }

    /// Class centroid (for tests and for difficulty diagnostics).
    [[nodiscard]] std::span<const float> centroid(std::uint32_t cls) const;

    /// Count of training samples in each difficulty state.
    [[nodiscard]] std::size_t count_state(SampleState state) const;

private:
    [[nodiscard]] std::uint32_t find_donor(std::uint32_t cls,
                                           util::Rng& rng) const;
    [[nodiscard]] std::vector<float> draw_features(std::uint32_t cls,
                                                   SampleState state,
                                                   std::uint32_t second_cls,
                                                   util::Rng& rng) const;

    DatasetSpec spec_;
    std::vector<std::vector<float>> centroids_;
    std::vector<Sample> samples_;
    tensor::Matrix test_features_;
    std::vector<std::uint32_t> test_labels_;
};

}  // namespace spider::data
