#pragma once

// Minimal trainable-layer abstraction: enough to build the MLP classifiers
// that stand in for the paper's CNNs. Layers cache what they need for the
// backward pass; parameters/gradients are exposed as (param, grad) pairs so
// the optimizer stays layer-agnostic.

#include <memory>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace spider::nn {

/// A named view of one parameter tensor and its gradient accumulator.
struct ParamRef {
    tensor::Matrix* value;
    tensor::Matrix* grad;
};

class Layer {
public:
    virtual ~Layer() = default;

    /// Computes output activations; must cache inputs needed by backward.
    virtual void forward(const tensor::Matrix& input, tensor::Matrix& output) = 0;

    /// Consumes dL/d(output), produces dL/d(input), accumulates parameter
    /// gradients. Must be called after the matching forward.
    virtual void backward(const tensor::Matrix& grad_output,
                          tensor::Matrix& grad_input) = 0;

    /// Parameter/gradient pairs (empty for stateless layers).
    virtual std::vector<ParamRef> params() { return {}; }

    /// Train/eval mode switch (only stochastic layers care).
    virtual void set_training(bool training) { (void)training; }

    /// Zeroes all gradient accumulators.
    void zero_grad();
};

/// Fully-connected layer: out = in @ W + b.  W: [in, out], b: [1, out].
class Linear : public Layer {
public:
    Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng);

    void forward(const tensor::Matrix& input, tensor::Matrix& output) override;
    void backward(const tensor::Matrix& grad_output,
                  tensor::Matrix& grad_input) override;
    std::vector<ParamRef> params() override;

    [[nodiscard]] std::size_t in_features() const { return weight_.rows(); }
    [[nodiscard]] std::size_t out_features() const { return weight_.cols(); }
    [[nodiscard]] tensor::Matrix& weight() { return weight_; }
    [[nodiscard]] tensor::Matrix& bias() { return bias_; }

private:
    tensor::Matrix weight_;
    tensor::Matrix bias_;
    tensor::Matrix weight_grad_;
    tensor::Matrix bias_grad_;
    tensor::Matrix cached_input_;
};

class Relu : public Layer {
public:
    void forward(const tensor::Matrix& input, tensor::Matrix& output) override;
    void backward(const tensor::Matrix& grad_output,
                  tensor::Matrix& grad_input) override;

private:
    tensor::Matrix cached_input_;
};

/// Inverted dropout: at train time each activation is zeroed with
/// probability p and survivors are scaled by 1/(1-p), so eval needs no
/// rescaling. Adds the stochastic regularization CNN training pipelines
/// rely on (and one more source of the per-view loss churn that breaks
/// loss-rank importance scores).
class Dropout : public Layer {
public:
    Dropout(double drop_probability, util::Rng rng);

    void forward(const tensor::Matrix& input, tensor::Matrix& output) override;
    void backward(const tensor::Matrix& grad_output,
                  tensor::Matrix& grad_input) override;
    void set_training(bool training) override { training_ = training; }
    [[nodiscard]] bool training() const { return training_; }

private:
    double drop_probability_;
    util::Rng rng_;
    bool training_ = true;
    tensor::Matrix mask_;  // keep-mask scaled by 1/(1-p)
};

/// Ordered layer stack with intermediate-activation plumbing. Exposes the
/// activation produced by any layer index so the classifier can read the
/// penultimate ("embedding") activations the semantic scorer consumes.
class Sequential : public Layer {
public:
    Sequential() = default;

    Sequential& add(std::unique_ptr<Layer> layer);
    [[nodiscard]] std::size_t num_layers() const { return layers_.size(); }

    void forward(const tensor::Matrix& input, tensor::Matrix& output) override;
    void backward(const tensor::Matrix& grad_output,
                  tensor::Matrix& grad_input) override;
    std::vector<ParamRef> params() override;
    void set_training(bool training) override;

    /// Output activation of layers_[index] from the last forward pass.
    [[nodiscard]] const tensor::Matrix& activation(std::size_t index) const;

private:
    std::vector<std::unique_ptr<Layer>> layers_;
    std::vector<tensor::Matrix> activations_;  // activations_[i] = layer i output
    tensor::Matrix grad_scratch_a_;
    tensor::Matrix grad_scratch_b_;
};

}  // namespace spider::nn
