#include "nn/layers.hpp"

#include <stdexcept>

namespace spider::nn {

void Layer::zero_grad() {
    for (ParamRef ref : params()) {
        ref.grad->zero();
    }
}

Linear::Linear(std::size_t in_features, std::size_t out_features,
               util::Rng& rng)
    : weight_{in_features, out_features},
      bias_{1, out_features},
      weight_grad_{in_features, out_features},
      bias_grad_{1, out_features} {
    weight_.randomize_kaiming(rng, in_features);
}

void Linear::forward(const tensor::Matrix& input, tensor::Matrix& output) {
    cached_input_ = input;
    tensor::matmul(input, weight_, output);
    tensor::add_row_vector(output, bias_.row(0));
}

void Linear::backward(const tensor::Matrix& grad_output,
                      tensor::Matrix& grad_input) {
    // dW += X^T @ dY ; db += column sums of dY ; dX = dY @ W^T.
    tensor::Matrix dw;
    tensor::matmul_at_b(cached_input_, grad_output, dw);
    tensor::axpy(1.0F, dw, weight_grad_);

    for (std::size_t i = 0; i < grad_output.rows(); ++i) {
        const std::span<const float> row = grad_output.row(i);
        const std::span<float> bg = bias_grad_.row(0);
        for (std::size_t j = 0; j < row.size(); ++j) {
            bg[j] += row[j];
        }
    }

    tensor::matmul_a_bt(grad_output, weight_, grad_input);
}

std::vector<ParamRef> Linear::params() {
    return {{&weight_, &weight_grad_}, {&bias_, &bias_grad_}};
}

void Relu::forward(const tensor::Matrix& input, tensor::Matrix& output) {
    cached_input_ = input;
    tensor::relu(input, output);
}

void Relu::backward(const tensor::Matrix& grad_output,
                    tensor::Matrix& grad_input) {
    tensor::relu_backward(cached_input_, grad_output, grad_input);
}

Dropout::Dropout(double drop_probability, util::Rng rng)
    : drop_probability_{drop_probability}, rng_{rng} {
    if (drop_probability < 0.0 || drop_probability >= 1.0) {
        throw std::invalid_argument{"Dropout: p must be in [0, 1)"};
    }
}

void Dropout::forward(const tensor::Matrix& input, tensor::Matrix& output) {
    if (!training_ || drop_probability_ == 0.0) {
        output = input;
        // Identity mask so a backward after an eval forward stays correct.
        mask_ = tensor::Matrix{input.rows(), input.cols(), 1.0F};
        return;
    }
    mask_ = tensor::Matrix{input.rows(), input.cols()};
    const auto scale = static_cast<float>(1.0 / (1.0 - drop_probability_));
    for (float& m : mask_.flat()) {
        m = rng_.uniform() < drop_probability_ ? 0.0F : scale;
    }
    output = tensor::Matrix{input.rows(), input.cols()};
    const std::span<const float> in = input.flat();
    const std::span<const float> mask = mask_.flat();
    const std::span<float> out = output.flat();
    for (std::size_t i = 0; i < in.size(); ++i) {
        out[i] = in[i] * mask[i];
    }
}

void Dropout::backward(const tensor::Matrix& grad_output,
                       tensor::Matrix& grad_input) {
    grad_input = tensor::Matrix{grad_output.rows(), grad_output.cols()};
    const std::span<const float> grad = grad_output.flat();
    const std::span<const float> mask = mask_.flat();
    const std::span<float> out = grad_input.flat();
    for (std::size_t i = 0; i < grad.size(); ++i) {
        out[i] = grad[i] * mask[i];
    }
}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
    activations_.emplace_back();
    return *this;
}

void Sequential::forward(const tensor::Matrix& input, tensor::Matrix& output) {
    if (layers_.empty()) {
        throw std::logic_error{"Sequential::forward on empty stack"};
    }
    const tensor::Matrix* current = &input;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        layers_[i]->forward(*current, activations_[i]);
        current = &activations_[i];
    }
    output = activations_.back();
}

void Sequential::backward(const tensor::Matrix& grad_output,
                          tensor::Matrix& grad_input) {
    if (layers_.empty()) {
        throw std::logic_error{"Sequential::backward on empty stack"};
    }
    grad_scratch_a_ = grad_output;
    tensor::Matrix* incoming = &grad_scratch_a_;
    tensor::Matrix* outgoing = &grad_scratch_b_;
    for (std::size_t i = layers_.size(); i-- > 0;) {
        layers_[i]->backward(*incoming, *outgoing);
        std::swap(incoming, outgoing);
    }
    grad_input = *incoming;
}

std::vector<ParamRef> Sequential::params() {
    std::vector<ParamRef> all;
    for (const auto& layer : layers_) {
        for (ParamRef ref : layer->params()) {
            all.push_back(ref);
        }
    }
    return all;
}

void Sequential::set_training(bool training) {
    for (const auto& layer : layers_) {
        layer->set_training(training);
    }
}

const tensor::Matrix& Sequential::activation(std::size_t index) const {
    return activations_.at(index);
}

}  // namespace spider::nn
