#pragma once

// MLP classifier with an explicit "feature extraction" trunk and a linear
// classification head. The trunk's final activation is the *embedding* that
// SpiderCache's graph-based importance scorer consumes — mirroring how the
// paper taps the feature-extraction layer of its CNNs (Section 4.1).

#include <cstdint>
#include <span>
#include <vector>

#include "nn/layers.hpp"
#include "nn/optimizer.hpp"
#include "tensor/matrix.hpp"

namespace spider::nn {

struct MlpConfig {
    std::size_t input_dim = 32;
    /// Hidden widths; the last entry is the embedding dimension.
    std::vector<std::size_t> hidden_dims = {64, 32};
    std::size_t num_classes = 10;
    /// Dropout probability after each hidden ReLU (0 = no dropout layers).
    double dropout = 0.0;
    SgdConfig sgd;
    std::uint64_t seed = 1;
};

/// Everything the data-loading / caching stack needs from one forward pass.
struct ForwardResult {
    double mean_loss = 0.0;
    std::vector<double> per_sample_loss;       // loss-based IS input
    tensor::Matrix embeddings;                 // [batch, embedding_dim]
    std::vector<std::uint32_t> predictions;    // argmax per row
};

class MlpClassifier {
public:
    explicit MlpClassifier(MlpConfig config);

    [[nodiscard]] std::size_t embedding_dim() const { return embedding_dim_; }
    [[nodiscard]] std::size_t num_classes() const { return config_.num_classes; }

    /// Forward pass; caches activations/probabilities for a following
    /// backward_and_step on the same batch.
    ForwardResult forward(const tensor::Matrix& inputs,
                          std::span<const std::uint32_t> labels);

    /// Backward pass + SGD step for the batch most recently given to
    /// forward(). `train_mask`, when non-empty, selects which rows
    /// contribute gradient — this is how iCache-style compute-bound IS
    /// skips backpropagation for well-learned samples.
    void backward_and_step(std::span<const std::uint32_t> labels,
                           std::span<const std::uint8_t> train_mask = {});

    /// Top-1 accuracy on a labelled set (no gradient side effects).
    [[nodiscard]] double evaluate(const tensor::Matrix& inputs,
                                  std::span<const std::uint32_t> labels);

    void set_learning_rate(float lr) { optimizer_.set_learning_rate(lr); }

private:
    MlpConfig config_;
    std::size_t embedding_dim_;
    util::Rng rng_;        // Must precede trunk_/head_: they draw init weights.
    Sequential trunk_;     // Linear/ReLU stack ending at the embedding.
    Linear head_;          // embedding -> logits
    SgdOptimizer optimizer_;

    // Cached state from the last forward pass.
    tensor::Matrix embeddings_;
    tensor::Matrix logits_;
    tensor::Matrix probs_;
};

}  // namespace spider::nn
