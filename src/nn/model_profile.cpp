#include "nn/model_profile.hpp"

#include <stdexcept>

namespace spider::nn {

ModelProfile make_profile(ModelKind kind) {
    ModelProfile p;
    p.kind = kind;
    switch (kind) {
        case ModelKind::kResNet18:
            // Table 1: Stage1 42ms, Stage2 35ms, IS 16ms.
            p.name = "ResNet18";
            p.paper_embedding_dim = 512;
            p.sim_embedding_dim = 32;
            p.sim_hidden_dims = {64, 32};
            p.forward_ms = 14.0;
            p.backward_ms = 35.0;
            p.is_ms = 16.0;
            p.table1_stage1_ms = 42.0;
            break;
        case ModelKind::kResNet50:
            // Table 1: Stage1 48ms, Stage2 37ms, IS 18ms.
            p.name = "ResNet50";
            p.paper_embedding_dim = 2048;
            p.sim_embedding_dim = 48;
            p.sim_hidden_dims = {96, 64, 48};
            p.forward_ms = 18.0;
            p.backward_ms = 37.0;
            p.is_ms = 18.0;
            p.table1_stage1_ms = 48.0;
            break;
        case ModelKind::kAlexNet:
            // Table 1: Stage1 62ms, Stage2 33ms, IS 35ms. Fig. 12(b) pipeline.
            p.name = "AlexNet";
            p.paper_embedding_dim = 4096;
            p.sim_embedding_dim = 64;
            p.sim_hidden_dims = {96, 64};
            p.forward_ms = 30.0;
            p.backward_ms = 33.0;
            p.is_ms = 35.0;
            p.long_is_pipeline = true;
            p.table1_stage1_ms = 62.0;
            break;
        case ModelKind::kVgg16:
            // Table 1: Stage1 56ms, Stage2 28ms, IS 31ms. Fig. 12(b) pipeline.
            p.name = "Vgg16";
            p.paper_embedding_dim = 4096;
            p.sim_embedding_dim = 64;
            p.sim_hidden_dims = {128, 64};
            p.forward_ms = 26.0;
            p.backward_ms = 28.0;
            p.is_ms = 31.0;
            p.long_is_pipeline = true;
            p.table1_stage1_ms = 56.0;
            break;
        case ModelKind::kMobileNetV2:
            p.name = "MobileNetV2";
            p.paper_embedding_dim = 1280;
            p.sim_embedding_dim = 40;
            p.sim_hidden_dims = {64, 40};
            p.forward_ms = 10.0;
            p.backward_ms = 22.0;
            p.is_ms = 14.0;
            p.table1_stage1_ms = 32.0;
            break;
        case ModelKind::kInceptionV3:
            p.name = "InceptionV3";
            p.paper_embedding_dim = 2048;
            p.sim_embedding_dim = 48;
            p.sim_hidden_dims = {96, 48};
            p.forward_ms = 20.0;
            p.backward_ms = 34.0;
            p.is_ms = 18.0;
            p.table1_stage1_ms = 50.0;
            break;
        default:
            throw std::invalid_argument{"make_profile: unknown ModelKind"};
    }
    return p;
}

const std::vector<ModelProfile>& all_profiles() {
    static const std::vector<ModelProfile> profiles = {
        make_profile(ModelKind::kResNet18),   make_profile(ModelKind::kResNet50),
        make_profile(ModelKind::kAlexNet),    make_profile(ModelKind::kVgg16),
        make_profile(ModelKind::kMobileNetV2),
        make_profile(ModelKind::kInceptionV3),
    };
    return profiles;
}

std::vector<ModelProfile> evaluated_profiles() {
    return {make_profile(ModelKind::kResNet18), make_profile(ModelKind::kResNet50),
            make_profile(ModelKind::kAlexNet), make_profile(ModelKind::kVgg16)};
}

}  // namespace spider::nn
