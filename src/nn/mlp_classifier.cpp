#include "nn/mlp_classifier.hpp"

#include <memory>
#include <stdexcept>

namespace spider::nn {

namespace {

std::vector<ParamRef> gather_params(Sequential& trunk, Linear& head) {
    std::vector<ParamRef> all = trunk.params();
    for (ParamRef ref : head.params()) {
        all.push_back(ref);
    }
    return all;
}

Sequential build_trunk(const MlpConfig& config, util::Rng& rng) {
    if (config.hidden_dims.empty()) {
        throw std::invalid_argument{"MlpClassifier: need at least one hidden layer"};
    }
    Sequential trunk;
    std::size_t in_dim = config.input_dim;
    for (std::size_t width : config.hidden_dims) {
        trunk.add(std::make_unique<Linear>(in_dim, width, rng));
        trunk.add(std::make_unique<Relu>());
        if (config.dropout > 0.0) {
            trunk.add(std::make_unique<Dropout>(config.dropout, rng.split()));
        }
        in_dim = width;
    }
    return trunk;
}

}  // namespace

MlpClassifier::MlpClassifier(MlpConfig config)
    : config_{std::move(config)},
      embedding_dim_{config_.hidden_dims.empty() ? 0 : config_.hidden_dims.back()},
      rng_{config_.seed},
      trunk_{build_trunk(config_, rng_)},
      head_{embedding_dim_, config_.num_classes, rng_},
      optimizer_{gather_params(trunk_, head_), config_.sgd} {}

ForwardResult MlpClassifier::forward(const tensor::Matrix& inputs,
                                     std::span<const std::uint32_t> labels) {
    if (inputs.cols() != config_.input_dim) {
        throw std::invalid_argument{"MlpClassifier::forward: bad input dim"};
    }
    trunk_.forward(inputs, embeddings_);
    head_.forward(embeddings_, logits_);
    tensor::softmax_rows(logits_, probs_);

    ForwardResult result;
    result.per_sample_loss = tensor::cross_entropy_per_row(probs_, labels);
    double total = 0.0;
    for (double l : result.per_sample_loss) total += l;
    result.mean_loss =
        result.per_sample_loss.empty()
            ? 0.0
            : total / static_cast<double>(result.per_sample_loss.size());
    result.embeddings = embeddings_;
    result.predictions = tensor::argmax_rows(probs_);
    return result;
}

void MlpClassifier::backward_and_step(
    std::span<const std::uint32_t> labels,
    std::span<const std::uint8_t> train_mask) {
    if (probs_.rows() != labels.size()) {
        throw std::logic_error{
            "MlpClassifier::backward_and_step without matching forward"};
    }
    tensor::Matrix dlogits;
    tensor::softmax_cross_entropy_backward(probs_, labels, dlogits);

    if (!train_mask.empty()) {
        if (train_mask.size() != dlogits.rows()) {
            throw std::invalid_argument{"train_mask size mismatch"};
        }
        for (std::size_t i = 0; i < dlogits.rows(); ++i) {
            if (train_mask[i] == 0) {
                for (float& g : dlogits.row(i)) g = 0.0F;
            }
        }
    }

    tensor::Matrix dembed;
    head_.backward(dlogits, dembed);
    tensor::Matrix dinput;
    trunk_.backward(dembed, dinput);
    optimizer_.step();
}

double MlpClassifier::evaluate(const tensor::Matrix& inputs,
                               std::span<const std::uint32_t> labels) {
    if (inputs.rows() != labels.size()) {
        throw std::invalid_argument{"evaluate: rows/labels mismatch"};
    }
    if (inputs.rows() == 0) return 0.0;
    // Reuses the forward path; training state (cached activations) is
    // clobbered, so callers evaluate between batches, not inside them.
    // Stochastic layers (dropout) run in eval mode for the measurement.
    trunk_.set_training(false);
    tensor::Matrix embeddings;
    trunk_.forward(inputs, embeddings);
    tensor::Matrix logits;
    head_.forward(embeddings, logits);
    trunk_.set_training(true);
    const std::vector<std::uint32_t> preds = tensor::argmax_rows(logits);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < preds.size(); ++i) {
        if (preds[i] == labels[i]) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(preds.size());
}

}  // namespace spider::nn
