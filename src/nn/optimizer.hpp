#pragma once

// SGD with momentum and decoupled weight decay — the optimizer the paper's
// training runs use (standard for the ResNet/CIFAR family).

#include <vector>

#include "nn/layers.hpp"

namespace spider::nn {

struct SgdConfig {
    float learning_rate = 0.05F;
    float momentum = 0.9F;
    float weight_decay = 5e-4F;
};

class SgdOptimizer {
public:
    SgdOptimizer(std::vector<ParamRef> params, SgdConfig config);

    /// Applies one update from the accumulated gradients, then zeroes them.
    void step();

    void set_learning_rate(float lr) { config_.learning_rate = lr; }
    [[nodiscard]] float learning_rate() const { return config_.learning_rate; }

private:
    std::vector<ParamRef> params_;
    std::vector<tensor::Matrix> velocity_;
    SgdConfig config_;
};

/// Cosine learning-rate schedule from lr_max to lr_min over total_epochs.
[[nodiscard]] float cosine_lr(float lr_max, float lr_min, std::size_t epoch,
                              std::size_t total_epochs);

}  // namespace spider::nn
