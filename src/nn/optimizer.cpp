#include "nn/optimizer.hpp"

#include <cmath>
#include <numbers>

namespace spider::nn {

SgdOptimizer::SgdOptimizer(std::vector<ParamRef> params, SgdConfig config)
    : params_{std::move(params)}, config_{config} {
    velocity_.reserve(params_.size());
    for (const ParamRef& ref : params_) {
        velocity_.emplace_back(ref.value->rows(), ref.value->cols());
    }
}

void SgdOptimizer::step() {
    for (std::size_t p = 0; p < params_.size(); ++p) {
        const std::span<float> value = params_[p].value->flat();
        const std::span<float> grad = params_[p].grad->flat();
        const std::span<float> vel = velocity_[p].flat();
        for (std::size_t i = 0; i < value.size(); ++i) {
            const float g = grad[i] + config_.weight_decay * value[i];
            vel[i] = config_.momentum * vel[i] + g;
            value[i] -= config_.learning_rate * vel[i];
            grad[i] = 0.0F;
        }
    }
}

float cosine_lr(float lr_max, float lr_min, std::size_t epoch,
                std::size_t total_epochs) {
    if (total_epochs <= 1) return lr_max;
    const double progress = static_cast<double>(epoch) /
                            static_cast<double>(total_epochs - 1);
    const double cosine = 0.5 * (1.0 + std::cos(std::numbers::pi * progress));
    return lr_min + (lr_max - lr_min) * static_cast<float>(cosine);
}

}  // namespace spider::nn
