#pragma once

// Model profiles: each DNN architecture the paper evaluates becomes a
// profile pairing (a) a real trainable MLP configuration used for genuine
// loss/embedding/accuracy dynamics, with (b) a per-mini-batch cost model
// calibrated to the paper's measurements (Table 1) so that time-based
// results reproduce the paper's proportions on the virtual clock.
//
// Table 1 reports Stage1 = DataLoader + forward, Stage2 = backward +
// optimize, IS = graph-based importance computation. We split Stage1 into
// its load and forward parts so the simulator can price cache hits and
// misses separately.

#include <cstdint>
#include <string>
#include <vector>

namespace spider::nn {

enum class ModelKind : std::uint8_t {
    kResNet18,
    kResNet50,
    kAlexNet,
    kVgg16,
    kMobileNetV2,
    kInceptionV3,
};

struct ModelProfile {
    ModelKind kind = ModelKind::kResNet18;
    std::string name;

    /// Real embedding dimensionality of the paper's architecture (512 for
    /// ResNet18, 2048 for ResNet50, 4096 for AlexNet/VGG16). Drives the IS
    /// cost model: HNSW runtime scales with embedding dimension.
    std::size_t paper_embedding_dim = 512;

    /// Embedding width used by the stand-in MLP (scaled down so the whole
    /// harness trains on one CPU core).
    std::size_t sim_embedding_dim = 32;

    /// Hidden widths of the stand-in MLP (last = sim_embedding_dim).
    std::vector<std::size_t> sim_hidden_dims = {64, 32};

    // ---- Cost model (virtual milliseconds per mini-batch of 128) ----
    double forward_ms = 20.0;       // forward part of Stage1
    double backward_ms = 35.0;      // Stage2 (backward + optimize)
    double is_ms = 16.0;            // graph-based IS stage (Table 1)
    /// True when the IS stage is long enough that the pipeline must overlap
    /// it with Stage2 *and* the next batch's Stage1 (Fig. 12(b): AlexNet,
    /// VGG16); false for the Fig. 12(a) models.
    bool long_is_pipeline = false;

    /// Table-1 Stage1 value (load+forward) at the paper's measured setup;
    /// used only by the overhead bench to report the same rows.
    double table1_stage1_ms = 42.0;
};

/// The four evaluated architectures plus the two mentioned pipeline models.
[[nodiscard]] ModelProfile make_profile(ModelKind kind);
[[nodiscard]] const std::vector<ModelProfile>& all_profiles();
/// The four models of Table 1 / Fig. 14.
[[nodiscard]] std::vector<ModelProfile> evaluated_profiles();

}  // namespace spider::nn
