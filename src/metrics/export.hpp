#pragma once

// Machine-readable exports for run results: per-epoch CSV (plotting the
// paper's figure series) and a cross-run comparison CSV. Every bench can
// dump its underlying data via SPIDER_BENCH_CSV_DIR for external plotting.

#include <iosfwd>
#include <span>
#include <string>

#include "metrics/metrics.hpp"

namespace spider::metrics {

/// Per-epoch series of one run: epoch, hit ratios by kind, accuracy, loss,
/// score spread, imp-ratio, and stage timings in milliseconds.
void write_epoch_csv(const RunResult& run, std::ostream& os);

/// One summary row per run: strategy, model, dataset, totals.
void write_summary_csv(std::span<const RunResult> runs, std::ostream& os);

/// Writes both CSVs into `directory` as <stem>_epochs.csv and
/// <stem>_summary.csv. Returns false (with a warning log) when the
/// directory is not writable — callers treat exports as best-effort.
bool export_run_csv(std::span<const RunResult> runs,
                    const std::string& directory, const std::string& stem);

}  // namespace spider::metrics
