#include "metrics/export.hpp"

#include <fstream>
#include <ostream>

#include "util/log.hpp"

namespace spider::metrics {

void write_epoch_csv(const RunResult& run, std::ostream& os) {
    os << "strategy,model,dataset,epoch,accesses,hits,importance_hits,"
          "homophily_hits,substitutions,ssd_hits,misses,hit_ratio,"
          "train_loss,test_accuracy,score_std,imp_ratio,load_ms,compute_ms,"
          "is_ms,epoch_ms,fetch_retries,fetch_hedges,fetch_timeouts,"
          "breaker_trips,fault_substitutions,fault_skips,fault_ms,"
          "prefetch_issued,prefetch_hidden,cold_start_misses,"
          "prefetch_window_avg,restored_items,"
          "cluster_local_hits,peer_hits,peer_misses,"
          "cluster_remote,peer_hedges,peer_hedge_wins,peer_throttled,"
          "peer_failovers,slot_waits,peak_in_flight,shadow_hits,"
          "tuner_switches,ssd_misses\n";
    for (const EpochMetrics& e : run.epochs) {
        os << run.strategy << ',' << run.model << ',' << run.dataset << ','
           << e.epoch << ',' << e.accesses << ',' << e.hits << ','
           << e.importance_hits << ',' << e.homophily_hits << ','
           << e.substitutions << ',' << e.ssd_hits << ',' << e.misses << ','
           << e.hit_ratio() << ',' << e.train_loss << ',' << e.test_accuracy
           << ',' << e.score_std << ',' << e.imp_ratio << ','
           << storage::to_ms(e.load_time) << ','
           << storage::to_ms(e.compute_time) << ','
           << storage::to_ms(e.is_time) << ','
           << storage::to_ms(e.epoch_time) << ','
           << e.fetch_retries << ',' << e.fetch_hedges << ','
           << e.fetch_timeouts << ',' << e.breaker_trips << ','
           << e.fault_substitutions << ',' << e.fault_skips << ','
           << storage::to_ms(e.fault_time) << ',' << e.prefetch_issued << ','
           << e.prefetch_hidden << ',' << e.cold_start_misses << ','
           << e.prefetch_window_avg << ',' << e.restored_items << ','
           << e.cluster_local_hits << ','
           << e.peer_hits << ',' << e.peer_misses << ',' << e.cluster_remote
           << ',' << e.peer_hedges << ',' << e.peer_hedge_wins << ','
           << e.peer_throttled << ',' << e.peer_failovers << ','
           << e.slot_waits << ',' << e.peak_in_flight << ','
           << e.shadow_hits << ',' << e.tuner_switches << ','
           << e.ssd_misses << '\n';
    }
}

void write_summary_csv(std::span<const RunResult> runs, std::ostream& os) {
    os << "strategy,model,dataset,epochs,total_minutes,avg_hit_ratio,"
          "tail_hit_ratio,final_accuracy,best_accuracy,fault_minutes,"
          "substituted_fraction\n";
    for (const RunResult& run : runs) {
        os << run.strategy << ',' << run.model << ',' << run.dataset << ','
           << run.epochs.size() << ',' << run.total_minutes() << ','
           << run.average_hit_ratio() << ',' << run.tail_hit_ratio(5) << ','
           << run.final_accuracy << ',' << run.best_accuracy << ','
           << storage::to_minutes(run.total_fault_time()) << ','
           << run.substituted_fraction() << '\n';
    }
}

bool export_run_csv(std::span<const RunResult> runs,
                    const std::string& directory, const std::string& stem) {
    const std::string summary_path = directory + "/" + stem + "_summary.csv";
    std::ofstream summary{summary_path};
    if (!summary) {
        util::log_warn("export_run_csv: cannot write ", summary_path);
        return false;
    }
    write_summary_csv(runs, summary);

    for (const RunResult& run : runs) {
        const std::string path = directory + "/" + stem + "_" + run.strategy +
                                 "_" + run.dataset + "_epochs.csv";
        std::ofstream epochs{path};
        if (!epochs) {
            util::log_warn("export_run_csv: cannot write ", path);
            return false;
        }
        write_epoch_csv(run, epochs);
    }
    return true;
}

}  // namespace spider::metrics
