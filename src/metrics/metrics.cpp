#include "metrics/metrics.hpp"

#include <algorithm>

namespace spider::metrics {

double RunResult::average_hit_ratio() const {
    if (epochs.empty()) return 0.0;
    double sum = 0.0;
    for (const EpochMetrics& e : epochs) sum += e.hit_ratio();
    return sum / static_cast<double>(epochs.size());
}

double RunResult::tail_hit_ratio(std::size_t n) const {
    if (epochs.empty()) return 0.0;
    const std::size_t take = std::min(n, epochs.size());
    double sum = 0.0;
    for (std::size_t i = epochs.size() - take; i < epochs.size(); ++i) {
        sum += epochs[i].hit_ratio();
    }
    return sum / static_cast<double>(take);
}

double RunResult::prefetch_coverage() const {
    std::uint64_t remote = 0;
    std::uint64_t hidden = 0;
    for (const EpochMetrics& e : epochs) {
        remote += e.misses - e.ssd_hits;
        hidden += e.prefetch_hidden;
    }
    return remote == 0 ? 0.0
                       : static_cast<double>(hidden) /
                             static_cast<double>(remote);
}

storage::SimDuration RunResult::total_fault_time() const {
    storage::SimDuration total{};
    for (const EpochMetrics& e : epochs) total += e.fault_time;
    return total;
}

double RunResult::substituted_fraction() const {
    std::uint64_t accesses = 0;
    std::uint64_t substituted = 0;
    for (const EpochMetrics& e : epochs) {
        accesses += e.accesses;
        substituted += e.fault_substitutions;
    }
    return accesses == 0 ? 0.0
                         : static_cast<double>(substituted) /
                               static_cast<double>(accesses);
}

storage::SimDuration RunResult::mean_epoch_time() const {
    if (epochs.empty()) return storage::SimDuration::zero();
    storage::SimDuration total{};
    for (const EpochMetrics& e : epochs) total += e.epoch_time;
    return total / static_cast<std::int64_t>(epochs.size());
}

}  // namespace spider::metrics
