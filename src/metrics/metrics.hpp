#pragma once

// Per-epoch and per-run measurement records. Every bench reads these to
// print its paper table/figure; nothing here is strategy-specific.

#include <cstdint>
#include <string>
#include <vector>

#include "storage/clock.hpp"
#include "trace/trace.hpp"

namespace spider::metrics {

struct EpochMetrics {
    std::size_t epoch = 0;

    // Cache accounting.
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;            // all hit kinds combined
    std::uint64_t importance_hits = 0; // two-layer: importance section
    std::uint64_t homophily_hits = 0;  // two-layer: surrogate served
    std::uint64_t substitutions = 0;   // iCache: random substitute served
    std::uint64_t ssd_hits = 0;       // misses absorbed by the local SSD tier
    /// SSD-tier consults that missed (the tier's own counter — includes
    /// consults of a disabled tier, which always miss, so hit-ratio math
    /// is consistent across `enabled` flips: ssd_hits + ssd_misses ==
    /// tier consults, every epoch, in every mode).
    std::uint64_t ssd_misses = 0;
    std::uint64_t misses = 0;

    // Lookahead prefetcher (zero when prefetch is disabled).
    std::uint64_t prefetch_issued = 0;  // fetches started ahead of demand
    std::uint64_t prefetch_hidden = 0;  // misses whose I/O was overlapped
    /// Remote misses in the epoch's *first* global batch whose fetch was
    /// paid on the demand path — the per-epoch cold start that
    /// epoch-crossing prefetch exists to hide (always <= misses).
    std::uint64_t cold_start_misses = 0;
    /// Mean lookahead window over the epoch's steps: the adaptive
    /// controller's per-step window when prefetch_adaptive, the static
    /// prefetch_window otherwise; 0 with prefetch disabled.
    double prefetch_window_avg = 0.0;
    /// Items resident again after a simulated kill -9 + WAL warm restart
    /// at the start of this epoch (DESIGN.md §12). Zero in epochs with no
    /// restart and in cold (WAL-less) restarts.
    std::uint64_t restored_items = 0;

    // Fault tolerance (DESIGN.md §9; all zero when fault injection is
    // off). Retries/hedges/timeouts/trips come from the resilient client;
    // substitutions/skips are the degradation-ladder outcomes of fetch
    // envelopes that failed outright.
    std::uint64_t fetch_retries = 0;    // attempts beyond each first try
    std::uint64_t fetch_hedges = 0;     // duplicate requests issued
    std::uint64_t fetch_timeouts = 0;   // attempts abandoned at timeout_ms
    std::uint64_t breaker_trips = 0;    // circuit breaker closed -> open
    std::uint64_t fault_substitutions = 0;  // served a cache surrogate
    std::uint64_t fault_skips = 0;      // dropped from the batch (refilled
                                        // once, then skipped for the epoch)

    // Multi-node cooperative cache (DESIGN.md §11; all zero when
    // cluster.nodes <= 1). Sources of the epoch's cluster-serviced
    // misses plus the peer-path resilience events.
    std::uint64_t cluster_local_hits = 0;  ///< owner-resident on requester
    std::uint64_t peer_hits = 0;           ///< served from a peer's shard
    std::uint64_t peer_misses = 0;         ///< owner fetched remote + forwarded
    std::uint64_t cluster_remote = 0;      ///< own-shard miss / throttle / failover
    std::uint64_t peer_hedges = 0;         ///< duplicate peer exchanges issued
    std::uint64_t peer_hedge_wins = 0;
    std::uint64_t peer_throttled = 0;      ///< comm budget exhausted
    std::uint64_t peer_failovers = 0;      ///< peer envelope failed -> remote

    // Online shadow tuner (DESIGN.md §13; both zero when the tuner is
    // off). shadow_hits = the best ghost cache's hits over this epoch's
    // replayed stream; tuner_switches = 1 when the hysteresis rule fired
    // at this epoch's boundary (the switch applies from the next epoch).
    std::uint64_t shadow_hits = 0;
    std::uint64_t tuner_switches = 0;

    // Remote-storage fetch-slot contention, reset each epoch
    // (RemoteStore::reset_contention_counters; zero in serial runs
    // where the slot cap is inactive).
    std::uint64_t slot_waits = 0;
    std::uint64_t peak_in_flight = 0;

    // Learning signal.
    double train_loss = 0.0;
    double test_accuracy = 0.0;
    double score_std = 0.0;
    double imp_ratio = 1.0;

    // Virtual time. `fault_time` is the slice of `load_time` attributable
    // to injected faults (spikes, timeouts, retries, backoff, failed
    // envelopes) — subtracting it recovers the healthy-backend load time.
    storage::SimDuration load_time{};
    storage::SimDuration compute_time{};
    storage::SimDuration is_time{};
    storage::SimDuration epoch_time{};
    storage::SimDuration fault_time{};

    [[nodiscard]] double hit_ratio() const {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(hits) / static_cast<double>(accesses);
    }
    /// Fraction of remote misses whose fetch the prefetcher hid behind the
    /// previous batch's compute (Fig. 17 with --prefetch).
    [[nodiscard]] double prefetch_coverage() const {
        const std::uint64_t remote = misses - ssd_hits;
        return remote == 0 ? 0.0
                           : static_cast<double>(prefetch_hidden) /
                                 static_cast<double>(remote);
    }
    /// Epoch time attributable to storage faults: the degraded slice of
    /// the load stage (fault_time) — zero on a healthy backend.
    [[nodiscard]] storage::SimDuration degraded_time() const {
        return fault_time;
    }
    /// Fraction of this epoch's accesses served by a degraded-mode cache
    /// surrogate (the bound enforced by max_substitute_fraction).
    [[nodiscard]] double substituted_fraction() const {
        return accesses == 0 ? 0.0
                             : static_cast<double>(fault_substitutions) /
                                   static_cast<double>(accesses);
    }
};

struct RunResult {
    std::string strategy;
    std::string model;
    std::string dataset;
    std::vector<EpochMetrics> epochs;
    storage::SimDuration total_time{};
    double final_accuracy = 0.0;
    double best_accuracy = 0.0;
    /// Full access trace (only populated when SimConfig::record_trace).
    trace::AccessTrace access_trace;

    [[nodiscard]] double average_hit_ratio() const;
    /// Mean hit ratio over the last `n` epochs (steady-state view).
    [[nodiscard]] double tail_hit_ratio(std::size_t n) const;
    /// Run-wide fraction of remote misses hidden by the prefetcher.
    [[nodiscard]] double prefetch_coverage() const;
    /// Total virtual time lost to storage faults across the run.
    [[nodiscard]] storage::SimDuration total_fault_time() const;
    /// Run-wide fraction of accesses served by degraded-mode surrogates.
    [[nodiscard]] double substituted_fraction() const;
    [[nodiscard]] double total_minutes() const {
        return storage::to_minutes(total_time);
    }
    [[nodiscard]] storage::SimDuration mean_epoch_time() const;
};

}  // namespace spider::metrics
