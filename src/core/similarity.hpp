#pragma once

// Equations 1-3 of the paper: Euclidean distance between embeddings,
// exponential-decay similarity sim(x,y) = exp(-lambda * d(x,y)), and the
// edge rule edge(x,y) = 1 iff sim(x,y) > alpha. The edge rule is evaluated
// in distance space (d < -ln(alpha)/lambda) so the ANN search can prune by
// distance directly.

#include <cmath>
#include <span>

#include "tensor/ops.hpp"

namespace spider::core {

/// Eq. 2: similarity in (0, 1], decaying with distance at rate lambda.
[[nodiscard]] inline double similarity(double distance, double lambda) {
    return std::exp(-lambda * distance);
}

/// Distance threshold equivalent to the similarity threshold alpha:
/// sim(d) > alpha  <=>  d < -ln(alpha) / lambda.
[[nodiscard]] inline double edge_distance_threshold(double lambda,
                                                    double alpha) {
    return -std::log(alpha) / lambda;
}

/// Eq. 3: whether an edge exists between two samples at this distance.
[[nodiscard]] inline bool has_edge(double distance, double lambda,
                                   double alpha) {
    return similarity(distance, lambda) > alpha;
}

/// Eqs. 1-3 composed for raw embedding vectors.
[[nodiscard]] inline bool has_edge(std::span<const float> x,
                                   std::span<const float> y, double lambda,
                                   double alpha) {
    return has_edge(tensor::l2_distance(x, y), lambda, alpha);
}

}  // namespace spider::core
