#pragma once

// Lookahead miss prefetcher (DESIGN.md §8.3). The graph-IS sampler fixes
// the whole epoch's request order up front, so the ids of batch k+1 are
// known while batch k computes. The PrefetchPipeline exploits that: it
// probes the cache for the next batch's ids, predicts the misses, and
// issues them to remote storage on a background pool — overlapping Stage 1
// I/O with the current batch's Stage 2/3 compute, exactly the window the
// storage server would otherwise sit idle in (Quiver's substitutable-
// sample lookahead, adapted to SpiderCache's exact-order sampler).
//
// Guarantees:
//   - bounded in-flight window: at most `max_in_flight` fetches are ever
//     outstanding, so lookahead cannot swamp the storage server;
//   - dedup: an id already in flight (or fetched and not yet consumed) is
//     never issued twice, even when consecutive batches overlap;
//   - demand-side consume(): returns true when the id's fetch was issued
//     by the prefetcher — completed entries are free, in-progress ones are
//     waited for (still cheaper than a cold fetch, the round trip is
//     already partially paid);
//   - exception safety: a fetch callback that throws does not kill the
//     pool thread, leak its window slot, or strand a waiting consumer —
//     the exception is captured per id and rethrown to whoever touches
//     that id next (consume) or to drain() if nobody does.
//
// The pipeline only ever *reads* the cache (via the probe callback) and
// never admits — admission stays on the demand path (Algorithm 1 line 10),
// so enabling prefetch cannot change hit/miss/eviction decisions.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "util/thread_pool.hpp"

namespace spider::core {

class PrefetchPipeline {
public:
    /// Returns true when `id` is already resident (skip the prefetch).
    using ProbeFn = std::function<bool(std::uint32_t)>;
    /// Performs the actual fetch (RemoteStore::fetch + any side effects).
    /// Called from background pool threads; must be thread-safe.
    using FetchFn = std::function<void(std::uint32_t)>;

    struct Config {
        /// Background fetch threads (the data-loader worker analogue).
        std::size_t threads = 2;
        /// Bounded in-flight window: prefetch() drops ids beyond this many
        /// outstanding (issued but unconsumed) fetches.
        std::size_t max_in_flight = 256;
    };

    struct Stats {
        std::uint64_t requested = 0;      ///< ids offered to prefetch()
        std::uint64_t issued = 0;         ///< fetches actually dispatched
        std::uint64_t skipped_cached = 0; ///< probe reported resident
        std::uint64_t skipped_in_flight = 0;  ///< deduped, already issued
        std::uint64_t skipped_window = 0; ///< dropped, window full
        std::uint64_t completed = 0;      ///< background fetches finished
        std::uint64_t hidden = 0;         ///< consumed after completion
        std::uint64_t waited = 0;         ///< consumed while still in flight
        std::uint64_t failed = 0;         ///< fetch callback threw
    };

    PrefetchPipeline(ProbeFn probe, FetchFn fetch, Config config);
    ~PrefetchPipeline();

    PrefetchPipeline(const PrefetchPipeline&) = delete;
    PrefetchPipeline& operator=(const PrefetchPipeline&) = delete;

    /// Probes and issues the predicted misses among `ids`, newest batch
    /// first-come-first-served under the in-flight window. Returns the
    /// number of fetches dispatched.
    std::size_t prefetch(std::span<const std::uint32_t> ids);

    /// Demand side: true when `id` was prefetched, so the caller must not
    /// fetch it again. Blocks until the background fetch completes when it
    /// is still in flight. Consumes the entry either way. If the fetch
    /// callback threw for `id`, that exception is rethrown here (the entry
    /// is consumed first, so the caller can fall back to a demand fetch).
    bool consume(std::uint32_t id);

    /// True when `id` is currently issued-and-unconsumed (either state).
    [[nodiscard]] bool pending(std::uint32_t id) const;

    /// Drops completed-but-unconsumed entries (mispredicted lookahead) and
    /// unclaimed failures, freeing their window slots. Returns how many
    /// were discarded. Never throws.
    std::size_t discard_ready();

    /// Blocks until every issued fetch has completed. Rethrows the first
    /// unclaimed fetch-callback exception (clearing all of them), so
    /// background failures can never pass silently.
    void drain();

    [[nodiscard]] Stats stats() const;

private:
    void on_fetched(std::uint32_t id);

    ProbeFn probe_;
    FetchFn fetch_;
    Config config_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::unordered_set<std::uint32_t> in_flight_;  ///< issued, not finished
    std::unordered_set<std::uint32_t> ready_;      ///< finished, unconsumed
    /// Fetch-callback exceptions by id, unclaimed. Not counted against the
    /// in-flight window (the slot is released on failure).
    std::unordered_map<std::uint32_t, std::exception_ptr> failed_;
    Stats stats_;
    util::ThreadPool pool_;  ///< last member: drains before sets destruct
};

}  // namespace spider::core
