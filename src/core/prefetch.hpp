#pragma once

// Lookahead miss prefetcher (DESIGN.md §8.3). The graph-IS sampler fixes
// the whole epoch's request order up front, so the ids of batch k+1 are
// known while batch k computes. The PrefetchPipeline exploits that: it
// probes the cache for the next batch's ids, predicts the misses, and
// issues them to remote storage on a background pool — overlapping Stage 1
// I/O with the current batch's Stage 2/3 compute, exactly the window the
// storage server would otherwise sit idle in (Quiver's substitutable-
// sample lookahead, adapted to SpiderCache's exact-order sampler).
//
// Guarantees:
//   - bounded in-flight window: at most `max_in_flight` fetches are ever
//     outstanding, so lookahead cannot swamp the storage server;
//   - dedup: an id already in flight (or fetched and not yet consumed) is
//     never issued twice, even when consecutive batches overlap;
//   - demand-side consume(): returns true when the id's fetch was issued
//     by the prefetcher — completed entries are free, in-progress ones are
//     waited for (still cheaper than a cold fetch, the round trip is
//     already partially paid);
//   - exception safety: a fetch callback that throws does not kill the
//     pool thread, leak its window slot, or strand a waiting consumer —
//     the exception is captured per id and rethrown to whoever touches
//     that id next (consume) or to drain() if nobody does.
//
// The pipeline only ever *reads* the cache (via the probe callback) and
// never admits — admission stays on the demand path (Algorithm 1 line 10),
// so enabling prefetch cannot change hit/miss/eviction decisions.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "util/thread_pool.hpp"

namespace spider::core {

class PrefetchPipeline {
public:
    /// Returns true when `id` is already resident (skip the prefetch).
    using ProbeFn = std::function<bool(std::uint32_t)>;
    /// Performs the actual fetch (RemoteStore::fetch + any side effects).
    /// Called from background pool threads; must be thread-safe.
    using FetchFn = std::function<void(std::uint32_t)>;

    struct Config {
        /// Background fetch threads (the data-loader worker analogue).
        std::size_t threads = 2;
        /// Bounded in-flight window: prefetch() drops ids beyond this many
        /// outstanding (issued but unconsumed) fetches.
        std::size_t max_in_flight = 256;
    };

    struct Stats {
        std::uint64_t requested = 0;      ///< ids offered to prefetch()
        std::uint64_t issued = 0;         ///< fetches actually dispatched
        std::uint64_t skipped_cached = 0; ///< probe reported resident
        std::uint64_t skipped_in_flight = 0;  ///< deduped, already issued
        std::uint64_t skipped_window = 0; ///< dropped, window full
        std::uint64_t completed = 0;      ///< background fetches finished
        std::uint64_t hidden = 0;         ///< consumed after completion
        std::uint64_t waited = 0;         ///< consumed while still in flight
        std::uint64_t failed = 0;         ///< fetch callback threw
    };

    PrefetchPipeline(ProbeFn probe, FetchFn fetch, Config config);
    ~PrefetchPipeline();

    PrefetchPipeline(const PrefetchPipeline&) = delete;
    PrefetchPipeline& operator=(const PrefetchPipeline&) = delete;

    /// Probes and issues the predicted misses among `ids`, newest batch
    /// first-come-first-served under the in-flight window. Returns the
    /// number of fetches dispatched.
    std::size_t prefetch(std::span<const std::uint32_t> ids);

    /// Resizes the in-flight window at runtime (the adaptive depth
    /// controller calls this once per step). Shrinking never cancels
    /// already-issued fetches — occupancy drains naturally and new issues
    /// respect the smaller bound. Clamped to >= 1.
    void set_max_in_flight(std::size_t max_in_flight);

    [[nodiscard]] std::size_t max_in_flight() const;

    /// Demand side: true when `id` was prefetched, so the caller must not
    /// fetch it again. Blocks until the background fetch completes when it
    /// is still in flight. Consumes the entry either way. If the fetch
    /// callback threw for `id`, that exception is rethrown here (the entry
    /// is consumed first, so the caller can fall back to a demand fetch).
    bool consume(std::uint32_t id);

    /// True when `id` is currently issued-and-unconsumed (either state).
    [[nodiscard]] bool pending(std::uint32_t id) const;

    /// Drops completed-but-unconsumed entries (mispredicted lookahead) and
    /// unclaimed failures, freeing their window slots. Returns how many
    /// were discarded. Never throws.
    std::size_t discard_ready();

    /// Drops the single completed-but-unconsumed (or failed) entry for
    /// `id`, if any, freeing its window slot. A still-in-flight fetch is
    /// left to finish (never cancelled). The adaptive simulator calls this
    /// for ids whose batch has passed without consuming them — e.g. the
    /// id became cache-resident between issue and demand — so a stale
    /// entry cannot pin a window slot forever. Never throws.
    bool discard(std::uint32_t id);

    /// Blocks until every issued fetch has completed. Rethrows the first
    /// unclaimed fetch-callback exception (clearing all of them), so
    /// background failures can never pass silently.
    void drain();

    [[nodiscard]] Stats stats() const;

private:
    void on_fetched(std::uint32_t id);

    ProbeFn probe_;
    FetchFn fetch_;
    Config config_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::unordered_set<std::uint32_t> in_flight_;  ///< issued, not finished
    std::unordered_set<std::uint32_t> ready_;      ///< finished, unconsumed
    /// Fetch-callback exceptions by id, unclaimed. Not counted against the
    /// in-flight window (the slot is released on failure).
    std::unordered_map<std::uint32_t, std::exception_ptr> failed_;
    Stats stats_;
    util::ThreadPool pool_;  ///< last member: drains before sets destruct
};

/// How many prefetches the storage path can absorb inside an idle span of
/// `idle_ms` when one fetch costs `per_fetch_ms` and `fetch_slots` run in
/// parallel. The multiply happens in floating point *before* the single
/// floor: eight slots each 90% through a fetch round still amount to
/// seven whole fetches, where truncating the per-slot quotient first
/// (the pre-fix simulator) collapsed the budget to zero whenever
/// per_fetch_ms > idle_ms. A non-positive per_fetch_ms means fetches are
/// free: the budget is unbounded (SIZE_MAX — callers min() it with their
/// candidate count anyway).
[[nodiscard]] std::size_t idle_fetch_budget(double idle_ms,
                                            double per_fetch_ms,
                                            std::size_t fetch_slots);

/// Adaptive lookahead-depth controller (DESIGN.md §8.3): sizes the
/// prefetch window each step from an EWMA of the observed storage-idle
/// span and the measured per-fetch cost. When storage sits idle the EWMA
/// (and so the window) grows toward the span's full fetch capacity; when
/// prefetch starts competing with demand fetches the next step's load
/// stage lengthens, the idle span shrinks, and the window backs off —
/// a closed feedback loop with no extra signal needed. Deterministic:
/// the window is a pure function of the observation sequence.
class AdaptivePrefetchController {
public:
    struct Config {
        /// Window clamp (min >= 1; max is SimConfig::prefetch_window_max).
        std::size_t min_window = 1;
        std::size_t max_window = 1024;
        /// EWMA smoothing factor in (0, 1]: weight of the newest idle-span
        /// observation. 1.0 tracks instantaneously (no smoothing).
        double alpha = 0.25;
    };

    explicit AdaptivePrefetchController(Config config);

    /// One observation per step: the step's storage-idle span and the
    /// current per-fetch cost / slot count. Returns the new window.
    std::size_t update(double idle_ms, double per_fetch_ms,
                       std::size_t fetch_slots);

    [[nodiscard]] std::size_t window() const { return window_; }
    [[nodiscard]] double ewma_idle_ms() const { return ewma_idle_ms_; }

private:
    Config config_;
    bool seeded_ = false;
    double ewma_idle_ms_ = 0.0;
    std::size_t window_;
};

}  // namespace spider::core
