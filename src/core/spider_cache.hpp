#pragma once

// SpiderCache facade — the library's primary public API, wiring together
// Algorithm 1 end to end:
//
//   data path     lookup() / on_miss_fetched()        (Section 4.2)
//   learning path observe_batch()                      (Section 4.1)
//   control path  end_epoch()                          (Section 4.3)
//   sampling      epoch_order()                        (graph-based IS)
//
// A typical training loop (see examples/quickstart.cpp):
//
//   spider::core::SpiderCache cache{config};
//   for (epoch ...) {
//     auto order = cache.epoch_order();
//     for (batch : order) {
//       for (id : batch) {
//         auto r = cache.lookup(id);
//         if (r.kind == cache::HitKind::kMiss) { fetch(id); cache.on_miss_fetched(id); }
//         else use r.served_id;
//       }
//       auto out = model.forward(...);
//       model.backward_and_step(...);
//       cache.observe_batch(batch_ids, out.embeddings);
//     }
//     cache.end_epoch(test_accuracy);
//   }

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "ann/hnsw.hpp"
#include "cache/semantic_cache.hpp"
#include "core/elastic.hpp"
#include "core/graph_scorer.hpp"
#include "core/samplers.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace spider::core {

struct SpiderCacheConfig {
    /// Total number of samples in the training set (score-table size).
    std::size_t dataset_size = 0;
    /// Label accessor for the graph scorer.
    GraphImportanceScorer::LabelFn label_of;
    /// Total cache capacity, in items.
    std::size_t cache_items = 0;
    /// Embedding dimensionality produced by the model.
    std::size_t embedding_dim = 32;

    ScorerConfig scorer;
    ElasticConfig elastic;
    ann::HnswConfig ann;  // dim is overwritten with embedding_dim

    /// Planned number of training epochs (T in Eq. 8).
    std::size_t total_epochs = 100;
    /// Uniform mixing floor of the multinomial sampler, as a fraction of
    /// the mean score: keeps low-score samples reachable so training
    /// retains coverage of the full distribution.
    double sampler_uniform_floor = 0.10;
    /// Disable the elastic manager to pin a static imp-ratio (the paper's
    /// "Imp-Ratio 90%" ablation).
    bool elastic_enabled = true;
    /// Disable the homophily section entirely (the "SpiderCache-imp"
    /// ablation of Figures 14/15).
    bool homophily_enabled = true;

    /// Worker threads for the scoring half of observe_batch (0 or 1 =
    /// serial). Scores are bitwise-identical either way — the parallel
    /// path only fans out read-only knn queries; `label_of` must then be
    /// safe to call from multiple threads.
    std::size_t scoring_threads = 0;

    /// Shard count of the two-layer cache. 1 (default) keeps the legacy
    /// single structure and its exact hit/miss/eviction sequence; 0 means
    /// min(16, hw_concurrency). Use > 1 when several trainer workers call
    /// lookup/on_miss_fetched concurrently (the data path is thread-safe
    /// at any shard count; sharding is what makes it scale).
    std::size_t cache_shards = 1;

    /// Serve lookup/probe from the cache's seqlock residency view instead
    /// of taking the shard mutex (DESIGN.md §8.4). Semantics are identical
    /// either way; off forces every read through the locked path.
    bool cache_lockfree_reads = true;

    /// Per-section eviction policies (DESIGN.md §13). The default —
    /// semantic importance + FIFO homophily — is the paper's Algorithm 1
    /// and takes the exact legacy code path.
    cache::SectionPolicies cache_policies;

    std::uint64_t seed = 2025;
};

class SpiderCache {
public:
    explicit SpiderCache(SpiderCacheConfig config);

    // ------------------------------------------------ data path (Alg. 1, 4-12)
    [[nodiscard]] cache::Lookup lookup(std::uint32_t id) const;
    /// Wait-free would-it-hit probe (Case 1 or 3) — the prefetch pipeline's
    /// per-lookahead-id check. Never blocks behind admissions when
    /// cache_lockfree_reads is on.
    [[nodiscard]] bool probe(std::uint32_t id) const { return cache_.probe(id); }
    /// After a remote fetch (Alg. 1 line 10): Case 2/4 admission.
    cache::ImportanceCache::AdmitResult on_miss_fetched(std::uint32_t id);

    // -------------------------------------------- learning path (Alg. 1, 14-22)
    /// Feeds the batch's embeddings into the ANN graph, refreshes the
    /// global scores of those samples, and offers the batch's highest-
    /// degree node to the Homophily Cache.
    void observe_batch(std::span<const std::uint32_t> ids,
                       const tensor::Matrix& embeddings);

    /// The most recent observe_batch's homophily offer: the batch's
    /// highest-degree node and its surrogate-safe neighbor list, recorded
    /// even when the live insert was rejected (already resident, section
    /// exclusivity). Empty neighbors => the batch produced no offer. Lets
    /// the shadow tuner replay the exact offer stream. Cleared at the next
    /// observe_batch.
    struct HomophilyOffer {
        std::uint32_t key = 0;
        std::vector<std::uint32_t> neighbors;
    };
    [[nodiscard]] const HomophilyOffer& last_homophily_offer() const {
        return last_offer_;
    }

    // ------------------------------------------------ control path (Alg. 1, 24)
    /// Per-epoch: feeds the Elastic Cache Manager and repartitions the
    /// cache. Returns the imp-ratio now in force.
    double end_epoch(double test_accuracy);

    // ------------------------------------------------------------- sampling
    /// Graph-IS multinomial order for the next epoch.
    [[nodiscard]] std::vector<std::uint32_t> epoch_order();

    /// Epoch-crossing lookahead (DESIGN.md §8.3): the order epoch e+1
    /// *will* use, drawn now. Call during epoch e's tail — the graph-IS
    /// scores are final once the epoch's last observe_batch has run, so
    /// the draw is bit-identical to the one the post-end_epoch
    /// epoch_order() call would make (the draw is cached and returned by
    /// that call; repeated peeks are free).
    [[nodiscard]] const std::vector<std::uint32_t>& peek_next_epoch_order();

    // ------------------------------------------------- degraded mode (§9)
    /// Best resident stand-in for `id` when its remote fetch failed: the
    /// Case-3 homophily surrogate if one exists, otherwise the highest-
    /// scored resident sample of the same class. Read-only (no admission,
    /// no counters); nullopt when nothing compatible is resident. Safe
    /// from any thread.
    [[nodiscard]] std::optional<std::uint32_t> degraded_surrogate(
        std::uint32_t id) const;

    // --------------------------------------------- warm restart (§12)
    /// Rebuilds the two-layer residency from a recovered WAL image (see
    /// TwoLayerSemanticCache::restore_from_wal) and seeds the global
    /// score table with the logged scores — the scorer refines them as
    /// training resumes. Returns the resident item count afterwards.
    /// Call on a fresh instance, before any listener is attached.
    std::size_t restore_from_wal(const cache::RestoreImage& image);

    // ----------------------------------------------------------- inspection
    [[nodiscard]] std::span<const double> scores() const { return scores_; }
    [[nodiscard]] double score_std() const;
    [[nodiscard]] const cache::TwoLayerSemanticCache& cache() const {
        return cache_;
    }
    [[nodiscard]] cache::TwoLayerSemanticCache& cache() { return cache_; }
    [[nodiscard]] double imp_ratio() const { return cache_.imp_ratio(); }
    [[nodiscard]] const ElasticCacheManager& elastic() const { return elastic_; }
    [[nodiscard]] const GraphImportanceScorer& scorer() const { return scorer_; }
    [[nodiscard]] const ann::HnswIndex& index() const { return index_; }
    [[nodiscard]] std::size_t current_epoch() const { return epoch_; }

private:
    SpiderCacheConfig config_;
    ann::HnswIndex index_;
    GraphImportanceScorer scorer_;
    cache::TwoLayerSemanticCache cache_;
    ElasticCacheManager elastic_;
    std::vector<double> scores_;
    GraphIsSampler sampler_;
    HomophilyOffer last_offer_;
    std::size_t epoch_ = 0;
    /// Present iff config_.scoring_threads > 1.
    std::unique_ptr<util::ThreadPool> scoring_pool_;
};

}  // namespace spider::core
