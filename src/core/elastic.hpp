#pragma once

// Elastic Cache Manager (paper Section 4.3). Three cooperating parts:
//
//  * Importance Monitor — watches the slope of the stddev of the global
//    importance scores. A negative slope means score spread is converging
//    (fewer "important" samples), which latches the activation factor
//    beta = 1 (Eq. 5).
//  * Accuracy Monitor — smooths the raw per-epoch accuracy series with a
//    Savitzky-Golay filter and computes the mean growth rate Delta_t over a
//    window of m epochs (Eq. 6), then the penalty factor
//    u = Delta_t / (gamma + Delta_t) (Eq. 7). While accuracy still climbs
//    fast (u -> 1) the ratio moves slowly; once growth stalls (u -> 0) the
//    shift accelerates.
//  * Ratio Controller — the schedule (Eq. 8)
//        imp_ratio(t) = r_start - beta (r_start - r_end) (t/T)^(1+u).
//
// The manager is pure bookkeeping: callers feed it one (score_std,
// accuracy) observation per epoch and apply the returned ratio to the
// two-layer cache.

#include <cstddef>
#include <vector>

#include "util/sg_filter.hpp"
#include "util/stats.hpp"

namespace spider::core {

struct ElasticConfig {
    double r_start = 0.90;
    double r_end = 0.80;
    /// Eq. 7 balancing factor: how much accuracy growth suppresses the
    /// ratio shift. Units are accuracy fraction per epoch.
    double gamma = 0.004;
    /// Eq. 6 window (m), in epochs.
    std::size_t delta_window = 5;
    /// Savitzky-Golay smoothing parameters for the accuracy series.
    std::size_t sg_window = 7;
    std::size_t sg_poly_order = 2;
    /// Epochs of score-stddev history used for the slope test.
    std::size_t slope_window = 5;
};

class ElasticCacheManager {
public:
    explicit ElasticCacheManager(ElasticConfig config);

    /// One observation per epoch; returns imp_ratio(t) for t = epoch
    /// (0-based) of total_epochs.
    double on_epoch(double score_std, double accuracy, std::size_t epoch,
                    std::size_t total_epochs);

    [[nodiscard]] bool activated() const { return activated_; }
    /// Epoch at which beta latched (meaningful only once activated()).
    [[nodiscard]] std::size_t activation_epoch() const {
        return activation_epoch_;
    }
    [[nodiscard]] double penalty() const { return penalty_; }
    [[nodiscard]] double current_ratio() const { return current_ratio_; }
    [[nodiscard]] double smoothed_accuracy() const { return smoothed_accuracy_; }
    [[nodiscard]] const ElasticConfig& config() const { return config_; }

private:
    ElasticConfig config_;
    util::SlidingWindow std_window_;
    util::SavitzkyGolayFilter sg_;
    std::vector<double> accuracy_history_;
    std::vector<double> smoothed_history_;
    bool activated_ = false;
    std::size_t activation_epoch_ = 0;
    double penalty_ = 1.0;
    double current_ratio_;
    double smoothed_accuracy_ = 0.0;
};

}  // namespace spider::core
