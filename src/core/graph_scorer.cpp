#include "core/graph_scorer.hpp"

#include <cmath>
#include <stdexcept>

#include "core/similarity.hpp"
#include "tensor/ops.hpp"

namespace spider::core {

GraphImportanceScorer::GraphImportanceScorer(ann::HnswIndex& index,
                                             ScorerConfig config,
                                             LabelFn label_of)
    : index_{index},
      config_{config},
      label_of_{std::move(label_of)},
      threshold_{edge_distance_threshold(config.lambda, config.alpha)},
      surrogate_threshold_{
          edge_distance_threshold(config.lambda, config.surrogate_alpha)} {
    if (config_.alpha <= 0.0 || config_.alpha >= 1.0) {
        throw std::invalid_argument{"GraphImportanceScorer: alpha in (0,1)"};
    }
    if (config_.lambda <= 0.0) {
        throw std::invalid_argument{"GraphImportanceScorer: lambda > 0"};
    }
    if (config_.neighbor_max == 0) {
        throw std::invalid_argument{"GraphImportanceScorer: neighbor_max > 0"};
    }
}

std::vector<float> GraphImportanceScorer::prepare(
    std::span<const float> embedding) const {
    std::vector<float> out{embedding.begin(), embedding.end()};
    if (config_.normalize_embeddings) {
        double norm_sq = 0.0;
        for (float x : out) norm_sq += static_cast<double>(x) * x;
        const auto inv =
            static_cast<float>(1.0 / std::sqrt(std::max(norm_sq, 1e-12)));
        for (float& x : out) x *= inv;
    }
    return out;
}

bool GraphImportanceScorer::update_embedding(std::uint32_t id,
                                             std::span<const float> embedding) {
    const std::vector<float> prepared = prepare(embedding);
    if (config_.min_update_distance > 0.0) {
        if (const auto current = index_.vector_of(id)) {
            const double moved = tensor::l2_distance(*current, prepared);
            if (moved < config_.min_update_distance) {
                ++skips_;
                return false;
            }
        }
    }
    index_.upsert(id, prepared);
    ++updates_;
    return true;
}

ScoreResult GraphImportanceScorer::score(std::uint32_t id) const {
    const auto embedding = index_.vector_of(id);
    if (!embedding) {
        throw std::logic_error{
            "GraphImportanceScorer::score: sample not indexed"};
    }

    const std::vector<ann::Neighbor> found =
        index_.knn(*embedding, config_.neighbor_k, config_.ef_search);

    ScoreResult result;
    const std::uint32_t own_label = label_of_(id);
    for (const ann::Neighbor& n : found) {
        if (n.distance >= threshold_) continue;  // Eq. 3: no edge
        if (n.label == id) {
            ++result.x_same;  // the sample itself (distance 0, same class)
            continue;
        }
        if (label_of_(n.label) == own_label) {
            ++result.x_same;
        } else {
            ++result.x_other;
        }
        result.neighbor_ids.push_back(n.label);
        if (n.distance < surrogate_threshold_) {
            result.close_neighbor_ids.push_back(n.label);
        }
    }

    // Defensive: approximate search can miss even the query point; keep
    // Part 1 finite as if self had been found.
    if (result.x_same == 0) result.x_same = 1;

    const double part1 = 1.0 / static_cast<double>(result.x_same);
    const double part2 = static_cast<double>(result.x_other) /
                         static_cast<double>(config_.neighbor_max);
    result.score = std::log(part1 + part2 + 1.0);  // Eq. 4
    return result;
}

std::vector<ScoreResult> GraphImportanceScorer::score_batch(
    std::span<const std::uint32_t> ids, util::ThreadPool* pool) const {
    std::vector<ScoreResult> results(ids.size());
    if (pool == nullptr || pool->size() < 2 || ids.size() < 2) {
        for (std::size_t i = 0; i < ids.size(); ++i) {
            results[i] = score(ids[i]);
        }
        return results;
    }
    // Chunked fan-out; each slot is written by exactly one worker, so the
    // only shared state is the index's concurrent-read path.
    pool->parallel_for(ids.size(), /*grain=*/8,
                       [&](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                               results[i] = score(ids[i]);
                           }
                       });
    return results;
}

}  // namespace spider::core
