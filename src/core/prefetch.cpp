#include "core/prefetch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace spider::core {

PrefetchPipeline::PrefetchPipeline(ProbeFn probe, FetchFn fetch, Config config)
    : probe_{std::move(probe)},
      fetch_{std::move(fetch)},
      config_{config},
      pool_{std::max<std::size_t>(config.threads, 1)} {
    if (!probe_ || !fetch_) {
        throw std::invalid_argument{
            "PrefetchPipeline: probe and fetch callbacks are required"};
    }
    if (config_.max_in_flight == 0) config_.max_in_flight = 1;
}

PrefetchPipeline::~PrefetchPipeline() = default;

std::size_t PrefetchPipeline::prefetch(std::span<const std::uint32_t> ids) {
    std::size_t issued = 0;
    for (std::uint32_t id : ids) {
        {
            const std::lock_guard lock{mu_};
            ++stats_.requested;
            if (in_flight_.contains(id) || ready_.contains(id)) {
                ++stats_.skipped_in_flight;
                continue;
            }
            if (in_flight_.size() + ready_.size() >= config_.max_in_flight) {
                ++stats_.skipped_window;
                continue;
            }
        }
        // Probe outside our own lock: the cache has its own (sharded)
        // locking, and probe callbacks may be arbitrarily slow.
        if (probe_(id)) {
            const std::lock_guard lock{mu_};
            ++stats_.skipped_cached;
            continue;
        }
        {
            const std::lock_guard lock{mu_};
            // Re-check: a concurrent prefetch() may have raced us here.
            if (in_flight_.contains(id) || ready_.contains(id)) {
                ++stats_.skipped_in_flight;
                continue;
            }
            // Re-issuing an id whose earlier fetch threw supersedes the
            // stale failure; the new attempt's outcome is what counts.
            failed_.erase(id);
            in_flight_.insert(id);
            ++stats_.issued;
        }
        ++issued;
        pool_.submit([this, id] { on_fetched(id); });
    }
    return issued;
}

void PrefetchPipeline::on_fetched(std::uint32_t id) {
    // A throwing fetch must not kill the pool thread (its exception would
    // sit unread in a dropped future), must release the window slot, and
    // must wake any consumer blocked on this id. Capture and hand the
    // exception to the demand side instead.
    std::exception_ptr error;
    try {
        fetch_(id);
    } catch (...) {
        error = std::current_exception();
    }
    {
        const std::lock_guard lock{mu_};
        in_flight_.erase(id);
        if (error) {
            failed_.emplace(id, error);
            ++stats_.failed;
        } else {
            ready_.insert(id);
            ++stats_.completed;
        }
    }
    cv_.notify_all();
}

bool PrefetchPipeline::consume(std::uint32_t id) {
    std::unique_lock lock{mu_};
    if (ready_.erase(id) > 0) {
        ++stats_.hidden;
        return true;
    }
    if (const auto it = failed_.find(id); it != failed_.end()) {
        const std::exception_ptr error = it->second;
        failed_.erase(it);
        std::rethrow_exception(error);
    }
    if (!in_flight_.contains(id)) return false;
    ++stats_.waited;
    cv_.wait(lock, [this, id] { return !in_flight_.contains(id); });
    if (const auto it = failed_.find(id); it != failed_.end()) {
        const std::exception_ptr error = it->second;
        failed_.erase(it);
        std::rethrow_exception(error);
    }
    ready_.erase(id);
    return true;
}

std::size_t PrefetchPipeline::discard_ready() {
    const std::lock_guard lock{mu_};
    const std::size_t dropped = ready_.size() + failed_.size();
    ready_.clear();
    failed_.clear();
    return dropped;
}

bool PrefetchPipeline::discard(std::uint32_t id) {
    const std::lock_guard lock{mu_};
    return ready_.erase(id) + failed_.erase(id) > 0;
}

bool PrefetchPipeline::pending(std::uint32_t id) const {
    const std::lock_guard lock{mu_};
    return in_flight_.contains(id) || ready_.contains(id);
}

void PrefetchPipeline::drain() {
    std::unique_lock lock{mu_};
    cv_.wait(lock, [this] { return in_flight_.empty(); });
    if (!failed_.empty()) {
        const std::exception_ptr error = failed_.begin()->second;
        failed_.clear();
        std::rethrow_exception(error);
    }
}

PrefetchPipeline::Stats PrefetchPipeline::stats() const {
    const std::lock_guard lock{mu_};
    return stats_;
}

void PrefetchPipeline::set_max_in_flight(std::size_t max_in_flight) {
    const std::lock_guard lock{mu_};
    config_.max_in_flight = std::max<std::size_t>(max_in_flight, 1);
}

std::size_t PrefetchPipeline::max_in_flight() const {
    const std::lock_guard lock{mu_};
    return config_.max_in_flight;
}

std::size_t idle_fetch_budget(double idle_ms, double per_fetch_ms,
                              std::size_t fetch_slots) {
    if (per_fetch_ms <= 0.0) return std::numeric_limits<std::size_t>::max();
    if (idle_ms <= 0.0 || fetch_slots == 0) return 0;
    const double capacity =
        static_cast<double>(fetch_slots) * (idle_ms / per_fetch_ms);
    // Guard the double -> size_t cast against overflow for pathological
    // inputs (idle spans of years): anything past 2^53 is "unbounded".
    if (capacity >= 9.0e15) return std::numeric_limits<std::size_t>::max();
    return static_cast<std::size_t>(std::floor(capacity));
}

AdaptivePrefetchController::AdaptivePrefetchController(Config config)
    : config_{config}, window_{std::max<std::size_t>(config.min_window, 1)} {
    if (config_.alpha <= 0.0 || config_.alpha > 1.0) {
        throw std::invalid_argument{
            "AdaptivePrefetchController: alpha in (0, 1]"};
    }
    config_.min_window = std::max<std::size_t>(config_.min_window, 1);
    config_.max_window =
        std::max<std::size_t>(config_.max_window, config_.min_window);
    window_ = config_.min_window;
}

std::size_t AdaptivePrefetchController::update(double idle_ms,
                                               double per_fetch_ms,
                                               std::size_t fetch_slots) {
    const double observed = std::max(idle_ms, 0.0);
    ewma_idle_ms_ = seeded_ ? config_.alpha * observed +
                                  (1.0 - config_.alpha) * ewma_idle_ms_
                            : observed;
    seeded_ = true;
    const std::size_t capacity =
        idle_fetch_budget(ewma_idle_ms_, per_fetch_ms, fetch_slots);
    window_ = std::clamp(capacity, config_.min_window, config_.max_window);
    return window_;
}

}  // namespace spider::core
