#pragma once

// Pipelined IS execution (paper Section 5, Figure 12). Two pieces:
//
//  1. PipelinedIsExecutor — a real single-worker pipeline: the IS task for
//     batch k runs on a background thread while the caller proceeds with
//     batch k's backward pass (and, for long-IS models, batch k+1's data
//     loading). submit() blocks only until the *previous* IS task finished,
//     giving exactly one batch of slack — the paper's design point: scores
//     may lag by one batch, which does not change global comparisons.
//
//  2. pipelined_batch_time — the virtual-time model of the same schedule,
//     used by the training simulator: Fig. 12(a) hides IS behind Stage2;
//     Fig. 12(b) hides it behind Stage2 plus the next batch's Stage1.

#include <functional>
#include <future>
#include <memory>
#include <optional>

#include "nn/model_profile.hpp"
#include "storage/clock.hpp"
#include "util/thread_pool.hpp"

namespace spider::core {

class PipelinedIsExecutor {
public:
    /// `scoring_threads` > 1 provisions an inner pool that IS tasks can
    /// fan their per-sample scoring across (scoring_pool()); 0/1 keeps the
    /// background stage single-threaded. The pipeline stays one-deep
    /// either way — parallelism is *within* a batch's IS task, so the
    /// one-batch-slack contract is unchanged.
    explicit PipelinedIsExecutor(std::size_t scoring_threads = 0);

    /// Waits for the previously submitted task (one-batch slack), then
    /// enqueues `is_task` on the background worker.
    void submit(std::function<void()> is_task);

    /// Blocks until all submitted work has completed.
    void drain();

    /// Number of tasks that had to wait on a still-running predecessor —
    /// nonzero means the IS stage is the pipeline bottleneck.
    [[nodiscard]] std::uint64_t stalls() const { return stalls_; }

    /// Pool for intra-task scoring fan-out (nullptr when serial). Pass to
    /// GraphImportanceScorer::score_batch from inside a submitted task.
    [[nodiscard]] util::ThreadPool* scoring_pool() {
        return scoring_pool_ ? scoring_pool_.get() : nullptr;
    }

private:
    util::ThreadPool worker_{1};
    std::unique_ptr<util::ThreadPool> scoring_pool_;
    std::optional<std::future<void>> pending_;
    std::uint64_t stalls_ = 0;
};

/// Steady-state virtual time of one training batch under the Fig. 12
/// pipeline. `stage1_ms` = data loading + forward for this batch.
///  - no IS:            stage1 + stage2
///  - serial IS:        stage1 + stage2 + is
///  - Fig. 12(a):       stage1 + max(stage2, is)
///  - Fig. 12(b):       max(stage1 + stage2, is)   (IS spans Stage2 and the
///                      next batch's Stage1; cycle time is the larger leg)
[[nodiscard]] storage::SimDuration pipelined_batch_time(
    const nn::ModelProfile& profile, double stage1_ms, bool is_enabled,
    bool pipelined);

/// Raw-parameter variant: lets callers scale Stage2 (e.g. iCache's
/// selective backprop trains only a fraction of each batch).
[[nodiscard]] storage::SimDuration pipelined_batch_time(
    double stage1_ms, double stage2_ms, double is_ms, bool long_is_pipeline,
    bool is_enabled, bool pipelined);

/// Prefetch-overlap variant: `prefetch_hidden_ms` is the slice of this
/// batch's Stage 1 already performed by the lookahead prefetcher during
/// the previous batch's compute window (storage was idle then, so the
/// overlap is free). It is clamped to [0, stage1_ms] — lookahead can hide
/// loading, never make a stage negative.
[[nodiscard]] storage::SimDuration pipelined_batch_time(
    double stage1_ms, double stage2_ms, double is_ms, bool long_is_pipeline,
    bool is_enabled, bool pipelined, double prefetch_hidden_ms);

}  // namespace spider::core
