#pragma once

// Graph-based importance scoring (paper Section 4.1). Each sample is a node
// in a similarity graph over embeddings, maintained incrementally inside an
// HNSW index. A sample's global importance (Eq. 4) is
//
//     score(x) = ln( 1/x_same + x_other/neighbor_max + 1 )
//
// where x_same / x_other count edge-connected neighbors sharing /
// differing from x's class. The sample itself is indexed before scoring and
// counts as its own same-class neighbor (distance 0), which keeps Part 1
// finite — the paper's four sample states then order exactly as described:
// well-classified < {boundary, isolated} < misclassified.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "ann/hnsw.hpp"
#include "util/thread_pool.hpp"

namespace spider::core {

struct ScorerConfig {
    /// Eq. 2 decay rate.
    double lambda = 2.0;
    /// Eq. 3 similarity threshold for an edge.
    double alpha = 0.15;
    /// L2-normalize embeddings before indexing. Keeps the edge threshold
    /// meaningful across training: raw MLP/CNN embedding norms grow as the
    /// model trains, which would push every pairwise distance past a fixed
    /// threshold and empty the graph. Unit-norm embeddings make Eq. 3
    /// scale-invariant (distances live in [0, 2]).
    bool normalize_embeddings = true;
    /// Similarity floor for *surrogate* edges: a neighbor may stand in for
    /// a sample in the Homophily Cache only when sim(x,y) > surrogate_alpha
    /// (a much stricter bar than the scoring threshold alpha — surrogates
    /// must be near-duplicates, not merely same-cluster).
    double surrogate_alpha = 0.35;
    /// Neighbors requested from the ANN index per scoring query.
    std::size_t neighbor_k = 32;
    /// Eq. 4 normalizer. The paper sets this to 500, the hnswlib default
    /// neighbor-list bound, because it scores against *unbounded* HNSW
    /// adjacency; with a bounded k-NN scoring query the equivalent
    /// normalizer is the maximum achievable degree (~2k), keeping Part 2's
    /// dynamic range the same as in the paper's dense regions.
    std::size_t neighbor_max = 64;
    /// ANN beam width for scoring queries (0 = index default).
    std::size_t ef_search = 0;
    /// Skip re-indexing an embedding that moved less than this distance
    /// since its last upsert (pure optimization: scores of near-static
    /// embeddings are unchanged; EXPERIMENTS.md documents the setting).
    double min_update_distance = 0.0;
};

struct ScoreResult {
    double score = 0.0;
    std::uint32_t x_same = 0;   // includes the sample itself
    std::uint32_t x_other = 0;
    /// Edge-connected neighbor ids (excluding the sample itself) — the
    /// graph edges of Eq. 3, used for degree analysis.
    std::vector<std::uint32_t> neighbor_ids;
    /// The subset of neighbor_ids within the stricter surrogate threshold —
    /// the neighbor list stored with high-degree nodes in the Homophily
    /// Cache (safe to substitute in training).
    std::vector<std::uint32_t> close_neighbor_ids;
};

class GraphImportanceScorer {
public:
    using LabelFn = std::function<std::uint32_t(std::uint32_t)>;

    GraphImportanceScorer(ann::HnswIndex& index, ScorerConfig config,
                          LabelFn label_of);

    [[nodiscard]] const ScorerConfig& config() const { return config_; }
    [[nodiscard]] double distance_threshold() const { return threshold_; }

    /// Inserts/refreshes a sample's embedding in the ANN index (Algorithm 1
    /// line 15). Returns whether the index was actually touched (false when
    /// the embedding moved less than min_update_distance).
    bool update_embedding(std::uint32_t id, std::span<const float> embedding);

    /// Eq. 4 for one sample, querying the current graph (Algorithm 1
    /// line 17). The sample must have been indexed first.
    [[nodiscard]] ScoreResult score(std::uint32_t id) const;

    /// Scores a whole batch. With a pool of >= 2 threads the per-sample
    /// normalize+knn+count work fans out via ThreadPool::parallel_for —
    /// safe because knn queries are concurrent readers of the index (see
    /// hnsw.hpp's phase contract; no upserts may run during the call) —
    /// and `label_of` must be callable from multiple threads. Results are
    /// positionally identical to calling score(ids[i]) serially.
    [[nodiscard]] std::vector<ScoreResult> score_batch(
        std::span<const std::uint32_t> ids,
        util::ThreadPool* pool = nullptr) const;

    /// Number of upserts actually applied (perf counter).
    [[nodiscard]] std::uint64_t applied_updates() const { return updates_; }
    [[nodiscard]] std::uint64_t skipped_updates() const { return skips_; }

private:
    /// Copies + optionally L2-normalizes an embedding for indexing.
    [[nodiscard]] std::vector<float> prepare(
        std::span<const float> embedding) const;

    ann::HnswIndex& index_;
    ScorerConfig config_;
    LabelFn label_of_;
    double threshold_;
    double surrogate_threshold_;
    std::uint64_t updates_ = 0;
    std::uint64_t skips_ = 0;
};

}  // namespace spider::core
