#include "core/pipeline.hpp"

#include <algorithm>
#include <chrono>

namespace spider::core {

PipelinedIsExecutor::PipelinedIsExecutor(std::size_t scoring_threads) {
    if (scoring_threads > 1) {
        scoring_pool_ = std::make_unique<util::ThreadPool>(scoring_threads);
    }
}

void PipelinedIsExecutor::submit(std::function<void()> is_task) {
    if (pending_.has_value()) {
        if (pending_->wait_for(std::chrono::seconds::zero()) !=
            std::future_status::ready) {
            ++stalls_;
        }
        pending_->get();  // propagate exceptions from the previous task
    }
    pending_ = worker_.submit(std::move(is_task));
}

void PipelinedIsExecutor::drain() {
    if (pending_.has_value()) {
        pending_->get();
        pending_.reset();
    }
}

storage::SimDuration pipelined_batch_time(const nn::ModelProfile& profile,
                                          double stage1_ms, bool is_enabled,
                                          bool pipelined) {
    return pipelined_batch_time(stage1_ms, profile.backward_ms, profile.is_ms,
                                profile.long_is_pipeline, is_enabled,
                                pipelined);
}

storage::SimDuration pipelined_batch_time(double stage1_ms, double stage2_ms,
                                          double is_ms, bool long_is_pipeline,
                                          bool is_enabled, bool pipelined,
                                          double prefetch_hidden_ms) {
    const double hidden = std::clamp(prefetch_hidden_ms, 0.0, stage1_ms);
    return pipelined_batch_time(stage1_ms - hidden, stage2_ms, is_ms,
                                long_is_pipeline, is_enabled, pipelined);
}

storage::SimDuration pipelined_batch_time(double stage1_ms, double stage2_ms,
                                          double is_ms, bool long_is_pipeline,
                                          bool is_enabled, bool pipelined) {
    if (!is_enabled) {
        return storage::from_ms(stage1_ms + stage2_ms);
    }
    if (!pipelined) {
        return storage::from_ms(stage1_ms + stage2_ms + is_ms);
    }
    if (long_is_pipeline) {
        // Fig. 12(b): IS overlaps Stage2 and the next Stage1.
        return storage::from_ms(std::max(stage1_ms + stage2_ms, is_ms));
    }
    // Fig. 12(a): IS overlaps Stage2 only.
    return storage::from_ms(stage1_ms + std::max(stage2_ms, is_ms));
}

}  // namespace spider::core
