#include "core/elastic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spider::core {

ElasticCacheManager::ElasticCacheManager(ElasticConfig config)
    : config_{config},
      std_window_{std::max<std::size_t>(config.slope_window, 2)},
      sg_{config.sg_window, config.sg_poly_order},
      current_ratio_{config.r_start} {
    if (config_.r_start < config_.r_end) {
        throw std::invalid_argument{
            "ElasticCacheManager: r_start must be >= r_end"};
    }
    if (config_.gamma <= 0.0) {
        throw std::invalid_argument{"ElasticCacheManager: gamma must be > 0"};
    }
}

double ElasticCacheManager::on_epoch(double score_std, double accuracy,
                                     std::size_t epoch,
                                     std::size_t total_epochs) {
    // ---- Importance Monitor (Eq. 5): latch beta once the spread shrinks.
    std_window_.push(score_std);
    if (!activated_ && std_window_.full() && std_window_.slope() < 0.0) {
        activated_ = true;
        activation_epoch_ = epoch;
    }

    // ---- Accuracy Monitor (Eqs. 6-7).
    accuracy_history_.push_back(accuracy);
    smoothed_accuracy_ = sg_.smooth_last(accuracy_history_);
    smoothed_history_.push_back(smoothed_accuracy_);

    const std::size_t m = config_.delta_window;
    double delta_t = 0.0;
    if (smoothed_history_.size() >= 2) {
        const std::size_t window =
            std::min(m, smoothed_history_.size() - 1);
        double sum = 0.0;
        const std::size_t last = smoothed_history_.size() - 1;
        for (std::size_t i = 0; i < window; ++i) {
            sum += smoothed_history_[last - i] - smoothed_history_[last - i - 1];
        }
        delta_t = sum / static_cast<double>(window);
    }
    delta_t = std::max(delta_t, 0.0);  // shrinking accuracy => no penalty hold
    penalty_ = delta_t / (config_.gamma + delta_t);

    // ---- Ratio Controller (Eq. 8), rebased on the activation epoch.
    // Eq. 8 writes progress as t/T, implicitly assuming beta latches at
    // t = 0. When the Importance Monitor latches late, absolute progress
    // would jump the ratio from r_start straight to mid-curve in a single
    // epoch; measuring progress over the *remaining* schedule instead
    // starts the shift at zero on the first activated epoch and keeps the
    // series continuous while still reaching r_end at the final epoch.
    if (!activated_ || total_epochs <= 1) {
        current_ratio_ = config_.r_start;
        return current_ratio_;
    }
    const double t = epoch >= activation_epoch_
                         ? static_cast<double>(epoch - activation_epoch_)
                         : 0.0;
    // Degenerate tail guard: beta latching on the very last epoch leaves
    // no schedule to traverse — jump-free is impossible, so finish at
    // r_end as Eq. 8's endpoint demands (progress = 1).
    const double T =
        activation_epoch_ + 1 < total_epochs
            ? static_cast<double>(total_epochs - 1 - activation_epoch_)
            : 0.0;
    const double progress = std::clamp(T > 0.0 ? t / T : 1.0, 0.0, 1.0);
    current_ratio_ =
        config_.r_start - (config_.r_start - config_.r_end) *
                              std::pow(progress, 1.0 + penalty_);
    return current_ratio_;
}

}  // namespace spider::core
