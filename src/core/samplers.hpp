#pragma once

// Epoch samplers: the four sampling strategies compared in the paper's
// Section 6.2 (Figure 13 / Table 3).
//
//  * UniformSampler        — random shuffling (CoorDL / PyTorch default).
//  * GraphIsSampler        — SpiderCache: multinomial over the global
//                            graph-based scores (torch.multinomial analogue,
//                            with replacement).
//  * ShadeSampler          — SHADE: per-batch loss *ranks* converted to
//                            sampling weights. Ranks are only comparable
//                            within a batch — the staleness/incomparability
//                            the paper criticizes is inherent to the design
//                            and visible in the benches.
//  * ComputeBoundSampler   — iCache's adopted algorithm (Jiang et al.,
//                            "biggest losers"): uniform data order plus
//                            selective backprop that skips low-loss samples,
//                            and raw last-seen loss as its importance score.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace spider::core {

class Sampler {
public:
    virtual ~Sampler() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// The sequence of sample ids to visit this epoch (length = dataset
    /// size; strategies with replacement may repeat ids). If
    /// `peek_epoch_order` cached a draw for this epoch, that exact order
    /// is returned (and the cache consumed) — peeking never perturbs the
    /// order stream, it only moves the draw earlier in time.
    [[nodiscard]] std::vector<std::uint32_t> epoch_order(std::size_t epoch);

    /// Epoch-crossing lookahead (DESIGN.md §8.3): draws epoch `epoch`'s
    /// order now — advancing the sampler's RNG exactly as the later
    /// `epoch_order(epoch)` call would have — and caches it so that call
    /// returns the identical sequence. Safe to call repeatedly (later
    /// peeks at the same epoch return the cached draw). Intended for the
    /// tail of epoch e, when the importance weights for e+1 are final and
    /// the prefetcher wants e+1's head before the boundary.
    [[nodiscard]] const std::vector<std::uint32_t>& peek_epoch_order(
        std::size_t epoch);

    /// Per-batch feedback: losses observed for the samples just trained.
    virtual void observe_losses(std::span<const std::uint32_t> ids,
                                std::span<const double> losses) {
        (void)ids;
        (void)losses;
    }

    /// Selective-backprop mask for the batch (1 = train, 0 = skip). Empty
    /// means train on everything.
    [[nodiscard]] virtual std::vector<std::uint8_t> train_mask(
        std::span<const std::uint32_t> ids, std::span<const double> losses) {
        (void)ids;
        (void)losses;
        return {};
    }

    /// The strategy's per-sample importance view, for cache admission.
    /// Default: no opinion (uniform zero).
    [[nodiscard]] virtual double importance_of(std::uint32_t id) const {
        (void)id;
        return 0.0;
    }

protected:
    /// The actual draw. Implementations consume RNG state here; the base
    /// class routes both epoch_order and peek_epoch_order through this so
    /// each epoch's order is drawn exactly once.
    [[nodiscard]] virtual std::vector<std::uint32_t> draw_epoch_order(
        std::size_t epoch) = 0;

private:
    std::optional<std::size_t> peeked_epoch_;
    std::vector<std::uint32_t> peeked_order_;
};

class UniformSampler final : public Sampler {
public:
    UniformSampler(std::size_t dataset_size, util::Rng rng);

    [[nodiscard]] std::string name() const override { return "Uniform"; }

protected:
    [[nodiscard]] std::vector<std::uint32_t> draw_epoch_order(
        std::size_t epoch) override;

private:
    std::size_t dataset_size_;
    util::Rng rng_;
};

/// SpiderCache's sampler: multinomial with replacement over externally
/// maintained global scores (the facade owns the score vector and passes a
/// view here). A uniform floor keeps never-seen samples reachable.
class GraphIsSampler final : public Sampler {
public:
    GraphIsSampler(std::span<const double> scores, util::Rng rng,
                   double uniform_floor = 0.02);

    [[nodiscard]] std::string name() const override { return "SpiderCache"; }
    [[nodiscard]] double importance_of(std::uint32_t id) const override;

protected:
    [[nodiscard]] std::vector<std::uint32_t> draw_epoch_order(
        std::size_t epoch) override;

private:
    std::span<const double> scores_;
    util::Rng rng_;
    double uniform_floor_;
};

class ShadeSampler final : public Sampler {
public:
    ShadeSampler(std::size_t dataset_size, util::Rng rng);

    [[nodiscard]] std::string name() const override { return "SHADE"; }
    void observe_losses(std::span<const std::uint32_t> ids,
                        std::span<const double> losses) override;
    [[nodiscard]] double importance_of(std::uint32_t id) const override;

protected:
    [[nodiscard]] std::vector<std::uint32_t> draw_epoch_order(
        std::size_t epoch) override;

private:
    std::size_t dataset_size_;
    util::Rng rng_;
    std::vector<double> weights_;  // rank-derived, in [1/B, 1]
};

/// Gradient-norm importance sampling (Johnson & Guestrin, the paper's
/// reference [21]): weights proportional to an upper bound on each
/// sample's gradient norm. For softmax cross-entropy the per-sample
/// logit-gradient norm is ||p - onehot(y)||, which the caller supplies;
/// like loss-based IS it is a *local* signal — included to round out the
/// compute-bound IS family the paper positions against.
class GradientNormSampler final : public Sampler {
public:
    GradientNormSampler(std::size_t dataset_size, util::Rng rng,
                        double smoothing = 0.3);

    [[nodiscard]] std::string name() const override { return "GradNorm"; }
    /// Feed ||p - onehot||_2 per sample via the losses span (the simulator
    /// computes it alongside the loss).
    void observe_losses(std::span<const std::uint32_t> ids,
                        std::span<const double> grad_norms) override;
    [[nodiscard]] double importance_of(std::uint32_t id) const override;

protected:
    [[nodiscard]] std::vector<std::uint32_t> draw_epoch_order(
        std::size_t epoch) override;

private:
    std::size_t dataset_size_;
    util::Rng rng_;
    double smoothing_;  // EMA factor for per-sample norm estimates
    std::vector<double> norms_;
};

class ComputeBoundSampler final : public Sampler {
public:
    /// @param keep_fraction  Fraction of each batch that gets a backward
    ///                       pass (highest-loss first).
    ComputeBoundSampler(std::size_t dataset_size, util::Rng rng,
                        double keep_fraction = 0.6);

    [[nodiscard]] std::string name() const override { return "iCache-IS"; }
    void observe_losses(std::span<const std::uint32_t> ids,
                        std::span<const double> losses) override;
    [[nodiscard]] std::vector<std::uint8_t> train_mask(
        std::span<const std::uint32_t> ids,
        std::span<const double> losses) override;
    [[nodiscard]] double importance_of(std::uint32_t id) const override;

    /// iCache's H/L split: a sample is "important" while its raw last-seen
    /// loss sits above the running median of observed losses.
    [[nodiscard]] bool is_important(std::uint32_t id) const;

protected:
    [[nodiscard]] std::vector<std::uint32_t> draw_epoch_order(
        std::size_t epoch) override;

private:
    std::size_t dataset_size_;
    util::Rng rng_;
    double keep_fraction_;
    std::vector<double> last_loss_;  // raw, epoch-incomparable by design
    double running_loss_mean_ = 0.0;
    bool seen_any_ = false;
    /// Losses observed so far; selective backprop engages after warmup.
    std::uint64_t observed_ = 0;
    std::uint64_t warmup_observations_;
};

}  // namespace spider::core
