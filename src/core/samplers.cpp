#include "core/samplers.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace spider::core {

namespace {

std::vector<std::uint32_t> identity_permutation(std::size_t n) {
    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0U);
    return order;
}

}  // namespace

// ------------------------------------------------------------------ Sampler

std::vector<std::uint32_t> Sampler::epoch_order(std::size_t epoch) {
    if (peeked_epoch_ && *peeked_epoch_ == epoch) {
        peeked_epoch_.reset();
        return std::move(peeked_order_);
    }
    return draw_epoch_order(epoch);
}

const std::vector<std::uint32_t>& Sampler::peek_epoch_order(
    std::size_t epoch) {
    if (!peeked_epoch_ || *peeked_epoch_ != epoch) {
        peeked_order_ = draw_epoch_order(epoch);
        peeked_epoch_ = epoch;
    }
    return peeked_order_;
}

// ---------------------------------------------------------- UniformSampler

UniformSampler::UniformSampler(std::size_t dataset_size, util::Rng rng)
    : dataset_size_{dataset_size}, rng_{rng} {}

std::vector<std::uint32_t> UniformSampler::draw_epoch_order(
    std::size_t /*epoch*/) {
    std::vector<std::uint32_t> order = identity_permutation(dataset_size_);
    rng_.shuffle(order);
    return order;
}

// ---------------------------------------------------------- GraphIsSampler

GraphIsSampler::GraphIsSampler(std::span<const double> scores, util::Rng rng,
                               double uniform_floor)
    : scores_{scores}, rng_{rng}, uniform_floor_{uniform_floor} {
    if (scores_.empty()) {
        throw std::invalid_argument{"GraphIsSampler: empty score view"};
    }
}

std::vector<std::uint32_t> GraphIsSampler::draw_epoch_order(
    std::size_t /*epoch*/) {
    // Weight = score + floor * mean(score); before any scores exist the
    // floor term alone makes the draw uniform.
    double total = 0.0;
    for (double s : scores_) total += s;
    const double mean_score = total / static_cast<double>(scores_.size());
    const double floor =
        uniform_floor_ * (mean_score > 0.0 ? mean_score : 1.0);

    std::vector<double> weights(scores_.size());
    double mass = 0.0;
    for (std::size_t i = 0; i < scores_.size(); ++i) {
        weights[i] = scores_[i] + floor;
        mass += weights[i];
    }
    if (mass <= 0.0) {
        // No scores yet and a zero floor: fall back to uniform draws
        // rather than feeding an all-zero table to the alias sampler.
        std::fill(weights.begin(), weights.end(), 1.0);
    }
    const util::AliasSampler alias{weights};
    return alias.draw_many(rng_, scores_.size());
}

double GraphIsSampler::importance_of(std::uint32_t id) const {
    return id < scores_.size() ? scores_[id] : 0.0;
}

// ------------------------------------------------------------ ShadeSampler

ShadeSampler::ShadeSampler(std::size_t dataset_size, util::Rng rng)
    : dataset_size_{dataset_size}, rng_{rng}, weights_(dataset_size, 1.0) {}

std::vector<std::uint32_t> ShadeSampler::draw_epoch_order(
    std::size_t /*epoch*/) {
    const util::AliasSampler alias{weights_};
    return alias.draw_many(rng_, dataset_size_);
}

void ShadeSampler::observe_losses(std::span<const std::uint32_t> ids,
                                  std::span<const double> losses) {
    if (ids.size() != losses.size() || ids.empty()) return;
    // SHADE ranks the batch by loss; a sample's weight is its normalized
    // rank (highest loss -> 1, lowest -> 1/B). Only within-batch order
    // matters, which is exactly the comparability limitation Motivation 1
    // of the paper calls out.
    std::vector<std::uint32_t> rank_order(ids.size());
    std::iota(rank_order.begin(), rank_order.end(), 0U);
    std::sort(rank_order.begin(), rank_order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return losses[a] < losses[b];
              });
    for (std::size_t rank = 0; rank < rank_order.size(); ++rank) {
        const std::uint32_t id = ids[rank_order[rank]];
        if (id < weights_.size()) {
            weights_[id] = static_cast<double>(rank + 1) /
                           static_cast<double>(rank_order.size());
        }
    }
}

double ShadeSampler::importance_of(std::uint32_t id) const {
    return id < weights_.size() ? weights_[id] : 0.0;
}

// ----------------------------------------------------- GradientNormSampler

GradientNormSampler::GradientNormSampler(std::size_t dataset_size,
                                         util::Rng rng, double smoothing)
    : dataset_size_{dataset_size},
      rng_{rng},
      smoothing_{smoothing},
      norms_(dataset_size, 1.0) {
    if (smoothing <= 0.0 || smoothing > 1.0) {
        throw std::invalid_argument{
            "GradientNormSampler: smoothing in (0, 1]"};
    }
}

std::vector<std::uint32_t> GradientNormSampler::draw_epoch_order(
    std::size_t /*epoch*/) {
    const util::AliasSampler alias{norms_};
    return alias.draw_many(rng_, dataset_size_);
}

void GradientNormSampler::observe_losses(std::span<const std::uint32_t> ids,
                                         std::span<const double> grad_norms) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
        if (ids[i] >= norms_.size()) continue;
        double& estimate = norms_[ids[i]];
        estimate = (1.0 - smoothing_) * estimate +
                   smoothing_ * std::max(grad_norms[i], 1e-6);
    }
}

double GradientNormSampler::importance_of(std::uint32_t id) const {
    return id < norms_.size() ? norms_[id] : 0.0;
}

// ----------------------------------------------------- ComputeBoundSampler

ComputeBoundSampler::ComputeBoundSampler(std::size_t dataset_size,
                                         util::Rng rng, double keep_fraction)
    : dataset_size_{dataset_size},
      rng_{rng},
      keep_fraction_{keep_fraction},
      last_loss_(dataset_size, 0.0),
      warmup_observations_{2 * static_cast<std::uint64_t>(dataset_size)} {
    if (keep_fraction <= 0.0 || keep_fraction > 1.0) {
        throw std::invalid_argument{
            "ComputeBoundSampler: keep_fraction in (0, 1]"};
    }
}

std::vector<std::uint32_t> ComputeBoundSampler::draw_epoch_order(
    std::size_t /*epoch*/) {
    // Data order stays uniform: the algorithm saves *compute*, not I/O —
    // the mismatch with I/O-bound training that the paper's Motivation 1
    // highlights.
    std::vector<std::uint32_t> order = identity_permutation(dataset_size_);
    rng_.shuffle(order);
    return order;
}

void ComputeBoundSampler::observe_losses(std::span<const std::uint32_t> ids,
                                         std::span<const double> losses) {
    observed_ += ids.size();
    for (std::size_t i = 0; i < ids.size(); ++i) {
        if (ids[i] < last_loss_.size()) {
            last_loss_[ids[i]] = losses[i];
        }
    }
    if (!losses.empty()) {
        double batch_mean = 0.0;
        for (double l : losses) batch_mean += l;
        batch_mean /= static_cast<double>(losses.size());
        running_loss_mean_ = seen_any_
                                 ? 0.95 * running_loss_mean_ + 0.05 * batch_mean
                                 : batch_mean;
        seen_any_ = true;
    }
}

std::vector<std::uint8_t> ComputeBoundSampler::train_mask(
    std::span<const std::uint32_t> ids, std::span<const double> losses) {
    // Warmup: selective backprop only engages once the loss statistics are
    // meaningful (Jiang et al. train everything first); a hard top-k from
    // step one oscillates on many-class tasks.
    if (observed_ < warmup_observations_) {
        return {};
    }
    // Probabilistic selection by loss percentile, P = percentile^beta with
    // beta chosen so E[selected fraction] = keep_fraction — the softened
    // rule of the original algorithm (a hard cut trains only the current
    // worst samples and never consolidates).
    std::vector<std::uint32_t> order(ids.size());
    std::iota(order.begin(), order.end(), 0U);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return losses[a] < losses[b];
              });
    const double beta = 1.0 / keep_fraction_ - 1.0;
    std::vector<std::uint8_t> mask(ids.size(), 0);
    bool any = false;
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
        const double percentile = static_cast<double>(rank + 1) /
                                  static_cast<double>(order.size());
        if (rng_.uniform() < std::pow(percentile, beta)) {
            mask[order[rank]] = 1;
            any = true;
        }
    }
    if (!any) {
        mask[order.back()] = 1;  // always train the current-worst sample
    }
    return mask;
}

double ComputeBoundSampler::importance_of(std::uint32_t id) const {
    return id < last_loss_.size() ? last_loss_[id] : 0.0;
}

bool ComputeBoundSampler::is_important(std::uint32_t id) const {
    if (!seen_any_ || id >= last_loss_.size()) return false;
    return last_loss_[id] > running_loss_mean_;
}

}  // namespace spider::core
