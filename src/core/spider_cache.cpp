#include "core/spider_cache.hpp"

#include <stdexcept>

#include "util/stats.hpp"

namespace spider::core {

namespace {

ann::HnswConfig make_ann_config(const SpiderCacheConfig& config) {
    ann::HnswConfig ann = config.ann;
    ann.dim = config.embedding_dim;
    ann.seed = config.seed ^ 0xA11CE5ULL;
    return ann;
}

}  // namespace

SpiderCache::SpiderCache(SpiderCacheConfig config)
    : config_{std::move(config)},
      index_{make_ann_config(config_)},
      scorer_{index_, config_.scorer, config_.label_of},
      cache_{config_.cache_items,
             config_.homophily_enabled ? config_.elastic.r_start : 1.0,
             config_.cache_shards, config_.cache_lockfree_reads,
             config_.cache_policies},
      elastic_{config_.elastic},
      scores_(config_.dataset_size, 0.0),
      sampler_{scores_, util::Rng{config_.seed},
               config_.sampler_uniform_floor} {
    if (config_.dataset_size == 0) {
        throw std::invalid_argument{"SpiderCache: dataset_size must be > 0"};
    }
    if (!config_.label_of) {
        throw std::invalid_argument{"SpiderCache: label_of is required"};
    }
    if (config_.scoring_threads > 1) {
        scoring_pool_ =
            std::make_unique<util::ThreadPool>(config_.scoring_threads);
    }
}

cache::Lookup SpiderCache::lookup(std::uint32_t id) const {
    return cache_.lookup(id);
}

cache::ImportanceCache::AdmitResult SpiderCache::on_miss_fetched(
    std::uint32_t id) {
    const double score = id < scores_.size() ? scores_[id] : 0.0;
    return cache_.on_miss_fetched(id, score);
}

void SpiderCache::observe_batch(std::span<const std::uint32_t> ids,
                                const tensor::Matrix& embeddings) {
    if (ids.size() != embeddings.rows()) {
        throw std::invalid_argument{
            "SpiderCache::observe_batch: ids/embeddings mismatch"};
    }
    // Algorithm 1 line 15: refresh the ANN graph with this batch (writer
    // phase — upserts hold the index's exclusive lock).
    for (std::size_t i = 0; i < ids.size(); ++i) {
        scorer_.update_embedding(ids[i], embeddings.row(i));
    }
    // Lines 16-21: rescore the batch (reader phase — fans across the
    // scoring pool when configured) and track its highest-degree node.
    // Aggregation stays sequential, so results are independent of thread
    // count.
    std::vector<ScoreResult> results =
        scorer_.score_batch(ids, scoring_pool_.get());
    std::size_t max_degree = 0;
    std::uint32_t max_id = 0;
    std::vector<std::uint32_t> max_neighbors;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const std::uint32_t id = ids[i];
        ScoreResult& result = results[i];
        if (id < scores_.size()) {
            scores_[id] = result.score;
            // Resident samples keep their heap position current.
            cache_.update_importance_score(id, result.score);
        }
        // Highest degree measured over *surrogate-safe* edges: only those
        // neighbors may be served this node as a stand-in.
        if (result.close_neighbor_ids.size() > max_degree) {
            max_degree = result.close_neighbor_ids.size();
            max_id = id;
            max_neighbors = std::move(result.close_neighbor_ids);
        }
    }
    // Line 22: offer the highest-degree node to the Homophily Cache. The
    // offer is recorded regardless of whether the live insert went through
    // (the shadow tuner replays the offer stream, and its ghosts make
    // their own admit decisions).
    last_offer_.key = max_id;
    last_offer_.neighbors.clear();
    if (config_.homophily_enabled && max_degree > 0) {
        last_offer_.neighbors = max_neighbors;
        cache_.update_homophily(max_id, max_neighbors);
    }
}

double SpiderCache::end_epoch(double test_accuracy) {
    const double ratio =
        elastic_.on_epoch(score_std(), test_accuracy, epoch_,
                          config_.total_epochs);
    ++epoch_;
    if (config_.elastic_enabled && config_.homophily_enabled) {
        cache_.set_imp_ratio(ratio);
    }
    return cache_.imp_ratio();
}

std::optional<std::uint32_t> SpiderCache::degraded_surrogate(
    std::uint32_t id) const {
    // Case-3 machinery first: a resident high-degree node listing `id` as
    // a close neighbor is the semantically nearest stand-in we can serve.
    const cache::Lookup lookup = cache_.lookup(id);
    if (lookup.kind != cache::HitKind::kMiss) return lookup.served_id;
    // Class-homophily fallback: any resident sample with the same label,
    // most important first (samples of one class affect the model far more
    // alike than samples across classes).
    const std::uint32_t label = config_.label_of(id);
    return cache_.find_resident_if(id, [this, label](std::uint32_t candidate) {
        return config_.label_of(candidate) == label;
    });
}

std::vector<std::uint32_t> SpiderCache::epoch_order() {
    return sampler_.epoch_order(epoch_);
}

const std::vector<std::uint32_t>& SpiderCache::peek_next_epoch_order() {
    return sampler_.peek_epoch_order(epoch_ + 1);
}

double SpiderCache::score_std() const {
    // Spread over *scored* samples only. Eq. 4 scores are strictly
    // positive (Part 1 >= 1/neighbor_k), so zero still marks "never
    // scored"; counting those would fake a large early spread.
    util::RunningStats stats;
    for (double s : scores_) {
        if (s > 0.0) stats.add(s);
    }
    return stats.stddev();
}

std::size_t SpiderCache::restore_from_wal(const cache::RestoreImage& image) {
    for (const auto& [id, score] : image.importance) {
        if (id < scores_.size()) scores_[id] = score;
    }
    return cache_.restore_from_wal(image);
}

}  // namespace spider::core
