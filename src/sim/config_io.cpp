#include "sim/config_io.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <stdexcept>
#include <vector>

#include "cache/policy.hpp"
#include "cache/shadow_tuner.hpp"
#include "data/presets.hpp"
#include "storage/fault_model.hpp"

namespace spider::sim {

namespace {

std::string lower(std::string text) {
    std::transform(text.begin(), text.end(), text.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return text;
}

const std::set<std::string>& known_keys() {
    static const std::set<std::string> keys = {
        "dataset.preset",      "dataset.scale",        "dataset.seed",
        "dataset.separation",  "dataset.imbalance",    "model.name",
        "run.strategy",        "run.epochs",           "run.batch_size",
        "run.cache_fraction",  "run.num_gpus",         "run.seed",
        "run.record_trace",    "storage.latency_ms",   "storage.parallelism",
        "storage.parallel_cap", "storage.ssd_enabled", "storage.ssd_items",
        "ssd.path",            "ssd.capacity_mb",      "ssd.segment_mb",
        "ssd.bloom_bits_per_key",
        "scorer.lambda",       "scorer.alpha",         "scorer.surrogate_alpha",
        "scorer.neighbor_k",   "scorer.min_update_distance",
        "sampler.floor",       "elastic.enabled",      "elastic.r_start",
        "elastic.r_end",       "elastic.gamma",        "optimizer.lr",
        "optimizer.momentum",  "optimizer.weight_decay",
        "faults.enabled",      "faults.seed",          "faults.transient_prob",
        "faults.spike_prob",   "faults.spike_mult",    "faults.timeout_ms",
        "faults.outage_start_ms",   "faults.outage_duration_ms",
        "faults.outage_period_ms",  "faults.brownout_factor",
        "faults.brownout_ms",
        "weather.enabled",          "weather.slot_ms",
        "weather.p_degrade",        "weather.p_recover",
        "weather.p_fail",           "weather.p_restore",
        "weather.degraded_mult",    "weather.degraded_slowdown",
        "restart.epoch",            "wal.dir",
        "wal.compact_every_epochs", "wal.sync_every_append",
        "resilience.max_attempts",
        "resilience.backoff_base_ms",  "resilience.backoff_mult",
        "resilience.backoff_max_ms",   "resilience.backoff_jitter",
        "resilience.hedge_enabled",    "resilience.hedge_delay_ms",
        "resilience.hedge_quantile",   "resilience.breaker_threshold",
        "resilience.breaker_cooldown_ms",
        "resilience.max_substitute_fraction",
        "prefetch.enabled",    "prefetch.window",      "prefetch.adaptive",
        "prefetch.window_max", "cache.lockfree_reads",
        "policy.importance",   "policy.homophily",
        "tuner.enabled",       "tuner.ratio_grid",     "tuner.policies",
        "tuner.margin",        "tuner.sustain_epochs", "tuner.auto_apply",
        "tuner.max_neighbors",
        "cluster.nodes",       "cluster.vnodes",
        "cluster.node_cache_fraction",  "cluster.peer_fetch_enabled",
        "cluster.peer_cost_ms",         "cluster.peer_bytes_per_ms",
        "cluster.hedge_enabled",        "cluster.hedge_delay_ms",
        "cluster.max_attempts",         "cluster.comm_budget_mb",
        "cluster.peer_transient_prob",  "cluster.straggler_node",
        "cluster.straggler_spike_prob", "cluster.straggler_spike_mult",
        "cluster.join_epoch",           "cluster.leave_epoch",
        // [server] keys (consumed by server::server_config_from; accepted
        // here so one INI can configure a sim and the cache service).
        "server.port",         "server.max_pipeline",  "server.cache_items",
        "server.cache_shards", "server.lockfree_reads", "server.tenants",
        "server.capacity_pct", "server.imp_ratio",      "server.imp_policy",
        "server.hom_policy",
    };
    return keys;
}

/// Splits a comma-separated value into trimmed, non-empty items.
std::vector<std::string> split_list(const std::string& text,
                                    const std::string& key) {
    std::vector<std::string> items;
    std::string current;
    const auto flush = [&items, &current, &key] {
        const auto begin = current.find_first_not_of(" \t");
        if (begin == std::string::npos) {
            throw std::invalid_argument{key + ": empty list item"};
        }
        const auto end = current.find_last_not_of(" \t");
        items.push_back(current.substr(begin, end - begin + 1));
        current.clear();
    };
    for (char c : text) {
        if (c == ',') {
            flush();
        } else {
            current += c;
        }
    }
    flush();
    return items;
}

std::vector<double> parse_double_list(const std::string& text,
                                      const std::string& key) {
    std::vector<double> values;
    for (const std::string& item : split_list(text, key)) {
        try {
            values.push_back(std::stod(item));
        } catch (const std::exception&) {
            throw std::invalid_argument{key + ": not a number: '" + item +
                                        "'"};
        }
    }
    return values;
}

}  // namespace

StrategyKind strategy_from_string(const std::string& name) {
    const std::string n = lower(name);
    if (n == "spider" || n == "spidercache") return StrategyKind::kSpider;
    if (n == "spider-imp" || n == "spidercache-imp") {
        return StrategyKind::kSpiderImp;
    }
    if (n == "shade") return StrategyKind::kShade;
    if (n == "icache") return StrategyKind::kICache;
    if (n == "icache-imp") return StrategyKind::kICacheImp;
    if (n == "coordl") return StrategyKind::kCoorDL;
    if (n == "lfu") return StrategyKind::kLfu;
    if (n == "baseline" || n == "lru") return StrategyKind::kBaselineLru;
    throw std::invalid_argument{"unknown strategy '" + name + "'"};
}

nn::ModelKind model_from_string(const std::string& name) {
    const std::string n = lower(name);
    if (n == "resnet18") return nn::ModelKind::kResNet18;
    if (n == "resnet50") return nn::ModelKind::kResNet50;
    if (n == "alexnet") return nn::ModelKind::kAlexNet;
    if (n == "vgg16") return nn::ModelKind::kVgg16;
    if (n == "mobilenetv2") return nn::ModelKind::kMobileNetV2;
    if (n == "inceptionv3") return nn::ModelKind::kInceptionV3;
    throw std::invalid_argument{"unknown model '" + name + "'"};
}

SimConfig sim_config_from(const util::Config& config) {
    for (const auto& [key, value] : config.values()) {
        if (!known_keys().contains(key)) {
            throw std::invalid_argument{"sim_config_from: unknown key '" +
                                        key + "'"};
        }
    }

    SimConfig sim;

    const std::string preset =
        lower(config.get_string("dataset.preset", "cifar10"));
    const double scale = config.get_double("dataset.scale", 0.06);
    const auto dataset_seed =
        static_cast<std::uint64_t>(config.get_int("dataset.seed", 42));
    if (preset == "cifar10") {
        sim.dataset = data::cifar10_like(scale, dataset_seed);
    } else if (preset == "cifar100") {
        sim.dataset = data::cifar100_like(scale, dataset_seed);
    } else if (preset == "imagenet") {
        sim.dataset = data::imagenet_like(scale, dataset_seed);
    } else {
        throw std::invalid_argument{"unknown dataset preset '" + preset + "'"};
    }
    if (config.contains("dataset.separation")) {
        sim.dataset.class_separation =
            config.get_double("dataset.separation", 0.0);
    }
    if (config.contains("dataset.imbalance")) {
        sim.dataset.imbalance_factor =
            config.get_double("dataset.imbalance", 1.0);
    }

    sim.model =
        nn::make_profile(model_from_string(config.get_string("model.name",
                                                             "resnet18")));
    sim.strategy =
        strategy_from_string(config.get_string("run.strategy", "spider"));
    sim.epochs = static_cast<std::size_t>(config.get_int("run.epochs", 30));
    sim.batch_size =
        static_cast<std::size_t>(config.get_int("run.batch_size", 128));
    sim.cache_fraction = config.get_double("run.cache_fraction", 0.20);
    sim.num_gpus = static_cast<std::size_t>(config.get_int("run.num_gpus", 1));
    sim.seed = static_cast<std::uint64_t>(config.get_int("run.seed", 1));
    sim.record_trace = config.get_bool("run.record_trace", false);

    sim.remote.latency_per_sample =
        storage::from_ms(config.get_double("storage.latency_ms", 4.5));
    sim.remote.parallelism =
        static_cast<std::size_t>(config.get_int("storage.parallelism", 2));
    sim.storage_parallel_cap =
        static_cast<std::size_t>(config.get_int("storage.parallel_cap", 6));
    sim.ssd.enabled = config.get_bool("storage.ssd_enabled", false);
    sim.ssd.capacity_items =
        static_cast<std::size_t>(config.get_int("storage.ssd_items", 0));
    // [ssd] block mode (DESIGN.md §14): a path switches the tier from the
    // pure residency model to real on-disk segment files.
    sim.ssd.path = config.get_string("ssd.path", "");
    sim.ssd.capacity_mb =
        static_cast<std::size_t>(config.get_int("ssd.capacity_mb", 0));
    sim.ssd.segment_mb =
        static_cast<std::size_t>(config.get_int("ssd.segment_mb", 4));
    sim.ssd.bloom_bits_per_key = static_cast<std::size_t>(
        config.get_int("ssd.bloom_bits_per_key", 10));
    if (sim.ssd.segment_mb == 0) {
        throw std::invalid_argument{"ssd.segment_mb: must be >= 1"};
    }
    if (sim.ssd.bloom_bits_per_key > 64) {
        throw std::invalid_argument{"ssd.bloom_bits_per_key: must be <= 64"};
    }

    sim.scorer.lambda = config.get_double("scorer.lambda", sim.scorer.lambda);
    sim.scorer.alpha = config.get_double("scorer.alpha", sim.scorer.alpha);
    sim.scorer.surrogate_alpha =
        config.get_double("scorer.surrogate_alpha", sim.scorer.surrogate_alpha);
    sim.scorer.neighbor_k = static_cast<std::size_t>(config.get_int(
        "scorer.neighbor_k", static_cast<std::int64_t>(sim.scorer.neighbor_k)));
    sim.scorer.min_update_distance = config.get_double(
        "scorer.min_update_distance", sim.scorer.min_update_distance);
    sim.spider_sampler_floor =
        config.get_double("sampler.floor", sim.spider_sampler_floor);

    sim.elastic_enabled = config.get_bool("elastic.enabled", true);
    sim.elastic.r_start = config.get_double("elastic.r_start", 0.90);
    sim.elastic.r_end = config.get_double("elastic.r_end", 0.80);
    sim.elastic.gamma = config.get_double("elastic.gamma", sim.elastic.gamma);

    sim.faults.enabled = config.get_bool("faults.enabled", false);
    sim.faults.seed = static_cast<std::uint64_t>(
        config.get_int("faults.seed",
                       static_cast<std::int64_t>(sim.faults.seed)));
    sim.faults.transient_failure_prob =
        config.get_double("faults.transient_prob", 0.0);
    sim.faults.latency_spike_prob = config.get_double("faults.spike_prob", 0.0);
    sim.faults.latency_spike_mult =
        config.get_double("faults.spike_mult", sim.faults.latency_spike_mult);
    sim.faults.timeout_ms = config.get_double("faults.timeout_ms", 0.0);
    sim.faults.outage_start_ms =
        config.get_double("faults.outage_start_ms", 0.0);
    sim.faults.outage_duration_ms =
        config.get_double("faults.outage_duration_ms", 0.0);
    sim.faults.outage_period_ms =
        config.get_double("faults.outage_period_ms", 0.0);
    sim.faults.brownout_factor =
        config.get_double("faults.brownout_factor", 1.0);
    sim.faults.brownout_duration_ms =
        config.get_double("faults.brownout_ms", 0.0);

    sim.faults.weather.enabled = config.get_bool("weather.enabled", false);
    sim.faults.weather.slot_ms =
        config.get_double("weather.slot_ms", sim.faults.weather.slot_ms);
    sim.faults.weather.p_degrade =
        config.get_double("weather.p_degrade", sim.faults.weather.p_degrade);
    sim.faults.weather.p_recover =
        config.get_double("weather.p_recover", sim.faults.weather.p_recover);
    sim.faults.weather.p_fail =
        config.get_double("weather.p_fail", sim.faults.weather.p_fail);
    sim.faults.weather.p_restore =
        config.get_double("weather.p_restore", sim.faults.weather.p_restore);
    sim.faults.weather.degraded_mult = config.get_double(
        "weather.degraded_mult", sim.faults.weather.degraded_mult);
    sim.faults.weather.degraded_slowdown = config.get_double(
        "weather.degraded_slowdown", sim.faults.weather.degraded_slowdown);
    // Reject malformed fault/weather settings at parse time, with the
    // offending key in the message, instead of at TrainingSimulator
    // construction deep inside a bench loop.
    storage::validate(sim.faults);

    sim.restart_epoch =
        static_cast<std::size_t>(config.get_int("restart.epoch", 0));
    sim.wal_dir = config.get_string("wal.dir", "");
    sim.wal_compact_every_epochs = static_cast<std::size_t>(
        config.get_int("wal.compact_every_epochs", 1));
    if (sim.wal_compact_every_epochs == 0) {
        throw std::invalid_argument{
            "wal.compact_every_epochs: must be >= 1 (epochs between "
            "snapshot compactions)"};
    }
    sim.wal_sync_every_append =
        config.get_bool("wal.sync_every_append", false);

    sim.resilience.max_attempts = static_cast<std::size_t>(config.get_int(
        "resilience.max_attempts",
        static_cast<std::int64_t>(sim.resilience.max_attempts)));
    sim.resilience.backoff_base_ms = config.get_double(
        "resilience.backoff_base_ms", sim.resilience.backoff_base_ms);
    sim.resilience.backoff_mult = config.get_double(
        "resilience.backoff_mult", sim.resilience.backoff_mult);
    sim.resilience.backoff_max_ms = config.get_double(
        "resilience.backoff_max_ms", sim.resilience.backoff_max_ms);
    sim.resilience.backoff_jitter = config.get_double(
        "resilience.backoff_jitter", sim.resilience.backoff_jitter);
    sim.resilience.hedge_enabled =
        config.get_bool("resilience.hedge_enabled", true);
    sim.resilience.hedge_delay_ms = config.get_double(
        "resilience.hedge_delay_ms", sim.resilience.hedge_delay_ms);
    sim.resilience.hedge_quantile = config.get_double(
        "resilience.hedge_quantile", sim.resilience.hedge_quantile);
    sim.resilience.breaker_failure_threshold =
        static_cast<std::size_t>(config.get_int(
            "resilience.breaker_threshold",
            static_cast<std::int64_t>(
                sim.resilience.breaker_failure_threshold)));
    sim.resilience.breaker_cooldown_ms = config.get_double(
        "resilience.breaker_cooldown_ms", sim.resilience.breaker_cooldown_ms);
    sim.resilience.max_substitute_fraction =
        config.get_double("resilience.max_substitute_fraction",
                          sim.resilience.max_substitute_fraction);

    sim.prefetch_enabled = config.get_bool("prefetch.enabled", false);
    sim.prefetch_window = static_cast<std::size_t>(config.get_int(
        "prefetch.window", static_cast<std::int64_t>(sim.prefetch_window)));
    sim.prefetch_adaptive = config.get_bool("prefetch.adaptive", false);
    sim.prefetch_window_max = static_cast<std::size_t>(
        config.get_int("prefetch.window_max",
                       static_cast<std::int64_t>(sim.prefetch_window_max)));
    sim.cache_lockfree_reads = config.get_bool("cache.lockfree_reads", true);

    // [policy] — per-section eviction policies of the two-layer cache
    // (DESIGN.md §13). Defaults are the paper's Algorithm 1.
    sim.policy.importance = cache::policy_from_string(
        config.get_string("policy.importance", "semantic"));
    sim.policy.homophily = cache::policy_from_string(
        config.get_string("policy.homophily", "fifo"));
    cache::validate(sim.policy);

    // [tuner] — online shadow-cache tuner (DESIGN.md §13).
    sim.tuner.enabled = config.get_bool("tuner.enabled", false);
    if (config.contains("tuner.ratio_grid")) {
        sim.tuner.ratio_grid = parse_double_list(
            config.get_string("tuner.ratio_grid", ""), "tuner.ratio_grid");
    }
    if (config.contains("tuner.policies")) {
        sim.tuner.policy_grid.clear();
        for (const std::string& name : split_list(
                 config.get_string("tuner.policies", ""), "tuner.policies")) {
            sim.tuner.policy_grid.push_back(cache::policy_from_string(name));
        }
    }
    sim.tuner.margin = config.get_double("tuner.margin", sim.tuner.margin);
    sim.tuner.sustain_epochs = static_cast<std::size_t>(config.get_int(
        "tuner.sustain_epochs",
        static_cast<std::int64_t>(sim.tuner.sustain_epochs)));
    sim.tuner.auto_apply = config.get_bool("tuner.auto_apply", true);
    sim.tuner.max_neighbors = static_cast<std::size_t>(config.get_int(
        "tuner.max_neighbors",
        static_cast<std::int64_t>(sim.tuner.max_neighbors)));
    // Reject malformed tuner settings at parse time (like faults above).
    if (sim.tuner.enabled) cache::validate(sim.tuner);

    sim.cluster.nodes = static_cast<std::size_t>(
        config.get_int("cluster.nodes",
                       1));  // 1 = single-node path (cluster tier off)
    if (sim.cluster.nodes > 64) {
        throw std::invalid_argument{"cluster.nodes: at most 64"};
    }
    sim.cluster.vnodes_per_node = static_cast<std::size_t>(config.get_int(
        "cluster.vnodes",
        static_cast<std::int64_t>(sim.cluster.vnodes_per_node)));
    sim.cluster_node_cache_fraction = config.get_double(
        "cluster.node_cache_fraction", sim.cluster_node_cache_fraction);
    sim.cluster.peer_fetch_enabled =
        config.get_bool("cluster.peer_fetch_enabled", true);
    sim.cluster.peer_latency_ms =
        config.get_double("cluster.peer_cost_ms", sim.cluster.peer_latency_ms);
    sim.cluster.peer_bytes_per_ms = config.get_double(
        "cluster.peer_bytes_per_ms", sim.cluster.peer_bytes_per_ms);
    sim.cluster.hedge_enabled = config.get_bool("cluster.hedge_enabled", true);
    sim.cluster.hedge_delay_ms =
        config.get_double("cluster.hedge_delay_ms", 0.0);
    sim.cluster.max_attempts = static_cast<std::size_t>(config.get_int(
        "cluster.max_attempts",
        static_cast<std::int64_t>(sim.cluster.max_attempts)));
    sim.cluster.comm_budget_mb =
        config.get_double("cluster.comm_budget_mb", 0.0);
    sim.cluster.peer_transient_prob =
        config.get_double("cluster.peer_transient_prob", 0.0);
    sim.cluster.straggler_node = config.get_int("cluster.straggler_node", -1);
    sim.cluster.straggler_spike_prob = config.get_double(
        "cluster.straggler_spike_prob", sim.cluster.straggler_spike_prob);
    sim.cluster.straggler_spike_mult = config.get_double(
        "cluster.straggler_spike_mult", sim.cluster.straggler_spike_mult);
    sim.cluster_join_epoch = static_cast<std::size_t>(
        config.get_int("cluster.join_epoch", 0));
    sim.cluster_leave_epoch = static_cast<std::size_t>(
        config.get_int("cluster.leave_epoch", 0));
    if (sim.cluster.straggler_node >= 0 &&
        static_cast<std::size_t>(sim.cluster.straggler_node) >=
            sim.cluster.nodes) {
        throw std::invalid_argument{
            "cluster.straggler_node: outside the initial node set"};
    }

    sim.sgd.learning_rate =
        static_cast<float>(config.get_double("optimizer.lr", 0.05));
    sim.sgd.momentum =
        static_cast<float>(config.get_double("optimizer.momentum", 0.9));
    sim.sgd.weight_decay =
        static_cast<float>(config.get_double("optimizer.weight_decay", 5e-4));

    return sim;
}

}  // namespace spider::sim
