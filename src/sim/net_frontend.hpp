#pragma once

// NetworkFrontend: a CacheFrontend whose cache lives on the other side of
// the wire (DESIGN.md §10.4). Every access/probe becomes a protocol frame
// to a SpiderServer tenant, so the existing TrainingSimulator — which only
// ever talks to the CacheFrontend interface — runs unchanged against the
// served cache: set SimConfig::served_port and the strategy's local
// front-end is swapped for this one.
//
// Scores: the server applies the Case 2/4 admission rule with the score
// the client sends. This frontend maintains a frequency score per id
// (bumped on every access, refreshed via PUT_SCORE at batch ends), which
// makes the served Importance section behave like a semantic-LFU from the
// simulator's point of view — the residency decisions themselves stay
// server-side.
//
// The simulator still charges its own virtual remote-fetch cost for
// misses; the server is deployed cache-only in this mode (no backing
// MissFetchFn), so nothing is double-charged.

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "server/client.hpp"
#include "sim/frontend.hpp"

namespace spider::sim {

class NetworkFrontend final : public CacheFrontend {
public:
    /// Connects immediately; throws std::runtime_error when the server is
    /// unreachable.
    NetworkFrontend(const std::string& host, std::uint16_t port,
                    std::uint8_t tenant);

    [[nodiscard]] std::string name() const override { return "SpiderServed"; }

    /// GET over the wire. Thread-safe: loader workers share the single
    /// connection behind a mutex (requests serialize; the server batches
    /// across *connections*, i.e. across simulated jobs).
    Access access(std::uint32_t id) override;
    [[nodiscard]] bool probe(std::uint32_t id) const override;
    /// One pipelined PUT_SCORE flush for the whole batch.
    void post_batch(std::span<const std::uint32_t> ids) override;
    [[nodiscard]] std::size_t resident_items() const override;

private:
    mutable std::mutex mu_;
    mutable server::Client client_;
    std::uint8_t tenant_;
    std::unordered_map<std::uint32_t, double> freq_;
};

}  // namespace spider::sim
