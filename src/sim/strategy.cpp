#include "sim/strategy.hpp"

namespace spider::sim {

const char* to_string(StrategyKind kind) {
    switch (kind) {
        case StrategyKind::kBaselineLru: return "Baseline";
        case StrategyKind::kLfu: return "LFU";
        case StrategyKind::kCoorDL: return "CoorDL";
        case StrategyKind::kShade: return "SHADE";
        case StrategyKind::kICacheImp: return "iCache-imp";
        case StrategyKind::kICache: return "iCache";
        case StrategyKind::kSpiderImp: return "SpiderCache-imp";
        case StrategyKind::kSpider: return "SpiderCache";
    }
    return "unknown";
}

bool uses_graph_is(StrategyKind kind) {
    return kind == StrategyKind::kSpiderImp || kind == StrategyKind::kSpider;
}

bool uses_importance_sampling(StrategyKind kind) {
    switch (kind) {
        case StrategyKind::kShade:
        case StrategyKind::kICacheImp:
        case StrategyKind::kICache:
        case StrategyKind::kSpiderImp:
        case StrategyKind::kSpider:
            return true;
        default:
            return false;
    }
}

}  // namespace spider::sim
