#pragma once

// The eight cache/sampling strategies compared across the paper's
// evaluation, addressable by a single enum so every bench can sweep them.

#include <cstdint>
#include <string>

namespace spider::sim {

enum class StrategyKind : std::uint8_t {
    kBaselineLru,  // LRU cache + uniform random sampling (the paper baseline)
    kLfu,          // LFU cache + uniform random sampling (Fig. 3(b))
    kCoorDL,       // MinIO static cache + uniform random sampling
    kShade,        // loss-rank IS + importance cache
    kICacheImp,    // compute-bound IS + importance cache only
    kICache,       // + random-replacement L-section with substitution
    kSpiderImp,    // graph IS + importance cache only (ablation)
    kSpider,       // full SpiderCache: graph IS + two-layer semantic cache
};

[[nodiscard]] const char* to_string(StrategyKind kind);

/// Does this strategy run the graph-based IS stage (and thus pay/hide its
/// per-batch cost)?
[[nodiscard]] bool uses_graph_is(StrategyKind kind);

/// Is this one of the importance-sampling strategies (vs. uniform order)?
[[nodiscard]] bool uses_importance_sampling(StrategyKind kind);

}  // namespace spider::sim
