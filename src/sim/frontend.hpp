#pragma once

// Cache frontends: the per-strategy glue between a sample request and the
// underlying cache structures. A frontend answers one question per request
// — hit or miss, and *which* sample is actually served — and applies its
// strategy's admission rule on the miss path. The training simulator is
// strategy-agnostic; all behavioural differences live here and in the
// samplers.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>

#include "cache/basic_policies.hpp"
#include "cache/importance_cache.hpp"
#include "core/samplers.hpp"
#include "core/spider_cache.hpp"
#include "util/rng.hpp"

namespace spider::sim {

struct Access {
    bool hit = false;
    /// The sample whose data is used for training. Differs from the
    /// requested id for homophily surrogates (SpiderCache Case 3) and for
    /// iCache's random substitutions.
    std::uint32_t served_id = 0;
    bool importance_hit = false;
    bool homophily_hit = false;
    bool substitution = false;
};

class CacheFrontend {
public:
    virtual ~CacheFrontend() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Request `id`. On a miss the frontend performs its admission rule
    /// (the remote fetch itself is accounted by the simulator). Safe to
    /// call from concurrent loader workers (each frontend serializes
    /// internally; SpiderFrontend scales via the sharded cache).
    virtual Access access(std::uint32_t id) = 0;

    /// Non-mutating residency probe for the lookahead prefetcher: would
    /// `id` be served from cache right now? Never applies admission.
    [[nodiscard]] virtual bool probe(std::uint32_t id) const = 0;

    /// Degraded-mode fallback (DESIGN.md §9): a resident sample the
    /// strategy is willing to serve in place of `id` after its remote
    /// fetch failed. Never fetches, never admits. The default — no
    /// substitute — sends the simulator down the skip-and-refill rung;
    /// semantic strategies override with a class/neighbor-aware pick.
    [[nodiscard]] virtual std::optional<std::uint32_t> substitute(
        std::uint32_t id) {
        (void)id;
        return std::nullopt;
    }

    /// Called after the batch's losses are known (ids are the *served*
    /// samples, matching the data that actually went through the model).
    virtual void post_batch(std::span<const std::uint32_t> ids) { (void)ids; }

    /// Items currently resident (both sections where applicable).
    [[nodiscard]] virtual std::size_t resident_items() const = 0;
};

/// LRU / LFU / FIFO / MinIO — any plain EvictionCache policy.
class PolicyFrontend final : public CacheFrontend {
public:
    explicit PolicyFrontend(std::unique_ptr<cache::EvictionCache> policy);

    [[nodiscard]] std::string name() const override { return policy_->name(); }
    Access access(std::uint32_t id) override;
    [[nodiscard]] bool probe(std::uint32_t id) const override;
    [[nodiscard]] std::size_t resident_items() const override {
        const std::lock_guard lock{mu_};
        return policy_->size();
    }

private:
    /// Plain policies have no internal synchronization; one coarse lock
    /// models exactly what an unsharded production cache would do under
    /// concurrent loader workers (the Fig. 17 baseline).
    mutable std::mutex mu_;
    std::unique_ptr<cache::EvictionCache> policy_;
};

/// SHADE: importance cache keyed by loss-rank weights from the sampler.
class ShadeFrontend final : public CacheFrontend {
public:
    ShadeFrontend(std::size_t capacity, const core::Sampler& sampler);

    [[nodiscard]] std::string name() const override { return "SHADE"; }
    Access access(std::uint32_t id) override;
    [[nodiscard]] bool probe(std::uint32_t id) const override;
    void post_batch(std::span<const std::uint32_t> ids) override;
    [[nodiscard]] std::size_t resident_items() const override {
        const std::lock_guard lock{mu_};
        return cache_.size();
    }

private:
    mutable std::mutex mu_;
    cache::ImportanceCache cache_;
    const core::Sampler& sampler_;
};

/// iCache: H-section scored by raw last loss; optional L-section with
/// random replacement and substitution of missed non-important samples.
class ICacheFrontend final : public CacheFrontend {
public:
    struct Options {
        /// Fraction of capacity for the H (important) section; the rest is
        /// the L section. Ignored when `l_section_enabled` is false.
        double h_ratio = 0.5;
        /// Probability that a missed L-sample is served a random resident
        /// substitute instead of being fetched.
        double substitute_prob = 0.45;
        bool l_section_enabled = true;
    };

    ICacheFrontend(std::size_t capacity,
                   const core::ComputeBoundSampler& sampler, Options options,
                   util::Rng rng);

    [[nodiscard]] std::string name() const override {
        return options_.l_section_enabled ? "iCache" : "iCache-imp";
    }
    Access access(std::uint32_t id) override;
    [[nodiscard]] bool probe(std::uint32_t id) const override;
    /// iCache already substitutes on healthy misses; degraded mode reuses
    /// the same random-resident pick (L section only).
    [[nodiscard]] std::optional<std::uint32_t> substitute(
        std::uint32_t id) override;
    void post_batch(std::span<const std::uint32_t> ids) override;
    [[nodiscard]] std::size_t resident_items() const override {
        const std::lock_guard lock{mu_};
        return h_cache_.size() + l_cache_.size();
    }

private:
    mutable std::mutex mu_;
    cache::ImportanceCache h_cache_;
    cache::RandomCache l_cache_;
    const core::ComputeBoundSampler& sampler_;
    Options options_;
    util::Rng rng_;
};

/// SpiderCache facade adapter (full system or -imp ablation, depending on
/// the facade's own configuration).
class SpiderFrontend final : public CacheFrontend {
public:
    explicit SpiderFrontend(core::SpiderCache& spider);

    [[nodiscard]] std::string name() const override { return "SpiderCache"; }
    Access access(std::uint32_t id) override;
    [[nodiscard]] bool probe(std::uint32_t id) const override;
    /// Degraded mode: Case-3 surrogate, else best same-class resident.
    [[nodiscard]] std::optional<std::uint32_t> substitute(
        std::uint32_t id) override;
    [[nodiscard]] std::size_t resident_items() const override;

private:
    core::SpiderCache& spider_;
};

}  // namespace spider::sim
