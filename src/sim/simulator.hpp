#pragma once

// End-to-end training simulator: the full Algorithm 1 loop over a real
// trainable model and a virtual-time storage stack. One TrainingSimulator
// run produces the per-epoch series behind every figure and the totals
// behind every table of the paper's evaluation.
//
// Real parts: sampling order, cache decisions, MLP forward/backward (loss,
// embeddings, accuracy), graph construction and scoring (HNSW), elastic
// ratio control. Modeled parts: stage durations on the virtual clock
// (remote fetch latency, per-model forward/backward/IS costs from the
// calibrated profiles).
//
// `num_gpus > 1` simulates synchronous data-parallel training: each global
// step consumes one micro-batch per GPU, the micro-batch loads contend for
// the shared remote-storage fetch slots, compute runs in parallel, and an
// all-reduce term is added per step (Fig. 17).

#include <cstdint>
#include <memory>
#include <optional>

#include "cache/shadow_tuner.hpp"
#include "cluster/cooperative_cache.hpp"
#include "core/elastic.hpp"
#include "core/graph_scorer.hpp"
#include "data/dataset.hpp"
#include "metrics/metrics.hpp"
#include "nn/mlp_classifier.hpp"
#include "nn/model_profile.hpp"
#include "sim/frontend.hpp"
#include "sim/strategy.hpp"
#include "storage/remote_store.hpp"
#include "storage/resilient_store.hpp"
#include "storage/ssd_tier.hpp"

namespace spider::sim {

struct SimConfig {
    data::DatasetSpec dataset;
    nn::ModelProfile model = nn::make_profile(nn::ModelKind::kResNet18);
    StrategyKind strategy = StrategyKind::kSpider;

    /// Cache capacity as a fraction of the dataset (paper: 10-75%).
    double cache_fraction = 0.20;
    std::size_t epochs = 100;
    std::size_t batch_size = 128;
    std::size_t num_gpus = 1;

    storage::RemoteStoreConfig remote{
        .latency_per_sample = storage::from_ms(4.5),
        .bytes_per_ms = 1.25e6,
        .parallelism = 2,
    };
    /// Virtual cost of serving one sample from the in-memory cache.
    double hit_cost_ms = 0.02;
    /// Per-step gradient synchronization cost when num_gpus > 1.
    double allreduce_ms = 6.0;
    /// Remote storage serves at most this many concurrent fetches across
    /// all GPUs (the NFS-server bandwidth cap behind Fig. 17's sub-linear
    /// baseline scaling).
    std::size_t storage_parallel_cap = 6;

    /// Overlap the graph-IS stage per Fig. 12 (true in the paper; false
    /// reproduces the "serial" column of the overhead analysis).
    bool pipeline_is = true;

    /// Real loader-worker threads for the data-loading stage. 1 (default)
    /// runs the legacy serial path, bit-identical to previous releases;
    /// N > 1 splits each global batch across N OS threads that share the
    /// (sharded) cache and the capped remote fetch slots — the Fig. 17
    /// configuration on real concurrency. 0 = one worker per simulated
    /// GPU. Aggregate counters are exact under threading; the hit/miss
    /// *interleaving* (and thus per-run hit totals) may vary slightly
    /// between runs, like any concurrent cache.
    std::size_t worker_threads = 1;

    /// Lookahead prefetcher: at the end of each step, probe the sampler's
    /// next-batch ids and fetch the predicted misses during the compute
    /// window, when the storage path is idle (DESIGN.md §8.3). Never
    /// changes hit/miss/eviction decisions — admission stays on the
    /// demand path — so it is a pure latency-hiding term.
    bool prefetch_enabled = false;
    /// Bounded in-flight window of the prefetcher (max outstanding ids).
    /// Static mode only; the adaptive controller sizes its own window.
    std::size_t prefetch_window = 256;
    /// Adaptive + epoch-crossing prefetch (DESIGN.md §8.3): size the
    /// lookahead window each step from an EWMA of the observed
    /// storage-idle span instead of the static prefetch_window, let the
    /// window run past the next batch deep into the epoch's remaining
    /// order, and spill leftover tail budget into the head of the next
    /// epoch's order (peeked from the sampler — the draw the next epoch
    /// then reuses bit-identically). false (default) keeps the legacy
    /// static-window next-batch-only path untouched.
    bool prefetch_adaptive = false;
    /// Upper clamp of the adaptive window (max outstanding ids).
    std::size_t prefetch_window_max = 1024;

    /// Two-layer cache shards (kSpider strategies). 0 = auto: 1 shard when
    /// worker_threads <= 1 (exact legacy semantics), min(16, hw) shards
    /// otherwise. Any explicit value is used as-is.
    std::size_t cache_shards = 0;
    /// Serve cache lookups/probes from the seqlock residency view instead
    /// of the shard mutex (DESIGN.md §8.4). Same hit/miss sequence either
    /// way; off forces every read through the locked path.
    bool cache_lockfree_reads = true;

    /// Per-section eviction policies of the kSpider* two-layer cache
    /// ([policy] INI block, DESIGN.md §13). The defaults — semantic
    /// importance + FIFO homophily — are the paper's Algorithm 1 and take
    /// the exact legacy code path.
    cache::SectionPolicies policy{};

    /// Online shadow-cache tuner ([tuner] INI block, DESIGN.md §13):
    /// ghost caches replay the served stream under candidate imp_ratio
    /// splits and importance policies; a sustained winner is auto-applied
    /// at the epoch boundary (overriding the elastic manager's proposal
    /// for that boundary). kSpider* strategies only; off by default.
    cache::TunerConfig tuner{};

    // SpiderCache knobs (used by kSpiderImp / kSpider).
    core::ScorerConfig scorer{};
    core::ElasticConfig elastic{};
    bool elastic_enabled = true;
    /// Uniform mixing floor of the graph-IS multinomial sampler.
    double spider_sampler_floor = 0.05;

    // iCache knobs.
    ICacheFrontend::Options icache{};
    double icache_keep_fraction = 0.6;

    // Optimizer.
    nn::SgdConfig sgd{};
    float lr_min = 0.005F;

    /// Optional local-SSD tier between the memory cache and remote
    /// storage (CoorDL-style write-back caching; off by default to match
    /// the paper's Spot-VM setting where local SSDs are unreliable).
    storage::SsdTierConfig ssd{};

    /// Crash-safe warm restart (DESIGN.md §12): when nonzero, a kill -9 +
    /// restart is simulated at the START of this 0-based epoch — the
    /// in-memory cache, SSD tier object, and resilient-client state are
    /// torn down and rebuilt (the model itself is assumed checkpointed,
    /// the standard practice). With a WAL configured the rebuilt caches
    /// restore their pre-kill residency (warm); without one the restart
    /// is stone-cold — the baseline the cold_start_misses burn-down is
    /// measured against. 0 = never. Mutually exclusive with
    /// prefetch_enabled, served_port, and cluster.nodes > 1.
    std::size_t restart_epoch = 0;
    /// Directory of the residency WAL + snapshot ("" = WAL disabled).
    /// kSpider* strategies log both in-memory sections; every strategy
    /// logs the SSD tier.
    std::string wal_dir;
    /// Compact the WAL into a snapshot every this many epochs (epoch-end;
    /// >= 1). Records since the last compaction ride the log tail and are
    /// lost if unsynced at the kill (see wal_sync_every_append).
    std::size_t wal_compact_every_epochs = 1;
    /// Flush the log on every append instead of only at compaction.
    bool wal_sync_every_append = false;

    /// Remote-storage fault injection (DESIGN.md §9). Disabled by default;
    /// the resilient client layer is then bypassed entirely and the run is
    /// bit-identical to a fault-free build (zero-cost-off).
    storage::FaultModelConfig faults{};
    /// Retry/hedge/breaker policy and the degraded-mode substitution bound
    /// of the resilient client. Consulted only when faults.enabled.
    storage::ResiliencePolicy resilience{};

    /// Served-cache mode (DESIGN.md §10.4): when nonzero, the strategy's
    /// local cache front-end is replaced by a NetworkFrontend speaking
    /// the spider::server wire protocol to served_host:served_port,
    /// tenant served_tenant — the whole simulator then trains against a
    /// (typically in-process) SpiderServer, and several simulators can
    /// share one server as separate tenants. Residency/admission move
    /// server-side; sampling and the virtual cost model stay local. Run
    /// the server cache-only (no MissFetchFn) so miss costs are charged
    /// exactly once, by the simulator.
    std::uint16_t served_port = 0;
    std::string served_host = "127.0.0.1";
    std::uint8_t served_tenant = 0;

    /// Multi-node cooperative cache (DESIGN.md §11): engaged when
    /// cluster.nodes > 1. Each node owns a consistent-hash slice of the
    /// id space with its own cache shard; local frontend misses are
    /// serviced through cluster::CooperativeCache (local hit / peer
    /// fetch / remote fallback) instead of the direct remote path.
    /// `nodes <= 1` leaves the single-node path bit-identical (parity
    /// test). Mutually exclusive with faults.enabled, served_port, and
    /// prefetch_enabled — those layers price the storage path directly.
    /// node_cache_items and local_hit_ms are derived at run() time from
    /// cluster_node_cache_fraction and hit_cost_ms; the seed from
    /// run.seed.
    cluster::ClusterConfig cluster{.nodes = 1};
    /// Per-node cluster-shard capacity as a fraction of the dataset.
    double cluster_node_cache_fraction = 0.10;
    /// Simulated membership events, applied at the start of the given
    /// 0-based epoch (0 = never; epoch 0 is construction): join adds a
    /// fresh node, leave removes the highest-id active node.
    std::size_t cluster_join_epoch = 0;
    std::size_t cluster_leave_epoch = 0;

    /// Record the full access trace into RunResult (offline analysis via
    /// spider::trace).
    bool record_trace = false;

    std::uint64_t seed = 1;
};

class TrainingSimulator {
public:
    explicit TrainingSimulator(SimConfig config);

    /// Runs the full training; returns per-epoch metrics and totals.
    [[nodiscard]] metrics::RunResult run();

    /// Access to the dataset (built in the constructor) so callers can
    /// inspect difficulty states etc.
    [[nodiscard]] const data::SyntheticDataset& dataset() const {
        return dataset_;
    }

private:
    struct StrategyParts {
        std::unique_ptr<core::Sampler> sampler;
        std::unique_ptr<CacheFrontend> frontend;
        std::unique_ptr<core::SpiderCache> spider;  // kSpider* only
        core::ComputeBoundSampler* compute_bound = nullptr;  // kICache* only
    };

    [[nodiscard]] StrategyParts build_strategy(std::size_t cache_items);
    /// Loader-worker count after resolving the 0 = per-GPU default.
    [[nodiscard]] std::size_t resolved_workers() const;

    SimConfig config_;
    data::SyntheticDataset dataset_;
    storage::RemoteStore remote_;
};

}  // namespace spider::sim
