#include "sim/frontend.hpp"

#include <algorithm>
#include <cmath>

namespace spider::sim {

// ----------------------------------------------------------- PolicyFrontend

PolicyFrontend::PolicyFrontend(std::unique_ptr<cache::EvictionCache> policy)
    : policy_{std::move(policy)} {}

Access PolicyFrontend::access(std::uint32_t id) {
    const std::lock_guard lock{mu_};
    Access result;
    result.served_id = id;
    if (policy_->touch(id)) {
        result.hit = true;
        return result;
    }
    policy_->admit(id);
    return result;
}

bool PolicyFrontend::probe(std::uint32_t id) const {
    const std::lock_guard lock{mu_};
    return policy_->contains(id);
}

// ------------------------------------------------------------ ShadeFrontend

ShadeFrontend::ShadeFrontend(std::size_t capacity,
                             const core::Sampler& sampler)
    : cache_{capacity}, sampler_{sampler} {}

Access ShadeFrontend::access(std::uint32_t id) {
    const std::lock_guard lock{mu_};
    Access result;
    result.served_id = id;
    if (cache_.contains(id)) {
        result.hit = true;
        result.importance_hit = true;
        return result;
    }
    cache_.admit_scored(id, sampler_.importance_of(id));
    return result;
}

bool ShadeFrontend::probe(std::uint32_t id) const {
    const std::lock_guard lock{mu_};
    return cache_.contains(id);
}

void ShadeFrontend::post_batch(std::span<const std::uint32_t> ids) {
    const std::lock_guard lock{mu_};
    // Rank weights just changed for these samples; keep resident entries'
    // heap positions in sync.
    for (std::uint32_t id : ids) {
        if (cache_.contains(id)) {
            cache_.update_score(id, sampler_.importance_of(id));
        }
    }
}

// ----------------------------------------------------------- ICacheFrontend

ICacheFrontend::ICacheFrontend(std::size_t capacity,
                               const core::ComputeBoundSampler& sampler,
                               Options options, util::Rng rng)
    : h_cache_{options.l_section_enabled
                   ? static_cast<std::size_t>(std::llround(
                         static_cast<double>(capacity) * options.h_ratio))
                   : capacity},
      l_cache_{capacity - h_cache_.capacity(), rng.split()},
      sampler_{sampler},
      options_{options},
      rng_{rng} {}

Access ICacheFrontend::access(std::uint32_t id) {
    const std::lock_guard lock{mu_};
    Access result;
    result.served_id = id;
    if (h_cache_.contains(id)) {
        result.hit = true;
        result.importance_hit = true;
        return result;
    }
    if (options_.l_section_enabled && l_cache_.touch(id)) {
        result.hit = true;
        return result;
    }

    const bool important = sampler_.is_important(id);
    if (options_.l_section_enabled && !important) {
        // Non-important miss: usually served by a random resident sample
        // instead of paying the remote fetch — iCache's hit-ratio booster
        // and the root of its accuracy loss (paper Motivation 2).
        if (rng_.uniform() < options_.substitute_prob) {
            if (const auto substitute = l_cache_.random_resident()) {
                result.hit = true;
                result.substitution = true;
                result.served_id = *substitute;
                return result;
            }
        }
        l_cache_.admit(id);
        return result;
    }

    // Important miss (or imp-only variant): score-gated admission with the
    // raw last-seen loss as the score.
    h_cache_.admit_scored(id, sampler_.importance_of(id));
    if (options_.l_section_enabled && !h_cache_.contains(id)) {
        l_cache_.admit(id);
    }
    return result;
}

std::optional<std::uint32_t> ICacheFrontend::substitute(std::uint32_t id) {
    (void)id;
    const std::lock_guard lock{mu_};
    if (!options_.l_section_enabled) return std::nullopt;
    return l_cache_.random_resident();
}

bool ICacheFrontend::probe(std::uint32_t id) const {
    const std::lock_guard lock{mu_};
    return h_cache_.contains(id) ||
           (options_.l_section_enabled && l_cache_.contains(id));
}

void ICacheFrontend::post_batch(std::span<const std::uint32_t> ids) {
    const std::lock_guard lock{mu_};
    for (std::uint32_t id : ids) {
        if (h_cache_.contains(id)) {
            h_cache_.update_score(id, sampler_.importance_of(id));
        }
    }
}

// ----------------------------------------------------------- SpiderFrontend

SpiderFrontend::SpiderFrontend(core::SpiderCache& spider) : spider_{spider} {}

Access SpiderFrontend::access(std::uint32_t id) {
    Access result;
    const cache::Lookup lookup = spider_.lookup(id);
    result.served_id = lookup.served_id;
    switch (lookup.kind) {
        case cache::HitKind::kImportance:
            result.hit = true;
            result.importance_hit = true;
            break;
        case cache::HitKind::kHomophily:
            result.hit = true;
            result.homophily_hit = true;
            break;
        case cache::HitKind::kMiss:
            spider_.on_miss_fetched(id);
            break;
    }
    return result;
}

bool SpiderFrontend::probe(std::uint32_t id) const {
    // Wait-free when cache_lockfree_reads is on: the prefetcher's probe
    // storm no longer serializes behind trainer admissions.
    return spider_.probe(id);
}

std::optional<std::uint32_t> SpiderFrontend::substitute(std::uint32_t id) {
    return spider_.degraded_surrogate(id);
}

std::size_t SpiderFrontend::resident_items() const {
    return spider_.cache().importance_size() +
           spider_.cache().homophily_size();
}

}  // namespace spider::sim
