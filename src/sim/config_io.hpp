#pragma once

// Builds a SimConfig from a util::Config (INI file) — every simulation
// knob addressable by key, so experiments are scriptable. Unknown keys are
// rejected (catching typos); see configs/example.ini for the schema.

#include "sim/simulator.hpp"
#include "util/config.hpp"

namespace spider::sim {

/// Translates a parsed config into a SimConfig. Throws
/// std::invalid_argument on unknown keys or invalid values.
[[nodiscard]] SimConfig sim_config_from(const util::Config& config);

/// Strategy name parser ("spider", "spider-imp", "shade", "icache",
/// "icache-imp", "coordl", "lfu", "baseline") — case-insensitive.
[[nodiscard]] StrategyKind strategy_from_string(const std::string& name);

/// Model name parser ("resnet18", "resnet50", "alexnet", "vgg16",
/// "mobilenetv2", "inceptionv3").
[[nodiscard]] nn::ModelKind model_from_string(const std::string& name);

}  // namespace spider::sim
