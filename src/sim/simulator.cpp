#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "core/pipeline.hpp"
#include "nn/optimizer.hpp"

namespace spider::sim {

TrainingSimulator::TrainingSimulator(SimConfig config)
    : config_{std::move(config)},
      dataset_{config_.dataset},
      remote_{dataset_, config_.remote} {}

TrainingSimulator::StrategyParts TrainingSimulator::build_strategy(
    std::size_t cache_items) {
    StrategyParts parts;
    util::Rng rng{config_.seed ^ 0xC0FFEEULL};
    const std::size_t n = dataset_.size();

    switch (config_.strategy) {
        case StrategyKind::kBaselineLru:
            parts.sampler = std::make_unique<core::UniformSampler>(n, rng);
            parts.frontend = std::make_unique<PolicyFrontend>(
                std::make_unique<cache::LruCache>(cache_items));
            break;
        case StrategyKind::kLfu:
            parts.sampler = std::make_unique<core::UniformSampler>(n, rng);
            parts.frontend = std::make_unique<PolicyFrontend>(
                std::make_unique<cache::LfuCache>(cache_items));
            break;
        case StrategyKind::kCoorDL:
            parts.sampler = std::make_unique<core::UniformSampler>(n, rng);
            parts.frontend = std::make_unique<PolicyFrontend>(
                std::make_unique<cache::StaticCache>(cache_items));
            break;
        case StrategyKind::kShade: {
            auto sampler = std::make_unique<core::ShadeSampler>(n, rng);
            parts.frontend =
                std::make_unique<ShadeFrontend>(cache_items, *sampler);
            parts.sampler = std::move(sampler);
            break;
        }
        case StrategyKind::kICacheImp:
        case StrategyKind::kICache: {
            auto sampler = std::make_unique<core::ComputeBoundSampler>(
                n, rng, config_.icache_keep_fraction);
            ICacheFrontend::Options options = config_.icache;
            options.l_section_enabled =
                config_.strategy == StrategyKind::kICache;
            parts.compute_bound = sampler.get();
            parts.frontend = std::make_unique<ICacheFrontend>(
                cache_items, *sampler, options, rng.split());
            parts.sampler = std::move(sampler);
            break;
        }
        case StrategyKind::kSpiderImp:
        case StrategyKind::kSpider: {
            core::SpiderCacheConfig sc;
            sc.dataset_size = n;
            sc.label_of = [this](std::uint32_t id) {
                return dataset_.label_of(id);
            };
            sc.cache_items = cache_items;
            sc.embedding_dim = config_.model.sim_embedding_dim;
            sc.scorer = config_.scorer;
            sc.elastic = config_.elastic;
            sc.total_epochs = config_.epochs;
            sc.sampler_uniform_floor = config_.spider_sampler_floor;
            sc.elastic_enabled = config_.elastic_enabled;
            sc.homophily_enabled = config_.strategy == StrategyKind::kSpider;
            sc.seed = config_.seed;
            parts.spider = std::make_unique<core::SpiderCache>(std::move(sc));
            parts.frontend = std::make_unique<SpiderFrontend>(*parts.spider);
            // Sampling order comes from the facade, not a standalone
            // sampler; a uniform sampler slot stays unused but keeps the
            // loop uniform for observe_losses (no-op).
            parts.sampler = std::make_unique<core::UniformSampler>(n, rng);
            break;
        }
    }
    return parts;
}

metrics::RunResult TrainingSimulator::run() {
    const std::size_t n = dataset_.size();
    const auto cache_items = static_cast<std::size_t>(
        std::llround(config_.cache_fraction * static_cast<double>(n)));
    StrategyParts parts = build_strategy(cache_items);

    nn::MlpConfig mlp;
    mlp.input_dim = dataset_.feature_dim();
    mlp.hidden_dims = config_.model.sim_hidden_dims;
    mlp.num_classes = dataset_.num_classes();
    mlp.sgd = config_.sgd;
    mlp.seed = config_.seed ^ 0x11DDULL;
    nn::MlpClassifier model{mlp};

    const bool graph_is = uses_graph_is(config_.strategy);
    const std::size_t gpus = std::max<std::size_t>(config_.num_gpus, 1);
    const std::size_t global_batch = config_.batch_size * gpus;

    // Per-GPU loader workers share the storage server's fetch-slot cap.
    const std::size_t fetch_slots =
        std::min(config_.remote.parallelism * gpus,
                 std::max<std::size_t>(config_.storage_parallel_cap, 1));
    const storage::SimDuration per_fetch = remote_.fetch_cost(0);

    metrics::RunResult result;
    result.strategy = to_string(config_.strategy);
    result.model = config_.model.name;
    result.dataset = dataset_.spec().name;

    storage::VirtualClock clock;
    storage::SsdTier ssd{config_.ssd};
    util::Rng aug_rng{config_.seed ^ 0xA067ULL};

    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
        model.set_learning_rate(nn::cosine_lr(config_.sgd.learning_rate,
                                              config_.lr_min, epoch,
                                              config_.epochs));
        const std::vector<std::uint32_t> order =
            parts.spider ? parts.spider->epoch_order()
                         : parts.sampler->epoch_order(epoch);

        metrics::EpochMetrics em;
        em.epoch = epoch;
        double loss_sum = 0.0;
        std::size_t loss_batches = 0;

        for (std::size_t start = 0; start < order.size();
             start += global_batch) {
            const std::size_t count =
                std::min(global_batch, order.size() - start);
            const std::span<const std::uint32_t> requested{
                order.data() + start, count};

            // ---- Data loading (Algorithm 1 lines 4-12).
            std::vector<std::uint32_t> served(count);
            std::size_t misses = 0;
            std::size_t ssd_hits = 0;
            std::size_t hits = 0;
            for (std::size_t i = 0; i < count; ++i) {
                const Access access = parts.frontend->access(requested[i]);
                served[i] = access.served_id;
                if (config_.record_trace) {
                    trace::Outcome outcome = trace::Outcome::kMiss;
                    if (access.substitution) {
                        outcome = trace::Outcome::kSubstitution;
                    } else if (access.homophily_hit) {
                        outcome = trace::Outcome::kHomophilyHit;
                    } else if (access.importance_hit) {
                        outcome = trace::Outcome::kImportanceHit;
                    } else if (access.hit) {
                        outcome = trace::Outcome::kPolicyHit;
                    }
                    result.access_trace.record(
                        static_cast<std::uint32_t>(epoch), requested[i],
                        access.served_id, outcome);
                }
                ++em.accesses;
                if (access.hit) {
                    ++em.hits;
                    ++hits;
                    if (access.importance_hit) ++em.importance_hits;
                    if (access.homophily_hit) ++em.homophily_hits;
                    if (access.substitution) ++em.substitutions;
                } else if (ssd.fetch(requested[i])) {
                    // Miss in memory, absorbed by the local SSD tier.
                    ++em.misses;
                    ++em.ssd_hits;
                    ++ssd_hits;
                } else {
                    ++em.misses;
                    ++misses;
                    // Fetch for the clock/metrics side effects only.
                    (void)remote_.fetch(requested[i]);
                    ssd.insert(requested[i]);
                }
            }
            const std::size_t miss_rounds =
                misses == 0 ? 0 : (misses + fetch_slots - 1) / fetch_slots;
            const double load_ms =
                storage::to_ms(per_fetch) * static_cast<double>(miss_rounds) +
                storage::to_ms(ssd.batch_read_cost(ssd_hits, fetch_slots)) +
                config_.hit_cost_ms * static_cast<double>(hits) /
                    static_cast<double>(fetch_slots);

            // ---- Forward (real) over the served samples, with
            // training-time augmentation (crop/flip stand-in).
            const tensor::Matrix features =
                dataset_.gather_features_augmented(served, aug_rng);
            const std::vector<std::uint32_t> labels =
                dataset_.gather_labels(served);
            nn::ForwardResult fwd = model.forward(features, labels);
            loss_sum += fwd.mean_loss;
            ++loss_batches;

            // ---- Backward (real), with selective-backprop mask for
            // compute-bound IS.
            std::vector<std::uint8_t> mask =
                parts.sampler->train_mask(served, fwd.per_sample_loss);
            double stage2_scale = 1.0;
            if (!mask.empty()) {
                const auto trained = static_cast<double>(
                    std::count(mask.begin(), mask.end(), std::uint8_t{1}));
                stage2_scale = trained / static_cast<double>(mask.size());
            }
            model.backward_and_step(labels, mask);

            // ---- Strategy feedback.
            parts.sampler->observe_losses(served, fwd.per_sample_loss);
            parts.frontend->post_batch(served);
            if (parts.spider) {
                parts.spider->observe_batch(served, fwd.embeddings);
            }

            // ---- Virtual time. Stage fractions: per-GPU micro-batch
            // compute runs in parallel; loads already share fetch slots.
            const double batch_fraction =
                static_cast<double>(count) / static_cast<double>(global_batch);
            const double stage1_ms =
                load_ms + config_.model.forward_ms * batch_fraction;
            const double stage2_ms =
                config_.model.backward_ms * stage2_scale * batch_fraction;
            const double is_ms = config_.model.is_ms * batch_fraction;
            storage::SimDuration step = core::pipelined_batch_time(
                stage1_ms, stage2_ms, is_ms, config_.model.long_is_pipeline,
                graph_is, config_.pipeline_is);
            if (gpus > 1) {
                step += storage::from_ms(config_.allreduce_ms * 2.0 *
                                         static_cast<double>(gpus - 1) /
                                         static_cast<double>(gpus));
            }
            clock.advance(step);
            em.load_time += storage::from_ms(load_ms);
            em.compute_time += storage::from_ms(
                config_.model.forward_ms * batch_fraction + stage2_ms);
            if (graph_is) em.is_time += storage::from_ms(is_ms);
            em.epoch_time += step;
        }

        // ---- Epoch bookkeeping (real accuracy on the clean test split).
        em.train_loss =
            loss_batches == 0 ? 0.0
                              : loss_sum / static_cast<double>(loss_batches);
        em.test_accuracy =
            model.evaluate(dataset_.test_features(), dataset_.test_labels());
        if (parts.spider) {
            em.score_std = parts.spider->score_std();
            em.imp_ratio = parts.spider->end_epoch(em.test_accuracy);
        } else {
            // Loss-based strategies still have a score view; record its
            // spread for Fig. 6(c)-style comparisons.
            util::RunningStats stats;
            for (std::uint32_t id = 0; id < n; ++id) {
                stats.add(parts.sampler->importance_of(id));
            }
            em.score_std = stats.stddev();
        }

        result.epochs.push_back(em);
        result.best_accuracy = std::max(result.best_accuracy, em.test_accuracy);
    }

    result.total_time = clock.now();
    result.final_accuracy =
        result.epochs.empty() ? 0.0 : result.epochs.back().test_accuracy;
    return result;
}

}  // namespace spider::sim
