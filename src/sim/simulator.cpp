#include "sim/simulator.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "core/pipeline.hpp"
#include "core/prefetch.hpp"
#include "nn/optimizer.hpp"
#include "sim/net_frontend.hpp"
#include "storage/wal.hpp"
#include "util/thread_pool.hpp"

namespace spider::sim {

namespace {

[[nodiscard]] std::size_t ceil_div(std::size_t a, std::size_t b) {
    return b == 0 ? 0 : (a + b - 1) / b;
}

/// Fault-draw contexts (DESIGN.md §9): demand and speculative fetches draw
/// independent weather, so a demand retry after a failed prefetch is not
/// condemned to replay the same failure.
constexpr std::uint32_t kDemandContext = 1;
constexpr std::uint32_t kPrefetchContext = 2;
/// `served` slot of a sample the degradation ladder dropped (skip rung).
constexpr std::uint32_t kSkippedSentinel = 0xFFFFFFFFU;

/// Per-slice tallies of the data-loading stage. Workers fill private
/// instances; the main thread merges after the join, so epoch counters
/// need no atomics and the serial path (one slice) is bit-identical to
/// the pre-threading code.
struct SliceCounts {
    std::uint64_t hits = 0;
    std::uint64_t importance_hits = 0;
    std::uint64_t homophily_hits = 0;
    std::uint64_t substitutions = 0;
    std::uint64_t ssd_hits = 0;
    std::uint64_t remote_misses = 0;  // excludes SSD absorptions
    std::uint64_t prefetch_hidden = 0;

    // Fault-injected runs only (all zero otherwise).
    std::uint64_t fetch_ok = 0;      // resilient envelopes that succeeded
    std::uint64_t fetch_failed = 0;  // exhausted or breaker-rejected
    std::uint64_t fault_substitutions = 0;
    std::uint64_t fault_skips = 0;
    double fault_extra_ms = 0.0;     // envelope cost beyond nominal fetches
    std::vector<std::uint32_t> skipped;  // ids to offer the refill queue

    // Cluster mode only (all zero otherwise): virtual time and sources
    // of the slice's cooperative-cache miss service.
    double cluster_ms = 0.0;
    std::uint64_t cluster_local = 0;
    std::uint64_t peer_hits = 0;
    std::uint64_t peer_misses = 0;
    std::uint64_t cluster_remote = 0;
    std::uint64_t peer_hedges = 0;
    std::uint64_t peer_hedge_wins = 0;
    std::uint64_t peer_throttled = 0;
    std::uint64_t peer_failovers = 0;

    struct TraceEvent {
        std::uint32_t requested;
        std::uint32_t served;
        trace::Outcome outcome;
    };
    std::vector<TraceEvent> trace;
};

}  // namespace

TrainingSimulator::TrainingSimulator(SimConfig config)
    : config_{std::move(config)},
      dataset_{config_.dataset},
      remote_{dataset_, config_.remote} {}

std::size_t TrainingSimulator::resolved_workers() const {
    if (config_.worker_threads != 0) return config_.worker_threads;
    return std::max<std::size_t>(config_.num_gpus, 1);
}

TrainingSimulator::StrategyParts TrainingSimulator::build_strategy(
    std::size_t cache_items) {
    StrategyParts parts;
    util::Rng rng{config_.seed ^ 0xC0FFEEULL};
    const std::size_t n = dataset_.size();

    switch (config_.strategy) {
        case StrategyKind::kBaselineLru:
            parts.sampler = std::make_unique<core::UniformSampler>(n, rng);
            parts.frontend = std::make_unique<PolicyFrontend>(
                std::make_unique<cache::LruCache>(cache_items));
            break;
        case StrategyKind::kLfu:
            parts.sampler = std::make_unique<core::UniformSampler>(n, rng);
            parts.frontend = std::make_unique<PolicyFrontend>(
                std::make_unique<cache::LfuCache>(cache_items));
            break;
        case StrategyKind::kCoorDL:
            parts.sampler = std::make_unique<core::UniformSampler>(n, rng);
            parts.frontend = std::make_unique<PolicyFrontend>(
                std::make_unique<cache::StaticCache>(cache_items));
            break;
        case StrategyKind::kShade: {
            auto sampler = std::make_unique<core::ShadeSampler>(n, rng);
            parts.frontend =
                std::make_unique<ShadeFrontend>(cache_items, *sampler);
            parts.sampler = std::move(sampler);
            break;
        }
        case StrategyKind::kICacheImp:
        case StrategyKind::kICache: {
            auto sampler = std::make_unique<core::ComputeBoundSampler>(
                n, rng, config_.icache_keep_fraction);
            ICacheFrontend::Options options = config_.icache;
            options.l_section_enabled =
                config_.strategy == StrategyKind::kICache;
            parts.compute_bound = sampler.get();
            parts.frontend = std::make_unique<ICacheFrontend>(
                cache_items, *sampler, options, rng.split());
            parts.sampler = std::move(sampler);
            break;
        }
        case StrategyKind::kSpiderImp:
        case StrategyKind::kSpider: {
            core::SpiderCacheConfig sc;
            sc.dataset_size = n;
            sc.label_of = [this](std::uint32_t id) {
                return dataset_.label_of(id);
            };
            sc.cache_items = cache_items;
            sc.embedding_dim = config_.model.sim_embedding_dim;
            sc.scorer = config_.scorer;
            sc.elastic = config_.elastic;
            sc.total_epochs = config_.epochs;
            sc.sampler_uniform_floor = config_.spider_sampler_floor;
            sc.elastic_enabled = config_.elastic_enabled;
            sc.homophily_enabled = config_.strategy == StrategyKind::kSpider;
            sc.seed = config_.seed;
            // Shards: explicit value wins; auto keeps the legacy single
            // structure for serial runs and shards for real threading.
            sc.cache_shards = config_.cache_shards;
            if (sc.cache_shards == 0 && resolved_workers() <= 1) {
                sc.cache_shards = 1;
            }
            sc.cache_lockfree_reads = config_.cache_lockfree_reads;
            sc.cache_policies = config_.policy;
            parts.spider = std::make_unique<core::SpiderCache>(std::move(sc));
            parts.frontend = std::make_unique<SpiderFrontend>(*parts.spider);
            // Sampling order comes from the facade, not a standalone
            // sampler; a uniform sampler slot stays unused but keeps the
            // loop uniform for observe_losses (no-op).
            parts.sampler = std::make_unique<core::UniformSampler>(n, rng);
            break;
        }
    }
    if (config_.served_port != 0) {
        // Served-cache mode: residency decisions move behind the wire.
        // The strategy's sampler (and, for kSpider*, its scoring/elastic
        // machinery) keeps running locally; only the front-end is swapped.
        parts.frontend = std::make_unique<NetworkFrontend>(
            config_.served_host, config_.served_port, config_.served_tenant);
    }
    return parts;
}

metrics::RunResult TrainingSimulator::run() {
    const std::size_t n = dataset_.size();
    // Validate before build_strategy so the cluster/served conflict is
    // reported as such, not as a failed connect to an absent server.
    if (config_.cluster.nodes > 1 &&
        (config_.faults.enabled || config_.served_port != 0 ||
         config_.prefetch_enabled)) {
        throw std::invalid_argument{
            "SimConfig: cluster.nodes > 1 is mutually exclusive with "
            "faults.enabled, served_port, and prefetch.enabled"};
    }
    if (config_.restart_epoch > 0 &&
        (config_.prefetch_enabled || config_.served_port != 0 ||
         config_.cluster.nodes > 1)) {
        throw std::invalid_argument{
            "SimConfig: restart.epoch is mutually exclusive with "
            "prefetch.enabled, served_port, and cluster.nodes > 1 (the "
            "kill tears down state those layers hold across epochs)"};
    }
    if (config_.wal_compact_every_epochs == 0) {
        throw std::invalid_argument{
            "SimConfig: wal.compact_every_epochs must be >= 1"};
    }
    if (config_.tuner.enabled) {
        cache::validate(config_.tuner);
        if (!uses_graph_is(config_.strategy)) {
            throw std::invalid_argument{
                "SimConfig: tuner.enabled requires a kSpider* strategy "
                "(the ghosts shadow the two-layer cache)"};
        }
        if (config_.served_port != 0) {
            throw std::invalid_argument{
                "SimConfig: tuner.enabled is mutually exclusive with "
                "served_port (residency lives server-side there)"};
        }
    }
    const auto cache_items = static_cast<std::size_t>(
        std::llround(config_.cache_fraction * static_cast<double>(n)));
    StrategyParts parts = build_strategy(cache_items);

    // Online shadow tuner (DESIGN.md §13): ghost caches replay the served
    // stream on this (driver) thread after the loader slices merge, so
    // the replay order — and therefore every switch decision — is
    // deterministic regardless of worker count.
    std::unique_ptr<cache::ShadowTuner> tuner;
    const auto make_tuner = [this, &parts,
                             cache_items]() -> std::unique_ptr<cache::ShadowTuner> {
        if (!config_.tuner.enabled || !parts.spider) return nullptr;
        return std::make_unique<cache::ShadowTuner>(
            config_.tuner, cache_items, parts.spider->imp_ratio(),
            parts.spider->cache().section_policies().importance);
    };
    tuner = make_tuner();

    nn::MlpConfig mlp;
    mlp.input_dim = dataset_.feature_dim();
    mlp.hidden_dims = config_.model.sim_hidden_dims;
    mlp.num_classes = dataset_.num_classes();
    mlp.sgd = config_.sgd;
    mlp.seed = config_.seed ^ 0x11DDULL;
    nn::MlpClassifier model{mlp};

    const bool graph_is = uses_graph_is(config_.strategy);
    const std::size_t gpus = std::max<std::size_t>(config_.num_gpus, 1);
    const std::size_t global_batch = config_.batch_size * gpus;

    // Per-GPU loader workers share the storage server's fetch-slot cap.
    const std::size_t fetch_slots =
        std::min(config_.remote.parallelism * gpus,
                 std::max<std::size_t>(config_.storage_parallel_cap, 1));
    const storage::SimDuration per_fetch = remote_.fetch_cost(0);
    const double per_fetch_ms = storage::to_ms(per_fetch);

    metrics::RunResult result;
    result.strategy = to_string(config_.strategy);
    result.model = config_.model.name;
    result.dataset = dataset_.spec().name;

    storage::VirtualClock clock;
    // SsdTier serializes internally, so threaded loader workers share it
    // directly (the cache server's miss path relies on the same contract).
    // Behind a pointer because a simulated kill -9 replaces the tier (the
    // mutex member makes it immovable).
    auto ssd = std::make_unique<storage::SsdTier>(config_.ssd);
    // Fresh run in block mode: wipe whatever segment files a previous
    // process left, mirroring the WAL's compact({}) reset below.
    ssd->clear_store();
    // Block mode persists real payloads: the sample's feature bytes stand
    // in for the decoded training record (byte-identical round trips are
    // what the restart test checks).
    const auto ssd_payload =
        [this](std::uint32_t id) -> std::span<const std::uint8_t> {
        const auto& features = dataset_.sample(id).features;
        return {reinterpret_cast<const std::uint8_t*>(features.data()),
                features.size() * sizeof(float)};
    };
    const bool ssd_block = ssd->block_mode();
    util::Rng aug_rng{config_.seed ^ 0xA067ULL};

    // Residency WAL (DESIGN.md §12): cache layers stream admissions /
    // evictions; epoch-end compaction folds a consistent snapshot. The
    // listener holds the affected shard/tier lock while appending — the
    // WAL's internal mutex is always innermost and never calls back out.
    std::unique_ptr<storage::CacheWal> wal;
    if (!config_.wal_dir.empty()) {
        wal = std::make_unique<storage::CacheWal>(storage::WalConfig{
            .enabled = true,
            .dir = config_.wal_dir,
            .sync_every_append = config_.wal_sync_every_append,
        });
    }
    const auto attach_wal_listeners = [&wal, &parts, &ssd] {
        if (!wal) return;
        const cache::ResidencyListener listener =
            [&wal](const cache::ResidencyRecord& record) {
                wal->append(record);
            };
        if (parts.spider) {
            parts.spider->cache().set_residency_listener(listener);
        }
        ssd->set_residency_listener(listener);
    };
    attach_wal_listeners();
    // Fresh run: reset whatever a previous process left in the directory,
    // so a mid-run restore only ever sees this run's records.
    if (wal) wal->compact({});

    // Fault-injected runs route every remote fetch through the resilient
    // client; fault-free runs keep the direct RemoteStore path, untouched
    // and unmeasured (zero-cost-off, asserted by the parity test).
    const bool faulty = config_.faults.enabled;
    std::unique_ptr<storage::ResilientStore> resilient;
    if (faulty) {
        resilient = std::make_unique<storage::ResilientStore>(
            remote_, config_.faults, config_.resilience);
    }

    // Multi-node cooperative cache (DESIGN.md §11). Engaged only when
    // nodes > 1, so single-node runs keep the legacy path bit for bit.
    const bool clustered = config_.cluster.nodes > 1;
    std::unique_ptr<cluster::CooperativeCache> coop;
    std::vector<std::uint32_t> cluster_nodes;
    if (clustered) {
        cluster::ClusterConfig cc = config_.cluster;
        cc.node_cache_items = std::max<std::size_t>(
            static_cast<std::size_t>(std::llround(
                config_.cluster_node_cache_fraction * static_cast<double>(n))),
            1);
        cc.local_hit_ms = config_.hit_cost_ms;
        cc.cache_shards = config_.cache_shards;
        if (cc.cache_shards == 0 && resolved_workers() <= 1) {
            cc.cache_shards = 1;  // auto resolves like build_strategy
        }
        cc.cache_lockfree_reads = config_.cache_lockfree_reads;
        cc.seed = config_.seed ^ 0xC10C5EEDULL;
        coop = std::make_unique<cluster::CooperativeCache>(dataset_, remote_,
                                                           cc);
        cluster_nodes = coop->active_nodes();
    }
    storage::ResilientStore::Counters fault_prev{};
    std::uint64_t timeouts_prev = 0;
    // Virtual-"now" mirror for background prefetch threads: they cannot
    // read the clock mid-step, and batch granularity is all the fault
    // model's outage windows need.
    std::atomic<std::int64_t> vnow{0};

    // Real loader workers (Fig. 17 on actual threads). The pool exists
    // only when requested; the serial path takes no locks beyond the
    // frontends' own and is bit-identical to the pre-threading simulator.
    const std::size_t workers = resolved_workers();
    const bool threaded = workers > 1;
    std::unique_ptr<util::ThreadPool> loader_pool;
    if (threaded) {
        loader_pool = std::make_unique<util::ThreadPool>(workers);
        remote_.set_fetch_slot_cap(fetch_slots);
    }

    // Lookahead prefetcher state: `prefetched` is the id set chosen (and
    // already issued) for the *next* global batch. In threaded mode the
    // fetches run on a real background pool with dedup and a bounded
    // window; in serial mode the issue is immediate and only the virtual
    // overlap accounting matters.
    std::unordered_set<std::uint32_t> prefetched;
    std::unique_ptr<core::PrefetchPipeline> prefetcher;
    // Adaptive depth controller (DESIGN.md §8.3): replaces the static
    // prefetch_window with a per-step window sized from the EWMA of the
    // observed storage-idle span. Engaged only when both knobs are on.
    std::optional<core::AdaptivePrefetchController> adaptive;
    if (config_.prefetch_enabled && config_.prefetch_adaptive) {
        adaptive.emplace(core::AdaptivePrefetchController::Config{
            .min_window = 1,
            .max_window =
                std::max<std::size_t>(config_.prefetch_window_max, 1),
            .alpha = 0.25,
        });
    }
    if (config_.prefetch_enabled && threaded) {
        core::PrefetchPipeline::Config pc;
        pc.threads = std::max<std::size_t>(workers / 2, 1);
        // The adaptive controller resizes the window before the first
        // issue; its clamp is the only bound that matters then.
        pc.max_in_flight = adaptive ? config_.prefetch_window_max
                                    : config_.prefetch_window;
        prefetcher = std::make_unique<core::PrefetchPipeline>(
            [&parts](std::uint32_t id) { return parts.frontend->probe(id); },
            [this, &resilient, &vnow](std::uint32_t id) {
                if (!resilient) {
                    (void)remote_.fetch(id);
                    return;
                }
                const storage::FetchResult r = resilient->fetch(
                    id,
                    storage::SimDuration{
                        vnow.load(std::memory_order_relaxed)},
                    kPrefetchContext);
                // Propagates through consume()/drain() (the pipeline's
                // exception contract); the demand path falls back to its
                // own resilient fetch.
                if (!r.ok) {
                    throw std::runtime_error{"speculative fetch failed"};
                }
            },
            pc);
    }

    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
        model.set_learning_rate(nn::cosine_lr(config_.sgd.learning_rate,
                                              config_.lr_min, epoch,
                                              config_.epochs));
        // Simulated kill -9 + restart (DESIGN.md §12): the process dies
        // between epochs — in-memory cache, SSD tier handle, resilient
        // client, and the WAL's unsynced tail all vanish; the model is
        // assumed checkpointed. With a WAL the rebuilt caches restore
        // their pre-kill residency from snapshot + surviving log.
        std::uint64_t restored_this_epoch = 0;
        if (epoch != 0 && epoch == config_.restart_epoch) {
            if (wal) wal->drop_unflushed();
            // Block mode: the kill also loses the segment tail still in
            // the page cache; the rebuilt tier recovers from what disk
            // actually holds (torn-tail scan, DESIGN.md §14).
            ssd->drop_unflushed();
            // Old handle closes its store before the replacement opens
            // the same directory and runs the recovery scan.
            ssd.reset();
            parts = build_strategy(cache_items);
            ssd = std::make_unique<storage::SsdTier>(config_.ssd);
            if (faulty) {
                resilient = std::make_unique<storage::ResilientStore>(
                    remote_, config_.faults, config_.resilience);
                fault_prev = {};
                timeouts_prev = 0;
            }
            if (wal) {
                const cache::RestoreImage image = wal->load();
                if (parts.spider) {
                    restored_this_epoch +=
                        parts.spider->restore_from_wal(image);
                }
                // Listener first: ids the restore drops (smaller tier,
                // payload lost in the crash) stream kSsdEvict so the WAL
                // converges to actual residency instead of drifting.
                ssd->set_residency_listener(
                    [&wal](const cache::ResidencyRecord& record) {
                        wal->append(record);
                    });
                restored_this_epoch += ssd->restore(image.ssd);
            }
            attach_wal_listeners();
            // The kill also took the tuner's ghosts; rebuild the panel
            // against the restarted incumbent (streaks start over).
            tuner = make_tuner();
        }
        // Per-epoch contention counters (slot_waits / peak_in_flight)
        // start fresh so CSV rows don't accumulate across epochs — the
        // SSD tier's hit/miss counters follow the same discipline.
        remote_.reset_contention_counters();
        ssd->reset_counters();
        if (coop) {
            // Membership events land at epoch boundaries, workers
            // quiesced; the ring moves only the affected keys and
            // stranded entries age out of their old shard.
            if (epoch != 0 && epoch == config_.cluster_join_epoch) {
                (void)coop->add_node();
            }
            if (epoch != 0 && epoch == config_.cluster_leave_epoch &&
                coop->num_nodes() > 1) {
                coop->remove_node(coop->active_nodes().back());
            }
            cluster_nodes = coop->active_nodes();
            coop->begin_epoch();  // fresh communication budget
        }
        std::vector<std::uint32_t> order =
            parts.spider ? parts.spider->epoch_order()
                         : parts.sampler->epoch_order(epoch);
        // A new epoch draws a new order, so the static path's stale
        // lookahead is worthless. Adaptive mode instead carries the
        // epoch-crossing prefetches over: they were drawn from a peek of
        // this very order, so they are the next batches' ids.
        if (!config_.prefetch_adaptive) prefetched.clear();

        // Degradation-ladder state (DESIGN.md §9): the epoch's surrogate
        // budget, and the refill queue — a failed id is appended to the
        // epoch order at most once, so every sample gets a second chance
        // but the epoch is guaranteed to terminate.
        const auto substitute_budget = static_cast<std::uint64_t>(
            config_.resilience.max_substitute_fraction *
            static_cast<double>(order.size()));
        std::atomic<std::uint64_t> substitutes_used{0};
        std::unordered_set<std::uint32_t> refilled;

        metrics::EpochMetrics em;
        em.epoch = epoch;
        em.restored_items = restored_this_epoch;
        double loss_sum = 0.0;
        std::size_t loss_batches = 0;
        double window_sum = 0.0;
        std::size_t window_steps = 0;

        for (std::size_t start = 0; start < order.size();
             start += global_batch) {
            const std::size_t count =
                std::min(global_batch, order.size() - start);
            const std::span<const std::uint32_t> requested{
                order.data() + start, count};
            // All fault draws of this batch see the same virtual time:
            // outage membership is then a pure function of the batch
            // index, not of worker scheduling.
            const storage::SimDuration batch_now = clock.now();

            // ---- Data loading (Algorithm 1 lines 4-12), one slice per
            // loader worker. Slices write disjoint ranges of `served`.
            std::vector<std::uint32_t> served(count);
            const auto load_slice = [&](std::size_t lo, std::size_t hi,
                                        SliceCounts& out) {
                for (std::size_t i = lo; i < hi; ++i) {
                    const Access access = parts.frontend->access(requested[i]);
                    served[i] = access.served_id;
                    if (config_.record_trace) {
                        trace::Outcome outcome = trace::Outcome::kMiss;
                        if (access.substitution) {
                            outcome = trace::Outcome::kSubstitution;
                        } else if (access.homophily_hit) {
                            outcome = trace::Outcome::kHomophilyHit;
                        } else if (access.importance_hit) {
                            outcome = trace::Outcome::kImportanceHit;
                        } else if (access.hit) {
                            outcome = trace::Outcome::kPolicyHit;
                        }
                        out.trace.push_back(
                            {requested[i], access.served_id, outcome});
                    }
                    if (access.hit) {
                        ++out.hits;
                        if (access.importance_hit) ++out.importance_hits;
                        if (access.homophily_hit) ++out.homophily_hits;
                        if (access.substitution) ++out.substitutions;
                        continue;
                    }
                    if (ssd->fetch(requested[i])) {
                        // Miss in memory, absorbed by the local SSD tier.
                        ++out.ssd_hits;
                        continue;
                    }
                    bool hidden = false;
                    if (prefetched.contains(requested[i])) {
                        // The prefetcher already issued (and accounted)
                        // this fetch during the previous compute window.
                        // A speculative fetch that failed rethrows from
                        // consume(); fall through to a demand fetch.
                        try {
                            hidden = prefetcher == nullptr ||
                                     prefetcher->consume(requested[i]);
                        } catch (...) {
                            hidden = false;
                        }
                    }
                    if (coop) {
                        // Cooperative-cache miss service: the requester
                        // node is the batch-slice position mapped onto
                        // the active node list (contiguous per-node
                        // micro-slices, like the per-GPU split).
                        const std::uint32_t node = cluster_nodes
                            [i * cluster_nodes.size() / std::max<std::size_t>(
                                                            count, 1)];
                        const cluster::ServiceResult sr =
                            coop->service(node, requested[i], batch_now);
                        out.cluster_ms += storage::to_ms(sr.cost);
                        switch (sr.source) {
                            case cluster::ServeSource::kLocalHit:
                                ++out.cluster_local;
                                break;
                            case cluster::ServeSource::kPeerHit:
                                ++out.peer_hits;
                                break;
                            case cluster::ServeSource::kPeerMiss:
                                ++out.peer_misses;
                                break;
                            case cluster::ServeSource::kRemote:
                                ++out.cluster_remote;
                                break;
                        }
                        if (sr.hedged) ++out.peer_hedges;
                        if (sr.hedge_won) ++out.peer_hedge_wins;
                        if (sr.throttled) ++out.peer_throttled;
                        if (sr.failover) ++out.peer_failovers;
                        ++out.remote_misses;
                        if (sr.source != cluster::ServeSource::kLocalHit) {
                            // The sample's bytes reached this node, so
                            // the write-back SSD tier may absorb a
                            // future re-miss.
                            if (ssd_block) {
                                ssd->insert(requested[i],
                                            ssd_payload(requested[i]));
                            } else {
                                ssd->insert(requested[i]);
                            }
                        }
                        continue;
                    }
                    bool fetched = true;
                    if (hidden) {
                        ++out.prefetch_hidden;
                    } else if (!faulty) {
                        // Fetch for the clock/metrics side effects only.
                        (void)remote_.fetch(requested[i]);
                    } else {
                        const storage::FetchResult r = resilient->fetch(
                            requested[i], batch_now, kDemandContext);
                        if (r.ok) {
                            ++out.fetch_ok;
                            out.fault_extra_ms +=
                                storage::to_ms(r.cost) - per_fetch_ms;
                        } else {
                            ++out.fetch_failed;
                            out.fault_extra_ms += storage::to_ms(r.cost);
                            fetched = false;
                        }
                    }
                    if (!fetched) {
                        // Degradation ladder: a resident surrogate within
                        // the epoch budget, else drop the slot and let the
                        // refill queue retry the id later in the epoch.
                        std::optional<std::uint32_t> surrogate;
                        if (substitutes_used.load(
                                std::memory_order_relaxed) <
                            substitute_budget) {
                            surrogate =
                                parts.frontend->substitute(requested[i]);
                        }
                        if (surrogate &&
                            substitutes_used.fetch_add(
                                1, std::memory_order_relaxed) <
                                substitute_budget) {
                            served[i] = *surrogate;
                            ++out.fault_substitutions;
                        } else {
                            served[i] = kSkippedSentinel;
                            ++out.fault_skips;
                            out.skipped.push_back(requested[i]);
                        }
                        continue;
                    }
                    ++out.remote_misses;
                    if (ssd_block) {
                        ssd->insert(requested[i], ssd_payload(requested[i]));
                    } else {
                        ssd->insert(requested[i]);
                    }
                }
            };

            std::vector<SliceCounts> slices;
            if (!threaded) {
                slices.resize(1);
                load_slice(0, count, slices[0]);
            } else {
                const std::size_t chunk = ceil_div(count, workers);
                const std::size_t n_slices = ceil_div(count, chunk);
                slices.resize(n_slices);
                std::vector<std::future<void>> futures;
                futures.reserve(n_slices);
                for (std::size_t s = 0; s < n_slices; ++s) {
                    const std::size_t lo = s * chunk;
                    const std::size_t hi = std::min(lo + chunk, count);
                    futures.push_back(loader_pool->submit(
                        [&, lo, hi, s] { load_slice(lo, hi, slices[s]); }));
                }
                for (auto& f : futures) f.get();
            }

            std::size_t misses = 0;
            std::size_t ssd_hits = 0;
            std::size_t hits = 0;
            std::size_t hidden = 0;
            std::uint64_t batch_ok = 0;
            std::uint64_t batch_failed = 0;
            double fault_extra_ms = 0.0;
            double cluster_ms = 0.0;
            for (const SliceCounts& s : slices) {
                hits += s.hits;
                ssd_hits += s.ssd_hits;
                misses += s.remote_misses;
                hidden += s.prefetch_hidden;
                batch_ok += s.fetch_ok;
                batch_failed += s.fetch_failed;
                fault_extra_ms += s.fault_extra_ms;
                cluster_ms += s.cluster_ms;
                em.cluster_local_hits += s.cluster_local;
                em.peer_hits += s.peer_hits;
                em.peer_misses += s.peer_misses;
                em.cluster_remote += s.cluster_remote;
                em.peer_hedges += s.peer_hedges;
                em.peer_hedge_wins += s.peer_hedge_wins;
                em.peer_throttled += s.peer_throttled;
                em.peer_failovers += s.peer_failovers;
                em.hits += s.hits;
                em.importance_hits += s.importance_hits;
                em.homophily_hits += s.homophily_hits;
                em.substitutions += s.substitutions;
                em.ssd_hits += s.ssd_hits;
                em.misses += s.ssd_hits + s.remote_misses + s.fetch_failed;
                em.prefetch_hidden += s.prefetch_hidden;
                em.fault_substitutions += s.fault_substitutions;
                em.fault_skips += s.fault_skips;
                for (const SliceCounts::TraceEvent& t : s.trace) {
                    result.access_trace.record(static_cast<std::uint32_t>(epoch),
                                               t.requested, t.served,
                                               t.outcome);
                }
            }
            em.accesses += count;
            if (tuner) {
                // Ghost replay of the merged batch: the requested ids with
                // the scores the live lookups saw (observe_batch has not
                // refreshed them yet). Main thread, post-merge — the
                // replay order is the sampler's, not the workers'.
                const std::span<const double> live_scores =
                    parts.spider->scores();
                for (std::size_t i = 0; i < count; ++i) {
                    const std::uint32_t id = order[start + i];
                    tuner->on_access(
                        id, id < live_scores.size() ? live_scores[id] : 0.0);
                }
            }
            // The epoch's first global batch is its cold start: any remote
            // miss there that the prefetcher did not hide was paid on the
            // demand path — the number epoch-crossing prefetch drives down.
            if (start == 0) {
                em.cold_start_misses +=
                    static_cast<std::uint64_t>(misses - hidden);
            }
            if (faulty) {
                // Refill queue: each failed id is re-queued once, at the
                // epoch's tail (appending is safe — `requested` is not
                // touched past this point, and the epoch loop re-reads
                // order.size()). Then advance the breaker/hedge state
                // machines with the batch totals (main thread, so the
                // outcome is independent of worker interleaving).
                for (const SliceCounts& s : slices) {
                    for (const std::uint32_t id : s.skipped) {
                        if (refilled.insert(id).second) order.push_back(id);
                    }
                }
                resilient->on_batch_end(batch_failed, batch_ok, batch_now);
                std::erase(served, kSkippedSentinel);
            }

            if (coop) coop->on_batch_end(batch_now);

            // Load-stage time: every remote miss pays a fetch round, minus
            // the rounds the prefetcher already absorbed into the previous
            // batch's compute window. In cluster mode the misses carry
            // heterogeneous per-sample service costs (local hit / peer /
            // remote), so the rounds model is replaced by the summed
            // service time spread across the same fetch channels.
            const std::size_t miss_rounds = ceil_div(misses, fetch_slots);
            const std::size_t demand_rounds = ceil_div(misses - hidden,
                                                       fetch_slots);
            const double hidden_ms =
                per_fetch_ms *
                static_cast<double>(miss_rounds - demand_rounds);
            // Fault surplus (spikes, timeouts, backoff, failed envelopes)
            // shares the same fetch slots as the nominal rounds. An
            // aggressively cheap hedge win can undercut the nominal cost;
            // the floor keeps the surplus a penalty, never a credit.
            const double fault_ms =
                faulty ? std::max(0.0, fault_extra_ms) /
                             static_cast<double>(fetch_slots)
                       : 0.0;
            const double miss_service_ms =
                coop ? cluster_ms / static_cast<double>(fetch_slots)
                     : per_fetch_ms * static_cast<double>(miss_rounds);
            const double load_ms =
                miss_service_ms +
                storage::to_ms(ssd->batch_read_cost(ssd_hits, fetch_slots)) +
                config_.hit_cost_ms * static_cast<double>(hits) /
                    static_cast<double>(fetch_slots) +
                fault_ms;
            em.fault_time += storage::from_ms(fault_ms);

            // A batch can end up empty when every slot was skipped by the
            // degradation ladder (total outage, no surrogates); the load
            // cost is still paid but there is nothing to train on.
            double stage2_scale = 1.0;
            if (!served.empty()) {
                // ---- Forward (real) over the served samples, with
                // training-time augmentation (crop/flip stand-in).
                const tensor::Matrix features =
                    dataset_.gather_features_augmented(served, aug_rng);
                const std::vector<std::uint32_t> labels =
                    dataset_.gather_labels(served);
                nn::ForwardResult fwd = model.forward(features, labels);
                loss_sum += fwd.mean_loss;
                ++loss_batches;

                // ---- Backward (real), with selective-backprop mask for
                // compute-bound IS.
                std::vector<std::uint8_t> mask =
                    parts.sampler->train_mask(served, fwd.per_sample_loss);
                if (!mask.empty()) {
                    const auto trained = static_cast<double>(
                        std::count(mask.begin(), mask.end(), std::uint8_t{1}));
                    stage2_scale = trained / static_cast<double>(mask.size());
                }
                model.backward_and_step(labels, mask);

                // ---- Strategy feedback.
                parts.sampler->observe_losses(served, fwd.per_sample_loss);
                parts.frontend->post_batch(served);
                if (parts.spider) {
                    parts.spider->observe_batch(served, fwd.embeddings);
                    if (tuner) {
                        // Mirror the write path into the ghosts: the
                        // batch's score refreshes and its homophily offer.
                        const std::span<const double> fresh =
                            parts.spider->scores();
                        for (const std::uint32_t id : served) {
                            if (id < fresh.size()) {
                                tuner->on_score_update(id, fresh[id]);
                            }
                        }
                        const core::SpiderCache::HomophilyOffer& offer =
                            parts.spider->last_homophily_offer();
                        if (!offer.neighbors.empty()) {
                            tuner->on_homophily_offer(offer.key,
                                                      offer.neighbors);
                        }
                    }
                }
            }

            // ---- Virtual time. Stage fractions: per-GPU micro-batch
            // compute runs in parallel; loads already share fetch slots.
            // Skipped slots train nothing, so they scale no compute.
            const double batch_fraction =
                static_cast<double>(served.size()) /
                static_cast<double>(global_batch);
            const double stage1_ms =
                load_ms + config_.model.forward_ms * batch_fraction;
            const double stage2_ms =
                config_.model.backward_ms * stage2_scale * batch_fraction;
            const double is_ms = config_.model.is_ms * batch_fraction;
            storage::SimDuration step = core::pipelined_batch_time(
                stage1_ms, stage2_ms, is_ms, config_.model.long_is_pipeline,
                graph_is, config_.pipeline_is, hidden_ms);
            if (gpus > 1) {
                step += storage::from_ms(config_.allreduce_ms * 2.0 *
                                         static_cast<double>(gpus - 1) /
                                         static_cast<double>(gpus));
            }
            clock.advance(step);
            vnow.store(clock.now().count(), std::memory_order_relaxed);
            em.load_time += storage::from_ms(load_ms - hidden_ms);
            em.compute_time += storage::from_ms(
                config_.model.forward_ms * batch_fraction + stage2_ms);
            if (graph_is) em.is_time += storage::from_ms(is_ms);
            em.epoch_time += step;

            // ---- Lookahead (DESIGN.md §8.3): the sampler's order for the
            // rest of the epoch is known, so predict upcoming misses and
            // issue them into this step's storage-idle window. The static
            // path looks exactly one batch ahead under a fixed window; the
            // adaptive path sizes the window from the observed idle span,
            // looks as deep as the window allows, and at the epoch's final
            // step spills leftover budget into the next epoch's head.
            if (config_.prefetch_enabled) {
                const std::size_t next_start = start + global_batch;
                // Storage sits idle for everything past the (reduced)
                // load phase: forward, backward, IS, all-reduce.
                const double idle_ms = std::max(
                    0.0, storage::to_ms(step) - (load_ms - hidden_ms));
                std::size_t window = config_.prefetch_window;
                std::vector<std::uint32_t> issue;
                if (!config_.prefetch_adaptive) {
                    // Legacy static path: next batch only, fresh set each
                    // step.
                    prefetched.clear();
                    if (next_start < order.size()) {
                        const std::size_t next_count =
                            std::min(global_batch, order.size() - next_start);
                        const std::size_t idle_fetches =
                            per_fetch_ms <= 0.0
                                ? next_count
                                : core::idle_fetch_budget(
                                      idle_ms, per_fetch_ms, fetch_slots);
                        const std::size_t budget =
                            std::min({idle_fetches, config_.prefetch_window,
                                      next_count});
                        for (std::size_t i = next_start;
                             i < next_start + next_count &&
                             prefetched.size() < budget;
                             ++i) {
                            const std::uint32_t id = order[i];
                            if (prefetched.contains(id)) continue;
                            if (parts.frontend->probe(id)) continue;
                            prefetched.insert(id);
                            issue.push_back(id);
                        }
                        if (prefetcher) {
                            // Unconsumed completions are wasted lookahead;
                            // drop them so they stop occupying the window.
                            prefetcher->discard_ready();
                        }
                    }
                } else {
                    // This batch's lookahead slots are spent — consumed,
                    // resident by demand time, or skipped — so release
                    // them. (Index into `order`: the refill queue may have
                    // reallocated it, invalidating the `requested` span.)
                    for (std::size_t i = start; i < start + count; ++i) {
                        if (prefetched.erase(order[i]) > 0 && prefetcher) {
                            prefetcher->discard(order[i]);
                        }
                    }
                    window =
                        adaptive->update(idle_ms, per_fetch_ms, fetch_slots);
                    if (prefetcher) prefetcher->set_max_in_flight(window);
                    // Budget = what this step's idle span can absorb,
                    // capped by the window, minus lookahead already in
                    // flight from earlier steps.
                    std::size_t budget =
                        std::min(window, core::idle_fetch_budget(
                                             idle_ms, per_fetch_ms,
                                             fetch_slots));
                    budget = budget > prefetched.size()
                                 ? budget - prefetched.size()
                                 : 0;
                    const auto collect =
                        [&](std::span<const std::uint32_t> candidates) {
                            for (const std::uint32_t id : candidates) {
                                if (issue.size() >= budget) break;
                                if (prefetched.contains(id)) continue;
                                if (parts.frontend->probe(id)) continue;
                                prefetched.insert(id);
                                issue.push_back(id);
                            }
                        };
                    if (next_start < order.size()) {
                        collect({order.data() + next_start,
                                 order.size() - next_start});
                    } else if (epoch + 1 < config_.epochs) {
                        // Epoch-crossing: at the final step every score
                        // update of this epoch is already in, so the next
                        // epoch's order can be drawn now — the sampler
                        // caches the peek and replays the identical draw —
                        // and leftover budget warms its head instead of
                        // expiring into cold-start misses.
                        const std::vector<std::uint32_t>& next_order =
                            parts.spider
                                ? parts.spider->peek_next_epoch_order()
                                : parts.sampler->peek_epoch_order(epoch + 1);
                        collect(next_order);
                    }
                }
                if (!issue.empty()) {
                    if (prefetcher) {
                        prefetcher->prefetch(issue);
                    } else if (!faulty) {
                        for (const std::uint32_t id : issue) {
                            (void)remote_.fetch(id);
                        }
                    } else {
                        // Speculative fetches ride the idle window; a
                        // failed one simply drops out of the lookahead
                        // set and the demand path retries the id with
                        // fresh fault draws.
                        for (const std::uint32_t id : issue) {
                            const storage::FetchResult r = resilient->fetch(
                                id, clock.now(), kPrefetchContext);
                            if (!r.ok) prefetched.erase(id);
                        }
                    }
                    em.prefetch_issued += issue.size();
                }
                window_sum += static_cast<double>(window);
                ++window_steps;
            }
        }

        // ---- Epoch bookkeeping (real accuracy on the clean test split).
        em.prefetch_window_avg =
            window_steps == 0
                ? 0.0
                : window_sum / static_cast<double>(window_steps);
        em.train_loss =
            loss_batches == 0 ? 0.0
                              : loss_sum / static_cast<double>(loss_batches);
        em.test_accuracy =
            model.evaluate(dataset_.test_features(), dataset_.test_labels());
        if (parts.spider) {
            em.score_std = parts.spider->score_std();
            em.imp_ratio = parts.spider->end_epoch(em.test_accuracy);
            if (tuner) {
                // Tuner verdict after the elastic repartition: when the
                // hysteresis rule fires, the winner overrides the elastic
                // proposal for this boundary. (With elastic_enabled the
                // manager re-proposes next epoch; disable it to keep
                // tuned ratios sticky — the bench's configuration.)
                const cache::ShadowTuner::Verdict verdict =
                    tuner->end_epoch(em.hit_ratio());
                em.shadow_hits = verdict.shadow_hits;
                em.tuner_switches = verdict.switched ? 1 : 0;
                if (verdict.switched && config_.tuner.auto_apply) {
                    cache::TwoLayerSemanticCache& live =
                        parts.spider->cache();
                    live.set_imp_ratio(verdict.winner->imp_ratio);
                    cache::SectionPolicies next = live.section_policies();
                    next.importance = verdict.winner->importance;
                    live.set_section_policies(next);
                    em.imp_ratio = live.imp_ratio();
                }
            }
        } else {
            // Loss-based strategies still have a score view; record its
            // spread for Fig. 6(c)-style comparisons.
            util::RunningStats stats;
            for (std::uint32_t id = 0; id < n; ++id) {
                stats.add(parts.sampler->importance_of(id));
            }
            em.score_std = stats.stddev();
        }

        // Fault-tolerance counters: per-epoch deltas of the resilient
        // client's monotone totals (timeouts live in the fault model).
        if (resilient) {
            const storage::ResilientStore::Counters now =
                resilient->counters();
            em.fetch_retries = now.retries - fault_prev.retries;
            em.fetch_hedges = now.hedges - fault_prev.hedges;
            em.breaker_trips = now.breaker_trips - fault_prev.breaker_trips;
            fault_prev = now;
            const std::uint64_t timeouts =
                resilient->fault_model().injected_timeouts();
            em.fetch_timeouts = timeouts - timeouts_prev;
            timeouts_prev = timeouts;
        }

        // Fetch-slot contention of this epoch alone (reset at its start).
        em.slot_waits = remote_.slot_waits();
        em.peak_in_flight = remote_.peak_in_flight();
        // The tier's own per-epoch miss counter (reset alongside the
        // contention counters above) — uniform across enabled/disabled
        // and residency/block modes: ssd_hits + ssd_misses == consults.
        em.ssd_misses = ssd->misses();

        // Epoch-end WAL compaction (a stable point): folds the live
        // residency into the snapshot, which also reconciles the
        // elastic-repartition evictions the listeners do not stream.
        if (wal && (epoch + 1) % config_.wal_compact_every_epochs == 0) {
            cache::RestoreImage image;
            if (parts.spider) {
                image = parts.spider->cache().dump_residency();
            }
            image.ssd = ssd->dump_residency();
            wal->compact(image);
        }
        // Block mode: the epoch boundary is the fsync point for segment
        // files — a mid-epoch kill -9 loses only the tail past here.
        ssd->flush();

        result.epochs.push_back(em);
        result.best_accuracy = std::max(result.best_accuracy, em.test_accuracy);
    }

    if (prefetcher) {
        if (!faulty) {
            prefetcher->drain();
        } else {
            // Unclaimed speculative failures are benign at run end — the
            // epochs they belonged to already demand-fetched, substituted,
            // or refilled their samples.
            try {
                prefetcher->drain();
            } catch (...) {
            }
        }
    }
    if (threaded) remote_.set_fetch_slot_cap(0);

    result.total_time = clock.now();
    result.final_accuracy =
        result.epochs.empty() ? 0.0 : result.epochs.back().test_accuracy;
    return result;
}

}  // namespace spider::sim
