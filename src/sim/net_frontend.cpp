#include "sim/net_frontend.hpp"

namespace spider::sim {

NetworkFrontend::NetworkFrontend(const std::string& host, std::uint16_t port,
                                 std::uint8_t tenant)
    : tenant_{tenant} {
    client_.connect(host, port);
}

Access NetworkFrontend::access(std::uint32_t id) {
    const std::lock_guard lock{mu_};
    const double score = (freq_[id] += 1.0);
    const server::GetReply reply = client_.get(tenant_, id, score);
    Access access;
    access.served_id = reply.served_id;
    switch (reply.kind) {
        case server::ServeKind::kImportanceHit:
            access.hit = true;
            access.importance_hit = true;
            break;
        case server::ServeKind::kHomophilyHit:
            access.hit = true;
            access.homophily_hit = true;
            break;
        case server::ServeKind::kMissAdmitted:
        case server::ServeKind::kMissRejected:
        case server::ServeKind::kMissSsd:
        case server::ServeKind::kFetchFailed:
            access.hit = false;
            access.served_id = id;
            break;
    }
    return access;
}

bool NetworkFrontend::probe(std::uint32_t id) const {
    const std::lock_guard lock{mu_};
    return client_.probe(tenant_, id);
}

void NetworkFrontend::post_batch(std::span<const std::uint32_t> ids) {
    const std::lock_guard lock{mu_};
    if (ids.empty()) return;
    for (const std::uint32_t id : ids) {
        client_.queue_put_score(tenant_, id, freq_[id]);
    }
    (void)client_.flush();
}

std::size_t NetworkFrontend::resident_items() const {
    const std::lock_guard lock{mu_};
    const server::TenantStatReply stat = client_.tenant_stat(tenant_);
    return static_cast<std::size_t>(stat.imp_size + stat.hom_size);
}

}  // namespace spider::sim
