#pragma once

// Savitzky-Golay smoothing filter (Savitzky & Golay, 1964).
//
// The paper's Accuracy Monitor (Section 4.3, Eq. 6) smooths the raw
// per-epoch accuracy series with a Savitzky-Golay filter before computing
// the average accuracy growth rate. This implementation derives the
// convolution coefficients from the least-squares polynomial fit, and
// handles series edges by fitting the polynomial over the nearest full
// window and evaluating it at the edge position (the standard treatment).

#include <cstddef>
#include <span>
#include <vector>

namespace spider::util {

class SavitzkyGolayFilter {
public:
    /// @param window  Odd window length, > poly_order.
    /// @param poly_order  Degree of the fitted polynomial (typically 2-3).
    SavitzkyGolayFilter(std::size_t window, std::size_t poly_order);

    [[nodiscard]] std::size_t window() const { return window_; }
    [[nodiscard]] std::size_t poly_order() const { return order_; }

    /// Central-point convolution coefficients (for inspection/tests).
    [[nodiscard]] std::span<const double> center_coefficients() const {
        return coeffs_[(window_ - 1) / 2];
    }

    /// Smooths a full series. Series shorter than the window are returned
    /// unchanged (nothing to fit against).
    [[nodiscard]] std::vector<double> smooth(std::span<const double> series) const;

    /// Smoothed value of the most recent point only, using the trailing
    /// window; this is what an online monitor needs each epoch.
    [[nodiscard]] double smooth_last(std::span<const double> series) const;

private:
    std::size_t window_;
    std::size_t order_;
    // coeffs_[p] are the weights for evaluating the fitted polynomial at
    // in-window position p (p = (window-1)/2 is the centered smoother).
    std::vector<std::vector<double>> coeffs_;
};

}  // namespace spider::util
