#pragma once

// Aligned ASCII table and CSV emitters. Every bench binary prints its
// table/figure in the same layout the paper uses, via this helper.

#include <iosfwd>
#include <string>
#include <vector>

namespace spider::util {

class Table {
public:
    explicit Table(std::string title = {});

    Table& set_header(std::vector<std::string> columns);
    Table& add_row(std::vector<std::string> cells);

    /// Formats a double with the given precision (helper for callers).
    [[nodiscard]] static std::string fmt(double value, int precision = 2);

    /// Renders with box-drawing separators and right-padded columns.
    void print(std::ostream& os) const;

    /// Renders as CSV (header row first) — machine-readable sibling of
    /// print(), for plotting the figures.
    void write_csv(std::ostream& os) const;

private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Emits a named data series as "name,x,y" CSV lines — the format the
/// figure benches use so each paper figure can be re-plotted.
class SeriesWriter {
public:
    explicit SeriesWriter(std::ostream& os);
    void emit(const std::string& series, double x, double y);

private:
    std::ostream& os_;
};

}  // namespace spider::util
