#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace spider::util {

namespace {

std::string trim(const std::string& text) {
    const auto begin = text.find_first_not_of(" \t\r");
    if (begin == std::string::npos) return {};
    const auto end = text.find_last_not_of(" \t\r");
    return text.substr(begin, end - begin + 1);
}

std::string lower(std::string text) {
    std::transform(text.begin(), text.end(), text.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return text;
}

}  // namespace

Config Config::parse(std::istream& is) {
    Config config;
    std::string line;
    std::string section;
    std::size_t line_number = 0;
    while (std::getline(is, line)) {
        ++line_number;
        const std::string stripped = trim(line);
        if (stripped.empty() || stripped.front() == '#' ||
            stripped.front() == ';') {
            continue;
        }
        if (stripped.front() == '[') {
            if (stripped.back() != ']' || stripped.size() < 3) {
                throw std::invalid_argument{
                    "Config: malformed section at line " +
                    std::to_string(line_number)};
            }
            section = trim(stripped.substr(1, stripped.size() - 2));
            continue;
        }
        const auto equals = stripped.find('=');
        if (equals == std::string::npos) {
            throw std::invalid_argument{"Config: expected key=value at line " +
                                        std::to_string(line_number) + ": '" +
                                        stripped + "'"};
        }
        const std::string key = trim(stripped.substr(0, equals));
        std::string value = trim(stripped.substr(equals + 1));
        // Inline comments: a ';' or '#' preceded by whitespace ends the value.
        for (std::size_t i = 1; i < value.size(); ++i) {
            if ((value[i] == ';' || value[i] == '#') &&
                (value[i - 1] == ' ' || value[i - 1] == '\t')) {
                value = trim(value.substr(0, i));
                break;
            }
        }
        if (key.empty()) {
            throw std::invalid_argument{"Config: empty key at line " +
                                        std::to_string(line_number)};
        }
        config.values_[section.empty() ? key : section + "." + key] = value;
    }
    return config;
}

Config Config::parse_string(const std::string& text) {
    std::istringstream iss{text};
    return parse(iss);
}

Config Config::load_file(const std::string& path) {
    std::ifstream file{path};
    if (!file) {
        throw std::invalid_argument{"Config: cannot open " + path};
    }
    return parse(file);
}

bool Config::contains(const std::string& key) const {
    return values_.contains(key);
}

std::optional<std::string> Config::find(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
    return find(key).value_or(fallback);
}

std::string Config::get_string(const std::string& key) const {
    const auto value = find(key);
    if (!value) throw std::out_of_range{"Config: missing key '" + key + "'"};
    return *value;
}

double Config::get_double(const std::string& key, double fallback) const {
    const auto value = find(key);
    if (!value) return fallback;
    try {
        std::size_t consumed = 0;
        const double parsed = std::stod(*value, &consumed);
        if (consumed != value->size()) throw std::invalid_argument{""};
        return parsed;
    } catch (const std::exception&) {
        throw std::invalid_argument{"Config: '" + key + "' is not a number: '" +
                                    *value + "'"};
    }
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
    const auto value = find(key);
    if (!value) return fallback;
    try {
        std::size_t consumed = 0;
        const std::int64_t parsed = std::stoll(*value, &consumed);
        if (consumed != value->size()) throw std::invalid_argument{""};
        return parsed;
    } catch (const std::exception&) {
        throw std::invalid_argument{"Config: '" + key +
                                    "' is not an integer: '" + *value + "'"};
    }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
    const auto value = find(key);
    if (!value) return fallback;
    const std::string normalized = lower(*value);
    if (normalized == "true" || normalized == "1" || normalized == "yes" ||
        normalized == "on") {
        return true;
    }
    if (normalized == "false" || normalized == "0" || normalized == "no" ||
        normalized == "off") {
        return false;
    }
    throw std::invalid_argument{"Config: '" + key + "' is not a boolean: '" +
                                *value + "'"};
}

void Config::set(const std::string& key, const std::string& value) {
    values_[key] = value;
}

}  // namespace spider::util
