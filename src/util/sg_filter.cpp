#include "util/sg_filter.hpp"

#include <cmath>
#include <stdexcept>

namespace spider::util {

namespace {

/// Solves A x = b in place via Gaussian elimination with partial pivoting.
/// A is n x n row-major. Small systems only (n = poly_order + 1 <= ~6).
std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b,
                                 std::size_t n) {
    for (std::size_t col = 0; col < n; ++col) {
        // Pivot.
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row) {
            if (std::abs(a[row * n + col]) > std::abs(a[pivot * n + col])) {
                pivot = row;
            }
        }
        if (std::abs(a[pivot * n + col]) < 1e-12) {
            throw std::runtime_error{"SavitzkyGolay: singular normal equations"};
        }
        if (pivot != col) {
            for (std::size_t k = 0; k < n; ++k) {
                std::swap(a[col * n + k], a[pivot * n + k]);
            }
            std::swap(b[col], b[pivot]);
        }
        // Eliminate below.
        for (std::size_t row = col + 1; row < n; ++row) {
            const double f = a[row * n + col] / a[col * n + col];
            for (std::size_t k = col; k < n; ++k) {
                a[row * n + k] -= f * a[col * n + k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    std::vector<double> x(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        double sum = b[i];
        for (std::size_t k = i + 1; k < n; ++k) {
            sum -= a[i * n + k] * x[k];
        }
        x[i] = sum / a[i * n + i];
    }
    return x;
}

}  // namespace

SavitzkyGolayFilter::SavitzkyGolayFilter(std::size_t window,
                                         std::size_t poly_order)
    : window_{window}, order_{poly_order} {
    if (window % 2 == 0 || window < 3) {
        throw std::invalid_argument{"SavitzkyGolay: window must be odd and >= 3"};
    }
    if (poly_order >= window) {
        throw std::invalid_argument{"SavitzkyGolay: poly_order must be < window"};
    }

    const std::size_t m = order_ + 1;
    const auto half = static_cast<double>((window_ - 1) / 2);

    // Build the normal-equation matrix S = V^T V once, where V is the
    // Vandermonde matrix over in-window offsets t = -half .. +half.
    std::vector<double> vtv(m * m, 0.0);
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < m; ++c) {
            double sum = 0.0;
            for (std::size_t j = 0; j < window_; ++j) {
                const double t = static_cast<double>(j) - half;
                sum += std::pow(t, static_cast<double>(r + c));
            }
            vtv[r * m + c] = sum;
        }
    }

    // For each evaluation position p, the smoothing weight on sample j is
    // sum_k (S^-1 V^T)[k][j] * t_p^k. We get the k-th row effects by
    // solving S x = V^T e_j for every j.
    coeffs_.assign(window_, std::vector<double>(window_, 0.0));
    for (std::size_t j = 0; j < window_; ++j) {
        const double tj = static_cast<double>(j) - half;
        std::vector<double> rhs(m, 0.0);
        for (std::size_t k = 0; k < m; ++k) {
            rhs[k] = std::pow(tj, static_cast<double>(k));
        }
        const std::vector<double> beta_j = solve_linear(vtv, rhs, m);
        // beta_j[k] is d(coef_k)/d(y_j). Fitted value at position p:
        // yhat(t_p) = sum_k coef_k t_p^k, so weight(p, j) = sum_k beta_j[k] t_p^k.
        for (std::size_t p = 0; p < window_; ++p) {
            const double tp = static_cast<double>(p) - half;
            double w = 0.0;
            double power = 1.0;
            for (std::size_t k = 0; k < m; ++k) {
                w += beta_j[k] * power;
                power *= tp;
            }
            coeffs_[p][j] = w;
        }
    }
}

std::vector<double> SavitzkyGolayFilter::smooth(
    std::span<const double> series) const {
    const std::size_t n = series.size();
    if (n < window_) {
        return {series.begin(), series.end()};
    }
    const std::size_t half = (window_ - 1) / 2;
    std::vector<double> out(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        // Clamp the window inside the series; evaluate the fit at the
        // position of i within that window.
        std::size_t start = 0;
        if (i > half) start = i - half;
        if (start + window_ > n) start = n - window_;
        const std::size_t pos = i - start;
        double acc = 0.0;
        for (std::size_t j = 0; j < window_; ++j) {
            acc += coeffs_[pos][j] * series[start + j];
        }
        out[i] = acc;
    }
    return out;
}

double SavitzkyGolayFilter::smooth_last(std::span<const double> series) const {
    const std::size_t n = series.size();
    if (n == 0) return 0.0;
    if (n < window_) return series[n - 1];
    const std::size_t start = n - window_;
    double acc = 0.0;
    for (std::size_t j = 0; j < window_; ++j) {
        acc += coeffs_[window_ - 1][j] * series[start + j];
    }
    return acc;
}

}  // namespace spider::util
