#pragma once

// Deterministic, seedable pseudo-random number generation used throughout
// SpiderCache. Every stochastic component (dataset synthesis, samplers,
// HNSW level assignment, cache replacement) takes an explicit Rng so that
// experiments are reproducible run-to-run.

#include <cstdint>
#include <span>
#include <vector>

namespace spider::util {

/// xoshiro256** PRNG (Blackman & Vigna). Fast, high-quality, and — unlike
/// std::mt19937 — cheap to copy and to seed from a single 64-bit value.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the four-word state via SplitMix64 so that nearby seeds give
    /// uncorrelated streams.
    explicit Rng(std::uint64_t seed = 0x51DE2CAC8EULL);

    /// Raw 64-bit draw.
    std::uint64_t next();

    // UniformRandomBitGenerator interface so Rng works with <algorithm>.
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }
    result_type operator()() { return next(); }

    /// Uniform double in [0, 1).
    double uniform();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [0, n). Requires n > 0.
    std::uint64_t uniform_index(std::uint64_t n);

    /// Standard normal draw (Box-Muller, one value per call).
    double normal();

    /// Normal draw with the given mean and standard deviation.
    double normal(double mean, double stddev);

    /// Splits off an independent child stream; used to give each worker
    /// thread or subsystem its own generator.
    [[nodiscard]] Rng split();

    /// Fisher-Yates shuffle of an index vector.
    void shuffle(std::span<std::uint32_t> values);

    /// Draws one index from an unnormalized weight vector (linear scan).
    /// Requires at least one strictly positive weight.
    std::size_t weighted_choice(std::span<const double> weights);

private:
    std::uint64_t state_[4];
};

/// Multinomial sampling with replacement: draws `count` indices in
/// proportion to `weights` using the alias method (O(n) build, O(1) draw).
/// This mirrors torch.multinomial(weights, count, replacement=True), which
/// the paper uses for importance sampling.
class AliasSampler {
public:
    explicit AliasSampler(std::span<const double> weights);

    [[nodiscard]] std::size_t size() const { return prob_.size(); }
    std::size_t draw(Rng& rng) const;
    std::vector<std::uint32_t> draw_many(Rng& rng, std::size_t count) const;

private:
    std::vector<double> prob_;
    std::vector<std::uint32_t> alias_;
};

}  // namespace spider::util
