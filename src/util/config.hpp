#pragma once

// Minimal INI-style configuration: `key = value` lines, `#`/`;` comments,
// optional `[sections]` flattened into dotted keys ("elastic.r_end").
// Typed getters with defaults and strict parse errors. Used by the
// `run_from_config` example so experiments are scriptable without
// recompiling.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>

namespace spider::util {

class Config {
public:
    Config() = default;

    /// Parses `key = value` text. Throws std::invalid_argument with the
    /// offending line on malformed input.
    [[nodiscard]] static Config parse(std::istream& is);
    [[nodiscard]] static Config parse_string(const std::string& text);
    [[nodiscard]] static Config load_file(const std::string& path);

    [[nodiscard]] bool contains(const std::string& key) const;
    [[nodiscard]] std::size_t size() const { return values_.size(); }

    /// Typed getters. The defaulted forms return `fallback` when the key
    /// is absent; the strict forms throw std::out_of_range. Type
    /// conversion failures always throw std::invalid_argument.
    [[nodiscard]] std::string get_string(const std::string& key,
                                         const std::string& fallback) const;
    [[nodiscard]] std::string get_string(const std::string& key) const;
    [[nodiscard]] double get_double(const std::string& key,
                                    double fallback) const;
    [[nodiscard]] std::int64_t get_int(const std::string& key,
                                       std::int64_t fallback) const;
    [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

    void set(const std::string& key, const std::string& value);

    [[nodiscard]] const std::map<std::string, std::string>& values() const {
        return values_;
    }

private:
    [[nodiscard]] std::optional<std::string> find(const std::string& key) const;
    std::map<std::string, std::string> values_;
};

}  // namespace spider::util
