#pragma once

// Minimal leveled logger. Library code logs through this so benches and
// examples can raise verbosity (SPIDER_LOG=debug) without recompiling;
// default level is warn so normal runs stay quiet. Thread-safe: each call
// formats into one string and emits it in a single write.

#include <mutex>
#include <sstream>
#include <string>

namespace spider::util {

enum class LogLevel : int {
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
    kError = 3,
    kOff = 4,
};

class Logger {
public:
    /// Process-wide logger. Level initialized from the SPIDER_LOG
    /// environment variable (debug|info|warn|error|off), default warn.
    static Logger& instance();

    void set_level(LogLevel level);
    [[nodiscard]] LogLevel level() const;
    [[nodiscard]] bool enabled(LogLevel level) const;

    void write(LogLevel level, const std::string& message);

private:
    Logger();
    mutable std::mutex mutex_;
    LogLevel level_;
};

[[nodiscard]] const char* to_string(LogLevel level);
[[nodiscard]] LogLevel log_level_from_string(const std::string& name);

namespace detail {
inline void append_parts(std::ostringstream&) {}
template <typename Head, typename... Tail>
void append_parts(std::ostringstream& oss, Head&& head, Tail&&... tail) {
    oss << std::forward<Head>(head);
    append_parts(oss, std::forward<Tail>(tail)...);
}
}  // namespace detail

/// Streams all arguments into one log line if the level is enabled.
template <typename... Parts>
void log(LogLevel level, Parts&&... parts) {
    Logger& logger = Logger::instance();
    if (!logger.enabled(level)) return;
    std::ostringstream oss;
    detail::append_parts(oss, std::forward<Parts>(parts)...);
    logger.write(level, oss.str());
}

template <typename... Parts>
void log_debug(Parts&&... parts) {
    log(LogLevel::kDebug, std::forward<Parts>(parts)...);
}
template <typename... Parts>
void log_info(Parts&&... parts) {
    log(LogLevel::kInfo, std::forward<Parts>(parts)...);
}
template <typename... Parts>
void log_warn(Parts&&... parts) {
    log(LogLevel::kWarn, std::forward<Parts>(parts)...);
}
template <typename... Parts>
void log_error(Parts&&... parts) {
    log(LogLevel::kError, std::forward<Parts>(parts)...);
}

}  // namespace spider::util
