#include "util/log.hpp"

#include <cstdlib>
#include <iostream>

namespace spider::util {

const char* to_string(LogLevel level) {
    switch (level) {
        case LogLevel::kDebug: return "debug";
        case LogLevel::kInfo: return "info";
        case LogLevel::kWarn: return "warn";
        case LogLevel::kError: return "error";
        case LogLevel::kOff: return "off";
    }
    return "unknown";
}

LogLevel log_level_from_string(const std::string& name) {
    if (name == "debug") return LogLevel::kDebug;
    if (name == "info") return LogLevel::kInfo;
    if (name == "warn") return LogLevel::kWarn;
    if (name == "error") return LogLevel::kError;
    if (name == "off") return LogLevel::kOff;
    return LogLevel::kWarn;
}

Logger::Logger() : level_{LogLevel::kWarn} {
    if (const char* env = std::getenv("SPIDER_LOG")) {
        level_ = log_level_from_string(env);
    }
}

Logger& Logger::instance() {
    static Logger logger;
    return logger;
}

void Logger::set_level(LogLevel level) {
    const std::lock_guard lock{mutex_};
    level_ = level;
}

LogLevel Logger::level() const {
    const std::lock_guard lock{mutex_};
    return level_;
}

bool Logger::enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(this->level());
}

void Logger::write(LogLevel level, const std::string& message) {
    const std::lock_guard lock{mutex_};
    std::ostream& os = level >= LogLevel::kWarn ? std::cerr : std::clog;
    os << "[spider:" << to_string(level) << "] " << message << '\n';
}

}  // namespace spider::util
