#pragma once

// Consistent-hash ring with virtual nodes (the ownership map of the
// multi-node cooperative cache, DESIGN.md §11). Each node is expanded
// into `vnodes_per_node * weight` points on a 64-bit ring; a key is
// owned by the first point clockwise from its hash. Adding or removing
// one node therefore moves only the keys adjacent to that node's points
// — about 1/(N+1) of the space on join, exactly the departed node's
// share on leave — while every other key keeps its owner.
//
// All hashing is a pure SplitMix64 finalizer, so ownership is a
// deterministic function of the membership set: two rings built from
// the same (node, weight) multiset agree point for point, regardless of
// insertion order.
//
// Not thread-safe: the cooperative cache mutates membership only at
// epoch boundaries (workers quiesced) and shares the ring read-only in
// between.

#include <cstdint>
#include <vector>

namespace spider::util {

class HashRing {
public:
    /// @param vnodes_per_node  Ring points per unit of node weight. More
    ///                         points flatten the ownership spread at the
    ///                         cost of a larger sorted array.
    explicit HashRing(std::size_t vnodes_per_node = 64);

    /// Adds `node` with `weight` (vnode count scales linearly; weight is
    /// clamped so every node gets at least one point). Throws
    /// std::invalid_argument if the node is already present.
    void add_node(std::uint32_t node, double weight = 1.0);

    /// Removes `node` and its points. Throws std::invalid_argument if
    /// the node is not present.
    void remove_node(std::uint32_t node);

    [[nodiscard]] bool contains(std::uint32_t node) const;
    [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
    [[nodiscard]] std::size_t num_points() const { return points_.size(); }
    /// Member nodes in ascending id order.
    [[nodiscard]] std::vector<std::uint32_t> nodes() const;

    /// The node owning `key`: first ring point clockwise from
    /// hash(key), wrapping at the top. Throws std::logic_error on an
    /// empty ring.
    [[nodiscard]] std::uint32_t owner_of(std::uint64_t key) const;

private:
    struct Point {
        std::uint64_t hash;
        std::uint32_t node;
    };
    struct Member {
        std::uint32_t node;
        std::size_t vnodes;
    };

    void insert_points(std::uint32_t node, std::size_t vnodes);

    std::size_t vnodes_per_node_;
    std::vector<Point> points_;    // sorted by (hash, node)
    std::vector<Member> nodes_;    // sorted by node id
};

}  // namespace spider::util
