#include "util/hash_ring.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spider::util {

namespace {

/// SplitMix64 finalizer: a cheap, well-mixed 64->64 bijection. Ring
/// points and key placement use the same mix with different domains.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

[[nodiscard]] std::uint64_t point_hash(std::uint32_t node,
                                       std::uint32_t replica) {
    return mix64((static_cast<std::uint64_t>(node) << 32) | replica);
}

}  // namespace

HashRing::HashRing(std::size_t vnodes_per_node)
    : vnodes_per_node_{std::max<std::size_t>(vnodes_per_node, 1)} {}

void HashRing::insert_points(std::uint32_t node, std::size_t vnodes) {
    points_.reserve(points_.size() + vnodes);
    for (std::size_t r = 0; r < vnodes; ++r) {
        points_.push_back(
            Point{point_hash(node, static_cast<std::uint32_t>(r)), node});
    }
    // (hash, node) ordering: a 64-bit point collision between two nodes
    // would otherwise make ownership depend on insertion order.
    std::sort(points_.begin(), points_.end(),
              [](const Point& a, const Point& b) {
                  return a.hash != b.hash ? a.hash < b.hash : a.node < b.node;
              });
}

void HashRing::add_node(std::uint32_t node, double weight) {
    if (contains(node)) {
        throw std::invalid_argument{"HashRing: node already present"};
    }
    if (!(weight > 0.0) || !std::isfinite(weight)) {
        throw std::invalid_argument{"HashRing: weight must be positive"};
    }
    const auto vnodes = std::max<std::size_t>(
        static_cast<std::size_t>(
            std::llround(static_cast<double>(vnodes_per_node_) * weight)),
        1);
    insert_points(node, vnodes);
    const auto it = std::lower_bound(
        nodes_.begin(), nodes_.end(), node,
        [](const Member& m, std::uint32_t id) { return m.node < id; });
    nodes_.insert(it, Member{node, vnodes});
}

void HashRing::remove_node(std::uint32_t node) {
    const auto it = std::lower_bound(
        nodes_.begin(), nodes_.end(), node,
        [](const Member& m, std::uint32_t id) { return m.node < id; });
    if (it == nodes_.end() || it->node != node) {
        throw std::invalid_argument{"HashRing: node not present"};
    }
    nodes_.erase(it);
    std::erase_if(points_, [node](const Point& p) { return p.node == node; });
}

bool HashRing::contains(std::uint32_t node) const {
    const auto it = std::lower_bound(
        nodes_.begin(), nodes_.end(), node,
        [](const Member& m, std::uint32_t id) { return m.node < id; });
    return it != nodes_.end() && it->node == node;
}

std::vector<std::uint32_t> HashRing::nodes() const {
    std::vector<std::uint32_t> out;
    out.reserve(nodes_.size());
    for (const Member& m : nodes_) out.push_back(m.node);
    return out;
}

std::uint32_t HashRing::owner_of(std::uint64_t key) const {
    if (points_.empty()) {
        throw std::logic_error{"HashRing: owner_of on an empty ring"};
    }
    // Keys and points share mix64 but the key domain is offset so a key
    // never lands exactly on its own id's point by construction.
    const std::uint64_t h = mix64(key ^ 0xD6E8FEB86659FD93ULL);
    const auto it = std::upper_bound(
        points_.begin(), points_.end(), h,
        [](std::uint64_t value, const Point& p) { return value < p.hash; });
    return it == points_.end() ? points_.front().node : it->node;
}

}  // namespace spider::util
