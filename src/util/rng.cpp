#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace spider::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
    for (auto& word : state_) {
        word = splitmix64(seed);
    }
}

std::uint64_t Rng::next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Rng::uniform() {
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
    if (n == 0) throw std::invalid_argument{"uniform_index: n must be > 0"};
    // Lemire-style rejection-free bounded draw is overkill here; modulo bias
    // is negligible for n << 2^64 but we still debias with rejection.
    const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold) return r % n;
    }
}

double Rng::normal() {
    // Box-Muller; uniform() can return 0, so nudge it away from log(0).
    double u1 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
    return mean + stddev * normal();
}

Rng Rng::split() {
    return Rng{next() ^ 0xD1B54A32D192ED03ULL};
}

void Rng::shuffle(std::span<std::uint32_t> values) {
    for (std::size_t i = values.size(); i > 1; --i) {
        const std::size_t j = uniform_index(i);
        std::swap(values[i - 1], values[j]);
    }
}

std::size_t Rng::weighted_choice(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) {
        if (w > 0.0) total += w;
    }
    if (total <= 0.0) {
        throw std::invalid_argument{
            "weighted_choice: needs at least one positive weight"};
    }
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        if (weights[i] <= 0.0) continue;
        r -= weights[i];
        if (r <= 0.0) return i;
    }
    return weights.size() - 1;  // Floating-point slack: return last index.
}

AliasSampler::AliasSampler(std::span<const double> weights) {
    const std::size_t n = weights.size();
    if (n == 0) throw std::invalid_argument{"AliasSampler: empty weights"};

    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0) throw std::invalid_argument{"AliasSampler: negative weight"};
        total += w;
    }
    if (total <= 0.0) {
        throw std::invalid_argument{"AliasSampler: all weights are zero"};
    }

    prob_.assign(n, 0.0);
    alias_.assign(n, 0);

    // Vose's alias method.
    std::vector<double> scaled(n);
    std::vector<std::uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        scaled[i] = weights[i] * static_cast<double>(n) / total;
        (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
        const std::uint32_t s = small.back();
        small.pop_back();
        const std::uint32_t l = large.back();
        large.pop_back();
        prob_[s] = scaled[s];
        alias_[s] = l;
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    for (std::uint32_t i : large) prob_[i] = 1.0;
    for (std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t AliasSampler::draw(Rng& rng) const {
    const std::size_t column = rng.uniform_index(prob_.size());
    return rng.uniform() < prob_[column] ? column : alias_[column];
}

std::vector<std::uint32_t> AliasSampler::draw_many(Rng& rng,
                                                   std::size_t count) const {
    std::vector<std::uint32_t> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        out.push_back(static_cast<std::uint32_t>(draw(rng)));
    }
    return out;
}

}  // namespace spider::util
