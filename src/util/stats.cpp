#include "util/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace spider::util {

void RunningStats::add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void RunningStats::reset() {
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
}

double RunningStats::mean() const {
    return count_ == 0 ? 0.0 : mean_;
}

double RunningStats::variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const {
    return std::sqrt(variance());
}

double mean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double sum = 0.0;
    for (double x : xs) sum += x;
    return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
    RunningStats stats;
    for (double x : xs) stats.add(x);
    return stats.stddev();
}

double linear_slope(std::span<const double> ys) {
    const std::size_t n = ys.size();
    if (n < 2) return 0.0;
    // Closed form for x = 0..n-1: slope = cov(x, y) / var(x).
    const double nd = static_cast<double>(n);
    const double x_mean = (nd - 1.0) / 2.0;
    const double y_mean = mean(ys);
    double cov = 0.0;
    double var_x = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = static_cast<double>(i) - x_mean;
        cov += dx * (ys[i] - y_mean);
        var_x += dx * dx;
    }
    return cov / var_x;
}

SlidingWindow::SlidingWindow(std::size_t capacity) : capacity_{capacity} {
    if (capacity == 0) {
        throw std::invalid_argument{"SlidingWindow: capacity must be > 0"};
    }
    values_.reserve(capacity);
}

void SlidingWindow::push(double x) {
    if (values_.size() == capacity_) {
        values_.erase(values_.begin());
    }
    values_.push_back(x);
}

}  // namespace spider::util
