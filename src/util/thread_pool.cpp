#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>

namespace spider::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
    if (num_threads == 0) {
        throw std::invalid_argument{"ThreadPool: need at least one thread"};
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard lock{mutex_};
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock{mutex_};
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (stopping_ && queue_.empty()) return;
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();
    }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
    const std::size_t grain =
        std::max<std::size_t>(1, count / (workers_.size() * 4));
    parallel_for(count, grain, [&fn](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            fn(i);
        }
    });
}

void ThreadPool::parallel_for(
    std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
    if (count == 0) return;
    if (grain == 0) grain = 1;
    if (grain >= count) {  // one chunk: no dispatch, run on the caller
        fn(0, count);
        return;
    }
    std::vector<std::future<void>> futures;
    futures.reserve((count + grain - 1) / grain);
    for (std::size_t begin = 0; begin < count; begin += grain) {
        const std::size_t end = std::min(begin + grain, count);
        futures.push_back(submit([&fn, begin, end] { fn(begin, end); }));
    }
    // Drain every chunk before rethrowing: chunks capture &fn, so exiting
    // while any are still queued/running would dangle.
    std::exception_ptr first;
    for (auto& f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first) first = std::current_exception();
        }
    }
    if (first) std::rethrow_exception(first);
}

}  // namespace spider::util
