#include "util/thread_pool.hpp"

#include <stdexcept>

namespace spider::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
    if (num_threads == 0) {
        throw std::invalid_argument{"ThreadPool: need at least one thread"};
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard lock{mutex_};
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock{mutex_};
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (stopping_ && queue_.empty()) return;
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();
    }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        futures.push_back(submit([&fn, i] { fn(i); }));
    }
    for (auto& f : futures) {
        f.get();
    }
}

}  // namespace spider::util
