#pragma once

// Lightweight statistics helpers used by the Elastic Cache Manager
// (importance-score standard deviation, slope of a time series) and by the
// metrics layer.

#include <cstddef>
#include <span>
#include <vector>

namespace spider::util {

/// Single-pass mean/variance accumulator (Welford).
class RunningStats {
public:
    void add(double x);
    void reset();

    [[nodiscard]] std::size_t count() const { return count_; }
    [[nodiscard]] double mean() const;
    /// Population variance; 0 when fewer than two observations.
    [[nodiscard]] double variance() const;
    [[nodiscard]] double stddev() const;

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double stddev(std::span<const double> xs);

/// Least-squares slope of y against x = 0, 1, 2, ... Returns 0 for fewer
/// than two points. Used by the Importance Monitor to detect when the
/// score-spread trend turns negative (Eq. 5 in the paper).
[[nodiscard]] double linear_slope(std::span<const double> ys);

/// Fixed-capacity sliding window over a scalar time series. The Elastic
/// Cache Manager watches the recent window of score-stddev values and of
/// smoothed accuracy values. Capacities are small (~10), so eviction by
/// front-erase is fine and keeps storage contiguous for span access.
class SlidingWindow {
public:
    explicit SlidingWindow(std::size_t capacity);

    void push(double x);
    [[nodiscard]] std::size_t size() const { return values_.size(); }
    [[nodiscard]] bool full() const { return values_.size() == capacity_; }
    [[nodiscard]] std::span<const double> values() const { return values_; }
    [[nodiscard]] double slope() const { return linear_slope(values_); }
    [[nodiscard]] double back() const { return values_.back(); }

private:
    std::size_t capacity_;
    std::vector<double> values_;
};

}  // namespace spider::util
