#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace spider::util {

Table::Table(std::string title) : title_{std::move(title)} {}

Table& Table::set_header(std::vector<std::string> columns) {
    header_ = std::move(columns);
    return *this;
}

Table& Table::add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
}

std::string Table::fmt(double value, int precision) {
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

void Table::print(std::ostream& os) const {
    // Column widths = max over header + all rows.
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& cells) {
        if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i) {
            widths[i] = std::max(widths[i], cells[i].size());
        }
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);

    auto print_rule = [&] {
        os << '+';
        for (std::size_t w : widths) {
            os << std::string(w + 2, '-') << '+';
        }
        os << '\n';
    };
    auto print_cells = [&](const std::vector<std::string>& cells) {
        os << '|';
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string& cell = i < cells.size() ? cells[i] : std::string{};
            os << ' ' << cell << std::string(widths[i] - cell.size() + 1, ' ')
               << '|';
        }
        os << '\n';
    };

    if (!title_.empty()) {
        os << "== " << title_ << " ==\n";
    }
    print_rule();
    if (!header_.empty()) {
        print_cells(header_);
        print_rule();
    }
    for (const auto& row : rows_) {
        print_cells(row);
    }
    print_rule();
}

void Table::write_csv(std::ostream& os) const {
    auto write_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i > 0) os << ',';
            os << cells[i];
        }
        os << '\n';
    };
    if (!header_.empty()) write_row(header_);
    for (const auto& row : rows_) write_row(row);
}

SeriesWriter::SeriesWriter(std::ostream& os) : os_{os} {}

void SeriesWriter::emit(const std::string& series, double x, double y) {
    os_ << series << ',' << x << ',' << y << '\n';
}

}  // namespace spider::util
