#pragma once

// Fixed-size work-queue thread pool. Used by the multi-GPU simulator (one
// task per simulated GPU worker) and by the pipelined IS executor's
// background stage. Tasks are type-erased std::move_only_function-style
// callables; results flow back through std::future.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace spider::util {

class ThreadPool {
public:
    explicit ThreadPool(std::size_t num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t size() const { return workers_.size(); }

    /// Enqueues a task; the returned future yields the task's result (or
    /// rethrows its exception).
    template <typename F>
    auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> result = task->get_future();
        {
            const std::lock_guard lock{mutex_};
            if (stopping_) {
                throw std::runtime_error{"ThreadPool: submit after shutdown"};
            }
            queue_.emplace([task]() { (*task)(); });
        }
        cv_.notify_one();
        return result;
    }

    /// Runs fn(i) for i in [0, count) across the pool and waits for all.
    /// Convenience wrapper over the chunked overload with a grain that
    /// yields ~4 chunks per worker.
    void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

    /// Chunked variant: runs fn(begin, end) over disjoint ranges of at most
    /// `grain` elements, amortizing dispatch over whole chunks instead of
    /// paying one future per element. Always waits for every chunk to
    /// finish (even when one throws) before rethrowing the first exception
    /// in chunk order. A single-chunk range runs inline on the caller.
    void parallel_for(std::size_t count, std::size_t grain,
                      const std::function<void(std::size_t, std::size_t)>& fn);

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

}  // namespace spider::util
