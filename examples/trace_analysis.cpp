// Offline trace analysis: record the access streams of uniform sampling
// and SpiderCache's importance sampling, then explain the paper's
// Motivation figures from first principles:
//
//  * Mattson reuse-distance profiles show *why* LRU fails under random
//    sampling (every reuse distance ~ the dataset size — Fig. 3(b)) and
//    why importance sampling makes the same stream cacheable.
//  * Replaying one recorded stream through several policies compares them
//    on identical access patterns.
//
//   ./build/examples/trace_analysis

#include <iostream>

#include "cache/basic_policies.hpp"
#include "data/presets.hpp"
#include "sim/simulator.hpp"
#include "trace/replay.hpp"
#include "trace/reuse_distance.hpp"
#include "util/table.hpp"

int main() {
    using namespace spider;

    auto record_run = [](sim::StrategyKind strategy) {
        sim::SimConfig config;
        config.dataset = data::cifar10_like(0.05);
        config.strategy = strategy;
        config.epochs = 10;
        config.record_trace = true;
        return sim::TrainingSimulator{config}.run();
    };
    const metrics::RunResult uniform_run =
        record_run(sim::StrategyKind::kBaselineLru);
    const metrics::RunResult spider_run = record_run(sim::StrategyKind::kSpider);

    // Extract the raw requested-id streams.
    auto stream_of = [](const metrics::RunResult& run) {
        std::vector<std::uint32_t> stream;
        stream.reserve(run.access_trace.size());
        for (const trace::Record& r : run.access_trace.records()) {
            stream.push_back(r.requested);
        }
        return stream;
    };
    const std::vector<std::uint32_t> uniform_stream = stream_of(uniform_run);
    const std::vector<std::uint32_t> spider_stream = stream_of(spider_run);
    const std::size_t n = data::cifar10_like(0.05).num_samples;

    // ---- Reuse-distance profiles.
    const trace::ReuseProfile uniform_profile =
        trace::compute_reuse_profile(uniform_stream);
    const trace::ReuseProfile spider_profile =
        trace::compute_reuse_profile(spider_stream);

    util::Table profile_table{"Reuse-distance profiles (why LRU fails)"};
    profile_table.set_header({"Stream", "Mean reuse distance",
                              "LRU hit @10% cache", "LRU hit @25%",
                              "LRU hit @50%"});
    auto profile_row = [&](const char* label, const trace::ReuseProfile& p) {
        profile_table.add_row(
            {label, util::Table::fmt(p.mean_reuse_distance(), 0),
             util::Table::fmt(p.lru_hit_ratio(n / 10) * 100.0, 1) + "%",
             util::Table::fmt(p.lru_hit_ratio(n / 4) * 100.0, 1) + "%",
             util::Table::fmt(p.lru_hit_ratio(n / 2) * 100.0, 1) + "%"});
    };
    profile_row("Uniform sampling", uniform_profile);
    profile_row("Graph-based IS", spider_profile);
    profile_table.print(std::cout);
    std::cout << "Uniform sampling's mean reuse distance ~ dataset size ("
              << n << "): no practical LRU cache can hit.\n"
              << "Importance sampling re-draws hot samples quickly, pulling\n"
              << "reuse distances inside small caches.\n\n";

    // ---- Same stream, different policies.
    util::Table replay_table{
        "Replaying the importance-sampled stream through classic policies"};
    replay_table.set_header({"Policy", "Hit ratio", "Warm hit ratio"});
    const std::size_t capacity = n / 5;
    cache::LruCache lru{capacity};
    cache::LfuCache lfu{capacity};
    cache::FifoCache fifo{capacity};
    cache::StaticCache minio{capacity};
    for (cache::EvictionCache* policy :
         std::initializer_list<cache::EvictionCache*>{&lru, &lfu, &fifo,
                                                      &minio}) {
        const trace::ReplayResult result = trace::replay(spider_stream, *policy);
        replay_table.add_row(
            {result.policy,
             util::Table::fmt(result.hit_ratio() * 100.0, 1) + "%",
             util::Table::fmt(result.warm_hit_ratio() * 100.0, 1) + "%"});
    }
    replay_table.print(std::cout);
    std::cout << "\nEven classic policies profit once IS induces locality —\n"
                 "but none reach SpiderCache's two-layer hit ratio of "
              << util::Table::fmt(spider_run.average_hit_ratio() * 100.0, 1)
              << "% on this run (score-driven retention + surrogates).\n";
    return 0;
}
