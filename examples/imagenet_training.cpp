// ImageNet-style training scenario: a large long-tailed dataset stored on
// simulated remote NFS (110 KB samples), trained with ResNet50's cost
// profile. Compares all five end-to-end systems the paper evaluates and
// prints the per-system time breakdown — the workload from the paper's
// introduction (cloud-stored datasets, I/O-bound epochs).
//
//   ./build/examples/imagenet_training [scale]
//
// `scale` shrinks the 1.2M-image dataset (default 0.004 -> 4800 samples so
// the example finishes in about a minute).

#include <cstdlib>
#include <iostream>

#include "data/presets.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace spider;
    const double scale = argc > 1 ? std::atof(argv[1]) : 0.004;

    sim::SimConfig config;
    config.dataset = data::imagenet_like(scale);
    config.model = nn::make_profile(nn::ModelKind::kResNet50);
    config.cache_fraction = 0.20;
    config.epochs = 16;
    config.batch_size = 128;

    std::cout << "Dataset: " << config.dataset.name << "-like, "
              << config.dataset.num_samples << " samples, "
              << config.dataset.num_classes << " classes, "
              << config.dataset.bytes_per_sample / 1024 << " KB/sample\n"
              << "Model:   " << config.model.name << " (cost profile), 20% cache\n\n";

    util::Table table{"End-to-end systems on the ImageNet-style workload"};
    table.set_header({"System", "Hit ratio", "Top-1 (%)", "Load share",
                      "Total time (min)", "Speedup"});
    double baseline_minutes = 0.0;
    for (const sim::StrategyKind strategy :
         {sim::StrategyKind::kBaselineLru, sim::StrategyKind::kCoorDL,
          sim::StrategyKind::kShade, sim::StrategyKind::kICache,
          sim::StrategyKind::kSpider}) {
        config.strategy = strategy;
        sim::TrainingSimulator simulator{config};
        const metrics::RunResult run = simulator.run();
        if (strategy == sim::StrategyKind::kBaselineLru) {
            baseline_minutes = run.total_minutes();
        }
        double load_ms = 0.0;
        double total_ms = 0.0;
        for (const auto& epoch : run.epochs) {
            load_ms += storage::to_ms(epoch.load_time);
            total_ms += storage::to_ms(epoch.epoch_time);
        }
        table.add_row(
            {run.strategy,
             util::Table::fmt(run.average_hit_ratio() * 100.0, 1) + "%",
             util::Table::fmt(run.best_accuracy * 100.0, 1),
             util::Table::fmt(100.0 * load_ms / total_ms, 0) + "%",
             util::Table::fmt(run.total_minutes(), 1),
             util::Table::fmt(baseline_minutes / run.total_minutes(), 2) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nThe baseline spends most of each epoch waiting on remote\n"
                 "storage; SpiderCache converts that wait into cache hits.\n";
    return 0;
}
