// Elastic tuning scenario (paper Section 6.5): the imp-ratio schedule is a
// user-facing knob trading accuracy against training speed. This example
// sweeps several (r_start -> r_end) schedules — including the paper's
// recommended 90% -> 80% — and prints the trade-off table so a user can
// pick a point for their workload.
//
//   ./build/examples/elastic_tuning

#include <iostream>

#include "data/presets.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

int main() {
    using namespace spider;

    struct Schedule {
        const char* label;
        bool elastic;
        double r_start;
        double r_end;
    };
    const Schedule schedules[] = {
        {"static 100% (no homophily budget)", false, 0.99, 0.99},
        {"static 90%", false, 0.90, 0.90},
        {"90% -> 80%  (paper default)", true, 0.90, 0.80},
        {"90% -> 65%", true, 0.90, 0.65},
        {"90% -> 50%  (speed-first)", true, 0.90, 0.50},
    };

    sim::SimConfig base;
    base.dataset = data::cifar10_like(0.06);
    base.strategy = sim::StrategyKind::kSpider;
    base.epochs = 30;
    base.cache_fraction = 0.20;

    util::Table table{"Imp-ratio schedules: accuracy vs speed"};
    table.set_header({"Schedule", "Avg hit", "Late hit", "Top-1 (%)",
                      "Time (min)", "Final imp-ratio"});
    for (const Schedule& schedule : schedules) {
        sim::SimConfig config = base;
        config.elastic_enabled = schedule.elastic;
        config.elastic.r_start = schedule.r_start;
        config.elastic.r_end = schedule.r_end;
        const metrics::RunResult run = sim::TrainingSimulator{config}.run();
        table.add_row(
            {schedule.label,
             util::Table::fmt(run.average_hit_ratio() * 100.0, 1) + "%",
             util::Table::fmt(run.tail_hit_ratio(5) * 100.0, 1) + "%",
             util::Table::fmt(run.best_accuracy * 100.0, 1),
             util::Table::fmt(run.total_minutes(), 1),
             util::Table::fmt(run.epochs.back().imp_ratio * 100.0, 0) + "%"});
    }
    table.print(std::cout);

    std::cout << "\nLower final ratios grow the homophily section: more hits\n"
                 "and shorter training, at a small accuracy cost — pick the\n"
                 "row matching your accuracy/latency budget (Section 6.5).\n";
    return 0;
}
