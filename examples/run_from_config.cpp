// Config-driven runner: the whole simulation surface addressable from an
// INI file — sweep strategies, datasets, storage parameters, or elastic
// schedules without recompiling. Optionally exports per-epoch CSVs.
//
//   ./build/examples/run_from_config configs/example.ini [csv_output_dir]

#include <iostream>

#include "metrics/export.hpp"
#include "sim/config_io.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace spider;
    if (argc < 2) {
        std::cerr << "usage: run_from_config <config.ini> [csv_dir]\n";
        return 2;
    }

    sim::SimConfig config;
    try {
        config = sim::sim_config_from(util::Config::load_file(argv[1]));
    } catch (const std::exception& error) {
        std::cerr << "config error: " << error.what() << "\n";
        return 1;
    }

    std::cout << "dataset=" << config.dataset.name << "-like ("
              << config.dataset.num_samples << " samples), model="
              << config.model.name << ", strategy="
              << to_string(config.strategy) << ", epochs=" << config.epochs
              << ", cache=" << config.cache_fraction * 100 << "%\n\n";

    sim::TrainingSimulator simulator{std::move(config)};
    const metrics::RunResult run = simulator.run();

    util::Table table{"Run summary"};
    table.set_header({"Metric", "Value"});
    table.add_row({"avg hit ratio",
                   util::Table::fmt(run.average_hit_ratio() * 100.0, 1) + "%"});
    table.add_row({"tail hit ratio (last 5 epochs)",
                   util::Table::fmt(run.tail_hit_ratio(5) * 100.0, 1) + "%"});
    table.add_row({"best Top-1 accuracy",
                   util::Table::fmt(run.best_accuracy * 100.0, 1) + "%"});
    table.add_row({"final Top-1 accuracy",
                   util::Table::fmt(run.final_accuracy * 100.0, 1) + "%"});
    table.add_row({"simulated training time",
                   util::Table::fmt(run.total_minutes(), 1) + " min"});
    table.add_row(
        {"final imp-ratio",
         util::Table::fmt(run.epochs.back().imp_ratio * 100.0, 0) + "%"});
    table.print(std::cout);

    if (argc >= 3) {
        const std::vector<metrics::RunResult> runs = {run};
        if (metrics::export_run_csv(runs, argv[2], "run_from_config")) {
            std::cout << "\nCSV exported to " << argv[2] << "\n";
        }
    }
    return 0;
}
