// Custom training loop: using the SpiderCache public API directly, without
// the TrainingSimulator — the integration pattern for adopting the library
// in an existing training stack. Every Algorithm-1 step appears explicitly:
//
//   1. epoch_order()            graph-based importance sampling
//   2. lookup()/on_miss_fetched()  two-layer semantic cache
//   3. observe_batch()          ANN update + Eq. 4 rescoring + homophily
//   4. end_epoch()              elastic imp-ratio control
//
// The IS stage runs on the PipelinedIsExecutor so it overlaps the backward
// pass, exactly as in the paper's Figure 12.
//
//   ./build/examples/custom_loop

#include <iostream>

#include "core/pipeline.hpp"
#include "core/spider_cache.hpp"
#include "data/presets.hpp"
#include "nn/mlp_classifier.hpp"
#include "storage/remote_store.hpp"
#include "util/table.hpp"

int main() {
    using namespace spider;

    // --- Substrate: dataset + remote storage + model.
    const data::SyntheticDataset dataset{data::cifar10_like(0.05)};
    storage::RemoteStore remote{dataset, storage::RemoteStoreConfig{}};

    nn::MlpConfig mlp;
    mlp.input_dim = dataset.feature_dim();
    mlp.hidden_dims = {64, 32};
    mlp.num_classes = dataset.num_classes();
    nn::MlpClassifier model{mlp};

    // --- SpiderCache over 20% of the dataset.
    core::SpiderCacheConfig sc;
    sc.dataset_size = dataset.size();
    sc.label_of = [&dataset](std::uint32_t id) { return dataset.label_of(id); };
    sc.cache_items = dataset.size() / 5;
    sc.embedding_dim = model.embedding_dim();
    sc.total_epochs = 20;
    core::SpiderCache spider{sc};
    core::PipelinedIsExecutor is_stage;

    util::Table table{"Custom loop: per-epoch progress"};
    table.set_header({"Epoch", "Hit ratio", "Imp hits", "Homophily hits",
                      "Test acc (%)", "Imp-ratio"});

    util::Rng aug_rng{123};
    const std::size_t batch = 128;
    for (std::size_t epoch = 0; epoch < sc.total_epochs; ++epoch) {
        const auto order = spider.epoch_order();  // (1) importance sampling
        std::size_t imp_hits = 0;
        std::size_t homo_hits = 0;
        for (std::size_t start = 0; start < order.size(); start += batch) {
            const std::size_t count = std::min(batch, order.size() - start);
            std::vector<std::uint32_t> served(count);
            for (std::size_t i = 0; i < count; ++i) {
                const std::uint32_t id = order[start + i];
                const cache::Lookup lookup = spider.lookup(id);  // (2)
                switch (lookup.kind) {
                    case cache::HitKind::kImportance:
                        ++imp_hits;
                        served[i] = id;
                        break;
                    case cache::HitKind::kHomophily:
                        ++homo_hits;
                        served[i] = lookup.served_id;  // semantic surrogate
                        break;
                    case cache::HitKind::kMiss:
                        remote.fetch(id);
                        spider.on_miss_fetched(id);
                        served[i] = id;
                        break;
                }
            }

            const tensor::Matrix features =
                dataset.gather_features_augmented(served, aug_rng);
            const auto labels = dataset.gather_labels(served);
            const nn::ForwardResult fwd = model.forward(features, labels);
            model.backward_and_step(labels);

            // (3) IS stage overlapped with the next batch's work.
            is_stage.submit([&spider, served = std::move(served),
                             embeddings = fwd.embeddings] {
                spider.observe_batch(served, embeddings);
            });
        }
        is_stage.drain();

        const double accuracy =
            model.evaluate(dataset.test_features(), dataset.test_labels());
        const double ratio = spider.end_epoch(accuracy);  // (4)

        if (epoch % 4 == 0 || epoch + 1 == sc.total_epochs) {
            const double hit_ratio =
                static_cast<double>(imp_hits + homo_hits) /
                static_cast<double>(order.size());
            table.add_row({std::to_string(epoch + 1),
                           util::Table::fmt(hit_ratio * 100.0, 1) + "%",
                           std::to_string(imp_hits),
                           std::to_string(homo_hits),
                           util::Table::fmt(accuracy * 100.0, 1),
                           util::Table::fmt(ratio * 100.0, 0) + "%"});
        }
    }
    table.print(std::cout);
    std::cout << "\nRemote fetches avoided by caching: "
              << dataset.size() * sc.total_epochs - remote.total_fetches()
              << " of " << dataset.size() * sc.total_epochs << " accesses ("
              << util::Table::fmt(
                     100.0 - 100.0 * static_cast<double>(remote.total_fetches()) /
                                 static_cast<double>(dataset.size() *
                                                     sc.total_epochs),
                     1)
              << "% served from cache; IS pipeline stalls: "
              << is_stage.stalls() << ")\n";
    return 0;
}
