// Multi-GPU scaling scenario (paper Section 6.6): synchronous data-parallel
// training with 1-4 simulated GPUs sharing one remote store. Shows how
// SpiderCache's higher hit ratio keeps the loaders off the shared NFS
// bandwidth cap, so compute scaling survives more GPUs.
//
//   ./build/examples/multi_gpu_training

#include <iostream>

#include "data/presets.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

int main() {
    using namespace spider;

    util::Table table{"Per-epoch time scaling, CIFAR-10-style / ResNet18"};
    table.set_header({"GPUs", "Baseline epoch (s)", "Baseline scaling",
                      "SpiderCache epoch (s)", "SpiderCache scaling"});

    double baseline_1 = 0.0;
    double spider_1 = 0.0;
    for (const std::size_t gpus : {1UL, 2UL, 3UL, 4UL}) {
        double epoch_s[2] = {0.0, 0.0};
        int column = 0;
        for (const sim::StrategyKind strategy :
             {sim::StrategyKind::kBaselineLru, sim::StrategyKind::kSpider}) {
            sim::SimConfig config;
            config.dataset = data::cifar10_like(0.06);
            config.strategy = strategy;
            config.num_gpus = gpus;
            config.epochs = 12;
            config.cache_fraction = 0.20;
            const metrics::RunResult run = sim::TrainingSimulator{config}.run();
            epoch_s[column++] =
                storage::to_ms(run.mean_epoch_time()) / 1000.0;
        }
        if (gpus == 1) {
            baseline_1 = epoch_s[0];
            spider_1 = epoch_s[1];
        }
        table.add_row({std::to_string(gpus),
                       util::Table::fmt(epoch_s[0], 2),
                       util::Table::fmt(baseline_1 / epoch_s[0], 2) + "x",
                       util::Table::fmt(epoch_s[1], 2),
                       util::Table::fmt(spider_1 / epoch_s[1], 2) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nScaling is sub-linear for both (all-reduce + shared\n"
                 "storage bandwidth), but SpiderCache holds more of it.\n";
    return 0;
}
