// Quickstart: train a small classifier twice — once with the LRU baseline,
// once with SpiderCache — and compare hit ratio, accuracy, and simulated
// training time. This is the fastest way to see the whole system run.
//
//   ./build/examples/quickstart

#include <iostream>

#include "data/presets.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

int main() {
    using namespace spider;

    sim::SimConfig config;
    config.dataset = data::cifar10_like(/*scale=*/0.04);  // 2000 samples
    config.model = nn::make_profile(nn::ModelKind::kResNet18);
    config.cache_fraction = 0.20;
    config.epochs = 30;
    config.batch_size = 128;

    util::Table table{"Quickstart: Baseline (LRU) vs SpiderCache"};
    table.set_header({"System", "Avg hit ratio", "Top-1 acc (%)",
                      "Sim. training time (min)", "Speedup"});

    double baseline_minutes = 0.0;
    for (const sim::StrategyKind strategy :
         {sim::StrategyKind::kBaselineLru, sim::StrategyKind::kSpider}) {
        config.strategy = strategy;
        sim::TrainingSimulator simulator{config};
        const metrics::RunResult run = simulator.run();
        if (strategy == sim::StrategyKind::kBaselineLru) {
            baseline_minutes = run.total_minutes();
        }
        table.add_row({run.strategy,
                       util::Table::fmt(run.average_hit_ratio() * 100.0, 1) + "%",
                       util::Table::fmt(run.best_accuracy * 100.0, 1),
                       util::Table::fmt(run.total_minutes(), 1),
                       util::Table::fmt(baseline_minutes / run.total_minutes(), 2) +
                           "x"});
    }
    table.print(std::cout);

    std::cout << "\nSpiderCache keeps semantically important samples cached and\n"
                 "serves near-duplicates from the homophily section, so the\n"
                 "same model trains in a fraction of the simulated time.\n";
    return 0;
}
