// Adaptive + epoch-crossing prefetch (DESIGN.md §8.3): the idle-span
// fetch-budget arithmetic (and its truncation regression), the EWMA depth
// controller, the runtime-resizable pipeline window, the sampler peek
// contract behind epoch-crossing, and the simulator-level guarantees —
// determinism across worker counts, parity of the static path, and the
// cold-start reduction the crossing exists for.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "core/prefetch.hpp"
#include "core/samplers.hpp"
#include "data/presets.hpp"
#include "sim/simulator.hpp"
#include "sim/strategy.hpp"
#include "util/rng.hpp"

namespace spider {
namespace {

// ------------------------------------------------------- idle_fetch_budget

TEST(PrefetchBudget, FractionalSlotProgressAccumulates) {
    // Regression: the pre-fix simulator computed
    //     fetch_slots * static_cast<std::size_t>(idle_ms / per_fetch_ms)
    // truncating the per-slot quotient before the multiply. Eight slots
    // each 90% of the way through a fetch round are 7.2 whole fetches of
    // capacity — the old code collapsed that to zero.
    EXPECT_EQ(core::idle_fetch_budget(/*idle_ms=*/0.9, /*per_fetch_ms=*/1.0,
                                      /*fetch_slots=*/8),
              7U);
    // The same shape at a realistic per-fetch cost.
    EXPECT_EQ(core::idle_fetch_budget(4.05, 4.5, 8), 7U);
}

TEST(PrefetchBudget, ExactQuotientsMatchLegacyArithmetic) {
    // When idle_ms is a whole multiple of per_fetch_ms both orderings
    // agree; the fix only adds the fractional capacity.
    EXPECT_EQ(core::idle_fetch_budget(2.0, 1.0, 3), 6U);
    EXPECT_EQ(core::idle_fetch_budget(9.0, 4.5, 6), 12U);
}

TEST(PrefetchBudget, EdgeCases) {
    EXPECT_EQ(core::idle_fetch_budget(0.0, 1.0, 8), 0U);
    EXPECT_EQ(core::idle_fetch_budget(-5.0, 1.0, 8), 0U);
    EXPECT_EQ(core::idle_fetch_budget(1.0, 1.0, 0), 0U);
    // Free fetches: unbounded budget, callers cap by candidate count.
    EXPECT_EQ(core::idle_fetch_budget(1.0, 0.0, 8),
              std::numeric_limits<std::size_t>::max());
}

// ------------------------------------------- AdaptivePrefetchController

TEST(AdaptiveWindow, MonotoneIdleGivesMonotoneWindow) {
    core::AdaptivePrefetchController::Config config;
    config.min_window = 1;
    config.max_window = 4096;
    // Rising idle spans: the EWMA rises, so the window never shrinks.
    core::AdaptivePrefetchController rising{config};
    std::size_t previous = 0;
    for (double idle = 1.0; idle <= 100.0; idle += 1.0) {
        const std::size_t window =
            rising.update(idle, /*per_fetch_ms=*/1.0, /*fetch_slots=*/2);
        EXPECT_GE(window, previous) << "idle " << idle;
        previous = window;
    }
    EXPECT_GT(previous, 100U);  // grew well past the starting window
    // Falling idle spans: the first observation seeds the EWMA, so every
    // later (smaller) observation pulls it down — the window backs off
    // monotonically and bottoms out at the clamp once storage stays busy.
    core::AdaptivePrefetchController falling{config};
    previous = falling.update(100.0, 1.0, 2);
    for (double idle = 99.0; idle >= 0.0; idle -= 1.0) {
        const std::size_t window = falling.update(idle, 1.0, 2);
        EXPECT_LE(window, previous) << "idle " << idle;
        previous = window;
    }
    for (int i = 0; i < 50; ++i) previous = falling.update(0.0, 1.0, 2);
    EXPECT_EQ(previous, config.min_window);
}

TEST(AdaptiveWindow, ClampsToConfiguredBounds) {
    core::AdaptivePrefetchController::Config config;
    config.min_window = 4;
    config.max_window = 32;
    core::AdaptivePrefetchController controller{config};
    EXPECT_EQ(controller.update(0.0, 1.0, 8), 4U);        // floor
    EXPECT_EQ(controller.update(1.0e6, 1.0, 8), 32U);     // ceiling
}

TEST(AdaptiveWindow, FirstObservationSeedsTheEwma) {
    core::AdaptivePrefetchController::Config config;
    config.max_window = 4096;
    config.alpha = 0.25;
    core::AdaptivePrefetchController controller{config};
    // No stale zero is mixed in: the first update adopts the observation
    // wholesale (window = 80, not 0.25 * 80).
    EXPECT_EQ(controller.update(40.0, 1.0, 2), 80U);
    EXPECT_NEAR(controller.ewma_idle_ms(), 40.0, 1e-12);
}

TEST(AdaptiveWindow, RejectsBadAlpha) {
    core::AdaptivePrefetchController::Config config;
    config.alpha = 0.0;
    EXPECT_THROW(core::AdaptivePrefetchController{config},
                 std::invalid_argument);
    config.alpha = 1.5;
    EXPECT_THROW(core::AdaptivePrefetchController{config},
                 std::invalid_argument);
}

// ------------------------------------- PrefetchPipeline runtime resizing

TEST(AdaptiveWindow, RuntimeResizeBoundsNewIssues) {
    core::PrefetchPipeline::Config pc;
    pc.threads = 2;
    pc.max_in_flight = 4;
    core::PrefetchPipeline pipeline{[](std::uint32_t) { return false; },
                                    [](std::uint32_t) {}, pc};
    const std::vector<std::uint32_t> first = {0, 1, 2, 3, 4, 5, 6, 7};
    EXPECT_EQ(pipeline.prefetch(first), 4U);  // window of 4 caps the issue
    pipeline.drain();
    // Growing the window admits more ids past the 4 still-ready entries.
    pipeline.set_max_in_flight(6);
    EXPECT_EQ(pipeline.max_in_flight(), 6U);
    const std::vector<std::uint32_t> second = {10, 11, 12, 13};
    EXPECT_EQ(pipeline.prefetch(second), 2U);
    pipeline.drain();
    // Shrinking never cancels: occupancy (6 ready) exceeds the new bound,
    // so new issues are refused until consumption frees slots.
    pipeline.set_max_in_flight(1);
    const std::vector<std::uint32_t> third = {20};
    EXPECT_EQ(pipeline.prefetch(third), 0U);
    std::size_t consumed = 0;
    for (std::uint32_t id : {0U, 1U, 2U, 3U, 10U, 11U}) {
        consumed += pipeline.consume(id) ? 1 : 0;
    }
    EXPECT_EQ(consumed, 6U);
    EXPECT_EQ(pipeline.prefetch(third), 1U);
    pipeline.drain();
}

TEST(AdaptiveWindow, DiscardSingleEntryFreesItsSlot) {
    core::PrefetchPipeline::Config pc;
    pc.threads = 1;
    pc.max_in_flight = 2;
    core::PrefetchPipeline pipeline{[](std::uint32_t) { return false; },
                                    [](std::uint32_t) {}, pc};
    const std::vector<std::uint32_t> ids = {1, 2};
    EXPECT_EQ(pipeline.prefetch(ids), 2U);
    pipeline.drain();
    EXPECT_TRUE(pipeline.discard(1));
    EXPECT_FALSE(pipeline.discard(1));  // already gone
    EXPECT_FALSE(pipeline.discard(99));
    EXPECT_FALSE(pipeline.pending(1));
    EXPECT_TRUE(pipeline.pending(2));
    const std::vector<std::uint32_t> refill = {3};
    EXPECT_EQ(pipeline.prefetch(refill), 1U);  // the slot came back
    pipeline.drain();
}

// ------------------------------------------------ Sampler peek contract

TEST(SamplerPeek, PeekedDrawIsReplayedByEpochOrder) {
    // Two identically seeded samplers: one peeks ahead, one never does.
    // Every epoch order must match — peeking only moves the draw earlier.
    core::UniformSampler peeked{200, util::Rng{11}};
    core::UniformSampler plain{200, util::Rng{11}};

    const std::vector<std::uint32_t> e0_peeked = peeked.epoch_order(0);
    const std::vector<std::uint32_t> head_copy =
        peeked.peek_epoch_order(1);  // copy before the cache is consumed
    const std::vector<std::uint32_t> e0_plain = plain.epoch_order(0);
    EXPECT_EQ(e0_peeked, e0_plain);
    EXPECT_EQ(peeked.epoch_order(1), head_copy);
    EXPECT_EQ(plain.epoch_order(1), head_copy);
    EXPECT_EQ(peeked.epoch_order(2), plain.epoch_order(2));
}

TEST(SamplerPeek, PeekIsIdempotent) {
    std::vector<double> scores = {0.4, 0.3, 0.2, 0.1, 0.5, 0.6, 0.7, 0.8};
    core::GraphIsSampler sampler{scores, util::Rng{21}, 0.05};
    const std::vector<std::uint32_t> first = sampler.peek_epoch_order(3);
    const std::vector<std::uint32_t> second = sampler.peek_epoch_order(3);
    EXPECT_EQ(first, second);  // one draw, cached
    EXPECT_EQ(sampler.epoch_order(3), first);  // consumed here...
    EXPECT_NE(sampler.epoch_order(3), first);  // ...so this one is fresh
}

TEST(SamplerPeek, GraphIsPeekMatchesPlainSequence) {
    std::vector<double> scores(64, 0.0);
    for (std::size_t i = 0; i < scores.size(); ++i) {
        scores[i] = 1.0 + static_cast<double>(i % 7);
    }
    core::GraphIsSampler peeked{scores, util::Rng{31}, 0.05};
    core::GraphIsSampler plain{scores, util::Rng{31}, 0.05};
    for (std::size_t epoch = 0; epoch < 4; ++epoch) {
        (void)peeked.peek_epoch_order(epoch);
        EXPECT_EQ(peeked.epoch_order(epoch), plain.epoch_order(epoch))
            << "epoch " << epoch;
    }
}

// -------------------------------------------------- simulator-level tests

sim::SimConfig prefetch_config(sim::StrategyKind strategy) {
    sim::SimConfig config;
    config.dataset = data::cifar10_like(/*scale=*/0.02, /*seed=*/7);  // 1000
    config.strategy = strategy;
    config.epochs = 4;
    config.batch_size = 64;
    config.cache_fraction = 0.2;
    config.seed = 5;
    config.prefetch_enabled = true;
    config.prefetch_adaptive = true;
    config.prefetch_window_max = 512;
    return config;
}

TEST(PrefetchAdaptive, PureLatencyHidingNeverChangesCacheOutcomes) {
    // Adaptive + epoch-crossing prefetch must not perturb a single cache
    // decision, sampler draw, or learning outcome — only hide I/O. The
    // epoch-crossing peek is exercised here: if peeking perturbed the
    // next epoch's draw, hits would diverge immediately.
    sim::SimConfig off = prefetch_config(sim::StrategyKind::kSpider);
    off.prefetch_enabled = false;
    off.prefetch_adaptive = false;
    sim::SimConfig on = prefetch_config(sim::StrategyKind::kSpider);
    const auto base = sim::TrainingSimulator{off}.run();
    const auto adaptive = sim::TrainingSimulator{on}.run();

    ASSERT_EQ(base.epochs.size(), adaptive.epochs.size());
    std::uint64_t hidden_total = 0;
    for (std::size_t i = 0; i < base.epochs.size(); ++i) {
        EXPECT_EQ(base.epochs[i].accesses, adaptive.epochs[i].accesses);
        EXPECT_EQ(base.epochs[i].hits, adaptive.epochs[i].hits);
        EXPECT_EQ(base.epochs[i].misses, adaptive.epochs[i].misses);
        hidden_total += adaptive.epochs[i].prefetch_hidden;
        EXPECT_EQ(base.epochs[i].prefetch_hidden, 0U);
    }
    EXPECT_DOUBLE_EQ(base.final_accuracy, adaptive.final_accuracy);
    EXPECT_GT(hidden_total, 0U);
    EXPECT_LE(adaptive.total_time, base.total_time);
}

TEST(PrefetchAdaptive, DeterministicAcrossWorkerCounts) {
    // Zero-capacity LRU makes every outcome interleaving-independent
    // (no cache state), so the threaded run must reproduce the serial
    // run's sequence exactly: same counters, same virtual time, with
    // epoch-crossing prefetch active in both.
    sim::SimConfig serial = prefetch_config(sim::StrategyKind::kBaselineLru);
    serial.cache_fraction = 0.0;
    serial.worker_threads = 1;
    sim::SimConfig threaded = serial;
    threaded.worker_threads = 4;
    const auto a = sim::TrainingSimulator{serial}.run();
    const auto b = sim::TrainingSimulator{threaded}.run();

    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t i = 0; i < a.epochs.size(); ++i) {
        EXPECT_EQ(a.epochs[i].accesses, b.epochs[i].accesses) << "epoch " << i;
        EXPECT_EQ(a.epochs[i].hits, b.epochs[i].hits) << "epoch " << i;
        EXPECT_EQ(a.epochs[i].misses, b.epochs[i].misses) << "epoch " << i;
        EXPECT_EQ(a.epochs[i].prefetch_issued, b.epochs[i].prefetch_issued)
            << "epoch " << i;
        EXPECT_EQ(a.epochs[i].prefetch_hidden, b.epochs[i].prefetch_hidden)
            << "epoch " << i;
        EXPECT_EQ(a.epochs[i].cold_start_misses,
                  b.epochs[i].cold_start_misses)
            << "epoch " << i;
        EXPECT_DOUBLE_EQ(a.epochs[i].prefetch_window_avg,
                         b.epochs[i].prefetch_window_avg)
            << "epoch " << i;
    }
    EXPECT_EQ(a.total_time, b.total_time);
}

TEST(PrefetchAdaptive, CrossingCutsColdStartMisses) {
    // Static lookahead stops at each epoch's tail, so epoch >= 1 always
    // pays its first batch cold; the crossing path warms it from the
    // previous epoch's leftover budget.
    sim::SimConfig stat = prefetch_config(sim::StrategyKind::kSpider);
    stat.prefetch_adaptive = false;
    sim::SimConfig adaptive = prefetch_config(sim::StrategyKind::kSpider);
    const auto s = sim::TrainingSimulator{stat}.run();
    const auto a = sim::TrainingSimulator{adaptive}.run();

    std::uint64_t static_cold = 0;
    std::uint64_t adaptive_cold = 0;
    for (std::size_t i = 1; i < s.epochs.size(); ++i) {
        static_cold += s.epochs[i].cold_start_misses;
        adaptive_cold += a.epochs[i].cold_start_misses;
    }
    EXPECT_LT(adaptive_cold, static_cold);
}

TEST(PrefetchAdaptive, CoverageAtLeastStaticBaseline) {
    sim::SimConfig stat = prefetch_config(sim::StrategyKind::kSpider);
    stat.prefetch_adaptive = false;
    sim::SimConfig adaptive = prefetch_config(sim::StrategyKind::kSpider);
    const auto s = sim::TrainingSimulator{stat}.run();
    const auto a = sim::TrainingSimulator{adaptive}.run();
    EXPECT_GE(a.prefetch_coverage(), s.prefetch_coverage());
    EXPECT_GT(a.prefetch_coverage(), 0.0);
}

TEST(PrefetchAdaptive, StaticPathInertToAdaptiveKnobs) {
    // prefetch_adaptive = false must reproduce the legacy static path
    // regardless of the adaptive-only knob: parity of every counter and
    // of virtual time.
    sim::SimConfig a = prefetch_config(sim::StrategyKind::kSpider);
    a.prefetch_adaptive = false;
    a.prefetch_window_max = 1;
    sim::SimConfig b = a;
    b.prefetch_window_max = 100000;
    const auto ra = sim::TrainingSimulator{a}.run();
    const auto rb = sim::TrainingSimulator{b}.run();
    ASSERT_EQ(ra.epochs.size(), rb.epochs.size());
    for (std::size_t i = 0; i < ra.epochs.size(); ++i) {
        EXPECT_EQ(ra.epochs[i].hits, rb.epochs[i].hits);
        EXPECT_EQ(ra.epochs[i].prefetch_issued, rb.epochs[i].prefetch_issued);
        EXPECT_EQ(ra.epochs[i].prefetch_hidden, rb.epochs[i].prefetch_hidden);
    }
    EXPECT_EQ(ra.total_time, rb.total_time);
    EXPECT_DOUBLE_EQ(ra.final_accuracy, rb.final_accuracy);
}

TEST(PrefetchAdaptive, WindowAverageRecordedPerEpoch) {
    const auto run =
        sim::TrainingSimulator{prefetch_config(sim::StrategyKind::kSpider)}
            .run();
    for (const auto& epoch : run.epochs) {
        EXPECT_GE(epoch.prefetch_window_avg, 1.0) << "epoch " << epoch.epoch;
        EXPECT_LE(epoch.prefetch_window_avg, 512.0) << "epoch " << epoch.epoch;
    }
    // Disabled prefetch reports no window at all.
    sim::SimConfig off = prefetch_config(sim::StrategyKind::kSpider);
    off.prefetch_enabled = false;
    off.prefetch_adaptive = false;
    const auto none = sim::TrainingSimulator{off}.run();
    for (const auto& epoch : none.epochs) {
        EXPECT_DOUBLE_EQ(epoch.prefetch_window_avg, 0.0);
        EXPECT_EQ(epoch.prefetch_issued, 0U);
    }
}

}  // namespace
}  // namespace spider
