// Synthetic dataset tests: determinism, state fractions, geometric
// properties of each difficulty state, duplicates, long-tail imbalance,
// batch gathering, and the preset sanity.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "data/dataset.hpp"
#include "data/presets.hpp"
#include "tensor/ops.hpp"

namespace spider::data {
namespace {

DatasetSpec small_spec() {
    DatasetSpec spec;
    spec.num_samples = 2000;
    spec.num_classes = 5;
    spec.feature_dim = 16;
    spec.class_separation = 1.0;
    spec.boundary_fraction = 0.2;
    spec.isolated_fraction = 0.05;
    spec.mislabeled_fraction = 0.05;
    spec.duplicate_fraction = 0.1;
    spec.test_samples = 300;
    spec.seed = 99;
    return spec;
}

TEST(Dataset, DeterministicForSameSeed) {
    const SyntheticDataset a{small_spec()};
    const SyntheticDataset b{small_spec()};
    ASSERT_EQ(a.size(), b.size());
    for (std::uint32_t i = 0; i < 100; ++i) {
        EXPECT_EQ(a.sample(i).label, b.sample(i).label);
        EXPECT_EQ(a.sample(i).features, b.sample(i).features);
    }
}

TEST(Dataset, DifferentSeedsDiffer) {
    DatasetSpec spec_b = small_spec();
    spec_b.seed = 100;
    const SyntheticDataset a{small_spec()};
    const SyntheticDataset b{spec_b};
    int identical = 0;
    for (std::uint32_t i = 0; i < 100; ++i) {
        identical += a.sample(i).features == b.sample(i).features ? 1 : 0;
    }
    EXPECT_LT(identical, 5);
}

TEST(Dataset, StateFractionsApproximatelyRespected) {
    const SyntheticDataset ds{small_spec()};
    const double n = static_cast<double>(ds.size());
    EXPECT_NEAR(ds.count_state(SampleState::kBoundary) / n, 0.2, 0.04);
    EXPECT_NEAR(ds.count_state(SampleState::kIsolated) / n, 0.05, 0.02);
    EXPECT_NEAR(ds.count_state(SampleState::kMislabeled) / n, 0.05, 0.02);
    // Duplicates may fall back to core early on, so allow a wider band.
    EXPECT_NEAR(ds.count_state(SampleState::kDuplicate) / n, 0.1, 0.04);
}

TEST(Dataset, MislabeledSamplesHaveWrongLabel) {
    const SyntheticDataset ds{small_spec()};
    for (std::uint32_t i = 0; i < ds.size(); ++i) {
        const Sample& s = ds.sample(i);
        if (s.state == SampleState::kMislabeled) {
            EXPECT_NE(s.label, s.true_class);
        } else {
            EXPECT_EQ(s.label, s.true_class);
        }
    }
}

TEST(Dataset, CoreSamplesNearCentroid) {
    const SyntheticDataset ds{small_spec()};
    const double dim = 16.0;
    // E||x - c||^2 = dim * stddev^2 for core samples.
    for (std::uint32_t i = 0; i < ds.size(); ++i) {
        const Sample& s = ds.sample(i);
        if (s.state != SampleState::kCore) continue;
        const float dist =
            tensor::l2_distance(s.features, ds.centroid(s.true_class));
        EXPECT_LT(dist, std::sqrt(dim) * 3.0) << "sample " << i;
    }
}

TEST(Dataset, IsolatedSamplesFartherThanCore) {
    const SyntheticDataset ds{small_spec()};
    double core_mean = 0.0;
    double isolated_mean = 0.0;
    std::size_t cores = 0;
    std::size_t isolates = 0;
    for (std::uint32_t i = 0; i < ds.size(); ++i) {
        const Sample& s = ds.sample(i);
        const float dist =
            tensor::l2_distance(s.features, ds.centroid(s.true_class));
        if (s.state == SampleState::kCore) {
            core_mean += dist;
            ++cores;
        } else if (s.state == SampleState::kIsolated) {
            isolated_mean += dist;
            ++isolates;
        }
    }
    ASSERT_GT(cores, 0U);
    ASSERT_GT(isolates, 0U);
    EXPECT_GT(isolated_mean / isolates, core_mean / cores * 1.3);
}

TEST(Dataset, DuplicatesAreNearTheirDonor) {
    const SyntheticDataset ds{small_spec()};
    std::size_t checked = 0;
    for (std::uint32_t i = 0; i < ds.size(); ++i) {
        const Sample& s = ds.sample(i);
        if (s.state != SampleState::kDuplicate) continue;
        ASSERT_NE(s.duplicate_of, s.id);
        const Sample& donor = ds.sample(s.duplicate_of);
        EXPECT_EQ(s.label, donor.label);
        const float dist = tensor::l2_distance(s.features, donor.features);
        // Jitter 0.05 stddev over 16 dims: distance ~ 0.05*sqrt(16) = 0.2.
        EXPECT_LT(dist, 1.0);
        ++checked;
    }
    EXPECT_GT(checked, 50U);
}

TEST(Dataset, GatherBuildsRowsInOrder) {
    const SyntheticDataset ds{small_spec()};
    const std::vector<std::uint32_t> ids = {5, 3, 5, 100};
    const tensor::Matrix batch = ds.gather_features(ids);
    ASSERT_EQ(batch.rows(), 4U);
    ASSERT_EQ(batch.cols(), ds.feature_dim());
    for (std::size_t r = 0; r < ids.size(); ++r) {
        const Sample& s = ds.sample(ids[r]);
        for (std::size_t d = 0; d < ds.feature_dim(); ++d) {
            EXPECT_FLOAT_EQ(batch.at(r, d), s.features[d]);
        }
    }
    const auto labels = ds.gather_labels(ids);
    EXPECT_EQ(labels[0], ds.sample(5).label);
    EXPECT_EQ(labels[3], ds.sample(100).label);
}

TEST(Dataset, AugmentedGatherPerturbsButStaysClose) {
    const SyntheticDataset ds{small_spec()};
    util::Rng rng{1};
    const std::vector<std::uint32_t> ids = {0, 1, 2};
    const tensor::Matrix clean = ds.gather_features(ids);
    const tensor::Matrix aug = ds.gather_features_augmented(ids, rng);
    double total_shift = 0.0;
    for (std::size_t i = 0; i < clean.size(); ++i) {
        total_shift += std::abs(aug.flat()[i] - clean.flat()[i]);
    }
    EXPECT_GT(total_shift, 0.0);  // actually perturbed
    EXPECT_LT(total_shift / static_cast<double>(clean.size()),
              1.0);  // but gently
}

TEST(Dataset, TestSplitShapesAndLabels) {
    const SyntheticDataset ds{small_spec()};
    EXPECT_EQ(ds.test_features().rows(), 300U);
    EXPECT_EQ(ds.test_features().cols(), 16U);
    EXPECT_EQ(ds.test_labels().size(), 300U);
    for (std::uint32_t label : ds.test_labels()) {
        EXPECT_LT(label, 5U);
    }
}

TEST(Dataset, ImbalanceProducesLongTail) {
    DatasetSpec spec = small_spec();
    spec.imbalance_factor = 10.0;
    spec.num_samples = 5000;
    const SyntheticDataset ds{spec};
    std::map<std::uint32_t, std::size_t> counts;
    for (std::uint32_t i = 0; i < ds.size(); ++i) {
        ++counts[ds.sample(i).true_class];
    }
    ASSERT_EQ(counts.size(), 5U);
    // Head class at least 4x the tail class (10x nominal, sampling noise).
    EXPECT_GT(static_cast<double>(counts[0]),
              4.0 * static_cast<double>(counts[4]));
}

TEST(Dataset, RejectsDegenerateSpecs) {
    DatasetSpec one_class = small_spec();
    one_class.num_classes = 1;
    EXPECT_THROW(SyntheticDataset{one_class}, std::invalid_argument);

    DatasetSpec overfull = small_spec();
    overfull.boundary_fraction = 0.9;
    overfull.duplicate_fraction = 0.2;
    EXPECT_THROW(SyntheticDataset{overfull}, std::invalid_argument);
}

TEST(Dataset, OutOfRangeAccessThrows) {
    const SyntheticDataset ds{small_spec()};
    EXPECT_THROW(ds.sample(static_cast<std::uint32_t>(ds.size())),
                 std::out_of_range);
    EXPECT_THROW(ds.centroid(99), std::out_of_range);
}

TEST(Presets, ShapesMatchPaperDatasets) {
    const DatasetSpec c10 = cifar10_like(0.1);
    EXPECT_EQ(c10.num_classes, 10U);
    EXPECT_EQ(c10.num_samples, 5000U);
    EXPECT_EQ(c10.bytes_per_sample, 3U * 1024U);

    const DatasetSpec c100 = cifar100_like(0.1);
    EXPECT_EQ(c100.num_classes, 100U);
    // Finer task: centroids closer than CIFAR-10's.
    EXPECT_LT(c100.class_separation, c10.class_separation);

    const DatasetSpec imagenet = imagenet_like(0.016);
    EXPECT_GT(imagenet.num_samples, 3 * c10.num_samples);
    EXPECT_GT(imagenet.bytes_per_sample, 30 * c10.bytes_per_sample);
}

TEST(Presets, ScaleFloorsPreventDegenerateSets) {
    const DatasetSpec tiny = cifar10_like(0.0001);
    EXPECT_GE(tiny.num_samples, 500U);
    const SyntheticDataset ds{tiny};  // must construct fine
    EXPECT_EQ(ds.num_classes(), 10U);
}

TEST(SampleState, NamesAreStable) {
    EXPECT_STREQ(to_string(SampleState::kCore), "core");
    EXPECT_STREQ(to_string(SampleState::kBoundary), "boundary");
    EXPECT_STREQ(to_string(SampleState::kIsolated), "isolated");
    EXPECT_STREQ(to_string(SampleState::kMislabeled), "mislabeled");
    EXPECT_STREQ(to_string(SampleState::kDuplicate), "duplicate");
}

}  // namespace
}  // namespace spider::data
