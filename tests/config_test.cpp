// Config parsing and SimConfig translation tests: INI syntax (sections,
// comments, inline comments), typed getters with strict conversion, the
// full schema round trip, and typo rejection.

#include <gtest/gtest.h>

#include "cache/policy.hpp"
#include "sim/config_io.hpp"
#include "server/config_io.hpp"
#include "util/config.hpp"

namespace spider::util {
namespace {

TEST(Config, ParsesKeysSectionsAndComments) {
    const Config config = Config::parse_string(R"(
# full-line comment
top = 1
[section]
key = hello world   ; inline comment
other = 2.5         # another inline
; commented = out
[deep]
flag = true
)");
    EXPECT_EQ(config.size(), 4U);
    EXPECT_EQ(config.get_string("top"), "1");
    EXPECT_EQ(config.get_string("section.key"), "hello world");
    EXPECT_DOUBLE_EQ(config.get_double("section.other", 0.0), 2.5);
    EXPECT_TRUE(config.get_bool("deep.flag", false));
    EXPECT_FALSE(config.contains("commented"));
}

TEST(Config, TypedGettersAndDefaults) {
    const Config config = Config::parse_string("a = 7\nb = yes\nc = -1.5\n");
    EXPECT_EQ(config.get_int("a", 0), 7);
    EXPECT_EQ(config.get_int("missing", 42), 42);
    EXPECT_TRUE(config.get_bool("b", false));
    EXPECT_FALSE(config.get_bool("missing", false));
    EXPECT_DOUBLE_EQ(config.get_double("c", 0.0), -1.5);
    EXPECT_EQ(config.get_string("missing", "dflt"), "dflt");
    EXPECT_THROW(config.get_string("missing"), std::out_of_range);
}

TEST(Config, StrictConversionErrors) {
    const Config config = Config::parse_string("x = 12abc\nflag = maybe\n");
    EXPECT_THROW(config.get_int("x", 0), std::invalid_argument);
    EXPECT_THROW(config.get_double("x", 0.0), std::invalid_argument);
    EXPECT_THROW(config.get_bool("flag", false), std::invalid_argument);
}

TEST(Config, MalformedLinesRejected) {
    EXPECT_THROW(Config::parse_string("just a line\n"), std::invalid_argument);
    EXPECT_THROW(Config::parse_string("[unterminated\n"), std::invalid_argument);
    EXPECT_THROW(Config::parse_string("= value\n"), std::invalid_argument);
}

TEST(Config, MissingFileThrows) {
    EXPECT_THROW(Config::load_file("/no/such/file.ini"), std::invalid_argument);
}

TEST(Config, SetOverrides) {
    Config config = Config::parse_string("a = 1\n");
    config.set("a", "2");
    config.set("b.c", "3");
    EXPECT_EQ(config.get_int("a", 0), 2);
    EXPECT_EQ(config.get_int("b.c", 0), 3);
}

}  // namespace
}  // namespace spider::util

namespace spider::sim {
namespace {

TEST(ConfigIo, StrategyAndModelParsers) {
    EXPECT_EQ(strategy_from_string("spider"), StrategyKind::kSpider);
    EXPECT_EQ(strategy_from_string("SPIDER-IMP"), StrategyKind::kSpiderImp);
    EXPECT_EQ(strategy_from_string("shade"), StrategyKind::kShade);
    EXPECT_EQ(strategy_from_string("baseline"), StrategyKind::kBaselineLru);
    EXPECT_THROW(strategy_from_string("nonsense"), std::invalid_argument);

    EXPECT_EQ(model_from_string("ResNet50"), nn::ModelKind::kResNet50);
    EXPECT_EQ(model_from_string("vgg16"), nn::ModelKind::kVgg16);
    EXPECT_THROW(model_from_string("lenet"), std::invalid_argument);
}

TEST(ConfigIo, FullSchemaTranslation) {
    const util::Config ini = util::Config::parse_string(R"(
[dataset]
preset = cifar100
scale = 0.02
seed = 9
imbalance = 3.0
[model]
name = vgg16
[run]
strategy = shade
epochs = 7
batch_size = 64
cache_fraction = 0.33
num_gpus = 2
record_trace = true
[storage]
latency_ms = 3.25
ssd_enabled = true
ssd_items = 123
[scorer]
lambda = 1.5
neighbor_k = 16
[sampler]
floor = 0.2
[elastic]
r_end = 0.7
[optimizer]
lr = 0.01
)");
    const SimConfig config = sim_config_from(ini);
    EXPECT_EQ(config.dataset.name, "CIFAR-100");
    EXPECT_EQ(config.dataset.num_samples, 1000U);  // 0.02 * 50k
    EXPECT_DOUBLE_EQ(config.dataset.imbalance_factor, 3.0);
    EXPECT_EQ(config.model.name, "Vgg16");
    EXPECT_EQ(config.strategy, StrategyKind::kShade);
    EXPECT_EQ(config.epochs, 7U);
    EXPECT_EQ(config.batch_size, 64U);
    EXPECT_DOUBLE_EQ(config.cache_fraction, 0.33);
    EXPECT_EQ(config.num_gpus, 2U);
    EXPECT_TRUE(config.record_trace);
    EXPECT_NEAR(storage::to_ms(config.remote.latency_per_sample), 3.25, 1e-9);
    EXPECT_TRUE(config.ssd.enabled);
    EXPECT_EQ(config.ssd.capacity_items, 123U);
    EXPECT_DOUBLE_EQ(config.scorer.lambda, 1.5);
    EXPECT_EQ(config.scorer.neighbor_k, 16U);
    EXPECT_DOUBLE_EQ(config.spider_sampler_floor, 0.2);
    EXPECT_DOUBLE_EQ(config.elastic.r_end, 0.7);
    EXPECT_FLOAT_EQ(config.sgd.learning_rate, 0.01F);
}

TEST(ConfigIo, DefaultsWhenEmpty) {
    const SimConfig config = sim_config_from(util::Config{});
    EXPECT_EQ(config.dataset.name, "CIFAR-10");
    EXPECT_EQ(config.strategy, StrategyKind::kSpider);
    EXPECT_EQ(config.epochs, 30U);
    EXPECT_FALSE(config.ssd.enabled);
}

TEST(ConfigIo, UnknownKeysRejected) {
    const util::Config ini =
        util::Config::parse_string("run.stragety = spider\n");  // typo
    EXPECT_THROW(sim_config_from(ini), std::invalid_argument);
}

TEST(ConfigIo, BadPresetRejected) {
    const util::Config ini =
        util::Config::parse_string("dataset.preset = mnist\n");
    EXPECT_THROW(sim_config_from(ini), std::invalid_argument);
}

TEST(ConfigIo, SsdBlockSectionRoundTrips) {
    const util::Config ini = util::Config::parse_string(R"(
[storage]
ssd_enabled = true
ssd_items = 500
[ssd]
path = /tmp/spider_segments
capacity_mb = 256
segment_mb = 8
bloom_bits_per_key = 12
)");
    const SimConfig config = sim_config_from(ini);
    EXPECT_TRUE(config.ssd.enabled);
    EXPECT_EQ(config.ssd.capacity_items, 500U);
    EXPECT_EQ(config.ssd.path, "/tmp/spider_segments");
    EXPECT_EQ(config.ssd.capacity_mb, 256U);
    EXPECT_EQ(config.ssd.segment_mb, 8U);
    EXPECT_EQ(config.ssd.bloom_bits_per_key, 12U);
}

TEST(ConfigIo, SsdBlockDefaultsToResidencyModel) {
    const SimConfig config = sim_config_from(util::Config{});
    EXPECT_TRUE(config.ssd.path.empty());  // no path = no block store
    EXPECT_EQ(config.ssd.capacity_mb, 0U);
    EXPECT_EQ(config.ssd.segment_mb, 4U);
    EXPECT_EQ(config.ssd.bloom_bits_per_key, 10U);
}

TEST(ConfigIo, MalformedSsdBlockConfigRejectedAtParseTime) {
    EXPECT_THROW(
        sim_config_from(util::Config::parse_string("ssd.segment_mb = 0\n")),
        std::invalid_argument);
    EXPECT_THROW(sim_config_from(util::Config::parse_string(
                     "ssd.bloom_bits_per_key = 65\n")),
                 std::invalid_argument);
}

TEST(ConfigIo, ClusterSectionRoundTrips) {
    const util::Config ini = util::Config::parse_string(R"(
[cluster]
nodes = 8
vnodes = 32
node_cache_fraction = 0.25
peer_fetch_enabled = false
peer_cost_ms = 0.8
peer_bytes_per_ms = 2.5e7
hedge_enabled = false
hedge_delay_ms = 1.5
max_attempts = 3
comm_budget_mb = 16.0
peer_transient_prob = 0.05
straggler_node = 5
straggler_spike_prob = 0.4
straggler_spike_mult = 12.0
join_epoch = 4
leave_epoch = 9
)");
    const SimConfig config = sim_config_from(ini);
    EXPECT_EQ(config.cluster.nodes, 8U);
    EXPECT_EQ(config.cluster.vnodes_per_node, 32U);
    EXPECT_DOUBLE_EQ(config.cluster_node_cache_fraction, 0.25);
    EXPECT_FALSE(config.cluster.peer_fetch_enabled);
    EXPECT_DOUBLE_EQ(config.cluster.peer_latency_ms, 0.8);
    EXPECT_DOUBLE_EQ(config.cluster.peer_bytes_per_ms, 2.5e7);
    EXPECT_FALSE(config.cluster.hedge_enabled);
    EXPECT_DOUBLE_EQ(config.cluster.hedge_delay_ms, 1.5);
    EXPECT_EQ(config.cluster.max_attempts, 3U);
    EXPECT_DOUBLE_EQ(config.cluster.comm_budget_mb, 16.0);
    EXPECT_DOUBLE_EQ(config.cluster.peer_transient_prob, 0.05);
    EXPECT_EQ(config.cluster.straggler_node, 5);
    EXPECT_DOUBLE_EQ(config.cluster.straggler_spike_prob, 0.4);
    EXPECT_DOUBLE_EQ(config.cluster.straggler_spike_mult, 12.0);
    EXPECT_EQ(config.cluster_join_epoch, 4U);
    EXPECT_EQ(config.cluster_leave_epoch, 9U);
}

TEST(ConfigIo, ClusterDefaultsKeepSingleNodePath) {
    const SimConfig config = sim_config_from(util::Config{});
    EXPECT_EQ(config.cluster.nodes, 1U);
    EXPECT_TRUE(config.cluster.peer_fetch_enabled);
    EXPECT_EQ(config.cluster.straggler_node, -1);
    EXPECT_EQ(config.cluster_join_epoch, 0U);
}

TEST(ConfigIo, ClusterBoundsRejected) {
    EXPECT_THROW(
        sim_config_from(util::Config::parse_string("cluster.nodes = 65\n")),
        std::invalid_argument);
    // The straggler must name a node in the initial set.
    EXPECT_THROW(sim_config_from(util::Config::parse_string(
                     "[cluster]\nnodes = 4\nstraggler_node = 4\n")),
                 std::invalid_argument);
    // And cluster typos are rejected like every other section's.
    EXPECT_THROW(
        sim_config_from(util::Config::parse_string("cluster.node = 4\n")),
        std::invalid_argument);
}

TEST(ConfigIo, WeatherRestartAndWalSectionsRoundTrip) {
    const util::Config ini = util::Config::parse_string(R"(
[faults]
enabled = true
transient_prob = 0.02
[weather]
enabled = true
slot_ms = 300
p_degrade = 0.05
p_recover = 0.25
p_fail = 0.10
p_restore = 0.40
degraded_mult = 6.0
degraded_slowdown = 3.0
[restart]
epoch = 5
[wal]
dir = /tmp/spider_wal
compact_every_epochs = 2
sync_every_append = true
)");
    const SimConfig sim = sim_config_from(ini);
    EXPECT_TRUE(sim.faults.weather.enabled);
    EXPECT_DOUBLE_EQ(sim.faults.weather.slot_ms, 300.0);
    EXPECT_DOUBLE_EQ(sim.faults.weather.p_degrade, 0.05);
    EXPECT_DOUBLE_EQ(sim.faults.weather.p_recover, 0.25);
    EXPECT_DOUBLE_EQ(sim.faults.weather.p_fail, 0.10);
    EXPECT_DOUBLE_EQ(sim.faults.weather.p_restore, 0.40);
    EXPECT_DOUBLE_EQ(sim.faults.weather.degraded_mult, 6.0);
    EXPECT_DOUBLE_EQ(sim.faults.weather.degraded_slowdown, 3.0);
    EXPECT_EQ(sim.restart_epoch, 5U);
    EXPECT_EQ(sim.wal_dir, "/tmp/spider_wal");
    EXPECT_EQ(sim.wal_compact_every_epochs, 2U);
    EXPECT_TRUE(sim.wal_sync_every_append);
}

TEST(ConfigIo, MalformedFaultAndWeatherConfigsRejectedAtParseTime) {
    // Negative probability.
    EXPECT_THROW(sim_config_from(util::Config::parse_string(
                     "faults.transient_prob = -0.2\n")),
                 std::invalid_argument);
    // Recovery faster than healthy makes no sense.
    EXPECT_THROW(sim_config_from(util::Config::parse_string(
                     "faults.brownout_factor = 0.5\n")),
                 std::invalid_argument);
    // Periodic windows that overlap into a permanent outage.
    EXPECT_THROW(sim_config_from(util::Config::parse_string(
                     "faults.outage_duration_ms = 500\n"
                     "faults.outage_period_ms = 200\n")),
                 std::invalid_argument);
    // Weather chain with a degenerate slot width.
    EXPECT_THROW(sim_config_from(util::Config::parse_string(
                     "weather.enabled = true\nweather.slot_ms = 0\n")),
                 std::invalid_argument);
    // Degraded-state exit probabilities summing past 1.
    EXPECT_THROW(sim_config_from(util::Config::parse_string(
                     "weather.p_recover = 0.7\nweather.p_fail = 0.6\n")),
                 std::invalid_argument);
    // WAL compaction cadence of zero epochs.
    EXPECT_THROW(sim_config_from(util::Config::parse_string(
                     "wal.compact_every_epochs = 0\n")),
                 std::invalid_argument);
}

TEST(ConfigIo, ShippedExampleConfigParses) {
    // The checked-in example must always stay valid.
    const SimConfig config =
        sim_config_from(util::Config::load_file(SPIDER_SOURCE_DIR
                                                "/configs/example.ini"));
    EXPECT_EQ(config.strategy, StrategyKind::kSpider);
    EXPECT_EQ(config.epochs, 24U);
    EXPECT_EQ(config.cluster.nodes, 1U);  // example keeps the cluster off
}

}  // namespace
}  // namespace spider::sim

// ---------------------------------------------------------------- [server]

namespace spider::server {
namespace {

TEST(ServerConfigIo, DefaultsWhenEmpty) {
    const ServerConfig config = server_config_from(util::Config{});
    EXPECT_EQ(config.port, 0);
    EXPECT_EQ(config.max_pipeline, 64U);
    EXPECT_EQ(config.cache_items, 4096U);
    EXPECT_EQ(config.cache_shards, 0U);
    EXPECT_TRUE(config.lockfree_reads);
    ASSERT_EQ(config.tenants.size(), 1U);
    EXPECT_DOUBLE_EQ(config.tenants[0].capacity_pct, 100.0);
    EXPECT_DOUBLE_EQ(config.tenants[0].imp_ratio, 0.9);
    EXPECT_TRUE(config.tenants[0].policies.is_default());
}

TEST(ServerConfigIo, SerializeParseRoundTripsExactly) {
    ServerConfig config;
    config.port = 7071;
    config.max_pipeline = 32;
    config.cache_items = 10000;
    config.cache_shards = 4;
    config.lockfree_reads = false;
    config.tenants = {
        TenantSpec{.capacity_pct = 50.0, .imp_ratio = 0.9},
        TenantSpec{.capacity_pct = 30.0,
                   .imp_ratio = 0.8,
                   .policies = {cache::PolicyKind::kLru,
                                cache::PolicyKind::kLfu}},
        TenantSpec{.capacity_pct = 20.0,
                   .imp_ratio = 0.5,
                   .policies = {cache::PolicyKind::kGdsf,
                                cache::PolicyKind::kCost}}};

    const std::string ini = serialize_server_config(config);
    const ServerConfig parsed =
        server_config_from(util::Config::parse_string(ini));
    EXPECT_EQ(parsed.port, config.port);
    EXPECT_EQ(parsed.max_pipeline, config.max_pipeline);
    EXPECT_EQ(parsed.cache_items, config.cache_items);
    EXPECT_EQ(parsed.cache_shards, config.cache_shards);
    EXPECT_EQ(parsed.lockfree_reads, config.lockfree_reads);
    ASSERT_EQ(parsed.tenants.size(), config.tenants.size());
    for (std::size_t t = 0; t < config.tenants.size(); ++t) {
        EXPECT_DOUBLE_EQ(parsed.tenants[t].capacity_pct,
                         config.tenants[t].capacity_pct);
        EXPECT_DOUBLE_EQ(parsed.tenants[t].imp_ratio,
                         config.tenants[t].imp_ratio);
        EXPECT_EQ(parsed.tenants[t].policies, config.tenants[t].policies);
    }
    // Serializing the parse reproduces the exact same text.
    EXPECT_EQ(serialize_server_config(parsed), ini);
}

TEST(ServerConfigIo, DefaultTenantSplitIsEven) {
    const ServerConfig config = server_config_from(
        util::Config::parse_string("[server]\ntenants = 4\n"));
    ASSERT_EQ(config.tenants.size(), 4U);
    for (const TenantSpec& t : config.tenants) {
        EXPECT_DOUBLE_EQ(t.capacity_pct, 25.0);
        EXPECT_DOUBLE_EQ(t.imp_ratio, 0.9);
        EXPECT_TRUE(t.policies.is_default());
    }
}

TEST(ServerConfigIo, PerTenantPolicyListsParse) {
    const ServerConfig config = server_config_from(util::Config::parse_string(
        "[server]\ntenants = 2\n"
        "imp_policy = semantic, lru\nhom_policy = fifo, gdsf\n"));
    ASSERT_EQ(config.tenants.size(), 2U);
    EXPECT_TRUE(config.tenants[0].policies.is_default());
    EXPECT_EQ(config.tenants[1].policies.importance, cache::PolicyKind::kLru);
    EXPECT_EQ(config.tenants[1].policies.homophily, cache::PolicyKind::kGdsf);
}

TEST(ServerConfigIo, InvalidSectionsRejected) {
    const auto parse = [](const char* text) {
        return server_config_from(util::Config::parse_string(text));
    };
    // List length must equal the tenant count.
    EXPECT_THROW(parse("[server]\ntenants = 2\ncapacity_pct = 100\n"),
                 std::invalid_argument);
    EXPECT_THROW(parse("[server]\ntenants = 2\nimp_ratio = 0.9,0.8,0.7\n"),
                 std::invalid_argument);
    // Percentages must sum within the budget.
    EXPECT_THROW(parse("[server]\ntenants = 2\ncapacity_pct = 60,50\n"),
                 std::invalid_argument);
    // Garbled list entries.
    EXPECT_THROW(parse("[server]\ntenants = 2\ncapacity_pct = 50,abc\n"),
                 std::invalid_argument);
    // Policy lists: length mismatch, unknown name, section-ineligible kind.
    EXPECT_THROW(parse("[server]\ntenants = 2\nimp_policy = lru\n"),
                 std::invalid_argument);
    EXPECT_THROW(parse("[server]\ntenants = 1\nimp_policy = clock\n"),
                 std::invalid_argument);
    EXPECT_THROW(parse("[server]\ntenants = 1\nhom_policy = semantic\n"),
                 std::invalid_argument);
    EXPECT_THROW(parse("[server]\ntenants = 1\nimp_policy = random\n"),
                 std::invalid_argument);
    // Structural bounds.
    EXPECT_THROW(parse("[server]\ntenants = 0\n"), std::invalid_argument);
    EXPECT_THROW(parse("[server]\ntenants = 257\n"), std::invalid_argument);
    EXPECT_THROW(parse("[server]\nmax_pipeline = 0\n"),
                 std::invalid_argument);
}

TEST(ServerConfigIo, ShippedExampleServerSectionParses) {
    // The [server] keys ride in the same INI as the sim schema; both
    // consumers must accept the shipped example.
    const util::Config ini = util::Config::load_file(SPIDER_SOURCE_DIR
                                                     "/configs/example.ini");
    const ServerConfig config = server_config_from(ini);
    EXPECT_EQ(config.port, 7071);
    ASSERT_EQ(config.tenants.size(), 2U);
    EXPECT_DOUBLE_EQ(config.tenants[0].capacity_pct, 60.0);
    EXPECT_DOUBLE_EQ(config.tenants[1].capacity_pct, 40.0);
}

}  // namespace
}  // namespace spider::server
