// HNSW tests: exactness on small sets, recall against brute force on
// clustered data (parameterized over ef), dynamic update correctness (the
// property SpiderCache depends on: embeddings drift every epoch), degree
// queries, and robustness to edge cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "ann/bruteforce.hpp"
#include "ann/hnsw.hpp"
#include "util/rng.hpp"

namespace spider::ann {
namespace {

std::vector<float> random_point(util::Rng& rng, std::size_t dim,
                                double center = 0.0) {
    std::vector<float> p(dim);
    for (float& x : p) x = static_cast<float>(rng.normal(center, 1.0));
    return p;
}

TEST(BruteForce, ExactNearestNeighbors) {
    BruteForceIndex index{2};
    index.upsert(0, std::vector<float>{0.0F, 0.0F});
    index.upsert(1, std::vector<float>{1.0F, 0.0F});
    index.upsert(2, std::vector<float>{5.0F, 0.0F});
    const auto found = index.knn(std::vector<float>{0.1F, 0.0F}, 2);
    ASSERT_EQ(found.size(), 2U);
    EXPECT_EQ(found[0].label, 0U);
    EXPECT_EQ(found[1].label, 1U);
    EXPECT_NEAR(found[0].distance, 0.1F, 1e-5);
}

TEST(BruteForce, UpsertReplacesVector) {
    BruteForceIndex index{1};
    index.upsert(7, std::vector<float>{0.0F});
    index.upsert(7, std::vector<float>{10.0F});
    EXPECT_EQ(index.size(), 1U);
    const auto found = index.knn(std::vector<float>{10.0F}, 1);
    EXPECT_EQ(found[0].label, 7U);
    EXPECT_NEAR(found[0].distance, 0.0F, 1e-5);
}

TEST(Hnsw, EmptyAndSingle) {
    HnswConfig config;
    config.dim = 3;
    HnswIndex index{config};
    EXPECT_EQ(index.size(), 0U);
    EXPECT_TRUE(index.knn(std::vector<float>{0, 0, 0}, 5).empty());

    index.upsert(42, std::vector<float>{1, 2, 3});
    EXPECT_TRUE(index.contains(42));
    const auto found = index.knn(std::vector<float>{1, 2, 3}, 1);
    ASSERT_EQ(found.size(), 1U);
    EXPECT_EQ(found[0].label, 42U);
    EXPECT_NEAR(found[0].distance, 0.0F, 1e-6);
}

TEST(Hnsw, FindsSelfAfterInsert) {
    HnswConfig config;
    config.dim = 8;
    HnswIndex index{config};
    util::Rng rng{7};
    std::vector<std::vector<float>> points;
    for (std::uint32_t i = 0; i < 200; ++i) {
        points.push_back(random_point(rng, 8));
        index.upsert(i, points.back());
    }
    // Every point finds itself as its nearest neighbor.
    for (std::uint32_t i = 0; i < 200; ++i) {
        const auto found = index.knn(points[i], 1);
        ASSERT_FALSE(found.empty());
        EXPECT_EQ(found[0].label, i) << "point " << i;
    }
}

class HnswRecallTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HnswRecallTest, RecallAtLeast90PercentVsBruteForce) {
    const std::size_t ef = GetParam();
    const std::size_t dim = 16;
    const std::size_t n = 600;
    const std::size_t k = 10;

    HnswConfig config;
    config.dim = dim;
    config.M = 12;
    config.ef_construction = 80;
    HnswIndex index{config};
    BruteForceIndex exact{dim};
    util::Rng rng{11};

    // Clustered data (the hard case for graph indexes, and the shape of
    // trained embeddings).
    for (std::uint32_t i = 0; i < n; ++i) {
        const double center = static_cast<double>(i % 5) * 3.0;
        const std::vector<float> p = random_point(rng, dim, center);
        index.upsert(i, p);
        exact.upsert(i, p);
    }

    double recall_sum = 0.0;
    const int queries = 50;
    for (int q = 0; q < queries; ++q) {
        const std::vector<float> query =
            random_point(rng, dim, static_cast<double>(q % 5) * 3.0);
        const auto approx = index.knn(query, k, ef);
        const auto truth = exact.knn(query, k);
        std::set<std::uint32_t> truth_set;
        for (const Neighbor& nb : truth) truth_set.insert(nb.label);
        int found = 0;
        for (const Neighbor& nb : approx) {
            found += truth_set.contains(nb.label) ? 1 : 0;
        }
        recall_sum += static_cast<double>(found) / static_cast<double>(k);
    }
    const double recall = recall_sum / queries;
    EXPECT_GE(recall, 0.90) << "ef=" << ef;
}

INSTANTIATE_TEST_SUITE_P(EfSweep, HnswRecallTest,
                         ::testing::Values(32, 64, 128));

TEST(Hnsw, ResultsSortedByDistance) {
    HnswConfig config;
    config.dim = 4;
    HnswIndex index{config};
    util::Rng rng{13};
    for (std::uint32_t i = 0; i < 300; ++i) {
        index.upsert(i, random_point(rng, 4));
    }
    const auto found = index.knn(random_point(rng, 4), 20);
    for (std::size_t i = 1; i < found.size(); ++i) {
        EXPECT_LE(found[i - 1].distance, found[i].distance);
    }
}

TEST(Hnsw, UpdateMovesPoint) {
    HnswConfig config;
    config.dim = 2;
    HnswIndex index{config};
    util::Rng rng{17};
    // Cluster at origin plus one wanderer.
    for (std::uint32_t i = 0; i < 100; ++i) {
        index.upsert(i, random_point(rng, 2, 0.0));
    }
    index.upsert(999, std::vector<float>{50.0F, 50.0F});

    auto far_query = std::vector<float>{49.0F, 49.0F};
    EXPECT_EQ(index.knn(far_query, 1)[0].label, 999U);

    // Move the wanderer into the cluster; far queries must stop finding it
    // close, near queries must now see it.
    index.upsert(999, std::vector<float>{0.1F, 0.1F});
    EXPECT_EQ(index.size(), 101U);
    const auto near_hits = index.knn(std::vector<float>{0.1F, 0.1F}, 1);
    EXPECT_EQ(near_hits[0].label, 999U);
    const auto far_hits = index.knn(far_query, 1);
    EXPECT_GT(far_hits[0].distance, 50.0F);
}

TEST(Hnsw, MassUpdateKeepsRecall) {
    // The SpiderCache workload: every point drifts every "epoch".
    const std::size_t dim = 8;
    const std::size_t n = 300;
    HnswConfig config;
    config.dim = dim;
    HnswIndex index{config};
    BruteForceIndex exact{dim};
    util::Rng rng{19};

    std::vector<std::vector<float>> points;
    for (std::uint32_t i = 0; i < n; ++i) {
        points.push_back(random_point(rng, dim));
        index.upsert(i, points[i]);
        exact.upsert(i, points[i]);
    }
    // Three rounds of full drift.
    for (int round = 0; round < 3; ++round) {
        for (std::uint32_t i = 0; i < n; ++i) {
            for (float& x : points[i]) {
                x += static_cast<float>(rng.normal(0.0, 0.2));
            }
            index.upsert(i, points[i]);
            exact.upsert(i, points[i]);
        }
    }
    EXPECT_EQ(index.size(), n);

    double recall_sum = 0.0;
    const std::size_t k = 5;
    for (int q = 0; q < 40; ++q) {
        const auto query = random_point(rng, dim);
        const auto approx = index.knn(query, k, 64);
        const auto truth = exact.knn(query, k);
        std::set<std::uint32_t> truth_set;
        for (const Neighbor& nb : truth) truth_set.insert(nb.label);
        int found = 0;
        for (const Neighbor& nb : approx) {
            found += truth_set.contains(nb.label) ? 1 : 0;
        }
        recall_sum += static_cast<double>(found) / static_cast<double>(k);
    }
    EXPECT_GE(recall_sum / 40.0, 0.85);
}

TEST(Hnsw, DegreeIsBoundedByLinkBudget) {
    HnswConfig config;
    config.dim = 4;
    config.M = 6;
    HnswIndex index{config};
    util::Rng rng{23};
    for (std::uint32_t i = 0; i < 400; ++i) {
        index.upsert(i, random_point(rng, 4));
    }
    for (std::uint32_t i = 0; i < 400; ++i) {
        EXPECT_LE(index.degree(i), config.M * 2);
    }
    EXPECT_EQ(index.degree(12345), 0U);  // absent label
}

TEST(Hnsw, VectorOfReturnsStoredData) {
    HnswConfig config;
    config.dim = 3;
    HnswIndex index{config};
    const std::vector<float> v = {1.5F, -2.5F, 3.5F};
    index.upsert(5, v);
    const auto stored = index.vector_of(5);
    ASSERT_TRUE(stored.has_value());
    EXPECT_EQ(std::vector<float>(stored->begin(), stored->end()), v);
    EXPECT_FALSE(index.vector_of(6).has_value());
}

TEST(Hnsw, MemoryGrowsWithInserts) {
    HnswConfig config;
    config.dim = 16;
    HnswIndex index{config};
    util::Rng rng{29};
    const std::size_t before = index.memory_bytes();
    for (std::uint32_t i = 0; i < 100; ++i) {
        index.upsert(i, random_point(rng, 16));
    }
    EXPECT_GT(index.memory_bytes(), before + 100 * 16 * sizeof(float));
}

TEST(Hnsw, RejectsBadConfigAndInput) {
    HnswConfig bad_dim;
    bad_dim.dim = 0;
    EXPECT_THROW(HnswIndex{bad_dim}, std::invalid_argument);

    HnswConfig bad_m;
    bad_m.M = 1;
    EXPECT_THROW(HnswIndex{bad_m}, std::invalid_argument);

    HnswConfig ok;
    ok.dim = 4;
    HnswIndex index{ok};
    EXPECT_THROW(index.upsert(0, std::vector<float>{1.0F}),
                 std::invalid_argument);
    EXPECT_THROW(index.knn(std::vector<float>{1.0F}, 1),
                 std::invalid_argument);
}

TEST(Hnsw, DistanceCounterAdvances) {
    HnswConfig config;
    config.dim = 4;
    HnswIndex index{config};
    util::Rng rng{31};
    for (std::uint32_t i = 0; i < 50; ++i) {
        index.upsert(i, random_point(rng, 4));
    }
    const std::uint64_t before = index.distance_computations();
    index.knn(random_point(rng, 4), 5);
    EXPECT_GT(index.distance_computations(), before);
}

TEST(Hnsw, UpdatingEntryPointSurvives) {
    // Repeatedly update label 0 (often the entry point) to stress the
    // entry-point reassignment path.
    HnswConfig config;
    config.dim = 2;
    HnswIndex index{config};
    util::Rng rng{37};
    for (std::uint32_t i = 0; i < 50; ++i) {
        index.upsert(i, random_point(rng, 2));
    }
    for (int round = 0; round < 10; ++round) {
        index.upsert(0, random_point(rng, 2));
        const auto found = index.knn(random_point(rng, 2), 3);
        EXPECT_EQ(found.size(), 3U);
    }
}

TEST(Hnsw, DuplicatePointsAllRetrievable) {
    HnswConfig config;
    config.dim = 2;
    HnswIndex index{config};
    const std::vector<float> same = {1.0F, 1.0F};
    for (std::uint32_t i = 0; i < 10; ++i) {
        index.upsert(i, same);
    }
    const auto found = index.knn(same, 10, 64);
    EXPECT_EQ(found.size(), 10U);
    for (const Neighbor& nb : found) {
        EXPECT_NEAR(nb.distance, 0.0F, 1e-6);
    }
}

// The scoring phase fans knn across a thread pool (hnsw.hpp phase
// contract); 8 threads x 1000 queries against a fixed graph must return
// exactly the serial answers, and the shared distance counter must not
// lose increments. Run under -DSPIDER_TSAN=ON to check for data races.
TEST(Hnsw, ConcurrentKnnMatchesSerial) {
    constexpr std::size_t kDim = 16;
    constexpr std::size_t kPopulation = 2000;
    constexpr std::size_t kQueries = 1000;
    constexpr std::size_t kThreads = 8;

    HnswConfig config;
    config.dim = kDim;
    HnswIndex index{config};
    util::Rng rng{71};
    for (std::uint32_t i = 0; i < kPopulation; ++i) {
        index.upsert(i, random_point(rng, kDim, static_cast<double>(i % 8)));
    }

    std::vector<std::vector<float>> queries;
    queries.reserve(kQueries);
    for (std::size_t q = 0; q < kQueries; ++q) {
        queries.push_back(random_point(rng, kDim, static_cast<double>(q % 8)));
    }

    // One serial pass measures both the expected answers and the exact
    // distance-computation count of a pass (the counter also includes
    // construction, so deltas are what's comparable).
    std::vector<std::vector<Neighbor>> serial(kQueries);
    const std::uint64_t comps_start = index.distance_computations();
    for (std::size_t q = 0; q < kQueries; ++q) {
        serial[q] = index.knn(queries[q], 10);
    }
    const std::uint64_t delta_serial =
        index.distance_computations() - comps_start;

    std::vector<std::vector<Neighbor>> parallel(kQueries);
    const std::uint64_t comps_before = index.distance_computations();
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::size_t q = t; q < kQueries; q += kThreads) {
                parallel[q] = index.knn(queries[q], 10);
            }
        });
    }
    for (auto& th : threads) th.join();
    const std::uint64_t delta_parallel =
        index.distance_computations() - comps_before;

    for (std::size_t q = 0; q < kQueries; ++q) {
        ASSERT_EQ(parallel[q].size(), serial[q].size()) << "query " << q;
        for (std::size_t r = 0; r < serial[q].size(); ++r) {
            EXPECT_EQ(parallel[q][r].label, serial[q][r].label)
                << "query " << q << " rank " << r;
            EXPECT_EQ(parallel[q][r].distance, serial[q][r].distance)
                << "query " << q << " rank " << r;
        }
    }
    // Search is deterministic per query, so the relaxed-atomic counter must
    // see exactly one pass worth of increments.
    EXPECT_EQ(delta_parallel, delta_serial);
}

}  // namespace
}  // namespace spider::ann
