// Elastic Cache Manager tests: Eq. 5 activation latching on the
// score-stddev slope, Eq. 6/7 penalty from smoothed accuracy growth, and
// the Eq. 8 schedule including its endpoints and the u -> {0,1} limit
// behaviour of Figure 11.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cache/semantic_cache.hpp"
#include "core/elastic.hpp"
#include "util/rng.hpp"

namespace spider::core {
namespace {

ElasticConfig fast_config() {
    ElasticConfig config;
    config.r_start = 0.9;
    config.r_end = 0.8;
    config.slope_window = 3;
    config.delta_window = 3;
    config.sg_window = 5;
    config.sg_poly_order = 2;
    config.gamma = 0.01;
    return config;
}

TEST(Elastic, RatioStaysAtStartBeforeActivation) {
    ElasticCacheManager manager{fast_config()};
    // Rising stddev: spread still growing, beta = 0 (Eq. 5).
    double ratio = 0.0;
    for (std::size_t epoch = 0; epoch < 10; ++epoch) {
        ratio = manager.on_epoch(0.1 + 0.01 * static_cast<double>(epoch), 0.5,
                                 epoch, 100);
        EXPECT_FALSE(manager.activated());
    }
    EXPECT_DOUBLE_EQ(ratio, 0.9);
}

TEST(Elastic, ActivatesWhenStdSlopeTurnsNegative) {
    ElasticCacheManager manager{fast_config()};
    manager.on_epoch(0.10, 0.5, 0, 100);
    manager.on_epoch(0.12, 0.5, 1, 100);
    manager.on_epoch(0.14, 0.5, 2, 100);
    EXPECT_FALSE(manager.activated());
    manager.on_epoch(0.12, 0.5, 3, 100);
    manager.on_epoch(0.10, 0.5, 4, 100);
    manager.on_epoch(0.08, 0.5, 5, 100);
    EXPECT_TRUE(manager.activated());
}

TEST(Elastic, ActivationLatches) {
    ElasticCacheManager manager{fast_config()};
    for (double std_val : {0.3, 0.2, 0.1}) {
        manager.on_epoch(std_val, 0.5, 0, 100);
    }
    ASSERT_TRUE(manager.activated());
    // Spread rising again must not deactivate.
    for (double std_val : {0.2, 0.3, 0.4}) {
        manager.on_epoch(std_val, 0.5, 1, 100);
    }
    EXPECT_TRUE(manager.activated());
}

TEST(Elastic, ReachesREndAtFinalEpoch) {
    ElasticCacheManager manager{fast_config()};
    const std::size_t total = 50;
    double ratio = 0.9;
    for (std::size_t epoch = 0; epoch < total; ++epoch) {
        // Monotonically decreasing spread activates immediately; flat
        // accuracy keeps the penalty at zero (fastest schedule).
        ratio = manager.on_epoch(1.0 / (1.0 + static_cast<double>(epoch)), 0.5,
                                 epoch, total);
    }
    EXPECT_NEAR(ratio, 0.8, 1e-9);
}

TEST(Elastic, PenaltyNearOneWhileAccuracyClimbs) {
    ElasticConfig config = fast_config();
    config.gamma = 0.001;
    ElasticCacheManager manager{config};
    double accuracy = 0.1;
    for (std::size_t epoch = 0; epoch < 12; ++epoch) {
        accuracy += 0.05;  // fast growth
        manager.on_epoch(0.5 - 0.01 * static_cast<double>(epoch), accuracy,
                         epoch, 100);
    }
    EXPECT_GT(manager.penalty(), 0.9);
}

TEST(Elastic, PenaltyNearZeroWhenAccuracyPlateaus) {
    ElasticCacheManager manager{fast_config()};
    for (std::size_t epoch = 0; epoch < 15; ++epoch) {
        manager.on_epoch(0.5 - 0.01 * static_cast<double>(epoch), 0.75, epoch,
                         100);
    }
    EXPECT_LT(manager.penalty(), 0.05);
}

TEST(Elastic, NegativeGrowthClampedToZeroPenalty) {
    ElasticCacheManager manager{fast_config()};
    double accuracy = 0.9;
    for (std::size_t epoch = 0; epoch < 12; ++epoch) {
        accuracy -= 0.02;  // degrading accuracy
        manager.on_epoch(0.5, accuracy, epoch, 100);
    }
    EXPECT_DOUBLE_EQ(manager.penalty(), 0.0);
}

TEST(Elastic, HighPenaltySlowsEarlySchedule) {
    // Figure 11: with u -> 1 the curve is below the u -> 0 curve at the
    // same mid-schedule epoch (slower early movement).
    auto run = [](double accuracy_step) {
        ElasticConfig config = fast_config();
        config.gamma = 0.005;
        ElasticCacheManager manager{config};
        double accuracy = 0.1;
        double ratio = 0.9;
        for (std::size_t epoch = 0; epoch < 50; ++epoch) {
            accuracy += accuracy_step;
            ratio = manager.on_epoch(1.0 / (1.0 + static_cast<double>(epoch)),
                                     accuracy, epoch, 100);
        }
        return ratio;
    };
    const double fast_growth_ratio = run(0.05);   // u ~ 1: slow shift
    const double plateau_ratio = run(0.0);        // u ~ 0: fast shift
    EXPECT_GT(fast_growth_ratio, plateau_ratio);
}

TEST(Elastic, SmoothedAccuracyTracksNoisyInput) {
    ElasticCacheManager manager{fast_config()};
    util::Rng rng{5};
    for (std::size_t epoch = 0; epoch < 30; ++epoch) {
        const double truth = 0.5 + 0.01 * static_cast<double>(epoch);
        manager.on_epoch(0.5, truth + rng.normal(0.0, 0.05), epoch, 100);
    }
    EXPECT_NEAR(manager.smoothed_accuracy(), 0.5 + 0.01 * 29, 0.05);
}

TEST(Elastic, Eq8ClosedFormAtMidpoint) {
    // With penalty 0, ratio at progress 0.5 is
    // r_start - (r_start - r_end) * 0.5. Progress is measured over the
    // schedule *remaining after activation*: the monotonically falling
    // spread latches beta at epoch 2 (slope_window = 3), so T = 98 and
    // the midpoint sits at epoch 2 + 49 = 51.
    ElasticConfig config = fast_config();
    ElasticCacheManager manager{config};
    const std::size_t total = 101;
    double ratio = 0.0;
    for (std::size_t epoch = 0; epoch <= 51; ++epoch) {
        ratio = manager.on_epoch(1.0 / (1.0 + static_cast<double>(epoch)), 0.5,
                                 epoch, total);
    }
    EXPECT_EQ(manager.activation_epoch(), 2U);
    EXPECT_NEAR(ratio, 0.9 - 0.1 * 0.5, 1e-6);
}

TEST(Elastic, ContinuousAcrossLateActivation) {
    // The regression this guards: Eq. 8 measured progress as absolute
    // t / (total - 1) regardless of when beta latched, so a late
    // activation jumped the ratio from r_start straight to mid-curve in
    // a single epoch. Rebased on the activation epoch, the series starts
    // its shift at zero and never moves faster than one linear schedule
    // step per epoch (penalty is 0 here — flat accuracy).
    ElasticCacheManager manager{fast_config()};
    const std::size_t total = 60;
    std::vector<double> series;
    for (std::size_t epoch = 0; epoch < total; ++epoch) {
        const double e = static_cast<double>(epoch);
        // Spread rises for half the run, then falls: beta latches late.
        const double spread = epoch < 30 ? 0.10 + 0.01 * e
                                         : 0.40 - 0.02 * (e - 30.0);
        series.push_back(manager.on_epoch(spread, 0.5, epoch, total));
    }
    ASSERT_TRUE(manager.activated());
    const std::size_t act = manager.activation_epoch();
    ASSERT_GT(act, 20U);
    ASSERT_LT(act, total - 2);
    // The activation epoch itself still returns r_start (progress 0)...
    EXPECT_NEAR(series[act], 0.9, 1e-12);
    // ...the final epoch reaches r_end...
    EXPECT_NEAR(series.back(), 0.8, 1e-9);
    // ...and no epoch-to-epoch move exceeds the linear schedule step.
    const double max_step =
        0.1 / static_cast<double>(total - 1 - act) + 1e-9;
    for (std::size_t epoch = 1; epoch < total; ++epoch) {
        const double drop = series[epoch - 1] - series[epoch];
        EXPECT_GE(drop, -1e-12) << "ratio rose at epoch " << epoch;
        EXPECT_LE(drop, max_step) << "discontinuity at epoch " << epoch;
    }
}

TEST(Elastic, ActivationAtFinalEpochFinishesAtREnd) {
    // Degenerate tail: beta latching on the very last epoch leaves no
    // schedule to traverse, so Eq. 8's endpoint (r_end) applies directly.
    ElasticCacheManager manager{fast_config()};
    const std::size_t total = 5;
    const double spreads[] = {0.1, 0.2, 0.3, 0.2, 0.1};
    double ratio = 0.0;
    for (std::size_t epoch = 0; epoch < total; ++epoch) {
        ratio = manager.on_epoch(spreads[epoch], 0.5, epoch, total);
    }
    ASSERT_TRUE(manager.activated());
    EXPECT_EQ(manager.activation_epoch(), total - 1);
    EXPECT_NEAR(ratio, 0.8, 1e-12);
}

TEST(Elastic, RejectsInvalidConfig) {
    ElasticConfig inverted = fast_config();
    inverted.r_start = 0.5;
    inverted.r_end = 0.9;
    EXPECT_THROW(ElasticCacheManager{inverted}, std::invalid_argument);

    ElasticConfig bad_gamma = fast_config();
    bad_gamma.gamma = 0.0;
    EXPECT_THROW(ElasticCacheManager{bad_gamma}, std::invalid_argument);
}

TEST(Elastic, SingleEpochRunStaysAtStart) {
    ElasticCacheManager manager{fast_config()};
    const double ratio = manager.on_epoch(0.5, 0.5, 0, 1);
    EXPECT_DOUBLE_EQ(ratio, 0.9);
}

// The cache the manager drives must accept any ratio the schedule emits,
// and clamp construction and set_imp_ratio identically at the boundary:
// a ratio below the floor yields the same partition either way.
TEST(Elastic, CacheRatioDomainMatchesConstructorDomain) {
    constexpr std::size_t kCapacity = 1000;
    constexpr double kTinyRatio = 0.005;  // below kMinImpRatio

    cache::TwoLayerSemanticCache constructed{kCapacity, kTinyRatio};
    cache::TwoLayerSemanticCache updated{kCapacity, 0.9};
    updated.set_imp_ratio(kTinyRatio);

    EXPECT_DOUBLE_EQ(constructed.imp_ratio(), updated.imp_ratio());
    EXPECT_DOUBLE_EQ(constructed.imp_ratio(),
                     cache::TwoLayerSemanticCache::kMinImpRatio);
    EXPECT_EQ(constructed.importance_capacity(),
              updated.importance_capacity());
    EXPECT_EQ(constructed.homophily_capacity(), updated.homophily_capacity());

    // The exact domain endpoints: 1.0 is accepted everywhere, 0 and >1
    // are construction errors (the setter clamps them instead — it is fed
    // by the schedule, which cannot be made to throw mid-training).
    cache::TwoLayerSemanticCache full{kCapacity, 1.0};
    EXPECT_EQ(full.importance_capacity(), kCapacity);
    EXPECT_THROW((cache::TwoLayerSemanticCache{kCapacity, 0.0}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace spider::core
