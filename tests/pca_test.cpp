// PCA tests: exact recovery on axis-aligned data, orthonormal components,
// variance ordering, projection round-trip on a planted low-rank model,
// and input validation.

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/pca.hpp"
#include "util/rng.hpp"

namespace spider::tensor {
namespace {

TEST(Pca, RecoversDominantAxis) {
    // Data varies strongly along x, weakly along y: first component ~ x.
    util::Rng rng{3};
    Matrix data{500, 2};
    for (std::size_t i = 0; i < 500; ++i) {
        data.at(i, 0) = static_cast<float>(rng.normal(0.0, 10.0));
        data.at(i, 1) = static_cast<float>(rng.normal(0.0, 0.5));
    }
    const PcaResult result = pca(data, 1);
    EXPECT_NEAR(std::abs(result.components.at(0, 0)), 1.0, 0.02);
    EXPECT_NEAR(std::abs(result.components.at(0, 1)), 0.0, 0.02);
    EXPECT_NEAR(result.explained_variance[0], 100.0, 10.0);  // sigma^2
}

TEST(Pca, ComponentsAreOrthonormal) {
    util::Rng rng{5};
    Matrix data{300, 6};
    data.randomize_normal(rng, 0.0F, 1.0F);
    const PcaResult result = pca(data, 3);
    for (std::size_t a = 0; a < 3; ++a) {
        double norm = 0.0;
        for (std::size_t d = 0; d < 6; ++d) {
            norm += static_cast<double>(result.components.at(a, d)) *
                    result.components.at(a, d);
        }
        EXPECT_NEAR(norm, 1.0, 1e-3) << "component " << a;
        for (std::size_t b = a + 1; b < 3; ++b) {
            double dot = 0.0;
            for (std::size_t d = 0; d < 6; ++d) {
                dot += static_cast<double>(result.components.at(a, d)) *
                       result.components.at(b, d);
            }
            EXPECT_NEAR(dot, 0.0, 1e-2) << a << " vs " << b;
        }
    }
}

TEST(Pca, VarianceIsDecreasing) {
    util::Rng rng{7};
    Matrix data{400, 5};
    for (std::size_t i = 0; i < 400; ++i) {
        for (std::size_t d = 0; d < 5; ++d) {
            data.at(i, d) = static_cast<float>(
                rng.normal(0.0, static_cast<double>(5 - d)));
        }
    }
    const PcaResult result = pca(data, 3);
    EXPECT_GE(result.explained_variance[0], result.explained_variance[1]);
    EXPECT_GE(result.explained_variance[1], result.explained_variance[2]);
}

TEST(Pca, SeparatesPlantedClusters) {
    // Two clusters along a diagonal in 8-D: the 1-D projection must
    // separate them linearly.
    util::Rng rng{9};
    Matrix data{200, 8};
    for (std::size_t i = 0; i < 200; ++i) {
        const double center = i % 2 == 0 ? 4.0 : -4.0;
        for (std::size_t d = 0; d < 8; ++d) {
            data.at(i, d) = static_cast<float>(rng.normal(center, 1.0));
        }
    }
    const PcaResult result = pca(data, 1);
    int correct = 0;
    for (std::size_t i = 0; i < 200; ++i) {
        const bool positive = result.projected.at(i, 0) > 0.0F;
        const bool cluster_a = i % 2 == 0;
        correct += (positive == cluster_a) ? 1 : 0;
    }
    // Sign of the axis is arbitrary: accept either orientation.
    EXPECT_TRUE(correct > 190 || correct < 10) << "correct=" << correct;
}

TEST(Pca, ProjectionIsCentered) {
    util::Rng rng{11};
    Matrix data{300, 4};
    for (std::size_t i = 0; i < 300; ++i) {
        for (std::size_t d = 0; d < 4; ++d) {
            data.at(i, d) = static_cast<float>(rng.normal(7.0, 1.0));
        }
    }
    const PcaResult result = pca(data, 2);
    for (std::size_t c = 0; c < 2; ++c) {
        double mean = 0.0;
        for (std::size_t i = 0; i < 300; ++i) {
            mean += result.projected.at(i, c);
        }
        EXPECT_NEAR(mean / 300.0, 0.0, 1e-3);
    }
    for (double m : result.mean) {
        EXPECT_NEAR(m, 7.0, 0.2);
    }
}

TEST(Pca, RejectsBadArguments) {
    Matrix data{10, 3};
    EXPECT_THROW(pca(data, 0), std::invalid_argument);
    EXPECT_THROW(pca(data, 4), std::invalid_argument);
    const Matrix empty;
    EXPECT_THROW(pca(empty, 1), std::invalid_argument);
}

}  // namespace
}  // namespace spider::tensor
