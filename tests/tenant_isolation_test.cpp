// Multi-tenant isolation tests: capacity slices are carved correctly and
// never exceeded, one tenant's eviction storm cannot displace another
// tenant's residents (freeze-oracle comparison), and the invariants hold
// under concurrent multi-tenant stress. Run under TSan by
// tools/run_tier1.sh --server.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "server/client.hpp"
#include "server/server.hpp"
#include "server/tenants.hpp"

namespace spider::server {
namespace {

/// Sorted (id, score) importance residents across all shards — the
/// freeze-oracle view used to compare snapshots.
std::vector<std::pair<std::uint32_t, double>> importance_residents(
    const cache::TwoLayerSemanticCache& cache) {
    std::vector<std::pair<std::uint32_t, double>> out;
    const auto frozen = cache.freeze();
    for (const auto& shard : frozen.shards) {
        out.insert(out.end(), shard.importance.begin(),
                   shard.importance.end());
    }
    std::sort(out.begin(), out.end());
    return out;
}

// ============================================================ construction

TEST(TenantManager, ValidatesSpecs) {
    EXPECT_THROW((TenantCacheManager{100, {}}), std::invalid_argument);
    EXPECT_THROW(
        (TenantCacheManager{100, {TenantSpec{.capacity_pct = 0.0}}}),
        std::invalid_argument);
    EXPECT_THROW(
        (TenantCacheManager{100,
                            {TenantSpec{.capacity_pct = 60.0},
                             TenantSpec{.capacity_pct = 50.0}}}),
        std::invalid_argument);
    // A slice that rounds to zero items cannot host a cache.
    EXPECT_THROW(
        (TenantCacheManager{10, {TenantSpec{.capacity_pct = 1.0}}}),
        std::invalid_argument);
    EXPECT_THROW(
        (TenantCacheManager{100,
                            std::vector<TenantSpec>(257, TenantSpec{
                                .capacity_pct = 100.0 / 257.0})}),
        std::invalid_argument);
}

TEST(TenantManager, SlicesPartitionTheBudget) {
    const TenantCacheManager mgr{
        1000,
        {TenantSpec{.capacity_pct = 50.0, .imp_ratio = 0.9},
         TenantSpec{.capacity_pct = 30.0, .imp_ratio = 0.8},
         TenantSpec{.capacity_pct = 20.0, .imp_ratio = 0.5}}};
    ASSERT_EQ(mgr.num_tenants(), 3U);
    EXPECT_EQ(mgr.tenant_capacity(0), 500U);
    EXPECT_EQ(mgr.tenant_capacity(1), 300U);
    EXPECT_EQ(mgr.tenant_capacity(2), 200U);
    EXPECT_TRUE(mgr.valid_tenant(2));
    EXPECT_FALSE(mgr.valid_tenant(3));
    const auto report = mgr.check_isolation();
    EXPECT_TRUE(report.ok) << report.detail;
}

TEST(TenantManager, PerTenantCountersAndScores) {
    TenantCacheManager mgr{200,
                           {TenantSpec{.capacity_pct = 50.0},
                            TenantSpec{.capacity_pct = 50.0}}};
    EXPECT_TRUE(mgr.admit_after_fetch(0, 1, 2.0));
    EXPECT_EQ(mgr.lookup(0, 1).kind, cache::HitKind::kImportance);
    EXPECT_EQ(mgr.lookup(1, 1).kind, cache::HitKind::kMiss);
    EXPECT_DOUBLE_EQ(mgr.score_of(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(mgr.score_of(1, 1), 0.0);

    const TenantStatReply t0 = mgr.stats(0);
    EXPECT_EQ(t0.admitted, 1U);
    EXPECT_EQ(t0.hits_importance, 1U);
    EXPECT_EQ(t0.misses, 0U);
    const TenantStatReply t1 = mgr.stats(1);
    EXPECT_EQ(t1.admitted, 0U);
    EXPECT_EQ(t1.misses, 1U);
}

// =============================================================== isolation

TEST(TenantIsolation, SliceNeverExceedsBudget) {
    TenantCacheManager mgr{100,
                           {TenantSpec{.capacity_pct = 40.0},
                            TenantSpec{.capacity_pct = 60.0}}};
    // Offer 10x the slice; the section sizes must stay within budget.
    for (std::uint32_t id = 0; id < 400; ++id) {
        (void)mgr.admit_after_fetch(0, id, 1.0 + id);
    }
    const TenantStatReply t0 = mgr.stats(0);
    EXPECT_LE(t0.imp_size, t0.imp_capacity);
    EXPECT_LE(t0.hom_size, t0.hom_capacity);
    EXPECT_LE(t0.imp_capacity + t0.hom_capacity, 40U);
    const auto report = mgr.check_isolation();
    EXPECT_TRUE(report.ok) << report.detail;
}

TEST(TenantIsolation, EvictionStormCannotCrossTenants) {
    TenantCacheManager mgr{200,
                           {TenantSpec{.capacity_pct = 25.0},
                            TenantSpec{.capacity_pct = 75.0}}};
    // Settle tenant 0 with more offers than its 50-item slice holds.
    for (std::uint32_t id = 0; id < 80; ++id) {
        (void)mgr.admit_after_fetch(0, id, 100.0 + id);
    }
    const auto before = importance_residents(mgr.cache(0));
    ASSERT_FALSE(before.empty());

    // Tenant 1 storms: 50k admissions with ever-higher scores, plus
    // homophily offers — everything that causes evictions.
    for (std::uint32_t id = 0; id < 50000; ++id) {
        (void)mgr.admit_after_fetch(1, 1'000'000 + id,
                                    1000.0 + static_cast<double>(id));
        if (id % 64 == 0) {
            const std::uint32_t nb[] = {2'000'000 + id, 2'000'001 + id};
            (void)mgr.put_neighbors(1, 1'000'000 + id, nb);
        }
    }

    // Tenant 0's residents are bit-for-bit untouched.
    const auto after = importance_residents(mgr.cache(0));
    EXPECT_EQ(before, after);
    const auto report = mgr.check_isolation();
    EXPECT_TRUE(report.ok) << report.detail;
    // And the storm stayed inside tenant 1's slice.
    const TenantStatReply t1 = mgr.stats(1);
    EXPECT_LE(t1.imp_size, t1.imp_capacity);
    EXPECT_LE(t1.hom_size, t1.hom_capacity);
}

TEST(TenantIsolation, ConcurrentStressHoldsInvariants) {
    // All tenants hammered from concurrent threads: admissions, lookups,
    // score refreshes, homophily offers, and elastic repartitions. The
    // TSan tier (tools/run_tier1.sh --server) proves data-race freedom;
    // here the freeze-oracle invariants must hold afterwards, and every
    // tenant's residents must come from its own id namespace.
    constexpr std::size_t kTenants = 3;
    constexpr std::uint32_t kNamespace = 1'000'000;
    TenantCacheManager mgr{600,
                           {TenantSpec{.capacity_pct = 50.0},
                            TenantSpec{.capacity_pct = 30.0},
                            TenantSpec{.capacity_pct = 20.0}}};

    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kTenants; ++t) {
        for (int worker = 0; worker < 2; ++worker) {
            threads.emplace_back([&, t, worker] {
                std::mt19937 rng{static_cast<std::uint32_t>(t * 10 + worker)};
                std::uniform_int_distribution<std::uint32_t> pick{0, 2000};
                const auto tenant = static_cast<std::uint8_t>(t);
                const std::uint32_t base =
                    static_cast<std::uint32_t>(t) * kNamespace;
                for (int i = 0; i < 20000 && !stop.load(); ++i) {
                    const std::uint32_t id = base + pick(rng);
                    switch (i % 5) {
                        case 0:
                        case 1:
                            (void)mgr.lookup(tenant, id);
                            break;
                        case 2:
                            (void)mgr.admit_after_fetch(
                                tenant, id, 1.0 + (i % 97));
                            break;
                        case 3:
                            mgr.put_score(tenant, id, 2.0 + (i % 31));
                            break;
                        case 4:
                            if (i % 40 == 4) {
                                (void)mgr.set_imp_ratio(
                                    tenant, 0.5 + 0.4 * ((i / 40) % 2));
                            } else {
                                std::uint32_t nbid = base + pick(rng);
                                if (nbid == id) ++nbid;
                                const std::uint32_t nb[] = {nbid};
                                (void)mgr.put_neighbors(tenant, id, nb);
                            }
                            break;
                    }
                }
            });
        }
    }
    for (auto& thread : threads) thread.join();
    stop.store(true);

    const auto report = mgr.check_isolation();
    EXPECT_TRUE(report.ok) << report.detail;
    for (std::size_t t = 0; t < kTenants; ++t) {
        const std::uint32_t base = static_cast<std::uint32_t>(t) * kNamespace;
        for (const auto& [id, score] :
             importance_residents(mgr.cache(static_cast<std::uint8_t>(t)))) {
            ASSERT_GE(id, base);
            ASSERT_LT(id, base + kNamespace)
                << "tenant " << t << " holds a foreign id";
        }
    }
}

TEST(TenantIsolation, StormOverTheWire) {
    // Same storm, through the served front door: tenant 1's flood must
    // not evict tenant 0's residents or starve its hit path.
    ServerConfig config;
    config.port = 0;
    config.cache_items = 200;
    config.tenants = {TenantSpec{.capacity_pct = 25.0},
                      TenantSpec{.capacity_pct = 75.0}};
    SpiderServer server{config};
    server.start();

    Client c;
    c.connect("127.0.0.1", server.port());
    for (std::uint32_t id = 0; id < 30; ++id) {
        (void)c.get(0, id, 100.0 + id);
    }
    const auto before = importance_residents(server.tenants().cache(0));
    ASSERT_FALSE(before.empty());

    for (std::uint32_t wave = 0; wave < 40; ++wave) {
        for (std::uint32_t i = 0; i < 250; ++i) {
            c.queue_get(1, wave * 250 + i, 1000.0 + wave);
        }
        const auto replies = c.flush();
        ASSERT_EQ(replies.size(), 250U);
    }

    EXPECT_EQ(importance_residents(server.tenants().cache(0)), before);
    // Tenant 0 still hits in memory.
    EXPECT_EQ(c.get(0, before.front().first, 1.0).kind,
              ServeKind::kImportanceHit);
    const auto report = server.tenants().check_isolation();
    EXPECT_TRUE(report.ok) << report.detail;
    server.stop();
}

}  // namespace
}  // namespace spider::server
