// Fault-tolerance suite (DESIGN.md §9): the deterministic fault model,
// the resilient client's retry/hedge/breaker machinery, thread-count
// independence of the injected schedule, and the simulator's degraded
// mode — including the zero-cost-off parity guarantee (a benign fault
// layer reproduces the fault-free run bit for bit).

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <stdexcept>
#include <vector>

#include "data/dataset.hpp"
#include "data/presets.hpp"
#include "sim/simulator.hpp"
#include "storage/fault_model.hpp"
#include "storage/resilient_store.hpp"
#include "util/thread_pool.hpp"

namespace spider {
namespace {

data::SyntheticDataset small_dataset() {
    data::DatasetSpec spec;
    spec.name = "faults";
    spec.num_samples = 512;
    spec.num_classes = 4;
    spec.feature_dim = 8;
    return data::SyntheticDataset{spec};
}

// ------------------------------------------------------------- FaultModel

TEST(FaultModel, DisabledAlwaysSucceedsAtNominalLatency) {
    const storage::SimDuration base = storage::from_ms(4.0);
    storage::FaultModel model{{}, base};
    for (std::uint32_t id = 0; id < 100; ++id) {
        const storage::FaultOutcome out =
            model.evaluate(id, 0, storage::from_ms(1e9));
        EXPECT_TRUE(out.ok());
        EXPECT_EQ(out.latency, base);
    }
    EXPECT_EQ(model.injected_transients(), 0U);
}

TEST(FaultModel, TransientRateTracksConfiguredProbability) {
    storage::FaultModelConfig config;
    config.enabled = true;
    config.transient_failure_prob = 0.2;
    storage::FaultModel model{config, storage::from_ms(4.0)};
    std::size_t failures = 0;
    constexpr std::size_t kDraws = 20000;
    for (std::uint32_t id = 0; id < kDraws; ++id) {
        if (!model.evaluate(id, 0, {}).ok()) ++failures;
    }
    const double rate = static_cast<double>(failures) / kDraws;
    EXPECT_NEAR(rate, 0.2, 0.02);
    EXPECT_EQ(model.injected_transients(), failures);
}

TEST(FaultModel, DrawsArePureFunctionsOfSeedAndCoordinates) {
    storage::FaultModelConfig config;
    config.enabled = true;
    config.transient_failure_prob = 0.3;
    config.latency_spike_prob = 0.2;
    storage::FaultModel a{config, storage::from_ms(4.0)};
    storage::FaultModel b{config, storage::from_ms(4.0)};
    config.seed ^= 0x1234;
    storage::FaultModel c{config, storage::from_ms(4.0)};

    std::size_t reseeded_diffs = 0;
    for (std::uint32_t id = 0; id < 1000; ++id) {
        const auto oa = a.evaluate(id, 1, {}, 3);
        const auto ob = b.evaluate(id, 1, {}, 3);
        EXPECT_EQ(oa.kind, ob.kind);
        EXPECT_EQ(oa.latency, ob.latency);
        const auto oc = c.evaluate(id, 1, {}, 3);
        if (oc.kind != oa.kind || oc.latency != oa.latency) ++reseeded_diffs;
    }
    EXPECT_GT(reseeded_diffs, 0U);  // a new seed is new weather
}

TEST(FaultModel, OutageWindowsFollowVirtualTime) {
    storage::FaultModelConfig config;
    config.enabled = true;
    config.outage_start_ms = 100.0;
    config.outage_duration_ms = 50.0;
    config.outage_period_ms = 200.0;
    config.timeout_ms = 30.0;
    storage::FaultModel model{config, storage::from_ms(4.0)};

    EXPECT_FALSE(model.in_outage(storage::from_ms(50.0)));
    EXPECT_TRUE(model.in_outage(storage::from_ms(120.0)));
    EXPECT_FALSE(model.in_outage(storage::from_ms(180.0)));
    EXPECT_TRUE(model.in_outage(storage::from_ms(320.0)));  // next period

    const auto out = model.evaluate(7, 0, storage::from_ms(120.0));
    EXPECT_EQ(out.kind, storage::FaultKind::kOutage);
    // An unreachable backend burns the full client timeout.
    EXPECT_EQ(out.latency, storage::from_ms(30.0));
    EXPECT_EQ(model.outage_rejections(), 1U);
}

TEST(FaultModel, SpikesBeyondTimeoutAreAbandonedAtThreshold) {
    storage::FaultModelConfig config;
    config.enabled = true;
    config.latency_spike_prob = 1.0;
    config.latency_spike_mult = 100.0;  // >= 50x base, far past the timeout
    config.timeout_ms = 20.0;
    storage::FaultModel model{config, storage::from_ms(4.0)};
    for (std::uint32_t id = 0; id < 50; ++id) {
        const auto out = model.evaluate(id, 0, {});
        EXPECT_EQ(out.kind, storage::FaultKind::kTimeout);
        EXPECT_EQ(out.latency, storage::from_ms(20.0));
    }
    EXPECT_EQ(model.injected_timeouts(), 50U);
}

TEST(FaultModel, BrownoutSlowsTheRecoveryTail) {
    storage::FaultModelConfig config;
    config.enabled = true;
    config.outage_start_ms = 100.0;
    config.outage_duration_ms = 50.0;
    config.brownout_factor = 3.0;
    config.brownout_duration_ms = 40.0;
    storage::FaultModel model{config, storage::from_ms(4.0)};
    EXPECT_DOUBLE_EQ(model.slowdown(storage::from_ms(50.0)), 1.0);
    EXPECT_DOUBLE_EQ(model.slowdown(storage::from_ms(160.0)), 3.0);
    EXPECT_DOUBLE_EQ(model.slowdown(storage::from_ms(200.0)), 1.0);
    const auto out = model.evaluate(3, 0, storage::from_ms(160.0));
    EXPECT_TRUE(out.ok());
    EXPECT_EQ(out.latency, storage::from_ms(12.0));
}

TEST(FaultModel, ZeroDurationOutageWindowNeverFires) {
    storage::FaultModelConfig config;
    config.enabled = true;
    config.outage_start_ms = 100.0;
    config.outage_duration_ms = 0.0;  // degenerate window
    config.outage_period_ms = 200.0;
    storage::FaultModel model{config, storage::from_ms(4.0)};
    for (double t : {0.0, 100.0, 150.0, 300.0, 1e9}) {
        EXPECT_FALSE(model.in_outage(storage::from_ms(t))) << t;
        EXPECT_TRUE(model.evaluate(1, 0, storage::from_ms(t)).ok()) << t;
    }
    EXPECT_EQ(model.outage_rejections(), 0U);
}

TEST(FaultModel, SingleNonPeriodicOutageWindowFiresExactlyOnce) {
    storage::FaultModelConfig config;
    config.enabled = true;
    config.outage_start_ms = 100.0;
    config.outage_duration_ms = 50.0;
    config.outage_period_ms = 0.0;  // one window, no repetition
    storage::FaultModel model{config, storage::from_ms(4.0)};
    EXPECT_FALSE(model.in_outage(storage::from_ms(99.0)));
    EXPECT_TRUE(model.in_outage(storage::from_ms(100.0)));
    EXPECT_TRUE(model.in_outage(storage::from_ms(149.0)));
    EXPECT_FALSE(model.in_outage(storage::from_ms(150.0)));
    // Where a periodic config would strike again, the single window
    // stays healthy forever.
    EXPECT_FALSE(model.in_outage(storage::from_ms(300.0)));
    EXPECT_FALSE(model.in_outage(storage::from_ms(1e12)));
}

TEST(FaultModel, BrownoutTailOverlappingNextOutageYieldsToTheOutage) {
    storage::FaultModelConfig config;
    config.enabled = true;
    config.outage_start_ms = 0.0;
    config.outage_duration_ms = 40.0;
    config.outage_period_ms = 100.0;
    config.brownout_factor = 2.0;
    // Tail runs 80 ms past each 40 ms window: it would reach 20 ms into
    // the *next* period's outage. The outage check wins there.
    config.brownout_duration_ms = 80.0;
    storage::FaultModel model{config, storage::from_ms(4.0)};
    EXPECT_TRUE(model.in_outage(storage::from_ms(20.0)));
    EXPECT_DOUBLE_EQ(model.slowdown(storage::from_ms(50.0)), 2.0);
    EXPECT_DOUBLE_EQ(model.slowdown(storage::from_ms(99.0)), 2.0);
    // 110 ms = 10 ms into the next period: inside the new outage window,
    // even though the previous brownout tail nominally covers it.
    EXPECT_TRUE(model.in_outage(storage::from_ms(110.0)));
    EXPECT_EQ(model.evaluate(5, 0, storage::from_ms(110.0)).kind,
              storage::FaultKind::kOutage);
    // The slowdown resumes for the rest of the tail after that window.
    EXPECT_DOUBLE_EQ(model.slowdown(storage::from_ms(150.0)), 2.0);
}

TEST(FaultModel, WeatherChainIsDeterministicAcrossThreadCounts) {
    storage::FaultModelConfig config;
    config.enabled = true;
    config.weather.enabled = true;
    config.weather.p_degrade = 0.10;
    config.weather.p_recover = 0.30;
    config.weather.p_fail = 0.15;
    config.weather.p_restore = 0.40;
    const storage::FaultModel reference{config, storage::from_ms(4.0)};
    constexpr std::uint64_t kSlots = 2000;
    std::vector<storage::WeatherState> expected(kSlots);
    for (std::uint64_t s = 0; s < kSlots; ++s) {
        expected[s] = reference.weather_state_at_slot(s);
    }
    // A second instance queried from many threads in scrambled order
    // must reproduce the chain exactly: state is a pure function of
    // (seed, slot), never of query interleaving.
    const storage::FaultModel concurrent{config, storage::from_ms(4.0)};
    std::vector<std::future<bool>> checks;
    for (int t = 0; t < 8; ++t) {
        checks.push_back(std::async(std::launch::async, [&, t] {
            for (std::uint64_t i = 0; i < kSlots; ++i) {
                const std::uint64_t slot =
                    (i * 2654435761ULL + static_cast<std::uint64_t>(t) * 97) %
                    kSlots;
                if (concurrent.weather_state_at_slot(slot) != expected[slot]) {
                    return false;
                }
            }
            return true;
        }));
    }
    for (auto& c : checks) EXPECT_TRUE(c.get());
    // The chain actually moves under these rates.
    std::size_t non_good = 0;
    for (const auto s : expected) {
        if (s != storage::WeatherState::kGood) ++non_good;
    }
    EXPECT_GT(non_good, 0U);
}

TEST(FaultModel, AllGoodWeatherChainIsBitIdenticalToIidModel) {
    storage::FaultModelConfig iid;
    iid.enabled = true;
    iid.transient_failure_prob = 0.2;
    iid.latency_spike_prob = 0.1;
    storage::FaultModelConfig calm = iid;
    calm.weather.enabled = true;  // chain on, but every transition prob 0
    const storage::FaultModel a{iid, storage::from_ms(4.0)};
    const storage::FaultModel b{calm, storage::from_ms(4.0)};
    for (std::uint32_t id = 0; id < 500; ++id) {
        const auto oa = a.evaluate(id, 0, storage::from_ms(id * 3.0));
        const auto ob = b.evaluate(id, 0, storage::from_ms(id * 3.0));
        EXPECT_EQ(oa.kind, ob.kind) << id;
        EXPECT_EQ(oa.latency, ob.latency) << id;
    }
}

TEST(FaultModel, DegradedWeatherScalesRatesAndOutageWeatherRejects) {
    storage::FaultModelConfig config;
    config.enabled = true;
    config.transient_failure_prob = 0.05;
    config.weather.enabled = true;
    config.weather.slot_ms = 100.0;
    config.weather.p_degrade = 1.0;  // slot 1 onward: degraded
    config.weather.degraded_mult = 8.0;
    config.weather.degraded_slowdown = 2.0;
    storage::FaultModel model{config, storage::from_ms(4.0)};
    ASSERT_EQ(model.weather_state_at_slot(0), storage::WeatherState::kGood);
    ASSERT_EQ(model.weather_state_at_slot(5),
              storage::WeatherState::kDegraded);

    std::size_t good_transients = 0;
    std::size_t degraded_transients = 0;
    for (std::uint32_t id = 0; id < 4000; ++id) {
        const auto good = model.evaluate(id, 0, storage::from_ms(10.0));
        if (good.kind == storage::FaultKind::kTransient) ++good_transients;
        if (good.ok()) {
            EXPECT_EQ(good.latency, storage::from_ms(4.0));
        }
        const auto bad = model.evaluate(id, 0, storage::from_ms(510.0));
        if (bad.kind == storage::FaultKind::kTransient) ++degraded_transients;
        if (bad.ok()) {  // degraded successes run degraded_slowdown slower
            EXPECT_EQ(bad.latency, storage::from_ms(8.0));
        }
    }
    // 0.05 vs 0.40 per attempt over 4000 draws.
    EXPECT_GT(degraded_transients, good_transients * 4);

    storage::FaultModelConfig storm = config;
    storm.weather.p_fail = 1.0;  // slot 2 onward: outage
    storage::FaultModel stormy{storm, storage::from_ms(4.0)};
    const auto out = stormy.evaluate(9, 0, storage::from_ms(250.0));
    EXPECT_EQ(out.kind, storage::FaultKind::kOutage);
    EXPECT_EQ(stormy.weather_rejections(), 1U);
    EXPECT_EQ(stormy.outage_rejections(), 0U);  // not a *scheduled* window
    stormy.reset_counters();
    EXPECT_EQ(stormy.weather_rejections(), 0U);
}

TEST(FaultModel, ValidateRejectsMalformedConfigsWithActionableMessages) {
    const auto rejects = [](auto mutate) {
        storage::FaultModelConfig config;
        config.enabled = true;
        mutate(config);
        EXPECT_THROW(storage::validate(config), std::invalid_argument);
    };
    rejects([](auto& c) { c.transient_failure_prob = -0.1; });
    rejects([](auto& c) { c.latency_spike_prob = 1.5; });
    rejects([](auto& c) { c.brownout_factor = 0.5; });
    rejects([](auto& c) { c.outage_duration_ms = -1.0; });
    rejects([](auto& c) {
        c.outage_duration_ms = 300.0;  // longer than the period
        c.outage_period_ms = 200.0;
    });
    rejects([](auto& c) {
        c.weather.enabled = true;
        c.weather.slot_ms = 0.0;
    });
    rejects([](auto& c) { c.weather.p_degrade = 2.0; });
    rejects([](auto& c) {
        c.weather.p_recover = 0.8;  // degraded exits sum past 1
        c.weather.p_fail = 0.5;
    });
    rejects([](auto& c) { c.weather.degraded_mult = 0.5; });
    rejects([](auto& c) { c.weather.degraded_slowdown = 0.0; });
    // A healthy config passes, and the single-window outage with a zero
    // period is legal.
    storage::FaultModelConfig ok;
    ok.enabled = true;
    ok.outage_duration_ms = 300.0;
    ok.outage_period_ms = 0.0;
    EXPECT_NO_THROW(storage::validate(ok));
}

// --------------------------------------------------------- ResilientStore

TEST(ResilientStore, RetriesRecoverTransientFailures) {
    auto dataset = small_dataset();
    storage::RemoteStore remote{dataset, {}};
    storage::FaultModelConfig faults;
    faults.enabled = true;
    faults.transient_failure_prob = 0.3;
    storage::ResiliencePolicy policy;
    policy.max_attempts = 8;
    policy.hedge_enabled = false;
    storage::ResilientStore store{remote, faults, policy};

    constexpr std::uint32_t kFetches = 300;
    std::uint32_t recovered = 0;
    for (std::uint32_t id = 0; id < kFetches; ++id) {
        const storage::FetchResult r = store.fetch(id, {});
        if (r.ok) ++recovered;
        EXPECT_GE(r.attempts, 1U);
    }
    // P(8 straight transients) ~ 1e-4 per id; allow the odd exhausted
    // envelope rather than depend on one seed's luck.
    EXPECT_GE(recovered, kFetches - 2);
    const auto c = store.counters();
    EXPECT_EQ(c.successes, recovered);
    EXPECT_GT(c.retries, 0U);
    // The underlying store sees exactly one fetch per successful envelope,
    // keeping its byte counters meaningful.
    EXPECT_EQ(remote.total_fetches(), recovered);
    // Retried envelopes paid latency + backoff beyond the nominal fetch.
    EXPECT_GT(c.fault_time.count(), 0);
}

TEST(ResilientStore, HedgedDuplicatesRescueLatencySpikes) {
    auto dataset = small_dataset();
    storage::RemoteStore remote{dataset, {}};
    storage::FaultModelConfig faults;
    faults.enabled = true;
    faults.latency_spike_prob = 0.5;
    faults.latency_spike_mult = 10.0;
    storage::ResiliencePolicy policy;
    policy.max_attempts = 1;
    policy.hedge_delay_ms = 1.0;  // fixed: fire on any spiked primary
    storage::ResilientStore store{remote, faults, policy};

    storage::SimDuration hedged_cost{};
    for (std::uint32_t id = 0; id < 400; ++id) {
        const storage::FetchResult r = store.fetch(id, {});
        EXPECT_TRUE(r.ok);
        if (r.hedge_won) hedged_cost += r.cost;
    }
    const auto c = store.counters();
    EXPECT_GT(c.hedges, 0U);
    EXPECT_GT(c.hedge_wins, 0U);
    // A won hedge means the duplicate beat its spiked primary, so the
    // average rescued envelope costs less than an average spike
    // (base * mult * E[U] = 10x base).
    const storage::SimDuration base = remote.fetch_cost(0);
    EXPECT_LT(hedged_cost.count(),
              static_cast<std::int64_t>(c.hedge_wins) * (base * 10).count());
}

TEST(ResilientStore, BreakerTripsDuringOutageAndRecloses) {
    auto dataset = small_dataset();
    storage::RemoteStore remote{dataset, {}};
    storage::FaultModelConfig faults;
    faults.enabled = true;
    faults.outage_start_ms = 0.0;
    faults.outage_duration_ms = 50.0;
    faults.timeout_ms = 10.0;
    storage::ResiliencePolicy policy;
    policy.max_attempts = 1;
    policy.hedge_enabled = false;
    policy.breaker_failure_threshold = 4;
    policy.breaker_cooldown_ms = 100.0;
    storage::ResilientStore store{remote, faults, policy};
    using Breaker = storage::ResilientStore::BreakerState;

    // Batch inside the outage: every envelope fails.
    const storage::SimDuration t0 = storage::from_ms(10.0);
    for (std::uint32_t id = 0; id < 4; ++id) {
        EXPECT_FALSE(store.fetch(id, t0).ok);
    }
    store.on_batch_end(/*failures=*/4, /*successes=*/0, t0);
    EXPECT_EQ(store.counters().breaker_trips, 1U);
    EXPECT_EQ(store.breaker_state(storage::from_ms(11.0)), Breaker::kOpen);

    // Open breaker: instant zero-cost client-side rejection.
    const storage::FetchResult rejected =
        store.fetch(99, storage::from_ms(12.0));
    EXPECT_FALSE(rejected.ok);
    EXPECT_TRUE(rejected.breaker_rejected);
    EXPECT_EQ(rejected.attempts, 0U);
    EXPECT_EQ(rejected.cost.count(), 0);

    // Past the cooldown (and the outage): half-open probe succeeds and
    // closes the breaker.
    const storage::SimDuration t1 = storage::from_ms(120.0);
    EXPECT_EQ(store.breaker_state(t1), Breaker::kHalfOpen);
    EXPECT_TRUE(store.fetch(100, t1).ok);
    store.on_batch_end(/*failures=*/0, /*successes=*/1, t1);
    EXPECT_EQ(store.breaker_state(t1), Breaker::kClosed);
    EXPECT_EQ(store.counters().breaker_trips, 1U);
}

// Satellite 3: the injected fault schedule and every aggregate counter are
// functions of (seed, config) alone — real worker threads cannot perturb
// them.
TEST(ResilientStore, ConcurrentFetchScheduleIndependentOfThreadCount) {
    struct PerId {
        bool ok;
        std::uint32_t attempts;
        bool hedged;
        bool hedge_won;
        std::int64_t cost_ns;
    };
    constexpr std::uint32_t kIds = 400;

    const auto run = [](std::size_t threads) {
        auto dataset = small_dataset();
        storage::RemoteStore remote{dataset, {}};
        storage::FaultModelConfig faults;
        faults.enabled = true;
        faults.transient_failure_prob = 0.2;
        faults.latency_spike_prob = 0.1;
        faults.latency_spike_mult = 6.0;
        faults.timeout_ms = 25.0;
        storage::ResiliencePolicy policy;
        policy.max_attempts = 4;
        policy.hedge_delay_ms = 8.0;  // fixed delay: no histogram feedback
        storage::ResilientStore store{remote, faults, policy};

        std::vector<PerId> results(kIds);
        const auto fetch_range = [&](std::uint32_t lo, std::uint32_t hi) {
            for (std::uint32_t id = lo; id < hi; ++id) {
                const storage::FetchResult r =
                    store.fetch(id, storage::from_ms(5.0));
                results[id] = {r.ok, r.attempts, r.hedged, r.hedge_won,
                               r.cost.count()};
            }
        };
        if (threads <= 1) {
            fetch_range(0, kIds);
        } else {
            util::ThreadPool pool{threads};
            std::vector<std::future<void>> futures;
            const std::uint32_t chunk = kIds / static_cast<std::uint32_t>(threads);
            for (std::size_t t = 0; t < threads; ++t) {
                const auto lo = static_cast<std::uint32_t>(t) * chunk;
                const auto hi = t + 1 == threads
                                    ? kIds
                                    : lo + chunk;
                futures.push_back(
                    pool.submit([&fetch_range, lo, hi] { fetch_range(lo, hi); }));
            }
            for (auto& f : futures) f.get();
        }
        return std::pair{results, store.counters()};
    };

    const auto [serial, serial_counters] = run(1);
    const auto [threaded, threaded_counters] = run(4);
    for (std::uint32_t id = 0; id < kIds; ++id) {
        EXPECT_EQ(serial[id].ok, threaded[id].ok) << id;
        EXPECT_EQ(serial[id].attempts, threaded[id].attempts) << id;
        EXPECT_EQ(serial[id].hedged, threaded[id].hedged) << id;
        EXPECT_EQ(serial[id].hedge_won, threaded[id].hedge_won) << id;
        EXPECT_EQ(serial[id].cost_ns, threaded[id].cost_ns) << id;
    }
    EXPECT_EQ(serial_counters.attempts, threaded_counters.attempts);
    EXPECT_EQ(serial_counters.retries, threaded_counters.retries);
    EXPECT_EQ(serial_counters.hedges, threaded_counters.hedges);
    EXPECT_EQ(serial_counters.hedge_wins, threaded_counters.hedge_wins);
    EXPECT_EQ(serial_counters.successes, threaded_counters.successes);
    EXPECT_EQ(serial_counters.failures, threaded_counters.failures);
    EXPECT_EQ(serial_counters.fault_time.count(),
              threaded_counters.fault_time.count());
}

// --------------------------------------------------- TrainingSimulator §9

sim::SimConfig small_sim(sim::StrategyKind strategy) {
    sim::SimConfig config;
    config.dataset = data::cifar10_like(/*scale=*/0.02, /*seed=*/7);  // 1000
    config.strategy = strategy;
    config.epochs = 4;
    config.batch_size = 64;
    config.cache_fraction = 0.2;
    config.seed = 5;
    return config;
}

void expect_identical_runs(const metrics::RunResult& a,
                           const metrics::RunResult& b) {
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t i = 0; i < a.epochs.size(); ++i) {
        const metrics::EpochMetrics& ea = a.epochs[i];
        const metrics::EpochMetrics& eb = b.epochs[i];
        EXPECT_EQ(ea.accesses, eb.accesses) << i;
        EXPECT_EQ(ea.hits, eb.hits) << i;
        EXPECT_EQ(ea.misses, eb.misses) << i;
        EXPECT_EQ(ea.importance_hits, eb.importance_hits) << i;
        EXPECT_EQ(ea.homophily_hits, eb.homophily_hits) << i;
        EXPECT_EQ(ea.train_loss, eb.train_loss) << i;
        EXPECT_EQ(ea.test_accuracy, eb.test_accuracy) << i;
        EXPECT_EQ(ea.load_time.count(), eb.load_time.count()) << i;
        EXPECT_EQ(ea.epoch_time.count(), eb.epoch_time.count()) << i;
    }
    EXPECT_EQ(a.total_time.count(), b.total_time.count());
    EXPECT_EQ(a.final_accuracy, b.final_accuracy);
}

// Zero-cost-off: a fault layer that is enabled but injects nothing must
// reproduce the fault-free run bit for bit — the resilient client adds no
// cost, no counter drift, and no RNG perturbation.
TEST(FaultSimulator, BenignFaultLayerReproducesFaultFreeRunBitForBit) {
    const sim::SimConfig clean = small_sim(sim::StrategyKind::kSpider);
    sim::SimConfig benign = clean;
    benign.faults.enabled = true;  // every probability stays zero

    const metrics::RunResult a = sim::TrainingSimulator{clean}.run();
    const metrics::RunResult b = sim::TrainingSimulator{benign}.run();
    expect_identical_runs(a, b);
    for (const metrics::EpochMetrics& e : b.epochs) {
        EXPECT_EQ(e.fetch_retries, 0U);
        EXPECT_EQ(e.fetch_hedges, 0U);
        EXPECT_EQ(e.fetch_timeouts, 0U);
        EXPECT_EQ(e.breaker_trips, 0U);
        EXPECT_EQ(e.fault_substitutions, 0U);
        EXPECT_EQ(e.fault_skips, 0U);
        EXPECT_EQ(e.fault_time.count(), 0);
    }
}

// The acceptance scenario: 2% transient failures plus one outage window.
// Epochs must complete, the substituted fraction must respect its bound,
// and the run must be slower than the healthy one but still train.
TEST(FaultSimulator, DegradedEpochsCompleteWithinSubstituteBound) {
    const sim::SimConfig clean = small_sim(sim::StrategyKind::kSpider);
    sim::SimConfig faulty = clean;
    faulty.faults.enabled = true;
    faulty.faults.transient_failure_prob = 0.02;
    faulty.faults.timeout_ms = 25.0;
    faulty.faults.outage_start_ms = 400.0;
    faulty.faults.outage_duration_ms = 250.0;
    faulty.resilience.max_attempts = 3;
    faulty.resilience.breaker_failure_threshold = 8;
    faulty.resilience.breaker_cooldown_ms = 200.0;
    faulty.resilience.max_substitute_fraction = 0.05;

    const metrics::RunResult healthy = sim::TrainingSimulator{clean}.run();
    const metrics::RunResult degraded = sim::TrainingSimulator{faulty}.run();

    ASSERT_EQ(degraded.epochs.size(), faulty.epochs);
    std::uint64_t retries = 0;
    std::uint64_t trips = 0;
    std::uint64_t substitutions = 0;
    for (const metrics::EpochMetrics& e : degraded.epochs) {
        EXPECT_LE(e.substituted_fraction(),
                  faulty.resilience.max_substitute_fraction + 1e-12);
        EXPECT_GE(e.fault_time.count(), 0);
        retries += e.fetch_retries;
        trips += e.breaker_trips;
        substitutions += e.fault_substitutions;
    }
    EXPECT_GT(retries, 0U);
    EXPECT_GE(trips, 1U);  // the outage window must trip the breaker
    EXPECT_GT(substitutions, 0U);
    EXPECT_GT(degraded.total_fault_time().count(), 0);
    EXPECT_LE(degraded.substituted_fraction(),
              faulty.resilience.max_substitute_fraction);
    // Faults cost virtual time; they must never make the run faster.
    EXPECT_GT(degraded.total_time.count(), healthy.total_time.count());
    // Training still converges to something useful.
    EXPECT_GT(degraded.final_accuracy, 0.15);
}

// Degraded mode composes with real loader threads and the lookahead
// prefetcher (failed speculative fetches propagate per the §8.3 exception
// contract and fall back to demand fetches).
TEST(FaultSimulator, ConcurrentDegradedRunWithPrefetchCompletes) {
    sim::SimConfig config = small_sim(sim::StrategyKind::kSpider);
    config.worker_threads = 4;
    config.prefetch_enabled = true;
    config.faults.enabled = true;
    config.faults.transient_failure_prob = 0.05;
    config.faults.timeout_ms = 25.0;
    config.resilience.max_attempts = 3;
    config.resilience.max_substitute_fraction = 0.05;

    const metrics::RunResult result = sim::TrainingSimulator{config}.run();
    ASSERT_EQ(result.epochs.size(), config.epochs);
    for (const metrics::EpochMetrics& e : result.epochs) {
        EXPECT_LE(e.substituted_fraction(),
                  config.resilience.max_substitute_fraction + 1e-12);
        EXPECT_GT(e.accesses, 0U);
    }
    EXPECT_GT(result.final_accuracy, 0.15);
}

// Every speculative fetch fails (transient_prob = 1, one attempt): the
// consume() rethrow must demote each prefetched id to a demand fetch with
// fresh fault draws — never a silent substitution or skip of a sample the
// prefetcher happened to touch. With demand fetches equally doomed, the
// degradation ladder handles them; the invariant under test is that
// nothing is ever counted as hidden.
TEST(FaultSimulator, FailedSpeculativeFetchFallsBackToDemandPath) {
    for (const bool adaptive : {false, true}) {
        sim::SimConfig config = small_sim(sim::StrategyKind::kSpider);
        config.worker_threads = 4;
        config.prefetch_enabled = true;
        config.prefetch_adaptive = adaptive;
        config.faults.enabled = true;
        config.faults.transient_failure_prob = 1.0;
        config.resilience.max_attempts = 1;
        config.resilience.hedge_enabled = false;
        config.resilience.max_substitute_fraction = 0.10;

        const metrics::RunResult result = sim::TrainingSimulator{config}.run();
        ASSERT_EQ(result.epochs.size(), config.epochs);
        std::uint64_t issued = 0;
        std::uint64_t hidden = 0;
        std::uint64_t ladder = 0;
        for (const metrics::EpochMetrics& e : result.epochs) {
            issued += e.prefetch_issued;
            hidden += e.prefetch_hidden;
            ladder += e.fault_substitutions + e.fault_skips;
            EXPECT_EQ(e.hits + e.misses, e.accesses);
        }
        EXPECT_GT(issued, 0U) << "adaptive=" << adaptive;
        EXPECT_EQ(hidden, 0U) << "adaptive=" << adaptive;
        EXPECT_GT(ladder, 0U) << "adaptive=" << adaptive;
    }
}

}  // namespace
}  // namespace spider
