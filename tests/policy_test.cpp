// Policy-seam tests (PR 9, DESIGN.md §13): name parsing and section
// eligibility, the RandomCache single-stream regression, per-policy
// shrink-order audits, a 20k-op parity trace pitting every EvictionCache
// against an independent oracle model, and the policy-backed modes of the
// semantic-cache sections (including live set_section_policies switches).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "cache/basic_policies.hpp"
#include "cache/homophily_cache.hpp"
#include "cache/importance_cache.hpp"
#include "cache/policy.hpp"
#include "cache/semantic_cache.hpp"
#include "util/rng.hpp"

namespace spider::cache {
namespace {

// ------------------------------------------------------------ name parsing

TEST(PolicyKindNames, ParseAndRoundTrip) {
    const PolicyKind kinds[] = {
        PolicyKind::kSemantic, PolicyKind::kLru,  PolicyKind::kLfu,
        PolicyKind::kFifo,     PolicyKind::kGdsf, PolicyKind::kCost,
        PolicyKind::kRandom,   PolicyKind::kStatic};
    for (const PolicyKind kind : kinds) {
        EXPECT_EQ(policy_from_string(to_string(kind)), kind);
    }
    EXPECT_EQ(policy_from_string("LRU"), PolicyKind::kLru);
    EXPECT_EQ(policy_from_string("GdSf"), PolicyKind::kGdsf);
    EXPECT_THROW(policy_from_string("clock"), std::invalid_argument);
    EXPECT_THROW(policy_from_string(""), std::invalid_argument);
}

TEST(PolicyKindNames, SectionEligibility) {
    EXPECT_TRUE(importance_policy_ok(PolicyKind::kSemantic));
    EXPECT_TRUE(importance_policy_ok(PolicyKind::kGdsf));
    EXPECT_FALSE(importance_policy_ok(PolicyKind::kRandom));
    EXPECT_FALSE(importance_policy_ok(PolicyKind::kStatic));
    EXPECT_TRUE(homophily_policy_ok(PolicyKind::kFifo));
    EXPECT_TRUE(homophily_policy_ok(PolicyKind::kCost));
    EXPECT_FALSE(homophily_policy_ok(PolicyKind::kSemantic));
    EXPECT_FALSE(homophily_policy_ok(PolicyKind::kRandom));

    EXPECT_NO_THROW(validate(SectionPolicies{}));
    EXPECT_THROW(validate(SectionPolicies{PolicyKind::kRandom,
                                          PolicyKind::kFifo}),
                 std::invalid_argument);
    EXPECT_THROW(validate(SectionPolicies{PolicyKind::kSemantic,
                                          PolicyKind::kSemantic}),
                 std::invalid_argument);
}

TEST(PolicyKindNames, MakeSectionPolicy) {
    const PolicyKind ok[] = {PolicyKind::kLru, PolicyKind::kLfu,
                             PolicyKind::kFifo, PolicyKind::kGdsf,
                             PolicyKind::kCost};
    for (const PolicyKind kind : ok) {
        const std::unique_ptr<EvictionCache> policy =
            make_section_policy(kind, 4);
        ASSERT_NE(policy, nullptr);
        EXPECT_EQ(policy->capacity(), 4U);
        EXPECT_EQ(policy->size(), 0U);
    }
    EXPECT_THROW(make_section_policy(PolicyKind::kSemantic, 4),
                 std::invalid_argument);
    EXPECT_THROW(make_section_policy(PolicyKind::kRandom, 4),
                 std::invalid_argument);
    EXPECT_THROW(make_section_policy(PolicyKind::kStatic, 4),
                 std::invalid_argument);
}

// --------------------------------------- RandomCache single-stream pinning

// The PR 9 bugfix: RandomCache used to draw replacement victims and
// random_resident() surrogates from two different generators, so a fixed
// seed did not pin the interleaved sequence. A mirror of the documented
// algorithm (swap-remove + one shared stream) must now predict every draw.
TEST(RandomCachePolicy, FixedSeedPinsInterleavedSequence) {
    constexpr std::uint64_t kSeed = 7;
    RandomCache cache{3, util::Rng{kSeed}};

    util::Rng mirror{kSeed};
    std::vector<std::uint32_t> items;
    const auto mirror_remove = [&](std::size_t slot) {
        const std::uint32_t victim = items[slot];
        items[slot] = items.back();
        items.pop_back();
        return victim;
    };

    for (std::uint32_t id = 0; id < 3; ++id) {
        EXPECT_EQ(cache.admit(id), std::nullopt);  // filling draws nothing
        items.push_back(id);
    }
    for (std::uint32_t id = 3; id < 40; ++id) {
        // peek_victim previews the next draw without consuming it.
        util::Rng preview = mirror;
        const std::uint32_t peeked =
            items[preview.uniform_index(items.size())];
        EXPECT_EQ(cache.peek_victim(), peeked);

        const std::uint32_t expected =
            mirror_remove(mirror.uniform_index(items.size()));
        EXPECT_EQ(cache.admit(id), expected);
        items.push_back(id);

        if (id % 3 == 0) {  // surrogate draws ride the same stream
            EXPECT_EQ(cache.random_resident(),
                      items[mirror.uniform_index(items.size())]);
        }
    }
    // Two caches with the same seed replay identically.
    RandomCache a{3, util::Rng{kSeed}};
    RandomCache b{3, util::Rng{kSeed}};
    for (std::uint32_t id = 0; id < 60; ++id) {
        EXPECT_EQ(a.admit(id), b.admit(id));
        EXPECT_EQ(a.random_resident(), b.random_resident());
    }
}

// --------------------------------------------------- shrink-order audits

// Drain a cache one capacity step at a time, checking that each shrink
// removes exactly the id peek_victim() announced — i.e. shrink follows the
// policy's victim order, never some ad-hoc one.
void expect_shrink_follows_victim_order(
    EvictionCache& cache, const std::vector<std::uint32_t>& expected_order) {
    for (const std::uint32_t expected : expected_order) {
        ASSERT_GT(cache.size(), 0U);
        EXPECT_EQ(cache.peek_victim(), expected);
        cache.set_capacity(cache.size() - 1);
        EXPECT_FALSE(cache.contains(expected));
    }
}

TEST(ShrinkOrder, LruEvictsLeastRecentFirst) {
    LruCache cache{4};
    for (std::uint32_t id = 1; id <= 4; ++id) cache.admit(id);
    EXPECT_TRUE(cache.touch(1));  // 1 becomes most recent
    expect_shrink_follows_victim_order(cache, {2, 3, 4, 1});
}

TEST(ShrinkOrder, LfuEvictsColdestFirst) {
    LfuCache cache{4};
    for (std::uint32_t id = 1; id <= 4; ++id) cache.admit(id);
    cache.touch(2);
    cache.touch(2);
    cache.touch(3);
    // freq: 1->1 (stamp oldest), 4->1, 3->2, 2->3.
    expect_shrink_follows_victim_order(cache, {1, 4, 3, 2});
}

TEST(ShrinkOrder, FifoEvictsOldestFirst) {
    FifoCache cache{4};
    for (std::uint32_t id = 1; id <= 4; ++id) cache.admit(id);
    cache.touch(1);  // FIFO ignores touches
    expect_shrink_follows_victim_order(cache, {1, 2, 3, 4});
}

TEST(ShrinkOrder, StaticEvictsNewestFirstKeepingStableSet) {
    // MinIO "never replaces" still must give capacity back on an elastic
    // shrink; the documented order is LIFO so the earliest-admitted stable
    // set (the source of its steady hit ratio) survives.
    StaticCache cache{4};
    for (std::uint32_t id = 1; id <= 4; ++id) cache.admit(id);
    EXPECT_EQ(cache.admit(9), std::nullopt);  // full: rejected, not replaced
    EXPECT_FALSE(cache.contains(9));
    expect_shrink_follows_victim_order(cache, {4, 3, 2});
    EXPECT_TRUE(cache.contains(1));
}

TEST(ShrinkOrder, RandomShrinkDrawsFromTheSingleStream) {
    RandomCache cache{6, util::Rng{11}};
    for (std::uint32_t id = 0; id < 6; ++id) cache.admit(id);
    // peek previews the next stream draw; shrink must consume exactly it.
    while (cache.size() > 1) {
        const std::optional<std::uint32_t> peeked = cache.peek_victim();
        ASSERT_TRUE(peeked.has_value());
        cache.set_capacity(cache.size() - 1);
        EXPECT_FALSE(cache.contains(*peeked));
    }
}

TEST(ShrinkOrder, GdsfEvictsLowestPriorityFirst) {
    GdsfCache cache{3};
    cache.note_score(1, 0.2);
    cache.admit(1);
    cache.note_score(2, 5.0);
    cache.admit(2);
    cache.note_score(3, 1.0);
    cache.admit(3);
    // priorities: 1 -> 0.2, 3 -> 1.0, 2 -> 5.0 (clock still 0).
    expect_shrink_follows_victim_order(cache, {1, 3, 2});
}

TEST(ShrinkOrder, CostAwareEvictsLowestScoreFirst) {
    CostAwareCache cache{3};
    cache.note_score(1, 0.9);
    cache.admit(1);
    cache.note_score(2, 0.1);
    cache.admit(2);
    cache.note_score(3, 0.5);
    cache.admit(3);
    expect_shrink_follows_victim_order(cache, {2, 3, 1});
}

TEST(ShrinkOrder, GrowNeverEvicts) {
    LruCache lru{2};
    lru.admit(1);
    lru.admit(2);
    lru.set_capacity(10);
    EXPECT_EQ(lru.size(), 2U);
    EXPECT_EQ(lru.capacity(), 10U);
    EXPECT_TRUE(lru.contains(1));
    EXPECT_TRUE(lru.contains(2));
}

// ------------------------------------------------------ oracle parity trace

// Independent reference models: same contract as EvictionCache, written
// with flat vectors and linear scans instead of the production containers,
// so a bookkeeping bug in either side breaks the 20k-op trace.
class Oracle {
public:
    virtual ~Oracle() = default;
    [[nodiscard]] virtual std::size_t size() const = 0;
    [[nodiscard]] virtual bool contains(std::uint32_t id) const = 0;
    virtual bool touch(std::uint32_t id) = 0;
    virtual std::optional<std::uint32_t> admit(std::uint32_t id) = 0;
    virtual void set_capacity(std::size_t capacity) = 0;
    virtual void note_score(std::uint32_t id, double score) {}
    [[nodiscard]] virtual std::optional<std::uint32_t> peek_victim()
        const = 0;
    virtual bool erase(std::uint32_t id) = 0;
};

class OracleLru final : public Oracle {
public:
    explicit OracleLru(std::size_t capacity) : capacity_{capacity} {}
    [[nodiscard]] std::size_t size() const override { return order_.size(); }
    [[nodiscard]] bool contains(std::uint32_t id) const override {
        return std::find(order_.begin(), order_.end(), id) != order_.end();
    }
    bool touch(std::uint32_t id) override {
        const auto it = std::find(order_.begin(), order_.end(), id);
        if (it == order_.end()) return false;
        order_.erase(it);
        order_.push_back(id);  // back = most recent
        return true;
    }
    std::optional<std::uint32_t> admit(std::uint32_t id) override {
        if (capacity_ == 0 || contains(id)) return std::nullopt;
        std::optional<std::uint32_t> evicted;
        if (order_.size() >= capacity_) {
            evicted = order_.front();
            order_.pop_front();
        }
        order_.push_back(id);
        return evicted;
    }
    void set_capacity(std::size_t capacity) override {
        capacity_ = capacity;
        while (order_.size() > capacity_) order_.pop_front();
    }
    [[nodiscard]] std::optional<std::uint32_t> peek_victim() const override {
        if (order_.empty()) return std::nullopt;
        return order_.front();
    }
    bool erase(std::uint32_t id) override {
        const auto it = std::find(order_.begin(), order_.end(), id);
        if (it == order_.end()) return false;
        order_.erase(it);
        return true;
    }

private:
    std::size_t capacity_;
    std::deque<std::uint32_t> order_;  // front = least recent
};

class OracleFifo final : public Oracle {
public:
    explicit OracleFifo(std::size_t capacity) : capacity_{capacity} {}
    [[nodiscard]] std::size_t size() const override { return order_.size(); }
    [[nodiscard]] bool contains(std::uint32_t id) const override {
        return std::find(order_.begin(), order_.end(), id) != order_.end();
    }
    bool touch(std::uint32_t id) override { return contains(id); }
    std::optional<std::uint32_t> admit(std::uint32_t id) override {
        if (capacity_ == 0 || contains(id)) return std::nullopt;
        std::optional<std::uint32_t> evicted;
        if (order_.size() >= capacity_) {
            evicted = order_.front();
            order_.pop_front();
        }
        order_.push_back(id);
        return evicted;
    }
    void set_capacity(std::size_t capacity) override {
        capacity_ = capacity;
        while (order_.size() > capacity_) order_.pop_front();
    }
    [[nodiscard]] std::optional<std::uint32_t> peek_victim() const override {
        if (order_.empty()) return std::nullopt;
        return order_.front();
    }
    bool erase(std::uint32_t id) override {
        const auto it = std::find(order_.begin(), order_.end(), id);
        if (it == order_.end()) return false;
        order_.erase(it);
        return true;
    }

private:
    std::size_t capacity_;
    std::deque<std::uint32_t> order_;  // front = oldest
};

// Shared scaffolding for the (key, stamp)-ordered models: LFU orders by
// (frequency, stamp), GDSF by (priority, stamp), cost-aware by
// (cost, stamp); victim = lexicographic minimum.
struct RankedEntry {
    std::uint32_t id;
    std::uint64_t frequency;
    double cost;
    double priority;
    std::uint64_t stamp;
};

class OracleLfu final : public Oracle {
public:
    explicit OracleLfu(std::size_t capacity) : capacity_{capacity} {}
    [[nodiscard]] std::size_t size() const override {
        return entries_.size();
    }
    [[nodiscard]] bool contains(std::uint32_t id) const override {
        return find(id) != entries_.end();
    }
    bool touch(std::uint32_t id) override {
        const auto it = find(id);
        if (it == entries_.end()) return false;
        ++it->frequency;
        it->stamp = ++counter_;
        return true;
    }
    std::optional<std::uint32_t> admit(std::uint32_t id) override {
        if (capacity_ == 0 || contains(id)) return std::nullopt;
        std::optional<std::uint32_t> evicted;
        if (entries_.size() >= capacity_) evicted = evict_min();
        entries_.push_back({id, 1, 0.0, 0.0, ++counter_});
        return evicted;
    }
    void set_capacity(std::size_t capacity) override {
        capacity_ = capacity;
        while (entries_.size() > capacity_) evict_min();
    }
    [[nodiscard]] std::optional<std::uint32_t> peek_victim() const override {
        const auto it = min_it();
        if (it == entries_.end()) return std::nullopt;
        return it->id;
    }
    bool erase(std::uint32_t id) override {
        const auto it = find(id);
        if (it == entries_.end()) return false;
        entries_.erase(it);
        return true;
    }

private:
    std::vector<RankedEntry>::iterator find(std::uint32_t id) {
        return std::find_if(entries_.begin(), entries_.end(),
                            [id](const RankedEntry& e) { return e.id == id; });
    }
    [[nodiscard]] std::vector<RankedEntry>::const_iterator find(
        std::uint32_t id) const {
        return std::find_if(entries_.begin(), entries_.end(),
                            [id](const RankedEntry& e) { return e.id == id; });
    }
    [[nodiscard]] std::vector<RankedEntry>::const_iterator min_it() const {
        return std::min_element(
            entries_.begin(), entries_.end(),
            [](const RankedEntry& a, const RankedEntry& b) {
                return std::pair{a.frequency, a.stamp} <
                       std::pair{b.frequency, b.stamp};
            });
    }
    std::optional<std::uint32_t> evict_min() {
        const auto it = min_it();
        if (it == entries_.end()) return std::nullopt;
        const std::uint32_t victim = it->id;
        entries_.erase(entries_.begin() + (it - entries_.begin()));
        return victim;
    }

    std::size_t capacity_;
    std::uint64_t counter_ = 0;
    std::vector<RankedEntry> entries_;
};

class OracleGdsf final : public Oracle {
public:
    explicit OracleGdsf(std::size_t capacity) : capacity_{capacity} {}
    [[nodiscard]] std::size_t size() const override {
        return entries_.size();
    }
    [[nodiscard]] bool contains(std::uint32_t id) const override {
        return find(id) != entries_.end();
    }
    bool touch(std::uint32_t id) override {
        const auto it = find(id);
        if (it == entries_.end()) return false;
        ++it->frequency;
        it->priority = clock_ + static_cast<double>(it->frequency) * it->cost;
        it->stamp = ++counter_;
        return true;
    }
    std::optional<std::uint32_t> admit(std::uint32_t id) override {
        if (capacity_ == 0 || contains(id)) return std::nullopt;
        std::optional<std::uint32_t> evicted;
        if (entries_.size() >= capacity_) evicted = evict_min();
        const double cost =
            (pending_valid_ && pending_id_ == id) ? pending_cost_ : 1.0;
        pending_valid_ = false;
        entries_.push_back({id, 1, cost, clock_ + cost, ++counter_});
        return evicted;
    }
    void set_capacity(std::size_t capacity) override {
        capacity_ = capacity;
        while (entries_.size() > capacity_) evict_min();
    }
    void note_score(std::uint32_t id, double score) override {
        const double cost = std::max(score, 0.0);
        const auto it = find(id);
        if (it == entries_.end()) {
            pending_id_ = id;
            pending_cost_ = cost;
            pending_valid_ = true;
            return;
        }
        it->cost = cost;
        it->priority = clock_ + static_cast<double>(it->frequency) * cost;
        it->stamp = ++counter_;
    }
    [[nodiscard]] std::optional<std::uint32_t> peek_victim() const override {
        const auto it = min_it();
        if (it == entries_.end()) return std::nullopt;
        return it->id;
    }
    bool erase(std::uint32_t id) override {
        const auto it = find(id);
        if (it == entries_.end()) return false;
        entries_.erase(entries_.begin() + (it - entries_.begin()));
        return true;
    }

private:
    std::vector<RankedEntry>::iterator find(std::uint32_t id) {
        return std::find_if(entries_.begin(), entries_.end(),
                            [id](const RankedEntry& e) { return e.id == id; });
    }
    [[nodiscard]] std::vector<RankedEntry>::const_iterator find(
        std::uint32_t id) const {
        return std::find_if(entries_.begin(), entries_.end(),
                            [id](const RankedEntry& e) { return e.id == id; });
    }
    [[nodiscard]] std::vector<RankedEntry>::const_iterator min_it() const {
        return std::min_element(
            entries_.begin(), entries_.end(),
            [](const RankedEntry& a, const RankedEntry& b) {
                return std::pair{a.priority, a.stamp} <
                       std::pair{b.priority, b.stamp};
            });
    }
    std::optional<std::uint32_t> evict_min() {
        const auto it = min_it();
        if (it == entries_.end()) return std::nullopt;
        const std::uint32_t victim = it->id;
        clock_ = std::max(clock_, it->priority);
        entries_.erase(entries_.begin() + (it - entries_.begin()));
        return victim;
    }

    std::size_t capacity_;
    double clock_ = 0.0;
    std::uint64_t counter_ = 0;
    std::uint32_t pending_id_ = 0;
    double pending_cost_ = 1.0;
    bool pending_valid_ = false;
    std::vector<RankedEntry> entries_;
};

class OracleCost final : public Oracle {
public:
    explicit OracleCost(std::size_t capacity) : capacity_{capacity} {}
    [[nodiscard]] std::size_t size() const override {
        return entries_.size();
    }
    [[nodiscard]] bool contains(std::uint32_t id) const override {
        return find(id) != entries_.end();
    }
    bool touch(std::uint32_t id) override {
        const auto it = find(id);
        if (it == entries_.end()) return false;
        it->stamp = ++counter_;  // recency bump within the cost bucket
        return true;
    }
    std::optional<std::uint32_t> admit(std::uint32_t id) override {
        if (capacity_ == 0 || contains(id)) return std::nullopt;
        std::optional<std::uint32_t> evicted;
        if (entries_.size() >= capacity_) evicted = evict_min();
        const double cost =
            (pending_valid_ && pending_id_ == id) ? pending_cost_ : 1.0;
        pending_valid_ = false;
        entries_.push_back({id, 0, cost, 0.0, ++counter_});
        return evicted;
    }
    void set_capacity(std::size_t capacity) override {
        capacity_ = capacity;
        while (entries_.size() > capacity_) evict_min();
    }
    void note_score(std::uint32_t id, double score) override {
        const double cost = std::max(score, 0.0);
        const auto it = find(id);
        if (it == entries_.end()) {
            pending_id_ = id;
            pending_cost_ = cost;
            pending_valid_ = true;
            return;
        }
        it->cost = cost;
        it->stamp = ++counter_;
    }
    [[nodiscard]] std::optional<std::uint32_t> peek_victim() const override {
        const auto it = min_it();
        if (it == entries_.end()) return std::nullopt;
        return it->id;
    }
    bool erase(std::uint32_t id) override {
        const auto it = find(id);
        if (it == entries_.end()) return false;
        entries_.erase(entries_.begin() + (it - entries_.begin()));
        return true;
    }

private:
    std::vector<RankedEntry>::iterator find(std::uint32_t id) {
        return std::find_if(entries_.begin(), entries_.end(),
                            [id](const RankedEntry& e) { return e.id == id; });
    }
    [[nodiscard]] std::vector<RankedEntry>::const_iterator find(
        std::uint32_t id) const {
        return std::find_if(entries_.begin(), entries_.end(),
                            [id](const RankedEntry& e) { return e.id == id; });
    }
    [[nodiscard]] std::vector<RankedEntry>::const_iterator min_it() const {
        return std::min_element(
            entries_.begin(), entries_.end(),
            [](const RankedEntry& a, const RankedEntry& b) {
                return std::pair{a.cost, a.stamp} < std::pair{b.cost, b.stamp};
            });
    }
    std::optional<std::uint32_t> evict_min() {
        const auto it = min_it();
        if (it == entries_.end()) return std::nullopt;
        const std::uint32_t victim = it->id;
        entries_.erase(entries_.begin() + (it - entries_.begin()));
        return victim;
    }

    std::size_t capacity_;
    std::uint64_t counter_ = 0;
    std::uint32_t pending_id_ = 0;
    double pending_cost_ = 1.0;
    bool pending_valid_ = false;
    std::vector<RankedEntry> entries_;
};

class OracleStatic final : public Oracle {
public:
    explicit OracleStatic(std::size_t capacity) : capacity_{capacity} {}
    [[nodiscard]] std::size_t size() const override { return items_.size(); }
    [[nodiscard]] bool contains(std::uint32_t id) const override {
        return std::find(items_.begin(), items_.end(), id) != items_.end();
    }
    bool touch(std::uint32_t id) override { return contains(id); }
    std::optional<std::uint32_t> admit(std::uint32_t id) override {
        if (items_.size() >= capacity_ || contains(id)) return std::nullopt;
        items_.push_back(id);
        return std::nullopt;
    }
    void set_capacity(std::size_t capacity) override {
        capacity_ = capacity;
        while (items_.size() > capacity_) items_.pop_back();
    }
    [[nodiscard]] std::optional<std::uint32_t> peek_victim() const override {
        if (items_.empty()) return std::nullopt;
        return items_.back();
    }
    bool erase(std::uint32_t id) override {
        const auto it = std::find(items_.begin(), items_.end(), id);
        if (it == items_.end()) return false;
        // Mirror the production swap-remove so admission order (and with
        // it the LIFO shrink order) matches after interior erases.
        *it = items_.back();
        items_.pop_back();
        return true;
    }

private:
    std::size_t capacity_;
    std::vector<std::uint32_t> items_;
};

// Random: the oracle re-runs the documented algorithm against a mirrored
// rng stream, so it checks the single-stream fix under the full op mix.
class OracleRandom final : public Oracle {
public:
    OracleRandom(std::size_t capacity, util::Rng rng)
        : capacity_{capacity}, rng_{rng} {}
    [[nodiscard]] std::size_t size() const override { return items_.size(); }
    [[nodiscard]] bool contains(std::uint32_t id) const override {
        return std::find(items_.begin(), items_.end(), id) != items_.end();
    }
    bool touch(std::uint32_t id) override { return contains(id); }
    std::optional<std::uint32_t> admit(std::uint32_t id) override {
        if (capacity_ == 0 || contains(id)) return std::nullopt;
        std::optional<std::uint32_t> evicted;
        if (items_.size() >= capacity_) {
            evicted = remove_slot(rng_.uniform_index(items_.size()));
        }
        items_.push_back(id);
        return evicted;
    }
    void set_capacity(std::size_t capacity) override {
        capacity_ = capacity;
        while (items_.size() > capacity_) {
            remove_slot(rng_.uniform_index(items_.size()));
        }
    }
    [[nodiscard]] std::optional<std::uint32_t> peek_victim() const override {
        if (items_.empty()) return std::nullopt;
        util::Rng preview = rng_;
        return items_[preview.uniform_index(items_.size())];
    }
    bool erase(std::uint32_t id) override {
        const auto it = std::find(items_.begin(), items_.end(), id);
        if (it == items_.end()) return false;
        remove_slot(static_cast<std::size_t>(it - items_.begin()));
        return true;
    }

private:
    std::uint32_t remove_slot(std::size_t slot) {
        const std::uint32_t victim = items_[slot];
        items_[slot] = items_.back();
        items_.pop_back();
        return victim;
    }

    std::size_t capacity_;
    util::Rng rng_;
    std::vector<std::uint32_t> items_;
};

// 20k deterministic operations — touches (including admit-after-touch
// sequences), admissions, score notes, erases, and interleaved
// set_capacity grow/shrink — applied identically to the production cache
// and its oracle, with full-state agreement checked throughout.
void run_parity_trace(EvictionCache& cache, Oracle& oracle,
                      std::uint64_t seed) {
    constexpr std::uint32_t kIdSpace = 160;
    constexpr std::size_t kOps = 20'000;
    util::Rng rng{seed};
    for (std::size_t op = 0; op < kOps; ++op) {
        const auto id =
            static_cast<std::uint32_t>(rng.uniform_index(kIdSpace));
        const std::uint64_t roll = rng.uniform_index(100);
        if (roll < 40) {
            EXPECT_EQ(cache.touch(id), oracle.touch(id)) << "op " << op;
        } else if (roll < 70) {
            EXPECT_EQ(cache.admit(id), oracle.admit(id)) << "op " << op;
        } else if (roll < 82) {
            const double score = rng.uniform(0.0, 4.0);
            cache.note_score(id, score);
            oracle.note_score(id, score);
        } else if (roll < 94) {
            EXPECT_EQ(cache.erase(id), oracle.erase(id)) << "op " << op;
        } else {
            // Grow/shrink between 4 and 48 items.
            const auto capacity =
                static_cast<std::size_t>(4 + rng.uniform_index(45));
            cache.set_capacity(capacity);
            oracle.set_capacity(capacity);
            EXPECT_EQ(cache.capacity(), capacity);
        }
        ASSERT_EQ(cache.size(), oracle.size()) << "op " << op;
        EXPECT_EQ(cache.peek_victim(), oracle.peek_victim()) << "op " << op;
        const auto probe =
            static_cast<std::uint32_t>(rng.uniform_index(kIdSpace));
        EXPECT_EQ(cache.contains(probe), oracle.contains(probe))
            << "op " << op;
    }
}

TEST(PolicyParity, LruMatchesOracleOver20kOps) {
    LruCache cache{24};
    OracleLru oracle{24};
    run_parity_trace(cache, oracle, 101);
}

TEST(PolicyParity, LfuMatchesOracleOver20kOps) {
    LfuCache cache{24};
    OracleLfu oracle{24};
    run_parity_trace(cache, oracle, 202);
}

TEST(PolicyParity, FifoMatchesOracleOver20kOps) {
    FifoCache cache{24};
    OracleFifo oracle{24};
    run_parity_trace(cache, oracle, 303);
}

TEST(PolicyParity, GdsfMatchesOracleOver20kOps) {
    GdsfCache cache{24};
    OracleGdsf oracle{24};
    run_parity_trace(cache, oracle, 404);
}

TEST(PolicyParity, CostAwareMatchesOracleOver20kOps) {
    CostAwareCache cache{24};
    OracleCost oracle{24};
    run_parity_trace(cache, oracle, 505);
}

TEST(PolicyParity, StaticMatchesOracleOver20kOps) {
    StaticCache cache{24};
    OracleStatic oracle{24};
    run_parity_trace(cache, oracle, 606);
}

TEST(PolicyParity, RandomMatchesOracleOver20kOps) {
    RandomCache cache{24, util::Rng{77}};
    OracleRandom oracle{24, util::Rng{77}};
    run_parity_trace(cache, oracle, 707);
}

// ------------------------------------------- policy-backed section modes

TEST(ImportanceCachePolicyMode, LruAlwaysAdmitsAndEvictsByRecency) {
    ImportanceCache imp{2, PolicyKind::kLru};
    EXPECT_EQ(imp.policy(), PolicyKind::kLru);
    EXPECT_TRUE(imp.admit_scored(1, 0.9).admitted);
    EXPECT_TRUE(imp.admit_scored(2, 0.8).admitted);
    // Under kSemantic a 0.1 would be rejected (below the resident min);
    // a delegated LRU always admits, evicting its own victim.
    const auto r = imp.admit_scored(3, 0.1);
    EXPECT_TRUE(r.admitted);
    EXPECT_EQ(r.evicted, 1U);
    // The write-path score refresh is the access signal: touching 2 makes
    // 3 the LRU victim.
    EXPECT_TRUE(imp.update_score(2, 0.85));
    const auto r2 = imp.admit_scored(4, 0.2);
    EXPECT_TRUE(r2.admitted);
    EXPECT_EQ(r2.evicted, 3U);
    EXPECT_TRUE(imp.contains(2));
    EXPECT_EQ(imp.score_of(4), 0.2);
}

TEST(ImportanceCachePolicyMode, ShrinkFollowsDelegatedOrder) {
    ImportanceCache imp{3, PolicyKind::kFifo};
    imp.admit_scored(1, 0.5);
    imp.admit_scored(2, 0.1);  // lowest score, but NOT the FIFO victim
    imp.admit_scored(3, 0.9);
    imp.set_capacity(2);
    EXPECT_FALSE(imp.contains(1));  // oldest insert went first
    EXPECT_TRUE(imp.contains(2));
    EXPECT_TRUE(imp.contains(3));
    // kSemantic shrink contrast: ascending score.
    ImportanceCache sem{3};
    sem.admit_scored(1, 0.5);
    sem.admit_scored(2, 0.1);
    sem.admit_scored(3, 0.9);
    sem.set_capacity(2);
    EXPECT_FALSE(sem.contains(2));
}

TEST(HomophilyCachePolicyMode, TouchKeyRedirectsTheVictim) {
    const std::uint32_t n1[] = {10, 11};
    const std::uint32_t n2[] = {20, 21};
    const std::uint32_t n3[] = {30};
    HomophilyCache hom{2, PolicyKind::kLru};
    EXPECT_EQ(hom.policy(), PolicyKind::kLru);
    hom.update(1, n1);
    hom.update(2, n2);
    EXPECT_TRUE(hom.touch_key(1));  // 1 becomes most recent; victim -> 2
    EXPECT_EQ(hom.oldest(), 2U);
    EXPECT_EQ(hom.update(3, n3), 2U);
    EXPECT_TRUE(hom.contains_key(1));
    EXPECT_EQ(hom.surrogate_for(11), 1U);
    EXPECT_EQ(hom.surrogate_for(21), std::nullopt);  // 2's list went with it
    // Insertion order is kept in every mode (snapshot/iteration order).
    std::vector<std::uint32_t> keys;
    hom.for_each_key([&](std::uint32_t k) { keys.push_back(k); });
    EXPECT_EQ(keys, (std::vector<std::uint32_t>{1, 3}));
}

TEST(HomophilyCachePolicyMode, DefaultFifoIgnoresTouches) {
    const std::uint32_t n1[] = {10};
    const std::uint32_t n2[] = {20};
    HomophilyCache hom{2};
    hom.update(1, n1);
    hom.update(2, n2);
    EXPECT_TRUE(hom.touch_key(1));   // residency-only answer under FIFO
    EXPECT_FALSE(hom.touch_key(9));  // absent key
    EXPECT_EQ(hom.oldest(), 1U);     // FIFO victim unchanged by the touch
}

// ------------------------------------------- live policy switch (tuner apply)

TEST(SectionPolicySwitch, PreservesResidencyScoresAndOrder) {
    TwoLayerSemanticCache cache{10, 0.6, /*shards=*/1,
                                /*lockfree_reads=*/false};
    for (std::uint32_t id = 0; id < 6; ++id) {
        cache.on_miss_fetched(id, 0.1 * (id + 1));
    }
    const std::uint32_t na[] = {100, 101};
    const std::uint32_t nb[] = {200};
    cache.update_homophily(50, na);
    cache.update_homophily(51, nb);
    const std::size_t imp_before = cache.importance_size();
    const std::size_t hom_before = cache.homophily_size();
    const TwoLayerSemanticCache::FrozenState before = cache.freeze();

    cache.set_section_policies({PolicyKind::kLru, PolicyKind::kLru});
    EXPECT_EQ(cache.section_policies().importance, PolicyKind::kLru);
    EXPECT_EQ(cache.importance_size(), imp_before);
    EXPECT_EQ(cache.homophily_size(), hom_before);
    for (std::uint32_t id = 0; id < 6; ++id) {
        EXPECT_EQ(cache.lookup(id).kind, HitKind::kImportance) << id;
    }
    EXPECT_EQ(cache.lookup(101).kind, HitKind::kHomophily);
    EXPECT_EQ(cache.lookup(101).served_id, 50U);
    EXPECT_EQ(cache.lookup(200).served_id, 51U);

    // Switching back restores the default pair; residency still intact,
    // including scores (the Case 2/4 gate works off the re-admitted min).
    cache.set_section_policies({});
    EXPECT_TRUE(cache.section_policies().is_default());
    const TwoLayerSemanticCache::FrozenState after = cache.freeze();
    ASSERT_EQ(after.shards.size(), before.shards.size());
    auto sorted = [](std::vector<std::pair<std::uint32_t, double>> v) {
        std::sort(v.begin(), v.end());
        return v;
    };
    EXPECT_EQ(sorted(after.shards[0].importance),
              sorted(before.shards[0].importance));
    EXPECT_EQ(after.shards[0].homophily_keys, before.shards[0].homophily_keys);
}

TEST(SectionPolicySwitch, ShardedCacheSwitchesEveryShard) {
    TwoLayerSemanticCache cache{64, 0.8, /*shards=*/4};
    for (std::uint32_t id = 0; id < 40; ++id) {
        cache.on_miss_fetched(id, 1.0 + id);
    }
    const std::size_t imp_before = cache.importance_size();
    cache.set_section_policies({PolicyKind::kGdsf, PolicyKind::kCost});
    EXPECT_EQ(cache.importance_size(), imp_before);
    for (std::uint32_t id = 0; id < 40; ++id) {
        EXPECT_EQ(cache.probe(id), true) << id;
    }
    // A no-op switch (same pair) is accepted and changes nothing.
    cache.set_section_policies({PolicyKind::kGdsf, PolicyKind::kCost});
    EXPECT_EQ(cache.importance_size(), imp_before);
    // Ineligible pairs are rejected without touching the cache.
    EXPECT_THROW(cache.set_section_policies(
                     {PolicyKind::kRandom, PolicyKind::kFifo}),
                 std::invalid_argument);
    EXPECT_EQ(cache.section_policies().importance, PolicyKind::kGdsf);
}

TEST(SectionPolicySwitch, ConstructorValidatesPolicies) {
    EXPECT_THROW(TwoLayerSemanticCache(10, 0.5, 1, false,
                                       {PolicyKind::kStatic,
                                        PolicyKind::kFifo}),
                 std::invalid_argument);
    const TwoLayerSemanticCache cache{10, 0.5, 1, false,
                                      {PolicyKind::kLfu, PolicyKind::kGdsf}};
    EXPECT_EQ(cache.section_policies().homophily, PolicyKind::kGdsf);
}

}  // namespace
}  // namespace spider::cache
