// Storage substrate tests: virtual clock arithmetic, remote-store fetch
// cost model and counters, and the byte-budgeted cache store.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "storage/cache_store.hpp"
#include "storage/clock.hpp"
#include "storage/remote_store.hpp"

namespace spider::storage {
namespace {

data::DatasetSpec tiny_spec() {
    data::DatasetSpec spec;
    spec.num_samples = 100;
    spec.num_classes = 4;
    spec.feature_dim = 8;
    spec.bytes_per_sample = 2048;
    spec.test_samples = 20;
    return spec;
}

TEST(VirtualClock, AdvanceAndConversions) {
    VirtualClock clock;
    EXPECT_EQ(clock.now(), SimDuration::zero());
    clock.advance_ms(1500.0);
    EXPECT_NEAR(to_ms(clock.now()), 1500.0, 1e-9);
    EXPECT_NEAR(to_minutes(clock.now()), 0.025, 1e-9);
    clock.advance(from_ms(500.0));
    EXPECT_NEAR(to_ms(clock.now()), 2000.0, 1e-9);
    EXPECT_NEAR(to_hours(from_ms(3600.0 * 1000.0)), 1.0, 1e-12);
}

TEST(VirtualClock, SyncToOnlyMovesForward) {
    VirtualClock clock;
    clock.advance_ms(100.0);
    clock.sync_to(from_ms(50.0));  // in the past: no-op
    EXPECT_NEAR(to_ms(clock.now()), 100.0, 1e-9);
    clock.sync_to(from_ms(250.0));
    EXPECT_NEAR(to_ms(clock.now()), 250.0, 1e-9);
    clock.reset();
    EXPECT_EQ(clock.now(), SimDuration::zero());
}

TEST(RemoteStore, FetchCostIncludesLatencyAndTransfer) {
    const data::SyntheticDataset dataset{tiny_spec()};
    RemoteStoreConfig config;
    config.latency_per_sample = from_ms(2.0);
    config.bytes_per_ms = 1024.0;  // 2048 bytes -> 2 ms transfer
    RemoteStore store{dataset, config};
    EXPECT_NEAR(to_ms(store.fetch_cost(0)), 4.0, 1e-9);
}

TEST(RemoteStore, BatchCostDividesAcrossWorkers) {
    const data::SyntheticDataset dataset{tiny_spec()};
    RemoteStoreConfig config;
    config.latency_per_sample = from_ms(1.0);
    config.bytes_per_ms = 1e12;  // transfer negligible
    config.parallelism = 4;
    RemoteStore store{dataset, config};
    EXPECT_EQ(store.batch_fetch_cost(0), SimDuration::zero());
    // 8 misses over 4 workers = 2 serial rounds.
    EXPECT_NEAR(to_ms(store.batch_fetch_cost(8)), 2.0, 1e-9);
    // 9 misses = 3 rounds (ceiling).
    EXPECT_NEAR(to_ms(store.batch_fetch_cost(9)), 3.0, 1e-9);
}

TEST(RemoteStore, CountersTrackFetches) {
    const data::SyntheticDataset dataset{tiny_spec()};
    RemoteStore store{dataset, RemoteStoreConfig{}};
    EXPECT_EQ(store.total_fetches(), 0U);
    const data::Sample& s = store.fetch(3);
    EXPECT_EQ(s.id, 3U);
    store.fetch(4);
    EXPECT_EQ(store.total_fetches(), 2U);
    EXPECT_EQ(store.total_bytes(), 2U * 2048U);
    store.reset_counters();
    EXPECT_EQ(store.total_fetches(), 0U);
}

TEST(RemoteStore, ConcurrentFetchesAreCounted) {
    const data::SyntheticDataset dataset{tiny_spec()};
    RemoteStore store{dataset, RemoteStoreConfig{}};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&store] {
            for (std::uint32_t i = 0; i < 100; ++i) {
                store.fetch(i % 100);
            }
        });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(store.total_fetches(), 400U);
}

TEST(RemoteStore, ContentionCountersResetIndependently) {
    const data::SyntheticDataset dataset{tiny_spec()};
    RemoteStore store{dataset, RemoteStoreConfig{}};
    store.set_fetch_slot_cap(1);  // slot accounting engages with a cap
    store.fetch(1);
    store.fetch(2);
    EXPECT_GE(store.peak_in_flight(), 1U);  // the fetches held a slot

    // Per-epoch hygiene: the contention counters reset alone, while the
    // run-lifetime fetch/byte totals keep accumulating.
    store.reset_contention_counters();
    EXPECT_EQ(store.slot_waits(), 0U);
    EXPECT_EQ(store.peak_in_flight(), 0U);
    EXPECT_EQ(store.total_fetches(), 2U);
    EXPECT_EQ(store.total_bytes(), 2U * 2048U);

    store.fetch(3);
    EXPECT_GE(store.peak_in_flight(), 1U);  // tracking resumes
    // And the full reset still clears everything, contention included.
    store.reset_counters();
    EXPECT_EQ(store.total_fetches(), 0U);
    EXPECT_EQ(store.peak_in_flight(), 0U);
}

TEST(CacheStore, CapacityInItems) {
    CacheStore store{10 * 100, 100};
    EXPECT_EQ(store.capacity_items(), 10U);
    for (std::uint32_t i = 0; i < 10; ++i) {
        EXPECT_TRUE(store.put(i));
    }
    EXPECT_FALSE(store.put(10));  // budget exhausted
    EXPECT_EQ(store.size(), 10U);
    EXPECT_EQ(store.used_bytes(), 1000U);
}

TEST(CacheStore, PutEraseLookup) {
    CacheStore store{1000, 100};
    EXPECT_TRUE(store.put(1));
    EXPECT_FALSE(store.put(1));  // duplicate
    EXPECT_TRUE(store.contains(1));
    EXPECT_TRUE(store.lookup(1));
    EXPECT_FALSE(store.lookup(2));
    EXPECT_EQ(store.hit_count(), 1U);
    EXPECT_EQ(store.miss_count(), 1U);
    EXPECT_TRUE(store.erase(1));
    EXPECT_FALSE(store.erase(1));
    store.reset_counters();
    EXPECT_EQ(store.hit_count(), 0U);
}

TEST(CacheStore, ClearEmptiesStore) {
    CacheStore store{1000, 10};
    store.put(1);
    store.put(2);
    store.clear();
    EXPECT_EQ(store.size(), 0U);
    EXPECT_FALSE(store.contains(1));
}

TEST(CacheStore, RejectsZeroItemSize) {
    EXPECT_THROW((CacheStore{100, 0}), std::invalid_argument);
}

TEST(CacheStore, ThreadSafeUnderContention) {
    CacheStore store{100000 * 8, 8};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&store, t] {
            for (std::uint32_t i = 0; i < 1000; ++i) {
                store.put(static_cast<std::uint32_t>(t) * 1000 + i);
                store.lookup(i);
            }
        });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(store.size(), 4000U);
    EXPECT_EQ(store.hit_count() + store.miss_count(), 4000U);
}

}  // namespace
}  // namespace spider::storage
