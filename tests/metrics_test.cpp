// Metrics/export and logger tests: CSV shapes, per-epoch content, summary
// aggregation, and logger level gating.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "metrics/export.hpp"
#include "metrics/metrics.hpp"
#include "util/log.hpp"

namespace spider::metrics {
namespace {

RunResult sample_run() {
    RunResult run;
    run.strategy = "SpiderCache";
    run.model = "ResNet18";
    run.dataset = "CIFAR-10";
    for (std::size_t e = 0; e < 3; ++e) {
        EpochMetrics em;
        em.epoch = e;
        em.accesses = 100;
        em.hits = 40 + 10 * e;
        em.importance_hits = 30;
        em.homophily_hits = 10 + 10 * e;
        em.misses = em.accesses - em.hits;
        em.test_accuracy = 0.5 + 0.1 * static_cast<double>(e);
        em.train_loss = 1.0 - 0.2 * static_cast<double>(e);
        em.imp_ratio = 0.9 - 0.05 * static_cast<double>(e);
        em.load_time = storage::from_ms(100.0);
        em.compute_time = storage::from_ms(50.0);
        em.epoch_time = storage::from_ms(160.0);
        run.epochs.push_back(em);
        run.total_time += em.epoch_time;
    }
    run.final_accuracy = 0.7;
    run.best_accuracy = 0.7;
    return run;
}

TEST(Export, EpochCsvShape) {
    const RunResult run = sample_run();
    std::ostringstream oss;
    write_epoch_csv(run, oss);
    const std::string csv = oss.str();

    // Header + 3 rows.
    std::size_t lines = 0;
    for (char c : csv) lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 4U);
    EXPECT_NE(csv.find("strategy,model,dataset,epoch"), std::string::npos);
    EXPECT_NE(csv.find("SpiderCache,ResNet18,CIFAR-10,0,100,40"),
              std::string::npos);
    EXPECT_NE(csv.find(",0.5,"), std::string::npos);  // epoch-0 accuracy
}

TEST(Export, SummaryCsvAggregates) {
    const RunResult a = sample_run();
    RunResult b = sample_run();
    b.strategy = "Baseline";
    const std::vector<RunResult> runs = {a, b};
    std::ostringstream oss;
    write_summary_csv(runs, oss);
    const std::string csv = oss.str();
    EXPECT_NE(csv.find("SpiderCache,ResNet18,CIFAR-10,3,"), std::string::npos);
    EXPECT_NE(csv.find("Baseline,"), std::string::npos);
    std::size_t lines = 0;
    for (char c : csv) lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 3U);
}

TEST(Export, FileExportWritesBothCsvs) {
    const RunResult run = sample_run();
    const std::vector<RunResult> runs = {run};
    ASSERT_TRUE(export_run_csv(runs, "/tmp", "spider_export_test"));
    std::ifstream summary{"/tmp/spider_export_test_summary.csv"};
    EXPECT_TRUE(summary.good());
    std::ifstream epochs{
        "/tmp/spider_export_test_SpiderCache_CIFAR-10_epochs.csv"};
    EXPECT_TRUE(epochs.good());
}

TEST(Export, UnwritableDirectoryReturnsFalse) {
    const std::vector<RunResult> runs = {sample_run()};
    EXPECT_FALSE(export_run_csv(runs, "/nonexistent/dir", "x"));
}

}  // namespace
}  // namespace spider::metrics

namespace spider::util {
namespace {

TEST(Logger, LevelGating) {
    Logger& logger = Logger::instance();
    const LogLevel original = logger.level();
    logger.set_level(LogLevel::kWarn);
    EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
    EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
    EXPECT_TRUE(logger.enabled(LogLevel::kWarn));
    EXPECT_TRUE(logger.enabled(LogLevel::kError));
    logger.set_level(LogLevel::kOff);
    EXPECT_FALSE(logger.enabled(LogLevel::kError));
    logger.set_level(original);
}

TEST(Logger, LevelNamesRoundTrip) {
    for (const LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                                 LogLevel::kWarn, LogLevel::kError,
                                 LogLevel::kOff}) {
        EXPECT_EQ(log_level_from_string(to_string(level)), level);
    }
    EXPECT_EQ(log_level_from_string("bogus"), LogLevel::kWarn);
}

TEST(Logger, LogHelpersDoNotCrash) {
    Logger& logger = Logger::instance();
    const LogLevel original = logger.level();
    logger.set_level(LogLevel::kOff);
    log_debug("ignored ", 1);
    log_info("ignored ", 2.5);
    log_warn("ignored ", "three");
    log_error("ignored");
    logger.set_level(original);
    SUCCEED();
}

}  // namespace
}  // namespace spider::util
