// Parity tests for the vectorized kernel dispatch (tensor/simd.hpp): the
// dispatched squared_l2 / GEMM / axpy paths must agree with the plain-loop
// *_scalar references to 1e-5 over random shapes, with special attention to
// ragged tails that are not multiples of the SIMD width (8/16 floats).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "tensor/simd.hpp"
#include "util/rng.hpp"

namespace spider::tensor {
namespace {

Matrix random_matrix(util::Rng& rng, std::size_t rows, std::size_t cols) {
    Matrix m{rows, cols};
    m.randomize_normal(rng, 0.0F, 1.0F);
    return m;
}

std::vector<float> random_vec(util::Rng& rng, std::size_t n) {
    std::vector<float> v(n);
    for (float& x : v) x = static_cast<float>(rng.normal());
    return v;
}

void expect_matrix_near(const Matrix& got, const Matrix& want) {
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (std::size_t i = 0; i < got.rows(); ++i) {
        for (std::size_t j = 0; j < got.cols(); ++j) {
            const float w = want.at(i, j);
            const float tol = 1e-5F * std::max(1.0F, std::fabs(w));
            EXPECT_NEAR(got.at(i, j), w, tol)
                << "at (" << i << "," << j << ")";
        }
    }
}

// Dims straddling the 8- and 16-float vector widths, plus sub-width sizes.
const std::size_t kRaggedDims[] = {1,  2,  3,  7,  8,  9,  15, 16, 17,
                                   31, 32, 33, 63, 64, 65, 100, 127, 128, 129};

TEST(SimdDispatch, TablesAreWellFormed) {
    const simd::Kernels& active = simd::active_kernels();
    const simd::Kernels& portable = simd::portable_kernels();
    EXPECT_NE(active.name, nullptr);
    EXPECT_NE(portable.name, nullptr);
    EXPECT_NE(active.squared_l2, nullptr);
    EXPECT_NE(active.dot, nullptr);
    EXPECT_NE(active.axpy, nullptr);
    EXPECT_NE(active.gemm_acc, nullptr);
    // avx2_active() must agree with which table got picked.
    EXPECT_EQ(simd::avx2_active(),
              &active == simd::avx2_kernels_or_null());
}

TEST(SimdParity, SquaredL2RaggedTails) {
    util::Rng rng{11};
    for (const std::size_t dim : kRaggedDims) {
        const std::vector<float> a = random_vec(rng, dim);
        const std::vector<float> b = random_vec(rng, dim);
        const float ref = squared_l2_scalar(a, b);
        const float got = squared_l2(a, b);
        EXPECT_NEAR(got, ref, 1e-5F * std::max(1.0F, std::fabs(ref)))
            << "dim=" << dim;
    }
}

TEST(SimdParity, SquaredL2ZeroLengthAndIdentical) {
    const std::vector<float> empty;
    EXPECT_EQ(squared_l2(empty, empty), 0.0F);
    util::Rng rng{12};
    const std::vector<float> v = random_vec(rng, 33);
    EXPECT_EQ(squared_l2(v, v), 0.0F);
}

TEST(SimdParity, DotAgainstScalarReduction) {
    util::Rng rng{13};
    const auto dot = simd::active_kernels().dot;
    for (const std::size_t dim : kRaggedDims) {
        const std::vector<float> a = random_vec(rng, dim);
        const std::vector<float> b = random_vec(rng, dim);
        float ref = 0.0F;
        for (std::size_t i = 0; i < dim; ++i) ref += a[i] * b[i];
        const float got = dot(a.data(), b.data(), dim);
        EXPECT_NEAR(got, ref, 1e-5F * std::max(1.0F, std::fabs(ref)))
            << "dim=" << dim;
    }
}

TEST(SimdParity, MatmulRandomShapesIncludingRagged) {
    util::Rng rng{17};
    const std::size_t shapes[][3] = {{1, 1, 1},   {2, 3, 4},   {4, 16, 16},
                                     {5, 7, 13},  {8, 32, 10}, {13, 17, 19},
                                     {16, 64, 33}, {31, 33, 47}, {64, 64, 64}};
    for (const auto& s : shapes) {
        const Matrix a = random_matrix(rng, s[0], s[1]);
        const Matrix b = random_matrix(rng, s[1], s[2]);
        Matrix want;
        Matrix got;
        matmul_scalar(a, b, want);
        matmul(a, b, got);
        expect_matrix_near(got, want);
    }
}

TEST(SimdParity, MatmulAtBRandomShapesIncludingRagged) {
    util::Rng rng{19};
    const std::size_t shapes[][3] = {{1, 1, 1},  {3, 2, 5},   {7, 4, 9},
                                     {16, 8, 17}, {33, 5, 31}, {64, 13, 65}};
    for (const auto& s : shapes) {
        // a: [k, m], b: [k, n] -> out: [m, n]
        const Matrix a = random_matrix(rng, s[0], s[1]);
        const Matrix b = random_matrix(rng, s[0], s[2]);
        Matrix want;
        Matrix got;
        matmul_at_b_scalar(a, b, want);
        matmul_at_b(a, b, got);
        expect_matrix_near(got, want);
    }
}

TEST(SimdParity, MatmulABtRandomShapesIncludingRagged) {
    util::Rng rng{23};
    const std::size_t shapes[][3] = {{1, 1, 1},  {2, 5, 3},   {9, 7, 4},
                                     {17, 15, 8}, {31, 33, 5}, {65, 13, 64}};
    for (const auto& s : shapes) {
        // a: [m, k], b: [n, k] -> out: [m, n]
        const Matrix a = random_matrix(rng, s[0], s[1]);
        const Matrix b = random_matrix(rng, s[2], s[1]);
        Matrix want;
        Matrix got;
        matmul_a_bt_scalar(a, b, want);
        matmul_a_bt(a, b, got);
        expect_matrix_near(got, want);
    }
}

TEST(SimdParity, AxpyRaggedTails) {
    util::Rng rng{29};
    for (const std::size_t dim : kRaggedDims) {
        Matrix x = random_matrix(rng, 1, dim);
        Matrix y_ref = random_matrix(rng, 1, dim);
        Matrix y_got{1, dim};
        for (std::size_t j = 0; j < dim; ++j) y_got.at(0, j) = y_ref.at(0, j);
        axpy_scalar(0.37F, x, y_ref);
        axpy(0.37F, x, y_got);
        expect_matrix_near(y_got, y_ref);
    }
}

// The gradient path of nn/ runs entirely through matmul_at_b/matmul_a_bt;
// cross-check a full chain: numerical agreement of (a@b)@c computed with
// dispatched kernels vs. scalar ones compounds any kernel error.
TEST(SimdParity, ChainedGemmStaysWithinTolerance) {
    util::Rng rng{31};
    const Matrix a = random_matrix(rng, 21, 37);
    const Matrix b = random_matrix(rng, 37, 29);
    const Matrix c = random_matrix(rng, 29, 11);
    Matrix ab_ref;
    Matrix abc_ref;
    matmul_scalar(a, b, ab_ref);
    matmul_scalar(ab_ref, c, abc_ref);
    Matrix ab;
    Matrix abc;
    matmul(a, b, ab);
    matmul(ab, c, abc);
    for (std::size_t i = 0; i < abc.rows(); ++i) {
        for (std::size_t j = 0; j < abc.cols(); ++j) {
            const float w = abc_ref.at(i, j);
            EXPECT_NEAR(abc.at(i, j), w,
                        1e-4F * std::max(1.0F, std::fabs(w)));
        }
    }
}

}  // namespace
}  // namespace spider::tensor
