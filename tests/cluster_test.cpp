// cluster::CooperativeCache: consistent-hash ownership and single-owner
// admission, the local < peer < remote cost ordering, the communication
// budget, straggler hedging, peer-brownout failover, ring rebalancing on
// join/leave, the simulator's multi-node mode, and the nodes=1 parity
// guarantee. The Concurrent suite runs under the --cluster TSan tier.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/cooperative_cache.hpp"
#include "data/presets.hpp"
#include "sim/simulator.hpp"
#include "storage/remote_store.hpp"

namespace spider::cluster {
namespace {

class CooperativeCacheTest : public ::testing::Test {
protected:
    CooperativeCacheTest()
        : dataset_{data::cifar10_like(0.01, 7)},  // 500 samples
          remote_{dataset_,
                  storage::RemoteStoreConfig{
                      .latency_per_sample = storage::from_ms(4.5),
                      .bytes_per_ms = 1.25e6,
                      .parallelism = 2,
                  }} {}

    [[nodiscard]] ClusterConfig base_config(std::size_t nodes) const {
        ClusterConfig cc;
        cc.nodes = nodes;
        cc.node_cache_items = 64;
        cc.seed = 11;
        return cc;
    }

    /// First id in [0, dataset) owned by `owner` on `coop`'s ring.
    [[nodiscard]] std::uint32_t id_owned_by(const CooperativeCache& coop,
                                            std::uint32_t owner) const {
        for (std::uint32_t id = 0;
             id < static_cast<std::uint32_t>(dataset_.size()); ++id) {
            if (coop.owner_of(id) == owner) return id;
        }
        throw std::logic_error{"no id owned by node"};
    }

    data::SyntheticDataset dataset_;
    storage::RemoteStore remote_;
};

TEST_F(CooperativeCacheTest, CostOrderingLocalPeerRemote) {
    const CooperativeCache coop{dataset_, remote_, base_config(4)};
    EXPECT_LT(storage::from_ms(0.02), coop.peer_cost());
    EXPECT_LT(coop.peer_cost(), coop.remote_cost());
    // The wire envelope prices the real protocol frames plus the sample.
    EXPECT_GT(coop.wire_bytes_per_fetch(), dataset_.spec().bytes_per_sample);
}

TEST_F(CooperativeCacheTest, OwnerAdmitsAndPeersHitAfterwards) {
    CooperativeCache coop{dataset_, remote_, base_config(4)};
    const storage::SimDuration now{};
    const std::uint32_t owner = 2;
    const std::uint32_t requester = 0;
    const std::uint32_t id = id_owned_by(coop, owner);

    // Cold: the owner misses too, fetches remote, admits, forwards.
    const ServiceResult first = coop.service(requester, id, now);
    EXPECT_EQ(first.source, ServeSource::kPeerMiss);
    EXPECT_EQ(first.cost, coop.peer_cost() + coop.remote_cost());
    EXPECT_TRUE(coop.resident(owner, id));
    EXPECT_FALSE(coop.resident(requester, id));  // only the owner admits

    // Warm: a pure peer hit at wire price.
    const ServiceResult second = coop.service(requester, id, now);
    EXPECT_EQ(second.source, ServeSource::kPeerHit);
    EXPECT_EQ(second.cost, coop.peer_cost());

    // The owner itself gets it at local-hit price.
    const ServiceResult third = coop.service(owner, id, now);
    EXPECT_EQ(third.source, ServeSource::kLocalHit);
    EXPECT_EQ(third.cost, storage::from_ms(0.02));

    const ClusterCounters c = coop.counters();
    EXPECT_EQ(c.peer_misses, 1U);
    EXPECT_EQ(c.peer_hits, 1U);
    EXPECT_EQ(c.local_hits, 1U);
    EXPECT_EQ(c.remote_fetches, 1U);
}

TEST_F(CooperativeCacheTest, OwnSliceMissGoesStraightToRemote) {
    CooperativeCache coop{dataset_, remote_, base_config(4)};
    const std::uint32_t owner = 1;
    const std::uint32_t id = id_owned_by(coop, owner);
    const ServiceResult r = coop.service(owner, id, storage::SimDuration{});
    EXPECT_EQ(r.source, ServeSource::kRemote);
    EXPECT_EQ(r.cost, coop.remote_cost());
    EXPECT_TRUE(coop.resident(owner, id));
}

TEST_F(CooperativeCacheTest, StorageOnlyBaselineNeverTouchesPeers) {
    ClusterConfig cc = base_config(4);
    cc.peer_fetch_enabled = false;
    CooperativeCache coop{dataset_, remote_, cc};
    const storage::SimDuration now{};
    for (std::uint32_t id = 0; id < 100; ++id) {
        const ServiceResult r = coop.service(id % 4, id, now);
        EXPECT_TRUE(r.source == ServeSource::kRemote ||
                    r.source == ServeSource::kLocalHit);
    }
    // Re-touching through the same node hits its own independent cache,
    // whoever the ring owner would have been.
    const ServiceResult again = coop.service(0, 0, now);
    EXPECT_EQ(again.source, ServeSource::kLocalHit);
    const ClusterCounters c = coop.counters();
    EXPECT_EQ(c.peer_hits + c.peer_misses + c.peer_bytes, 0U);
}

TEST_F(CooperativeCacheTest, CommBudgetThrottlesToRemote) {
    ClusterConfig cc = base_config(2);
    cc.comm_budget_mb = 0.01;  // ~3 exchanges at CIFAR sample size
    CooperativeCache coop{dataset_, remote_, cc};
    coop.begin_epoch();
    const storage::SimDuration now{};

    const std::uint64_t limit =
        static_cast<std::uint64_t>(cc.comm_budget_mb * 1024.0 * 1024.0);
    std::uint64_t peer_served = 0;
    std::uint64_t throttled = 0;
    for (std::uint32_t id = 0; id < 64; ++id) {
        const std::uint32_t owner = coop.owner_of(id);
        const std::uint32_t requester = owner == 0 ? 1 : 0;
        const ServiceResult r = coop.service(requester, id, now);
        if (r.throttled) {
            ++throttled;
            EXPECT_EQ(r.source, ServeSource::kRemote);
            EXPECT_EQ(r.cost, coop.remote_cost());
        } else {
            ++peer_served;
        }
    }
    EXPECT_GT(peer_served, 0U);
    EXPECT_GT(throttled, 0U);
    EXPECT_LE(coop.budget_spent(), limit);  // hard cap, not advisory
    EXPECT_EQ(coop.counters().throttled, throttled);

    // A new epoch refills the budget.
    coop.begin_epoch();
    EXPECT_EQ(coop.budget_spent(), 0U);
    const std::uint32_t id = id_owned_by(coop, 1);
    EXPECT_FALSE(coop.service(0, id, now).throttled);
}

TEST_F(CooperativeCacheTest, HedgingRescuesTheStragglerTail) {
    const auto run = [&](bool hedge) {
        ClusterConfig cc = base_config(4);
        cc.node_cache_items = 256;
        cc.straggler_node = 2;
        cc.straggler_spike_prob = 0.6;
        cc.straggler_spike_mult = 10.0;
        cc.hedge_enabled = hedge;
        cc.hedge_delay_ms = 1.0;  // fixed: deterministic trigger point
        storage::RemoteStore remote{dataset_,
                                    storage::RemoteStoreConfig{
                                        .latency_per_sample = storage::from_ms(4.5),
                                        .bytes_per_ms = 1.25e6,
                                        .parallelism = 2,
                                    }};
        CooperativeCache coop{dataset_, remote, cc};
        const storage::SimDuration now{};

        // Warm the straggler's slice through a peer, then hammer it.
        std::vector<std::uint32_t> ids;
        for (std::uint32_t id = 0;
             id < static_cast<std::uint32_t>(dataset_.size()) &&
             ids.size() < 32;
             ++id) {
            if (coop.owner_of(id) == 2) ids.push_back(id);
        }
        for (const std::uint32_t id : ids) (void)coop.service(0, id, now);
        storage::SimDuration total{};
        for (int round = 0; round < 8; ++round) {
            for (const std::uint32_t id : ids) {
                const ServiceResult r = coop.service(1, id, now);
                EXPECT_EQ(r.source, ServeSource::kPeerHit);
                total += r.cost;
            }
        }
        return std::pair{total, coop.counters()};
    };

    const auto [hedged_total, hedged_counters] = run(true);
    const auto [unhedged_total, unhedged_counters] = run(false);
    EXPECT_GT(hedged_counters.hedges, 0U);
    EXPECT_GT(hedged_counters.hedge_wins, 0U);
    EXPECT_EQ(unhedged_counters.hedges, 0U);
    // The duplicate bounds spiked exchanges near hedge_delay + nominal,
    // so the hedged total must come in well under the unhedged one.
    EXPECT_LT(storage::to_ms(hedged_total),
              0.85 * storage::to_ms(unhedged_total));
}

TEST_F(CooperativeCacheTest, PeerBrownoutFailsOverToRemote) {
    ClusterConfig cc = base_config(2);
    cc.peer_transient_prob = 1.0;  // every peer attempt fails
    cc.max_attempts = 2;
    CooperativeCache coop{dataset_, remote_, cc};
    const storage::SimDuration now{};
    const std::uint32_t id = id_owned_by(coop, 1);

    const ServiceResult r = coop.service(0, id, now);
    EXPECT_EQ(r.source, ServeSource::kRemote);
    EXPECT_TRUE(r.failover);
    EXPECT_GE(r.cost, coop.remote_cost());  // wasted envelope + fallback
    EXPECT_EQ(coop.counters().failovers, 1U);
    // The batch barrier feeds the envelope's breaker without incident.
    coop.on_batch_end(now);
}

TEST_F(CooperativeCacheTest, JoinMovesBoundedOwnershipLeaveRestores) {
    CooperativeCache coop{dataset_, remote_, base_config(4)};
    const auto n = static_cast<std::uint32_t>(dataset_.size());
    std::vector<std::uint32_t> before;
    before.reserve(n);
    for (std::uint32_t id = 0; id < n; ++id) {
        before.push_back(coop.owner_of(id));
    }

    const std::uint32_t fresh = coop.add_node();
    EXPECT_EQ(fresh, 4U);
    std::uint32_t moved = 0;
    for (std::uint32_t id = 0; id < n; ++id) {
        if (coop.owner_of(id) != before[id]) {
            EXPECT_EQ(coop.owner_of(id), fresh);  // moves only to the joiner
            ++moved;
        }
    }
    EXPECT_GT(moved, 0U);
    EXPECT_LT(static_cast<double>(moved) / n, 2.0 / 5.0);  // ~1/(N+1)

    // Leave restores the original map exactly (pure-hash ring points).
    coop.remove_node(fresh);
    for (std::uint32_t id = 0; id < n; ++id) {
        EXPECT_EQ(coop.owner_of(id), before[id]);
    }
    EXPECT_THROW(coop.remove_node(fresh), std::invalid_argument);  // gone
}

TEST_F(CooperativeCacheTest, ServiceAfterRebalanceConsultsNewOwnerOnly) {
    CooperativeCache coop{dataset_, remote_, base_config(2)};
    const storage::SimDuration now{};
    const std::uint32_t id = id_owned_by(coop, 1);
    (void)coop.service(0, id, now);
    ASSERT_TRUE(coop.resident(1, id));

    const std::uint32_t fresh = coop.add_node();
    if (coop.owner_of(id) == fresh) {
        // Moved key: the old owner's stale copy is never consulted; the
        // new owner admits on the next service.
        const ServiceResult r = coop.service(0, id, now);
        EXPECT_EQ(r.source, ServeSource::kPeerMiss);
        EXPECT_TRUE(coop.resident(fresh, id));
    } else {
        const ServiceResult r = coop.service(0, id, now);
        EXPECT_EQ(r.source, coop.owner_of(id) == 0 ? ServeSource::kLocalHit
                                                   : ServeSource::kPeerHit);
    }
}

TEST(ClusterConcurrent, ServiceCountersStayConsistent) {
    const data::SyntheticDataset dataset{data::cifar10_like(0.01, 7)};
    storage::RemoteStore remote{dataset, storage::RemoteStoreConfig{}};
    ClusterConfig cc;
    cc.nodes = 4;
    cc.node_cache_items = 32;  // tiny: force concurrent evictions
    cc.comm_budget_mb = 0.5;
    cc.seed = 3;
    CooperativeCache coop{dataset, remote, cc};
    coop.begin_epoch();

    constexpr std::size_t kThreads = 4;
    constexpr std::size_t kOps = 4000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            const auto node = static_cast<std::uint32_t>(t);
            for (std::size_t i = 0; i < kOps; ++i) {
                const auto id = static_cast<std::uint32_t>(
                    (i * 13 + t * 977) % dataset.size());
                (void)coop.service(node, id, storage::SimDuration{});
            }
        });
    }
    for (std::thread& w : workers) w.join();
    coop.on_batch_end(storage::SimDuration{});

    // Every service lands in exactly one source bucket. remote_fetches
    // counts own-shard misses, throttles, failovers, AND the remote leg
    // of peer misses, so kRemote-sourced ops = remote_fetches - peer_misses.
    const ClusterCounters c = coop.counters();
    const std::uint64_t remote_sourced = c.remote_fetches - c.peer_misses;
    EXPECT_EQ(c.local_hits + c.peer_hits + c.peer_misses + remote_sourced,
              kThreads * kOps);
    EXPECT_EQ(c.failovers, 0U);  // fault model is off on every peer link
}

}  // namespace
}  // namespace spider::cluster

// ----------------------------------------------------- simulator integration

namespace spider::sim {
namespace {

[[nodiscard]] SimConfig small_config() {
    SimConfig config;
    config.dataset = data::cifar10_like(0.02, 5);  // 1000 samples
    config.epochs = 3;
    config.batch_size = 64;
    config.cache_fraction = 0.20;
    config.seed = 9;
    return config;
}

TEST(ClusterSim, NodesOneIsBehaviorallyIdenticalToSingleNode) {
    const metrics::RunResult base = TrainingSimulator{small_config()}.run();

    SimConfig clustered = small_config();
    clustered.cluster.nodes = 1;  // cluster tier stays off
    clustered.cluster.peer_latency_ms = 0.9;
    clustered.cluster.comm_budget_mb = 1.0;
    clustered.cluster_node_cache_fraction = 0.5;
    const metrics::RunResult same = TrainingSimulator{clustered}.run();

    ASSERT_EQ(same.epochs.size(), base.epochs.size());
    for (std::size_t e = 0; e < base.epochs.size(); ++e) {
        EXPECT_EQ(same.epochs[e].hits, base.epochs[e].hits);
        EXPECT_EQ(same.epochs[e].misses, base.epochs[e].misses);
        EXPECT_EQ(same.epochs[e].epoch_time, base.epochs[e].epoch_time);
        EXPECT_EQ(same.epochs[e].peer_hits, 0U);
        EXPECT_EQ(same.epochs[e].cluster_remote, 0U);
    }
    EXPECT_EQ(same.total_time, base.total_time);
    EXPECT_DOUBLE_EQ(same.final_accuracy, base.final_accuracy);
}

TEST(ClusterSim, MultiNodeRunServesPeersAndBalancesBooks) {
    SimConfig config = small_config();
    config.cluster.nodes = 4;
    config.cluster_node_cache_fraction = 0.10;
    const metrics::RunResult result = TrainingSimulator{config}.run();

    std::uint64_t peer_hits = 0;
    for (const metrics::EpochMetrics& e : result.epochs) {
        // Every frontend miss was serviced by exactly one cluster source.
        EXPECT_EQ(e.cluster_local_hits + e.peer_hits + e.peer_misses +
                      e.cluster_remote,
                  e.misses);
        peer_hits += e.peer_hits;
    }
    EXPECT_GT(peer_hits, 0U) << "warm epochs must serve from peer shards";
    EXPECT_GT(result.final_accuracy, 0.15) << "training still converges";
}

TEST(ClusterSim, MultiNodeThreadedAggregatesStayExact) {
    SimConfig config = small_config();
    config.epochs = 2;
    config.cluster.nodes = 4;
    config.worker_threads = 4;
    const metrics::RunResult result = TrainingSimulator{config}.run();
    for (const metrics::EpochMetrics& e : result.epochs) {
        EXPECT_EQ(e.cluster_local_hits + e.peer_hits + e.peer_misses +
                      e.cluster_remote,
                  e.misses);
        EXPECT_EQ(e.accesses, e.hits + e.misses);
    }
}

TEST(ClusterSim, JoinAndLeaveEpochsRebalanceWithoutLosingBooks) {
    SimConfig config = small_config();
    config.epochs = 4;
    config.cluster.nodes = 3;
    config.cluster_join_epoch = 1;
    config.cluster_leave_epoch = 3;
    const metrics::RunResult result = TrainingSimulator{config}.run();
    for (const metrics::EpochMetrics& e : result.epochs) {
        EXPECT_EQ(e.cluster_local_hits + e.peer_hits + e.peer_misses +
                      e.cluster_remote,
                  e.misses);
    }
}

TEST(ClusterSim, CommBudgetSurfacesInEpochMetrics) {
    SimConfig config = small_config();
    config.epochs = 2;
    config.cluster.nodes = 4;
    config.cluster.comm_budget_mb = 0.05;  // starves the peer path
    const metrics::RunResult result = TrainingSimulator{config}.run();
    std::uint64_t throttled = 0;
    for (const metrics::EpochMetrics& e : result.epochs) {
        throttled += e.peer_throttled;
    }
    EXPECT_GT(throttled, 0U);
}

TEST(ClusterSim, ClusterIsExclusiveWithFaultsServedAndPrefetch) {
    SimConfig faulted = small_config();
    faulted.cluster.nodes = 2;
    faulted.faults.enabled = true;
    EXPECT_THROW(TrainingSimulator{faulted}.run(), std::invalid_argument);

    SimConfig prefetching = small_config();
    prefetching.cluster.nodes = 2;
    prefetching.prefetch_enabled = true;
    EXPECT_THROW(TrainingSimulator{prefetching}.run(), std::invalid_argument);

    SimConfig served = small_config();
    served.cluster.nodes = 2;
    served.served_port = 4242;
    EXPECT_THROW(TrainingSimulator{served}.run(), std::invalid_argument);
}

}  // namespace
}  // namespace spider::sim
